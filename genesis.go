// Package genesis is a from-scratch Go reproduction of GENesis, the
// optimizer generator of Whitfield & Soffa, "Automatic Generation of Global
// Optimizers" (PLDI 1991). Optimizations — traditional and parallelizing —
// are written declaratively in GOSpeL, a specification language of code
// patterns, global data/control dependence conditions and five primitive
// transformation actions; this package turns such specifications into
// executable optimizers and into standalone generated Go source (the
// paper's generated C).
//
// The typical flow:
//
//	prog, _ := genesis.ParseProgram(miniFortranSource)
//	opt, _ := genesis.BuiltIn("CTP")         // or ParseSpec + Compile
//	n, _ := opt.ApplyAll(prog)               // transform to fixpoint
//	fmt.Println(n, "applications")
//	fmt.Print(prog)                          // optimized program
//
// Programs are written in MiniF, a small FORTRAN-77-flavoured language
// (see repro/internal/frontend's package documentation for the grammar);
// the IR they parse into is the public repro/ir package, and the
// dependence analysis behind the preconditions is repro/dep.
package genesis

import (
	"context"
	"fmt"
	"io"

	"repro/dep"
	"repro/internal/codegen"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/frontend"
	"repro/internal/gospel"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/specs"
	"repro/ir"
)

// ParseProgram parses MiniF source into an IR program.
func ParseProgram(source string) (*ir.Program, error) {
	return frontend.Parse(source)
}

// Spec is a parsed and semantically checked GOSpeL specification.
type Spec struct {
	inner *gospel.Spec
}

// ParseSpec parses and checks a GOSpeL specification. The name identifies
// the optimization (used in generated code and reports).
func ParseSpec(name, source string) (*Spec, error) {
	s, err := gospel.ParseAndCheck(name, source)
	if err != nil {
		return nil, err
	}
	return &Spec{inner: s}, nil
}

// Name returns the specification's name.
func (s *Spec) Name() string { return s.inner.Name }

// Format renders the specification in canonical GOSpeL concrete syntax;
// the output re-parses to an equivalent specification.
func (s *Spec) Format() string { return gospel.Format(s.inner) }

// Strategy selects how membership-qualified dependence clauses search for
// candidates (the paper's two implementations plus the heuristic; see
// Section 4's cost experiment).
type Strategy = engine.Strategy

// Strategy values.
const (
	Heuristic    = engine.StrategyHeuristic
	MembersFirst = engine.StrategyMembers
	DepsFirst    = engine.StrategyDeps
)

// Option configures a compiled optimizer.
type Option func(*compileConfig)

type compileConfig struct {
	engineOpts []engine.Option
}

// WithStrategy selects the membership evaluation strategy.
func WithStrategy(s Strategy) Option {
	return func(c *compileConfig) {
		c.engineOpts = append(c.engineOpts, engine.WithStrategy(s))
	}
}

// WithoutRecompute stops ApplyAll from recomputing dependences between
// applications (the interactive choice the paper's constructor offers).
func WithoutRecompute() Option {
	return func(c *compileConfig) {
		c.engineOpts = append(c.engineOpts, engine.WithoutRecompute())
	}
}

// WithoutIncremental makes ApplyAll rebuild the dependence graph from
// scratch after every application instead of incrementally updating it from
// the change journal. Incremental maintenance is the default; this option
// exists for differential testing and benchmarking.
func WithoutIncremental() Option {
	return func(c *compileConfig) {
		c.engineOpts = append(c.engineOpts, engine.WithoutIncremental())
	}
}

// WithMaxApplications bounds ApplyAll at n applications (the optlib.Limits
// iteration cap surfaced through the compiled-optimizer API; n < 1 keeps
// the default of 1000). When the cap is hit while another application point
// remains, ApplyAll returns the count so far alongside
// optlib.ErrIterationLimit.
func WithMaxApplications(n int) Option {
	return func(c *compileConfig) {
		c.engineOpts = append(c.engineOpts, engine.WithMaxApplications(n))
	}
}

// WithTracer installs a span tracer on the compiled optimizer's driver
// loop: every ApplyAll run produces one "pass" span tree with a child per
// candidate application point covering the pattern-match,
// dependence-evaluation and action-application phases. A nil or disabled
// tracer costs only nil checks on the hot path.
func WithTracer(t *obs.Tracer) Option {
	return func(c *compileConfig) {
		c.engineOpts = append(c.engineOpts, engine.WithTracer(t))
	}
}

// WithPassStats installs a hook receiving one obs.PassStats per ApplyAll
// run: the engine's precondition-check counters plus the dependence-store
// lookup, graph-maintenance and undo-log rollback totals.
func WithPassStats(f func(obs.PassStats)) Option {
	return func(c *compileConfig) {
		c.engineOpts = append(c.engineOpts, engine.WithPassStats(f))
	}
}

// Optimizer is an executable optimizer produced from a specification —
// what GENesis generates.
type Optimizer struct {
	inner *engine.Optimizer
}

// Compile turns the specification into an optimizer.
func (s *Spec) Compile(opts ...Option) (*Optimizer, error) {
	var cfg compileConfig
	for _, o := range opts {
		o(&cfg)
	}
	e, err := engine.Compile(s.inner, cfg.engineOpts...)
	if err != nil {
		return nil, err
	}
	return &Optimizer{inner: e}, nil
}

// BuiltIn compiles one of the paper's optimizations by name: CPP, CTP,
// DCE, ICM, INX, CRC, BMP, PAR, LUR, FUS (plus CFO and the LUR variants).
func BuiltIn(name string, opts ...Option) (*Optimizer, error) {
	src, ok := specs.Sources[name]
	if !ok {
		return nil, fmt.Errorf("genesis: unknown built-in optimization %q (have %v)",
			name, specs.Names())
	}
	s, err := ParseSpec(name, src)
	if err != nil {
		return nil, err
	}
	return s.Compile(opts...)
}

// BuiltInNames lists the built-in optimization names.
func BuiltInNames() []string { return specs.Names() }

// TenOptimizations lists the paper's ten optimizations in Section 4 order.
func TenOptimizations() []string { return append([]string{}, specs.Ten...) }

// BuiltInSource returns the GOSpeL text of a built-in optimization.
func BuiltInSource(name string) (string, error) {
	src, ok := specs.Sources[name]
	if !ok {
		return "", fmt.Errorf("genesis: unknown built-in optimization %q", name)
	}
	return src, nil
}

// Name returns the optimizer's name.
func (o *Optimizer) Name() string { return o.inner.Name() }

// ApplyOnce applies the optimization at the first application point found,
// reporting whether one existed.
func (o *Optimizer) ApplyOnce(p *ir.Program) (bool, error) {
	return o.inner.ApplyOnce(p)
}

// ApplyAll applies the optimization to fixpoint (each application point at
// most once) and returns the number of applications.
func (o *Optimizer) ApplyAll(p *ir.Program) (int, error) {
	apps, err := o.inner.ApplyAll(p)
	return len(apps), err
}

// ApplyAllCtx is ApplyAll under a context: the fixpoint loop stops early
// with ctx.Err() when the context is cancelled or its deadline passes,
// returning the applications already performed. The program is left in its
// partially-optimized (structurally valid) state.
func (o *Optimizer) ApplyAllCtx(ctx context.Context, p *ir.Program) (int, error) {
	apps, err := o.inner.ApplyAllCtx(ctx, p)
	return len(apps), err
}

// ApplyAllParallel is ApplyAllCtx with region-parallel execution: with
// workers > 1 the fixpoint runs dependence-disjoint regions of the program
// concurrently, or shards the candidate search across workers when the
// program does not partition. The optimized program is byte-identical to
// ApplyAll at every worker count. It returns the application count and the
// number of regions the dependence partitioner found (1 when the program
// did not split).
func (o *Optimizer) ApplyAllParallel(ctx context.Context, p *ir.Program, workers int) (int, int, error) {
	apps, rep, err := o.inner.ApplyAllRegions(ctx, p, workers)
	return len(apps), rep.Regions, err
}

// Points returns the number of application points in the current program
// without transforming it.
func (o *Optimizer) Points(p *ir.Program) int {
	return len(o.inner.Preconditions(p, dep.Compute(p)))
}

// Cost reports the work the optimizer has performed, in the paper's units:
// precondition checks and transformation operations.
type Cost struct {
	PatternChecks int
	DepChecks     int
	MemChecks     int
	ActionOps     int
}

// Checks is the total precondition checks.
func (c Cost) Checks() int { return c.PatternChecks + c.DepChecks + c.MemChecks }

// Total is checks plus transformation operations.
func (c Cost) Total() int { return c.Checks() + c.ActionOps }

// Cost returns the accumulated counters.
func (o *Optimizer) Cost() Cost {
	c := o.inner.Cost()
	return Cost{
		PatternChecks: c.PatternChecks,
		DepChecks:     c.DepChecks,
		MemChecks:     c.MemChecks,
		ActionOps:     c.ActionOps,
	}
}

// ResetCost clears the counters.
func (o *Optimizer) ResetCost() { o.inner.ResetCost() }

// GenerateGo emits standalone Go source implementing the specification —
// the analog of the C code GENesis generated (paper Fig. 6). The emitted
// file depends only on repro/ir, repro/dep and repro/optlib. With emitMain,
// the file is a complete command-line optimizer.
func (s *Spec) GenerateGo(pkg string, emitMain bool) (string, error) {
	return codegen.Generate(s.inner, codegen.Options{Package: pkg, EmitMain: emitMain})
}

// Optimize parses a program, applies the named built-in optimizations in
// order (each to fixpoint) and returns the optimized program together with
// the per-optimization application counts.
func Optimize(source string, optimizations ...string) (*ir.Program, map[string]int, error) {
	p, err := ParseProgram(source)
	if err != nil {
		return nil, nil, err
	}
	counts := map[string]int{}
	for _, name := range optimizations {
		o, err := BuiltIn(name)
		if err != nil {
			return nil, nil, err
		}
		n, err := o.ApplyAll(p)
		if err != nil {
			return nil, nil, err
		}
		counts[name] += n
	}
	return p, counts, nil
}

// Execute runs a program on the given input values (consumed by READ
// statements) and returns the printed values. It is the reference
// interpreter used throughout the test suite to check that optimization
// preserves behaviour.
func Execute(p *ir.Program, input []ir.Value) ([]ir.Value, error) {
	r, err := interp.Run(p, input, interp.Config{})
	if err != nil {
		return nil, err
	}
	return r.Output, nil
}

// Dependences computes the dependence graph the preconditions consult,
// for inspection and tooling.
func Dependences(p *ir.Program) *dep.Graph { return dep.Compute(p) }

// RunExperiments regenerates every Section-4 result of the paper, writing
// the tables to w (see EXPERIMENTS.md for the paper-vs-measured record).
func RunExperiments(w io.Writer) error { return experiments.RunAll(w) }
