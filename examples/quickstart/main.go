// Quickstart: parse a MiniF program, apply built-in optimizations through
// the public API, and check that behaviour is preserved by executing both
// versions.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

const program = `
PROGRAM demo
INTEGER n, i
REAL a(16), b(16), s
n = 16
s = 0.0
DO i = 1, n
  a(i) = i * 0.5
ENDDO
DO i = 1, 16
  b(i) = a(i) + 1.0
ENDDO
DO i = 1, 16
  s = s + b(i)
ENDDO
PRINT s
END
`

func main() {
	before, err := genesis.ParseProgram(program)
	if err != nil {
		log.Fatal(err)
	}
	want, err := genesis.Execute(before, nil)
	if err != nil {
		log.Fatal(err)
	}

	// CTP makes the first loop's bound constant; FUS merges the three
	// loops pairwise where legal; PAR marks what remains parallel.
	after, counts, err := genesis.Optimize(program, "CTP", "FUS", "PAR")
	if err != nil {
		log.Fatal(err)
	}
	got, err := genesis.Execute(after, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("applications:", counts)
	fmt.Println("output before:", want, " after:", got)
	fmt.Println()
	fmt.Print(after.String())
}
