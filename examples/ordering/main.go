// Ordering: the paper's Section-4 interaction experiment as a runnable
// example. Six application orders of loop fusion (FUS), loop interchange
// (INX) and loop unrolling (LUR) run over the interaction program; the
// orders genuinely enable and disable one another and produce different
// optimized programs — "there is not a right order of application".
//
//	go run ./examples/ordering
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
	"repro/internal/workloads"
)

func main() {
	w, err := workloads.Get("interact")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("program:")
	fmt.Print(w.Source)
	fmt.Println()

	orders := [][]string{
		{"FUS", "INX", "LUR"},
		{"FUS", "LUR", "INX"},
		{"INX", "FUS", "LUR"},
		{"INX", "LUR", "FUS"},
		{"LUR", "FUS", "INX"},
		{"LUR", "INX", "FUS"},
	}
	seen := map[string][]string{}
	for _, order := range orders {
		p, counts, err := genesis.Optimize(w.Source, order...)
		if err != nil {
			log.Fatal(err)
		}
		key := strings.Join(order, "→")
		fmt.Printf("%-13s FUS=%d INX=%d LUR=%d  (%d statements)\n",
			key, counts["FUS"], counts["INX"], counts["LUR"], p.Len())
		seen[p.String()] = append(seen[p.String()], key)
	}
	fmt.Printf("\n%d orderings produced %d distinct programs:\n", len(orders), len(seen))
	for _, names := range seen {
		fmt.Println("  ", strings.Join(names, ", "))
	}
}
