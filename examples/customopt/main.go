// Customopt: the paper's central promise — "a user can create and easily
// implement novel optimizations" — as a runnable example. Two optimizations
// that ship with no compiler here are written in GOSpeL from scratch,
// compiled with the generator, and applied:
//
//   - SRD, strength reduction: x := y * 2 becomes x := y + y;
//   - IDE, identity elimination: x := y + 0 becomes x := y.
//
// The example also emits the generated Go source for SRD, the artifact the
// paper's GENesis would hand back (its Fig. 6, but in Go).
//
//	go run ./examples/customopt
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

const srd = `
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    /* a multiplication of a scalar by the constant 2 */
    any Si: Si.opc == mul AND type(Si.opr_2) == var AND (Si.opr_3 == 2);
  Depend
ACTION
  modify(Si.opc, add);
  modify(Si.opr_3, Si.opr_2);
`

const ide = `
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    /* an addition of zero */
    any Si: Si.opc == add AND (Si.opr_3 == 0);
  Depend
ACTION
  modify(Si.opc, assign);
`

const program = `
PROGRAM demo
INTEGER x, y, z
READ y
x = y * 2
z = x + 0
PRINT x, z
END
`

func main() {
	p, err := genesis.ParseProgram(program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("before:")
	fmt.Print(p.String())

	for name, src := range map[string]string{"SRD": srd, "IDE": ide} {
		spec, err := genesis.ParseSpec(name, src)
		if err != nil {
			log.Fatal(err)
		}
		o, err := spec.Compile()
		if err != nil {
			log.Fatal(err)
		}
		n, err := o.ApplyAll(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %d application(s)\n", name, n)
	}
	fmt.Println("\nafter:")
	fmt.Print(p.String())

	// The generator's other output: standalone Go source for the new
	// optimization.
	spec, _ := genesis.ParseSpec("SRD", srd)
	code, err := spec.GenerateGo("main", true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngenerated optimizer (first lines):")
	lines := strings.SplitN(code, "\n", 12)
	fmt.Println(strings.Join(lines[:11], "\n"))
	fmt.Println("...")
}
