// Costbenefit: the paper's cost/benefit experiment as a runnable example.
// Every built-in optimization is applied to the workload suite while the
// engine counts precondition checks and transformation operations (the
// paper's estimated-cost metric); the interpreter then estimates each
// optimization's benefit under scalar, vector and multiprocessor models.
//
//	go run ./examples/costbenefit
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/interp"
	"repro/internal/workloads"
)

func main() {
	fmt.Printf("%-5s %6s %8s %6s %9s %9s %9s\n",
		"opt", "apps", "checks", "ops", "scalar%", "vector%", "mp%")
	for _, name := range genesis.TenOptimizations() {
		o, err := genesis.BuiltIn(name)
		if err != nil {
			log.Fatal(err)
		}
		apps := 0
		var bS, bV, bM float64
		for _, w := range workloads.All {
			ref, err := interp.Run(w.Program(), w.Input, interp.Config{})
			if err != nil {
				log.Fatal(err)
			}
			p := w.Program()
			n, err := o.ApplyAll(p)
			if err != nil {
				log.Fatal(err)
			}
			apps += n
			r, err := interp.Run(p, w.Input, interp.Config{})
			if err != nil {
				log.Fatal(err)
			}
			m := interp.DefaultModel
			bS += interp.Benefit(ref.Counts, r.Counts, interp.Scalar, m)
			bV += interp.Benefit(ref.Counts, r.Counts, interp.Vector, m)
			bM += interp.Benefit(ref.Counts, r.Counts, interp.Multiprocessor, m)
		}
		c := o.Cost()
		n := float64(len(workloads.All))
		fmt.Printf("%-5s %6d %8d %6d %9.2f %9.2f %9.2f\n",
			name, apps, c.Checks(), c.ActionOps,
			100*bS/n, 100*bV/n, 100*bM/n)
	}
	fmt.Println("\ncost = precondition checks + transformation operations (the paper's estimate)")
	fmt.Println("benefit = relative estimated execution-time reduction per architecture")
}
