package genesis

// Golden printer/parser round-trip: for every example program, optimize
// with the CLI's default demo pipeline (CTP, DCE), print the result as
// MiniF, reparse it, and require the reparsed IR to equal the optimized IR
// statement for statement. This is the `opt -opts CTP,DCE -minif` path;
// drift between ir.ToMiniF and the frontend shows up here, not in a user's
// saved output.

import (
	"os"
	"path/filepath"
	"testing"

	"repro/ir"
)

func TestGoldenMiniFRoundTrip(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("examples", "programs", "*.mf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no example programs found under examples/programs")
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			optimized, counts, err := Optimize(string(src), "CTP", "DCE")
			if err != nil {
				t.Fatalf("optimize: %v", err)
			}
			text := ir.ToMiniF(optimized)
			reparsed, err := ParseProgram(text)
			if err != nil {
				t.Fatalf("optimized MiniF does not reparse: %v\n%s", err, text)
			}
			if !optimized.Equal(reparsed) {
				t.Errorf("reparsed IR differs from optimized IR (counts %v)\nprinted:\n%s\nreparsed:\n%s\noptimized:\n%s",
					counts, text, reparsed.String(), optimized.String())
			}
			// Idempotence: printing the reparsed program reproduces the text.
			if again := ir.ToMiniF(reparsed); again != text {
				t.Errorf("ToMiniF is not stable across a round trip:\n--- first\n%s\n--- second\n%s", text, again)
			}
		})
	}
}
