#!/bin/sh
# Run the driver-fixpoint and server benchmarks with benchstat-comparable
# output.
#
# Usage:
#   scripts/bench.sh                 # print results, save to bench-new.txt
#   scripts/bench.sh -c old.txt      # additionally diff against a baseline
#                                    # (uses benchstat when installed)
#   scripts/bench.sh -overhead       # run BenchmarkDriverFixpointObs and fail
#                                    # if the disabled tracer costs >5% over
#                                    # no tracer at all
#   scripts/bench.sh -native         # run BenchmarkCompiledFixpoint and fail
#                                    # unless the compiled fast path is at
#                                    # least 1.5x the interpreted engine
#   scripts/bench.sh -advisor        # run BenchmarkAdvisorOrder and fail if
#                                    # order=auto costs >5% over order=default
#                                    # on an identical pipeline
#
# Environment:
#   BENCH    regexp of benchmarks to run  (default: DriverFixpoint|ServerOptimize|JobsThroughput|ClusterForward|FarmThroughput)
#   COUNT    -count for statistical runs  (default: 6)
#   OUT      output file                  (default: bench-new.txt)
set -eu

cd "$(dirname "$0")/.."

BENCH=${BENCH:-'DriverFixpoint|ServerOptimize|JobsThroughput|ClusterForward|FarmThroughput'}
COUNT=${COUNT:-6}
OUT=${OUT:-bench-new.txt}
BASELINE=
OVERHEAD=
NATIVE=
ADVISOR=

while [ $# -gt 0 ]; do
  case "$1" in
    -c) BASELINE=$2; shift 2 ;;
    -overhead) OVERHEAD=1; shift ;;
    -native) NATIVE=1; shift ;;
    -advisor) ADVISOR=1; shift ;;
    *) echo "usage: scripts/bench.sh [-c baseline.txt] [-overhead] [-native] [-advisor]" >&2; exit 2 ;;
  esac
done

if [ -n "$OVERHEAD" ]; then
  # Compare the no-tracer and disabled-tracer variants of the driver
  # fixpoint: the nil-safe span API must stay within 5% when tracing is off.
  go test -run '^$' -bench 'BenchmarkDriverFixpointObs/(none|disabled)$' \
    -count "$COUNT" . | tee "$OUT"
  awk '
    /DriverFixpointObs\/none/     { none += $3; nc++ }
    /DriverFixpointObs\/disabled/ { dis  += $3; dc++ }
    END {
      if (nc == 0 || dc == 0) { print "overhead: missing benchmark output"; exit 1 }
      none /= nc; dis /= dc
      ratio = dis / none
      printf "overhead: none=%.0f ns/op disabled=%.0f ns/op ratio=%.3f\n", none, dis, ratio
      if (ratio > 1.05) { print "FAIL: disabled-tracer overhead exceeds 5%"; exit 1 }
      print "OK: disabled-tracer overhead within 5%"
    }' "$OUT"
  exit 0
fi

if [ -n "$NATIVE" ]; then
  # Compare the compiled (plugin artifact + shared-graph pipeline) and
  # interpreted engines on the paper-scale corpus: the compiled serving
  # fast path must hold a >=1.5x steady-state speedup. The benchmark's own
  # setup already proves the outputs byte-identical.
  go test -run '^$' -bench 'BenchmarkCompiledFixpoint/(interpreted|compiled)$' \
    -count "$COUNT" . | tee "$OUT"
  awk '
    /CompiledFixpoint\/interpreted/ { interp += $3; ic++ }
    /CompiledFixpoint\/compiled/    { comp   += $3; cc++ }
    END {
      if (ic == 0 || cc == 0) { print "native: missing benchmark output (plugin artifact unavailable?)"; exit 1 }
      interp /= ic; comp /= cc
      ratio = interp / comp
      printf "native: interpreted=%.0f ns/op compiled=%.0f ns/op speedup=%.2fx\n", interp, comp, ratio
      if (ratio < 1.5) { print "FAIL: compiled speedup below 1.5x"; exit 1 }
      print "OK: compiled fast path is >=1.5x over the interpreted engine"
    }' "$OUT"
  exit 0
fi

if [ -n "$ADVISOR" ]; then
  # Compare order=default and order=auto on an identical pipeline (the
  # benchmark seeds the outcome store so auto retrieves the default order):
  # the advisor's featurize + k-NN retrieval must stay within 5% of p50
  # request latency.
  go test -run '^$' -bench 'BenchmarkAdvisorOrder/(default|auto)$' \
    -count "$COUNT" . | tee "$OUT"
  awk '
    /AdvisorOrder\/default/ { def  += $3; dc++ }
    /AdvisorOrder\/auto/    { auto += $3; ac++ }
    END {
      if (dc == 0 || ac == 0) { print "advisor: missing benchmark output"; exit 1 }
      def /= dc; auto /= ac
      ratio = auto / def
      printf "advisor: default=%.0f ns/op auto=%.0f ns/op ratio=%.3f\n", def, auto, ratio
      if (ratio > 1.05) { print "FAIL: order=auto overhead exceeds 5%"; exit 1 }
      print "OK: order=auto overhead within 5%"
    }' "$OUT"
  exit 0
fi

go test -run '^$' -bench "$BENCH" -benchmem -count "$COUNT" . | tee "$OUT"

if [ -n "$BASELINE" ]; then
  if command -v benchstat >/dev/null 2>&1; then
    benchstat "$BASELINE" "$OUT"
  else
    echo "benchstat not installed; compare $BASELINE vs $OUT manually" >&2
  fi
fi
