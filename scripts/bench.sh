#!/bin/sh
# Run the driver-fixpoint and server benchmarks with benchstat-comparable
# output.
#
# Usage:
#   scripts/bench.sh                 # print results, save to bench-new.txt
#   scripts/bench.sh -c old.txt      # additionally diff against a baseline
#                                    # (uses benchstat when installed)
#
# Environment:
#   BENCH    regexp of benchmarks to run  (default: DriverFixpoint|ServerOptimize)
#   COUNT    -count for statistical runs  (default: 6)
#   OUT      output file                  (default: bench-new.txt)
set -eu

cd "$(dirname "$0")/.."

BENCH=${BENCH:-'DriverFixpoint|ServerOptimize'}
COUNT=${COUNT:-6}
OUT=${OUT:-bench-new.txt}
BASELINE=

while [ $# -gt 0 ]; do
  case "$1" in
    -c) BASELINE=$2; shift 2 ;;
    *) echo "usage: scripts/bench.sh [-c baseline.txt]" >&2; exit 2 ;;
  esac
done

go test -run '^$' -bench "$BENCH" -benchmem -count "$COUNT" . | tee "$OUT"

if [ -n "$BASELINE" ]; then
  if command -v benchstat >/dev/null 2>&1; then
    benchstat "$BASELINE" "$OUT"
  else
    echo "benchstat not installed; compare $BASELINE vs $OUT manually" >&2
  fi
fi
