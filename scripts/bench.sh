#!/bin/sh
# Run the driver-fixpoint and server benchmarks with benchstat-comparable
# output.
#
# Usage:
#   scripts/bench.sh                 # print results, save to bench-new.txt
#   scripts/bench.sh -c old.txt      # additionally diff against a baseline
#                                    # (uses benchstat when installed)
#   scripts/bench.sh -overhead       # run BenchmarkDriverFixpointObs and fail
#                                    # if the disabled tracer costs >5% over
#                                    # no tracer at all
#   scripts/bench.sh -native         # run BenchmarkCompiledFixpoint and fail
#                                    # unless the compiled fast path is at
#                                    # least 1.5x the interpreted engine
#   scripts/bench.sh -advisor        # run BenchmarkAdvisorOrder and fail if
#                                    # order=auto costs >5% over order=default
#                                    # on an identical pipeline
#   scripts/bench.sh -region         # run BenchmarkRegionParallel and fail
#                                    # unless 4 region workers beat 1 by
#                                    # >=1.4x on hompack-ish (the benchmark's
#                                    # setup proves byte-identical output at
#                                    # every worker count); SKIPs the speedup
#                                    # gate on <2-core machines, where no
#                                    # concurrency can pay for itself
#
# Environment:
#   BENCH    regexp of benchmarks to run  (default: DriverFixpoint|ServerOptimize|JobsThroughput|ClusterForward|FarmThroughput)
#   COUNT    -count for statistical runs  (default: 6)
#   OUT      output file                  (default: bench-new.txt)
set -eu

cd "$(dirname "$0")/.."

BENCH=${BENCH:-'DriverFixpoint|ServerOptimize|JobsThroughput|ClusterForward|FarmThroughput'}
COUNT=${COUNT:-6}
OUT=${OUT:-bench-new.txt}
BASELINE=
OVERHEAD=
NATIVE=
ADVISOR=
REGION=

while [ $# -gt 0 ]; do
  case "$1" in
    -c) BASELINE=$2; shift 2 ;;
    -overhead) OVERHEAD=1; shift ;;
    -native) NATIVE=1; shift ;;
    -advisor) ADVISOR=1; shift ;;
    -region) REGION=1; shift ;;
    *) echo "usage: scripts/bench.sh [-c baseline.txt] [-overhead] [-native] [-advisor] [-region]" >&2; exit 2 ;;
  esac
done

# run_gated BENCHREGEX: one discarded warmup iteration (fills toolchain,
# page and artifact caches), then COUNT measured series at -benchtime 3x.
# Gate math downstream takes the best (minimum) of each series, so a single
# noisy-neighbor episode on a shared runner cannot flip a ratio gate.
run_gated() {
  go test -run '^$' -bench "$1" -benchtime 1x . >/dev/null
  go test -run '^$' -bench "$1" -benchtime 3x -count "$COUNT" . | tee "$OUT"
}

if [ -n "$OVERHEAD" ]; then
  # Compare the no-tracer and disabled-tracer variants of the driver
  # fixpoint: the nil-safe span API must stay within 5% when tracing is off.
  run_gated 'BenchmarkDriverFixpointObs/(none|disabled)$'
  awk '
    /DriverFixpointObs\/none/     { if (!nc || $3 < none) none = $3; nc++ }
    /DriverFixpointObs\/disabled/ { if (!dc || $3 < dis)  dis  = $3; dc++ }
    END {
      if (nc == 0 || dc == 0) { print "overhead: missing benchmark output"; exit 1 }
      ratio = dis / none
      printf "overhead: none=%.0f ns/op disabled=%.0f ns/op ratio=%.3f (best of %d)\n", none, dis, ratio, nc
      if (ratio > 1.05) { print "FAIL: disabled-tracer overhead exceeds 5%"; exit 1 }
      print "OK: disabled-tracer overhead within 5%"
    }' "$OUT"
  exit 0
fi

if [ -n "$NATIVE" ]; then
  # Compare the compiled (plugin artifact + shared-graph pipeline) and
  # interpreted engines on the paper-scale corpus: the compiled serving
  # fast path must hold a >=1.5x steady-state speedup. The benchmark's own
  # setup already proves the outputs byte-identical.
  run_gated 'BenchmarkCompiledFixpoint/(interpreted|compiled)$'
  awk '
    /CompiledFixpoint\/interpreted/ { if (!ic || $3 < interp) interp = $3; ic++ }
    /CompiledFixpoint\/compiled/    { if (!cc || $3 < comp)   comp   = $3; cc++ }
    END {
      if (ic == 0 || cc == 0) { print "native: missing benchmark output (plugin artifact unavailable?)"; exit 1 }
      ratio = interp / comp
      printf "native: interpreted=%.0f ns/op compiled=%.0f ns/op speedup=%.2fx (best of %d)\n", interp, comp, ratio, ic
      if (ratio < 1.5) { print "FAIL: compiled speedup below 1.5x"; exit 1 }
      print "OK: compiled fast path is >=1.5x over the interpreted engine"
    }' "$OUT"
  exit 0
fi

if [ -n "$ADVISOR" ]; then
  # Compare order=default and order=auto on an identical pipeline (the
  # benchmark seeds the outcome store so auto retrieves the default order):
  # the advisor's featurize + k-NN retrieval must stay within 5% of p50
  # request latency.
  run_gated 'BenchmarkAdvisorOrder/(default|auto)$'
  awk '
    /AdvisorOrder\/default/ { if (!dc || $3 < def)  def  = $3; dc++ }
    /AdvisorOrder\/auto/    { if (!ac || $3 < auto) auto = $3; ac++ }
    END {
      if (dc == 0 || ac == 0) { print "advisor: missing benchmark output"; exit 1 }
      ratio = auto / def
      printf "advisor: default=%.0f ns/op auto=%.0f ns/op ratio=%.3f (best of %d)\n", def, auto, ratio, dc
      if (ratio > 1.05) { print "FAIL: order=auto overhead exceeds 5%"; exit 1 }
      print "OK: order=auto overhead within 5%"
    }' "$OUT"
  exit 0
fi

if [ -n "$REGION" ]; then
  # Compare 1 vs 4 region workers on the hompack-ish pipeline. The speedup
  # half of the gate only makes sense with real parallel hardware: on a
  # single-core machine every extra worker is pure scheduling overhead, so
  # the ratio check is skipped there — the byte-identity differential in
  # the benchmark's setup (sequential vs workers 1, 2, 4 and 8) still runs
  # and still fails the step on any divergence.
  CORES=$( (nproc || getconf _NPROCESSORS_ONLN) 2>/dev/null | head -1 )
  CORES=${CORES:-1}
  if [ "$CORES" -lt 2 ]; then
    echo "SKIP: region speedup gate needs >=2 cores (have $CORES); running determinism differential only"
    go test -run '^$' -bench 'BenchmarkRegionParallel/workers4$' -benchtime 1x . | tee "$OUT"
    exit 0
  fi
  run_gated 'BenchmarkRegionParallel/(workers1|workers4)$'
  awk '
    /RegionParallel\/workers1/ { if (!c1 || $3 < w1) w1 = $3; c1++ }
    /RegionParallel\/workers4/ { if (!c4 || $3 < w4) w4 = $3; c4++ }
    END {
      if (c1 == 0 || c4 == 0) { print "region: missing benchmark output"; exit 1 }
      ratio = w1 / w4
      printf "region: workers1=%.0f ns/op workers4=%.0f ns/op speedup=%.2fx (best of %d)\n", w1, w4, ratio, c1
      if (ratio < 1.4) { print "FAIL: region-parallel speedup below 1.4x at 4 workers"; exit 1 }
      print "OK: region-parallel fixpoint is >=1.4x at 4 workers, byte-identical by construction"
    }' "$OUT"
  exit 0
fi

go test -run '^$' -bench "$BENCH" -benchmem -count "$COUNT" . | tee "$OUT"

if [ -n "$BASELINE" ]; then
  if command -v benchstat >/dev/null 2>&1; then
    benchstat "$BASELINE" "$OUT"
  else
    echo "benchstat not installed; compare $BASELINE vs $OUT manually" >&2
  fi
fi
