#!/bin/sh
# Run the driver-fixpoint and server benchmarks with benchstat-comparable
# output.
#
# Usage:
#   scripts/bench.sh                 # print results, save to bench-new.txt
#   scripts/bench.sh -c old.txt      # additionally diff against a baseline
#                                    # (uses benchstat when installed)
#   scripts/bench.sh -overhead       # run BenchmarkDriverFixpointObs and fail
#                                    # if the disabled tracer costs >5% over
#                                    # no tracer at all
#
# Environment:
#   BENCH    regexp of benchmarks to run  (default: DriverFixpoint|ServerOptimize|JobsThroughput|ClusterForward)
#   COUNT    -count for statistical runs  (default: 6)
#   OUT      output file                  (default: bench-new.txt)
set -eu

cd "$(dirname "$0")/.."

BENCH=${BENCH:-'DriverFixpoint|ServerOptimize|JobsThroughput|ClusterForward'}
COUNT=${COUNT:-6}
OUT=${OUT:-bench-new.txt}
BASELINE=
OVERHEAD=

while [ $# -gt 0 ]; do
  case "$1" in
    -c) BASELINE=$2; shift 2 ;;
    -overhead) OVERHEAD=1; shift ;;
    *) echo "usage: scripts/bench.sh [-c baseline.txt] [-overhead]" >&2; exit 2 ;;
  esac
done

if [ -n "$OVERHEAD" ]; then
  # Compare the no-tracer and disabled-tracer variants of the driver
  # fixpoint: the nil-safe span API must stay within 5% when tracing is off.
  go test -run '^$' -bench 'BenchmarkDriverFixpointObs/(none|disabled)$' \
    -count "$COUNT" . | tee "$OUT"
  awk '
    /DriverFixpointObs\/none/     { none += $3; nc++ }
    /DriverFixpointObs\/disabled/ { dis  += $3; dc++ }
    END {
      if (nc == 0 || dc == 0) { print "overhead: missing benchmark output"; exit 1 }
      none /= nc; dis /= dc
      ratio = dis / none
      printf "overhead: none=%.0f ns/op disabled=%.0f ns/op ratio=%.3f\n", none, dis, ratio
      if (ratio > 1.05) { print "FAIL: disabled-tracer overhead exceeds 5%"; exit 1 }
      print "OK: disabled-tracer overhead within 5%"
    }' "$OUT"
  exit 0
fi

go test -run '^$' -bench "$BENCH" -benchmem -count "$COUNT" . | tee "$OUT"

if [ -n "$BASELINE" ]; then
  if command -v benchstat >/dev/null 2>&1; then
    benchstat "$BASELINE" "$OUT"
  else
    echo "benchstat not installed; compare $BASELINE vs $OUT manually" >&2
  fi
fi
