#!/bin/sh
# Lint: every region test must call t.Parallel().
#
# The CI stress lane runs `go test -race -count=3 -run 'Region' ./...` to
# surface scheduling-order bugs in the region-parallel journal merge; a
# region test that forgets t.Parallel() silently serializes that lane and
# stops the race detector from seeing interleavings. Covered tests are
# every top-level Test function in internal/region plus any Test function
# whose name mentions Region (the same set the -run filter selects).
set -eu

cd "$(dirname "$0")/.."

find . -name '*_test.go' -not -path './.git/*' -print0 | xargs -0 awk '
  function flush() {
    if (name != "" && !has) {
      printf "%s: %s missing t.Parallel()\n", file, name
      bad = 1
    }
    name = ""
  }
  FNR == 1 { flush(); inregion = (FILENAME ~ /internal\/region\//) }
  /^func /  { flush() }
  /^func Test[A-Za-z0-9_]*\(t \*testing\.T\)/ {
    n = $2; sub(/\(.*/, "", n)
    if (inregion || n ~ /Region/) { name = n; has = 0; file = FILENAME }
  }
  /t\.Parallel\(\)/ { if (name != "") has = 1 }
  END {
    flush()
    if (bad) exit 1
    print "region tests: all call t.Parallel()"
  }
'
