#!/bin/sh
# Black-box smoke for the sharded optd cluster: bring up a two-node ring,
# prove cache-aware forwarding (a request entering the non-owner is proxied
# to the owner and hits the owner's result cache on repeat), then SIGKILL
# the owner and prove routing-time failover (the survivor serves the same
# key itself after one failed forward, no reconfiguration).
#
# Usage: scripts/cluster-smoke.sh [optd-binary] [opt-binary]
set -eu

OPTD=${1:-/tmp/optd}
OPT=${2:-/tmp/opt}
A=127.0.0.1:8726
B=127.0.0.1:8727

# -trace-sample 1 keeps every trace: the tracing assertions below must not
# depend on the 1-in-N tail-sample lottery.
"$OPTD" -addr "$A" -peers "$A,$B" -advertise "$A" -trace-sample 1 &
PID_A=$!
"$OPTD" -addr "$B" -peers "$A,$B" -advertise "$B" -trace-sample 1 &
PID_B=$!
trap 'kill $PID_A $PID_B 2>/dev/null || true' EXIT

wait_up() {
  for i in $(seq 1 50); do
    curl -fsS "http://$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  echo "cluster-smoke: node $1 never came up" >&2
  return 1
}
wait_up "$A"
wait_up "$B"

# Wait until each node's prober sees the other as up, so forwarding
# decisions below are about routing, not startup races.
wait_peer_up() {
  for i in $(seq 1 50); do
    UP=$(curl -fsS -H 'Accept: text/plain' "http://$1/metrics" \
      | sed -n "s/^optd_cluster_peer_up{peer=\"$2\"} //p")
    [ "$UP" = 1 ] && return 0
    sleep 0.2
  done
  echo "cluster-smoke: $1 never saw peer $2 up" >&2
  return 1
}
wait_peer_up "$A" "$B"
wait_peer_up "$B" "$A"

BODY='{"source":"PROGRAM s\nINTEGER x\nx = 7\nPRINT x\nEND\n","opts":["CTP","DCE"]}'

# Ownership is hash-determined, so discover it empirically: every clustered
# response stamps X-Optd-Served-By with the node that actually served it.
OWNER=$(curl -fsS -D - -o /dev/null -X POST "http://$A/v1/optimize" \
  -H 'Content-Type: application/json' -d "$BODY" \
  | tr -d '\r' | sed -n 's/^[Xx]-[Oo]ptd-[Ss]erved-[Bb]y: *//p')
test -n "$OWNER"
if [ "$OWNER" = "$A" ]; then
  NONOWNER=$B OWNER_PID=$PID_A
else
  NONOWNER=$A OWNER_PID=$PID_B
fi
echo "cluster-smoke: owner=$OWNER nonowner=$NONOWNER"

# Repeat through the non-owner: the request must be forwarded to the owner
# and come back as a hit on the owner's content-addressed cache.
curl -fsS -D /tmp/cluster-hdrs.txt -X POST "http://$NONOWNER/v1/optimize" \
  -H 'Content-Type: application/json' -d "$BODY" | grep -q '"cached":true'
tr -d '\r' < /tmp/cluster-hdrs.txt | grep -qi "^x-optd-served-by: *$OWNER\$"
FWD=$(curl -fsS -H 'Accept: text/plain' "http://$NONOWNER/metrics" \
  | sed -n 's/^optd_cluster_routed_total{decision="forwarded"} //p')
test -n "$FWD" && [ "$FWD" -ge 1 ]

# Distributed tracing across the forward: a request entering the non-owner
# yields ONE trace ID whose span forest, queried from either node, contains
# spans produced by BOTH nodes — the ingress root + forward client span on
# the non-owner, the serving root + pass spans on the owner.
TID=$(curl -fsS -D - -o /dev/null -X POST "http://$NONOWNER/v1/optimize" \
  -H 'Content-Type: application/json' \
  -d '{"source":"PROGRAM s\nINTEGER x\nx = 7\nPRINT x\nEND\n","opts":["CTP","DCE"],"no_cache":true}' \
  | tr -d '\r' | sed -n 's/^[Xx]-[Oo]ptd-[Tt]race-[Ii]d: *//p' | head -1)
test -n "$TID"
for NODE in "$A" "$B"; do
  curl -fsS "http://$NODE/v1/traces/$TID" > /tmp/cluster-trace.json
  grep -q "\"node\":\"$A\"" /tmp/cluster-trace.json
  grep -q "\"node\":\"$B\"" /tmp/cluster-trace.json
done
grep -q '"name":"forward"' /tmp/cluster-trace.json
grep -q '"name":"server.optimize"' /tmp/cluster-trace.json
# The opt client renders the same trace as a tree, showing both nodes.
"$OPT" -traces "http://$NONOWNER" "$TID" | grep -q "@$OWNER"
"$OPT" -traces "http://$NONOWNER" -trace-filter 'route=optimize&limit=5' | grep -q optimize
echo "cluster-smoke: trace $TID spans both nodes"

# SIGKILL the owner: the very next request through the survivor must fail
# over at routing time (failed dial -> mark down -> ring successor = self).
kill -9 "$OWNER_PID"
wait "$OWNER_PID" 2>/dev/null || true
curl -fsS -X POST "http://$NONOWNER/v1/optimize" \
  -H 'Content-Type: application/json' -d "$BODY" | grep -q '"minif"'
FOV=$(curl -fsS -H 'Accept: text/plain' "http://$NONOWNER/metrics" \
  | sed -n 's/^optd_cluster_routed_total{decision="failover"} //p')
test -n "$FOV" && [ "$FOV" -ge 1 ]

# The batch-job client still round-trips against the surviving half of the
# ring (owner-aware submission degrades to local execution).
printf 'PROGRAM c\nINTEGER a, x\nx = 3\na = 1\nPRINT x\nEND\n' > /tmp/cluster-c.mf
"$OPT" -submit "http://$NONOWNER" -wait -minif -opts DCE /tmp/cluster-c.mf | grep -q 'x = 3'
echo "cluster-smoke: OK"
