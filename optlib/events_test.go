package optlib

import (
	"testing"

	"repro/dep"
	"repro/ir"
)

// TestFixpointEvents: OnEvent observes every iteration — one Applied event
// per application plus the final converging search — with correct
// Incremental reporting per maintenance mode.
func TestFixpointEvents(t *testing.T) {
	for _, full := range []bool{false, true} {
		p, s := limitProgram()
		left := 2
		apply := func(p *ir.Program, g *dep.Graph, seen map[string]bool) bool {
			if left == 0 {
				return false
			}
			left--
			lit := "sub"
			if s.Op == ir.OpSub {
				lit = "add"
			}
			if err := ModifyOpc(s, lit); err != nil {
				t.Fatal(err)
			}
			return true
		}
		var events []FixpointEvent
		n, err := Fixpoint(p, apply, Limits{
			FullRecompute: full,
			OnEvent:       func(e FixpointEvent) { events = append(events, e) },
		})
		if err != nil || n != 2 {
			t.Fatalf("FullRecompute=%t: n=%d err=%v", full, n, err)
		}
		if len(events) != 3 {
			t.Fatalf("FullRecompute=%t: %d events, want 3", full, len(events))
		}
		for i, e := range events[:2] {
			if e.Iteration != i || !e.Applied {
				t.Errorf("FullRecompute=%t: event %d = %+v", full, i, e)
			}
			// An in-place opcode modification is journal-expressible, so the
			// incremental path handles it whenever it is enabled.
			if e.Incremental == full {
				t.Errorf("FullRecompute=%t: event %d Incremental=%t", full, i, e.Incremental)
			}
		}
		last := events[2]
		if last.Applied || last.Iteration != 2 {
			t.Errorf("FullRecompute=%t: final event = %+v, want unapplied iteration 2", full, last)
		}
	}
}

// TestFixpointEventsAtLimit: a capped run emits only Applied events (the
// loop never reaches a converging search).
func TestFixpointEventsAtLimit(t *testing.T) {
	p, s := limitProgram()
	toggle := func(p *ir.Program, g *dep.Graph, seen map[string]bool) bool {
		lit := "sub"
		if s.Op == ir.OpSub {
			lit = "add"
		}
		if err := ModifyOpc(s, lit); err != nil {
			t.Fatal(err)
		}
		return true
	}
	var applied int
	_, err := Fixpoint(p, toggle, Limits{
		MaxIterations: 4,
		OnEvent: func(e FixpointEvent) {
			if e.Applied {
				applied++
			}
		},
	})
	if err == nil {
		t.Fatal("expected ErrIterationLimit")
	}
	if applied != 4 {
		t.Fatalf("applied events = %d, want 4", applied)
	}
}
