// Package optlib is the optimizer library of the GENesis reproduction: the
// optimization-independent routines that *generated* optimizer code calls,
// the analog of the paper's 1,873-line C library ("pattern matching
// routines, data dependence verification procedures, and code
// transformation routines", Section 3). The code emitted by
// internal/codegen imports only this package, the ir package and the dep
// package.
package optlib

import (
	"context"
	"errors"
	"fmt"
	"os"

	"repro/dep"
	"repro/internal/cfg"
	"repro/internal/frontend"
	"repro/internal/handopt"
	"repro/ir"
)

// Errors generated optimizers return to abort (and roll back) an
// application.
var (
	// ErrGone reports an action target no longer in the program.
	ErrGone = errors.New("optlib: statement no longer in program")
	// ErrNotConst reports an eval() over non-constant operands.
	ErrNotConst = errors.New("optlib: eval needs constant operands")
)

// --- pattern-matching predicates ---

// OpcIs reports whether the statement's opcode matches the GOSpeL opc
// literal (assign, add, sub, mul, div, mod; loop headers answer do/doall).
func OpcIs(s *ir.Stmt, lit string) bool {
	return opcName(s) == lit
}

// KindIs reports whether the statement's kind matches the GOSpeL kind
// literal (assign, do, doall, enddo, if, else, endif, print, read).
func KindIs(s *ir.Stmt, lit string) bool {
	return kindName(s) == lit
}

func opcName(s *ir.Stmt) string {
	if s.Kind != ir.SAssign {
		return kindName(s)
	}
	switch s.Op {
	case ir.OpCopy:
		return "assign"
	case ir.OpAdd:
		return "add"
	case ir.OpSub:
		return "sub"
	case ir.OpMul:
		return "mul"
	case ir.OpDiv:
		return "div"
	case ir.OpMod:
		return "mod"
	}
	return "?"
}

func kindName(s *ir.Stmt) string {
	switch s.Kind {
	case ir.SAssign:
		return "assign"
	case ir.SDoHead:
		if s.Parallel {
			return "doall"
		}
		return "do"
	case ir.SDoEnd:
		return "enddo"
	case ir.SIf:
		return "if"
	case ir.SElse:
		return "else"
	case ir.SEndIf:
		return "endif"
	case ir.SPrint:
		return "print"
	case ir.SRead:
		return "read"
	}
	return "?"
}

// OpcName returns the statement's GOSpeL opc literal (assign, add, ...).
func OpcName(s *ir.Stmt) string { return opcName(s) }

// KindName returns the statement's GOSpeL kind literal.
func KindName(s *ir.Stmt) string { return kindName(s) }

// OperandType returns the GOSpeL type literal of an operand: const, var,
// array or none.
func OperandType(o ir.Operand) string {
	switch o.Kind {
	case ir.Const:
		return "const"
	case ir.Var:
		return "var"
	case ir.ArrayRef:
		return "array"
	}
	return "none"
}

// Opr returns the statement's operand at the paper's position numbering
// (1 = opr_1/destination/init, 2 = opr_2/final, 3 = opr_3/step); an absent
// slot yields the empty operand.
func Opr(s *ir.Stmt, i int) ir.Operand {
	op := s.OperandSlot(i)
	if op == nil {
		return ir.None()
	}
	return *op
}

// OperandEq is structural operand equality.
func OperandEq(a, b ir.Operand) bool { return a.Equal(b) }

// IntTyped reports whether the operand is integer-typed: an integer
// constant, or a scalar/array reference declared INTEGER in p. The absent
// operand and undeclared names are not integer-typed. This backs the
// GOSpeL itype() predicate, which guards transformations (the aggregation
// family) that are only value-preserving under associative arithmetic.
func IntTyped(p *ir.Program, o ir.Operand) bool {
	switch o.Kind {
	case ir.Const:
		return !o.Val.IsFloat
	case ir.Var, ir.ArrayRef:
		d, ok := p.DeclOf(o.Name)
		return ok && !d.IsFloat
	}
	return false
}

// --- dependence helpers (the dep routine's search modes) ---

// Vec builds a direction vector from "<", ">", "=", "*", "<=", ">=", "!=".
func Vec(dirs ...string) dep.Vector {
	v := make(dep.Vector, len(dirs))
	for i, d := range dirs {
		switch d {
		case "<":
			v[i] = dep.DirLT
		case ">":
			v[i] = dep.DirGT
		case "=":
			v[i] = dep.DirEQ
		case "<=":
			v[i] = dep.DirLT | dep.DirEQ
		case ">=":
			v[i] = dep.DirGT | dep.DirEQ
		case "!=", "<>":
			v[i] = dep.DirLT | dep.DirGT
		case "=>", "=<":
			v[i] = dep.DirEQ | dep.DirGT // DirSet.String renders GT|EQ as "=>"
		default:
			v[i] = dep.DirAny
		}
	}
	return v
}

// UsePos returns the operand position of the dependence at its use end
// (DstPos for flow/output, SrcPos for anti) — the pos value GOSpeL's
// (S, pos) binding receives.
func UsePos(d dep.Dependence) int {
	if d.Kind == dep.Anti {
		return d.SrcPos
	}
	return d.DstPos
}

// CarriedBy reports a dependence of the given kind between src and dst
// carried exactly by loop l.
func CarriedBy(p *ir.Program, g *dep.Graph, kind dep.Kind, src, dst *ir.Stmt, l ir.Loop) bool {
	level := 0
	for i, cl := range ir.CommonLoops(p, src, dst) {
		if cl.Head == l.Head {
			level = i + 1
		}
	}
	if level == 0 {
		return false
	}
	for _, d := range g.Query(kind, src, dst, nil) {
		if d.Carried && d.Level == level {
			return true
		}
	}
	return false
}

// IndependentDep reports a loop-independent (not carried) dependence of
// the given kind between src and dst — the `independent` direction form.
func IndependentDep(g *dep.Graph, kind dep.Kind, src, dst *ir.Stmt) bool {
	for _, d := range g.Query(kind, src, dst, nil) {
		if !d.Carried {
			return true
		}
	}
	return false
}

// FusedDepDir reports whether fusing loops l1 and l2 would give some data
// dependence between sm and sn a direction in want.
func FusedDepDir(p *ir.Program, sm, sn *ir.Stmt, l1, l2 ir.Loop, want dep.DirSet) bool {
	return dep.FusedDirections(p, sm, sn, l1, l2).Intersect(want) != 0
}

// --- set helpers ---

// Member reports whether s is one of set's statements.
func Member(set []*ir.Stmt, s *ir.Stmt) bool {
	for _, m := range set {
		if m == s {
			return true
		}
	}
	return false
}

// Path returns the statements strictly between a and b on some
// control-flow path (the paper's path(ID, ID') predefined set).
func Path(p *ir.Program, a, b *ir.Stmt) []*ir.Stmt {
	g := cfg.Build(p)
	ai, bi := p.Index(a), p.Index(b)
	fromA := g.ReachableFrom(ai)
	toB := g.Reaches(bi)
	var out []*ir.Stmt
	for i := 0; i < p.Len(); i++ {
		if i == ai || i == bi {
			continue
		}
		if fromA[i] && toB[i] {
			out = append(out, p.At(i))
		}
	}
	return out
}

// Inter intersects two statement sets.
func Inter(a, b []*ir.Stmt) []*ir.Stmt {
	inB := map[*ir.Stmt]bool{}
	for _, s := range b {
		inB[s] = true
	}
	var out []*ir.Stmt
	for _, s := range a {
		if inB[s] {
			out = append(out, s)
		}
	}
	return out
}

// Union unions two statement sets.
func Union(a, b []*ir.Stmt) []*ir.Stmt {
	seen := map[*ir.Stmt]bool{}
	var out []*ir.Stmt
	for _, s := range append(append([]*ir.Stmt{}, a...), b...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// --- arithmetic helpers ---

// Trip returns a loop's iteration count when all bounds are constant.
func Trip(l ir.Loop) (int64, bool) {
	h := l.Head
	if !h.Init.IsConst() || !h.Final.IsConst() || !h.Step.IsConst() {
		return 0, false
	}
	step := h.Step.Val.AsInt()
	if step == 0 {
		return 0, false
	}
	n := (h.Final.Val.AsInt()-h.Init.Val.AsInt())/step + 1
	if n < 0 {
		n = 0
	}
	return n, true
}

// ConstInt extracts an integer from a constant operand.
func ConstInt(o ir.Operand) (int64, bool) {
	if !o.IsConst() {
		return 0, false
	}
	return o.Val.AsInt(), true
}

// EvalStmt folds a binary assignment with constant operands into a constant
// operand (the eval(Si) action helper).
func EvalStmt(s *ir.Stmt) (ir.Operand, bool) {
	if s.Kind != ir.SAssign || s.Op == ir.OpCopy || !s.A.IsConst() || !s.B.IsConst() {
		return ir.Operand{}, false
	}
	return ir.ConstOp(ir.Arith(s.Op, s.A.Val, s.B.Val)), true
}

// EvalArith folds "a op b" over constant operands (the eval(x op y) form).
func EvalArith(op string, a, b ir.Operand) (ir.Operand, bool) {
	x, okA := ConstInt(a)
	y, okB := ConstInt(b)
	if !okA || !okB {
		return ir.Operand{}, false
	}
	switch op {
	case "+":
		return ir.IntOp(x + y), true
	case "-":
		return ir.IntOp(x - y), true
	case "*":
		return ir.IntOp(x * y), true
	case "/":
		if y == 0 {
			return ir.Operand{}, false
		}
		return ir.IntOp(x / y), true
	case "mod":
		if y == 0 {
			return ir.Operand{}, false
		}
		return ir.IntOp(x % y), true
	}
	return ir.Operand{}, false
}

// --- transformation primitives ---

// ModifyOperand replaces the statement's operand at pos.
func ModifyOperand(s *ir.Stmt, pos int, newOp ir.Operand) error {
	slot := s.OperandSlot(pos)
	if slot == nil {
		return fmt.Errorf("optlib: S%d has no operand %d", s.ID, pos)
	}
	ir.NoteModify(s)
	*slot = newOp.Clone()
	return nil
}

// ModifyOpc assigns a new opcode or loop kind literal.
func ModifyOpc(s *ir.Stmt, lit string) error {
	ir.NoteModify(s)
	switch lit {
	case "assign":
		if s.Kind != ir.SAssign {
			return fmt.Errorf("optlib: %s is not an assignment", kindName(s))
		}
		s.Op = ir.OpCopy
		s.B = ir.None()
	case "add", "sub", "mul", "div", "mod":
		if s.Kind != ir.SAssign {
			return fmt.Errorf("optlib: %s is not an assignment", kindName(s))
		}
		switch lit {
		case "add":
			s.Op = ir.OpAdd
		case "sub":
			s.Op = ir.OpSub
		case "mul":
			s.Op = ir.OpMul
		case "div":
			s.Op = ir.OpDiv
		case "mod":
			s.Op = ir.OpMod
		}
	case "doall":
		if s.Kind != ir.SDoHead {
			return fmt.Errorf("optlib: doall applies to loop headers")
		}
		s.Parallel = true
	case "do":
		if s.Kind != ir.SDoHead {
			return fmt.Errorf("optlib: do applies to loop headers")
		}
		s.Parallel = false
	default:
		return fmt.Errorf("optlib: unknown opcode literal %q", lit)
	}
	return nil
}

// SubstStmt rewrites occurrences of variable v in s by the affine
// expression repl (the modify(S, subst(v, e)) action). The pre-image is
// journaled first: substitution can fail midway through a statement.
func SubstStmt(s *ir.Stmt, v string, repl ir.LinExpr) error {
	ir.NoteModify(s)
	return handopt.SubstVarStmt(s, v, repl)
}

// Substitutable reports whether SubstStmt would succeed.
func Substitutable(s *ir.Stmt, v string, repl ir.LinExpr) bool {
	return handopt.Substitutable(s, v, repl)
}

// LinVar / LinConst / LinAdd / LinSub build affine expressions in generated
// code.
func LinVar(name string) ir.LinExpr     { return ir.VarExpr(name) }
func LinConst(c int64) ir.LinExpr       { return ir.ConstExpr(c) }
func LinAdd(a, b ir.LinExpr) ir.LinExpr { return a.Add(b) }
func LinSub(a, b ir.LinExpr) ir.LinExpr { return a.Sub(b) }

// LinMul multiplies two affine expressions when at least one side is
// constant (the product stays affine); otherwise it reports failure.
func LinMul(a, b ir.LinExpr) (ir.LinExpr, bool) {
	if a.IsConst() {
		return b.Scale(a.Normalize().Const), true
	}
	if b.IsConst() {
		return a.Scale(b.Normalize().Const), true
	}
	return ir.LinExpr{}, false
}

// Dir builds a single direction set from its string form ("<", ">", "=",
// "*", "<=", ">=", "<>", "!=").
func Dir(s string) dep.DirSet {
	return Vec(s)[0]
}

// --- the driver (paper Fig. 5) ---

// ApplyFunc is one generated optimizer's search-and-apply step: find the
// first application point not in seen, apply the actions there, and report
// whether an application happened.
type ApplyFunc func(p *ir.Program, g *dep.Graph, seen map[string]bool) bool

// DefaultMaxIterations is the fixpoint iteration cap used when Limits leaves
// MaxIterations zero.
const DefaultMaxIterations = 1000

// ErrIterationLimit reports that a fixpoint run stopped at its iteration cap
// rather than converging. The application count up to the cap is still
// returned alongside it.
var ErrIterationLimit = errors.New("optlib: fixpoint iteration limit reached without convergence")

// FixpointEvent describes one iteration of a Fixpoint run, emitted
// through Limits.OnEvent for observability: which iteration ran, whether
// an application was performed, and how the dependence graph was
// refreshed afterwards.
type FixpointEvent struct {
	// Iteration is the 0-based loop iteration.
	Iteration int
	// Applied reports whether this iteration performed an application
	// (false only on the final, fixpoint-reaching search).
	Applied bool
	// Incremental reports whether the dependence refresh consumed the
	// change journal in place; false means the structural fallback or a
	// configured full recomputation rebuilt the graph from scratch.
	// Meaningless when Applied is false.
	Incremental bool
}

// Limits configures a Fixpoint run. The zero value selects the defaults:
// DefaultMaxIterations and incremental dependence maintenance.
type Limits struct {
	// MaxIterations bounds the fixpoint loop; 0 means DefaultMaxIterations.
	MaxIterations int
	// FullRecompute rebuilds the dependence graph from scratch after every
	// application instead of incrementally updating it from the change
	// journal (the seed behavior; kept for differential benchmarking).
	FullRecompute bool
	// OnEvent, when non-nil, observes every fixpoint iteration. It is
	// called synchronously from the loop; keep it cheap.
	OnEvent func(FixpointEvent)
	// Parallel sets the region-parallel worker count. Values above 1 let
	// the pipeline run dependence-disjoint regions of the program
	// concurrently for passes marked ParallelSafe, and fan the heavy
	// dependence-maintenance phases out over the same pool for every pass.
	// The optimized output is byte-identical at every worker count; 0 and 1
	// select the plain sequential loop. Per-iteration OnEvent callbacks are
	// suppressed while regions run concurrently.
	Parallel int
}

// Fixpoint runs the Fig. 5 loop to fixpoint: search, apply, refresh
// dependences, until no new application point exists. It returns the number
// of applications performed and ErrIterationLimit when the iteration cap was
// reached before convergence (a non-converging rewrite system, or a cap set
// too low for the program).
//
// The dependence graph is maintained incrementally across applications via
// the program's change journal; failed attempts inside apply roll back
// through the same journal, so the graph stays valid without any per-attempt
// recomputation.
func Fixpoint(p *ir.Program, apply ApplyFunc, lim Limits) (int, error) {
	return FixpointCtx(context.Background(), p, apply, lim)
}

// FixpointCtx is Fixpoint under a context: the loop checks ctx between
// iterations and stops early with ctx.Err() when the context is cancelled or
// its deadline passes. The application count up to the stop is returned; the
// program is left in its partially-optimized (but structurally valid) state.
// This is the entry point long-running services use to bound per-request
// optimization time.
func FixpointCtx(ctx context.Context, p *ir.Program, apply ApplyFunc, lim Limits) (int, error) {
	max := lim.MaxIterations
	if max <= 0 {
		max = DefaultMaxIterations
	}
	seen := map[string]bool{}
	log, owned := p.EnsureLog()
	if owned {
		defer log.Detach()
	}
	g := dep.Compute(p)
	g.SetWorkers(lim.Parallel)
	n := 0
	for i := 0; i < max; i++ {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		start := log.Mark()
		if !apply(p, g, seen) {
			if lim.OnEvent != nil {
				lim.OnEvent(FixpointEvent{Iteration: i})
			}
			return n, nil
		}
		n++
		incremental := false
		if lim.FullRecompute {
			g = dep.Compute(p)
		} else {
			incremental = g.Update(log.Since(start))
		}
		if lim.OnEvent != nil {
			lim.OnEvent(FixpointEvent{Iteration: i, Applied: true, Incremental: incremental})
		}
		if owned {
			log.Reset() // consumed; keep the journal from growing unboundedly
		}
	}
	return n, ErrIterationLimit
}

// Driver runs Fixpoint with default limits, preserving the original
// count-only interface for existing callers. A run that hits the iteration
// cap is reported on stderr instead of being silently truncated.
func Driver(p *ir.Program, apply ApplyFunc) int {
	n, err := Fixpoint(p, apply, Limits{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "optlib: driver stopped after %d application(s): %v\n", n, err)
	}
	return n
}

// Sig2 / Sig3 / SigN build application-point signatures matching the
// engine's value-set convention.
func SigN(parts ...string) string {
	// insertion sort (tiny n)
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ";"
		}
		out += p
	}
	return out
}

// SigStmt / SigLoop / SigNum render one binding for SigN.
func SigStmt(s *ir.Stmt) string { return fmt.Sprintf("S%d", s.ID) }
func SigLoop(l ir.Loop) string  { return fmt.Sprintf("L%d", l.Head.ID) }
func SigNum(n int) string       { return fmt.Sprintf("%d", n) }

// SigSet renders a statement-set binding as its sorted member IDs, matching
// the engine's convention. Rendering the members (not just the size) keeps
// two distinct sets of equal cardinality from colliding to one signature.
func SigSet(set []*ir.Stmt) string {
	ids := make([]int, 0, len(set))
	for _, s := range set {
		if s != nil {
			ids = append(ids, s.ID)
		}
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	out := "set{"
	for i, id := range ids {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("S%d", id)
	}
	return out + "}"
}

// Main is the generated optimizer's command-line entry point: read a MiniF
// source file, run the optimizer to fixpoint, print the optimized program
// and the application count.
func Main(name string, apply ApplyFunc) {
	if len(os.Args) < 2 {
		fmt.Fprintf(os.Stderr, "usage: %s <program.mf>\n", name)
		os.Exit(2)
	}
	src, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p, err := frontend.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	n, err := Fixpoint(p, apply, Limits{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	}
	fmt.Printf("! %s: %d application(s)\n", name, n)
	fmt.Print(p.String())
}
