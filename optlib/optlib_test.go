package optlib

import (
	"testing"

	"repro/dep"
	"repro/internal/frontend"
	"repro/ir"
)

func TestPredicates(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER i, x
REAL a(10)
x = 1
x = x + 2
DOALL i = 1, 10
  a(i) = 1.0
ENDDO
END`)
	copyStmt, addStmt, do := p.At(0), p.At(1), p.At(2)
	if !OpcIs(copyStmt, "assign") || !OpcIs(addStmt, "add") || OpcIs(addStmt, "assign") {
		t.Error("OpcIs broken")
	}
	if !KindIs(do, "doall") || KindIs(do, "do") || !KindIs(copyStmt, "assign") {
		t.Error("KindIs broken")
	}
	if OperandType(Opr(copyStmt, 2)) != "const" || OperandType(Opr(addStmt, 2)) != "var" {
		t.Error("OperandType broken")
	}
	if OperandType(ir.None()) != "none" {
		t.Error("none type")
	}
	if Opr(copyStmt, 9).Present() {
		t.Error("absent slot must be empty")
	}
	if !OperandEq(Opr(copyStmt, 1), ir.VarOp("x")) {
		t.Error("OperandEq broken")
	}
}

func TestVecAndDir(t *testing.T) {
	v := Vec("<", ">", "=", "*", "<=", ">=", "!=", "<>", "=>")
	want := dep.Vector{
		dep.DirLT, dep.DirGT, dep.DirEQ, dep.DirAny,
		dep.DirLT | dep.DirEQ, dep.DirGT | dep.DirEQ,
		dep.DirLT | dep.DirGT, dep.DirLT | dep.DirGT,
		dep.DirEQ | dep.DirGT,
	}
	for i := range want {
		if v[i] != want[i] {
			t.Errorf("Vec[%d] = %v, want %v", i, v[i], want[i])
		}
	}
	if Dir("<") != dep.DirLT || Dir("*") != dep.DirAny {
		t.Error("Dir broken")
	}
	// Round-trip: the String form of every DirSet parses back.
	for d := dep.DirSet(1); d <= dep.DirAny; d++ {
		if Dir(d.String()) != d {
			t.Errorf("Dir(%q) = %v, want %v", d.String(), Dir(d.String()), d)
		}
	}
}

func TestDepHelpers(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(10), s
s = 0.0
DO i = 2, 10
  a(i) = a(i-1)
  s = s + 1.0
ENDDO
PRINT s
END`)
	g := dep.Compute(p)
	l := ir.Loops(p)[0]
	rec, red := p.At(2), p.At(3)
	if !CarriedBy(p, g, dep.Flow, rec, rec, l) {
		t.Error("recurrence must be carried by its loop")
	}
	if !IndependentDep(g, dep.Flow, p.At(0), p.At(3)) {
		t.Error("s=0 → s=s+1 is loop independent")
	}
	if IndependentDep(g, dep.Flow, rec, rec) {
		t.Error("the recurrence self-dependence is not independent")
	}
	d := g.Query(dep.Flow, red, nil, nil)
	if len(d) == 0 || UsePos(d[0]) == 0 {
		t.Error("UsePos must report the use operand")
	}
}

func TestSetHelpers(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER x, y, z
x = 1
y = x
z = y
END`)
	a, b, c := p.At(0), p.At(1), p.At(2)
	between := Path(p, a, c)
	if len(between) != 1 || between[0] != b {
		t.Errorf("Path = %v", between)
	}
	if !Member([]*ir.Stmt{a, b}, a) || Member([]*ir.Stmt{a}, c) {
		t.Error("Member broken")
	}
	i := Inter([]*ir.Stmt{a, b}, []*ir.Stmt{b, c})
	if len(i) != 1 || i[0] != b {
		t.Error("Inter broken")
	}
	u := Union([]*ir.Stmt{a, b}, []*ir.Stmt{b, c})
	if len(u) != 3 {
		t.Error("Union broken")
	}
}

func TestArithmeticHelpers(t *testing.T) {
	p := frontend.MustParse("PROGRAM p\nINTEGER i\nDO i = 1, 9, 2\nENDDO\nEND")
	l := ir.Loops(p)[0]
	n, ok := Trip(l)
	if !ok || n != 5 {
		t.Errorf("Trip = %d, %v", n, ok)
	}
	if _, ok := ConstInt(ir.VarOp("x")); ok {
		t.Error("ConstInt on var must fail")
	}
	s := &ir.Stmt{Kind: ir.SAssign, Dst: ir.VarOp("x"), Op: ir.OpMul, A: ir.IntOp(3), B: ir.IntOp(4)}
	v, ok := EvalStmt(s)
	if !ok || v.Val.AsInt() != 12 {
		t.Errorf("EvalStmt = %v, %v", v, ok)
	}
	if _, ok := EvalStmt(&ir.Stmt{Kind: ir.SAssign, Dst: ir.VarOp("x"), Op: ir.OpCopy, A: ir.IntOp(1)}); ok {
		t.Error("EvalStmt on copy must fail")
	}
	sum, ok := EvalArith("+", ir.IntOp(2), ir.IntOp(3))
	if !ok || sum.Val.AsInt() != 5 {
		t.Error("EvalArith + broken")
	}
	if _, ok := EvalArith("/", ir.IntOp(1), ir.IntOp(0)); ok {
		t.Error("division by zero must fail")
	}
	if _, ok := EvalArith("+", ir.VarOp("x"), ir.IntOp(1)); ok {
		t.Error("non-const must fail")
	}
}

func TestTransformHelpers(t *testing.T) {
	p := frontend.MustParse("PROGRAM p\nINTEGER x\nx = 1 + 2\nEND")
	s := p.At(0)
	if err := ModifyOperand(s, 2, ir.IntOp(9)); err != nil {
		t.Fatal(err)
	}
	if s.A.Val.AsInt() != 9 {
		t.Error("ModifyOperand broken")
	}
	if err := ModifyOperand(s, 7, ir.IntOp(1)); err == nil {
		t.Error("bad slot must fail")
	}
	if err := ModifyOpc(s, "assign"); err != nil {
		t.Fatal(err)
	}
	if s.Op != ir.OpCopy || s.B.Present() {
		t.Error("ModifyOpc assign must clear the third operand")
	}
	if err := ModifyOpc(s, "mul"); err != nil {
		t.Fatal(err)
	}
	if err := ModifyOpc(s, "zzz"); err == nil {
		t.Error("unknown literal must fail")
	}
	do := &ir.Stmt{Kind: ir.SDoHead, LCV: "i", Init: ir.IntOp(1), Final: ir.IntOp(2), Step: ir.IntOp(1)}
	if err := ModifyOpc(do, "doall"); err != nil || !do.Parallel {
		t.Error("doall flag")
	}
	if err := ModifyOpc(do, "do"); err != nil || do.Parallel {
		t.Error("do flag")
	}
	if err := ModifyOpc(s, "doall"); err == nil {
		t.Error("doall on assign must fail")
	}
}

func TestDriverAndSig(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER x, y
x = 3 + 4
y = 1 + 1
END`)
	// A tiny generated-style optimizer: fold one constant statement per
	// driver round.
	apply := func(pr *ir.Program, g *dep.Graph, seen map[string]bool) bool {
		for _, s := range pr.Stmts() {
			if !KindIs(s, "assign") || OpcIs(s, "assign") {
				continue
			}
			v, ok := EvalStmt(s)
			if !ok {
				continue
			}
			sig := SigN(SigStmt(s))
			if seen[sig] {
				continue
			}
			seen[sig] = true
			if err := ModifyOperand(s, 2, v); err != nil {
				continue
			}
			if err := ModifyOpc(s, "assign"); err != nil {
				continue
			}
			return true
		}
		return false
	}
	n := Driver(p, apply)
	if n != 2 {
		t.Fatalf("driver applied %d, want 2\n%s", n, p)
	}
	if SigN("b", "a") != "a;b" || SigN() != "" {
		t.Error("SigN must sort")
	}
	if SigNum(3) != "3" {
		t.Error("SigNum")
	}
	l := ir.Loop{Head: &ir.Stmt{ID: 7, Kind: ir.SDoHead}}
	if SigLoop(l) != "L7" {
		t.Error("SigLoop")
	}
}
