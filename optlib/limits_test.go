package optlib

import (
	"errors"
	"testing"

	"repro/dep"
	"repro/ir"
)

func limitProgram() (*ir.Program, *ir.Stmt) {
	b := ir.NewBuilder("limit")
	b.Declare("x", true)
	b.Copy(ir.VarOp("x"), ir.ConstOp(ir.FloatVal(1)))
	s := b.Assign(ir.VarOp("x"), ir.VarOp("x"), ir.OpAdd, ir.VarOp("x"))
	b.Print(ir.VarOp("x"))
	return b.P, s
}

// TestFixpointIterationLimit: an apply function that never converges must
// stop at the configured cap and report ErrIterationLimit with the count of
// applications actually made.
func TestFixpointIterationLimit(t *testing.T) {
	p, s := limitProgram()
	toggle := func(p *ir.Program, g *dep.Graph, seen map[string]bool) bool {
		lit := "sub"
		if s.Op == ir.OpSub {
			lit = "add"
		}
		if err := ModifyOpc(s, lit); err != nil {
			t.Fatal(err)
		}
		return true
	}
	n, err := Fixpoint(p, toggle, Limits{MaxIterations: 7})
	if !errors.Is(err, ErrIterationLimit) {
		t.Fatalf("Fixpoint error = %v, want ErrIterationLimit", err)
	}
	if n != 7 {
		t.Fatalf("Fixpoint made %d applications before the cap, want 7", n)
	}
}

// TestFixpointConverges: a converging apply function returns a nil error and
// the exact application count, under both dependence-maintenance modes.
func TestFixpointConverges(t *testing.T) {
	for _, full := range []bool{false, true} {
		p, s := limitProgram()
		left := 3
		apply := func(p *ir.Program, g *dep.Graph, seen map[string]bool) bool {
			if left == 0 {
				return false
			}
			left--
			lit := "sub"
			if s.Op == ir.OpSub {
				lit = "add"
			}
			if err := ModifyOpc(s, lit); err != nil {
				t.Fatal(err)
			}
			return true
		}
		n, err := Fixpoint(p, apply, Limits{FullRecompute: full})
		if err != nil {
			t.Fatalf("FullRecompute=%t: unexpected error %v", full, err)
		}
		if n != 3 {
			t.Fatalf("FullRecompute=%t: %d applications, want 3", full, n)
		}
		if p.Journal() != nil {
			t.Fatalf("FullRecompute=%t: Fixpoint leaked its owned journal", full)
		}
	}
}
