package optlib

import (
	"context"
	"fmt"
	"time"

	"repro/dep"
	"repro/internal/frontend"
	"repro/ir"
)

// ParseMiniF parses MiniF source into a program. It exists so generated
// optimizer binaries — which live in their own module and therefore cannot
// import repro's internal packages — can still read programs through the
// public optlib surface.
func ParseMiniF(src string) (*ir.Program, error) {
	return frontend.Parse(src)
}

// NamedApply pairs a generated optimizer's ApplyFunc with its spec name for
// pipeline reporting.
type NamedApply struct {
	Name  string
	Apply ApplyFunc
}

// PassCount reports one pipeline pass: how many applications it performed
// and how long its fixpoint ran.
type PassCount struct {
	Name         string
	Applications int
	Duration     time.Duration
}

// Pipeline runs PipelineCtx under context.Background.
func Pipeline(p *ir.Program, passes []NamedApply, lim Limits) ([]PassCount, error) {
	return PipelineCtx(context.Background(), p, passes, lim)
}

// PipelineCtx runs a sequence of generated optimizers over one program,
// each to fixpoint, sharing a single dependence graph across the whole
// pipeline: the graph is computed once up front and maintained
// incrementally from the change journal after every application and across
// pass boundaries. This is the compiled serving fast path — on multi-pass
// pipelines the per-pass dep.Compute that Fixpoint would repeat dominates
// the interpreted path's cost, and eliding it is where most of the
// compiled speedup comes from.
//
// Limits apply per pass (matching the engine's per-pass semantics). On
// error the failing pass is the last entry of the returned slice and the
// error wraps the pass name; counts for completed passes are always
// returned. FullRecompute is honored for differential runs.
func PipelineCtx(ctx context.Context, p *ir.Program, passes []NamedApply, lim Limits) ([]PassCount, error) {
	max := lim.MaxIterations
	if max <= 0 {
		max = DefaultMaxIterations
	}
	log, owned := p.EnsureLog()
	if owned {
		defer log.Detach()
	}
	g := dep.Compute(p)
	counts := make([]PassCount, 0, len(passes))
	for _, pass := range passes {
		begin := time.Now()
		n, err := fixpointShared(ctx, p, g, pass.Apply, max, owned, lim)
		counts = append(counts, PassCount{Name: pass.Name, Applications: n, Duration: time.Since(begin)})
		if err != nil {
			return counts, fmt.Errorf("%s: %w", pass.Name, err)
		}
	}
	return counts, nil
}

// fixpointShared is the Fig. 5 loop against a caller-maintained dependence
// graph. The journal is consumed (and, when owned by the enclosing
// pipeline, reset) after every application so the graph is valid when the
// next pass starts.
func fixpointShared(ctx context.Context, p *ir.Program, g *dep.Graph, apply ApplyFunc, max int, owned bool, lim Limits) (int, error) {
	seen := map[string]bool{}
	log, _ := p.EnsureLog()
	n := 0
	for i := 0; i < max; i++ {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		start := log.Mark()
		if !apply(p, g, seen) {
			if lim.OnEvent != nil {
				lim.OnEvent(FixpointEvent{Iteration: i})
			}
			return n, nil
		}
		n++
		incremental := false
		if lim.FullRecompute {
			*g = *dep.Compute(p)
		} else {
			incremental = g.Update(log.Since(start))
		}
		if lim.OnEvent != nil {
			lim.OnEvent(FixpointEvent{Iteration: i, Applied: true, Incremental: incremental})
		}
		if owned {
			log.Reset()
		}
	}
	return n, ErrIterationLimit
}
