package optlib

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/dep"
	"repro/internal/frontend"
	"repro/internal/region"
	"repro/ir"
)

// ParseMiniF parses MiniF source into a program. It exists so generated
// optimizer binaries — which live in their own module and therefore cannot
// import repro's internal packages — can still read programs through the
// public optlib surface.
func ParseMiniF(src string) (*ir.Program, error) {
	return frontend.Parse(src)
}

// NamedApply pairs a generated optimizer's ApplyFunc with its spec name for
// pipeline reporting.
type NamedApply struct {
	Name  string
	Apply ApplyFunc
	// ParallelSafe marks the pass as region-eligible: its specification
	// passed region.EligibleSpec, so running it region-at-a-time over a
	// dependence-disjoint partition produces exactly the whole-program
	// result. Leave false (the default) for passes of unknown provenance —
	// they still run correctly, just without the region fast path.
	ParallelSafe bool
}

// PassCount reports one pipeline pass: how many applications it performed
// and how long its fixpoint ran.
type PassCount struct {
	Name         string
	Applications int
	Duration     time.Duration
}

// Pipeline runs PipelineCtx under context.Background.
func Pipeline(p *ir.Program, passes []NamedApply, lim Limits) ([]PassCount, error) {
	return PipelineCtx(context.Background(), p, passes, lim)
}

// PipelineCtx runs a sequence of generated optimizers over one program,
// each to fixpoint, sharing a single dependence graph across the whole
// pipeline: the graph is computed once up front and maintained
// incrementally from the change journal after every application and across
// pass boundaries. This is the compiled serving fast path — on multi-pass
// pipelines the per-pass dep.Compute that Fixpoint would repeat dominates
// the interpreted path's cost, and eliding it is where most of the
// compiled speedup comes from.
//
// Limits apply per pass (matching the engine's per-pass semantics). On
// error the failing pass is the last entry of the returned slice and the
// error wraps the pass name; counts for completed passes are always
// returned. FullRecompute is honored for differential runs.
func PipelineCtx(ctx context.Context, p *ir.Program, passes []NamedApply, lim Limits) ([]PassCount, error) {
	max := lim.MaxIterations
	if max <= 0 {
		max = DefaultMaxIterations
	}
	log, owned := p.EnsureLog()
	if owned {
		defer log.Detach()
	}
	g := dep.Compute(p)
	g.SetWorkers(lim.Parallel)
	counts := make([]PassCount, 0, len(passes))
	for _, pass := range passes {
		begin := time.Now()
		var n int
		var err error
		ran := false
		if lim.Parallel > 1 && pass.ParallelSafe {
			n, ran, err = fixpointRegions(ctx, p, g, pass.Apply, max, owned, lim)
		}
		if !ran && err == nil {
			n, err = fixpointShared(ctx, p, g, pass.Apply, max, owned, lim)
		}
		counts = append(counts, PassCount{Name: pass.Name, Applications: n, Duration: time.Since(begin)})
		if err != nil {
			return counts, fmt.Errorf("%s: %w", pass.Name, err)
		}
	}
	return counts, nil
}

// fixpointRegions runs one ParallelSafe pass region-at-a-time: the program
// is partitioned over the shared graph, each region reaches its own
// fixpoint concurrently on a private sub-program, and the results splice
// back in region order — exactly the sequential outcome, because the
// sequential search visits region 0's application points before region
// 1's. ran=false (with p untouched) asks the caller to run the plain
// sequential fixpoint instead: the program did not partition, a region hit
// the iteration cap (only a whole-program run can decide where the cap
// cuts), or the pass found nothing to do region-locally.
func fixpointRegions(ctx context.Context, p *ir.Program, g *dep.Graph, apply ApplyFunc, max int, owned bool, lim Limits) (int, bool, error) {
	pt := region.Compute(p, g)
	if pt.Len() < 2 {
		return 0, false, nil
	}
	log, _ := p.EnsureLog()
	start := log.Mark()
	sub := lim
	sub.OnEvent = nil // concurrent per-iteration events would race
	out, err := region.Execute(p, pt, lim.Parallel, max, func(i int, sp *ir.Program) (int, error) {
		sg := dep.Compute(sp)
		slog, sowned := sp.EnsureLog()
		if sowned {
			defer slog.Detach()
		}
		return fixpointShared(ctx, sp, sg, apply, max, sowned, sub)
	})
	if err != nil {
		if errors.Is(err, ErrIterationLimit) {
			return 0, false, nil
		}
		return 0, false, err
	}
	if out.Fallback {
		return 0, false, nil
	}
	// The splice is journaled on p; refresh the shared graph from it so the
	// next pass starts valid.
	if lim.FullRecompute {
		*g = *dep.Compute(p)
		g.SetWorkers(lim.Parallel)
	} else {
		g.Update(log.Since(start))
	}
	if owned {
		log.Reset()
	}
	return out.Apps, true, nil
}

// fixpointShared is the Fig. 5 loop against a caller-maintained dependence
// graph. The journal is consumed (and, when owned by the enclosing
// pipeline, reset) after every application so the graph is valid when the
// next pass starts.
func fixpointShared(ctx context.Context, p *ir.Program, g *dep.Graph, apply ApplyFunc, max int, owned bool, lim Limits) (int, error) {
	seen := map[string]bool{}
	log, _ := p.EnsureLog()
	n := 0
	for i := 0; i < max; i++ {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		start := log.Mark()
		if !apply(p, g, seen) {
			if lim.OnEvent != nil {
				lim.OnEvent(FixpointEvent{Iteration: i})
			}
			return n, nil
		}
		n++
		incremental := false
		if lim.FullRecompute {
			*g = *dep.Compute(p)
		} else {
			incremental = g.Update(log.Since(start))
		}
		if lim.OnEvent != nil {
			lim.OnEvent(FixpointEvent{Iteration: i, Applied: true, Incremental: incremental})
		}
		if owned {
			log.Reset()
		}
	}
	return n, ErrIterationLimit
}
