// Command optd is the long-running optimization service: the paper's
// constructor-built optimizer interface served over HTTP/JSON instead of a
// one-shot CLI. It exposes the full parse → dependence-compute → optimize →
// MiniF pipeline statelessly and through stateful constructor sessions.
//
// Endpoints:
//
//	GET  /healthz                      liveness
//	GET  /metrics                      expvar-style counters (JSON)
//	POST /v1/optimize                  {source, opts, specs?, max_iterations?} → optimized MiniF/IR
//	POST /v1/points                    {source, opts?} → application-point census
//	POST /v1/session                   create an interactive constructor session
//	GET  /v1/session/{id}/points?opt=X candidate application points
//	POST /v1/session/{id}/apply        apply at a point (override dependences with {"override":true})
//	POST /v1/session/{id}/skip         exclude a point from applyall
//	POST /v1/session/{id}/applyall     fixpoint over the remaining points
//	POST /v1/session/{id}/recompute    toggle dependence recomputation
//	GET  /v1/session/{id}/result       fetch the optimized program
//	DELETE /v1/session/{id}            end the session
//
// Results are cached content-addressed (SHA-256 of source, opt sequence,
// spec text and limits) in a bounded LRU; concurrency is bounded by an
// admission limiter; every request carries a deadline; optimizer panics
// become 500s without killing the daemon; SIGINT/SIGTERM drain in-flight
// requests while refusing new ones.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8724", "listen address")
		workers  = flag.Int("workers", 0, "max concurrent optimization requests (0 = GOMAXPROCS)")
		cacheN   = flag.Int("cache", 256, "result cache entries (0 disables)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		maxIter  = flag.Int("maxiter", 0, "default per-pass application cap (0 = optlib default, 1000)")
		maxBody  = flag.Int64("max-body", 1<<20, "max request body bytes")
		sessions = flag.Int("sessions", 64, "max live constructor sessions")
		ttl      = flag.Duration("session-ttl", 30*time.Minute, "idle session lifetime")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	)
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintln(os.Stderr, "optd: -workers must be >= 0")
		os.Exit(2)
	}

	cacheEntries := *cacheN
	if cacheEntries == 0 {
		cacheEntries = -1 // Config: negative disables, 0 selects the default
	}
	srv := server.New(server.Config{
		MaxConcurrent:  *workers,
		CacheEntries:   cacheEntries,
		RequestTimeout: *timeout,
		MaxIterations:  *maxIter,
		MaxBodyBytes:   *maxBody,
		MaxSessions:    *sessions,
		SessionTTL:     *ttl,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("optd: %v", err)
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Printf("optd listening on %s", ln.Addr())

	select {
	case err := <-errc:
		log.Fatalf("optd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("optd draining (up to %s)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Refuse new requests at the application layer first, then close
	// listeners and wait for connections at the HTTP layer.
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("optd: drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("optd: http shutdown: %v", err)
	}
	log.Printf("optd stopped")
}
