// Command optd is the long-running optimization service: the paper's
// constructor-built optimizer interface served over HTTP/JSON instead of a
// one-shot CLI. It exposes the full parse → dependence-compute → optimize →
// MiniF pipeline statelessly and through stateful constructor sessions.
//
// Endpoints:
//
//	GET  /healthz                      liveness
//	GET  /metrics                      counters — JSON by default, Prometheus
//	                                   text format with Accept: text/plain
//	POST /v1/optimize                  {source, opts, specs?, max_iterations?} → optimized MiniF/IR
//	                                   (?trace=1 adds the span tree inline)
//	POST /v1/points                    {source, opts?} → application-point census
//	POST /v1/session                   create an interactive constructor session
//	GET  /v1/session/{id}/points?opt=X candidate application points
//	POST /v1/session/{id}/apply        apply at a point (override dependences with {"override":true})
//	POST /v1/session/{id}/skip         exclude a point from applyall
//	POST /v1/session/{id}/applyall     fixpoint over the remaining points
//	POST /v1/session/{id}/recompute    toggle dependence recomputation
//	GET  /v1/session/{id}/result       fetch the optimized program
//	DELETE /v1/session/{id}            end the session
//	POST /v1/jobs                      submit a batch optimization job (202 + job ID)
//	GET  /v1/jobs                      list jobs (?state=, ?limit=, ?before= cursor)
//	GET  /v1/jobs/{id}                 job status (?wait=1 long-polls to terminal)
//	GET  /v1/jobs/{id}/result          fetch a finished job's result
//	DELETE /v1/jobs/{id}               cancel a job
//	GET  /v1/version                   build/runtime identity (module, go, codegen, ring)
//	GET  /v1/traces                    list stored traces (?route=, ?engine=, ?order=,
//	                                   ?status=, ?error=1, ?min_duration_ms=, ?limit=)
//	GET  /v1/traces/{id}               full span forest for one trace ID, merged from
//	                                   every cluster peer (?local=1 restricts to this node)
//	POST /v1/farm                      start a differential fuzzing campaign (202 + campaign ID)
//	GET  /v1/farm                      list campaigns and the persisted finding count
//	GET  /v1/farm/{id}                 campaign progress (?wait=1 long-polls to done)
//	GET  /v1/farm/{id}/findings        minimized divergence findings for one campaign
//
// Jobs are durable when -jobs-dir is set: every state transition is
// journaled to a write-ahead log, and a restart replays it — jobs caught
// mid-run by a crash or kill -9 are requeued and complete. Without
// -jobs-dir the queue is in-memory only.
//
// With -peers (and -advertise naming this node's entry in that list) optd
// runs sharded: a consistent-hash ring routes each content-addressed
// request — POST /v1/optimize and POST /v1/jobs — to its owning node, the
// server proxies requests that arrive elsewhere (one hop, deadline
// propagated, single-retry failover to the ring successor when the owner
// is down), and job-status routes answer with a one-hop 307 to the job's
// owner. Per-peer health comes from probing /healthz with exponential
// backoff on down peers.
//
// -engine selects how optimization pipelines execute: auto (the default)
// serves from ahead-of-time compiled optimizer artifacts once they are
// built, falling back to the interpreted engine transparently; interp
// forces interpretation; compiled additionally refuses to start until the
// artifact covering every built-in optimization is built or loaded.
// Artifacts are cached content-addressed under -native-dir and every
// response names its engine in the X-Optd-Engine header.
//
// A pass-ordering advisor learns from every completed run: requests with
// "order":"auto" (or ?order=auto) are scheduled with the pass order that
// historically applied the most optimizations to the nearest similar
// programs, falling back to the requested order when history is thin. The
// outcome store is durable under -advisor-dir; `optd -advisor-replay URL`
// re-submits the standing example/proggen corpus as low-priority jobs
// against a live instance to keep that history fresh, then exits.
//
// POST /v1/farm runs the differential fuzzing farm through the same job
// queue: generated programs (content-addressed campaigns, idempotent
// resubmission) are swept as low-priority jobs through the reference
// interpreter and several optimizer configurations, and any divergence is
// minimized and persisted — durably under -farm-dir — for
// /v1/farm/{id}/findings.
//
// Every request is traced: the server joins a W3C-style Traceparent header
// when one arrives (one-hop forwards, replay sweeps) and mints a fresh
// trace otherwise, threading spans through job queues, the advisor and
// compiled-engine subprocesses. A tail sampler keeps every error and
// slow-percentile trace plus 1 in -trace-sample of the rest in a bounded
// per-node store (-trace-store fragments, optionally spilled under
// -trace-dir), queryable via /v1/traces. Latency histograms carry exemplar
// trace IDs in the Prometheus exposition.
//
// Results are cached content-addressed (SHA-256 of source, opt sequence,
// spec text and limits) in a bounded LRU; concurrency is bounded by an
// admission limiter; every request carries a deadline; optimizer panics
// become 500s without killing the daemon; SIGINT/SIGTERM drain in-flight
// requests while refusing new ones.
//
// Logs are structured (log/slog); -logfmt selects text (default) or json.
// -debug-addr starts a second listener serving net/http/pprof under
// /debug/pprof/ — kept off the public address so profiling endpoints are
// never exposed to API clients.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8724", "listen address")
		debugAddr = flag.String("debug-addr", "", "pprof/debug listen address (empty disables)")
		logfmt    = flag.String("logfmt", "text", "log format: text or json")
		workers   = flag.Int("workers", 0, "max concurrent optimization requests (0 = GOMAXPROCS)")
		cacheN    = flag.Int("cache", 256, "result cache entries (0 disables)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		maxIter   = flag.Int("maxiter", 0, "default per-pass application cap (0 = optlib default, 1000)")
		regionW   = flag.Int("region-workers", 0, "default region-parallel workers per request (0 or 1 = sequential; output is byte-identical at any setting)")
		maxBody   = flag.Int64("max-body", 1<<20, "max request body bytes")
		sessions  = flag.Int("sessions", 64, "max live constructor sessions")
		ttl       = flag.Duration("session-ttl", 30*time.Minute, "idle session lifetime")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")

		jobsDir     = flag.String("jobs-dir", "", "batch-job WAL directory (empty = in-memory queue)")
		jobsWorkers = flag.Int("jobs-workers", 0, "max concurrently running batch jobs (0 = GOMAXPROCS)")
		jobsRetries = flag.Int("jobs-retries", 2, "default re-run budget after a job's first attempt")

		peers     = flag.String("peers", "", "comma-separated cluster member addresses (host:port, including this node); empty = single node")
		advertise = flag.String("advertise", "", "this node's address as it appears in -peers (required with -peers)")

		engine    = flag.String("engine", "auto", "optimizer engine: auto (serve from compiled artifacts when loaded, interpret otherwise), interp, or compiled (require the built-in artifact before accepting traffic)")
		nativeDir = flag.String("native-dir", "", "compiled-artifact cache directory (empty = the user cache dir)")

		advisorDir    = flag.String("advisor-dir", "", "pass-ordering advisor outcome-store directory (empty = memory-only history)")
		advisorK      = flag.Int("advisor-k", 0, "advisor k-NN neighborhood size (0 = default, 8)")
		advisorMin    = flag.Int("advisor-min", 0, "advisor minimum neighbors before it recommends instead of falling back (0 = default, 3)")
		advisorMax    = flag.Int("advisor-max-records", 0, "advisor outcome-store record cap before compaction (0 = default, 4096)")
		advisorReplay = flag.String("advisor-replay", "", "optd base URL: instead of serving, re-submit the freshness corpus as low-priority jobs against that instance, wait, and exit")

		traceStore  = flag.Int("trace-store", 0, "retained trace fragments per node (0 = default, 1024; negative disables tracing)")
		traceSample = flag.Int("trace-sample", 0, "tail-sample 1 in N unremarkable traces; errors and slow traces are always kept (0 = default, 16; 1 keeps everything)")
		traceDir    = flag.String("trace-dir", "", "spill kept trace fragments to a CRC-framed log in this directory (empty = memory only)")

		farmDir = flag.String("farm-dir", "", "fuzzing-farm finding-store directory (empty = findings are memory-only)")
	)
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintln(os.Stderr, "optd: -workers must be >= 0")
		os.Exit(2)
	}
	if *logfmt != "text" && *logfmt != "json" {
		fmt.Fprintf(os.Stderr, "optd: -logfmt must be text or json (got %q)\n", *logfmt)
		os.Exit(2)
	}
	if !server.ValidEngine(*engine) {
		fmt.Fprintf(os.Stderr, "optd: -engine must be auto, interp or compiled (got %q)\n", *engine)
		os.Exit(2)
	}
	if *advisorK < 0 || *advisorMin < 0 || *advisorMax < 0 {
		fmt.Fprintln(os.Stderr, "optd: -advisor-k, -advisor-min and -advisor-max-records must be >= 0")
		os.Exit(2)
	}
	if *traceSample < 0 {
		fmt.Fprintln(os.Stderr, "optd: -trace-sample must be >= 0")
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, *logfmt, slog.LevelInfo)
	slog.SetDefault(logger)

	// -advisor-replay turns the binary into a one-shot freshness client: it
	// re-runs the standing corpus through a live optd so the advisor's
	// outcome store tracks the deployed engine rather than decaying. Serving
	// flags are meaningless in this mode.
	if *advisorReplay != "" {
		if err := runAdvisorReplay(*advisorReplay, logger); err != nil {
			logger.Error("advisor replay failed", slog.Any("err", err))
			os.Exit(1)
		}
		return
	}

	cacheEntries := *cacheN
	if cacheEntries == 0 {
		cacheEntries = -1 // Config: negative disables, 0 selects the default
	}
	if *jobsRetries < 0 {
		fmt.Fprintln(os.Stderr, "optd: -jobs-retries must be >= 0")
		os.Exit(2)
	}
	// Cluster flags fail fast: a node with a bad membership view must not
	// come up and silently mis-route content-addressed traffic.
	var peerList []string
	if *peers != "" {
		found := false
		for _, p := range strings.Split(*peers, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			peerList = append(peerList, p)
			found = found || p == *advertise
		}
		if *advertise == "" {
			fmt.Fprintln(os.Stderr, "optd: -peers requires -advertise (this node's entry in the peer list)")
			os.Exit(2)
		}
		if !found {
			fmt.Fprintf(os.Stderr, "optd: -advertise %q is not in -peers %q\n", *advertise, *peers)
			os.Exit(2)
		}
	} else if *advertise != "" {
		fmt.Fprintln(os.Stderr, "optd: -advertise is meaningless without -peers")
		os.Exit(2)
	}
	srv, err := server.New(server.Config{
		MaxConcurrent:       *workers,
		CacheEntries:        cacheEntries,
		RequestTimeout:      *timeout,
		MaxIterations:       *maxIter,
		RegionWorkers:       *regionW,
		MaxBodyBytes:        *maxBody,
		MaxSessions:         *sessions,
		SessionTTL:          *ttl,
		Logger:              logger,
		JobsDir:             *jobsDir,
		JobsWorkers:         *jobsWorkers,
		JobsRetries:         *jobsRetries,
		Peers:               peerList,
		Advertise:           *advertise,
		Engine:              *engine,
		NativeDir:           *nativeDir,
		AdvisorDir:          *advisorDir,
		AdvisorK:            *advisorK,
		AdvisorMinNeighbors: *advisorMin,
		AdvisorMaxRecords:   *advisorMax,
		TraceStore:          *traceStore,
		TraceSampleN:        *traceSample,
		TraceDir:            *traceDir,
		FarmDir:             *farmDir,
	})
	if err != nil {
		logger.Error("server init failed", slog.Any("err", err))
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", slog.Any("err", err))
		os.Exit(1)
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	logger.Info("optd listening", slog.String("addr", ln.Addr().String()))

	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			logger.Error("debug listen failed", slog.Any("err", err))
			os.Exit(1)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug server failed", slog.Any("err", err))
			}
		}()
		logger.Info("optd debug listening", slog.String("addr", dln.Addr().String()))
	}

	select {
	case err := <-errc:
		logger.Error("serve failed", slog.Any("err", err))
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("optd draining", slog.Duration("budget", *drain))
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Refuse new requests at the application layer first, then close
	// listeners and wait for connections at the HTTP layer.
	if err := srv.Shutdown(drainCtx); err != nil {
		logger.Warn("drain incomplete", slog.Any("err", err))
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("http shutdown", slog.Any("err", err))
	}
	if debugSrv != nil {
		_ = debugSrv.Shutdown(drainCtx)
	}
	logger.Info("optd stopped")
}
