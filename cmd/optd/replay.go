package main

// Advisor freshness loop. `optd -advisor-replay URL` is the corpus
// re-submission half of the self-tuning advisor: it replays a standing
// corpus — every example program plus a deterministic internal/proggen
// sample — through a live optd instance under several candidate pass
// orders, as low-priority no-cache batch jobs. Each completed job is
// harvested into the server's outcome store, so the advisor's history
// keeps tracking the engine actually deployed instead of decaying as the
// optimizer evolves. Run it from cron or a CI schedule; it waits for the
// jobs and exits.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/proggen"
	"repro/internal/trace"
	"repro/ir"
)

// replayCorpusDir is where the example programs live relative to the
// working directory; a missing directory is fine (proggen still supplies
// a corpus).
const replayCorpusDir = "examples/programs"

// replayOpts is the optimization set the freshness loop exercises. It
// matches the set production traffic most commonly requests, so replayed
// outcomes land in the same k-NN neighborhoods as live ones.
var replayOpts = []string{"CPP", "CTP", "DCE", "ICM"}

// replayOrders are the candidate pass orders replayed per program: the
// default order, its reverse, and two rotations. Covering several orders
// per program is what gives the retriever something to choose between.
func replayOrders() [][]string {
	n := len(replayOpts)
	def := append([]string(nil), replayOpts...)
	rev := make([]string, n)
	for i, name := range def {
		rev[n-1-i] = name
	}
	rot1 := append(append([]string(nil), def[1:]...), def[0])
	rot2 := append(append([]string(nil), rev[1:]...), rev[0])
	return [][]string{def, rev, rot1, rot2}
}

// replayJob mirrors the server's JobSubmitRequest wire shape (the subset
// the freshness loop needs).
type replayJob struct {
	Source   string   `json:"source"`
	Opts     []string `json:"opts"`
	Order    string   `json:"order"`
	NoCache  bool     `json:"no_cache"`
	Priority string   `json:"priority"`
}

type replayStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	LastError string `json:"last_error"`
	Existing  bool   `json:"existing"`
}

// replayCorpus assembles the program sources: every .mf file under the
// examples directory, then a deterministic proggen sample. Deterministic
// seeds keep successive replay runs content-addressed onto the same jobs,
// so an overlapping cron schedule cannot pile up duplicate work.
func replayCorpus() (map[string]string, error) {
	corpus := make(map[string]string)
	entries, err := os.ReadDir(replayCorpusDir)
	if err == nil {
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".mf") {
				continue
			}
			src, err := os.ReadFile(filepath.Join(replayCorpusDir, e.Name()))
			if err != nil {
				return nil, err
			}
			corpus[e.Name()] = string(src)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	for seed := int64(1); seed <= 8; seed++ {
		p := proggen.Generate(seed, proggen.Config{MaxStmts: 30, MaxDepth: 2})
		corpus[fmt.Sprintf("proggen-%d", seed)] = ir.ToMiniF(p)
	}
	return corpus, nil
}

// runAdvisorReplay submits the corpus × candidate-order matrix and waits
// for every job to reach a terminal state. Failed jobs are reported but do
// not abort the sweep: a single non-converging program must not starve the
// store of every other outcome.
func runAdvisorReplay(base string, logger *slog.Logger) error {
	base = strings.TrimRight(base, "/")
	corpus, err := replayCorpus()
	if err != nil {
		return err
	}
	orders := replayOrders()
	hc := &http.Client{}

	// One trace and one request ID cover the whole sweep: every submission
	// carries a traceparent minted under the same trace ID (fresh span ID
	// per job), so the server threads each replay job's spans — submit,
	// queue, run, passes — into a single queryable sweep trace.
	sweepTrace := trace.NewTraceID()
	sweepReqID := "replay-" + sweepTrace[:8]
	logger.Info("advisor replay sweep", slog.String("trace_id", sweepTrace))

	type pending struct {
		name  string
		order string
		id    string
	}
	var jobs []pending
	for name, src := range corpus {
		for _, order := range orders {
			req := replayJob{
				Source:   src,
				Opts:     replayOpts,
				Order:    strings.Join(order, ","),
				NoCache:  true,
				Priority: "low",
			}
			raw, err := json.Marshal(req)
			if err != nil {
				return err
			}
			hreq, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(raw))
			if err != nil {
				return err
			}
			hreq.Header.Set("Content-Type", "application/json")
			hreq.Header.Set("X-Request-ID", sweepReqID)
			sc := trace.SpanContext{TraceID: sweepTrace, SpanID: trace.NewSpanID()}
			hreq.Header.Set(trace.TraceparentHeader, sc.Traceparent())
			resp, err := hc.Do(hreq)
			if err != nil {
				return fmt.Errorf("submit %s [%s]: %w", name, req.Order, err)
			}
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				return fmt.Errorf("submit %s [%s]: HTTP %d: %s",
					name, req.Order, resp.StatusCode, strings.TrimSpace(string(body)))
			}
			var st replayStatus
			if err := json.Unmarshal(body, &st); err != nil {
				return fmt.Errorf("submit %s [%s]: decoding response: %w", name, req.Order, err)
			}
			jobs = append(jobs, pending{name: name, order: req.Order, id: st.ID})
		}
	}
	logger.Info("advisor replay submitted",
		slog.Int("programs", len(corpus)), slog.Int("jobs", len(jobs)))

	done, failed := 0, 0
	for _, j := range jobs {
		st, err := replayWait(hc, base, j.id)
		if err != nil {
			return fmt.Errorf("wait %s [%s]: %w", j.name, j.order, err)
		}
		if st.State == "done" {
			done++
			continue
		}
		failed++
		logger.Warn("advisor replay job did not finish",
			slog.String("program", j.name), slog.String("order", j.order),
			slog.String("state", st.State), slog.String("err", st.LastError))
	}
	logger.Info("advisor replay complete",
		slog.Int("done", done), slog.Int("failed", failed))
	if done == 0 && len(jobs) > 0 {
		return fmt.Errorf("no replay job completed (%d failed)", failed)
	}
	return nil
}

// replayWait long-polls one job to a terminal state.
func replayWait(hc *http.Client, base, id string) (replayStatus, error) {
	var st replayStatus
	for {
		resp, err := hc.Get(base + "/v1/jobs/" + id + "?wait=1")
		if err != nil {
			return st, err
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return st, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		}
		if err := json.Unmarshal(body, &st); err != nil {
			return st, err
		}
		switch st.State {
		case "done", "failed", "cancelled":
			return st, nil
		}
		time.Sleep(200 * time.Millisecond)
	}
}
