// Package cmd_test builds the command-line tools (and the optd daemon)
// with the real Go toolchain and exercises their primary flags end to end.
package cmd_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

const sample = `
PROGRAM demo
INTEGER n, i
REAL a(16), s
n = 16
s = 0.0
DO i = 1, n
  a(i) = i * 2.0
ENDDO
DO i = 1, 16
  s = s + a(i)
ENDDO
PRINT s
END
`

type binaries struct {
	genesis, opt, experiments, optd string
}

func buildAll(t *testing.T) binaries {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode: skipping CLI builds")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("no go toolchain")
	}
	dir := t.TempDir()
	b := binaries{
		genesis:     filepath.Join(dir, "genesis"),
		opt:         filepath.Join(dir, "opt"),
		experiments: filepath.Join(dir, "experiments"),
		optd:        filepath.Join(dir, "optd"),
	}
	for tool, out := range map[string]string{
		"./cmd/genesis": b.genesis, "./cmd/opt": b.opt,
		"./cmd/experiments": b.experiments, "./cmd/optd": b.optd,
	} {
		cmd := exec.Command(goBin, "build", "-o", out, tool)
		cmd.Dir = ".." // repo root
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, msg)
		}
	}
	return b
}

func writeSample(t *testing.T) string {
	t.Helper()
	f := filepath.Join(t.TempDir(), "demo.mf")
	if err := os.WriteFile(f, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCLIs(t *testing.T) {
	b := buildAll(t)
	prog := writeSample(t)

	t.Run("genesis list", func(t *testing.T) {
		out, err := exec.Command(b.genesis, "-list").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{"CTP", "INX", "FUS", "NRM"} {
			if !strings.Contains(string(out), want) {
				t.Errorf("list missing %s", want)
			}
		}
	})

	t.Run("genesis generate builtin", func(t *testing.T) {
		out, err := exec.Command(b.genesis, "-builtin", "CTP", "-main").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{"package main", "applyCTP", "optlib.Main"} {
			if !strings.Contains(string(out), want) {
				t.Errorf("generated code missing %q", want)
			}
		}
	})

	t.Run("genesis generate from file", func(t *testing.T) {
		spec := filepath.Join(t.TempDir(), "ide.gos")
		src := `
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    any Si: Si.opc == add AND (Si.opr_3 == 0);
  Depend
ACTION
  modify(Si.opc, assign);
`
		if err := os.WriteFile(spec, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		outFile := filepath.Join(t.TempDir(), "gen.go")
		out, err := exec.Command(b.genesis, "-spec", spec, "-name", "MYIDE", "-o", outFile).CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		data, err := os.ReadFile(outFile)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "applyMYIDE") {
			t.Error("generated file missing applyMYIDE")
		}
	})

	t.Run("opt batch", func(t *testing.T) {
		out, err := exec.Command(b.opt, "-opts", "CTP,FUS", "-run", prog).CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		text := string(out)
		if !strings.Contains(text, "CTP: 1 application(s)") ||
			!strings.Contains(text, "FUS: 1 application(s)") {
			t.Errorf("application counts missing:\n%s", text)
		}
		if !strings.Contains(text, "272") { // 2·(1+…+16)
			t.Errorf("execution output missing:\n%s", text)
		}
	})

	t.Run("opt minif round trip", func(t *testing.T) {
		out, err := exec.Command(b.opt, "-opts", "CTP", "-minif", prog).Output()
		if err != nil {
			t.Fatal(err)
		}
		f2 := filepath.Join(t.TempDir(), "rt.mf")
		if err := os.WriteFile(f2, out, 0o644); err != nil {
			t.Fatal(err)
		}
		out2, err := exec.Command(b.opt, "-opts", "", "-run", f2).CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out2)
		}
		if !strings.Contains(string(out2), "272") {
			t.Errorf("re-parsed program lost behaviour:\n%s", out2)
		}
	})

	t.Run("opt points", func(t *testing.T) {
		out, err := exec.Command(b.opt, "-points", prog).CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(string(out), "CTP  1") {
			t.Errorf("points census wrong:\n%s", out)
		}
	})

	t.Run("opt interactive", func(t *testing.T) {
		cmd := exec.Command(b.opt, "-i", prog)
		cmd.Stdin = strings.NewReader("points CTP\napplyall CTP\nrun\nquit\n")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		text := string(out)
		if !strings.Contains(text, "1 application(s)") || !strings.Contains(text, "272") {
			t.Errorf("interactive session output:\n%s", text)
		}
	})

	t.Run("experiments e5", func(t *testing.T) {
		out, err := exec.Command(b.experiments, "-e", "e5").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(string(out), "upper-bound-first") {
			t.Errorf("e5 table missing:\n%s", out)
		}
	})
}

func TestOptUserSpec(t *testing.T) {
	b := buildAll(t)
	dir := t.TempDir()
	prog := filepath.Join(dir, "neg.mf")
	if err := os.WriteFile(prog, []byte(`
PROGRAM neg
REAL y, t, x
READ y
t = 0.0 - y
x = 0.0 - t
PRINT x
END
`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(b.opt, "-spec", "../examples/specs/negate.gos",
		"-run", "-input", "5.0", prog).CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "NEGATE: 1 application(s)") {
		t.Errorf("user spec did not apply:\n%s", text)
	}
	if !strings.Contains(text, "x := y") || !strings.Contains(text, "\n5\n") {
		t.Errorf("double negation not eliminated or wrong output:\n%s", text)
	}
}

// TestOptFlagValidation: bad flag values fail fast with exit code 2 and a
// one-line error, before any optimization work starts.
func TestOptFlagValidation(t *testing.T) {
	b := buildAll(t)
	prog := writeSample(t)
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown opt", []string{"-opts", "CTP,NOPE", prog}, `unknown optimization "NOPE"`},
		{"negative workers", []string{"-workers", "-2", "-opts", "CTP", prog}, "-workers must be >= 0"},
		{"negative maxiter", []string{"-maxiter", "-1", "-opts", "CTP", prog}, "-maxiter must be >= 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(b.opt, tc.args...).CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("err = %v, want ExitError\n%s", err, out)
			}
			if ee.ExitCode() != 2 {
				t.Errorf("exit code = %d, want 2", ee.ExitCode())
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("stderr missing %q:\n%s", tc.want, out)
			}
			if strings.Contains(string(out), "application(s)") {
				t.Errorf("work started before validation:\n%s", out)
			}
		})
	}
}

// TestOptMaxIter: a cap lower than the fixpoint reports the iteration-limit
// condition after printing the applications actually performed.
func TestOptMaxIter(t *testing.T) {
	b := buildAll(t)
	prog := filepath.Join(t.TempDir(), "dead.mf")
	if err := os.WriteFile(prog, []byte(`
PROGRAM dead
INTEGER a, b, c, x
x = 7
a = 1
b = 2
c = 3
PRINT x
END
`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(b.opt, "-opts", "DCE", "-maxiter", "1", prog).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("err = %v, want exit 1\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "DCE: 1 application(s)") {
		t.Errorf("capped run did not report its count:\n%s", text)
	}
	if !strings.Contains(text, "iteration limit") {
		t.Errorf("iteration-limit condition not reported:\n%s", text)
	}
}

// TestOptTrace: -trace dumps the span forest as JSON naming every pass and
// the match/depend/action phases, while the default stderr report format is
// untouched; -logfmt json switches the per-pass reports to slog records.
func TestOptTrace(t *testing.T) {
	b := buildAll(t)
	prog := writeSample(t)
	traceFile := filepath.Join(t.TempDir(), "trace.json")

	out, err := exec.Command(b.opt, "-opts", "CTP,DCE", "-trace", traceFile, prog).CombinedOutput()
	if err != nil {
		t.Fatalf("opt -trace: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "CTP: 1 application(s)") {
		t.Errorf("default report format changed:\n%s", out)
	}
	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var trees []struct {
		Name  string `json:"name"`
		Attrs []struct {
			Key   string `json:"key"`
			Value any    `json:"value"`
		} `json:"attrs"`
	}
	if err := json.Unmarshal(raw, &trees); err != nil {
		t.Fatalf("trace file is not a JSON span forest: %v\n%s", err, raw)
	}
	if len(trees) != 2 {
		t.Fatalf("trace has %d roots, want 2 (CTP, DCE)", len(trees))
	}
	text := string(raw)
	for _, frag := range []string{`"name": "pass"`, `"name": "match"`, `"name": "depend"`, `"name": "action"`, `"value": "CTP"`, `"value": "DCE"`} {
		if !strings.Contains(text, frag) {
			t.Errorf("trace missing %s", frag)
		}
	}

	jout, err := exec.Command(b.opt, "-opts", "CTP", "-logfmt", "json", prog).CombinedOutput()
	if err != nil {
		t.Fatalf("opt -logfmt json: %v\n%s", err, jout)
	}
	if !strings.Contains(string(jout), `"msg":"pass done"`) || !strings.Contains(string(jout), `"pass":"CTP"`) {
		t.Errorf("json report format missing slog record:\n%s", jout)
	}

	if out, err := exec.Command(b.opt, "-opts", "CTP", "-logfmt", "yaml", prog).CombinedOutput(); err == nil {
		t.Errorf("bad -logfmt accepted:\n%s", out)
	} else if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Errorf("bad -logfmt exit = %v, want 2", err)
	}
}

// TestOptdSmoke boots the daemon, optimizes over HTTP, and shuts it down
// gracefully with SIGTERM.
func TestOptdSmoke(t *testing.T) {
	b := buildAll(t)
	cmd := exec.Command(b.optd, "-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon logs the resolved listen addresses as structured slog
	// records: msg="optd listening" addr=HOST:PORT (and "optd debug
	// listening" for the pprof listener).
	addrCh := make(chan string, 1)
	debugCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			ch := addrCh
			if strings.Contains(line, "optd debug listening") {
				ch = debugCh
			} else if !strings.Contains(line, "optd listening") {
				continue
			}
			if i := strings.Index(line, "addr="); i >= 0 {
				addr := strings.Trim(strings.Fields(line[i+len("addr="):])[0], `"`)
				select {
				case ch <- addr:
				default:
				}
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatal("optd never reported its listen address")
	}
	var debugBase string
	select {
	case addr := <-debugCh:
		debugBase = "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatal("optd never reported its debug listen address")
	}

	get := func(path string) (*http.Response, error) { return http.Get(base + path) }
	resp, err := get("/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	body := `{"source": "PROGRAM p\nINTEGER n, i\nREAL a(16), s\nn = 16\ns = 0.0\nDO i = 1, n\n  a(i) = i * 2.0\nENDDO\nPRINT s\nEND\n", "opts": ["CTP", "DCE"]}`
	resp, err = http.Post(base+"/v1/optimize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("optimize = %d, want 200: %s", resp.StatusCode, out)
	}
	if !strings.Contains(string(out), `"minif"`) || !strings.Contains(string(out), "DO i = 1, 16") {
		t.Errorf("optimize response missing optimized MiniF: %s", out)
	}

	// A text/plain scrape negotiates the Prometheus exposition with the
	// pass histograms populated by the optimize call above.
	mreq, _ := http.NewRequest("GET", base+"/metrics", nil)
	mreq.Header.Set("Accept", "text/plain")
	mresp, err := http.DefaultClient.Do(mreq)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	mout, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	for _, frag := range []string{
		"# TYPE optd_pass_latency_seconds histogram",
		`optd_pass_latency_seconds_count{pass="CTP"} 1`,
		`optd_requests_total{route="optimize"} 1`,
		`optd_dep_lookups_total{kind="scalar"}`,
		"optd_undo_rollbacks_total",
	} {
		if !strings.Contains(string(mout), frag) {
			t.Errorf("prometheus exposition missing %q:\n%s", frag, mout)
		}
	}

	// The pprof index is served from the debug listener only.
	presp, err := http.Get(debugBase + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof: %v", err)
	}
	pout, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	if presp.StatusCode != 200 || !strings.Contains(string(pout), "goroutine") {
		t.Errorf("pprof index = %d:\n%.200s", presp.StatusCode, pout)
	}
	if aresp, err := http.Get(base + "/debug/pprof/"); err == nil {
		if aresp.StatusCode == 200 {
			t.Error("pprof exposed on the public API address")
		}
		aresp.Body.Close()
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("optd exit after SIGTERM: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("optd did not exit after SIGTERM")
	}
}
