package main

// Fuzz mode: -fuzz N turns opt into a one-node differential fuzzing farm.
// N programs are generated from (-fuzz-profile, -fuzz-seed + i), optimized
// under every configured variant and compared against the reference
// interpreter; any divergence is minimized and printed. With -submit the
// campaign runs remotely through optd's /v1/farm API instead — the same
// oracle, dispatched as low-priority cluster jobs — and the client polls
// it to completion. Either way the process exits 1 when findings exist,
// so a fuzz run is directly usable as a CI gate.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/farm"
	"repro/internal/specs"
)

// fuzzSources resolves the spec registry and pass order for a fuzz run:
// the built-in specs plus any -spec files, ordered by -opts (or the farm
// default pipeline when neither -opts nor -spec is given), with inline
// spec names appended — the same composition rule the server applies.
func fuzzSources(optsFlag, specFiles string) (map[string]string, []string, []specText, error) {
	sources := make(map[string]string, len(specs.Sources))
	for name, src := range specs.Sources {
		sources[name] = src
	}
	order := splitList(optsFlag)
	var inline []specText
	for _, file := range strings.Split(specFiles, ",") {
		file = strings.TrimSpace(file)
		if file == "" {
			continue
		}
		text, err := os.ReadFile(file)
		if err != nil {
			return nil, nil, nil, err
		}
		name := stem(file)
		if prev, ok := sources[name]; ok && prev != string(text) {
			return nil, nil, nil, fmt.Errorf("spec %s shadows a different spec of the same name", name)
		}
		sources[name] = string(text)
		inline = append(inline, specText{Name: name, Text: string(text)})
	}
	if len(order) == 0 && len(inline) == 0 {
		order = farm.DefaultOrder()
	}
	for _, st := range inline {
		order = append(order, st.Name)
	}
	return sources, order, inline, nil
}

// runFuzzLocal sweeps the campaign on an in-process worker pool and
// returns the number of findings; the caller exits 1 when it is nonzero.
func runFuzzLocal(count int, profile string, seed int64, optsFlag, specFiles string, maxIter, workers int) (int, error) {
	sources, order, _, err := fuzzSources(optsFlag, specFiles)
	if err != nil {
		return 0, err
	}
	ch, err := farm.NewChecker(farm.Config{Sources: sources, Order: order, MaxIterations: maxIter})
	if err != nil {
		return 0, err
	}
	st, err := farm.OpenStore("") // memory-only; findings go to stdout
	if err != nil {
		return 0, err
	}
	defer st.Close()
	camp, err := farm.NewManager().Ensure("local", farm.CampaignConfig{
		Profile: profile, Count: count, Seed: seed,
	})
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(os.Stderr, "fuzz: %d program(s), profile %s, seed %d, order %s\n",
		count, profile, seed, strings.Join(order, ","))
	hooks := farm.Hooks{Finding: func(f farm.Finding) {
		fmt.Fprintf(os.Stderr, "fuzz: FINDING seed %d: %s (%s vs %s)\n", f.Seed, f.Kind, f.Variant, f.Baseline)
	}}
	if err := farm.Run(context.Background(), ch, st, camp, workers, hooks); err != nil {
		return 0, err
	}
	status := camp.Status()
	fmt.Fprintf(os.Stderr, "fuzz: %d checked, %d divergent, %d errored, %d finding(s)\n",
		status.Checked, status.Divergent, status.Errored, status.Findings)
	printFindings(st.List("local"))
	return status.Findings, nil
}

// printFindings renders each finding with its minimized reproducer (the
// full generated source when minimization could not run).
func printFindings(findings []farm.Finding) {
	for i, f := range findings {
		fmt.Printf("== finding %d: seed %d, %s, %s vs %s ==\n", i+1, f.Seed, f.Kind, f.Variant, f.Baseline)
		fmt.Printf("detail: %s\n", f.Detail)
		src := f.Minimized
		if src == "" {
			src = f.Source
			fmt.Printf("reproducer (%d statements, not minimized):\n", f.OrigStmts)
		} else {
			fmt.Printf("reproducer (minimized %d -> %d statements):\n", f.OrigStmts, f.MinStmts)
		}
		fmt.Print(strings.TrimLeft(src, "\n"))
	}
}

// farmStartRequest mirrors the server's FarmStartRequest wire shape.
type farmStartRequest struct {
	Profile string     `json:"profile,omitempty"`
	Count   int        `json:"count"`
	Seed    int64      `json:"seed,omitempty"`
	Opts    []string   `json:"opts,omitempty"`
	Specs   []specText `json:"specs,omitempty"`
}

// farmStartResponse mirrors the server's FarmStartResponse wire shape.
type farmStartResponse struct {
	farm.CampaignStatus
	Order    []string `json:"order"`
	Variants []string `json:"variants"`
	Jobs     int      `json:"jobs"`
}

type farmFindingsResponse struct {
	Findings []farm.Finding `json:"findings"`
}

// runFuzzRemote submits the campaign to a running optd via POST /v1/farm,
// polls it to completion and prints the findings, returning their count.
// Submission is idempotent: re-running the same command resumes the same
// campaign instead of farming the corpus twice.
func runFuzzRemote(base string, count int, profile string, seed int64, optsFlag, specFiles string) (int, error) {
	_, _, inline, err := fuzzSources(optsFlag, specFiles)
	if err != nil {
		return 0, err
	}
	c := newJobClient(base)
	raw, err := json.Marshal(farmStartRequest{
		Profile: profile, Count: count, Seed: seed,
		Opts: splitList(optsFlag), Specs: inline,
	})
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Post(c.base+"/v1/farm", "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return 0, apiErr("farm start", resp)
	}
	var start farmStartResponse
	err = json.NewDecoder(resp.Body).Decode(&start)
	resp.Body.Close()
	if err != nil {
		return 0, fmt.Errorf("farm start: decoding response: %w", err)
	}
	fmt.Fprintf(os.Stderr, "fuzz: campaign %s, %d job(s) queued, order %s, variants %s\n",
		start.ID, start.Jobs, strings.Join(start.Order, ","), strings.Join(start.Variants, " "))

	var status farm.CampaignStatus
	for {
		resp, err := c.hc.Get(c.base + "/v1/farm/" + start.ID + "?wait=1")
		if err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, apiErr("farm wait", resp)
		}
		err = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close()
		if err != nil {
			return 0, fmt.Errorf("farm wait: decoding response: %w", err)
		}
		if status.State == "done" {
			break
		}
		// The long poll returned early (server restart, proxy timeout);
		// back off briefly before re-arming it.
		time.Sleep(200 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "fuzz: %d checked, %d divergent, %d errored, %d finding(s)\n",
		status.Checked, status.Divergent, status.Errored, status.Findings)

	resp, err = c.hc.Get(c.base + "/v1/farm/" + start.ID + "/findings")
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, apiErr("farm findings", resp)
	}
	var found farmFindingsResponse
	err = json.NewDecoder(resp.Body).Decode(&found)
	resp.Body.Close()
	if err != nil {
		return 0, fmt.Errorf("farm findings: decoding response: %w", err)
	}
	printFindings(found.Findings)
	return len(found.Findings), nil
}
