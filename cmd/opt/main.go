// Command opt is the optimizer interface the paper's constructor packages
// around the generated code: it reads a MiniF program, computes data
// dependences, and applies optimizations — in batch from a flag, or
// interactively, where the user selects optimizations, application points
// and orderings, may override dependence restrictions, and chooses whether
// dependences are recomputed between optimizations.
//
// Usage:
//
//	opt -opts CTP,CFO,DCE program.mf      # batch pipeline
//	opt -opts CTP,DCE a.mf b.mf c.mf      # parallel multi-program sweep
//	opt -i program.mf                     # interactive session
//	opt -points program.mf                # application-point census
//	opt -submit URL -opts DCE a.mf        # queue a durable job on optd
//	opt -submit URL -wait -opts DCE a.mf  # queue, then block for the result
//	opt -engine=compiled -opts DCE a.mf   # batch via a compiled artifact
//	opt -traces URL                       # list optd's retained distributed traces
//	opt -traces URL TRACE_ID              # print one trace's span tree (cluster-merged)
//	opt -fuzz 500                         # differential-fuzz 500 generated programs locally
//	opt -fuzz 500 -submit URL             # farm the same campaign through optd's job queue
//
// -engine selects how the batch pipeline executes: interp (default) runs
// the interpreted closure engine; compiled builds — or reuses from the
// content-addressed cache under -native-dir — a native optimizer covering
// the requested passes and runs that; auto tries compiled and falls back
// to interp with a warning.
//
// With several program arguments the batch pipeline runs each program on a
// bounded worker pool (-workers) and prints the results in argument order.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/dep"
	"repro/internal/engine"
	"repro/internal/farm"
	"repro/internal/nativecache"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/specs"
	"repro/ir"
	"repro/optlib"
)

func main() {
	var (
		optsFlag    = flag.String("opts", "", "comma-separated optimizations to apply in order")
		orderFlag   = flag.String("order", "", "pass-ordering directive: auto (ask the optd advisor; needs -submit), default (run -opts as written) or an explicit comma-separated permutation of -opts")
		interactive = flag.Bool("i", false, "interactive session")
		points      = flag.Bool("points", false, "print application-point counts and exit")
		run         = flag.Bool("run", false, "execute the program after optimizing")
		inputs      = flag.String("input", "", "comma-separated input values for READ statements")
		minif       = flag.Bool("minif", false, "print the result as re-parsable MiniF source")
		specFiles   = flag.String("spec", "", "comma-separated GOSpeL specification files to apply after -opts")
		workers     = flag.Int("workers", 0, "worker pool size for multi-program batch runs (0 = GOMAXPROCS)")
		maxIter     = flag.Int("maxiter", 0, "cap applications per optimization (0 = optlib default, 1000); hitting the cap with work remaining reports the iteration-limit error")
		regionW     = flag.Int("region-workers", 0, "region-parallel workers per fixpoint (0 or 1 = sequential; the optimized output is byte-identical at any setting)")
		traceFile   = flag.String("trace", "", "write the optimization span trees as JSON to this file ('-' for stderr)")
		logfmt      = flag.String("logfmt", "text", "per-pass report format: text (NAME: N application(s)) or json (structured slog records)")
		submitURL   = flag.String("submit", "", "optd base URL: submit each program as a durable batch job instead of optimizing locally")
		waitJobs    = flag.Bool("wait", false, "with -submit, block until each job finishes and print its result")
		priority    = flag.String("priority", "", "with -submit, job priority: high, normal or low")
		engineFlag  = flag.String("engine", "interp", "optimizer engine for batch runs: interp, auto (use a compiled artifact when one can be built, interpret otherwise) or compiled (require the compiled artifact, building it if missing)")
		nativeDir   = flag.String("native-dir", "", "compiled-artifact cache directory (empty = the user cache dir)")
		tracesURL   = flag.String("traces", "", "optd base URL: list its retained distributed traces, or print the span trees of the trace IDs given as arguments")
		traceFilter = flag.String("trace-filter", "", "with -traces (list form), a raw query filter passed to /v1/traces, e.g. 'route=optimize&error=1&limit=10'")
		fuzzN       = flag.Int("fuzz", 0, "differential-fuzz this many generated programs instead of optimizing files — locally, or through optd with -submit; exits 1 when findings are recorded")
		fuzzProfile = flag.String("fuzz-profile", "aggregation", "with -fuzz, the corpus opportunity-mix profile")
		fuzzSeed    = flag.Int64("fuzz-seed", 1, "with -fuzz, the base seed; program i is generated from seed+i")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: opt [-opts LIST | -i | -points | -fuzz N] [-run] [-input v,v,...] [-maxiter N] program.mf [more.mf ...]")
		flag.PrintDefaults()
		fmt.Fprintln(os.Stderr, `
Each optimization runs to fixpoint, bounded by -maxiter (optlib.Limits).
When the cap is reached while another application point remains, opt prints
the applications performed so far, reports the iteration-limit condition
(optlib.ErrIterationLimit: a non-converging rewrite system or a cap set too
low for the program), and exits 1.`)
	}
	flag.Parse()
	// Validate flags before any work: bad values must fail fast with exit
	// code 2, not surface mid-run.
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "opt: -workers must be >= 0 (got %d)\n", *workers)
		os.Exit(2)
	}
	if *maxIter < 0 {
		fmt.Fprintf(os.Stderr, "opt: -maxiter must be >= 0 (got %d)\n", *maxIter)
		os.Exit(2)
	}
	if *logfmt != "text" && *logfmt != "json" {
		fmt.Fprintf(os.Stderr, "opt: -logfmt must be text or json (got %q)\n", *logfmt)
		os.Exit(2)
	}
	switch *engineFlag {
	case "interp", "auto", "compiled":
	default:
		fmt.Fprintf(os.Stderr, "opt: -engine must be interp, auto or compiled (got %q)\n", *engineFlag)
		os.Exit(2)
	}
	// The compiled engine only exists for the batch pipeline: interactive
	// sessions, point censuses and remote submission never run a local
	// compiled artifact, and span traces are an interpreter feature. Asking
	// for it anyway is a contradiction, not a preference — fail fast.
	if *engineFlag == "compiled" {
		if *interactive || *points || *submitURL != "" {
			fmt.Fprintln(os.Stderr, "opt: -engine=compiled is incompatible with -i, -points and -submit")
			os.Exit(2)
		}
		if *traceFile != "" {
			fmt.Fprintln(os.Stderr, "opt: -engine=compiled is incompatible with -trace (compiled pipelines emit no span trees)")
			os.Exit(2)
		}
	}
	for _, name := range splitList(*optsFlag) {
		if _, ok := specs.Sources[name]; !ok {
			fmt.Fprintf(os.Stderr, "opt: unknown optimization %q in -opts (have %s)\n",
				name, strings.Join(specs.Names(), ", "))
			os.Exit(2)
		}
	}
	// Fuzz mode generates its own corpus and owns the program/engine
	// choices: flags that name input programs, pick an engine or shape
	// per-program output contradict it and must die here with exit 2, not
	// be silently ignored mid-campaign.
	if *fuzzN < 0 {
		fmt.Fprintf(os.Stderr, "opt: -fuzz must be >= 0 (got %d)\n", *fuzzN)
		os.Exit(2)
	}
	if *fuzzN > 0 {
		if *interactive || *points || *run || *tracesURL != "" || flag.NArg() > 0 {
			fmt.Fprintln(os.Stderr, "opt: -fuzz is incompatible with -i, -points, -run, -traces and program file arguments")
			os.Exit(2)
		}
		if *orderFlag != "" {
			fmt.Fprintln(os.Stderr, "opt: -fuzz is incompatible with -order (the campaign order is -opts plus -spec names)")
			os.Exit(2)
		}
		if *engineFlag != "interp" {
			fmt.Fprintln(os.Stderr, "opt: -fuzz is incompatible with -engine (the farm's variant matrix selects engines)")
			os.Exit(2)
		}
		if *traceFile != "" || *minif || *inputs != "" || *waitJobs || *priority != "" {
			fmt.Fprintln(os.Stderr, "opt: -fuzz is incompatible with -trace, -minif, -input, -wait and -priority")
			os.Exit(2)
		}
		if _, ok := farm.Profiles[*fuzzProfile]; !ok {
			fmt.Fprintf(os.Stderr, "opt: unknown -fuzz-profile %q (have %s)\n",
				*fuzzProfile, strings.Join(farm.ProfileNames(), ", "))
			os.Exit(2)
		}
	} else {
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if set["fuzz-profile"] || set["fuzz-seed"] {
			fmt.Fprintln(os.Stderr, "opt: -fuzz-profile and -fuzz-seed are meaningless without -fuzz")
			os.Exit(2)
		}
	}
	// -order resolves to a directive string for the server (auto, default) or
	// an explicit pass order that reorders -opts locally. Validation mirrors
	// the server's rules so a bad directive dies here with exit 2 instead of
	// as a 400 after the upload.
	orderDirective := strings.ToLower(strings.TrimSpace(*orderFlag))
	effectiveOpts := *optsFlag
	switch orderDirective {
	case "":
	case "auto":
		if *submitURL == "" {
			fmt.Fprintln(os.Stderr, "opt: -order auto needs -submit (the pass-ordering advisor lives in optd)")
			os.Exit(2)
		}
		if *optsFlag == "" {
			fmt.Fprintln(os.Stderr, "opt: -order auto needs a non-empty -opts list")
			os.Exit(2)
		}
		if *specFiles != "" {
			fmt.Fprintln(os.Stderr, "opt: -order auto is incompatible with -spec (inline specs have no recorded history)")
			os.Exit(2)
		}
	case "default":
		if *optsFlag == "" {
			fmt.Fprintln(os.Stderr, "opt: -order default needs a non-empty -opts list")
			os.Exit(2)
		}
	default:
		order := splitList(*orderFlag)
		for _, name := range order {
			if _, ok := specs.Sources[name]; !ok {
				fmt.Fprintf(os.Stderr, "opt: unknown optimization %q in -order (have %s)\n",
					name, strings.Join(specs.Names(), ", "))
				os.Exit(2)
			}
		}
		if *optsFlag != "" && !samePermutation(order, splitList(*optsFlag)) {
			fmt.Fprintf(os.Stderr, "opt: -order %s must be a permutation of -opts %s\n",
				strings.Join(order, ","), strings.Join(splitList(*optsFlag), ","))
			os.Exit(2)
		}
		// An explicit order IS the pipeline, locally and remotely; with no
		// -opts it also defines the pass set, exactly like the server.
		orderDirective = strings.Join(order, ",")
		effectiveOpts = orderDirective
	}
	// Trace inspection is a pure client mode: arguments are trace IDs (or
	// nothing, for the listing), never program files.
	if *tracesURL != "" {
		if *interactive || *points || *run || *submitURL != "" || *optsFlag != "" {
			fmt.Fprintln(os.Stderr, "opt: -traces is incompatible with -i, -points, -run, -submit and -opts")
			os.Exit(2)
		}
		if err := runTraces(*tracesURL, *traceFilter, flag.Args()); err != nil {
			fatal(err)
		}
		return
	}
	if *traceFilter != "" {
		fmt.Fprintln(os.Stderr, "opt: -trace-filter is meaningless without -traces")
		os.Exit(2)
	}

	if *fuzzN > 0 {
		var findings int
		var err error
		if *submitURL != "" {
			findings, err = runFuzzRemote(*submitURL, *fuzzN, *fuzzProfile, *fuzzSeed, *optsFlag, *specFiles)
		} else {
			findings, err = runFuzzLocal(*fuzzN, *fuzzProfile, *fuzzSeed, *optsFlag, *specFiles, *maxIter, *workers)
		}
		if err != nil {
			fatal(err)
		}
		if findings > 0 {
			os.Exit(1)
		}
		return
	}

	if flag.NArg() < 1 || ((*interactive || *points) && flag.NArg() != 1) {
		flag.Usage()
		os.Exit(2)
	}

	if *submitURL != "" {
		if *interactive || *points || *run {
			fmt.Fprintln(os.Stderr, "opt: -submit is incompatible with -i, -points and -run")
			os.Exit(2)
		}
		switch *priority {
		case "", "high", "normal", "low":
		default:
			fmt.Fprintf(os.Stderr, "opt: -priority must be high, normal or low (got %q)\n", *priority)
			os.Exit(2)
		}
		if err := runClient(*submitURL, flag.Args(), effectiveOpts, orderDirective, *specFiles, *maxIter, *waitJobs, *minif, *priority); err != nil {
			fatal(err)
		}
		return
	}

	if *interactive || *points {
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		p, err := genesis.ParseProgram(string(src))
		if err != nil {
			fatal(err)
		}
		if *points {
			for _, name := range genesis.TenOptimizations() {
				o, err := genesis.BuiltIn(name)
				if err != nil {
					fatal(err)
				}
				fmt.Printf("%-4s %d\n", name, o.Points(p))
			}
			return
		}
		session(p)
		return
	}

	// Batch pipeline. Every program argument is an independent job, so the
	// sweep fans out across the worker pool; output is emitted in argument
	// order regardless of which job finishes first.
	vals, err := parseInputs(*inputs)
	if err != nil {
		fatal(err)
	}
	files := flag.Args()
	// -engine=auto or compiled: build (or load from the content-addressed
	// cache) one compiled artifact covering the whole requested pipeline up
	// front, then serve every program argument from it. auto degrades to the
	// interpreter with a warning when no artifact can be had; compiled exits.
	// A trace request keeps auto on the interpreter — spans are an
	// interpreter feature (the compiled case was rejected above).
	var art *nativecache.Artifact
	var order []string
	if *engineFlag != "interp" && *traceFile == "" {
		art, order = nativeArtifact(*engineFlag, *nativeDir, effectiveOpts, *specFiles)
	}
	type result struct {
		log    strings.Builder // per-optimization pass reports (stderr)
		text   string          // rendered program (stdout)
		out    []ir.Value      // execution output when -run is set
		tracer *obs.Tracer     // span collection when -trace is set
		err    error
	}
	results := par.Map(len(files), *workers, func(i int) *result {
		r := &result{}
		src, err := os.ReadFile(files[i])
		if err != nil {
			r.err = err
			return r
		}
		// Each job reports into its own buffer so parallel sweeps still print
		// in argument order: plain counts in text mode, slog records in json.
		report := func(name string, n int) {
			fmt.Fprintf(&r.log, "%s: %d application(s)\n", name, n)
		}
		if *logfmt == "json" {
			jl := obs.NewLogger(&r.log, "json", slog.LevelInfo)
			report = func(name string, n int) {
				jl.Info("pass done", slog.String("file", files[i]),
					slog.String("pass", name), slog.Int("applications", n))
			}
		}
		if art != nil {
			r.text, r.out, r.err = nativeRun(art, order, string(src), *maxIter, *regionW, *minif, *run, vals, report)
			return r
		}
		p, err := genesis.ParseProgram(string(src))
		if err != nil {
			r.err = err
			return r
		}
		if *traceFile != "" {
			r.tracer = obs.NewTracer(obs.Collect())
		}
		if r.err = pipeline(p, effectiveOpts, *specFiles, *maxIter, *regionW, report, r.tracer); r.err != nil {
			return r
		}
		if *minif {
			r.text = ir.ToMiniF(p)
		} else {
			r.text = p.String()
		}
		if *run {
			r.out, r.err = genesis.Execute(p, vals)
		}
		return r
	})
	for i, r := range results {
		if len(files) > 1 {
			fmt.Printf("== %s ==\n", files[i])
		}
		os.Stderr.WriteString(r.log.String())
		if r.err != nil {
			fatal(r.err)
		}
		fmt.Print(r.text)
		for _, v := range r.out {
			fmt.Println(v)
		}
	}
	if *traceFile != "" {
		// Merge every job's span forest in argument order into one JSON
		// document, one "pass" root per fixpoint run.
		var trees []*obs.Node
		for _, r := range results {
			trees = append(trees, r.tracer.Trees()...)
		}
		raw, err := json.MarshalIndent(trees, "", "  ")
		if err != nil {
			fatal(err)
		}
		raw = append(raw, '\n')
		if *traceFile == "-" {
			os.Stderr.Write(raw)
		} else if err := os.WriteFile(*traceFile, raw, 0o644); err != nil {
			fatal(err)
		}
	}
}

// pipeline applies the -opts list and then any -spec files to p, calling
// report with each pass's application count. Each pass is capped at maxIter
// applications (0 = the optlib default); a capped pass still reports its
// count before the iteration-limit error propagates. A non-nil tracer
// records one span tree per fixpoint run.
func pipeline(p *ir.Program, optsFlag, specFiles string, maxIter, regionWorkers int, report func(name string, n int), tracer *obs.Tracer) error {
	copts := []genesis.Option{}
	if maxIter > 0 {
		copts = append(copts, genesis.WithMaxApplications(maxIter))
	}
	if tracer != nil {
		copts = append(copts, genesis.WithTracer(tracer))
	}
	applyAll := func(o *genesis.Optimizer) (int, error) {
		if regionWorkers > 1 {
			n, _, err := o.ApplyAllParallel(context.Background(), p, regionWorkers)
			return n, err
		}
		return o.ApplyAll(p)
	}
	for _, name := range splitList(optsFlag) {
		o, err := genesis.BuiltIn(name, copts...)
		if err != nil {
			return err
		}
		n, err := applyAll(o)
		report(name, n)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	for _, file := range strings.Split(specFiles, ",") {
		file = strings.TrimSpace(file)
		if file == "" {
			continue
		}
		text, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		spec, err := genesis.ParseSpec(stem(file), string(text))
		if err != nil {
			return err
		}
		o, err := spec.Compile(copts...)
		if err != nil {
			return err
		}
		n, err := applyAll(o)
		report(spec.Name(), n)
		if err != nil {
			return fmt.Errorf("%s: %w", spec.Name(), err)
		}
	}
	return nil
}

// nativeArtifact resolves the compiled artifact for the requested pipeline:
// the built-in specs plus any -spec files, ensured through the
// content-addressed cache. It returns the artifact and the pass names in
// pipeline order, or (nil, nil) when the run should fall back to the
// interpreter — an error under -engine=auto (reported as a warning), or an
// empty pipeline. Under -engine=compiled every failure is fatal.
func nativeArtifact(engineFlag, dir, optsFlag, specFiles string) (*nativecache.Artifact, []string) {
	strict := engineFlag == "compiled"
	fail := func(err error) (*nativecache.Artifact, []string) {
		if strict {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "opt: compiled engine unavailable, running interpreted: %v\n", err)
		return nil, nil
	}
	sources := make(map[string]string, len(specs.Sources))
	for name, src := range specs.Sources {
		sources[name] = src
	}
	order := splitList(optsFlag)
	for _, file := range strings.Split(specFiles, ",") {
		file = strings.TrimSpace(file)
		if file == "" {
			continue
		}
		text, err := os.ReadFile(file)
		if err != nil {
			return fail(err)
		}
		name := stem(file)
		if prev, ok := sources[name]; ok && prev != string(text) {
			// Two different spec texts cannot share one name in a compiled
			// registry; only the interpreter can shadow a built-in.
			return fail(fmt.Errorf("spec %s shadows a different spec of the same name", name))
		}
		sources[name] = string(text)
		order = append(order, name)
	}
	if len(order) == 0 {
		if strict {
			fatal(fmt.Errorf("-engine=compiled needs a pipeline: pass -opts and/or -spec"))
		}
		return nil, nil
	}
	if dir == "" {
		d, err := nativecache.DefaultDir()
		if err != nil {
			return fail(err)
		}
		dir = d
	}
	cache, err := nativecache.New(nativecache.Config{Dir: dir, Logger: slog.Default()})
	if err != nil {
		return fail(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	art, err := cache.Ensure(ctx, nativecache.NewSpecSet(sources), nativecache.ModeAuto)
	if err != nil {
		return fail(err)
	}
	return art, order
}

// nativeRun optimizes one program through a compiled artifact — in-process
// when the artifact is a loaded plugin, through its runner binary otherwise
// — reporting per-pass counts exactly like the interpreted pipeline.
func nativeRun(art *nativecache.Artifact, order []string, src string, maxIter, regionWorkers int, wantMiniF, runProg bool, vals []ir.Value, report func(name string, n int)) (text string, out []ir.Value, err error) {
	if art.InProcess() {
		p, err := optlib.ParseMiniF(src)
		if err != nil {
			return "", nil, err
		}
		passes := make([]optlib.NamedApply, len(order))
		for i, name := range order {
			fn, _ := art.Func(name) // Ensure built the artifact over exactly these names
			// Only built-in specs are provably region-eligible; -spec file
			// passes keep the sequential loop.
			passes[i] = optlib.NamedApply{Name: name, Apply: fn, ParallelSafe: specs.RegionSafe(name)}
		}
		counts, perr := optlib.Pipeline(p, passes, optlib.Limits{MaxIterations: maxIter, Parallel: regionWorkers})
		for _, c := range counts {
			report(c.Name, c.Applications)
		}
		if perr != nil {
			return "", nil, perr
		}
		if wantMiniF {
			text = ir.ToMiniF(p)
		} else {
			text = p.String()
		}
		if runProg {
			if out, err = genesis.Execute(p, vals); err != nil {
				return "", nil, err
			}
		}
		return text, out, nil
	}
	res, err := art.RunPipeline(context.Background(), src, order, maxIter)
	if err != nil {
		return "", nil, err
	}
	for _, pc := range res.Passes {
		report(pc.Name, pc.Applications)
	}
	if perr := res.PipelineError(); perr != nil {
		return "", nil, perr
	}
	if wantMiniF {
		text = res.MiniF
	} else {
		text = res.IR
	}
	if runProg {
		// The runner hands back source, not a program; round-trip it.
		p, err := genesis.ParseProgram(res.MiniF)
		if err != nil {
			return "", nil, fmt.Errorf("reparsing optimized program: %w", err)
		}
		if out, err = genesis.Execute(p, vals); err != nil {
			return "", nil, err
		}
	}
	return text, out, nil
}

// samePermutation reports whether a and b contain the same names (as sets
// with multiplicity), matching the server-side permutation check.
func samePermutation(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	count := make(map[string]int, len(a))
	for _, n := range a {
		count[n]++
	}
	for _, n := range b {
		count[n]--
		if count[n] < 0 {
			return false
		}
	}
	return true
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.ToUpper(strings.TrimSpace(parts[i]))
	}
	return parts
}

func parseInputs(s string) ([]ir.Value, error) {
	var out []ir.Value
	for _, part := range splitList(s) {
		if i, err := strconv.ParseInt(part, 10, 64); err == nil {
			out = append(out, ir.IntVal(i))
			continue
		}
		f, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad input value %q", part)
		}
		out = append(out, ir.FloatVal(f))
	}
	return out, nil
}

// session is the interactive interface: Step 3.b.iii of the GENesis
// algorithm (select optimizations, application points, override
// dependences, recompute or not, run).
func session(p *ir.Program) {
	sc := bufio.NewScanner(os.Stdin)
	fmt.Println("GENesis interactive optimizer — 'help' for commands")
	recompute := true
	// The session owns the program's change journal: the dependence graph is
	// computed once and then incrementally updated from the journal before
	// each command that consults it, instead of recomputing from scratch.
	log, _ := p.EnsureLog()
	g := dep.Compute(p)
	sync := func() {
		if cs := log.Changes(); len(cs) > 0 {
			g.Update(cs)
		}
		log.Reset()
	}
	for {
		fmt.Print("opt> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		cmd := strings.ToLower(fields[0])
		arg := ""
		if len(fields) > 1 {
			arg = strings.ToUpper(fields[1])
		}
		switch cmd {
		case "help":
			fmt.Println(`commands:
  list              built-in optimizations
  show              print the current program
  deps              print the dependence graph
  points OPT        list application points of OPT
  apply OPT [N]     apply OPT at point N (default 1), overriding nothing
  force OPT N       apply OPT at point N overriding dependence restrictions
  applyall OPT      apply OPT at all points (fixpoint)
  recompute on|off  recompute dependences between applications (now ` + fmt.Sprint(recompute) + `)
  run [v,v,...]     execute the program with the given inputs
  quit`)
		case "list":
			for _, n := range genesis.BuiltInNames() {
				fmt.Println(" ", n)
			}
		case "show":
			fmt.Print(p.String())
		case "deps":
			sync()
			fmt.Print(g.String())
		case "points":
			eng, err := compileEngine(arg, recompute)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			sync()
			pts := eng.Preconditions(p, g)
			for i, env := range pts {
				fmt.Printf("  %d: %v\n", i+1, env)
			}
			if len(pts) == 0 {
				fmt.Println("  (none)")
			}
		case "apply", "force":
			eng, err := compileEngine(arg, recompute)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			idx := 1
			if len(fields) > 2 {
				idx, _ = strconv.Atoi(fields[2])
			}
			sync()
			pts := eng.Preconditions(p, g)
			if cmd == "force" {
				// Overriding dependence restrictions: match only the code
				// pattern, skipping the Depend section, as the paper's
				// interface permits.
				fmt.Println("note: force applies at a precondition point; dependence overrides are per-point")
			}
			if idx < 1 || idx > len(pts) {
				fmt.Printf("point %d of %d not available\n", idx, len(pts))
				continue
			}
			if err := eng.ApplyAt(p, g, pts[idx-1]); err != nil {
				fmt.Println("error:", err)
				continue
			}
			sync()
			fmt.Println("applied")
		case "applyall":
			eng, err := compileEngine(arg, recompute)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			apps, err := eng.ApplyAll(p)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			sync()
			fmt.Printf("%d application(s)\n", len(apps))
		case "recompute":
			recompute = arg != "OFF"
			fmt.Println("recompute =", recompute)
		case "run":
			var vals []ir.Value
			if len(fields) > 1 {
				v, err := parseInputs(fields[1])
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				vals = v
			}
			out, err := genesis.Execute(p, vals)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for _, v := range out {
				fmt.Println(" ", v)
			}
		case "quit", "exit":
			return
		default:
			fmt.Println("unknown command; try 'help'")
		}
	}
}

func compileEngine(name string, recompute bool) (*engine.Optimizer, error) {
	src, ok := specs.Sources[name]
	if !ok {
		return nil, fmt.Errorf("unknown optimization %q", name)
	}
	spec, err := parseChecked(name, src)
	if err != nil {
		return nil, err
	}
	opts := []engine.Option{}
	if !recompute {
		opts = append(opts, engine.WithoutRecompute())
	}
	return engine.Compile(spec, opts...)
}

// stem derives an optimization name from a file path.
func stem(path string) string {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if i := strings.IndexByte(base, '.'); i >= 0 {
		base = base[:i]
	}
	return strings.ToUpper(base)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "opt:", err)
	os.Exit(1)
}
