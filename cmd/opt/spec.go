package main

import "repro/internal/gospel"

// parseChecked parses and semantically checks a specification.
func parseChecked(name, src string) (*gospel.Spec, error) {
	return gospel.ParseAndCheck(name, src)
}
