package main

// Client mode: instead of optimizing in-process, -submit ships each program
// to a running optd instance as a durable batch job over the /v1/jobs API.
// Submission is idempotent (the server content-addresses the request), so
// re-running the same command after a crash or ^C picks up the same jobs
// rather than queueing duplicates. With -wait the client long-polls each
// job to completion and prints results in argument order, exactly like the
// local batch pipeline.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

// jobClient talks to one optd instance.
type jobClient struct {
	base string
	hc   *http.Client
}

// jobRequest mirrors the server's JobSubmitRequest wire shape.
type jobRequest struct {
	Source        string     `json:"source"`
	Opts          []string   `json:"opts,omitempty"`
	Order         string     `json:"order,omitempty"`
	Specs         []specText `json:"specs,omitempty"`
	MaxIterations int        `json:"max_iterations,omitempty"`
	Priority      string     `json:"priority,omitempty"`
}

type specText struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

// jobStatus mirrors the server's JobView wire shape.
type jobStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Attempts  int    `json:"attempts"`
	LastError string `json:"last_error"`
	Existing  bool   `json:"existing"`
}

// jobResult is the subset of the optimize response the client renders.
type jobResult struct {
	MiniF        string   `json:"minif"`
	IR           string   `json:"ir"`
	Order        []string `json:"order"`
	Applications []struct {
		Name         string `json:"name"`
		Applications int    `json:"applications"`
	} `json:"applications"`
}

type apiErrorBody struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

func newJobClient(base string) *jobClient {
	// No overall client timeout: status polls use the server's long-poll
	// (?wait=1), which intentionally holds the connection up to the
	// server's request deadline.
	//
	// A sharded optd answers status lookups for jobs it does not own with
	// a 307 to the owning node; follow exactly that one hop, so two nodes
	// disagreeing about ownership can never bounce the client around the
	// ring.
	return &jobClient{base: strings.TrimRight(base, "/"), hc: &http.Client{
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			if len(via) > 1 {
				return errors.New("more than one cluster redirect hop")
			}
			return nil
		},
	}}
}

// apiErr renders a non-2xx response as an error.
func apiErr(op string, resp *http.Response) error {
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var body apiErrorBody
	if json.Unmarshal(raw, &body) == nil && body.Error != "" {
		return fmt.Errorf("%s: %s (%s)", op, body.Error, body.Kind)
	}
	return fmt.Errorf("%s: HTTP %d: %s", op, resp.StatusCode, strings.TrimSpace(string(raw)))
}

// submit posts one job and returns its status.
func (c *jobClient) submit(req jobRequest) (jobStatus, error) {
	var st jobStatus
	raw, err := json.Marshal(req)
	if err != nil {
		return st, err
	}
	resp, err := c.hc.Post(c.base+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return st, apiErr("submit", resp)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("submit: decoding response: %w", err)
	}
	return st, nil
}

// wait long-polls until the job reaches a terminal state.
func (c *jobClient) wait(id string) (jobStatus, error) {
	var st jobStatus
	for {
		resp, err := c.hc.Get(c.base + "/v1/jobs/" + id + "?wait=1")
		if err != nil {
			return st, err
		}
		if resp.StatusCode != http.StatusOK {
			return st, apiErr("wait", resp)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return st, fmt.Errorf("wait: decoding response: %w", err)
		}
		switch st.State {
		case "done", "failed", "cancelled":
			return st, nil
		}
		// The long poll returned early (server restart, proxy timeout);
		// back off briefly before re-arming it.
		time.Sleep(200 * time.Millisecond)
	}
}

// result fetches a finished job's optimize response.
func (c *jobClient) result(id string) (jobResult, error) {
	var r jobResult
	resp, err := c.hc.Get(c.base + "/v1/jobs/" + id + "/result")
	if err != nil {
		return r, err
	}
	if resp.StatusCode != http.StatusOK {
		return r, apiErr("result", resp)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		return r, fmt.Errorf("result: decoding response: %w", err)
	}
	return r, nil
}

// runClient is the -submit entry point: one job per program argument. The
// order directive rides in the job payload; the server resolves it (auto
// consults the advisor at submission time) and stamps the effective pass
// order into the result.
func runClient(base string, files []string, optsFlag, order, specFiles string, maxIter int, wait, minif bool, priority string) error {
	c := newJobClient(base)
	opts := splitList(optsFlag)
	var specs []specText
	for _, file := range strings.Split(specFiles, ",") {
		file = strings.TrimSpace(file)
		if file == "" {
			continue
		}
		text, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		specs = append(specs, specText{Name: stem(file), Text: string(text)})
	}

	ids := make([]string, len(files))
	for i, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		st, err := c.submit(jobRequest{
			Source:        string(src),
			Opts:          opts,
			Order:         order,
			Specs:         specs,
			MaxIterations: maxIter,
			Priority:      priority,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		ids[i] = st.ID
		note := ""
		if st.Existing {
			note = " (existing)"
		}
		fmt.Fprintf(os.Stderr, "%s: job %s %s%s\n", file, st.ID, st.State, note)
	}
	if !wait {
		return nil
	}

	for i, id := range ids {
		st, err := c.wait(id)
		if err != nil {
			return fmt.Errorf("%s: %w", files[i], err)
		}
		if st.State != "done" {
			return fmt.Errorf("%s: job %s %s after %d attempt(s): %s",
				files[i], id, st.State, st.Attempts, st.LastError)
		}
		r, err := c.result(id)
		if err != nil {
			return fmt.Errorf("%s: %w", files[i], err)
		}
		if len(files) > 1 {
			fmt.Printf("== %s ==\n", files[i])
		}
		if len(r.Order) > 0 {
			fmt.Fprintf(os.Stderr, "order: %s\n", strings.Join(r.Order, ","))
		}
		for _, p := range r.Applications {
			fmt.Fprintf(os.Stderr, "%s: %d application(s)\n", p.Name, p.Applications)
		}
		if minif {
			fmt.Print(r.MiniF)
		} else {
			fmt.Print(r.IR)
		}
	}
	return nil
}
