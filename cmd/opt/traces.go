package main

// Trace inspection mode: `opt -traces URL` lists the traces a running optd
// retained (tail-sampled: every error and slow trace, 1-in-N of the rest),
// and `opt -traces URL TRACE_ID [...]` fetches one trace's span forest —
// the serving node merges fragments from every cluster peer — and prints
// it as an indented tree, rebuilt from parent links. Spans whose parent is
// missing (a peer down, a fragment evicted) print as extra roots rather
// than disappearing.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/trace"
)

// traceList mirrors the server's TraceListResponse wire shape.
type traceList struct {
	Traces []trace.Summary `json:"traces"`
}

// traceGet mirrors the server's TraceResponse wire shape.
type traceGet struct {
	TraceID string        `json:"trace_id"`
	Spans   []*trace.Span `json:"spans"`
}

// runTraces drives the -traces mode: with no trace IDs it lists, otherwise
// it prints each requested trace's span tree. filter is a raw query string
// ("route=optimize&error=1") passed through to the list endpoint.
func runTraces(base, filter string, ids []string) error {
	base = strings.TrimRight(base, "/")
	hc := &http.Client{Timeout: 30 * time.Second}
	if len(ids) == 0 {
		return listTraces(hc, base, filter)
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Println()
		}
		if err := showTrace(hc, base, id); err != nil {
			return err
		}
	}
	return nil
}

func listTraces(hc *http.Client, base, filter string) error {
	u := base + "/v1/traces"
	if filter != "" {
		if _, err := url.ParseQuery(filter); err != nil {
			return fmt.Errorf("bad -trace-filter %q: %w", filter, err)
		}
		u += "?" + filter
	}
	var list traceList
	if err := getJSON(hc, u, &list); err != nil {
		return err
	}
	if len(list.Traces) == 0 {
		fmt.Fprintln(os.Stderr, "opt: no traces retained (yet)")
		return nil
	}
	w := func(format string, args ...any) { fmt.Printf(format, args...) }
	w("%-32s  %-14s  %-6s  %10s  %-8s  %s\n",
		"TRACE", "ROUTE", "STATUS", "MS", "KEPT-AS", "START")
	for _, t := range list.Traces {
		status := "-"
		if t.Status != 0 {
			status = fmt.Sprint(t.Status)
		}
		w("%-32s  %-14s  %-6s  %10.1f  %-8s  %s\n",
			t.TraceID, t.Route, status,
			float64(t.DurationUS)/1000, t.Decision,
			t.Start.Format(time.RFC3339))
	}
	return nil
}

func showTrace(hc *http.Client, base, id string) error {
	var tr traceGet
	if err := getJSON(hc, base+"/v1/traces/"+url.PathEscape(id), &tr); err != nil {
		return err
	}
	fmt.Printf("trace %s (%d spans)\n", tr.TraceID, len(tr.Spans))
	printSpanTree(os.Stdout, tr.Spans)
	return nil
}

// printSpanTree reassembles the flat span list into a forest via parent
// links and prints it depth-first. Children sort by start time; a span
// referencing an absent parent roots its own subtree.
func printSpanTree(out io.Writer, spans []*trace.Span) {
	byID := make(map[string]*trace.Span, len(spans))
	for _, sp := range spans {
		byID[sp.SpanID] = sp
	}
	children := make(map[string][]*trace.Span)
	var roots []*trace.Span
	for _, sp := range spans {
		if sp.ParentID != "" && byID[sp.ParentID] != nil {
			children[sp.ParentID] = append(children[sp.ParentID], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	byStart := func(s []*trace.Span) {
		sort.SliceStable(s, func(i, j int) bool { return s[i].Start.Before(s[j].Start) })
	}
	byStart(roots)
	var walk func(sp *trace.Span, depth int)
	walk = func(sp *trace.Span, depth int) {
		fmt.Fprintf(out, "%s%s", strings.Repeat("  ", depth+1), sp.Name)
		if sp.Node != "" {
			fmt.Fprintf(out, " @%s", sp.Node)
		}
		fmt.Fprintf(out, "  %.1fms", float64(sp.DurationUS)/1000)
		if sp.Status != 0 {
			fmt.Fprintf(out, "  status=%d", sp.Status)
		}
		if sp.Error != "" {
			fmt.Fprintf(out, "  error=%q", sp.Error)
		}
		if len(sp.Attrs) > 0 {
			keys := make([]string, 0, len(sp.Attrs))
			for k := range sp.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(out, "  %s=%s", k, sp.Attrs[k])
			}
		}
		fmt.Fprintln(out)
		kids := children[sp.SpanID]
		byStart(kids)
		for _, kid := range kids {
			walk(kid, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
}

// getJSON fetches u and decodes the body, surfacing the server's structured
// error on non-200s.
func getJSON(hc *http.Client, u string, into any) error {
	resp, err := hc.Get(u)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var ae apiErrorBody
		if json.Unmarshal(body, &ae) == nil && ae.Error != "" {
			return fmt.Errorf("%s: %s (%s)", u, ae.Error, ae.Kind)
		}
		return fmt.Errorf("%s: HTTP %d: %s", u, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return json.Unmarshal(body, into)
}
