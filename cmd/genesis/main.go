// Command genesis is the optimizer generator: it reads a GOSpeL
// specification (from a file or the built-in suite) and emits Go source
// code implementing the optimizer — the reproduction of the paper's
// GENesis tool, which generated C.
//
// Usage:
//
//	genesis -list
//	genesis -builtin CTP -main -o ctp_optimizer.go
//	genesis -spec myopt.gos -name MYOPT -pkg main -main
//
// The emitted code imports repro/ir, repro/dep and repro/optlib; with
// -main it is a complete command-line optimizer that reads a MiniF
// program, applies the optimization to fixpoint and prints the result.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	var (
		builtin  = flag.String("builtin", "", "generate one of the built-in optimizations")
		specFile = flag.String("spec", "", "generate from a GOSpeL specification file")
		name     = flag.String("name", "", "optimization name (defaults to the file stem)")
		pkg      = flag.String("pkg", "main", "package name for the generated code")
		withMain = flag.Bool("main", false, "emit a func main() command-line driver")
		out      = flag.String("o", "", "output file (default stdout)")
		list     = flag.Bool("list", false, "list built-in optimizations and exit")
		show     = flag.Bool("show", false, "print the GOSpeL source instead of generating")
	)
	flag.Parse()

	if *list {
		for _, n := range genesis.BuiltInNames() {
			fmt.Println(n)
		}
		return
	}

	var spec *genesis.Spec
	var err error
	switch {
	case *builtin != "":
		src, serr := genesis.BuiltInSource(*builtin)
		if serr != nil {
			fatal(serr)
		}
		if *show {
			fmt.Print(src)
			return
		}
		spec, err = genesis.ParseSpec(*builtin, src)
	case *specFile != "":
		data, rerr := os.ReadFile(*specFile)
		if rerr != nil {
			fatal(rerr)
		}
		n := *name
		if n == "" {
			n = stem(*specFile)
		}
		if *show {
			fmt.Print(string(data))
			return
		}
		spec, err = genesis.ParseSpec(n, string(data))
	default:
		fmt.Fprintln(os.Stderr, "usage: genesis -list | -builtin NAME | -spec FILE [-name NAME] [-pkg P] [-main] [-o FILE]")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	code, err := spec.GenerateGo(*pkg, *withMain)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Print(code)
		return
	}
	if err := os.WriteFile(*out, []byte(code), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated %s → %s\n", spec.Name(), *out)
}

func stem(path string) string {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if i := strings.IndexByte(base, '.'); i >= 0 {
		base = base[:i]
	}
	return strings.ToUpper(base)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genesis:", err)
	os.Exit(1)
}
