// Command experiments regenerates the paper's Section-4 results (see
// DESIGN.md's per-experiment index and EXPERIMENTS.md for the
// paper-vs-measured record).
//
// Usage:
//
//	experiments            # run everything
//	experiments -e e3      # one experiment: e1..e7
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	which := flag.String("e", "all", "experiment to run: e1..e7 or all")
	flag.Parse()

	switch *which {
	case "all":
		if err := experiments.RunAll(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "e1":
		fmt.Println(experiments.RunE1().Table())
	case "e2":
		fmt.Println(experiments.RunE2().Table())
	case "e3":
		fmt.Println(experiments.RunE3().Table())
	case "e4":
		fmt.Println(experiments.RunE4().Table())
	case "e5":
		fmt.Println(experiments.RunE5().Table())
	case "e6":
		fmt.Println(experiments.RunE6().Table())
	case "e7":
		fmt.Println(experiments.RunE7().Table())
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q (e1..e7 or all)\n", *which)
		os.Exit(2)
	}
}
