package ir

// Builder provides a compact way to construct programs in code (mainly
// tests). The frontend package is the usual constructor for programs.
type Builder struct {
	P *Program
}

// NewBuilder returns a builder for a fresh program.
func NewBuilder(name string) *Builder {
	return &Builder{P: NewProgram(name)}
}

// Declare adds a declaration.
func (b *Builder) Declare(name string, isFloat bool, dims ...int64) *Builder {
	b.P.Decls = append(b.P.Decls, Decl{Name: name, IsFloat: isFloat, Dims: dims})
	return b
}

// Assign appends "dst := a op bop" (pass None() for b when op is OpCopy).
func (b *Builder) Assign(dst Operand, a Operand, op Opcode, c Operand) *Stmt {
	return b.P.Append(&Stmt{Kind: SAssign, Dst: dst, Op: op, A: a, B: c})
}

// Copy appends "dst := a".
func (b *Builder) Copy(dst, a Operand) *Stmt {
	return b.P.Append(&Stmt{Kind: SAssign, Dst: dst, Op: OpCopy, A: a})
}

// Do appends a DO head with step 1.
func (b *Builder) Do(lcv string, init, final Operand) *Stmt {
	return b.P.Append(&Stmt{Kind: SDoHead, LCV: lcv, Init: init, Final: final, Step: IntOp(1)})
}

// DoStep appends a DO head with an explicit step.
func (b *Builder) DoStep(lcv string, init, final, step Operand) *Stmt {
	return b.P.Append(&Stmt{Kind: SDoHead, LCV: lcv, Init: init, Final: final, Step: step})
}

// EndDo appends an ENDDO.
func (b *Builder) EndDo() *Stmt { return b.P.Append(&Stmt{Kind: SDoEnd}) }

// If appends an IF head.
func (b *Builder) If(a Operand, rel Relop, c Operand) *Stmt {
	return b.P.Append(&Stmt{Kind: SIf, A: a, Rel: rel, B: c})
}

// Else appends an ELSE.
func (b *Builder) Else() *Stmt { return b.P.Append(&Stmt{Kind: SElse}) }

// EndIf appends an ENDIF.
func (b *Builder) EndIf() *Stmt { return b.P.Append(&Stmt{Kind: SEndIf}) }

// Print appends a PRINT.
func (b *Builder) Print(args ...Operand) *Stmt {
	return b.P.Append(&Stmt{Kind: SPrint, Args: args})
}

// Read appends a READ.
func (b *Builder) Read(dst Operand) *Stmt {
	return b.P.Append(&Stmt{Kind: SRead, Dst: dst})
}
