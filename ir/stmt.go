package ir

import "fmt"

// Opcode is the operation of an assignment quad.
type Opcode int

const (
	// OpCopy is a plain copy "x := y" (no third operand).
	OpCopy Opcode = iota
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
)

func (op Opcode) String() string {
	switch op {
	case OpCopy:
		return "assign"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	}
	return fmt.Sprintf("Opcode(%d)", int(op))
}

// Relop is a relational operator in an IF condition.
type Relop int

const (
	RelEQ Relop = iota
	RelNE
	RelLT
	RelLE
	RelGT
	RelGE
)

func (r Relop) String() string {
	switch r {
	case RelEQ:
		return "=="
	case RelNE:
		return "!="
	case RelLT:
		return "<"
	case RelLE:
		return "<="
	case RelGT:
		return ">"
	case RelGE:
		return ">="
	}
	return fmt.Sprintf("Relop(%d)", int(r))
}

// StmtKind discriminates the statement forms of the IR. The IR is
// deliberately structured (loops and conditionals survive as bracketed
// statement pairs) because GOSpeL patterns and parallelizing transformations
// operate on source-level loop structure.
type StmtKind int

const (
	// SAssign is a quad "Dst := A op B" (B absent when Op == OpCopy).
	SAssign StmtKind = iota
	// SDoHead opens a DO loop: "do LCV = Init, Final, Step". Parallel
	// marks a loop transformed into a DOALL by the PAR optimization.
	SDoHead
	// SDoEnd closes the innermost open DO loop.
	SDoEnd
	// SIf opens a conditional: "if A rel B then".
	SIf
	// SElse separates the branches of the innermost open IF.
	SElse
	// SEndIf closes the innermost open IF.
	SEndIf
	// SPrint writes its arguments to the program's output trace.
	SPrint
	// SRead reads the next input value into Dst.
	SRead
)

func (k StmtKind) String() string {
	switch k {
	case SAssign:
		return "assign"
	case SDoHead:
		return "do"
	case SDoEnd:
		return "enddo"
	case SIf:
		return "if"
	case SElse:
		return "else"
	case SEndIf:
		return "endif"
	case SPrint:
		return "print"
	case SRead:
		return "read"
	}
	return fmt.Sprintf("StmtKind(%d)", int(k))
}

// Stmt is one IR statement. Which fields are meaningful depends on Kind:
//
//	SAssign: Dst, Op, A, B
//	SDoHead: LCV, Init, Final, Step, Parallel
//	SIf:     A, Rel, B
//	SPrint:  Args
//	SRead:   Dst
//
// ID is unique within a Program for the life of the statement and survives
// moves; copies receive fresh IDs. Statements are identified by pointer
// within a program; ID exists for stable reporting and cross-pass maps.
type Stmt struct {
	ID   int
	Kind StmtKind

	Dst Operand
	Op  Opcode
	A   Operand
	B   Operand
	Rel Relop

	LCV      string
	Init     Operand
	Final    Operand
	Step     Operand
	Parallel bool

	Args []Operand

	// index is the statement's current position in its Program; maintained
	// by Program mutation methods.
	index int
	// prog is the owning Program; maintained by Program mutation methods.
	// It lets library code reach the program's change log from a bare
	// statement (see NoteModify).
	prog *Program
}

// CloneStmt returns a deep copy of s with ID zeroed (the Program assigns a
// fresh ID when the clone is inserted).
func CloneStmt(s *Stmt) *Stmt {
	c := *s
	c.ID = 0
	c.index = -1
	c.prog = nil
	c.Dst = s.Dst.Clone()
	c.A = s.A.Clone()
	c.B = s.B.Clone()
	c.Init = s.Init.Clone()
	c.Final = s.Final.Clone()
	c.Step = s.Step.Clone()
	if len(s.Args) > 0 {
		c.Args = make([]Operand, len(s.Args))
		for i, a := range s.Args {
			c.Args[i] = a.Clone()
		}
	}
	return &c
}

// EqualStmt reports structural equality of two statements, ignoring IDs and
// positions. Used by the hand-coded-vs-generated quality experiment.
func EqualStmt(a, b *Stmt) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case SAssign:
		return a.Op == b.Op && a.Dst.Equal(b.Dst) && a.A.Equal(b.A) && a.B.Equal(b.B)
	case SDoHead:
		return a.LCV == b.LCV && a.Parallel == b.Parallel &&
			a.Init.Equal(b.Init) && a.Final.Equal(b.Final) && a.Step.Equal(b.Step)
	case SDoEnd, SElse, SEndIf:
		return true
	case SIf:
		return a.Rel == b.Rel && a.A.Equal(b.A) && a.B.Equal(b.B)
	case SPrint:
		if len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !a.Args[i].Equal(b.Args[i]) {
				return false
			}
		}
		return true
	case SRead:
		return a.Dst.Equal(b.Dst)
	}
	return false
}

// Defs returns the scalar or array location the statement writes, if any.
// SDoHead defines its loop control variable.
func (s *Stmt) Defs() (Operand, bool) {
	switch s.Kind {
	case SAssign, SRead:
		return s.Dst, true
	case SDoHead:
		return VarOp(s.LCV), true
	}
	return Operand{}, false
}

// Uses returns the operands the statement reads. Array destinations also
// read their subscript variables; those are reported by UsedVars rather than
// here, since Uses reports operand slots as GOSpeL sees them.
func (s *Stmt) Uses() []Operand {
	switch s.Kind {
	case SAssign:
		if s.Op == OpCopy {
			return []Operand{s.A}
		}
		return []Operand{s.A, s.B}
	case SIf:
		return []Operand{s.A, s.B}
	case SDoHead:
		return []Operand{s.Init, s.Final, s.Step}
	case SPrint:
		return append([]Operand{}, s.Args...)
	}
	return nil
}

// OperandSlot returns a pointer to the statement's i-th operand slot using
// the paper's numbering: for an assignment, slot 1 is the destination
// (opr_1), slot 2 the first source (opr_2) and slot 3 the second source
// (opr_3). For IF, slots 2 and 3 are the two compared operands. For DO,
// slots 1..3 are Init, Final, Step. Returns nil when out of range.
func (s *Stmt) OperandSlot(i int) *Operand {
	switch s.Kind {
	case SAssign, SRead:
		switch i {
		case 1:
			return &s.Dst
		case 2:
			return &s.A
		case 3:
			return &s.B
		}
	case SIf:
		switch i {
		case 2:
			return &s.A
		case 3:
			return &s.B
		}
	case SDoHead:
		switch i {
		case 1:
			return &s.Init
		case 2:
			return &s.Final
		case 3:
			return &s.Step
		}
	case SPrint:
		if i >= 1 && i <= len(s.Args) {
			return &s.Args[i-1]
		}
	}
	return nil
}

// UsedVars returns the names of all scalar variables the statement reads,
// including array subscript variables and, for array destinations, the
// subscripts of the destination.
func (s *Stmt) UsedVars() []string {
	var out []string
	for _, u := range s.Uses() {
		out = append(out, u.VarsRead()...)
	}
	if (s.Kind == SAssign || s.Kind == SRead) && s.Dst.IsArray() {
		for _, sub := range s.Dst.Subs {
			out = append(out, sub.Vars()...)
		}
	}
	return out
}
