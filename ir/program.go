package ir

import (
	"fmt"
	"strings"
)

// Decl records a variable declaration from the source program. Scalars have
// no dimensions; arrays carry their extent per dimension (used by the
// interpreter to allocate storage and by dependence tests as loop-independent
// bounds information).
type Decl struct {
	Name    string
	IsFloat bool
	Dims    []int64 // empty for scalars
}

// Program is an ordered list of IR statements plus declarations. All
// structural mutation goes through Program methods so that statement
// positions stay consistent; the methods are the transformation primitives
// the GENesis action section compiles to.
type Program struct {
	Name   string
	Decls  []Decl
	stmts  []*Stmt
	nextID int

	// journal, when attached via Log/EnsureLog, records every mutation for
	// undo and for incremental dependence maintenance.
	journal *ChangeLog
}

// NewProgram returns an empty program.
func NewProgram(name string) *Program {
	return &Program{Name: name, nextID: 1}
}

// Stmts returns the statement list. The returned slice must not be mutated
// directly; it is reallocated by mutation methods.
func (p *Program) Stmts() []*Stmt { return p.stmts }

// Len returns the number of statements.
func (p *Program) Len() int { return len(p.stmts) }

// Index returns the current position of s, or -1 if s is not in p.
func (p *Program) Index(s *Stmt) int {
	if s == nil || s.index < 0 || s.index >= len(p.stmts) || p.stmts[s.index] != s {
		return -1
	}
	return s.index
}

// At returns the statement at position i, or nil when out of range.
func (p *Program) At(i int) *Stmt {
	if i < 0 || i >= len(p.stmts) {
		return nil
	}
	return p.stmts[i]
}

// Next returns the statement after s (nil at the end).
func (p *Program) Next(s *Stmt) *Stmt { return p.At(p.Index(s) + 1) }

// Prev returns the statement before s (nil at the start). Note Prev of the
// first statement is nil, and Prev of a statement not in p is also nil.
func (p *Program) Prev(s *Stmt) *Stmt {
	i := p.Index(s)
	if i <= 0 {
		return nil
	}
	return p.At(i - 1)
}

// FindID returns the statement with the given ID, or nil.
func (p *Program) FindID(id int) *Stmt {
	for _, s := range p.stmts {
		if s.ID == id {
			return s
		}
	}
	return nil
}

func (p *Program) reindex(from int) {
	if from < 0 {
		from = 0
	}
	for i := from; i < len(p.stmts); i++ {
		p.stmts[i].index = i
	}
}

func (p *Program) assignID(s *Stmt) {
	if s.ID == 0 {
		s.ID = p.nextID
	}
	if s.ID >= p.nextID {
		p.nextID = s.ID + 1
	}
}

// Append adds s at the end of the program and returns it.
func (p *Program) Append(s *Stmt) *Stmt {
	p.assignID(s)
	s.index = len(p.stmts)
	s.prog = p
	p.stmts = append(p.stmts, s)
	p.record(Change{Kind: ChangeInsert, Stmt: s, Index: s.index})
	return s
}

// InsertAt inserts s so that it occupies position i (0 ≤ i ≤ Len).
func (p *Program) InsertAt(i int, s *Stmt) *Stmt {
	if i < 0 {
		i = 0
	}
	if i > len(p.stmts) {
		i = len(p.stmts)
	}
	p.assignID(s)
	p.stmts = append(p.stmts, nil)
	copy(p.stmts[i+1:], p.stmts[i:])
	p.stmts[i] = s
	s.prog = p
	p.reindex(i)
	p.record(Change{Kind: ChangeInsert, Stmt: s, Index: i})
	return s
}

// InsertAfter inserts s immediately after the statement "after". A nil
// "after" inserts at the beginning of the program (the paper's Add primitive
// with a null anchor).
func (p *Program) InsertAfter(after, s *Stmt) *Stmt {
	if after == nil {
		return p.InsertAt(0, s)
	}
	i := p.Index(after)
	if i < 0 {
		panic("ir: InsertAfter anchor not in program")
	}
	return p.InsertAt(i+1, s)
}

// InsertBefore inserts s immediately before the statement "before".
func (p *Program) InsertBefore(before, s *Stmt) *Stmt {
	i := p.Index(before)
	if i < 0 {
		panic("ir: InsertBefore anchor not in program")
	}
	return p.InsertAt(i, s)
}

// Delete removes s from the program. It is the Delete(a) primitive.
func (p *Program) Delete(s *Stmt) {
	i := p.Index(s)
	if i < 0 {
		panic("ir: Delete target not in program")
	}
	copy(p.stmts[i:], p.stmts[i+1:])
	p.stmts = p.stmts[:len(p.stmts)-1]
	s.index = -1
	s.prog = nil
	p.reindex(i)
	p.record(Change{Kind: ChangeDelete, Stmt: s, Index: i})
}

// Move removes s from its position and re-inserts it immediately after
// "after" (nil moves it to the front). It is the Move(a, b) primitive.
func (p *Program) Move(s, after *Stmt) {
	if s == after {
		return
	}
	i := p.Index(s)
	if i < 0 {
		panic("ir: Move target not in program")
	}
	copy(p.stmts[i:], p.stmts[i+1:])
	p.stmts = p.stmts[:len(p.stmts)-1]
	j := 0
	if after != nil {
		// after's index may have shifted by the removal; look it up fresh.
		k := -1
		for idx, t := range p.stmts {
			if t == after {
				k = idx
				break
			}
		}
		if k < 0 {
			panic("ir: Move anchor not in program")
		}
		j = k + 1
	}
	p.stmts = append(p.stmts, nil)
	copy(p.stmts[j+1:], p.stmts[j:])
	p.stmts[j] = s
	p.reindex(0)
	p.record(Change{Kind: ChangeMove, Stmt: s, Index: i})
}

// Copy clones src, inserts the clone immediately after "after", and returns
// the clone. It is the Copy(a, b, c) primitive; the caller binds the result
// to the name c.
func (p *Program) Copy(src, after *Stmt) *Stmt {
	c := CloneStmt(src)
	return p.InsertAfter(after, c)
}

// NextID returns the ID the next appended statement would receive.
func (p *Program) NextID() int { return p.nextID }

// SetNextID raises the ID counter to at least n. It never lowers the
// counter, so existing IDs stay unique. Region-parallel execution uses it
// to give each region's sub-program a disjoint ID range, making fresh IDs
// deterministic regardless of which region allocates first.
func (p *Program) SetNextID(n int) {
	if n > p.nextID {
		p.nextID = n
	}
}

// Clone returns a deep copy of the whole program with the same statement
// IDs, so that analyses keyed by ID can be compared across a snapshot.
func (p *Program) Clone() *Program {
	q := &Program{Name: p.Name, nextID: p.nextID}
	q.Decls = append([]Decl{}, p.Decls...)
	q.stmts = make([]*Stmt, len(p.stmts))
	for i, s := range p.stmts {
		c := CloneStmt(s)
		c.ID = s.ID
		c.index = i
		c.prog = q
		q.stmts[i] = c
	}
	return q
}

// CopyFrom replaces p's contents with q's (declarations, statements, ID
// counter). Transformation engines use it to roll back a partially applied
// action sequence: clone first, CopyFrom the clone on failure.
func (p *Program) CopyFrom(q *Program) {
	c := q.Clone()
	for _, s := range p.stmts {
		s.prog = nil
	}
	p.Name = c.Name
	p.Decls = c.Decls
	p.stmts = c.stmts
	for _, s := range p.stmts {
		s.prog = p
	}
	p.nextID = c.nextID
	p.record(Change{Kind: ChangeReset})
}

// Equal reports whether two programs are structurally identical statement by
// statement (IDs ignored).
func (p *Program) Equal(q *Program) bool {
	if len(p.stmts) != len(q.stmts) {
		return false
	}
	for i := range p.stmts {
		if !EqualStmt(p.stmts[i], q.stmts[i]) {
			return false
		}
	}
	return true
}

// DeclOf returns the declaration of name, if any.
func (p *Program) DeclOf(name string) (Decl, bool) {
	for _, d := range p.Decls {
		if d.Name == name {
			return d, true
		}
	}
	return Decl{}, false
}

// Validate checks structural well-formedness: DO/ENDDO and IF/ELSE/ENDIF
// properly nested and matched. Transformation actions can break structure
// mid-flight; Validate is the post-action invariant check.
func (p *Program) Validate() error {
	type frame struct {
		kind StmtKind
		pos  int
	}
	var stack []frame
	for i, s := range p.stmts {
		switch s.Kind {
		case SDoHead:
			stack = append(stack, frame{SDoHead, i})
		case SIf:
			stack = append(stack, frame{SIf, i})
		case SElse:
			if len(stack) == 0 || stack[len(stack)-1].kind != SIf {
				return fmt.Errorf("ir: ELSE at %d without open IF", i)
			}
		case SEndIf:
			if len(stack) == 0 || stack[len(stack)-1].kind != SIf {
				return fmt.Errorf("ir: ENDIF at %d without open IF", i)
			}
			stack = stack[:len(stack)-1]
		case SDoEnd:
			if len(stack) == 0 || stack[len(stack)-1].kind != SDoHead {
				return fmt.Errorf("ir: ENDDO at %d without open DO", i)
			}
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) != 0 {
		return fmt.Errorf("ir: %d unclosed structure(s), first at %d", len(stack), stack[0].pos)
	}
	return nil
}

// String renders the program in the canonical text form used in tests and
// by the CLI tools.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	indent := 1
	for _, s := range p.stmts {
		switch s.Kind {
		case SDoEnd, SEndIf:
			indent--
		case SElse:
			indent--
		}
		if indent < 0 {
			indent = 0
		}
		b.WriteString(strings.Repeat("  ", indent))
		b.WriteString(FormatStmt(s))
		b.WriteByte('\n')
		switch s.Kind {
		case SDoHead, SIf, SElse:
			indent++
		}
	}
	b.WriteString("end\n")
	return b.String()
}

// FormatStmt renders a single statement.
func FormatStmt(s *Stmt) string {
	switch s.Kind {
	case SAssign:
		if s.Op == OpCopy {
			return fmt.Sprintf("%s := %s", s.Dst, s.A)
		}
		return fmt.Sprintf("%s := %s %s %s", s.Dst, s.A, s.Op, s.B)
	case SDoHead:
		kw := "do"
		if s.Parallel {
			kw = "doall"
		}
		if s.Step.IsConst() && s.Step.Val.Equal(IntVal(1)) {
			return fmt.Sprintf("%s %s = %s, %s", kw, s.LCV, s.Init, s.Final)
		}
		return fmt.Sprintf("%s %s = %s, %s, %s", kw, s.LCV, s.Init, s.Final, s.Step)
	case SDoEnd:
		return "enddo"
	case SIf:
		return fmt.Sprintf("if %s %s %s then", s.A, s.Rel, s.B)
	case SElse:
		return "else"
	case SEndIf:
		return "endif"
	case SPrint:
		parts := make([]string, len(s.Args))
		for i, a := range s.Args {
			parts[i] = a.String()
		}
		return "print " + strings.Join(parts, ", ")
	case SRead:
		return fmt.Sprintf("read %s", s.Dst)
	}
	return fmt.Sprintf("<%v>", s.Kind)
}
