package ir

import (
	"fmt"
	"strings"
)

// ToMiniF renders the program as MiniF source text that the frontend parses
// back into an equivalent program (see the round-trip tests). Quadruples
// map one-to-one onto MiniF assignments, so re-parsing reproduces the same
// statement list; numeric constants compare equal even where a whole-valued
// float prints without its decimal point.
//
// The rendering assumes identifiers do not collide with MiniF keywords,
// which holds for every program produced by the frontend or proggen.
func ToMiniF(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "PROGRAM %s\n", p.Name)

	var ints, reals []string
	for _, d := range p.Decls {
		item := d.Name
		if len(d.Dims) > 0 {
			dims := make([]string, len(d.Dims))
			for i, n := range d.Dims {
				dims[i] = fmt.Sprintf("%d", n)
			}
			item += "(" + strings.Join(dims, ",") + ")"
		}
		if d.IsFloat {
			reals = append(reals, item)
		} else {
			ints = append(ints, item)
		}
	}
	if len(ints) > 0 {
		fmt.Fprintf(&b, "INTEGER %s\n", strings.Join(ints, ", "))
	}
	if len(reals) > 0 {
		fmt.Fprintf(&b, "REAL %s\n", strings.Join(reals, ", "))
	}

	for _, s := range p.Stmts() {
		b.WriteString(minifStmt(s))
		b.WriteByte('\n')
	}
	b.WriteString("END\n")
	return b.String()
}

func minifStmt(s *Stmt) string {
	switch s.Kind {
	case SAssign:
		if s.Op == OpCopy {
			return fmt.Sprintf("%s = %s", minifOperand(s.Dst), minifOperand(s.A))
		}
		op := s.Op.String()
		if s.Op == OpMod {
			op = "MOD"
		}
		return fmt.Sprintf("%s = %s %s %s",
			minifOperand(s.Dst), minifOperand(s.A), op, minifOperand(s.B))
	case SDoHead:
		kw := "DO"
		if s.Parallel {
			kw = "DOALL"
		}
		if s.Step.IsConst() && s.Step.Val.Equal(IntVal(1)) {
			return fmt.Sprintf("%s %s = %s, %s", kw, s.LCV,
				minifOperand(s.Init), minifOperand(s.Final))
		}
		return fmt.Sprintf("%s %s = %s, %s, %s", kw, s.LCV,
			minifOperand(s.Init), minifOperand(s.Final), minifOperand(s.Step))
	case SDoEnd:
		return "ENDDO"
	case SIf:
		return fmt.Sprintf("IF (%s %s %s) THEN",
			minifOperand(s.A), s.Rel, minifOperand(s.B))
	case SElse:
		return "ELSE"
	case SEndIf:
		return "ENDIF"
	case SPrint:
		parts := make([]string, len(s.Args))
		for i, a := range s.Args {
			parts[i] = minifOperand(a)
		}
		return "PRINT " + strings.Join(parts, ", ")
	case SRead:
		return "READ " + minifOperand(s.Dst)
	}
	return "! <" + s.Kind.String() + ">"
}

func minifOperand(o Operand) string {
	switch o.Kind {
	case Const:
		return o.Val.String()
	case Var:
		return o.Name
	case ArrayRef:
		parts := make([]string, len(o.Subs))
		for i, sub := range o.Subs {
			parts[i] = sub.String()
		}
		return o.Name + "(" + strings.Join(parts, ",") + ")"
	}
	return "0"
}
