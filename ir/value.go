// Package ir defines the high-level intermediate representation used by the
// GENesis reproduction. Following the paper, the IR is a list of quadruples
// of the general form
//
//	opr_1 := opr_2 opc opr_3
//
// that retains the loop and conditional structure of the source program
// (DO/ENDDO and IF/ELSE/ENDIF appear as explicit statements), so that
// source-level transformations such as loop interchange and fusion can be
// expressed directly.
package ir

import (
	"fmt"
	"strconv"
)

// Value is a numeric constant. MiniF (and the paper's FORTRAN substrate) is
// numeric; integers and floats are the only scalar types. Integer arithmetic
// stays integral; any float operand promotes the result to float.
type Value struct {
	IsFloat bool
	Int     int64
	Float   float64
}

// IntVal returns an integer Value.
func IntVal(i int64) Value { return Value{Int: i} }

// FloatVal returns a floating-point Value.
func FloatVal(f float64) Value { return Value{IsFloat: true, Float: f} }

// AsFloat returns the value widened to float64.
func (v Value) AsFloat() float64 {
	if v.IsFloat {
		return v.Float
	}
	return float64(v.Int)
}

// AsInt returns the value narrowed to int64 (floats truncate, as FORTRAN
// assignment to INTEGER would).
func (v Value) AsInt() int64 {
	if v.IsFloat {
		return int64(v.Float)
	}
	return v.Int
}

// IsZero reports whether the value is numerically zero.
func (v Value) IsZero() bool {
	if v.IsFloat {
		return v.Float == 0
	}
	return v.Int == 0
}

// Equal reports numeric equality (1 == 1.0).
func (v Value) Equal(o Value) bool {
	if v.IsFloat || o.IsFloat {
		return v.AsFloat() == o.AsFloat()
	}
	return v.Int == o.Int
}

func (v Value) String() string {
	if v.IsFloat {
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	}
	return strconv.FormatInt(v.Int, 10)
}

// Arith applies a binary arithmetic opcode to two values. It is used both by
// the interpreter and by constant folding. Division by zero yields zero
// rather than panicking so that folding a (dynamically unreachable) division
// cannot crash the optimizer.
func Arith(op Opcode, a, b Value) Value {
	if a.IsFloat || b.IsFloat {
		x, y := a.AsFloat(), b.AsFloat()
		var r float64
		switch op {
		case OpAdd:
			r = x + y
		case OpSub:
			r = x - y
		case OpMul:
			r = x * y
		case OpDiv:
			if y == 0 {
				r = 0
			} else {
				r = x / y
			}
		default:
			panic(fmt.Sprintf("ir.Arith: not an arithmetic opcode: %v", op))
		}
		return FloatVal(r)
	}
	x, y := a.Int, b.Int
	var r int64
	switch op {
	case OpAdd:
		r = x + y
	case OpSub:
		r = x - y
	case OpMul:
		r = x * y
	case OpDiv:
		if y == 0 {
			r = 0
		} else {
			r = x / y
		}
	case OpMod:
		if y == 0 {
			r = 0
		} else {
			r = x % y
		}
	default:
		panic(fmt.Sprintf("ir.Arith: not an arithmetic opcode: %v", op))
	}
	return IntVal(r)
}

// Compare applies a relational operator to two values.
func Compare(rel Relop, a, b Value) bool {
	if a.IsFloat || b.IsFloat {
		x, y := a.AsFloat(), b.AsFloat()
		switch rel {
		case RelEQ:
			return x == y
		case RelNE:
			return x != y
		case RelLT:
			return x < y
		case RelLE:
			return x <= y
		case RelGT:
			return x > y
		case RelGE:
			return x >= y
		}
		panic("ir.Compare: bad relop")
	}
	x, y := a.Int, b.Int
	switch rel {
	case RelEQ:
		return x == y
	case RelNE:
		return x != y
	case RelLT:
		return x < y
	case RelLE:
		return x <= y
	case RelGT:
		return x > y
	case RelGE:
		return x >= y
	}
	panic("ir.Compare: bad relop")
}
