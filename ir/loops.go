package ir

// Loop is a view of one DO loop: its head and matching end statement.
// GOSpeL's Loop type (and the pre-defined attributes head, end, body, lcv,
// init, final) map onto this view. Views are computed on demand and become
// stale after structural mutation; re-derive them after each action.
type Loop struct {
	Head *Stmt
	End  *Stmt
}

// Valid reports whether the view still describes a loop in p.
func (l Loop) Valid(p *Program) bool {
	return l.Head != nil && l.End != nil &&
		p.Index(l.Head) >= 0 && p.Index(l.End) > p.Index(l.Head) &&
		l.Head.Kind == SDoHead && l.End.Kind == SDoEnd
}

// Body returns the statements strictly between head and end.
func (l Loop) Body(p *Program) []*Stmt {
	hi, ei := p.Index(l.Head), p.Index(l.End)
	if hi < 0 || ei < 0 || ei <= hi {
		return nil
	}
	out := make([]*Stmt, 0, ei-hi-1)
	for i := hi + 1; i < ei; i++ {
		out = append(out, p.At(i))
	}
	return out
}

// Contains reports whether s lies strictly inside the loop body.
func (l Loop) Contains(p *Program, s *Stmt) bool {
	i := p.Index(s)
	return i > p.Index(l.Head) && i < p.Index(l.End)
}

// LCV returns the loop control variable.
func (l Loop) LCV() string { return l.Head.LCV }

// MatchingEnd returns the SDoEnd that closes the SDoHead at head, or nil.
func MatchingEnd(p *Program, head *Stmt) *Stmt {
	if head == nil || head.Kind != SDoHead {
		return nil
	}
	depth := 0
	for i := p.Index(head) + 1; i < p.Len(); i++ {
		s := p.At(i)
		switch s.Kind {
		case SDoHead:
			depth++
		case SDoEnd:
			if depth == 0 {
				return s
			}
			depth--
		}
	}
	return nil
}

// MatchingHead returns the SDoHead opened by the SDoEnd at end, or nil.
func MatchingHead(p *Program, end *Stmt) *Stmt {
	if end == nil || end.Kind != SDoEnd {
		return nil
	}
	depth := 0
	for i := p.Index(end) - 1; i >= 0; i-- {
		s := p.At(i)
		switch s.Kind {
		case SDoEnd:
			depth++
		case SDoHead:
			if depth == 0 {
				return s
			}
			depth--
		}
	}
	return nil
}

// MatchingEndIf returns the SEndIf closing the SIf at ifs, and the SElse
// between them if present.
func MatchingEndIf(p *Program, ifs *Stmt) (els, endif *Stmt) {
	if ifs == nil || ifs.Kind != SIf {
		return nil, nil
	}
	depth := 0
	for i := p.Index(ifs) + 1; i < p.Len(); i++ {
		s := p.At(i)
		switch s.Kind {
		case SIf:
			depth++
		case SElse:
			if depth == 0 {
				els = s
			}
		case SEndIf:
			if depth == 0 {
				return els, s
			}
			depth--
		}
	}
	return els, nil
}

// Loops returns all loops in program order of their heads.
func Loops(p *Program) []Loop {
	var out []Loop
	for _, s := range p.stmts {
		if s.Kind == SDoHead {
			if end := MatchingEnd(p, s); end != nil {
				out = append(out, Loop{Head: s, End: end})
			}
		}
	}
	return out
}

// LoopOf returns the innermost loop strictly containing s, if any.
func LoopOf(p *Program, s *Stmt) (Loop, bool) {
	best := Loop{}
	found := false
	si := p.Index(s)
	for _, l := range Loops(p) {
		hi, ei := p.Index(l.Head), p.Index(l.End)
		if si > hi && si < ei {
			if !found || hi > p.Index(best.Head) {
				best = l
				found = true
			}
		}
	}
	return best, found
}

// EnclosingLoops returns the loops containing s, outermost first. Used to
// determine the nesting level (and thus direction-vector length) of a
// dependence.
func EnclosingLoops(p *Program, s *Stmt) []Loop {
	var out []Loop
	si := p.Index(s)
	for _, l := range Loops(p) {
		if si > p.Index(l.Head) && si < p.Index(l.End) {
			out = append(out, l)
		}
	}
	return out
}

// NestedPairs returns all (outer, inner) pairs where inner is directly
// nested in outer (no intervening loop between them in the nest), the
// GOSpeL "Nested Loops" type.
func NestedPairs(p *Program) [][2]Loop {
	var out [][2]Loop
	loops := Loops(p)
	for _, outer := range loops {
		for _, inner := range loops {
			if inner.Head == outer.Head {
				continue
			}
			if !outer.Contains(p, inner.Head) || !outer.Contains(p, inner.End) {
				continue
			}
			// Directly nested: no third loop between outer and inner.
			direct := true
			for _, mid := range loops {
				if mid.Head == outer.Head || mid.Head == inner.Head {
					continue
				}
				if outer.Contains(p, mid.Head) && mid.Contains(p, inner.Head) {
					direct = false
					break
				}
			}
			if direct {
				out = append(out, [2]Loop{outer, inner})
			}
		}
	}
	return out
}

// TightPairs returns directly nested pairs with no statements between the
// heads nor between the ends — the GOSpeL "Tight Loops" type (the paper:
// "two loops are tightly nested if one surrounds the other without any
// statements between them").
func TightPairs(p *Program) [][2]Loop {
	var out [][2]Loop
	for _, pair := range NestedPairs(p) {
		outer, inner := pair[0], pair[1]
		if p.Index(inner.Head) == p.Index(outer.Head)+1 &&
			p.Index(outer.End) == p.Index(inner.End)+1 {
			out = append(out, pair)
		}
	}
	return out
}

// AdjacentPairs returns pairs of loops at the same nesting level with no
// statements between the first loop's end and the second loop's head — the
// GOSpeL "Adjacent Loops" type (the candidates for fusion).
func AdjacentPairs(p *Program) [][2]Loop {
	var out [][2]Loop
	for _, l1 := range Loops(p) {
		next := p.Next(l1.End)
		if next == nil || next.Kind != SDoHead {
			continue
		}
		end := MatchingEnd(p, next)
		if end == nil {
			continue
		}
		out = append(out, [2]Loop{l1, {Head: next, End: end}})
	}
	return out
}

// NestDepth returns the number of loops enclosing s (0 at top level).
func NestDepth(p *Program, s *Stmt) int { return len(EnclosingLoops(p, s)) }

// CommonLoops returns the loops enclosing both a and b, outermost first.
// The length of this slice is the direction-vector length for a dependence
// between a and b.
func CommonLoops(p *Program, a, b *Stmt) []Loop {
	la := EnclosingLoops(p, a)
	var out []Loop
	bi := p.Index(b)
	for _, l := range la {
		if bi > p.Index(l.Head) && bi < p.Index(l.End) {
			out = append(out, l)
		}
	}
	return out
}
