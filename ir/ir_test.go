package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func sampleProgram() *Program {
	// program sample
	//   n := 10
	//   do i = 1, n
	//     do j = 1, n
	//       a(i,j) := b(i,j) + c
	//     enddo
	//   enddo
	//   do k = 1, n
	//     s := s + a(k,k)
	//   enddo
	//   print s
	b := NewBuilder("sample")
	b.Declare("a", true, 10, 10).Declare("b", true, 10, 10)
	b.Copy(VarOp("n"), IntOp(10))
	b.Do("i", IntOp(1), VarOp("n"))
	b.Do("j", IntOp(1), VarOp("n"))
	b.Assign(ArrayOp("a", VarExpr("i"), VarExpr("j")),
		ArrayOp("b", VarExpr("i"), VarExpr("j")), OpAdd, VarOp("c"))
	b.EndDo()
	b.EndDo()
	b.Do("k", IntOp(1), VarOp("n"))
	b.Assign(VarOp("s"), VarOp("s"), OpAdd, ArrayOp("a", VarExpr("k"), VarExpr("k")))
	b.EndDo()
	b.Print(VarOp("s"))
	return b.P
}

func TestValueArith(t *testing.T) {
	cases := []struct {
		op   Opcode
		a, b Value
		want Value
	}{
		{OpAdd, IntVal(2), IntVal(3), IntVal(5)},
		{OpSub, IntVal(2), IntVal(3), IntVal(-1)},
		{OpMul, IntVal(4), IntVal(3), IntVal(12)},
		{OpDiv, IntVal(7), IntVal(2), IntVal(3)},
		{OpMod, IntVal(7), IntVal(2), IntVal(1)},
		{OpDiv, IntVal(7), IntVal(0), IntVal(0)},
		{OpAdd, FloatVal(1.5), IntVal(2), FloatVal(3.5)},
		{OpMul, FloatVal(0.5), FloatVal(4), FloatVal(2)},
		{OpDiv, FloatVal(1), FloatVal(0), FloatVal(0)},
	}
	for _, c := range cases {
		got := Arith(c.op, c.a, c.b)
		if !got.Equal(c.want) {
			t.Errorf("Arith(%v, %v, %v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	if !Compare(RelLT, IntVal(1), IntVal(2)) {
		t.Error("1 < 2 should hold")
	}
	if Compare(RelGT, IntVal(1), FloatVal(2)) {
		t.Error("1 > 2.0 should not hold")
	}
	if !Compare(RelEQ, IntVal(2), FloatVal(2)) {
		t.Error("2 == 2.0 should hold")
	}
	if !Compare(RelNE, IntVal(2), IntVal(3)) {
		t.Error("2 != 3 should hold")
	}
	if !Compare(RelGE, IntVal(3), IntVal(3)) {
		t.Error("3 >= 3 should hold")
	}
	if !Compare(RelLE, IntVal(3), IntVal(4)) {
		t.Error("3 <= 4 should hold")
	}
}

func TestLinExprNormalizeAndOps(t *testing.T) {
	e := LinExpr{Const: 1, Terms: []Term{{2, "i"}, {3, "j"}, {-2, "i"}}}
	n := e.Normalize()
	if n.Coef("i") != 0 || n.Coef("j") != 3 || n.Const != 1 {
		t.Fatalf("normalize: got %v", n)
	}
	if len(n.Terms) != 1 {
		t.Fatalf("normalize should drop zero terms: %v", n.Terms)
	}

	a := VarExpr("i").Scale(2).Add(ConstExpr(5)) // 2i+5
	b := VarExpr("i").Add(VarExpr("j"))          // i+j
	d := a.Sub(b)                                // i-j+5
	if d.Coef("i") != 1 || d.Coef("j") != -1 || d.Const != 5 {
		t.Fatalf("sub: got %v", d)
	}
	if !a.Equal(VarExpr("i").Scale(2).Add(ConstExpr(5))) {
		t.Error("Equal should hold for identical expressions")
	}
	if a.IsConst() {
		t.Error("2i+5 is not constant")
	}
	if !ConstExpr(7).IsConst() {
		t.Error("7 is constant")
	}
}

func TestLinExprSubst(t *testing.T) {
	// (2i + j + 1)[i := i - 3] = 2i + j - 5
	e := VarExpr("i").Scale(2).Add(VarExpr("j")).Add(ConstExpr(1))
	got := e.Subst("i", VarExpr("i").Add(ConstExpr(-3)))
	want := VarExpr("i").Scale(2).Add(VarExpr("j")).Add(ConstExpr(-5))
	if !got.Equal(want) {
		t.Fatalf("subst: got %v want %v", got, want)
	}
}

func TestLinExprString(t *testing.T) {
	cases := []struct {
		e    LinExpr
		want string
	}{
		{ConstExpr(4), "4"},
		{VarExpr("i"), "i"},
		{VarExpr("i").Scale(-1), "-i"},
		{VarExpr("i").Add(ConstExpr(-2)), "i-2"},
		{VarExpr("i").Scale(2).Add(VarExpr("j")).Add(ConstExpr(1)), "2*i+j+1"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.e, got, c.want)
		}
	}
}

func TestOperandBasics(t *testing.T) {
	a := ArrayOp("a", VarExpr("i"), ConstExpr(3))
	if !a.IsArray() || a.IsVar() || a.IsConst() {
		t.Error("kind predicates wrong for array operand")
	}
	if got := a.String(); got != "a(i,3)" {
		t.Errorf("String = %q", got)
	}
	c := a.Clone()
	c.Subs[0] = VarExpr("j")
	if a.Subs[0].Coef("j") != 0 {
		t.Error("Clone must deep-copy subscripts")
	}
	if !a.Equal(ArrayOp("a", VarExpr("i"), ConstExpr(3))) {
		t.Error("Equal should hold")
	}
	if a.Equal(ArrayOp("a", VarExpr("j"), ConstExpr(3))) {
		t.Error("Equal should fail on differing subscripts")
	}
	vr := a.VarsRead()
	if len(vr) != 1 || vr[0] != "i" {
		t.Errorf("VarsRead = %v", vr)
	}
}

func TestStmtDefsUses(t *testing.T) {
	s := &Stmt{Kind: SAssign, Dst: ArrayOp("a", VarExpr("i")), Op: OpAdd, A: VarOp("x"), B: IntOp(1)}
	d, ok := s.Defs()
	if !ok || !d.IsArray() || d.Name != "a" {
		t.Fatalf("Defs = %v, %v", d, ok)
	}
	uses := s.Uses()
	if len(uses) != 2 || uses[0].Name != "x" {
		t.Fatalf("Uses = %v", uses)
	}
	uv := s.UsedVars()
	want := map[string]bool{"x": true, "i": true}
	if len(uv) != 2 || !want[uv[0]] || !want[uv[1]] {
		t.Fatalf("UsedVars = %v", uv)
	}

	do := &Stmt{Kind: SDoHead, LCV: "i", Init: IntOp(1), Final: VarOp("n"), Step: IntOp(1)}
	d, ok = do.Defs()
	if !ok || d.Name != "i" {
		t.Fatalf("DO should define its LCV, got %v, %v", d, ok)
	}
}

func TestOperandSlot(t *testing.T) {
	s := &Stmt{Kind: SAssign, Dst: VarOp("x"), Op: OpAdd, A: VarOp("y"), B: VarOp("z")}
	if s.OperandSlot(1).Name != "x" || s.OperandSlot(2).Name != "y" || s.OperandSlot(3).Name != "z" {
		t.Error("assignment slots wrong")
	}
	if s.OperandSlot(4) != nil || s.OperandSlot(0) != nil {
		t.Error("out-of-range slots must be nil")
	}
	ifs := &Stmt{Kind: SIf, A: VarOp("p"), Rel: RelLT, B: VarOp("q")}
	if ifs.OperandSlot(2).Name != "p" || ifs.OperandSlot(3).Name != "q" {
		t.Error("if slots wrong")
	}
	pr := &Stmt{Kind: SPrint, Args: []Operand{VarOp("u"), VarOp("v")}}
	if pr.OperandSlot(1).Name != "u" || pr.OperandSlot(2).Name != "v" {
		t.Error("print slots wrong")
	}
}

func TestProgramMutation(t *testing.T) {
	p := sampleProgram()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	n := p.Len()

	first := p.At(0)
	last := p.At(n - 1)
	if p.Prev(first) != nil || p.Next(last) != nil {
		t.Error("ends must have nil neighbours")
	}
	if p.Next(first) != p.At(1) {
		t.Error("Next broken")
	}

	// Insert, move, delete keep indices consistent.
	s := &Stmt{Kind: SAssign, Dst: VarOp("t"), Op: OpCopy, A: IntOp(0)}
	p.InsertAfter(first, s)
	if p.Index(s) != 1 || p.Len() != n+1 {
		t.Fatalf("InsertAfter: index %d len %d", p.Index(s), p.Len())
	}
	p.Move(s, last)
	if p.Index(s) != p.Index(last)+1 {
		t.Fatalf("Move: index %d vs last %d", p.Index(s), p.Index(last))
	}
	p.Move(s, nil)
	if p.Index(s) != 0 {
		t.Fatalf("Move to front: index %d", p.Index(s))
	}
	p.Delete(s)
	if p.Len() != n || p.Index(s) != -1 {
		t.Fatal("Delete broken")
	}
	for i, st := range p.Stmts() {
		if p.Index(st) != i {
			t.Fatalf("index desync at %d", i)
		}
	}
}

func TestProgramCopyAssignsFreshID(t *testing.T) {
	p := sampleProgram()
	src := p.At(0)
	c := p.Copy(src, p.At(2))
	if c.ID == src.ID || c.ID == 0 {
		t.Errorf("copy must get fresh ID: src %d copy %d", src.ID, c.ID)
	}
	if !EqualStmt(c, src) {
		t.Error("copy must be structurally equal to source")
	}
}

func TestProgramCloneIndependent(t *testing.T) {
	p := sampleProgram()
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone must equal original")
	}
	q.At(0).Dst = VarOp("zzz")
	if p.At(0).Dst.Name == "zzz" {
		t.Fatal("clone must be deep")
	}
	q.Delete(q.At(0))
	if p.Len() == q.Len() {
		t.Fatal("clone statement lists must be independent")
	}
}

func TestValidateCatchesBrokenStructure(t *testing.T) {
	b := NewBuilder("bad")
	b.Do("i", IntOp(1), IntOp(10))
	if err := b.P.Validate(); err == nil {
		t.Error("unclosed DO must fail validation")
	}
	b2 := NewBuilder("bad2")
	b2.EndDo()
	if err := b2.P.Validate(); err == nil {
		t.Error("stray ENDDO must fail validation")
	}
	b3 := NewBuilder("bad3")
	b3.Do("i", IntOp(1), IntOp(2))
	b3.EndIf()
	if err := b3.P.Validate(); err == nil {
		t.Error("mismatched nesting must fail validation")
	}
	b4 := NewBuilder("bad4")
	b4.Else()
	if err := b4.P.Validate(); err == nil {
		t.Error("stray ELSE must fail validation")
	}
}

func TestLoopViews(t *testing.T) {
	p := sampleProgram()
	loops := Loops(p)
	if len(loops) != 3 {
		t.Fatalf("want 3 loops, got %d", len(loops))
	}
	outer, inner, third := loops[0], loops[1], loops[2]
	if outer.LCV() != "i" || inner.LCV() != "j" || third.LCV() != "k" {
		t.Fatalf("loop order wrong: %s %s %s", outer.LCV(), inner.LCV(), third.LCV())
	}
	if len(inner.Body(p)) != 1 {
		t.Errorf("inner body = %d stmts", len(inner.Body(p)))
	}
	if len(outer.Body(p)) != 3 {
		t.Errorf("outer body = %d stmts", len(outer.Body(p)))
	}

	nested := NestedPairs(p)
	if len(nested) != 1 || nested[0][0].LCV() != "i" || nested[0][1].LCV() != "j" {
		t.Fatalf("NestedPairs = %v", nested)
	}
	tight := TightPairs(p)
	if len(tight) != 1 {
		t.Fatalf("TightPairs = %d", len(tight))
	}
	adj := AdjacentPairs(p)
	if len(adj) != 1 || adj[0][0].LCV() != "i" || adj[0][1].LCV() != "k" {
		t.Fatalf("AdjacentPairs = %v", adj)
	}

	body := inner.Body(p)[0]
	l, ok := LoopOf(p, body)
	if !ok || l.LCV() != "j" {
		t.Fatalf("LoopOf = %v, %v", l, ok)
	}
	encl := EnclosingLoops(p, body)
	if len(encl) != 2 || encl[0].LCV() != "i" || encl[1].LCV() != "j" {
		t.Fatalf("EnclosingLoops = %v", encl)
	}
	if NestDepth(p, body) != 2 {
		t.Error("NestDepth should be 2")
	}
	common := CommonLoops(p, body, body)
	if len(common) != 2 {
		t.Errorf("CommonLoops self = %d", len(common))
	}
}

func TestTightPairsRejectsLooseNest(t *testing.T) {
	b := NewBuilder("loose")
	b.Do("i", IntOp(1), IntOp(10))
	b.Copy(VarOp("x"), IntOp(0)) // statement between the heads
	b.Do("j", IntOp(1), IntOp(10))
	b.Copy(VarOp("y"), IntOp(1))
	b.EndDo()
	b.EndDo()
	if len(NestedPairs(b.P)) != 1 {
		t.Fatal("should still be nested")
	}
	if len(TightPairs(b.P)) != 0 {
		t.Fatal("loose nest must not be tight")
	}
}

func TestMatchingStructure(t *testing.T) {
	p := sampleProgram()
	head := p.At(1) // do i
	end := MatchingEnd(p, head)
	if end == nil || end.Kind != SDoEnd || p.Index(end) != 5 {
		t.Fatalf("MatchingEnd = %v", end)
	}
	if MatchingHead(p, end) != head {
		t.Fatal("MatchingHead must invert MatchingEnd")
	}

	b := NewBuilder("ifs")
	ifs := b.If(VarOp("x"), RelGT, IntOp(0))
	b.Copy(VarOp("y"), IntOp(1))
	b.Else()
	b.Copy(VarOp("y"), IntOp(2))
	b.EndIf()
	els, endif := MatchingEndIf(b.P, ifs)
	if els == nil || els.Kind != SElse || endif == nil || endif.Kind != SEndIf {
		t.Fatalf("MatchingEndIf = %v, %v", els, endif)
	}
}

func TestProgramString(t *testing.T) {
	p := sampleProgram()
	s := p.String()
	for _, want := range []string{
		"program sample",
		"n := 10",
		"do i = 1, n",
		"a(i,j) := b(i,j) + c",
		"print s",
		"end",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
}

func TestFormatStmtVariants(t *testing.T) {
	cases := []struct {
		s    *Stmt
		want string
	}{
		{&Stmt{Kind: SAssign, Dst: VarOp("x"), Op: OpCopy, A: IntOp(3)}, "x := 3"},
		{&Stmt{Kind: SAssign, Dst: VarOp("x"), Op: OpMul, A: VarOp("y"), B: VarOp("z")}, "x := y * z"},
		{&Stmt{Kind: SDoHead, LCV: "i", Init: IntOp(1), Final: IntOp(9), Step: IntOp(2)}, "do i = 1, 9, 2"},
		{&Stmt{Kind: SDoHead, LCV: "i", Init: IntOp(1), Final: IntOp(9), Step: IntOp(1), Parallel: true}, "doall i = 1, 9"},
		{&Stmt{Kind: SIf, A: VarOp("a"), Rel: RelNE, B: IntOp(0)}, "if a != 0 then"},
		{&Stmt{Kind: SRead, Dst: VarOp("v")}, "read v"},
		{&Stmt{Kind: SPrint, Args: []Operand{VarOp("a"), VarOp("b")}}, "print a, b"},
	}
	for _, c := range cases {
		if got := FormatStmt(c.s); got != c.want {
			t.Errorf("FormatStmt = %q, want %q", got, c.want)
		}
	}
}

// Property: LinExpr.Add is commutative and Sub(x,x) is the zero expression.
func TestLinExprProperties(t *testing.T) {
	mk := func(c int64, ci, cj int64) LinExpr {
		return LinExpr{Const: c, Terms: []Term{{ci, "i"}, {cj, "j"}}}
	}
	commutes := func(c1, i1, j1, c2, i2, j2 int8) bool {
		a := mk(int64(c1), int64(i1), int64(j1))
		b := mk(int64(c2), int64(i2), int64(j2))
		return a.Add(b).Equal(b.Add(a))
	}
	if err := quick.Check(commutes, nil); err != nil {
		t.Error(err)
	}
	selfZero := func(c, i, j int8) bool {
		a := mk(int64(c), int64(i), int64(j))
		d := a.Sub(a)
		return d.IsConst() && d.Const == 0
	}
	if err := quick.Check(selfZero, nil); err != nil {
		t.Error(err)
	}
	substIdentity := func(c, i, j int8) bool {
		a := mk(int64(c), int64(i), int64(j))
		return a.Subst("i", VarExpr("i")).Equal(a)
	}
	if err := quick.Check(substIdentity, nil); err != nil {
		t.Error(err)
	}
}

// Property: Move is position-stable — moving a statement after an anchor
// always places it immediately after that anchor, whatever the start state.
func TestMoveProperty(t *testing.T) {
	f := func(from, to uint8) bool {
		p := NewProgram("prop")
		for i := 0; i < 12; i++ {
			p.Append(&Stmt{Kind: SAssign, Dst: VarOp("x"), Op: OpCopy, A: IntOp(int64(i))})
		}
		s := p.At(int(from) % p.Len())
		anchor := p.At(int(to) % p.Len())
		if s == anchor {
			return true
		}
		p.Move(s, anchor)
		return p.Index(s) == p.Index(anchor)+1 && p.Len() == 12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
