package ir

import (
	"strings"
	"testing"
)

func TestKindAndOpcodeStrings(t *testing.T) {
	for op, want := range map[Opcode]string{
		OpCopy: "assign", OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	} {
		if op.String() != want {
			t.Errorf("%d.String() = %q", int(op), op.String())
		}
	}
	if Opcode(99).String() == "" {
		t.Error("unknown opcode String")
	}
	for rel, want := range map[Relop]string{
		RelEQ: "==", RelNE: "!=", RelLT: "<", RelLE: "<=", RelGT: ">", RelGE: ">=",
	} {
		if rel.String() != want {
			t.Errorf("relop %d = %q", int(rel), rel.String())
		}
	}
	kinds := []StmtKind{SAssign, SDoHead, SDoEnd, SIf, SElse, SEndIf, SPrint, SRead, StmtKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("kind %d empty String", int(k))
		}
	}
	if OperandKind(99).String() == "" || NoOperand.String() != "none" {
		t.Error("OperandKind strings")
	}
}

func TestOperandHelpers(t *testing.T) {
	if None().Present() {
		t.Error("None must be absent")
	}
	if !VarOp("x").Present() {
		t.Error("Var must be present")
	}
	if None().String() != "_" {
		t.Errorf("None string = %q", None().String())
	}
	a := ArrayOp("a", VarExpr("i"))
	s := a.SubstVar("i", VarExpr("j").Add(ConstExpr(1)))
	if got := s.Subs[0].String(); got != "j+1" {
		t.Errorf("SubstVar = %q", got)
	}
	// SubstVar on non-arrays is the identity.
	v := VarOp("i")
	if !v.SubstVar("i", ConstExpr(9)).Equal(v) {
		t.Error("SubstVar must not touch scalar operands")
	}
}

func TestProgramLookupHelpers(t *testing.T) {
	b := NewBuilder("h")
	b.Declare("a", true, 4)
	s1 := b.Copy(VarOp("x"), IntOp(1))
	s2 := b.Read(VarOp("y"))
	b.DoStep("i", IntOp(4), IntOp(1), IntOp(-1))
	b.EndDo()
	p := b.P

	if p.FindID(s2.ID) != s2 {
		t.Error("FindID")
	}
	if p.FindID(9999) != nil {
		t.Error("FindID missing must be nil")
	}
	if d, ok := p.DeclOf("a"); !ok || d.Dims[0] != 4 {
		t.Error("DeclOf")
	}
	if _, ok := p.DeclOf("zzz"); ok {
		t.Error("DeclOf missing")
	}
	ins := &Stmt{Kind: SAssign, Dst: VarOp("z"), Op: OpCopy, A: IntOp(0)}
	p.InsertBefore(s2, ins)
	if p.Index(ins) != 1 {
		t.Errorf("InsertBefore index = %d", p.Index(ins))
	}
	// InsertAfter nil anchor = front.
	front := &Stmt{Kind: SAssign, Dst: VarOp("w"), Op: OpCopy, A: IntOp(0)}
	p.InsertAfter(nil, front)
	if p.Index(front) != 0 {
		t.Error("InsertAfter(nil) must prepend")
	}
	_ = s1
}

func TestCopyFromRestores(t *testing.T) {
	b := NewBuilder("snap")
	b.Copy(VarOp("x"), IntOp(1))
	b.Copy(VarOp("y"), IntOp(2))
	p := b.P
	snap := p.Clone()
	p.Delete(p.At(0))
	p.At(0).Dst = VarOp("zzz")
	p.CopyFrom(snap)
	if p.Len() != 2 || p.At(0).Dst.Name != "x" {
		t.Fatalf("CopyFrom failed:\n%s", p)
	}
	// IDs and the counter survive so future inserts stay unique.
	s := p.Append(&Stmt{Kind: SAssign, Dst: VarOp("q"), Op: OpCopy, A: IntOp(3)})
	if s.ID == p.At(0).ID || s.ID == p.At(1).ID {
		t.Error("ID counter not restored")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	mk := func() *Program {
		b := NewBuilder("e")
		b.Do("i", IntOp(1), IntOp(3))
		b.Print(VarOp("i"))
		b.EndDo()
		return b.P
	}
	a, c := mk(), mk()
	if !a.Equal(c) {
		t.Fatal("identical programs must be equal")
	}
	c.At(1).Args = []Operand{VarOp("j")}
	if a.Equal(c) {
		t.Fatal("differing print args must differ")
	}
	d := mk()
	d.Delete(d.At(1))
	if a.Equal(d) {
		t.Fatal("different lengths must differ")
	}
}

func TestEqualStmtKindMatrix(t *testing.T) {
	a := &Stmt{Kind: SRead, Dst: VarOp("x")}
	b := &Stmt{Kind: SRead, Dst: VarOp("y")}
	if EqualStmt(a, b) {
		t.Error("reads of different targets differ")
	}
	if !EqualStmt(&Stmt{Kind: SElse}, &Stmt{Kind: SElse}) {
		t.Error("markers are equal")
	}
	if EqualStmt(&Stmt{Kind: SElse}, &Stmt{Kind: SEndIf}) {
		t.Error("different kinds differ")
	}
	do1 := &Stmt{Kind: SDoHead, LCV: "i", Init: IntOp(1), Final: IntOp(2), Step: IntOp(1)}
	do2 := &Stmt{Kind: SDoHead, LCV: "i", Init: IntOp(1), Final: IntOp(2), Step: IntOp(1), Parallel: true}
	if EqualStmt(do1, do2) {
		t.Error("parallel flag must distinguish loop heads")
	}
	if1 := &Stmt{Kind: SIf, A: VarOp("a"), Rel: RelLT, B: VarOp("b")}
	if2 := &Stmt{Kind: SIf, A: VarOp("a"), Rel: RelGT, B: VarOp("b")}
	if EqualStmt(if1, if2) {
		t.Error("relop must distinguish ifs")
	}
}

func TestLoopValid(t *testing.T) {
	b := NewBuilder("v")
	h := b.Do("i", IntOp(1), IntOp(2))
	e := b.EndDo()
	p := b.P
	l := Loop{Head: h, End: e}
	if !l.Valid(p) {
		t.Error("live loop must be valid")
	}
	p.Delete(h)
	if l.Valid(p) {
		t.Error("deleted head must invalidate")
	}
	if (Loop{}).Valid(p) {
		t.Error("zero loop must be invalid")
	}
}

func TestToMiniFForms(t *testing.T) {
	b := NewBuilder("forms")
	b.Declare("n", false)
	b.Declare("a", true, 4, 4)
	b.Read(VarOp("n"))
	b.Assign(VarOp("n"), VarOp("n"), OpMod, IntOp(3))
	b.DoStep("i", IntOp(4), IntOp(1), IntOp(-1))
	b.EndDo()
	do := b.Do("j", IntOp(1), IntOp(4))
	do.Parallel = true
	b.Assign(ArrayOp("a", VarExpr("j"), ConstExpr(2)), ConstOp(FloatVal(1.5)), OpCopy, None())
	b.EndDo()
	b.If(VarOp("n"), RelNE, IntOp(0))
	b.Else()
	b.EndIf()
	b.Print(VarOp("n"), ArrayOp("a", ConstExpr(1), ConstExpr(2)))
	src := ToMiniF(b.P)
	for _, want := range []string{
		"PROGRAM forms",
		"INTEGER n",
		"REAL a(4,4)",
		"READ n",
		"n = n MOD 3",
		"DO i = 4, 1, -1",
		"DOALL j = 1, 4",
		"a(j,2) = 1.5",
		"IF (n != 0) THEN",
		"ELSE",
		"ENDIF",
		"PRINT n, a(1,2)",
		"END",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("ToMiniF missing %q in:\n%s", want, src)
		}
	}
}
