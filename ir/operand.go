package ir

import (
	"fmt"
	"sort"
	"strings"
)

// OperandKind discriminates the forms an operand of a quad may take.
type OperandKind int

const (
	// NoOperand marks an absent operand slot (e.g. the third operand of a
	// plain copy "x := y").
	NoOperand OperandKind = iota
	// Const is a numeric literal.
	Const
	// Var is a scalar variable reference.
	Var
	// ArrayRef is an array element reference with affine subscripts.
	ArrayRef
)

func (k OperandKind) String() string {
	switch k {
	case NoOperand:
		return "none"
	case Const:
		return "const"
	case Var:
		return "var"
	case ArrayRef:
		return "array"
	}
	return fmt.Sprintf("OperandKind(%d)", int(k))
}

// Term is one c*v summand of a linear subscript expression.
type Term struct {
	Coef int64
	Var  string
}

// LinExpr is an affine expression c0 + Σ ci*vi over integer scalar
// variables. Array subscripts are kept in this form so the dependence
// analyzer can run ZIV/SIV/GCD subscript tests. The frontend lowers any
// non-affine subscript into a fresh temporary, which appears here as a
// single term with coefficient 1 (and is treated conservatively by the
// dependence tests).
type LinExpr struct {
	Const int64
	Terms []Term
}

// ConstExpr returns the affine expression for a bare constant.
func ConstExpr(c int64) LinExpr { return LinExpr{Const: c} }

// VarExpr returns the affine expression for a bare variable.
func VarExpr(name string) LinExpr { return LinExpr{Terms: []Term{{Coef: 1, Var: name}}} }

// Normalize sorts terms by variable name, merges duplicates and drops zero
// coefficients, producing a canonical form suitable for equality checks.
func (e LinExpr) Normalize() LinExpr {
	if len(e.Terms) == 0 {
		return e
	}
	m := make(map[string]int64, len(e.Terms))
	for _, t := range e.Terms {
		m[t.Var] += t.Coef
	}
	names := make([]string, 0, len(m))
	for v, c := range m {
		if c != 0 {
			names = append(names, v)
		}
	}
	sort.Strings(names)
	out := LinExpr{Const: e.Const}
	for _, v := range names {
		out.Terms = append(out.Terms, Term{Coef: m[v], Var: v})
	}
	return out
}

// Add returns e + o in normalized form.
func (e LinExpr) Add(o LinExpr) LinExpr {
	sum := LinExpr{Const: e.Const + o.Const}
	sum.Terms = append(append([]Term{}, e.Terms...), o.Terms...)
	return sum.Normalize()
}

// Scale returns k*e in normalized form.
func (e LinExpr) Scale(k int64) LinExpr {
	out := LinExpr{Const: e.Const * k}
	for _, t := range e.Terms {
		out.Terms = append(out.Terms, Term{Coef: t.Coef * k, Var: t.Var})
	}
	return out.Normalize()
}

// Sub returns e - o in normalized form.
func (e LinExpr) Sub(o LinExpr) LinExpr { return e.Add(o.Scale(-1)) }

// Coef returns the coefficient of variable v (zero if absent).
func (e LinExpr) Coef(v string) int64 {
	for _, t := range e.Terms {
		if t.Var == v {
			return t.Coef
		}
	}
	return 0
}

// Vars returns the variables referenced by the expression.
func (e LinExpr) Vars() []string {
	out := make([]string, 0, len(e.Terms))
	for _, t := range e.Terms {
		out = append(out, t.Var)
	}
	return out
}

// IsConst reports whether the expression has no variable terms.
func (e LinExpr) IsConst() bool { return len(e.Normalize().Terms) == 0 }

// Equal reports structural equality after normalization.
func (e LinExpr) Equal(o LinExpr) bool {
	a, b := e.Normalize(), o.Normalize()
	if a.Const != b.Const || len(a.Terms) != len(b.Terms) {
		return false
	}
	for i := range a.Terms {
		if a.Terms[i] != b.Terms[i] {
			return false
		}
	}
	return true
}

// Subst replaces variable v with expression repl, returning the normalized
// result. Used by loop transformations (e.g. bumping rewrites i as i-k).
func (e LinExpr) Subst(v string, repl LinExpr) LinExpr {
	out := LinExpr{Const: e.Const}
	for _, t := range e.Terms {
		if t.Var == v {
			out = out.Add(repl.Scale(t.Coef))
		} else {
			out.Terms = append(out.Terms, t)
		}
	}
	return out.Normalize()
}

func (e LinExpr) String() string {
	n := e.Normalize()
	if len(n.Terms) == 0 {
		return fmt.Sprintf("%d", n.Const)
	}
	var b strings.Builder
	for i, t := range n.Terms {
		switch {
		case i == 0 && t.Coef == 1:
			b.WriteString(t.Var)
		case i == 0 && t.Coef == -1:
			b.WriteString("-" + t.Var)
		case i == 0:
			fmt.Fprintf(&b, "%d*%s", t.Coef, t.Var)
		case t.Coef == 1:
			b.WriteString("+" + t.Var)
		case t.Coef == -1:
			b.WriteString("-" + t.Var)
		case t.Coef < 0:
			fmt.Fprintf(&b, "%d*%s", t.Coef, t.Var)
		default:
			fmt.Fprintf(&b, "+%d*%s", t.Coef, t.Var)
		}
	}
	if n.Const > 0 {
		fmt.Fprintf(&b, "+%d", n.Const)
	} else if n.Const < 0 {
		fmt.Fprintf(&b, "%d", n.Const)
	}
	return b.String()
}

// Operand is one slot of a quad: nothing, a constant, a scalar variable, or
// an array element reference.
type Operand struct {
	Kind OperandKind
	Val  Value     // Const
	Name string    // Var, ArrayRef
	Subs []LinExpr // ArrayRef subscripts, one per dimension
}

// None is the absent operand.
func None() Operand { return Operand{} }

// ConstOp returns a constant operand.
func ConstOp(v Value) Operand { return Operand{Kind: Const, Val: v} }

// IntOp returns an integer constant operand.
func IntOp(i int64) Operand { return ConstOp(IntVal(i)) }

// VarOp returns a scalar variable operand.
func VarOp(name string) Operand { return Operand{Kind: Var, Name: name} }

// ArrayOp returns an array reference operand.
func ArrayOp(name string, subs ...LinExpr) Operand {
	return Operand{Kind: ArrayRef, Name: name, Subs: subs}
}

// IsConst reports whether the operand is a constant.
func (o Operand) IsConst() bool { return o.Kind == Const }

// IsVar reports whether the operand is a scalar variable.
func (o Operand) IsVar() bool { return o.Kind == Var }

// IsArray reports whether the operand is an array reference.
func (o Operand) IsArray() bool { return o.Kind == ArrayRef }

// Present reports whether the operand slot is occupied.
func (o Operand) Present() bool { return o.Kind != NoOperand }

// Equal reports structural equality of two operands.
func (o Operand) Equal(p Operand) bool {
	if o.Kind != p.Kind {
		return false
	}
	switch o.Kind {
	case NoOperand:
		return true
	case Const:
		return o.Val.Equal(p.Val)
	case Var:
		return o.Name == p.Name
	case ArrayRef:
		if o.Name != p.Name || len(o.Subs) != len(p.Subs) {
			return false
		}
		for i := range o.Subs {
			if !o.Subs[i].Equal(p.Subs[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Clone returns a deep copy of the operand.
func (o Operand) Clone() Operand {
	c := o
	if len(o.Subs) > 0 {
		c.Subs = make([]LinExpr, len(o.Subs))
		for i, s := range o.Subs {
			c.Subs[i] = LinExpr{Const: s.Const, Terms: append([]Term{}, s.Terms...)}
		}
	}
	return c
}

// VarsRead returns the scalar variables this operand reads when evaluated:
// the variable itself for Var, the subscript variables for ArrayRef.
func (o Operand) VarsRead() []string {
	switch o.Kind {
	case Var:
		return []string{o.Name}
	case ArrayRef:
		var out []string
		for _, s := range o.Subs {
			out = append(out, s.Vars()...)
		}
		return out
	}
	return nil
}

// SubstVar replaces scalar variable v with expression repl inside the
// operand: a Var operand for v becomes... (callers use this only for
// subscript rewriting; substituting into a Var operand is handled by the
// transformation primitives, which replace whole operands).
func (o Operand) SubstVar(v string, repl LinExpr) Operand {
	if o.Kind != ArrayRef {
		return o
	}
	c := o.Clone()
	for i := range c.Subs {
		c.Subs[i] = c.Subs[i].Subst(v, repl)
	}
	return c
}

func (o Operand) String() string {
	switch o.Kind {
	case NoOperand:
		return "_"
	case Const:
		return o.Val.String()
	case Var:
		return o.Name
	case ArrayRef:
		parts := make([]string, len(o.Subs))
		for i, s := range o.Subs {
			parts[i] = s.String()
		}
		return o.Name + "(" + strings.Join(parts, ",") + ")"
	}
	return "?"
}
