package ir

import "fmt"

// ChangeKind discriminates the entries of a ChangeLog. The five GOSpeL
// transformation primitives reduce to four journal operations: Add and Copy
// both insert (ChangeInsert), Delete removes (ChangeDelete), Move relocates
// (ChangeMove), and Modify edits a statement's fields in place
// (ChangeModify).
type ChangeKind int

const (
	// ChangeInsert records that Stmt was inserted at position Index.
	ChangeInsert ChangeKind = iota
	// ChangeDelete records that Stmt was removed from position Index.
	ChangeDelete
	// ChangeMove records that Stmt was moved away from position Index (its
	// current position is wherever the program now holds it).
	ChangeMove
	// ChangeModify records that Stmt's fields were edited in place; Before
	// is a deep copy of the statement taken immediately before the edit.
	ChangeModify
	// ChangeReset records a wholesale replacement of the program's contents
	// (CopyFrom). A reset cannot be undone through the log and forces
	// clients maintaining derived state to rebuild from scratch.
	ChangeReset
)

func (k ChangeKind) String() string {
	switch k {
	case ChangeInsert:
		return "insert"
	case ChangeDelete:
		return "delete"
	case ChangeMove:
		return "move"
	case ChangeModify:
		return "modify"
	case ChangeReset:
		return "reset"
	}
	return fmt.Sprintf("ChangeKind(%d)", int(k))
}

// Change is one recorded program edit.
type Change struct {
	Kind ChangeKind
	Stmt *Stmt
	// Index is the position the edit happened at: the insertion point for
	// ChangeInsert, the removal point for ChangeDelete, and the origin for
	// ChangeMove.
	Index int
	// Before is the pre-image of the statement for ChangeModify.
	Before *Stmt
}

// ChangeLog journals the structural and in-place edits applied to a Program
// while attached. It serves two clients at once:
//
//   - transformation engines use it as an undo log — UndoTo rolls a
//     partially applied action sequence back in place, preserving statement
//     pointer identity (so dependence graphs and element bindings survive a
//     failed application);
//   - the dependence analyzer uses it as a dirty-region log — dep.Update
//     consumes the recorded changes to re-analyze only the statements whose
//     reaching facts can have changed.
//
// A program carries at most one attached log; nested transactions use
// Mark/UndoTo/Since rather than nested logs. ChangeLog is not safe for
// concurrent use, matching Program itself.
type ChangeLog struct {
	prog    *Program
	changes []Change
	// rollbacks counts UndoTo calls that reverted at least one change;
	// undone counts the individual changes replayed backwards. Both are
	// monotonic over the log's lifetime (Reset does not clear them) and
	// feed the observability layer's undo-log counters.
	rollbacks int64
	undone    int64
}

// Rollbacks returns the number of UndoTo calls that reverted at least one
// change — each one a failed (and rolled back) action application.
func (l *ChangeLog) Rollbacks() int64 { return l.rollbacks }

// UndoneChanges returns the total number of journal entries replayed
// backwards across all rollbacks.
func (l *ChangeLog) UndoneChanges() int64 { return l.undone }

// Log attaches a fresh change log to p and returns it. It panics when a log
// is already attached; cooperating layers should use EnsureLog instead.
func (p *Program) Log() *ChangeLog {
	if p.journal != nil {
		panic("ir: Log: a change log is already attached")
	}
	l := &ChangeLog{prog: p}
	p.journal = l
	return l
}

// EnsureLog returns the program's attached change log, attaching a fresh one
// when none is present. The boolean reports whether this call attached the
// log (and therefore owns its detachment).
func (p *Program) EnsureLog() (*ChangeLog, bool) {
	if p.journal != nil {
		return p.journal, false
	}
	return p.Log(), true
}

// Journal returns the currently attached change log, or nil.
func (p *Program) Journal() *ChangeLog { return p.journal }

// Detach stops recording into l and releases it from the program.
func (l *ChangeLog) Detach() {
	if l.prog != nil && l.prog.journal == l {
		l.prog.journal = nil
	}
	l.prog = nil
}

// Mark returns a position in the log for later UndoTo/Since calls.
func (l *ChangeLog) Mark() int { return len(l.changes) }

// Len returns the number of recorded changes.
func (l *ChangeLog) Len() int { return len(l.changes) }

// Changes returns every recorded change in application order. The returned
// slice aliases the log; it is invalidated by Reset and UndoTo.
func (l *ChangeLog) Changes() []Change { return l.changes }

// Since returns the changes recorded after mark.
func (l *ChangeLog) Since(mark int) []Change {
	if mark < 0 {
		mark = 0
	}
	if mark > len(l.changes) {
		mark = len(l.changes)
	}
	return l.changes[mark:]
}

// Reset drops every recorded change without undoing anything. Use it after
// derived state (a dependence graph) has consumed the log.
func (l *ChangeLog) Reset() { l.changes = l.changes[:0] }

// Undo reverts every recorded change, restoring the program to its state at
// attach (or last Reset) time.
func (l *ChangeLog) Undo() { l.UndoTo(0) }

// UndoTo reverts, in reverse order, every change recorded after mark and
// truncates the log to mark. Statement pointer identity is preserved: a
// deleted statement is reinserted as the same *Stmt, and a modified
// statement has its fields restored in place. It panics on a ChangeReset
// entry (wholesale replacement cannot be replayed backwards).
func (l *ChangeLog) UndoTo(mark int) {
	p := l.prog
	if p == nil {
		panic("ir: UndoTo on a detached change log")
	}
	if mark < 0 {
		mark = 0
	}
	if len(l.changes) > mark {
		l.rollbacks++
		l.undone += int64(len(l.changes) - mark)
	}
	for i := len(l.changes) - 1; i >= mark; i-- {
		c := l.changes[i]
		switch c.Kind {
		case ChangeInsert:
			p.removeRaw(c.Stmt)
		case ChangeDelete:
			p.insertRaw(c.Index, c.Stmt)
		case ChangeMove:
			p.removeRaw(c.Stmt)
			p.insertRaw(c.Index, c.Stmt)
		case ChangeModify:
			restoreStmt(c.Stmt, c.Before)
		case ChangeReset:
			panic("ir: cannot undo past a wholesale program replacement")
		}
	}
	l.changes = l.changes[:mark]
}

// record appends a change when a journal is attached.
func (p *Program) record(c Change) {
	if p.journal != nil {
		p.journal.changes = append(p.journal.changes, c)
	}
}

// NoteModified records an imminent in-place edit of s's fields (operands,
// opcode, statement kind attributes). Callers must invoke it before
// mutating; it snapshots the statement as the undo pre-image. A no-op when
// no change log is attached.
func (p *Program) NoteModified(s *Stmt) {
	if p.journal == nil || s == nil {
		return
	}
	p.record(Change{Kind: ChangeModify, Stmt: s, Index: p.Index(s), Before: CloneStmt(s)})
}

// NoteModify is NoteModified reached through the statement itself, for
// library routines that mutate a statement without holding its program
// (optlib's Modify primitives in generated optimizers).
func NoteModify(s *Stmt) {
	if s != nil && s.prog != nil {
		s.prog.NoteModified(s)
	}
}

// restoreStmt copies before's fields into s, preserving s's identity (ID,
// position, owning program).
func restoreStmt(s, before *Stmt) {
	id, idx, prog := s.ID, s.index, s.prog
	*s = *before
	s.ID, s.index, s.prog = id, idx, prog
}

// removeRaw deletes s without journaling (undo replay).
func (p *Program) removeRaw(s *Stmt) {
	i := p.Index(s)
	if i < 0 {
		panic("ir: undo: statement not in program")
	}
	copy(p.stmts[i:], p.stmts[i+1:])
	p.stmts = p.stmts[:len(p.stmts)-1]
	s.index = -1
	s.prog = nil
	p.reindex(i)
}

// insertRaw inserts s at position i without journaling (undo replay).
func (p *Program) insertRaw(i int, s *Stmt) {
	if i < 0 {
		i = 0
	}
	if i > len(p.stmts) {
		i = len(p.stmts)
	}
	p.stmts = append(p.stmts, nil)
	copy(p.stmts[i+1:], p.stmts[i:])
	p.stmts[i] = s
	s.prog = p
	p.reindex(i)
}
