package ir

import "testing"

func journalProgram() *Program {
	b := NewBuilder("j")
	b.Declare("x", false)
	b.Copy(VarOp("x"), IntOp(1))
	b.Print(VarOp("x"))
	return b.P
}

// TestRollbackCounters: UndoTo counts one rollback per call that reverted
// work, plus the individual changes replayed; empty undos count nothing,
// and Reset leaves the monotonic counters intact.
func TestRollbackCounters(t *testing.T) {
	p := journalProgram()
	log := p.Log()
	defer log.Detach()

	if log.Rollbacks() != 0 || log.UndoneChanges() != 0 {
		t.Fatalf("fresh log: rollbacks=%d undone=%d", log.Rollbacks(), log.UndoneChanges())
	}

	// An UndoTo with nothing recorded is not a rollback.
	log.UndoTo(log.Mark())
	if log.Rollbacks() != 0 {
		t.Fatalf("empty UndoTo counted as rollback")
	}

	// Two edits, one rollback: one rollback event, two undone changes.
	mark := log.Mark()
	s := p.At(0)
	p.NoteModified(s)
	op := s.Op
	s.Op = op
	p.Delete(p.At(1))
	if got := log.Len() - mark; got != 2 {
		t.Fatalf("journaled %d changes, want 2", got)
	}
	log.UndoTo(mark)
	if log.Rollbacks() != 1 || log.UndoneChanges() != 2 {
		t.Fatalf("after rollback: rollbacks=%d undone=%d, want 1, 2", log.Rollbacks(), log.UndoneChanges())
	}
	if p.Len() != 2 {
		t.Fatalf("program not restored: %d statements", p.Len())
	}

	// Reset consumes changes without touching the monotonic counters.
	p.NoteModified(p.At(0))
	log.Reset()
	if log.Rollbacks() != 1 || log.UndoneChanges() != 2 {
		t.Fatalf("Reset cleared monotonic counters: rollbacks=%d undone=%d",
			log.Rollbacks(), log.UndoneChanges())
	}

	// A second rollback accumulates.
	mark = log.Mark()
	p.NoteModified(p.At(0))
	log.UndoTo(mark)
	if log.Rollbacks() != 2 || log.UndoneChanges() != 3 {
		t.Fatalf("after second rollback: rollbacks=%d undone=%d, want 2, 3",
			log.Rollbacks(), log.UndoneChanges())
	}
}
