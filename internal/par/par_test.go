package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrdered: results land at their input index no matter how the
// scheduler interleaves the workers.
func TestMapOrdered(t *testing.T) {
	const n = 100
	out := Map(n, 7, func(i int) int {
		time.Sleep(time.Duration(i%5) * time.Millisecond) // scramble finish order
		return i * i
	})
	if len(out) != n {
		t.Fatalf("len = %d, want %d", len(out), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapEdgeCases(t *testing.T) {
	if out := Map(0, 4, func(i int) int { return i }); len(out) != 0 {
		t.Errorf("Map(0, ...) returned %d results", len(out))
	}
	// Single worker takes the sequential path; still every index exactly once.
	var calls int32
	out := Map(5, 1, func(i int) int {
		atomic.AddInt32(&calls, 1)
		return i
	})
	if calls != 5 {
		t.Errorf("sequential path made %d calls, want 5", calls)
	}
	for i, v := range out {
		if v != i {
			t.Errorf("out[%d] = %d", i, v)
		}
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got < 1 {
		t.Errorf("Workers(-3) = %d, want >= 1", got)
	}
}

func TestDo(t *testing.T) {
	var total int64
	fns := make([]func(), 20)
	for i := range fns {
		v := int64(i)
		fns[i] = func() { atomic.AddInt64(&total, v) }
	}
	Do(3, fns...)
	if total != 190 {
		t.Errorf("total = %d, want 190", total)
	}
}
