package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrdered: results land at their input index no matter how the
// scheduler interleaves the workers.
func TestMapOrdered(t *testing.T) {
	const n = 100
	out := Map(n, 7, func(i int) int {
		time.Sleep(time.Duration(i%5) * time.Millisecond) // scramble finish order
		return i * i
	})
	if len(out) != n {
		t.Fatalf("len = %d, want %d", len(out), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapEdgeCases(t *testing.T) {
	if out := Map(0, 4, func(i int) int { return i }); len(out) != 0 {
		t.Errorf("Map(0, ...) returned %d results", len(out))
	}
	// Single worker takes the sequential path; still every index exactly once.
	var calls int32
	out := Map(5, 1, func(i int) int {
		atomic.AddInt32(&calls, 1)
		return i
	})
	if calls != 5 {
		t.Errorf("sequential path made %d calls, want 5", calls)
	}
	for i, v := range out {
		if v != i {
			t.Errorf("out[%d] = %d", i, v)
		}
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got < 1 {
		t.Errorf("Workers(-3) = %d, want >= 1", got)
	}
}

func TestDo(t *testing.T) {
	var total int64
	fns := make([]func(), 20)
	for i := range fns {
		v := int64(i)
		fns[i] = func() { atomic.AddInt64(&total, v) }
	}
	Do(3, fns...)
	if total != 190 {
		t.Errorf("total = %d, want 190", total)
	}
}

// TestLimiterBound: no more than the limiter's cap of holders run at once,
// and a cancelled context unblocks a waiter with its error.
func TestLimiterBound(t *testing.T) {
	l := NewLimiter(3)
	if l.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", l.Cap())
	}
	var cur, max int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			defer l.Release()
			n := atomic.AddInt64(&cur, 1)
			for {
				m := atomic.LoadInt64(&max)
				if n <= m || atomic.CompareAndSwapInt64(&max, m, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			atomic.AddInt64(&cur, -1)
		}()
	}
	wg.Wait()
	if max > 3 {
		t.Errorf("observed %d concurrent holders, cap 3", max)
	}
	if l.InFlight() != 0 {
		t.Errorf("InFlight = %d after drain, want 0", l.InFlight())
	}
}

// TestLimiterCancel: Acquire returns the context error when no slot frees.
func TestLimiterCancel(t *testing.T) {
	l := NewLimiter(1)
	if !l.TryAcquire() {
		t.Fatal("TryAcquire on empty limiter failed")
	}
	defer l.Release()
	if l.TryAcquire() {
		t.Fatal("TryAcquire on full limiter succeeded")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := l.Acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Acquire = %v, want DeadlineExceeded", err)
	}
}

// TestLimiterDrain: Drain blocks until every holder releases, then leaves
// the limiter fully free; a stuck holder surfaces the context error.
func TestLimiterDrain(t *testing.T) {
	l := NewLimiter(3)
	release := make(chan struct{})
	for i := 0; i < 3; i++ {
		if err := l.Acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
		go func() {
			<-release
			l.Release()
		}()
	}
	// Drain with holders stuck: context error, slots restored.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	if err := l.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("stuck Drain = %v, want DeadlineExceeded", err)
	}
	cancel()
	close(release)
	if err := l.Drain(context.Background()); err != nil {
		t.Fatalf("Drain = %v", err)
	}
	if l.InFlight() != 0 {
		t.Fatalf("InFlight = %d after Drain, want 0", l.InFlight())
	}
	if !l.TryAcquire() {
		t.Fatal("limiter not usable after Drain")
	}
	l.Release()
}
