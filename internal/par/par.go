// Package par provides a minimal bounded worker pool for the experiment
// matrix and workload sweeps. Every (optimizer, program) task is
// independent, so the sweeps are embarrassingly parallel; what matters here
// is that results come back in input order — the experiment tables and CLI
// output must be byte-identical regardless of scheduling.
package par

import (
	"context"
	"runtime"
	"sync"
)

// Workers resolves a requested pool size: values < 1 select GOMAXPROCS.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs f(0..n-1) on a pool of at most workers goroutines and returns
// the results in index order. f must be safe for concurrent invocation;
// ordering of side effects across calls is not defined, only the result
// placement is.
func Map[R any](n, workers int, f func(i int) R) []R {
	out := make([]R, n)
	if n == 0 {
		return out
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			out[i] = f(i)
		}
		return out
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// Do runs the given functions concurrently on a pool of at most workers
// goroutines and waits for all of them.
func Do(workers int, fns ...func()) {
	Map(len(fns), workers, func(i int) struct{} {
		fns[i]()
		return struct{}{}
	})
}

// Limiter is a counting semaphore for admission control: at most n holders
// at a time, with context-bounded waiting for a slot. It is the request-
// scoped sibling of Map's worker pool — where Map bounds a fixed batch,
// Limiter bounds an open-ended stream (e.g. HTTP requests).
type Limiter struct {
	slots chan struct{}
}

// NewLimiter returns a limiter admitting at most n concurrent holders;
// n < 1 selects GOMAXPROCS via Workers.
func NewLimiter(n int) *Limiter {
	return &Limiter{slots: make(chan struct{}, Workers(n))}
}

// Acquire blocks until a slot is free or ctx is done, returning ctx.Err()
// in the latter case. Every successful Acquire must be paired with Release.
func (l *Limiter) Acquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a slot without blocking, reporting whether it got one.
func (l *Limiter) TryAcquire() bool {
	select {
	case l.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot taken by Acquire or TryAcquire.
func (l *Limiter) Release() { <-l.slots }

// Drain waits until every slot is free — i.e. all current holders have
// released — by acquiring the full capacity and handing it back. It is a
// barrier for graceful shutdown: once Drain returns, no work admitted
// before the call is still running (provided no new Acquires race with
// it; callers gate admissions first).
func (l *Limiter) Drain(ctx context.Context) error {
	n := cap(l.slots)
	for i := 0; i < n; i++ {
		if err := l.Acquire(ctx); err != nil {
			for ; i > 0; i-- {
				l.Release()
			}
			return err
		}
	}
	for i := 0; i < n; i++ {
		l.Release()
	}
	return nil
}

// InFlight returns the number of slots currently held.
func (l *Limiter) InFlight() int { return len(l.slots) }

// Cap returns the limiter's concurrency bound.
func (l *Limiter) Cap() int { return cap(l.slots) }
