package farm

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestRunCleanCampaign(t *testing.T) {
	ch, err := NewChecker(Config{})
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	st, _ := OpenStore("")
	defer st.Close()
	m := NewManager()
	camp, err := m.Ensure("clean", CampaignConfig{Profile: "aggregation", Count: 12, Seed: 100})
	if err != nil {
		t.Fatalf("Ensure: %v", err)
	}
	var programs atomic.Int64
	h := Hooks{Program: func() { programs.Add(1) }}
	if err := Run(context.Background(), ch, st, camp, 4, h); err != nil {
		t.Fatalf("Run: %v", err)
	}
	status := camp.Status()
	if status.State != "done" || status.Checked != 12 {
		t.Fatalf("status = %+v, want done with 12 checked", status)
	}
	if status.Findings != 0 || status.Divergent != 0 || status.Errored != 0 {
		t.Fatalf("clean corpus produced findings: %+v\n%v", status, st.List(""))
	}
	if programs.Load() != 12 {
		t.Errorf("Program hook fired %d times, want 12", programs.Load())
	}
}

// TestSeededMiscompileFarmE2E is the full loop the farm exists for: seed a
// deliberately wrong spec, sweep a campaign, and verify the farm catches
// it, persists a durable minimized finding, and reproduces it from the
// recorded (profile, seed) pair.
func TestSeededMiscompileFarmE2E(t *testing.T) {
	ch := seededChecker(t)
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager()
	camp, err := m.Ensure("seeded", CampaignConfig{Profile: "aggregation", Count: 8, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := Run(context.Background(), ch, st, camp, 0, Hooks{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	status := camp.Status()
	if status.State != "done" {
		t.Fatalf("campaign not done: %+v", status)
	}
	if status.Findings == 0 {
		t.Fatal("seeded miscompile produced no findings")
	}
	if status.Findings != st.Len() {
		t.Fatalf("campaign counted %d findings, store has %d", status.Findings, st.Len())
	}
	st.Close()

	// Findings survive restart and carry a minimized reproducer that still
	// reproduces from the recorded (profile, seed).
	st, err = OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	findings := st.List("seeded")
	if len(findings) != status.Findings {
		t.Fatalf("replayed %d findings, want %d", len(findings), status.Findings)
	}
	f := findings[0]
	if f.Minimized == "" {
		t.Fatalf("finding has no minimized reproducer: %+v", f)
	}
	if 4*f.MinStmts > f.OrigStmts {
		t.Errorf("minimized to %d/%d statements, want <= 25%%", f.MinStmts, f.OrigStmts)
	}
	src, divs, err := ch.CheckSeed(context.Background(), f.Profile, f.Seed, camp.Cfg.MaxStmts)
	if err != nil {
		t.Fatalf("reproducing from (profile, seed): %v", err)
	}
	if src != f.Source {
		t.Error("recorded source does not match regeneration from (profile, seed)")
	}
	found := false
	for _, d := range divs {
		if d.Kind == f.Kind && d.Variant == f.Variant && d.Baseline == f.Baseline {
			found = true
		}
	}
	if !found {
		t.Fatalf("recorded divergence class did not reproduce: %v", divs)
	}
}

func TestManagerEnsureIsIdempotent(t *testing.T) {
	m := NewManager()
	cfg := CampaignConfig{Profile: "default", Count: 5, Seed: 1}
	a, err := m.Ensure("x", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Ensure("x", CampaignConfig{Profile: "mixed", Count: 99, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Ensure minted a second campaign for the same ID")
	}
	if got, ok := m.Get("x"); !ok || got != a {
		t.Error("Get did not return the campaign")
	}
	if list := m.List(); len(list) != 1 || list[0].ID != "x" {
		t.Errorf("List = %+v", list)
	}
	if _, err := m.Ensure("bad", CampaignConfig{Profile: "nope", Count: 1}); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := m.Ensure("bad2", CampaignConfig{Profile: "default", Count: 0}); err == nil {
		t.Error("zero count accepted")
	}
}

func BenchmarkFarmThroughput(b *testing.B) {
	ch, err := NewChecker(Config{})
	if err != nil {
		b.Fatal(err)
	}
	st, _ := OpenStore("")
	defer st.Close()
	m := NewManager()
	camp, _ := m.Ensure("bench", CampaignConfig{Profile: "aggregation", Count: 1 << 30, Seed: 0})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var seed int64
		for pb.Next() {
			seed++
			if _, err := ProcessSeed(ctx, ch, st, camp, Hooks{}, seed); err != nil {
				b.Fatal(err)
			}
		}
	})
}
