package farm

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/frontend"
	"repro/ir"
)

// MinimizeResult is a shrunk reproducer: the smallest program the
// minimizer reached that still exhibits the original divergence class.
type MinimizeResult struct {
	// Source is the minimized program as MiniF.
	Source string
	// OrigStmts and MinStmts count IR statements before and after.
	OrigStmts, MinStmts int
	// Steps counts accepted shrink steps.
	Steps int
}

// Minimize shrinks a failing program while preserving its divergence
// class (Kind, Variant, Baseline). Two reducers run to joint fixpoint:
// statement-subset deletion (single statements, or whole DO..ENDDO /
// IF..ENDIF spans at any depth, largest first) and loop-range reduction
// (clamping a loop's Final to its Init, one trip). A candidate is
// accepted only when it still Validates and the oracle still reports the
// same divergence class, so every intermediate program is a valid,
// terminating reproducer. Context cancellation stops the search and
// returns the best program reached so far.
func (c *Checker) Minimize(ctx context.Context, source string, want Divergence) (*MinimizeResult, error) {
	prog, err := frontend.Parse(source)
	if err != nil {
		return nil, fmt.Errorf("farm: minimize parse: %w", err)
	}
	if !c.stillDiverges(ctx, source, want) {
		return nil, fmt.Errorf("farm: divergence %q does not reproduce from the given source", want.Kind)
	}
	res := &MinimizeResult{OrigStmts: prog.Len()}
	cur := prog
	for changed := true; changed && ctx.Err() == nil; {
		changed = false
		// Deletion pass, largest spans first: removing a whole loop or
		// conditional early saves re-checking its body statement by
		// statement.
		spans := deletionSpans(cur)
		sort.Slice(spans, func(i, j int) bool {
			return spans[i][1]-spans[i][0] > spans[j][1]-spans[j][0]
		})
		for _, sp := range spans {
			if ctx.Err() != nil {
				break
			}
			cand := cur.Clone()
			deleteRange(cand, sp[0], sp[1])
			if cand.Validate() != nil {
				continue
			}
			if c.stillDiverges(ctx, ir.ToMiniF(cand), want) {
				cur = cand
				res.Steps++
				changed = true
				break
			}
		}
		if changed {
			continue
		}
		// Loop-range reduction: a surviving loop may only need one trip to
		// exhibit the bug.
		for i := 0; i < cur.Len(); i++ {
			if ctx.Err() != nil {
				break
			}
			s := cur.At(i)
			if s.Kind != ir.SDoHead || s.Final.Equal(s.Init) {
				continue
			}
			cand := cur.Clone()
			cs := cand.At(i)
			cs.Final = cs.Init.Clone()
			if cand.Validate() != nil {
				continue
			}
			if c.stillDiverges(ctx, ir.ToMiniF(cand), want) {
				cur = cand
				res.Steps++
				changed = true
				break
			}
		}
	}
	res.Source = ir.ToMiniF(cur)
	res.MinStmts = cur.Len()
	return res, nil
}

// stillDiverges re-runs the oracle on a candidate and reports whether the
// wanted divergence class is among the results. Any infrastructure error
// (including cancellation) rejects the candidate.
func (c *Checker) stillDiverges(ctx context.Context, source string, want Divergence) bool {
	divs, err := c.CheckSource(ctx, source)
	if err != nil {
		return false
	}
	for _, d := range divs {
		if sameClass(d, want) {
			return true
		}
	}
	return false
}

// deletionSpans enumerates the removable units of a program as inclusive
// index ranges: every simple statement alone, and every DO..ENDDO or
// IF..ELSE..ENDIF as a whole span, at every nesting depth. Deleting any
// single span keeps the bracket structure balanced.
func deletionSpans(p *ir.Program) [][2]int {
	var spans [][2]int
	for i := 0; i < p.Len(); i++ {
		switch p.At(i).Kind {
		case ir.SAssign, ir.SPrint, ir.SRead:
			spans = append(spans, [2]int{i, i})
		case ir.SDoHead:
			spans = append(spans, [2]int{i, matchingEnd(p, i, ir.SDoHead, ir.SDoEnd)})
		case ir.SIf:
			spans = append(spans, [2]int{i, matchingEnd(p, i, ir.SIf, ir.SEndIf)})
		}
	}
	return spans
}

// matchingEnd returns the index of the close bracket matching the open
// bracket at start (depth-aware). Validated programs always have one.
func matchingEnd(p *ir.Program, start int, open, close ir.StmtKind) int {
	depth := 0
	for j := start; j < p.Len(); j++ {
		switch p.At(j).Kind {
		case open:
			depth++
		case close:
			depth--
			if depth == 0 {
				return j
			}
		}
	}
	return p.Len() - 1
}

// deleteRange removes statements [start, end] (inclusive) from p.
func deleteRange(p *ir.Program, start, end int) {
	doomed := make([]*ir.Stmt, 0, end-start+1)
	for j := start; j <= end && j < p.Len(); j++ {
		doomed = append(doomed, p.At(j))
	}
	for _, s := range doomed {
		p.Delete(s)
	}
}
