package farm

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/jobs"
)

// Finding is one persisted oracle failure: everything needed to reproduce
// (campaign, profile, seed, the exact source) plus the minimized
// reproducer when shrinking succeeded.
type Finding struct {
	Campaign string `json:"campaign"`
	Profile  string `json:"profile"`
	Seed     int64  `json:"seed"`
	Kind     string `json:"kind"`
	Variant  string `json:"variant"`
	Baseline string `json:"baseline"`
	Detail   string `json:"detail"`
	// Source is the generated program that diverged; Minimized is the
	// shrunk reproducer ("" when minimization could not run).
	Source    string    `json:"source"`
	Minimized string    `json:"minimized,omitempty"`
	OrigStmts int       `json:"orig_stmts"`
	MinStmts  int       `json:"min_stmts,omitempty"`
	FoundAt   time.Time `json:"found_at"`
}

// key is the dedup identity: a retried campaign job must not record its
// finding twice.
func (f Finding) key() string {
	return fmt.Sprintf("%s|%d|%s|%s|%s", f.Campaign, f.Seed, f.Kind, f.Variant, f.Baseline)
}

// Store persists findings in an append-only log of CRC-framed JSON
// records — the jobs WAL's frame format, so it inherits the same
// torn-tail semantics: on open the log is replayed up to the first bad
// frame and truncated there, and every append is fsynced. An empty dir
// selects a memory-only store (lost on restart). Safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	f        *os.File // nil when memory-only
	findings []Finding
	seen     map[string]bool
}

// OpenStore opens (creating if absent) the findings log under dir,
// replaying prior findings and truncating any torn tail.
func OpenStore(dir string) (*Store, error) {
	st := &Store{seen: map[string]bool{}}
	if dir == "" {
		return st, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("farm: store dir: %w", err)
	}
	path := filepath.Join(dir, "findings.log")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("farm: store open: %w", err)
	}
	good, err := jobs.ReplayFrames(f, func(payload []byte) bool {
		var fd Finding
		if json.Unmarshal(payload, &fd) != nil {
			return false
		}
		st.findings = append(st.findings, fd)
		st.seen[fd.key()] = true
		return true
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("farm: store truncate: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("farm: store seek: %w", err)
	}
	st.f = f
	return st, nil
}

// Append persists one finding (fsynced before returning). A finding with
// the same (campaign, seed, divergence class) as a recorded one is
// dropped silently — job retries and resubmitted campaigns are
// idempotent.
func (st *Store) Append(f Finding) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.seen[f.key()] {
		return nil
	}
	if st.f != nil {
		payload, err := json.Marshal(f)
		if err != nil {
			return fmt.Errorf("farm: store marshal: %w", err)
		}
		if _, err := st.f.Write(jobs.EncodeFrame(payload)); err != nil {
			return fmt.Errorf("farm: store append: %w", err)
		}
		if err := st.f.Sync(); err != nil {
			return fmt.Errorf("farm: store sync: %w", err)
		}
	}
	st.findings = append(st.findings, f)
	st.seen[f.key()] = true
	return nil
}

// List returns the findings of one campaign ("" = all), oldest first.
func (st *Store) List(campaign string) []Finding {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Finding, 0, len(st.findings))
	for _, f := range st.findings {
		if campaign == "" || f.Campaign == campaign {
			out = append(out, f)
		}
	}
	return out
}

// Len reports the number of recorded findings.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.findings)
}

// Close releases the log file.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return nil
	}
	err := st.f.Close()
	st.f = nil
	return err
}
