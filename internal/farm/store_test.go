package farm

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testFinding(seed int64) Finding {
	return Finding{
		Campaign: "c1", Profile: "aggregation", Seed: seed,
		Kind: KindOutput, Variant: "interp:default", Baseline: "reference",
		Detail: "output[0] = 1, reference printed 2",
		Source: "PROGRAM p\nINTEGER m\nm = 1\nPRINT m\nEND\n", OrigStmts: 2, MinStmts: 2,
		FoundAt: time.Now().UTC().Truncate(time.Second),
	}
}

func TestStoreRoundTripAndTornTail(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	for seed := int64(0); seed < 3; seed++ {
		if err := st.Append(testFinding(seed)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate a crash mid-append: garbage where a frame header should be.
	path := filepath.Join(dir, "findings.log")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st, err = OpenStore(dir)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	if st.Len() != 3 {
		t.Fatalf("replayed %d findings, want 3", st.Len())
	}
	// The tail was truncated; appends extend a clean log.
	if err := st.Append(testFinding(9)); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	st.Close()

	st, err = OpenStore(dir)
	if err != nil {
		t.Fatalf("final reopen: %v", err)
	}
	defer st.Close()
	got := st.List("c1")
	if len(got) != 4 {
		t.Fatalf("replayed %d findings, want 4", len(got))
	}
	if got[3].Seed != 9 || got[0].Seed != 0 {
		t.Errorf("replay order broken: %+v", got)
	}
	if got[0].Source == "" || got[0].Detail == "" {
		t.Errorf("replayed finding lost fields: %+v", got[0])
	}
}

func TestStoreDedupsRetriedFindings(t *testing.T) {
	st, err := OpenStore("") // memory-only
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	f := testFinding(7)
	for i := 0; i < 3; i++ {
		if err := st.Append(f); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d after retried appends, want 1", st.Len())
	}
	// A different divergence class of the same seed is a new finding.
	f2 := f
	f2.Kind = KindCensus
	if err := st.Append(f2); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
}

func TestStoreListFiltersByCampaign(t *testing.T) {
	st, _ := OpenStore("")
	defer st.Close()
	a := testFinding(1)
	b := testFinding(2)
	b.Campaign = "c2"
	st.Append(a)
	st.Append(b)
	if got := st.List("c2"); len(got) != 1 || got[0].Campaign != "c2" {
		t.Fatalf("List(c2) = %+v", got)
	}
	if got := st.List(""); len(got) != 2 {
		t.Fatalf("List(all) = %d findings, want 2", len(got))
	}
}
