// Package farm is the correctness burn-in subsystem: a differential
// fuzzing farm over the optimizer. It scales the internal/proggen
// generator into a streamed corpus (profiles weight the statement mix
// toward specific optimization opportunities), runs every program through
// the reference interpreter and N optimizer configurations (engines ×
// pass orders), and reports any divergence — a wrong output byte, a
// mismatched applied-action census between configurations that should
// agree, or an engine failure the reference did not have.
//
// Every finding is reproducible from a (profile, seed) pair: generation
// is a pure function of both (pinned by proggen's golden tests), so a
// finding record is small and replays anywhere. Failing programs are
// shrunk by a structure-aware minimizer (statement/span deletion plus
// loop-range reduction) that only accepts a step when the original
// divergence class still reproduces.
//
// The package is deliberately server-agnostic: optd mounts it behind
// /v1/farm and dispatches seeds as low-priority idempotent jobs; the opt
// CLI runs the same checker inline with a local worker pool (Run).
package farm

import (
	"context"

	"repro/internal/specs"
	"repro/ir"
)

// EngineInterp names the built-in execution engine: the interpreted
// closure engine (engine.Compile + ApplyAll), the same code path the
// paper's constructor drives. Other engine names resolve through
// Config.Pipelines.
const EngineInterp = "interp"

// Variant names one optimizer configuration under differential test. The
// oracle optimizes every corpus program once per variant and compares the
// results: outputs against the reference interpreter, applied-action
// censuses against every other variant that ran the same effective order.
type Variant struct {
	// Name labels the variant in divergence reports, e.g. "interp:default".
	Name string
	// Engine selects how the pass pipeline executes: "" or EngineInterp
	// for the in-process closure engine, any other name for a pipeline
	// registered in Config.Pipelines (optd registers its compiled-artifact
	// path here).
	Engine string
	// Order, when non-empty, is this variant's explicit pass order.
	Order []string
	// Rotate, when Order is empty, rotates the checker's default order
	// left by this many passes — a cheap second ordering that exercises
	// phase interaction without advisor state.
	Rotate int
	// Auto asks Config.AutoOrder (the advisor hook) for the order; falls
	// back to the default order when the hook is absent or abstains.
	Auto bool
}

// DefaultVariants is the minimal useful configuration matrix: the
// interpreted engine under the default order and under a rotated order.
// Servers with a loaded compiled artifact add a compiled variant so the
// generated-code path is differentially tested against the interpreter.
func DefaultVariants() []Variant {
	return []Variant{
		{Name: "interp:default", Engine: EngineInterp},
		{Name: "interp:rot1", Engine: EngineInterp, Rotate: 1},
	}
}

// DefaultOrder is the farm's default pass pipeline: the paper's ten
// optimizations followed by the post-paper aggregation family, so every
// built-in transformation is under differential test by default.
func DefaultOrder() []string {
	order := make([]string, 0, len(specs.Ten)+len(specs.Aggregation))
	order = append(order, specs.Ten...)
	return append(order, specs.Aggregation...)
}

// PipelineFunc runs one pass pipeline over a MiniF source and returns the
// optimized program plus the applied-action census (pass name → number of
// applications). Implementations must be safe for concurrent use; the
// farm calls them from many workers.
type PipelineFunc func(ctx context.Context, source string, order []string, maxIter int) (*ir.Program, map[string]int, error)

// Config parameterizes a Checker. The zero value selects the built-in
// spec registry, the default order and variants, and the engine/interp
// default limits.
type Config struct {
	// Sources maps spec name → GOSpeL text; nil selects specs.Sources.
	// Campaigns inject deliberately wrong specs here (the seeded-miscompile
	// oracle test) without touching the global registry.
	Sources map[string]string
	// Order is the default pass order; empty selects DefaultOrder().
	Order []string
	// Variants is the configuration matrix; empty selects DefaultVariants().
	Variants []Variant
	// MaxIterations caps applications per pass; 0 selects the engine
	// default.
	MaxIterations int
	// MaxSteps bounds each interpreter execution; 0 selects the interp
	// default.
	MaxSteps int64
	// AutoOrder, when set, resolves the order of Auto variants from the
	// program source (optd wires the pass-ordering advisor here). Returned
	// names not present in Sources are dropped.
	AutoOrder func(source string) []string
	// Pipelines maps additional engine names to their execution functions
	// (e.g. "compiled" → optd's native-artifact path). EngineInterp is
	// built in and need not appear.
	Pipelines map[string]PipelineFunc
}

// rotated returns order rotated left by n (n modulo len).
func rotated(order []string, n int) []string {
	if len(order) == 0 {
		return order
	}
	n = ((n % len(order)) + len(order)) % len(order)
	if n == 0 {
		return order
	}
	out := make([]string, 0, len(order))
	out = append(out, order[n:]...)
	return append(out, order[:n]...)
}
