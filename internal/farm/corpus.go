package farm

import (
	"fmt"
	"sort"

	"repro/internal/proggen"
	"repro/ir"
)

// Profiles registers the named opportunity-mix profiles a campaign can
// select. A nil profile is proggen's legacy stream (byte-for-byte the
// programs the advisor's history and the recorded corpora were built on);
// the others reweight the statement mix toward specific optimization
// families. Findings are recorded as (profile, seed) pairs, so entries
// must never change meaning — add a new name instead.
var Profiles = map[string]*proggen.Profile{
	// default is the legacy generator stream, untouched.
	"default": nil,
	// mixed is the balanced mix: every statement kind, including short
	// accumulator runs, at moderate weight.
	"mixed": {Loop: 14, If: 8, ScalarAssign: 18, ConstDef: 15, ArrayAssign: 30, AccumRun: 15},
	// aggregation is heavy on same-destination accumulator runs — the
	// opportunity shape the AGG/AGM/AGS family rewrites — so those passes
	// fire on most programs instead of almost never.
	"aggregation": {Loop: 10, If: 6, ScalarAssign: 12, ConstDef: 12, ArrayAssign: 20, AccumRun: 40},
}

// ProfileNames returns the registered profile names, sorted.
func ProfileNames() []string {
	out := make([]string, 0, len(Profiles))
	for n := range Profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SourceFor renders corpus program (profile, seed) as MiniF source. It is
// a pure function of its arguments — the reproduction contract every
// finding depends on. maxStmts 0 selects the generator default.
func SourceFor(profile string, seed int64, maxStmts int) (string, error) {
	p, ok := Profiles[profile]
	if !ok {
		return "", fmt.Errorf("farm: unknown profile %q (have %v)", profile, ProfileNames())
	}
	prog := proggen.Generate(seed, proggen.Config{MaxStmts: maxStmts, Profile: p})
	return ir.ToMiniF(prog), nil
}
