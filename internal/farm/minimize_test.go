package farm

import (
	"context"
	"testing"

	"repro/internal/frontend"
	"repro/internal/interp"
	"repro/internal/proggen"
	"repro/ir"
)

// TestMinimizeShrinksSeededMiscompile is the shrink contract on a real
// finding: the minimized program is valid, terminates, exhibits the same
// divergence class, and is at most a quarter of the original.
func TestMinimizeShrinksSeededMiscompile(t *testing.T) {
	ch := seededChecker(t)
	ctx := context.Background()
	shrunk := 0
	for seed := int64(0); seed < 5; seed++ {
		src, divs, err := ch.CheckSeed(ctx, "aggregation", seed, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(divs) == 0 {
			continue
		}
		min, err := ch.Minimize(ctx, src, divs[0])
		if err != nil {
			t.Fatalf("seed %d: Minimize: %v", seed, err)
		}
		p, err := frontend.Parse(min.Source)
		if err != nil {
			t.Fatalf("seed %d: minimized source does not parse: %v\n%s", seed, err, min.Source)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: minimized program invalid: %v", seed, err)
		}
		if _, err := interp.Run(p.Clone(), nil, interp.Config{}); err != nil {
			t.Fatalf("seed %d: minimized reference run failed: %v", seed, err)
		}
		if !ch.stillDiverges(ctx, min.Source, divs[0]) {
			t.Fatalf("seed %d: minimized program lost the divergence\n%s", seed, min.Source)
		}
		if min.MinStmts > min.OrigStmts {
			t.Fatalf("seed %d: minimizer grew the program (%d -> %d)", seed, min.OrigStmts, min.MinStmts)
		}
		// The acceptance bar: a seeded constant-definition deletion must
		// shrink to a handful of statements.
		if 4*min.MinStmts > min.OrigStmts {
			t.Errorf("seed %d: minimized to %d/%d statements, want <= 25%%\n%s",
				seed, min.MinStmts, min.OrigStmts, min.Source)
		}
		shrunk++
	}
	if shrunk == 0 {
		t.Fatal("no seed diverged; seeded miscompile test is vacuous")
	}
}

// TestMinimizeRejectsNonReproducer: handing the minimizer a clean program
// is an error, not a silent empty result.
func TestMinimizeRejectsNonReproducer(t *testing.T) {
	ch := seededChecker(t)
	// A program with no constant scalar definition: KIL never fires.
	src := "PROGRAM p\nINTEGER m\nREAD m\nPRINT m\nEND"
	want := Divergence{Kind: KindOutput, Variant: "interp:default", Baseline: "reference"}
	if _, err := ch.Minimize(context.Background(), src, want); err == nil {
		t.Error("Minimize accepted a program that does not diverge")
	}
}

// TestDeletionSpansShrinkInvariant property-tests the shrink machinery
// over generated corpora: deleting any enumerated span either fails
// validation (and would be rejected) or yields a structurally valid,
// terminating program — the invariant every accepted shrink step rests
// on. Loop-range reduction is checked the same way.
func TestDeletionSpansShrinkInvariant(t *testing.T) {
	profile := &proggen.Profile{Loop: 20, If: 10, ScalarAssign: 12, ConstDef: 12, ArrayAssign: 20, AccumRun: 26}
	for seed := int64(0); seed < 30; seed++ {
		p := proggen.Generate(seed, proggen.Config{Profile: profile})
		for _, sp := range deletionSpans(p) {
			cand := p.Clone()
			deleteRange(cand, sp[0], sp[1])
			if cand.Validate() != nil {
				continue // the minimizer rejects these; nothing to assert
			}
			if _, err := interp.Run(cand.Clone(), nil, interp.Config{}); err != nil {
				t.Fatalf("seed %d: span %v: deleted program does not run: %v\n%s",
					seed, sp, err, ir.ToMiniF(cand))
			}
			// Round-trip: an accepted candidate must re-parse, since the
			// oracle re-checks it from rendered source.
			if _, err := frontend.Parse(ir.ToMiniF(cand)); err != nil {
				t.Fatalf("seed %d: span %v: deleted program does not re-parse: %v", seed, sp, err)
			}
		}
		for i := 0; i < p.Len(); i++ {
			if p.At(i).Kind != ir.SDoHead {
				continue
			}
			cand := p.Clone()
			cs := cand.At(i)
			cs.Final = cs.Init.Clone()
			if cand.Validate() != nil {
				continue
			}
			if _, err := interp.Run(cand.Clone(), nil, interp.Config{}); err != nil {
				t.Fatalf("seed %d: loop clamp at %d: program does not run: %v", seed, i, err)
			}
		}
	}
}

// TestDeletionSpansBalanced pins the span enumeration itself: every span
// starting at a DO or IF ends exactly on its matching close bracket.
func TestDeletionSpansBalanced(t *testing.T) {
	p := proggen.Generate(3, proggen.Config{Profile: &proggen.Profile{Loop: 40, If: 30, ScalarAssign: 30}})
	for _, sp := range deletionSpans(p) {
		open := p.At(sp[0]).Kind
		switch open {
		case ir.SDoHead:
			if p.At(sp[1]).Kind != ir.SDoEnd {
				t.Fatalf("DO span [%d,%d] ends on %v", sp[0], sp[1], p.At(sp[1]).Kind)
			}
		case ir.SIf:
			if p.At(sp[1]).Kind != ir.SEndIf {
				t.Fatalf("IF span [%d,%d] ends on %v", sp[0], sp[1], p.At(sp[1]).Kind)
			}
		default:
			if sp[0] != sp[1] {
				t.Fatalf("simple statement span [%d,%d] is not a single statement", sp[0], sp[1])
			}
		}
	}
}
