package farm

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/frontend"
	"repro/internal/gospel"
	"repro/internal/interp"
	"repro/internal/specs"
	"repro/ir"
)

// Divergence kinds. Output and error divergences are judged against the
// reference interpreter; census divergences against another variant that
// ran the same effective pass order.
const (
	// KindOutput: the optimized program printed different values than the
	// unoptimized reference — a miscompile.
	KindOutput = "output"
	// KindCensus: two variants that ran the same pass order applied a
	// different action census — nondeterminism or an engine disagreement.
	KindCensus = "census"
	// KindError: a variant's pipeline or its optimized program failed
	// where the reference ran clean.
	KindError = "error"
)

// Divergence is one oracle failure. (Kind, Variant, Baseline) is the
// divergence class the minimizer preserves while shrinking.
type Divergence struct {
	Kind     string `json:"kind"`
	Variant  string `json:"variant"`
	Baseline string `json:"baseline"` // "reference", or the peer variant for census
	Detail   string `json:"detail"`
}

func (d Divergence) String() string {
	return fmt.Sprintf("%s: %s vs %s: %s", d.Kind, d.Variant, d.Baseline, d.Detail)
}

// sameClass reports whether two divergences are the same class — the
// minimizer's shrink invariant.
func sameClass(a, b Divergence) bool {
	return a.Kind == b.Kind && a.Variant == b.Variant && a.Baseline == b.Baseline
}

// Checker is the differential oracle: one immutable configuration matrix
// plus the parsed spec registry it runs. Safe for concurrent use — every
// check compiles its own pass closures (the engine's optimizers carry
// per-run counters) from the shared read-only parsed specs.
type Checker struct {
	cfg      Config
	sources  map[string]string
	specs    map[string]*gospel.Spec
	order    []string
	variants []Variant
}

// NewChecker validates and freezes a configuration: every pass named by
// the default order, a variant order, or the variant matrix must parse,
// typecheck and compile. Bad injected specs fail here, synchronously,
// not as a mid-campaign error storm.
func NewChecker(cfg Config) (*Checker, error) {
	c := &Checker{cfg: cfg, sources: cfg.Sources, order: cfg.Order, variants: cfg.Variants}
	if c.sources == nil {
		c.sources = specs.Sources
	}
	if len(c.order) == 0 {
		c.order = DefaultOrder()
	}
	if len(c.variants) == 0 {
		c.variants = DefaultVariants()
	}
	need := append([]string(nil), c.order...)
	for _, v := range c.variants {
		need = append(need, v.Order...)
		if v.Engine != "" && v.Engine != EngineInterp {
			if _, ok := cfg.Pipelines[v.Engine]; !ok {
				return nil, fmt.Errorf("farm: variant %s names unregistered engine %q", v.Name, v.Engine)
			}
		}
	}
	c.specs = make(map[string]*gospel.Spec, len(need))
	for _, name := range need {
		if _, done := c.specs[name]; done {
			continue
		}
		src, ok := c.sources[name]
		if !ok {
			return nil, fmt.Errorf("farm: pass %q is not in the spec registry", name)
		}
		spec, err := gospel.ParseAndCheck(name, src)
		if err != nil {
			return nil, fmt.Errorf("farm: spec %s: %w", name, err)
		}
		if _, err := engine.Compile(spec); err != nil {
			return nil, fmt.Errorf("farm: spec %s: %w", name, err)
		}
		c.specs[name] = spec
	}
	return c, nil
}

// Variants returns the checker's configuration matrix (for status pages).
func (c *Checker) Variants() []Variant { return c.variants }

func (c *Checker) interpCfg() interp.Config {
	return interp.Config{MaxSteps: c.cfg.MaxSteps}
}

// effectiveOrder resolves a variant's pass order for one program.
func (c *Checker) effectiveOrder(v Variant, source string) []string {
	if v.Auto && c.cfg.AutoOrder != nil {
		if ord := c.cfg.AutoOrder(source); len(ord) > 0 {
			kept := ord[:0:0]
			for _, name := range ord {
				if _, ok := c.specs[name]; ok {
					kept = append(kept, name)
				}
			}
			if len(kept) > 0 {
				return kept
			}
		}
	}
	if len(v.Order) > 0 {
		return v.Order
	}
	return rotated(c.order, v.Rotate)
}

// CheckSeed generates corpus program (profile, seed) and checks it,
// returning the source alongside any divergences so callers can persist a
// reproducible finding.
func (c *Checker) CheckSeed(ctx context.Context, profile string, seed int64, maxStmts int) (string, []Divergence, error) {
	src, err := SourceFor(profile, seed, maxStmts)
	if err != nil {
		return "", nil, err
	}
	divs, err := c.CheckSource(ctx, src)
	return src, divs, err
}

// CheckSource runs the differential oracle over one program: reference
// interpretation of the original, then every variant's optimize+execute,
// comparing outputs byte-exactly against the reference and action
// censuses between same-order variants. The returned error is an
// infrastructure failure (unparseable source, reference execution
// failure, context cancellation) — divergences are data, not errors.
func (c *Checker) CheckSource(ctx context.Context, source string) ([]Divergence, error) {
	prog, err := frontend.Parse(source)
	if err != nil {
		return nil, fmt.Errorf("farm: parse: %w", err)
	}
	ref, err := interp.Run(prog.Clone(), nil, c.interpCfg())
	if err != nil {
		return nil, fmt.Errorf("farm: reference run: %w", err)
	}

	type vrun struct {
		name     string
		orderKey string
		census   map[string]int
		clean    bool // ran and matched the reference; census is comparable
	}
	var divs []Divergence
	runs := make([]vrun, 0, len(c.variants))
	for _, v := range c.variants {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		order := c.effectiveOrder(v, source)
		run := vrun{name: v.Name, orderKey: strings.Join(order, ",")}
		opt, census, rerr := c.runVariant(ctx, v, prog, source, order)
		if rerr != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			divs = append(divs, Divergence{Kind: KindError, Variant: v.Name,
				Baseline: "reference", Detail: rerr.Error()})
			runs = append(runs, run)
			continue
		}
		run.census = census
		out, xerr := interp.Run(opt, nil, c.interpCfg())
		if xerr != nil {
			divs = append(divs, Divergence{Kind: KindError, Variant: v.Name,
				Baseline: "reference", Detail: "optimized program failed: " + xerr.Error()})
			runs = append(runs, run)
			continue
		}
		if d, bad := diffOutput(v.Name, ref.Output, out.Output); bad {
			divs = append(divs, d)
			runs = append(runs, run)
			continue
		}
		run.clean = true
		runs = append(runs, run)
	}

	// Census comparison: variants that ran the same effective order must
	// have applied the exact same actions; the first clean run per order
	// group is the baseline. Different orders legitimately differ.
	base := map[string]vrun{}
	for _, r := range runs {
		if !r.clean {
			continue
		}
		b, ok := base[r.orderKey]
		if !ok {
			base[r.orderKey] = r
			continue
		}
		if detail, same := censusDiff(b.census, r.census); !same {
			divs = append(divs, Divergence{Kind: KindCensus, Variant: r.name,
				Baseline: b.name, Detail: detail})
		}
	}
	return divs, nil
}

// runVariant optimizes one fresh clone of the program under a variant's
// engine and order, returning the optimized program and its census.
func (c *Checker) runVariant(ctx context.Context, v Variant, prog *ir.Program, source string, order []string) (*ir.Program, map[string]int, error) {
	if v.Engine != "" && v.Engine != EngineInterp {
		opt, census, err := c.cfg.Pipelines[v.Engine](ctx, source, order, c.cfg.MaxIterations)
		if err != nil {
			return nil, nil, err
		}
		if verr := opt.Validate(); verr != nil {
			return nil, nil, fmt.Errorf("optimized program is structurally invalid: %w", verr)
		}
		return opt, census, nil
	}
	p := prog.Clone()
	census := make(map[string]int, len(order))
	var eopts []engine.Option
	if c.cfg.MaxIterations > 0 {
		eopts = append(eopts, engine.WithMaxApplications(c.cfg.MaxIterations))
	}
	for _, name := range order {
		o, err := engine.Compile(c.specs[name], eopts...)
		if err != nil {
			// NewChecker compiled every spec once; a failure here is a
			// checker bug, not a program-dependent condition.
			return nil, nil, fmt.Errorf("compile %s: %w", name, err)
		}
		apps, err := o.ApplyAllCtx(ctx, p)
		census[name] += len(apps)
		if err != nil {
			return nil, nil, fmt.Errorf("pass %s after %d application(s): %w", name, len(apps), err)
		}
	}
	if verr := p.Validate(); verr != nil {
		return nil, nil, fmt.Errorf("optimized program is structurally invalid: %w", verr)
	}
	return p, census, nil
}

// diffOutput compares an optimized program's output against the
// reference, value-exact (integer vs float identity included).
func diffOutput(variant string, want, got []ir.Value) (Divergence, bool) {
	d := Divergence{Kind: KindOutput, Variant: variant, Baseline: "reference"}
	if len(want) != len(got) {
		d.Detail = fmt.Sprintf("printed %d value(s), reference printed %d", len(got), len(want))
		return d, true
	}
	for i := range want {
		if !want[i].Equal(got[i]) {
			d.Detail = fmt.Sprintf("output[%d] = %v, reference printed %v", i, got[i], want[i])
			return d, true
		}
	}
	return Divergence{}, false
}

// censusDiff compares two applied-action censuses, reporting the first
// differing pass (in sorted order, so the detail is deterministic).
func censusDiff(base, other map[string]int) (string, bool) {
	names := make([]string, 0, len(base)+len(other))
	for n := range base {
		names = append(names, n)
	}
	for n := range other {
		if _, ok := base[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		if base[n] != other[n] {
			return fmt.Sprintf("pass %s applied %d time(s), baseline applied %d", n, other[n], base[n]), false
		}
	}
	return "", true
}
