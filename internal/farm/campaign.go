package farm

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// CampaignConfig describes one burn-in sweep: Count programs drawn from a
// profile starting at a base seed. The pair (Profile, Seed+i) fully
// determines program i, so a campaign is re-runnable and its jobs are
// idempotent.
type CampaignConfig struct {
	Profile  string `json:"profile"`
	Count    int    `json:"count"`
	Seed     int64  `json:"seed"`
	MaxStmts int    `json:"max_stmts,omitempty"`
}

func (cfg CampaignConfig) validate() error {
	if _, ok := Profiles[cfg.Profile]; !ok {
		return fmt.Errorf("farm: unknown profile %q (have %v)", cfg.Profile, ProfileNames())
	}
	if cfg.Count < 1 {
		return fmt.Errorf("farm: campaign count must be >= 1 (got %d)", cfg.Count)
	}
	return nil
}

// CampaignStatus is the wire/status view of a campaign's progress.
type CampaignStatus struct {
	ID       string `json:"id"`
	Profile  string `json:"profile"`
	Seed     int64  `json:"seed"`
	MaxStmts int    `json:"max_stmts,omitempty"`
	Count    int    `json:"count"`
	// Checked counts processed programs (clean, divergent and errored);
	// the campaign is done when Checked reaches Count.
	Checked   int       `json:"checked"`
	Divergent int       `json:"divergent"`
	Errored   int       `json:"errored"`
	Findings  int       `json:"findings"`
	State     string    `json:"state"` // running, done
	StartedAt time.Time `json:"started_at"`
	// FinishedAt is set when the last program completes.
	FinishedAt time.Time `json:"finished_at,omitzero"`
}

// Campaign tracks one sweep's progress. Counters are updated by whoever
// executes the seeds — the local Run pool or optd's job workers.
type Campaign struct {
	ID  string
	Cfg CampaignConfig

	mu        sync.Mutex
	checked   int
	divergent int
	errored   int
	findings  int
	started   time.Time
	finished  time.Time
}

// note records one processed seed; the campaign finishes itself when the
// processed count reaches Count.
func (c *Campaign) note(divergent, errored bool, findings int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.checked++
	if divergent {
		c.divergent++
	}
	if errored {
		c.errored++
	}
	c.findings += findings
	if c.checked >= c.Cfg.Count && c.finished.IsZero() {
		c.finished = time.Now()
	}
}

// Done reports whether every seed has been processed.
func (c *Campaign) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.finished.IsZero()
}

// Status snapshots the campaign.
func (c *Campaign) Status() CampaignStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CampaignStatus{
		ID: c.ID, Profile: c.Cfg.Profile, Seed: c.Cfg.Seed, MaxStmts: c.Cfg.MaxStmts,
		Count: c.Cfg.Count, Checked: c.checked, Divergent: c.divergent,
		Errored: c.errored, Findings: c.findings,
		State: "running", StartedAt: c.started, FinishedAt: c.finished,
	}
	if !c.finished.IsZero() {
		st.State = "done"
	}
	return st
}

// Manager is the campaign table: creation, lookup and listing. It holds
// no execution machinery — optd drives campaigns through its job queue,
// the CLI through Run.
type Manager struct {
	mu        sync.Mutex
	campaigns map[string]*Campaign
	order     []string // insertion order for stable listing
}

func NewManager() *Manager {
	return &Manager{campaigns: map[string]*Campaign{}}
}

// Ensure returns the campaign with the given ID, creating it when absent
// — the idempotent entry point both for fresh starts and for job-WAL
// replay after a crash, where the first recovered job re-registers its
// campaign from the payload's config.
func (m *Manager) Ensure(id string, cfg CampaignConfig) (*Campaign, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.campaigns[id]; ok {
		return c, nil
	}
	c := &Campaign{ID: id, Cfg: cfg, started: time.Now()}
	m.campaigns[id] = c
	m.order = append(m.order, id)
	return c, nil
}

// Get returns a campaign by ID.
func (m *Manager) Get(id string) (*Campaign, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.campaigns[id]
	return c, ok
}

// List snapshots every campaign, oldest first.
func (m *Manager) List() []CampaignStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	table := m.campaigns
	m.mu.Unlock()
	out := make([]CampaignStatus, 0, len(ids))
	for _, id := range ids {
		out = append(out, table[id].Status())
	}
	return out
}

// Hooks observe seed processing (optd wires its metrics here). Any field
// may be nil. Callbacks run on worker goroutines.
type Hooks struct {
	// Program fires once per processed seed.
	Program func()
	// Divergent fires for every seed with at least one divergence.
	Divergent func()
	// Errored fires for every seed the oracle could not judge.
	Errored func()
	// Finding fires for every persisted finding.
	Finding func(Finding)
	// Minimized fires after each minimization attempt with its duration.
	Minimized func(time.Duration)
}

// ProcessSeed checks one (profile, seed) pair of a campaign: generate,
// run the oracle, and on divergence minimize and persist a finding. The
// returned error is infrastructural (cancellation, store I/O) and means
// the seed was NOT counted — a retrying executor re-runs it idempotently.
// Oracle-level reference failures are counted as errored and do not fail
// the call.
func ProcessSeed(ctx context.Context, ch *Checker, st *Store, camp *Campaign, h Hooks, seed int64) (diverged bool, err error) {
	src, divs, err := ch.CheckSeed(ctx, camp.Cfg.Profile, seed, camp.Cfg.MaxStmts)
	if err != nil {
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
		camp.note(false, true, 0)
		if h.Errored != nil {
			h.Errored()
		}
		if h.Program != nil {
			h.Program()
		}
		return false, nil
	}
	if len(divs) == 0 {
		camp.note(false, false, 0)
		if h.Program != nil {
			h.Program()
		}
		return false, nil
	}
	// One finding per program, for its primary divergence; the rest are
	// summarized in the detail. The minimizer preserves the primary class.
	d := divs[0]
	if len(divs) > 1 {
		d.Detail = fmt.Sprintf("%s (+%d more divergence(s))", d.Detail, len(divs)-1)
	}
	f := Finding{
		Campaign: camp.ID, Profile: camp.Cfg.Profile, Seed: seed,
		Kind: d.Kind, Variant: d.Variant, Baseline: d.Baseline, Detail: d.Detail,
		Source: src, FoundAt: time.Now(),
	}
	t0 := time.Now()
	if min, merr := ch.Minimize(ctx, src, divs[0]); merr == nil {
		f.Minimized = min.Source
		f.OrigStmts = min.OrigStmts
		f.MinStmts = min.MinStmts
	}
	if h.Minimized != nil {
		h.Minimized(time.Since(t0))
	}
	if err := st.Append(f); err != nil {
		return true, err
	}
	camp.note(true, false, 1)
	if h.Divergent != nil {
		h.Divergent()
	}
	if h.Finding != nil {
		h.Finding(f)
	}
	if h.Program != nil {
		h.Program()
	}
	return true, nil
}

// Run executes a whole campaign on a local worker pool — the CLI's
// one-node farm and the test harness. workers < 1 selects GOMAXPROCS.
// The first infrastructural error cancels the sweep and is returned;
// divergences are not errors (read them from the store).
func Run(ctx context.Context, ch *Checker, st *Store, camp *Campaign, workers int, h Hooks) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	seeds := make(chan int64)
	var wg sync.WaitGroup
	var once sync.Once
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range seeds {
				if _, err := ProcessSeed(ctx, ch, st, camp, h, seed); err != nil {
					once.Do(func() {
						firstErr = err
						cancel()
					})
					return
				}
			}
		}()
	}
feed:
	for i := 0; i < camp.Cfg.Count; i++ {
		select {
		case seeds <- camp.Cfg.Seed + int64(i):
		case <-ctx.Done():
			break feed
		}
	}
	close(seeds)
	wg.Wait()
	return firstErr
}
