package farm

import (
	"context"
	"strings"
	"testing"

	"repro/internal/frontend"
	"repro/internal/specs"
	"repro/ir"
)

// wrongSpec is the seeded miscompile: it deletes every constant
// definition of a scalar, unconditionally — no dependence clause guards
// the uses — so almost every generated program changes behavior. The farm
// must catch it, persist it and shrink it.
const wrongSpec = `
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    any Si: Si.kind == assign AND Si.opc == assign AND type(Si.opr_1) == var AND type(Si.opr_2) == const;
ACTION
  delete(Si);
`

// seededChecker builds a checker whose only pass is the wrong spec.
func seededChecker(t *testing.T) *Checker {
	t.Helper()
	sources := make(map[string]string, len(specs.Sources)+1)
	for n, s := range specs.Sources {
		sources[n] = s
	}
	sources["KIL"] = wrongSpec
	ch, err := NewChecker(Config{Sources: sources, Order: []string{"KIL"}})
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	return ch
}

func TestCheckerCleanOnCorpus(t *testing.T) {
	ch, err := NewChecker(Config{})
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	for seed := int64(0); seed < 15; seed++ {
		_, divs, err := ch.CheckSeed(context.Background(), "aggregation", seed, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(divs) != 0 {
			src, _ := SourceFor("aggregation", seed, 0)
			t.Fatalf("seed %d: unexpected divergence %v\n%s", seed, divs, src)
		}
	}
}

func TestSeededMiscompileDetected(t *testing.T) {
	ch := seededChecker(t)
	caught := 0
	for seed := int64(0); seed < 10; seed++ {
		_, divs, err := ch.CheckSeed(context.Background(), "aggregation", seed, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, d := range divs {
			if d.Kind != KindOutput && d.Kind != KindError {
				t.Fatalf("seed %d: unexpected divergence kind %q (%s)", seed, d.Kind, d)
			}
		}
		if len(divs) > 0 {
			caught++
		}
	}
	// Every generated program defines scalars from constants and prints
	// them; deleting the definitions must be visible on nearly all seeds.
	if caught < 8 {
		t.Fatalf("seeded miscompile caught on only %d/10 seeds", caught)
	}
}

func TestCensusDivergenceBetweenSameOrderVariants(t *testing.T) {
	// A "noop" engine that returns the program unoptimized claims zero
	// applications; its output matches the reference, so only the census
	// comparison against the same-order interp variant can catch it.
	noop := func(ctx context.Context, source string, order []string, maxIter int) (*ir.Program, map[string]int, error) {
		p, err := frontend.Parse(source)
		return p, map[string]int{}, err
	}
	ch, err := NewChecker(Config{
		Order: []string{"AGG"},
		Variants: []Variant{
			{Name: "interp:default", Engine: EngineInterp},
			{Name: "noop:default", Engine: "noop"},
		},
		Pipelines: map[string]PipelineFunc{"noop": noop},
	})
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	divs, err := ch.CheckSource(context.Background(), `
PROGRAM p
INTEGER m
m = 1
m = m + 2
m = m + 3
PRINT m
END`)
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	if len(divs) != 1 || divs[0].Kind != KindCensus {
		t.Fatalf("divergences = %v, want one census divergence", divs)
	}
	if divs[0].Variant != "noop:default" || divs[0].Baseline != "interp:default" {
		t.Errorf("census divergence attributed to %s vs %s", divs[0].Variant, divs[0].Baseline)
	}
	if !strings.Contains(divs[0].Detail, "AGG") {
		t.Errorf("detail %q does not name the diverging pass", divs[0].Detail)
	}
}

func TestErrorDivergence(t *testing.T) {
	boom := func(ctx context.Context, source string, order []string, maxIter int) (*ir.Program, map[string]int, error) {
		return nil, nil, context.DeadlineExceeded // any non-nil error
	}
	ch, err := NewChecker(Config{
		Order:     []string{"AGG"},
		Variants:  []Variant{{Name: "boom", Engine: "boom"}},
		Pipelines: map[string]PipelineFunc{"boom": boom},
	})
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	divs, err := ch.CheckSource(context.Background(), "PROGRAM p\nINTEGER m\nm = 1\nPRINT m\nEND")
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	if len(divs) != 1 || divs[0].Kind != KindError {
		t.Fatalf("divergences = %v, want one error divergence", divs)
	}
}

func TestNewCheckerRejectsBadConfig(t *testing.T) {
	if _, err := NewChecker(Config{Order: []string{"NOPE"}}); err == nil {
		t.Error("unknown pass name accepted")
	}
	if _, err := NewChecker(Config{Variants: []Variant{{Name: "x", Engine: "compiled"}}}); err == nil {
		t.Error("unregistered engine accepted")
	}
	bad := map[string]string{"BAD": "TYPE\n  Stmt: Si;\nPRECOND\n  Code_Pattern\n    any Si: Si.nonsense == 1;\nACTION\n  delete(Si);\n"}
	if _, err := NewChecker(Config{Sources: bad, Order: []string{"BAD"}}); err == nil {
		t.Error("unparseable spec accepted")
	}
}

func TestRotated(t *testing.T) {
	in := []string{"A", "B", "C"}
	cases := []struct {
		n    int
		want string
	}{{0, "A,B,C"}, {1, "B,C,A"}, {2, "C,A,B"}, {3, "A,B,C"}, {-1, "C,A,B"}}
	for _, c := range cases {
		if got := strings.Join(rotated(in, c.n), ","); got != c.want {
			t.Errorf("rotated(%d) = %s, want %s", c.n, got, c.want)
		}
	}
}
