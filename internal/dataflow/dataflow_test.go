package dataflow

import (
	"testing"
	"testing/quick"

	"repro/internal/frontend"
)

func TestBitSetBasics(t *testing.T) {
	b := NewBitSet(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Has(0) || !b.Has(64) || !b.Has(129) || b.Has(1) {
		t.Fatal("set/has broken")
	}
	if b.Count() != 3 {
		t.Fatalf("count = %d", b.Count())
	}
	b.Clear(64)
	if b.Has(64) || b.Count() != 2 {
		t.Fatal("clear broken")
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != 2 || got[0] != 0 || got[1] != 129 {
		t.Fatalf("ForEach = %v", got)
	}
	if b.Has(-1) || b.Has(1000) {
		t.Fatal("out-of-range Has must be false")
	}
}

func TestBitSetOps(t *testing.T) {
	a := NewBitSet(100)
	b := NewBitSet(100)
	a.Set(3)
	b.Set(3)
	b.Set(70)
	if changed := a.OrInto(b); !changed || !a.Has(70) {
		t.Fatal("OrInto broken")
	}
	if changed := a.OrInto(b); changed {
		t.Fatal("OrInto should report no change")
	}
	a.AndNotInto(b)
	if a.Count() != 0 {
		t.Fatal("AndNotInto broken")
	}
	c := a.Copy()
	c.Set(5)
	if a.Has(5) {
		t.Fatal("Copy must be independent")
	}
	if !NewBitSet(10).Equal(NewBitSet(10)) || NewBitSet(10).Equal(NewBitSet(11)) {
		t.Fatal("Equal broken")
	}
}

func TestBitSetProperty(t *testing.T) {
	// OrInto is idempotent and monotone in count.
	f := func(xs []uint8) bool {
		a := NewBitSet(256)
		b := NewBitSet(256)
		for i, x := range xs {
			if i%2 == 0 {
				a.Set(int(x))
			} else {
				b.Set(int(x))
			}
		}
		before := a.Count()
		a.OrInto(b)
		mid := a.Count()
		a.OrInto(b)
		return mid >= before && a.Count() == mid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReachingDefsStraightLine(t *testing.T) {
	src := `
PROGRAM p
INTEGER x, y
x = 1
x = 2
y = x
END
`
	p := frontend.MustParse(src)
	a := Analyze(p)
	// The def at stmt 0 is killed by stmt 1; only def 1 reaches stmt 2.
	var reach []int
	a.ReachIn[2].ForEach(func(di int) {
		if a.Defs[di].Name == "x" {
			reach = append(reach, a.Defs[di].StmtIdx)
		}
	})
	if len(reach) != 1 || reach[0] != 1 {
		t.Fatalf("defs of x reaching stmt 2: %v, want [1]", reach)
	}
}

func TestReachingDefsBranches(t *testing.T) {
	src := `
PROGRAM p
INTEGER x, y
READ y
IF (y > 0) THEN
  x = 1
ELSE
  x = 2
ENDIF
y = x
END
`
	p := frontend.MustParse(src)
	a := Analyze(p)
	// Both branch definitions reach the final statement.
	last := p.Len() - 1
	var reach []int
	a.ReachIn[last].ForEach(func(di int) {
		if a.Defs[di].Name == "x" {
			reach = append(reach, a.Defs[di].StmtIdx)
		}
	})
	if len(reach) != 2 {
		t.Fatalf("defs of x reaching merge: %v, want two", reach)
	}
}

func TestReachingDefsLoopCarried(t *testing.T) {
	src := `
PROGRAM p
INTEGER i, s
s = 0
DO i = 1, 10
  s = s + 1
ENDDO
PRINT s
END
`
	p := frontend.MustParse(src)
	a := Analyze(p)
	// Inside the loop, both the initial def (stmt 0) and the loop def
	// (stmt 2) reach the body statement.
	var reach []int
	a.ReachIn[2].ForEach(func(di int) {
		if a.Defs[di].Name == "s" {
			reach = append(reach, a.Defs[di].StmtIdx)
		}
	})
	if len(reach) != 2 {
		t.Fatalf("defs of s reaching loop body: %v, want both", reach)
	}
	// At the print, the loop def and (via zero-trip) the initial def reach.
	var atPrint []int
	a.ReachIn[4].ForEach(func(di int) {
		if a.Defs[di].Name == "s" {
			atPrint = append(atPrint, a.Defs[di].StmtIdx)
		}
	})
	if len(atPrint) != 2 {
		t.Fatalf("defs of s reaching print: %v (zero-trip path missing?)", atPrint)
	}
}

func TestArrayDefsAreMayDefs(t *testing.T) {
	src := `
PROGRAM p
INTEGER i
REAL a(10), x
a(1) = 1.0
a(2) = 2.0
x = a(1)
END
`
	p := frontend.MustParse(src)
	a := Analyze(p)
	var reach []int
	a.ReachIn[2].ForEach(func(di int) {
		if a.Defs[di].Name == "a" {
			reach = append(reach, a.Defs[di].StmtIdx)
		}
	})
	if len(reach) != 2 {
		t.Fatalf("array defs must not kill each other: %v", reach)
	}
}

func TestUsesCollection(t *testing.T) {
	src := `
PROGRAM p
INTEGER i
REAL a(10), x
DO i = 1, 10
  a(i) = x + a(i-1)
ENDDO
END
`
	p := frontend.MustParse(src)
	a := Analyze(p)
	uses := a.UsesAt(1)
	// x at pos 2, a at pos 3, subscript i of a(i-1), subscript i of dst.
	names := map[string]int{}
	for _, u := range uses {
		names[u.Name]++
	}
	if names["x"] != 1 || names["a"] != 1 || names["i"] != 2 {
		t.Fatalf("uses = %+v", uses)
	}
	var posA int
	for _, u := range uses {
		if u.Name == "a" {
			posA = u.Pos
		}
	}
	if posA != 3 {
		t.Errorf("a used at pos %d, want 3", posA)
	}
}

func TestReachingUsesAntiDep(t *testing.T) {
	src := `
PROGRAM p
INTEGER x, y
y = x
x = 2
END
`
	p := frontend.MustParse(src)
	a := Analyze(p)
	// The use of x at stmt 0 must reach stmt 1 (anti dependence S0 → S1).
	found := false
	a.UseReachIn[1].ForEach(func(ui int) {
		u := a.Uses[ui]
		if u.Name == "x" && u.StmtIdx == 0 {
			found = true
		}
	})
	if !found {
		t.Fatal("upward-exposed use of x must reach the redefinition")
	}
}

func TestReachingUsesKilledByDef(t *testing.T) {
	src := `
PROGRAM p
INTEGER x, y, z
y = x
x = 2
z = x
x = 3
END
`
	p := frontend.MustParse(src)
	a := Analyze(p)
	// Use of x at stmt 0 must NOT reach stmt 3: the def at stmt 1 kills it.
	leaked := false
	a.UseReachIn[3].ForEach(func(ui int) {
		u := a.Uses[ui]
		if u.Name == "x" && u.StmtIdx == 0 {
			leaked = true
		}
	})
	if leaked {
		t.Fatal("intervening definition must kill the upward-exposed use")
	}
}

func TestLiveness(t *testing.T) {
	src := `
PROGRAM p
INTEGER x, y, z
x = 1
y = 2
z = x
PRINT z
END
`
	p := frontend.MustParse(src)
	a := Analyze(p)
	if !a.LiveOutOf(0, "x") {
		t.Error("x must be live after its definition")
	}
	if a.LiveOutOf(1, "y") {
		t.Error("y is dead (never used)")
	}
	if !a.LiveOutOf(2, "z") {
		t.Error("z must be live before print")
	}
	if a.LiveOutOf(3, "z") {
		t.Error("nothing is live after the last statement")
	}
	if a.LiveOutOf(-1, "x") || a.LiveOutOf(99, "x") {
		t.Error("out-of-range queries must be false")
	}
}

func TestLivenessThroughLoop(t *testing.T) {
	src := `
PROGRAM p
INTEGER i, s
s = 0
DO i = 1, 10
  s = s + i
ENDDO
PRINT s
END
`
	p := frontend.MustParse(src)
	a := Analyze(p)
	if !a.LiveOutOf(0, "s") {
		t.Error("s live into the loop")
	}
	if !a.LiveOutOf(2, "s") {
		t.Error("s live around the back edge")
	}
}

func TestDoHeadDefinesLCV(t *testing.T) {
	p := frontend.MustParse("PROGRAM p\nINTEGER i, x\nDO i = 1, 3\nx = i\nENDDO\nEND")
	a := Analyze(p)
	defs := a.DefsAt(0)
	if len(defs) != 1 || defs[0].Name != "i" {
		t.Fatalf("DO defs = %v", defs)
	}
	// i's def reaches the body use.
	found := false
	a.ReachIn[1].ForEach(func(di int) {
		if a.Defs[di].Name == "i" {
			found = true
		}
	})
	if !found {
		t.Error("LCV def must reach the body")
	}
}
