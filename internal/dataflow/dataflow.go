package dataflow

import (
	"repro/internal/cfg"
	"repro/ir"
)

// Def is one definition site: statement index def-ining a location. Array
// element stores are may-definitions: they generate but do not kill (another
// element may hold the old value), and only a scalar definition of the same
// name would kill them (which cannot happen in a well-typed program).
type Def struct {
	StmtIdx int
	Name    string
	IsArray bool
}

// Use is one use site: the operand slot of a statement reading a location.
// Pos is the paper's operand position (see ir.Stmt.OperandSlot); subscript
// reads of array destinations carry Pos == 0.
type Use struct {
	StmtIdx int
	Name    string
	IsArray bool
	Pos     int
}

// Analysis bundles the dataflow results for one snapshot of a program.
// Facts suffixed F are computed on the forward-only (back-edge-free) graph
// and describe a single loop iteration; the dependence analyzer subtracts
// them from the full-graph facts to find loop-carried dependences.
type Analysis struct {
	Graph  *cfg.Graph // full CFG
	FGraph *cfg.Graph // forward-only CFG
	Defs   []Def
	Uses   []Use

	defsAt map[int][]int
	usesAt map[int][]int

	// ReachIn[i] = definitions reaching the entry of statement i (full CFG).
	ReachIn []BitSet
	// ReachInF is ReachIn on the forward-only CFG.
	ReachInF []BitSet
	// UseReachIn[i] = upward-exposed uses reaching statement i: uses u with
	// a path u → i containing no definition of u's location (full CFG);
	// drives anti-dependence queries.
	UseReachIn []BitSet
	// UseReachInF is UseReachIn on the forward-only CFG.
	UseReachInF []BitSet
	// ExposedUses[i] = uses u reachable from i on a forward-only path that
	// contains no definition of u's location before the use.
	ExposedUses []BitSet
	// ExposedDefs[i] = definitions d reachable from i on a forward-only
	// path with no other definition of d's location before d.
	ExposedDefs []BitSet
	// UpwardExposed = uses reachable from program entry on some path (back
	// edges included) with no definition of their location in between: the
	// uses the implicit zero-initialization at program entry can reach.
	UpwardExposed BitSet
	// LiveOut[i] = names live at exit of statement i.
	LiveOut []map[string]bool
}

// Analyze runs all analyses on a snapshot of p.
func Analyze(p *ir.Program) *Analysis { return analyze(p, nil) }

// AnalyzeNames runs the same analyses restricted to the definitions and uses
// of the given location names. Because gen/kill sets only interact within a
// single name (a definition of x kills only facts about x), the restricted
// facts for those names are identical to the corresponding slice of a full
// Analyze — at a fraction of the cost. The incremental dependence updater
// uses this to re-derive only the dependences of names an edit touched.
// Liveness (LiveOut) is likewise restricted and should not be consulted on a
// name-filtered analysis.
func AnalyzeNames(p *ir.Program, names map[string]bool) *Analysis {
	return analyze(p, names)
}

func analyze(p *ir.Program, names map[string]bool) *Analysis {
	a := &Analysis{
		Graph:  cfg.Build(p),
		FGraph: cfg.BuildForward(p),
		defsAt: make(map[int][]int),
		usesAt: make(map[int][]int),
	}
	a.collect(p, names)

	dGen, dKill := a.defGenKill(p)
	uGen, uKill := a.useGenKill(p)

	a.ReachIn = solveForward(a.Graph, dGen, dKill, len(a.Defs))
	a.ReachInF = solveForward(a.FGraph, dGen, dKill, len(a.Defs))
	a.UseReachIn = solveForward(a.Graph, uGen, uKill, len(a.Uses))
	a.UseReachInF = solveForward(a.FGraph, uGen, uKill, len(a.Uses))
	a.ExposedUses = solveBackward(a.FGraph, uGen, uKill, len(a.Uses))
	a.ExposedDefs = solveBackward(a.FGraph, dGen, dKill, len(a.Defs))
	if p.Len() > 0 {
		full := solveBackward(a.Graph, uGen, uKill, len(a.Uses))
		a.UpwardExposed = full[0]
	} else {
		a.UpwardExposed = NewBitSet(0)
	}
	a.liveness(p)
	return a
}

func (a *Analysis) collect(p *ir.Program, names map[string]bool) {
	keep := func(name string) bool { return names == nil || names[name] }
	for i := 0; i < p.Len(); i++ {
		s := p.At(i)
		if d, ok := s.Defs(); ok && keep(d.Name) {
			a.defsAt[i] = append(a.defsAt[i], len(a.Defs))
			a.Defs = append(a.Defs, Def{StmtIdx: i, Name: d.Name, IsArray: d.IsArray()})
		}
		addUse := func(name string, isArray bool, pos int) {
			if !keep(name) {
				return
			}
			a.usesAt[i] = append(a.usesAt[i], len(a.Uses))
			a.Uses = append(a.Uses, Use{StmtIdx: i, Name: name, IsArray: isArray, Pos: pos})
		}
		record := func(op ir.Operand, pos int) {
			switch op.Kind {
			case ir.Var:
				addUse(op.Name, false, pos)
			case ir.ArrayRef:
				addUse(op.Name, true, pos)
				for _, sub := range op.Subs {
					for _, v := range sub.Vars() {
						addUse(v, false, 0)
					}
				}
			}
		}
		switch s.Kind {
		case ir.SAssign:
			record(s.A, 2)
			if s.Op != ir.OpCopy {
				record(s.B, 3)
			}
		case ir.SIf:
			record(s.A, 2)
			record(s.B, 3)
		case ir.SDoHead:
			record(s.Init, 1)
			record(s.Final, 2)
			record(s.Step, 3)
		case ir.SPrint:
			for k, arg := range s.Args {
				record(arg, k+1)
			}
		}
		// Subscript reads of an array destination.
		if (s.Kind == ir.SAssign || s.Kind == ir.SRead) && s.Dst.IsArray() {
			for _, sub := range s.Dst.Subs {
				for _, v := range sub.Vars() {
					addUse(v, false, 0)
				}
			}
		}
	}
}

func (a *Analysis) defGenKill(p *ir.Program) (gen, kill []BitSet) {
	n := p.Len()
	nd := len(a.Defs)
	gen = makeSets(n, nd)
	kill = makeSets(n, nd)
	for di, d := range a.Defs {
		gen[d.StmtIdx].Set(di)
		if d.IsArray {
			continue // may-def: kills nothing
		}
		for dj, e := range a.Defs {
			if dj != di && !e.IsArray && e.Name == d.Name {
				kill[d.StmtIdx].Set(dj)
			}
		}
	}
	return gen, kill
}

func (a *Analysis) useGenKill(p *ir.Program) (gen, kill []BitSet) {
	n := p.Len()
	nu := len(a.Uses)
	gen = makeSets(n, nu)
	kill = makeSets(n, nu)
	for ui, u := range a.Uses {
		gen[u.StmtIdx].Set(ui)
	}
	// A scalar definition of x stops propagation of uses of x.
	for i := 0; i < n; i++ {
		for _, di := range a.defsAt[i] {
			d := a.Defs[di]
			if d.IsArray {
				continue
			}
			for ui, u := range a.Uses {
				if !u.IsArray && u.Name == d.Name && u.StmtIdx != i {
					kill[i].Set(ui)
				}
			}
		}
	}
	return gen, kill
}

func makeSets(n, domain int) []BitSet {
	out := make([]BitSet, n)
	for i := range out {
		out[i] = NewBitSet(domain)
	}
	return out
}

// solveForward computes IN[i] = ∪_{p ∈ pred(i)} OUT[p] with
// OUT[i] = gen[i] ∪ (IN[i] − kill[i]), returning IN.
func solveForward(g *cfg.Graph, gen, kill []BitSet, domain int) []BitSet {
	n := len(g.Succ)
	in := makeSets(n, domain)
	out := make([]BitSet, n)
	for i := 0; i < n; i++ {
		out[i] = gen[i].Copy()
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			for _, pi := range g.Pred[i] {
				if in[i].OrInto(out[pi]) {
					changed = true
				}
			}
			next := in[i].Copy()
			next.AndNotInto(kill[i])
			next.OrInto(gen[i])
			if !next.Equal(out[i]) {
				out[i] = next
				changed = true
			}
		}
	}
	return in
}

// solveBackward computes EXPOSED[i] = gen[i] ∪ ((∪_{s ∈ succ(i)} EXPOSED[s])
// − kill[i]): the facts reachable from i along paths on which i's kills
// apply first.
func solveBackward(g *cfg.Graph, gen, kill []BitSet, domain int) []BitSet {
	n := len(g.Succ)
	exp := make([]BitSet, n)
	for i := 0; i < n; i++ {
		exp[i] = gen[i].Copy()
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			acc := NewBitSet(domain)
			for _, si := range g.Succ[i] {
				acc.OrInto(exp[si])
			}
			acc.AndNotInto(kill[i])
			acc.OrInto(gen[i])
			if !acc.Equal(exp[i]) {
				exp[i] = acc
				changed = true
			}
		}
	}
	return exp
}

// DefsAt returns the definitions made by statement i.
func (a *Analysis) DefsAt(i int) []Def {
	out := make([]Def, 0, len(a.defsAt[i]))
	for _, di := range a.defsAt[i] {
		out = append(out, a.Defs[di])
	}
	return out
}

// UsesAt returns the uses made by statement i.
func (a *Analysis) UsesAt(i int) []Use {
	out := make([]Use, 0, len(a.usesAt[i]))
	for _, ui := range a.usesAt[i] {
		out = append(out, a.Uses[ui])
	}
	return out
}

// DefIdxsAt returns indices into Defs for statement i.
func (a *Analysis) DefIdxsAt(i int) []int { return a.defsAt[i] }

// UseIdxsAt returns indices into Uses for statement i.
func (a *Analysis) UseIdxsAt(i int) []int { return a.usesAt[i] }

func (a *Analysis) liveness(p *ir.Program) {
	n := p.Len()
	liveIn := make([]map[string]bool, n)
	liveOut := make([]map[string]bool, n)
	for i := 0; i < n; i++ {
		liveIn[i] = map[string]bool{}
		liveOut[i] = map[string]bool{}
	}
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			for _, s := range a.Graph.Succ[i] {
				for v := range liveIn[s] {
					if !liveOut[i][v] {
						liveOut[i][v] = true
						changed = true
					}
				}
			}
			newIn := map[string]bool{}
			for _, u := range a.UsesAt(i) {
				newIn[u.Name] = true
			}
			defName, defKills := "", false
			for _, d := range a.DefsAt(i) {
				if !d.IsArray {
					defName, defKills = d.Name, true
				}
			}
			for v := range liveOut[i] {
				if defKills && v == defName {
					continue
				}
				newIn[v] = true
			}
			if !sameStringSet(newIn, liveIn[i]) {
				liveIn[i] = newIn
				changed = true
			}
		}
	}
	a.LiveOut = liveOut
}

func sameStringSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// LiveOutOf reports whether name is live at exit of statement i.
func (a *Analysis) LiveOutOf(i int, name string) bool {
	if i < 0 || i >= len(a.LiveOut) {
		return false
	}
	return a.LiveOut[i][name]
}
