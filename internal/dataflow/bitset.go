// Package dataflow implements the iterative bitvector analyses the
// dependence analyzer is built on: reaching definitions (for flow and
// output dependences), upward-exposed reaching uses (for anti dependences)
// and liveness (used by the benefit estimator).
package dataflow

// BitSet is a fixed-capacity bit vector.
type BitSet struct {
	words []uint64
	n     int
}

// NewBitSet returns an empty set with capacity n.
func NewBitSet(n int) BitSet {
	return BitSet{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity of the set.
func (b BitSet) Len() int { return b.n }

// Set adds i to the set.
func (b BitSet) Set(i int) { b.words[i/64] |= 1 << (uint(i) % 64) }

// Clear removes i from the set.
func (b BitSet) Clear(i int) { b.words[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether i is in the set.
func (b BitSet) Has(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i/64]&(1<<(uint(i)%64)) != 0
}

// Copy returns an independent copy.
func (b BitSet) Copy() BitSet {
	c := BitSet{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// OrInto ors o into b, reporting whether b changed.
func (b BitSet) OrInto(o BitSet) bool {
	changed := false
	for i, w := range o.words {
		nw := b.words[i] | w
		if nw != b.words[i] {
			b.words[i] = nw
			changed = true
		}
	}
	return changed
}

// AndNotInto removes o's members from b.
func (b BitSet) AndNotInto(o BitSet) {
	for i, w := range o.words {
		b.words[i] &^= w
	}
}

// Equal reports set equality.
func (b BitSet) Equal(o BitSet) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Count returns the cardinality.
func (b BitSet) Count() int {
	c := 0
	for _, w := range b.words {
		for ; w != 0; w &= w - 1 {
			c++
		}
	}
	return c
}

// ForEach calls f for every member in ascending order.
func (b BitSet) ForEach(f func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := w & (-w)
			i := wi*64 + trailingZeros(bit)
			f(i)
			w &^= bit
		}
	}
}

func trailingZeros(w uint64) int {
	n := 0
	for w&1 == 0 {
		w >>= 1
		n++
	}
	return n
}
