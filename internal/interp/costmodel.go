package interp

import "fmt"

// Arch selects an architectural model for the expected-benefit estimate.
// The paper: "The expected benefit of applying an optimization was computed
// by estimating the impact the optimization has on execution time, taking
// into account code that was parallelized and code that was eliminated.
// Different architectural characteristics were considered, including
// vectorization and multi-processing."
type Arch int

const (
	// Scalar executes everything serially.
	Scalar Arch = iota
	// Vector executes DOALL work in lanes of width VectorWidth.
	Vector
	// Multiprocessor spreads DOALL work over Processors, paying a fork
	// overhead per DOALL entry.
	Multiprocessor
)

func (a Arch) String() string {
	switch a {
	case Scalar:
		return "scalar"
	case Vector:
		return "vector"
	case Multiprocessor:
		return "multiprocessor"
	}
	return fmt.Sprintf("Arch(%d)", int(a))
}

// Model parameterizes the estimate.
type Model struct {
	VectorWidth  int64 // lanes for Vector (default 8)
	Processors   int64 // CPUs for Multiprocessor (default 4)
	ForkOverhead int64 // per-DOALL-entry cost for Multiprocessor (default 16)
}

// DefaultModel mirrors machine assumptions of the paper's era: an 8-lane
// vector unit and a small shared-memory multiprocessor.
var DefaultModel = Model{VectorWidth: 8, Processors: 4, ForkOverhead: 16}

// EstimatedTime converts an execution's operation counts into an abstract
// time for the given architecture. Serial work always costs one unit per
// operation; work executed under a DOALL loop is divided by the machine's
// parallel width.
func EstimatedTime(c Counts, arch Arch, m Model) float64 {
	if m.VectorWidth <= 0 {
		m.VectorWidth = DefaultModel.VectorWidth
	}
	if m.Processors <= 0 {
		m.Processors = DefaultModel.Processors
	}
	serial := float64(c.SerialOps)
	par := float64(c.ParallelOps)
	switch arch {
	case Scalar:
		return serial + par
	case Vector:
		return serial + par/float64(m.VectorWidth)
	case Multiprocessor:
		return serial + par/float64(m.Processors) +
			float64(c.DoallEntries*m.ForkOverhead)
	}
	return serial + par
}

// Benefit is the relative time saved by an optimized program against the
// original on one architecture: (t_orig − t_opt) / t_orig.
func Benefit(orig, opt Counts, arch Arch, m Model) float64 {
	to := EstimatedTime(orig, arch, m)
	tn := EstimatedTime(opt, arch, m)
	if to == 0 {
		return 0
	}
	return (to - tn) / to
}
