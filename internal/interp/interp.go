// Package interp executes IR programs directly. It serves two roles in the
// reproduction: (1) the oracle for semantic-preservation tests — an
// optimized program must print what the original prints — and (2) the
// dynamic operation counter behind the paper's expected-benefit estimates,
// which "take into account code that was parallelized and code that was
// eliminated" under different architectural characteristics (Section 4).
package interp

import (
	"fmt"

	"repro/ir"
)

// Counts are dynamic operation counts from one execution. SerialOps and
// ParallelOps split the work by whether it executed under at least one
// DOALL loop; the architectural models divide only the parallel bucket.
type Counts struct {
	Assigns   int64
	Arith     int64
	Compares  int64
	LoopIters int64
	Reads     int64
	Prints    int64
	// Fetches counts operand accesses: one per scalar variable touched,
	// two per array element (address computation plus the element);
	// constants are free. Constant propagation and folding reduce this.
	Fetches int64
	// MemStalls counts the penalty units charged for multi-dimensional
	// array accesses whose fastest-varying (first) subscript does not move
	// with the innermost active loop — the locality effect that loop
	// interchange and circulation repair.
	MemStalls   int64
	SerialOps   int64
	ParallelOps int64
	// DoallEntries counts DOALL loop entries (fork points for the
	// multiprocessor model).
	DoallEntries int64
}

// Total returns all counted operations (including fetches and stalls).
func (c Counts) Total() int64 {
	return c.Assigns + c.Arith + c.Compares + c.LoopIters + c.Reads + c.Prints +
		c.Fetches + c.MemStalls
}

// Result is the outcome of one execution.
type Result struct {
	Output []ir.Value
	Counts Counts
}

// Config bounds and parameterizes execution.
type Config struct {
	// MaxSteps bounds executed statements (0 = default 20 million).
	MaxSteps int64
	// MemPenalty is the extra cost charged for a strided multi-dimensional
	// array access (one whose first, fastest-varying subscript does not
	// move with the innermost loop). 0 means the default; set
	// NoMemPenalty to ablate the locality model entirely.
	MemPenalty int64
	// NoMemPenalty disables the locality model (MemPenalty treated as 0).
	NoMemPenalty bool
}

// RunError describes an execution failure.
type RunError struct{ Msg string }

func (e *RunError) Error() string { return "interp: " + e.Msg }

func runErrf(format string, args ...interface{}) error {
	return &RunError{fmt.Sprintf(format, args...)}
}

type machine struct {
	prog     *ir.Program
	scalars  map[string]ir.Value
	arrays   map[string][]ir.Value
	dims     map[string][]int64
	intDecls map[string]bool
	input    []ir.Value
	inPos    int
	res      *Result
	steps    int64
	maxSteps int64
	// doallDepth > 0 while executing inside at least one parallel loop.
	doallDepth int
	// lcvStack holds the control variables of the active loops, innermost
	// last; drives the locality model.
	lcvStack []string
	// memPenalty is the configured stall cost (0 disables the model).
	memPenalty int64
}

// defaultMemPenalty is the extra cost of a strided multi-dimensional access.
const defaultMemPenalty = 3

// fetch charges the access cost of evaluating or storing an operand.
func (m *machine) fetch(o ir.Operand) {
	switch o.Kind {
	case ir.Var:
		m.res.Counts.Fetches++
		m.countOp(1)
	case ir.ArrayRef:
		m.res.Counts.Fetches += 2
		m.countOp(2)
		if len(o.Subs) > 1 && len(m.lcvStack) > 0 {
			inner := m.lcvStack[len(m.lcvStack)-1]
			if o.Subs[0].Coef(inner) == 0 {
				strided := false
				for _, sub := range o.Subs[1:] {
					if sub.Coef(inner) != 0 {
						strided = true
						break
					}
				}
				if strided {
					m.res.Counts.MemStalls += m.memPenalty
					m.countOp(m.memPenalty)
				}
			}
		}
	}
}

// Run executes p on the given input values (consumed by READ statements in
// order) and returns the printed output and operation counts.
func Run(p *ir.Program, input []ir.Value, cfg Config) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &machine{
		prog:     p,
		scalars:  map[string]ir.Value{},
		arrays:   map[string][]ir.Value{},
		dims:     map[string][]int64{},
		intDecls: map[string]bool{},
		input:    input,
		res:      &Result{},
		maxSteps: cfg.MaxSteps,
	}
	if m.maxSteps == 0 {
		m.maxSteps = 20_000_000
	}
	m.memPenalty = cfg.MemPenalty
	if m.memPenalty == 0 && !cfg.NoMemPenalty {
		m.memPenalty = defaultMemPenalty
	}
	if cfg.NoMemPenalty {
		m.memPenalty = 0
	}
	for _, d := range p.Decls {
		if len(d.Dims) > 0 {
			size := int64(1)
			for _, n := range d.Dims {
				size *= n
			}
			if size > 1<<24 {
				return nil, runErrf("array %s too large", d.Name)
			}
			m.arrays[d.Name] = make([]ir.Value, size)
			m.dims[d.Name] = d.Dims
			if !d.IsFloat {
				m.intDecls[d.Name] = true
			}
		} else if !d.IsFloat {
			m.intDecls[d.Name] = true
		}
	}
	if err := m.exec(); err != nil {
		return nil, err
	}
	return m.res, nil
}

// loopState tracks an active DO loop.
type loopState struct {
	headIdx  int
	lcv      string
	final    ir.Value
	step     ir.Value
	parallel bool
}

func (m *machine) exec() error {
	var stack []loopState
	i := 0
	for i < m.prog.Len() {
		if m.steps++; m.steps > m.maxSteps {
			return runErrf("step limit exceeded (infinite loop?)")
		}
		s := m.prog.At(i)
		switch s.Kind {
		case ir.SAssign:
			if err := m.assign(s); err != nil {
				return err
			}
			i++
		case ir.SRead:
			if m.inPos >= len(m.input) {
				return runErrf("READ past end of input")
			}
			v := m.input[m.inPos]
			m.inPos++
			m.res.Counts.Reads++
			m.countOp(1)
			if err := m.store(s.Dst, v); err != nil {
				return err
			}
			i++
		case ir.SPrint:
			for _, a := range s.Args {
				v, err := m.load(a)
				if err != nil {
					return err
				}
				m.res.Output = append(m.res.Output, v)
			}
			m.res.Counts.Prints++
			m.countOp(1)
			i++
		case ir.SIf:
			a, err := m.load(s.A)
			if err != nil {
				return err
			}
			b, err := m.load(s.B)
			if err != nil {
				return err
			}
			m.res.Counts.Compares++
			m.countOp(1)
			els, endif := ir.MatchingEndIf(m.prog, s)
			if endif == nil {
				return runErrf("unmatched IF")
			}
			if ir.Compare(s.Rel, a, b) {
				i++
			} else if els != nil {
				i = m.prog.Index(els) + 1
			} else {
				i = m.prog.Index(endif) + 1
			}
		case ir.SElse:
			// Reached from the THEN branch: skip to the ENDIF.
			depth := 0
			j := i + 1
			for ; j < m.prog.Len(); j++ {
				k := m.prog.At(j).Kind
				if k == ir.SIf {
					depth++
				} else if k == ir.SEndIf {
					if depth == 0 {
						break
					}
					depth--
				}
			}
			i = j + 1
		case ir.SEndIf:
			i++
		case ir.SDoHead:
			init, err := m.load(s.Init)
			if err != nil {
				return err
			}
			final, err := m.load(s.Final)
			if err != nil {
				return err
			}
			step, err := m.load(s.Step)
			if err != nil {
				return err
			}
			if step.IsZero() {
				return runErrf("zero loop step at S%d", s.ID)
			}
			m.scalars[s.LCV] = m.coerce(s.LCV, init)
			m.res.Counts.Compares++
			m.countOp(1)
			if s.Parallel {
				m.res.Counts.DoallEntries++
			}
			if loopContinues(init, final, step) {
				stack = append(stack, loopState{
					headIdx: m.prog.Index(s), lcv: s.LCV,
					final: final, step: step, parallel: s.Parallel,
				})
				m.lcvStack = append(m.lcvStack, s.LCV)
				if s.Parallel {
					m.doallDepth++
				}
				m.res.Counts.LoopIters++
				i++
			} else {
				end := ir.MatchingEnd(m.prog, s)
				i = m.prog.Index(end) + 1
			}
		case ir.SDoEnd:
			if len(stack) == 0 {
				return runErrf("unmatched ENDDO")
			}
			ls := &stack[len(stack)-1]
			cur := m.scalars[ls.lcv]
			next := ir.Arith(ir.OpAdd, cur, ls.step)
			m.scalars[ls.lcv] = m.coerce(ls.lcv, next)
			m.res.Counts.Compares++
			m.countOp(1)
			if loopContinues(next, ls.final, ls.step) {
				m.res.Counts.LoopIters++
				i = ls.headIdx + 1
			} else {
				if ls.parallel {
					m.doallDepth--
				}
				stack = stack[:len(stack)-1]
				m.lcvStack = m.lcvStack[:len(m.lcvStack)-1]
				i++
			}
		default:
			return runErrf("unknown statement kind %v", s.Kind)
		}
	}
	return nil
}

func loopContinues(cur, final, step ir.Value) bool {
	if step.AsFloat() > 0 {
		return ir.Compare(ir.RelLE, cur, final)
	}
	return ir.Compare(ir.RelGE, cur, final)
}

func (m *machine) countOp(n int64) {
	if m.doallDepth > 0 {
		m.res.Counts.ParallelOps += n
	} else {
		m.res.Counts.SerialOps += n
	}
}

func (m *machine) assign(s *ir.Stmt) error {
	a, err := m.load(s.A)
	if err != nil {
		return err
	}
	var v ir.Value
	if s.Op == ir.OpCopy {
		v = a
		m.res.Counts.Assigns++
		m.countOp(1)
	} else {
		b, err := m.load(s.B)
		if err != nil {
			return err
		}
		v = ir.Arith(s.Op, a, b)
		m.res.Counts.Arith++
		m.res.Counts.Assigns++
		m.countOp(2)
	}
	return m.store(s.Dst, v)
}

// coerce applies INTEGER declaration truncation.
func (m *machine) coerce(name string, v ir.Value) ir.Value {
	if m.intDecls[name] && v.IsFloat {
		return ir.IntVal(v.AsInt())
	}
	return v
}

func (m *machine) load(o ir.Operand) (ir.Value, error) {
	m.fetch(o)
	switch o.Kind {
	case ir.Const:
		return o.Val, nil
	case ir.Var:
		return m.scalars[o.Name], nil
	case ir.ArrayRef:
		idx, err := m.flatIndex(o)
		if err != nil {
			return ir.Value{}, err
		}
		return m.arrays[o.Name][idx], nil
	}
	return ir.Value{}, runErrf("load of absent operand")
}

func (m *machine) store(o ir.Operand, v ir.Value) error {
	m.fetch(o)
	switch o.Kind {
	case ir.Var:
		m.scalars[o.Name] = m.coerce(o.Name, v)
		return nil
	case ir.ArrayRef:
		idx, err := m.flatIndex(o)
		if err != nil {
			return err
		}
		if m.intDecls[o.Name] && v.IsFloat {
			v = ir.IntVal(v.AsInt())
		}
		m.arrays[o.Name][idx] = v
		return nil
	}
	return runErrf("store to non-lvalue")
}

// flatIndex evaluates the (1-based, column-ordered as declared) subscripts
// of an array reference into a flat offset with bounds checking.
func (m *machine) flatIndex(o ir.Operand) (int64, error) {
	dims, ok := m.dims[o.Name]
	if !ok {
		return 0, runErrf("undeclared array %s", o.Name)
	}
	if len(o.Subs) != len(dims) {
		return 0, runErrf("array %s: %d subscripts for %d dimensions",
			o.Name, len(o.Subs), len(dims))
	}
	flat := int64(0)
	stride := int64(1)
	for d := 0; d < len(dims); d++ {
		sub, err := m.evalLin(o.Subs[d])
		if err != nil {
			return 0, err
		}
		if sub < 1 || sub > dims[d] {
			return 0, runErrf("array %s: subscript %d out of bounds [1,%d]",
				o.Name, sub, dims[d])
		}
		flat += (sub - 1) * stride
		stride *= dims[d]
	}
	return flat, nil
}

func (m *machine) evalLin(e ir.LinExpr) (int64, error) {
	total := e.Const
	for _, t := range e.Terms {
		v, ok := m.scalars[t.Var]
		if !ok {
			// Uninitialized scalar reads as zero, as in load.
			v = ir.IntVal(0)
		}
		total += t.Coef * v.AsInt()
	}
	return total, nil
}

// SameOutput reports whether two executions printed the same values.
func SameOutput(a, b *Result) bool {
	if len(a.Output) != len(b.Output) {
		return false
	}
	for i := range a.Output {
		x, y := a.Output[i], b.Output[i]
		if x.IsFloat || y.IsFloat {
			dx, dy := x.AsFloat(), y.AsFloat()
			diff := dx - dy
			if diff < 0 {
				diff = -diff
			}
			scale := 1.0
			if dx > scale {
				scale = dx
			}
			if -dx > scale {
				scale = -dx
			}
			if diff > 1e-9*scale {
				return false
			}
			continue
		}
		if !x.Equal(y) {
			return false
		}
	}
	return true
}
