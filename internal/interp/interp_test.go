package interp

import (
	"testing"

	"repro/internal/frontend"
	"repro/ir"
)

func run(t *testing.T, src string, input ...ir.Value) *Result {
	t.Helper()
	p := frontend.MustParse(src)
	r, err := Run(p, input, Config{})
	if err != nil {
		t.Fatalf("%v\n%s", err, p)
	}
	return r
}

func outInts(r *Result) []int64 {
	out := make([]int64, len(r.Output))
	for i, v := range r.Output {
		out[i] = v.AsInt()
	}
	return out
}

func TestArithmeticAndPrint(t *testing.T) {
	r := run(t, `
PROGRAM p
INTEGER x, y
x = 2 + 3 * 4
y = x MOD 5
PRINT x, y
END`)
	got := outInts(r)
	if len(got) != 2 || got[0] != 14 || got[1] != 4 {
		t.Fatalf("output = %v", got)
	}
}

func TestLoopSum(t *testing.T) {
	r := run(t, `
PROGRAM p
INTEGER i, s
s = 0
DO i = 1, 10
  s = s + i
ENDDO
PRINT s
END`)
	if outInts(r)[0] != 55 {
		t.Fatalf("sum = %v", r.Output)
	}
	if r.Counts.LoopIters != 10 {
		t.Errorf("iterations = %d", r.Counts.LoopIters)
	}
}

func TestLoopStepAndDownward(t *testing.T) {
	r := run(t, `
PROGRAM p
INTEGER i, s
s = 0
DO i = 10, 1, -2
  s = s + i
ENDDO
PRINT s
END`)
	if outInts(r)[0] != 30 { // 10+8+6+4+2
		t.Fatalf("sum = %v", r.Output)
	}
}

func TestZeroTripLoop(t *testing.T) {
	r := run(t, `
PROGRAM p
INTEGER i, s
s = 7
DO i = 5, 1
  s = 0
ENDDO
PRINT s
END`)
	if outInts(r)[0] != 7 {
		t.Fatal("zero-trip loop body must not execute")
	}
	if r.Counts.LoopIters != 0 {
		t.Errorf("iterations = %d", r.Counts.LoopIters)
	}
}

func TestIfElse(t *testing.T) {
	src := `
PROGRAM p
INTEGER x, y
READ x
IF (x .GT. 0) THEN
  y = 1
ELSE
  y = 2
ENDIF
PRINT y
END`
	if outInts(run(t, src, ir.IntVal(5)))[0] != 1 {
		t.Error("then branch")
	}
	if outInts(run(t, src, ir.IntVal(-5)))[0] != 2 {
		t.Error("else branch")
	}
}

func TestNestedIfInLoop(t *testing.T) {
	r := run(t, `
PROGRAM p
INTEGER i, odd, even
odd = 0
even = 0
DO i = 1, 10
  IF (i MOD 2 == 0) THEN
    even = even + 1
  ELSE
    odd = odd + 1
  ENDIF
ENDDO
PRINT odd, even
END`)
	got := outInts(r)
	if got[0] != 5 || got[1] != 5 {
		t.Fatalf("output = %v", got)
	}
}

func TestArrays2D(t *testing.T) {
	r := run(t, `
PROGRAM p
INTEGER i, j
REAL a(3,3), s
DO i = 1, 3
  DO j = 1, 3
    a(i,j) = i * 10 + j
  ENDDO
ENDDO
s = 0.0
DO i = 1, 3
  s = s + a(i,i)
ENDDO
PRINT s
END`)
	if r.Output[0].AsFloat() != 11+22+33 {
		t.Fatalf("trace = %v", r.Output)
	}
}

func TestArrayBoundsChecked(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(5)
i = 9
a(i) = 1.0
END`)
	if _, err := Run(p, nil, Config{}); err == nil {
		t.Fatal("out-of-bounds store must fail")
	}
}

func TestReadPastEndFails(t *testing.T) {
	p := frontend.MustParse("PROGRAM p\nINTEGER x\nREAD x\nEND")
	if _, err := Run(p, nil, Config{}); err == nil {
		t.Fatal("read past input must fail")
	}
}

func TestStepLimit(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER i, s
DO i = 1, 1000000
  s = s + 1
ENDDO
END`)
	if _, err := Run(p, nil, Config{MaxSteps: 100}); err == nil {
		t.Fatal("step limit must trigger")
	}
}

func TestIntegerCoercion(t *testing.T) {
	r := run(t, `
PROGRAM p
INTEGER x
x = 7 / 2
PRINT x
END`)
	if outInts(r)[0] != 3 {
		t.Fatalf("integer division = %v", r.Output)
	}
	r2 := run(t, `
PROGRAM p
INTEGER x
REAL y
y = 3.7
x = y
PRINT x
END`)
	if outInts(r2)[0] != 3 {
		t.Fatalf("coercion = %v", r2.Output)
	}
}

func TestParallelCountsSplit(t *testing.T) {
	serial := run(t, `
PROGRAM p
INTEGER i
REAL a(100)
DO i = 1, 100
  a(i) = 1.0
ENDDO
END`)
	par := run(t, `
PROGRAM p
INTEGER i
REAL a(100)
DOALL i = 1, 100
  a(i) = 1.0
ENDDO
END`)
	if serial.Counts.ParallelOps != 0 {
		t.Error("serial loop must not count parallel ops")
	}
	if par.Counts.ParallelOps == 0 || par.Counts.DoallEntries != 1 {
		t.Errorf("parallel counts = %+v", par.Counts)
	}
	// Same total work either way.
	if serial.Counts.Total() != par.Counts.Total() {
		t.Error("totals must agree")
	}
}

func TestEstimatedTimeModels(t *testing.T) {
	c := Counts{SerialOps: 100, ParallelOps: 800, DoallEntries: 2}
	m := DefaultModel
	ts := EstimatedTime(c, Scalar, m)
	tv := EstimatedTime(c, Vector, m)
	tm := EstimatedTime(c, Multiprocessor, m)
	if ts != 900 {
		t.Errorf("scalar = %v", ts)
	}
	if tv != 100+800/8 {
		t.Errorf("vector = %v", tv)
	}
	if tm != 100+800/4+2*16 {
		t.Errorf("mp = %v", tm)
	}
	if b := Benefit(c, Counts{SerialOps: 100, ParallelOps: 400}, Scalar, m); b <= 0 {
		t.Errorf("benefit = %v", b)
	}
	if Benefit(Counts{}, Counts{}, Scalar, m) != 0 {
		t.Error("zero-time benefit must be 0")
	}
}

func TestSameOutput(t *testing.T) {
	a := &Result{Output: []ir.Value{ir.IntVal(1), ir.FloatVal(2.0)}}
	b := &Result{Output: []ir.Value{ir.IntVal(1), ir.FloatVal(2.0 + 1e-12)}}
	if !SameOutput(a, b) {
		t.Error("tolerant float comparison failed")
	}
	c := &Result{Output: []ir.Value{ir.IntVal(2), ir.FloatVal(2.0)}}
	if SameOutput(a, c) {
		t.Error("different ints must differ")
	}
	d := &Result{Output: []ir.Value{ir.IntVal(1)}}
	if SameOutput(a, d) {
		t.Error("different lengths must differ")
	}
}

func TestUninitializedReadsZero(t *testing.T) {
	r := run(t, `
PROGRAM p
INTEGER x, y
y = x + 1
PRINT y
END`)
	if outInts(r)[0] != 1 {
		t.Fatalf("output = %v", r.Output)
	}
}

func TestLCVAfterLoop(t *testing.T) {
	// FORTRAN semantics: the LCV holds final+step after a completed loop.
	r := run(t, `
PROGRAM p
INTEGER i
DO i = 1, 3
ENDDO
PRINT i
END`)
	if outInts(r)[0] != 4 {
		t.Fatalf("LCV after loop = %v", r.Output)
	}
}
