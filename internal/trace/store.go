package trace

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
)

// Tail-based sampling. Head sampling (decide at ingress) throws away
// exactly the traces worth keeping — the ones that turn out slow or broken.
// The store instead receives every completed fragment and decides then:
//
//   - error fragments (status >= 400, including the optimizer's structured
//     422s, or an error annotation) are always kept;
//   - slow fragments — root latency at or above the per-route SlowQuantile,
//     estimated from a histogram fed by all traffic, after SlowMin
//     observations of the route — are always kept;
//   - fragments of a trace the store already holds are kept (sticky), so a
//     trace sampled at one hop is not truncated at the next;
//   - of the unremarkable rest, a deterministic 1-in-SampleN by trace-ID
//     hash survives. Deterministic matters in a cluster: every node makes
//     the same keep decision for the same trace ID, so a sampled trace is
//     retained whole on every node it touched rather than as scattered
//     fragments.
//
// Memory is bounded by Capacity fragments (ring eviction, oldest first).
// With Dir set, kept fragments are also appended to a CRC-framed spill log
// reusing the jobs WAL framing — same torn-tail truncation semantics — and
// replayed on open, so a restart keeps the recent trace window.

// Decision values returned by Record.
const (
	DecisionError   = "error"
	DecisionSlow    = "slow"
	DecisionSticky  = "sticky"
	DecisionSampled = "sampled"
	DecisionDropped = "dropped"
)

// Config tunes a Store. The zero value selects production defaults.
type Config struct {
	// Capacity bounds retained fragments; 0 selects 1024.
	Capacity int
	// SampleN keeps 1 in N unremarkable traces; 0 selects 16, 1 keeps all.
	SampleN int
	// SlowQuantile is the per-route latency quantile at or above which a
	// fragment counts as slow; 0 selects 0.95.
	SlowQuantile float64
	// SlowMin is the per-route observation floor before slow detection
	// activates (a quantile over three requests is noise); 0 selects 64.
	SlowMin int64
	// Dir, when set, spills kept fragments to Dir/traces.log; empty keeps
	// the window in memory only.
	Dir string
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 1024
	}
	if c.SampleN <= 0 {
		c.SampleN = 16
	}
	if c.SlowQuantile <= 0 || c.SlowQuantile >= 1 {
		c.SlowQuantile = 0.95
	}
	if c.SlowMin <= 0 {
		c.SlowMin = 64
	}
	return c
}

// spillCompactBytes is the spill-log size that triggers a compaction
// rewrite down to the live window.
const spillCompactBytes = 4 << 20

// fragRec is a stored fragment — also the spill-log record shape.
type fragRec struct {
	TraceID  string  `json:"trace_id"`
	Route    string  `json:"route"`
	Decision string  `json:"decision"`
	Spans    []*Span `json:"spans"`
}

// Stats is a snapshot of the store's counters for /metrics.
type Stats struct {
	// Decision counters since process start (replayed spill records are
	// excluded: they were counted by the process that recorded them).
	KeptError   int64
	KeptSlow    int64
	KeptSticky  int64
	KeptSampled int64
	Dropped     int64
	// Evicted counts fragments pushed out of the ring by newer ones.
	Evicted int64
	// Live window gauges.
	Fragments int64
	Spans     int64
	// SpillBytes is the spill log's current size; 0 with no spill.
	SpillBytes int64
}

// Summary is one fragment in a /v1/traces listing.
type Summary struct {
	TraceID    string    `json:"trace_id"`
	Name       string    `json:"name"`
	Route      string    `json:"route"`
	Node       string    `json:"node,omitempty"`
	Start      time.Time `json:"start"`
	DurationUS int64     `json:"duration_us"`
	Status     int       `json:"status,omitempty"`
	Error      string    `json:"error,omitempty"`
	Engine     string    `json:"engine,omitempty"`
	Order      string    `json:"order,omitempty"`
	Decision   string    `json:"decision"`
	Spans      int       `json:"spans"`
}

// Query filters a listing. Zero fields match everything.
type Query struct {
	Route      string
	Engine     string
	Order      string
	Status     int
	ErrorsOnly bool
	MinDur     time.Duration
	Limit      int // 0 selects 50
}

// Store is the per-node trace window. Safe for concurrent use.
type Store struct {
	cfg Config

	mu      sync.Mutex
	frags   []*fragRec
	byTrace map[string][]*fragRec
	routes  map[string]*obs.Histogram

	keptError   int64
	keptSlow    int64
	keptSticky  int64
	keptSampled int64
	dropped     int64
	evicted     int64

	spill      *os.File
	spillPath  string
	spillBytes int64
}

// Open builds a store, replaying the spill log when Config.Dir is set.
func Open(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	s := &Store{
		cfg:     cfg,
		byTrace: make(map[string][]*fragRec),
		routes:  make(map[string]*obs.Histogram),
	}
	if cfg.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: spill dir: %w", err)
	}
	s.spillPath = filepath.Join(cfg.Dir, "traces.log")
	f, err := os.OpenFile(s.spillPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trace: spill open: %w", err)
	}
	good, err := jobs.ReplayFrames(f, func(payload []byte) bool {
		var rec fragRec
		if json.Unmarshal(payload, &rec) != nil || len(rec.Spans) == 0 {
			return false
		}
		s.insertLocked(&rec)
		return true
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	// Torn tail from a crash mid-append: truncate to whole records, exactly
	// like the jobs WAL.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: spill truncate: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: spill seek: %w", err)
	}
	s.spill, s.spillBytes = f, good
	// Replay does not re-count decisions, but the evicted counter from
	// over-capacity replay is real pressure and stays.
	return s, nil
}

// Close releases the spill log.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.spill == nil {
		return nil
	}
	err := s.spill.Close()
	s.spill = nil
	return err
}

// sampleHash is the deterministic trace-ID hash behind the 1-in-N sample.
// FNV-1a over the hex ID: stable across nodes, processes and restarts.
func sampleHash(traceID string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, traceID)
	return h.Sum64()
}

// Record runs the tail decision over one completed fragment and retains it
// when any keep rule fires. spans[0] must be the fragment root. It returns
// the decision made. Nil-safe: a nil store drops everything.
func (s *Store) Record(route string, spans []*Span) string {
	if s == nil || len(spans) == 0 {
		return DecisionDropped
	}
	root := spans[0]
	dur := time.Duration(root.DurationUS) * time.Microsecond

	s.mu.Lock()
	defer s.mu.Unlock()
	// Every fragment feeds the route's latency estimate, kept or not —
	// a sampler that only saw kept traffic would chase its own tail.
	h := s.routes[route]
	if h == nil {
		h = obs.NewHistogram()
		s.routes[route] = h
	}
	snap := h.Snapshot()
	h.Observe(dur)

	decision := DecisionDropped
	switch {
	case root.Status >= 400 || root.Error != "":
		decision = DecisionError
		s.keptError++
	// Strictly above the quantile's bucket bound: an observation inside the
	// p95 bucket itself is typical traffic, not tail.
	case snap.Count >= s.cfg.SlowMin && dur.Seconds() > snap.Quantile(s.cfg.SlowQuantile):
		decision = DecisionSlow
		s.keptSlow++
	case len(s.byTrace[root.TraceID]) > 0:
		decision = DecisionSticky
		s.keptSticky++
	case sampleHash(root.TraceID)%uint64(s.cfg.SampleN) == 0:
		decision = DecisionSampled
		s.keptSampled++
	default:
		s.dropped++
		return DecisionDropped
	}
	rec := &fragRec{TraceID: root.TraceID, Route: route, Decision: decision, Spans: spans}
	s.insertLocked(rec)
	s.spillLocked(rec)
	return decision
}

// insertLocked appends one fragment to the ring, evicting the oldest past
// capacity.
func (s *Store) insertLocked(rec *fragRec) {
	s.frags = append(s.frags, rec)
	s.byTrace[rec.TraceID] = append(s.byTrace[rec.TraceID], rec)
	for len(s.frags) > s.cfg.Capacity {
		old := s.frags[0]
		s.frags = s.frags[1:]
		s.evicted++
		peers := s.byTrace[old.TraceID]
		for i, r := range peers {
			if r == old {
				peers = append(peers[:i], peers[i+1:]...)
				break
			}
		}
		if len(peers) == 0 {
			delete(s.byTrace, old.TraceID)
		} else {
			s.byTrace[old.TraceID] = peers
		}
	}
}

// spillLocked appends one kept fragment to the spill log (best effort:
// traces are diagnostics, not records, so spill errors drop the log rather
// than the request) and compacts it down to the live window when it
// outgrows the threshold.
func (s *Store) spillLocked(rec *fragRec) {
	if s.spill == nil {
		return
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return
	}
	frame := jobs.EncodeFrame(payload)
	if _, err := s.spill.Write(frame); err != nil {
		s.spill.Close()
		s.spill = nil
		return
	}
	s.spillBytes += int64(len(frame))
	if s.spillBytes > spillCompactBytes {
		s.compactLocked()
	}
}

// compactLocked rewrites the spill log to exactly the live ring.
func (s *Store) compactLocked() {
	tmp := s.spillPath + ".compact"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return
	}
	var size int64
	for _, rec := range s.frags {
		payload, err := json.Marshal(rec)
		if err != nil {
			continue
		}
		frame := jobs.EncodeFrame(payload)
		if _, err := nf.Write(frame); err != nil {
			nf.Close()
			os.Remove(tmp)
			return
		}
		size += int64(len(frame))
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, s.spillPath); err != nil {
		nf.Close()
		os.Remove(tmp)
		return
	}
	old := s.spill
	s.spill, s.spillBytes = nf, size
	old.Close()
}

// Get returns every stored span of one trace, across fragments, ordered by
// start time. Nil for an unknown trace. Nil-safe.
func (s *Store) Get(traceID string) []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Span
	for _, rec := range s.byTrace[traceID] {
		out = append(out, rec.Spans...)
	}
	SortSpans(out)
	return out
}

// SortSpans orders spans by start time in place — the presentation order of
// a span forest, also used when merging fragments fetched from peers.
func SortSpans(spans []*Span) {
	// Insertion sort: fragments are near-sorted already and span counts are
	// small.
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spans[j].Start.Before(spans[j-1].Start); j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
}

// List returns fragment summaries matching q, newest first. Nil-safe.
func (s *Store) List(q Query) []Summary {
	if s == nil {
		return nil
	}
	limit := q.Limit
	if limit <= 0 {
		limit = 50
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Summary
	for i := len(s.frags) - 1; i >= 0 && len(out) < limit; i-- {
		rec := s.frags[i]
		root := rec.Spans[0]
		if q.Route != "" && rec.Route != q.Route {
			continue
		}
		if q.Status != 0 && root.Status != q.Status {
			continue
		}
		if q.ErrorsOnly && root.Status < 400 && root.Error == "" {
			continue
		}
		if q.MinDur > 0 && time.Duration(root.DurationUS)*time.Microsecond < q.MinDur {
			continue
		}
		if q.Engine != "" && root.Attrs["engine"] != q.Engine {
			continue
		}
		if q.Order != "" && root.Attrs["order"] != q.Order {
			continue
		}
		out = append(out, Summary{
			TraceID:    rec.TraceID,
			Name:       root.Name,
			Route:      rec.Route,
			Node:       root.Node,
			Start:      root.Start,
			DurationUS: root.DurationUS,
			Status:     root.Status,
			Error:      root.Error,
			Engine:     root.Attrs["engine"],
			Order:      root.Attrs["order"],
			Decision:   rec.Decision,
			Spans:      len(rec.Spans),
		})
	}
	return out
}

// Stats snapshots the counters. Nil-safe (zero stats).
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		KeptError:   s.keptError,
		KeptSlow:    s.keptSlow,
		KeptSticky:  s.keptSticky,
		KeptSampled: s.keptSampled,
		Dropped:     s.dropped,
		Evicted:     s.evicted,
		Fragments:   int64(len(s.frags)),
		SpillBytes:  s.spillBytes,
	}
	for _, rec := range s.frags {
		st.Spans += int64(len(rec.Spans))
	}
	if s.spill == nil {
		st.SpillBytes = 0
	}
	return st
}
