package trace

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// testFrag builds a completed fragment's span batch: a root with the given
// outcome plus one child.
func testFrag(traceID string, status int, dur time.Duration) []*Span {
	root := &Span{
		TraceID:    traceID,
		SpanID:     NewSpanID(),
		Name:       "server.optimize",
		Node:       "n1",
		Start:      time.Now(),
		DurationUS: dur.Microseconds(),
		Status:     status,
	}
	child := &Span{
		TraceID:    traceID,
		SpanID:     NewSpanID(),
		ParentID:   root.SpanID,
		Name:       "pass.DCE",
		Node:       "n1",
		Start:      root.Start,
		DurationUS: dur.Microseconds() / 2,
	}
	return []*Span{root, child}
}

// neverSampled returns a trace ID the 1-in-n sampler rejects.
func neverSampled(t *testing.T, n uint64) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		id := NewTraceID()
		if sampleHash(id)%n != 0 {
			return id
		}
	}
	t.Fatal("no unsampled trace id found")
	return ""
}

func TestStoreKeepsAllErrors(t *testing.T) {
	s, err := Open(Config{SampleN: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		id := neverSampled(t, 1<<30)
		status := 422
		if i%2 == 0 {
			status = 500
		}
		if d := s.Record("optimize", testFrag(id, status, time.Millisecond)); d != DecisionError {
			t.Fatalf("error fragment decision = %s", d)
		}
		if got := s.Get(id); len(got) != 2 {
			t.Fatalf("error trace %s not retrievable: %d spans", id, len(got))
		}
	}
	if st := s.Stats(); st.KeptError != 50 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreKeepsSlowTail(t *testing.T) {
	s, err := Open(Config{SampleN: 1 << 30, SlowMin: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Build the route's latency estimate: plenty of ~1ms traffic.
	for i := 0; i < 200; i++ {
		s.Record("optimize", testFrag(neverSampled(t, 1<<30), 200, time.Millisecond))
	}
	// A 500ms outlier is far past p95 of that distribution.
	slow := neverSampled(t, 1<<30)
	if d := s.Record("optimize", testFrag(slow, 200, 500*time.Millisecond)); d != DecisionSlow {
		t.Fatalf("slow fragment decision = %s", d)
	}
	// Before the warmup floor, nothing on a fresh route is "slow".
	if d := s.Record("fresh", testFrag(neverSampled(t, 1<<30), 200, time.Second)); d != DecisionDropped {
		t.Fatalf("pre-warmup decision = %s", d)
	}
	st := s.Stats()
	if st.KeptSlow != 1 || st.KeptError != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreDeterministicSampling(t *testing.T) {
	const n = 4
	a, _ := Open(Config{SampleN: n})
	b, _ := Open(Config{SampleN: n})
	kept, dropped := 0, 0
	for i := 0; i < 400; i++ {
		id := NewTraceID()
		da := a.Record("optimize", testFrag(id, 200, time.Millisecond))
		db := b.Record("optimize", testFrag(id, 200, time.Millisecond))
		if da != db {
			t.Fatalf("stores disagree on %s: %s vs %s", id, da, db)
		}
		want := DecisionDropped
		if sampleHash(id)%n == 0 {
			want = DecisionSampled
		}
		if da != want {
			t.Fatalf("decision for %s = %s, want %s", id, da, want)
		}
		if da == DecisionSampled {
			kept++
		} else {
			dropped++
		}
	}
	// ~1 in 4 expected; require the split to be in a generous band.
	if kept < 50 || kept > 200 {
		t.Fatalf("kept %d of 400 at 1-in-%d", kept, n)
	}
}

func TestStoreStickyAcrossFragments(t *testing.T) {
	s, _ := Open(Config{SampleN: 1 << 30})
	id := neverSampled(t, 1<<30)
	if d := s.Record("jobs.submit", testFrag(id, 500, time.Millisecond)); d != DecisionError {
		t.Fatalf("first fragment = %s", d)
	}
	// A later unremarkable fragment of the same trace is kept sticky, so
	// the trace is never truncated mid-story.
	if d := s.Record("jobs.run", testFrag(id, 200, time.Millisecond)); d != DecisionSticky {
		t.Fatalf("second fragment = %s", d)
	}
	if got := s.Get(id); len(got) != 4 {
		t.Fatalf("trace spans = %d, want 4", len(got))
	}
}

func TestStoreBoundedMemory(t *testing.T) {
	s, _ := Open(Config{Capacity: 8, SampleN: 1})
	for i := 0; i < 100; i++ {
		s.Record("optimize", testFrag(NewTraceID(), 500, time.Millisecond))
	}
	st := s.Stats()
	if st.Fragments != 8 || st.Evicted != 92 || st.Spans != 16 {
		t.Fatalf("stats = %+v, want 8 live / 92 evicted / 16 spans", st)
	}
	if got := s.List(Query{Limit: 1000}); len(got) != 8 {
		t.Fatalf("list = %d fragments", len(got))
	}
}

func TestStoreListFilters(t *testing.T) {
	s, _ := Open(Config{SampleN: 1})
	okID, errID, slowID := NewTraceID(), NewTraceID(), NewTraceID()
	ok := testFrag(okID, 200, time.Millisecond)
	ok[0].Attrs = map[string]string{"engine": "interp", "order": "default"}
	s.Record("optimize", ok)
	s.Record("optimize", testFrag(errID, 422, time.Millisecond))
	s.Record("jobs.run", testFrag(slowID, 200, 300*time.Millisecond))

	if got := s.List(Query{Route: "optimize"}); len(got) != 2 {
		t.Fatalf("route filter = %d", len(got))
	}
	if got := s.List(Query{ErrorsOnly: true}); len(got) != 1 || got[0].TraceID != errID {
		t.Fatalf("errors filter = %+v", got)
	}
	if got := s.List(Query{Status: 422}); len(got) != 1 || got[0].Status != 422 {
		t.Fatalf("status filter = %+v", got)
	}
	if got := s.List(Query{MinDur: 100 * time.Millisecond}); len(got) != 1 || got[0].TraceID != slowID {
		t.Fatalf("min-duration filter = %+v", got)
	}
	if got := s.List(Query{Engine: "interp"}); len(got) != 1 || got[0].TraceID != okID {
		t.Fatalf("engine filter = %+v", got)
	}
	if got := s.List(Query{Order: "default"}); len(got) != 1 || got[0].Order != "default" {
		t.Fatalf("order filter = %+v", got)
	}
	// Newest first.
	if got := s.List(Query{}); len(got) != 3 || got[0].TraceID != slowID {
		t.Fatalf("unfiltered list order = %+v", got)
	}
}

func TestStoreSpillReplayAndTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{SampleN: 1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 5)
	for i := range ids {
		ids[i] = NewTraceID()
		s.Record("optimize", testFrag(ids[i], 200, time.Millisecond))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A crash mid-append leaves a torn frame; replay must truncate it away
	// and keep every whole record.
	logPath := filepath.Join(dir, "traces.log")
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := Open(Config{SampleN: 1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, id := range ids {
		if got := r.Get(id); len(got) != 2 {
			t.Fatalf("replayed trace %s = %d spans, want 2", id, len(got))
		}
	}
	st := r.Stats()
	if st.Fragments != 5 {
		t.Fatalf("replayed fragments = %d, want 5", st.Fragments)
	}
	// Replay rebuilt state, not history: decision counters start at zero.
	if st.KeptSampled != 0 || st.KeptError != 0 {
		t.Fatalf("replay re-counted decisions: %+v", st)
	}
	// The torn tail was truncated on open.
	if fi, err := os.Stat(logPath); err != nil || fi.Size() != st.SpillBytes {
		t.Fatalf("log size %v vs spill bytes %d (err %v)", fi.Size(), st.SpillBytes, err)
	}
}

func TestStoreConcurrentRecordAndRead(t *testing.T) {
	s, _ := Open(Config{Capacity: 64, SampleN: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Record(fmt.Sprintf("route%d", g%2), testFrag(NewTraceID(), 200, time.Millisecond))
				if i%10 == 0 {
					s.List(Query{})
					s.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Fragments > 64 {
		t.Fatalf("capacity exceeded: %d", st.Fragments)
	}
	total := st.KeptSampled + st.KeptSticky + st.KeptSlow + st.KeptError + st.Dropped
	if total != 1600 {
		t.Fatalf("decisions = %d, want 1600", total)
	}
}
