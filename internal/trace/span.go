package trace

import (
	"sync"
	"time"
)

// Span is one timed operation inside a trace. Unlike obs.Span (a build
// helper for the inline ?trace=1 forest), this span carries cluster-wide
// identity and is the unit the trace store persists and /v1/traces serves:
// the JSON shape here is the wire shape.
//
// Like obs.Span, a span is built by one goroutine — created, annotated and
// ended by the code doing the work — and becomes shared (hence read-only)
// only when its fragment is recorded into the store.
type Span struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	// Node is the advertise address of the node that produced the span;
	// empty on single-node deployments.
	Node  string    `json:"node,omitempty"`
	Start time.Time `json:"start"`
	// DurationUS is set by End (or AddSpan); 0 means the span was cut short
	// (the fragment was recorded before End ran — e.g. a panic path).
	DurationUS int64             `json:"duration_us"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	// Status is the HTTP-shaped outcome of root spans (0 on inner spans).
	Status int    `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Set records one attribute. Nil-safe: instrumentation on untraced paths
// passes a nil span.
func (s *Span) Set(key, value string) {
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	s.Attrs[key] = value
}

// SetStatus records the span's HTTP-shaped outcome. Nil-safe.
func (s *Span) SetStatus(status int) {
	if s != nil {
		s.Status = status
	}
}

// SetError records a failure message. Nil-safe.
func (s *Span) SetError(msg string) {
	if s != nil {
		s.Error = msg
	}
}

// End stamps the span's duration. Nil-safe; a second End is a no-op.
func (s *Span) End() {
	if s == nil || s.DurationUS != 0 {
		return
	}
	s.DurationUS = time.Since(s.Start).Microseconds()
}

// Fragment is the batch of spans one node contributes to a trace from one
// locally-rooted unit of work: an HTTP request, a job attempt, a replay
// submission. A cross-node trace is the union of fragments sharing a trace
// ID; /v1/traces reassembles them through parent links. The tail sampler
// decides keep-or-drop per completed fragment.
type Fragment struct {
	mu    sync.Mutex
	node  string
	root  *Span
	spans []*Span
}

// NewFragment opens a fragment rooted at a new span named name. A valid
// parent joins the fragment to an existing trace (the root's parent is the
// caller's span on the initiating node); an invalid one mints a fresh trace
// ID — this node is the ingress.
func NewFragment(parent SpanContext, name, node string) *Fragment {
	traceID, parentID := parent.TraceID, parent.SpanID
	if !parent.Valid() {
		traceID, parentID = NewTraceID(), ""
	}
	f := &Fragment{node: node}
	f.root = &Span{
		TraceID:  traceID,
		SpanID:   NewSpanID(),
		ParentID: parentID,
		Name:     name,
		Node:     node,
		Start:    time.Now(),
	}
	f.spans = append(f.spans, f.root)
	return f
}

// Root returns the fragment's root span. Nil-safe.
func (f *Fragment) Root() *Span {
	if f == nil {
		return nil
	}
	return f.root
}

// TraceID returns the fragment's trace identity. Nil-safe ("" when nil).
func (f *Fragment) TraceID() string {
	if f == nil {
		return ""
	}
	return f.root.TraceID
}

// StartSpan opens a child span under parent (the fragment root when parent
// is nil). Nil-safe: a nil fragment returns a nil span.
func (f *Fragment) StartSpan(parent *Span, name string) *Span {
	if f == nil {
		return nil
	}
	if parent == nil {
		parent = f.root
	}
	sp := &Span{
		TraceID:  f.root.TraceID,
		SpanID:   NewSpanID(),
		ParentID: parent.SpanID,
		Name:     name,
		Node:     f.node,
		Start:    time.Now(),
	}
	f.mu.Lock()
	f.spans = append(f.spans, sp)
	f.mu.Unlock()
	return sp
}

// AddSpan records an already-completed interval — e.g. a job's queue wait,
// reconstructed from its submit and start timestamps. Nil-safe.
func (f *Fragment) AddSpan(parent *Span, name string, start time.Time, d time.Duration) *Span {
	sp := f.StartSpan(parent, name)
	if sp == nil {
		return nil
	}
	sp.Start = start
	sp.DurationUS = d.Microseconds()
	return sp
}

// Spans ends the root (if still open) and returns the fragment's span
// batch. The store takes ownership: callers must not mutate spans after.
func (f *Fragment) Spans() []*Span {
	if f == nil {
		return nil
	}
	f.root.End()
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*Span(nil), f.spans...)
}
