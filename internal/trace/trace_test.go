package trace

import (
	"context"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	if !sc.Valid() {
		t.Fatalf("minted context invalid: %+v", sc)
	}
	tp := sc.Traceparent()
	if !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("traceparent shape: %q", tp)
	}
	got, ok := ParseTraceparent(tp)
	if !ok || got != sc {
		t.Fatalf("round trip = %+v ok=%v, want %+v", got, ok, sc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // missing flags
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e473X-00f067aa0ba902b7-01",
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted", s)
		}
	}
	// Future versions and extra fields parse (per spec).
	if _, ok := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !ok {
		t.Error("future-version traceparent rejected")
	}
	// Uppercase hex is normalized.
	sc, ok := ParseTraceparent("00-4BF92F3577B34DA6A3CE929D0E0E4736-00F067AA0BA902B7-01")
	if !ok || sc.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("uppercase normalize = %+v ok=%v", sc, ok)
	}
}

func TestMintedIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 32 || seen[id] {
			t.Fatalf("trace id %q (dup=%v)", id, seen[id])
		}
		seen[id] = true
	}
}

func TestFragmentJoinsParentTrace(t *testing.T) {
	parent := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	f := NewFragment(parent, "server.optimize", "n1")
	if f.TraceID() != parent.TraceID {
		t.Fatalf("fragment trace = %s, want parent %s", f.TraceID(), parent.TraceID)
	}
	if f.Root().ParentID != parent.SpanID {
		t.Fatalf("root parent = %s, want %s", f.Root().ParentID, parent.SpanID)
	}

	// Invalid parent: fresh trace, no parent link.
	g := NewFragment(SpanContext{}, "server.optimize", "n1")
	if g.TraceID() == "" || g.TraceID() == parent.TraceID || g.Root().ParentID != "" {
		t.Fatalf("ingress fragment = %+v", g.Root())
	}
}

func TestContextSpanNesting(t *testing.T) {
	f := NewFragment(SpanContext{}, "root", "n1")
	ctx := ContextWithFragment(context.Background(), f, f.Root())
	if got := Traceparent(ctx); got != (SpanContext{TraceID: f.TraceID(), SpanID: f.Root().SpanID}).Traceparent() {
		t.Fatalf("Traceparent(ctx) = %q", got)
	}
	child, cctx := Start(ctx, "pass.DCE")
	child.Set("pass", "DCE")
	grand, _ := Start(cctx, "match")
	if child.ParentID != f.Root().SpanID || grand.ParentID != child.SpanID {
		t.Fatalf("nesting: child.parent=%s grand.parent=%s", child.ParentID, grand.ParentID)
	}
	grand.End()
	child.End()
	spans := f.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	for _, sp := range spans {
		if sp.TraceID != f.TraceID() || sp.DurationUS < 0 {
			t.Fatalf("span %+v", sp)
		}
	}
}

func TestUntracedContextIsFree(t *testing.T) {
	sp, ctx := Start(context.Background(), "anything")
	if sp != nil || ctx != context.Background() {
		t.Fatal("untraced Start allocated")
	}
	// All span methods are nil-safe.
	sp.Set("k", "v")
	sp.SetStatus(200)
	sp.SetError("x")
	sp.End()
	if Traceparent(ctx) != "" {
		t.Fatal("untraced Traceparent non-empty")
	}
}
