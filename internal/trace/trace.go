// Package trace is optd's distributed-tracing substrate: W3C-style
// traceparent propagation, span fragments recorded per locally-rooted unit
// of work (an HTTP request, a job attempt), and a bounded per-node store
// fed by a tail-based sampler (store.go).
//
// It complements internal/obs rather than replacing it: obs.Tracer builds
// the single-request inline span forest returned by ?trace=1, while this
// package mints cluster-wide identities — a trace ID shared across one-hop
// forwards, job WAL records, advisor replay sweeps and native subprocess
// invocations — and retains a queryable sample of completed traces on every
// node. The propagation format is the W3C traceparent header,
//
//	00-<32 hex trace id>-<16 hex parent span id>-01
//
// carried on forwarded requests, stored in job records, and exported to
// compiled subprocess runners through the TRACEPARENT environment variable.
package trace

import (
	"context"
	"fmt"
	"math/rand/v2"
	"strings"
)

// TraceparentHeader is the propagation header name. Lowercase per the W3C
// Trace Context spec; Go's http.Header canonicalizes it either way.
const TraceparentHeader = "Traceparent"

// EnvTraceparent is the environment variable carrying the trace context
// into native subprocess runners.
const EnvTraceparent = "TRACEPARENT"

// SpanContext is the propagated identity pair: which trace a unit of work
// belongs to and which span is its parent.
type SpanContext struct {
	TraceID string // 32 lowercase hex digits, not all zero
	SpanID  string // 16 lowercase hex digits, not all zero
}

// Valid reports whether both IDs have the required shape.
func (sc SpanContext) Valid() bool {
	return isHexID(sc.TraceID, 32) && isHexID(sc.SpanID, 16)
}

// Traceparent renders the context in W3C traceparent form. The flags octet
// is always 01 (sampled): the keep decision is made at the tail, not the
// head, so every propagated context is a candidate.
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ParseTraceparent parses a W3C traceparent header value. It accepts any
// version byte (per spec, an unknown version is parsed as version 00) and
// ignores the flags octet. ok is false for malformed or all-zero IDs.
func ParseTraceparent(s string) (SpanContext, bool) {
	s = strings.TrimSpace(s)
	parts := strings.Split(s, "-")
	if len(parts) < 4 {
		return SpanContext{}, false
	}
	if len(parts[0]) != 2 || !isHex(parts[0]) || parts[0] == "ff" {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: strings.ToLower(parts[1]), SpanID: strings.ToLower(parts[2])}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// NewTraceID mints a 128-bit trace ID. IDs need cluster-wide uniqueness,
// not unpredictability, so the fast math/rand/v2 generator is deliberate —
// ingress minting sits on the request hot path.
func NewTraceID() string {
	return fmt.Sprintf("%016x%016x", rand.Uint64(), nonZero(rand.Uint64()))
}

// NewSpanID mints a 64-bit span ID.
func NewSpanID() string {
	return fmt.Sprintf("%016x", nonZero(rand.Uint64()))
}

// nonZero keeps minted IDs out of the all-zero form the spec reserves for
// "no id".
func nonZero(v uint64) uint64 {
	if v == 0 {
		return 1
	}
	return v
}

func isHexID(s string, n int) bool {
	if len(s) != n || !isHex(s) {
		return false
	}
	return strings.Trim(s, "0") != ""
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}

type ctxKey int

const (
	fragmentKey ctxKey = iota
	spanKey
	requestIDKey
)

// ContextWithFragment installs a fragment and its current span (usually the
// root) into ctx; child spans started through Start attach under it.
func ContextWithFragment(ctx context.Context, f *Fragment, current *Span) context.Context {
	ctx = context.WithValue(ctx, fragmentKey, f)
	return context.WithValue(ctx, spanKey, current)
}

// FragmentFrom returns the fragment carried by ctx, or nil.
func FragmentFrom(ctx context.Context) *Fragment {
	f, _ := ctx.Value(fragmentKey).(*Fragment)
	return f
}

// SpanFrom returns the current span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// Start opens a child span under ctx's current span and returns it plus a
// derived context in which it is current. With no fragment in ctx it
// returns a nil span (whose methods are no-ops) and ctx unchanged, so
// instrumented call sites cost nothing on untraced paths.
func Start(ctx context.Context, name string) (*Span, context.Context) {
	f := FragmentFrom(ctx)
	if f == nil {
		return nil, ctx
	}
	sp := f.StartSpan(SpanFrom(ctx), name)
	return sp, context.WithValue(ctx, spanKey, sp)
}

// Traceparent renders ctx's current span context for outbound propagation
// (forward hops, job records, subprocess env); "" when ctx is untraced.
func Traceparent(ctx context.Context) string {
	sp := SpanFrom(ctx)
	if sp == nil {
		return ""
	}
	return SpanContext{TraceID: sp.TraceID, SpanID: sp.SpanID}.Traceparent()
}

// ContextWithRequestID carries the ingress-assigned request ID so outbound
// hops (forwards, replay submissions) reuse it instead of letting the next
// node mint a fresh one.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom returns the propagated request ID, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}
