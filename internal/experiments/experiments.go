// Package experiments regenerates every experimental result of the paper's
// Section 4 (see DESIGN.md's per-experiment index):
//
//	E1 quality of generated vs hand-coded optimizers
//	E2 application-point and enablement counts
//	E3 optimization-ordering interactions (FUS / INX / LUR)
//	E4 cost and expected benefit per optimization and architecture
//	E5 cost of alternative specifications (LUR bound-check order)
//	E6 cost of membership-check strategies and the heuristic
//	E7 implementation-size statistics
//
// Each experiment has a Run function returning structured results and a
// Table method rendering the same rows the cmd/experiments tool prints.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/par"
)

// table is a minimal text-table builder.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// RunAll executes every experiment and writes all tables to w. The seven
// experiments are independent, so they run concurrently; the tables are
// collected and written in E1..E7 order so the output is deterministic.
func RunAll(w io.Writer) error {
	sections := []struct {
		title string
		run   func() string
	}{
		{"== E1: generated vs hand-coded optimizers ==", func() string { return RunE1().Table() }},
		{"== E2: application points and enablement ==", func() string { return RunE2().Table() }},
		{"== E3: ordering interactions of FUS, INX, LUR ==", func() string { return RunE3().Table() }},
		{"== E4: cost and expected benefit ==", func() string { return RunE4().Table() }},
		{"== E5: specification form and cost (LUR bound order) ==", func() string { return RunE5().Table() }},
		{"== E6: membership strategies and the heuristic ==", func() string { return RunE6().Table() }},
		{"== E7: implementation statistics ==", func() string { return RunE7().Table() }},
	}
	tables := par.Map(len(sections), 0, func(i int) string { return sections[i].run() })
	for i, s := range sections {
		fmt.Fprintln(w, s.title)
		fmt.Fprintln(w, tables[i])
	}
	return nil
}
