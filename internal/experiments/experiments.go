// Package experiments regenerates every experimental result of the paper's
// Section 4 (see DESIGN.md's per-experiment index):
//
//	E1 quality of generated vs hand-coded optimizers
//	E2 application-point and enablement counts
//	E3 optimization-ordering interactions (FUS / INX / LUR)
//	E4 cost and expected benefit per optimization and architecture
//	E5 cost of alternative specifications (LUR bound-check order)
//	E6 cost of membership-check strategies and the heuristic
//	E7 implementation-size statistics
//
// Each experiment has a Run function returning structured results and a
// Table method rendering the same rows the cmd/experiments tool prints.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// table is a minimal text-table builder.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// RunAll executes every experiment and writes all tables to w.
func RunAll(w io.Writer) error {
	fmt.Fprintln(w, "== E1: generated vs hand-coded optimizers ==")
	fmt.Fprintln(w, RunE1().Table())
	fmt.Fprintln(w, "== E2: application points and enablement ==")
	fmt.Fprintln(w, RunE2().Table())
	fmt.Fprintln(w, "== E3: ordering interactions of FUS, INX, LUR ==")
	fmt.Fprintln(w, RunE3().Table())
	fmt.Fprintln(w, "== E4: cost and expected benefit ==")
	fmt.Fprintln(w, RunE4().Table())
	fmt.Fprintln(w, "== E5: specification form and cost (LUR bound order) ==")
	fmt.Fprintln(w, RunE5().Table())
	fmt.Fprintln(w, "== E6: membership strategies and the heuristic ==")
	fmt.Fprintln(w, RunE6().Table())
	fmt.Fprintln(w, "== E7: implementation statistics ==")
	fmt.Fprintln(w, RunE7().Table())
	return nil
}
