package experiments

import (
	"fmt"

	"repro/dep"
	"repro/internal/specs"
	"repro/internal/workloads"
)

// E2Result reproduces the paper's application-point census: "CTP was the
// most frequently applicable optimization ... Of the total 97 application
// points for CTP, 13 of these enabled DCE, 5 enabled CFO and 41 enabled LUR
// ... CPP occurred in only two programs ... no application points for ICM
// were found."
type E2Result struct {
	// Points[opt] = application points found in the unoptimized programs
	// (precondition matches, the paper's "application points").
	Points map[string]int
	// Apps[opt] = total applications across the ten workloads when run to
	// fixpoint (cascading enablement included).
	Apps map[string]int
	// Programs[opt] = number of workloads with at least one application.
	Programs map[string]int
	// Enabled[opt] = applications of opt enabled by running CTP first
	// (apps after CTP − apps alone).
	Enabled map[string]int
	// Order of optimizations for display.
	Order []string
}

// RunE2 counts applications per optimization, alone and after CTP.
func RunE2() E2Result {
	res := E2Result{
		Points:   map[string]int{},
		Apps:     map[string]int{},
		Programs: map[string]int{},
		Enabled:  map[string]int{},
		Order:    append(append([]string{}, specs.Ten...), "CFO"),
	}
	for _, w := range workloads.All {
		for _, name := range res.Order {
			p := w.Program()
			o := specs.MustCompile(name)
			res.Points[name] += len(o.Preconditions(p, dep.Compute(p)))
			apps, err := o.ApplyAll(p)
			if err != nil {
				panic(err)
			}
			res.Apps[name] += len(apps)
			if len(apps) > 0 {
				res.Programs[name]++
			}
		}
		// Enablement by CTP for DCE, CFO and LUR (the paper's triples).
		for _, follower := range []string{"DCE", "CFO", "LUR"} {
			p := w.Program()
			if _, err := specs.MustCompile("CTP").ApplyAll(p); err != nil {
				panic(err)
			}
			after, err := specs.MustCompile(follower).ApplyAll(p)
			if err != nil {
				panic(err)
			}
			res.Enabled[follower] += len(after)
		}
	}
	for _, follower := range []string{"DCE", "CFO", "LUR"} {
		res.Enabled[follower] -= res.Apps[follower]
		if res.Enabled[follower] < 0 {
			res.Enabled[follower] = 0
		}
	}
	return res
}

// MostApplicable returns the optimization with the most application points.
func (r E2Result) MostApplicable() string {
	best, bestN := "", -1
	for _, name := range r.Order {
		if r.Points[name] > bestN {
			best, bestN = name, r.Points[name]
		}
	}
	return best
}

// Table renders the census.
func (r E2Result) Table() string {
	t := &table{header: []string{"opt", "points", "applications", "programs", "enabled by CTP"}}
	for _, name := range r.Order {
		enabled := ""
		if _, ok := r.Enabled[name]; ok {
			enabled = fmt.Sprintf("%d", r.Enabled[name])
		}
		t.add(name, fmt.Sprintf("%d", r.Points[name]), fmt.Sprintf("%d", r.Apps[name]),
			fmt.Sprintf("%d", r.Programs[name]), enabled)
	}
	t.add("most applicable", r.MostApplicable(), "", "", "")
	return t.String()
}
