package experiments

import (
	"fmt"

	"repro/dep"
	"repro/internal/par"
	"repro/internal/specs"
	"repro/internal/workloads"
)

// E2Result reproduces the paper's application-point census: "CTP was the
// most frequently applicable optimization ... Of the total 97 application
// points for CTP, 13 of these enabled DCE, 5 enabled CFO and 41 enabled LUR
// ... CPP occurred in only two programs ... no application points for ICM
// were found."
type E2Result struct {
	// Points[opt] = application points found in the unoptimized programs
	// (precondition matches, the paper's "application points").
	Points map[string]int
	// Apps[opt] = total applications across the ten workloads when run to
	// fixpoint (cascading enablement included).
	Apps map[string]int
	// Programs[opt] = number of workloads with at least one application.
	Programs map[string]int
	// Enabled[opt] = applications of opt enabled by running CTP first
	// (apps after CTP − apps alone).
	Enabled map[string]int
	// Order of optimizations for display.
	Order []string
}

// RunE2 counts applications per optimization, alone and after CTP. Each
// workload's census is computed independently on the worker pool, then the
// per-workload partials are merged in the fixed workload order so the
// aggregate is identical to the sequential run.
func RunE2() E2Result {
	order := append(append([]string{}, specs.Ten...), "CFO")
	type partial struct {
		points, apps, programs, enabled map[string]int
	}
	partials := par.Map(len(workloads.All), 0, func(i int) partial {
		w := workloads.All[i]
		pt := partial{
			points:   map[string]int{},
			apps:     map[string]int{},
			programs: map[string]int{},
			enabled:  map[string]int{},
		}
		for _, name := range order {
			p := w.Program()
			o := specs.MustCompile(name)
			pt.points[name] += len(o.Preconditions(p, dep.Compute(p)))
			apps, err := o.ApplyAll(p)
			if err != nil {
				panic(err)
			}
			pt.apps[name] += len(apps)
			if len(apps) > 0 {
				pt.programs[name]++
			}
		}
		// Enablement by CTP for DCE, CFO and LUR (the paper's triples).
		for _, follower := range []string{"DCE", "CFO", "LUR"} {
			p := w.Program()
			if _, err := specs.MustCompile("CTP").ApplyAll(p); err != nil {
				panic(err)
			}
			after, err := specs.MustCompile(follower).ApplyAll(p)
			if err != nil {
				panic(err)
			}
			pt.enabled[follower] += len(after)
		}
		return pt
	})

	res := E2Result{
		Points:   map[string]int{},
		Apps:     map[string]int{},
		Programs: map[string]int{},
		Enabled:  map[string]int{},
		Order:    order,
	}
	for _, pt := range partials {
		for k, v := range pt.points {
			res.Points[k] += v
		}
		for k, v := range pt.apps {
			res.Apps[k] += v
		}
		for k, v := range pt.programs {
			res.Programs[k] += v
		}
		for k, v := range pt.enabled {
			res.Enabled[k] += v
		}
	}
	for _, follower := range []string{"DCE", "CFO", "LUR"} {
		res.Enabled[follower] -= res.Apps[follower]
		if res.Enabled[follower] < 0 {
			res.Enabled[follower] = 0
		}
	}
	return res
}

// MostApplicable returns the optimization with the most application points.
func (r E2Result) MostApplicable() string {
	best, bestN := "", -1
	for _, name := range r.Order {
		if r.Points[name] > bestN {
			best, bestN = name, r.Points[name]
		}
	}
	return best
}

// Table renders the census.
func (r E2Result) Table() string {
	t := &table{header: []string{"opt", "points", "applications", "programs", "enabled by CTP"}}
	for _, name := range r.Order {
		enabled := ""
		if _, ok := r.Enabled[name]; ok {
			enabled = fmt.Sprintf("%d", r.Enabled[name])
		}
		t.add(name, fmt.Sprintf("%d", r.Points[name]), fmt.Sprintf("%d", r.Apps[name]),
			fmt.Sprintf("%d", r.Programs[name]), enabled)
	}
	t.add("most applicable", r.MostApplicable(), "", "", "")
	return t.String()
}
