package experiments

import (
	"fmt"
	"time"

	"repro/internal/interp"
	"repro/internal/specs"
	"repro/internal/workloads"
)

// E4Row is the cost/benefit profile of one optimization over the whole
// suite.
type E4Row struct {
	Opt    string
	Apps   int
	Checks int // precondition checks (the paper's estimated cost)
	Ops    int // transformation operations
	Micros int64
	// Benefit percentages (relative estimated execution-time reduction)
	// under the three architectural models, averaged over the workloads.
	BenefitScalar float64
	BenefitVector float64
	BenefitMP     float64
}

// E4Result reproduces the cost/benefit experiment: estimated costs
// (precondition checks + transformation operations, validated against
// measured times) against expected benefits under scalar, vector and
// multiprocessor models. The paper's shape: INX inexpensive with large
// benefits, CTP inexpensive and enabling, FUS rarely applicable and
// expensive with little benefit on a plain model.
type E4Result struct {
	Rows []E4Row
}

// RunE4 profiles every optimization.
func RunE4() E4Result {
	var res E4Result
	names := append(append([]string{}, specs.Ten...), "CFO")
	for _, name := range names {
		row := E4Row{Opt: name}
		var bS, bV, bM float64
		start := time.Now()
		for _, w := range workloads.All {
			before, err := interp.Run(w.Program(), w.Input, interp.Config{})
			if err != nil {
				panic(err)
			}
			p := w.Program()
			o := specs.MustCompile(name)
			apps, err := o.ApplyAll(p)
			if err != nil {
				panic(err)
			}
			row.Apps += len(apps)
			c := o.Cost()
			row.Checks += c.Checks()
			row.Ops += c.ActionOps
			after, err := interp.Run(p, w.Input, interp.Config{})
			if err != nil {
				panic(err)
			}
			m := interp.DefaultModel
			bS += interp.Benefit(before.Counts, after.Counts, interp.Scalar, m)
			bV += interp.Benefit(before.Counts, after.Counts, interp.Vector, m)
			bM += interp.Benefit(before.Counts, after.Counts, interp.Multiprocessor, m)
		}
		row.Micros = time.Since(start).Microseconds()
		n := float64(len(workloads.All))
		row.BenefitScalar = 100 * bS / n
		row.BenefitVector = 100 * bV / n
		row.BenefitMP = 100 * bM / n
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Row returns the profile of one optimization.
func (r E4Result) Row(opt string) (E4Row, bool) {
	for _, row := range r.Rows {
		if row.Opt == opt {
			return row, true
		}
	}
	return E4Row{}, false
}

// Table renders the profiles.
func (r E4Result) Table() string {
	t := &table{header: []string{
		"opt", "apps", "checks", "ops", "µs (measured)",
		"benefit scalar%", "vector%", "mp%",
	}}
	for _, row := range r.Rows {
		t.add(row.Opt,
			fmt.Sprintf("%d", row.Apps),
			fmt.Sprintf("%d", row.Checks),
			fmt.Sprintf("%d", row.Ops),
			fmt.Sprintf("%d", row.Micros),
			fmt.Sprintf("%.1f", row.BenefitScalar),
			fmt.Sprintf("%.1f", row.BenefitVector),
			fmt.Sprintf("%.1f", row.BenefitMP))
	}
	return t.String()
}
