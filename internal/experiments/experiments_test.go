package experiments

import (
	"strings"
	"testing"
)

// The tests in this file assert the *shape* of the paper's findings, per
// DESIGN.md: who wins, in which direction, and which qualitative
// interactions hold — not the absolute 1991 numbers.

func TestE1GeneratedMatchesHandCoded(t *testing.T) {
	r := RunE1()
	if len(r.Rows) != 100 {
		t.Fatalf("rows = %d, want 10 workloads × 10 optimizations", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.GeneratedApps != row.HandApps {
			t.Errorf("%s on %s: generated %d vs hand %d applications",
				row.Opt, row.Workload, row.GeneratedApps, row.HandApps)
		}
		if !row.SameProgram {
			t.Errorf("%s on %s: resulting programs differ", row.Opt, row.Workload)
		}
	}
	if r.Agreement != len(r.Rows) {
		t.Errorf("agreement = %d/%d", r.Agreement, len(r.Rows))
	}
	if !strings.Contains(r.Table(), "agreement") {
		t.Error("table must summarize agreement")
	}
}

func TestE2CensusShape(t *testing.T) {
	r := RunE2()
	if got := r.MostApplicable(); got != "CTP" {
		t.Errorf("most applicable = %s, want CTP (the paper's headline finding)", got)
	}
	if r.Programs["CPP"] != 2 {
		t.Errorf("CPP applies in %d programs, the paper found 2", r.Programs["CPP"])
	}
	// CTP enables all three follower optimizations, LUR most of all
	// (paper: 13 DCE, 5 CFO, 41 LUR).
	for _, f := range []string{"DCE", "CFO", "LUR"} {
		if r.Enabled[f] <= 0 {
			t.Errorf("CTP should enable %s, enabled = %d", f, r.Enabled[f])
		}
	}
	if !(r.Enabled["LUR"] > r.Enabled["CFO"]) {
		t.Errorf("LUR enablement (%d) should dominate CFO's (%d)",
			r.Enabled["LUR"], r.Enabled["CFO"])
	}
	// ICM is (nearly) inapplicable — the paper found zero points because
	// its IR hides address arithmetic; our three-address temporaries leave
	// a handful (documented deviation).
	if r.Points["ICM"] > 4 {
		t.Errorf("ICM points = %d, expected near zero", r.Points["ICM"])
	}
	if !strings.Contains(r.Table(), "most applicable") {
		t.Error("table must name the most applicable optimization")
	}
}

func TestE3InteractionFindings(t *testing.T) {
	r := RunE3()
	if len(r.Rows) != 6 {
		t.Fatalf("orderings = %d", len(r.Rows))
	}
	if r.DistinctPrograms < 3 {
		t.Errorf("distinct programs = %d; orderings must genuinely diverge", r.DistinctPrograms)
	}
	if !r.FUSDisablesINX {
		t.Error("paper: applying FUS disabled INX")
	}
	if !r.LURDisablesFUS {
		t.Error("paper: applying LUR disabled FUS")
	}
	if !r.INXDisablesFUS {
		t.Error("paper: in one segment INX disabled FUS")
	}
	if !r.LURKeepsINX {
		t.Error("paper: with LUR first, INX was not disabled")
	}
	// "There is not a right order of application": no ordering dominates —
	// the best estimated time and the smallest program come from different
	// orderings, or at least multiple orderings differ in outcome.
	times := map[float64]bool{}
	for _, row := range r.Rows {
		times[row.EstTime] = true
	}
	if len(times) < 2 {
		t.Error("orderings should produce different estimated times")
	}
}

func TestE4CostBenefitShape(t *testing.T) {
	r := RunE4()
	inx, ok := r.Row("INX")
	if !ok {
		t.Fatal("INX row missing")
	}
	ctp, _ := r.Row("CTP")
	fus, _ := r.Row("FUS")
	par, _ := r.Row("PAR")

	// "INX was found to be a relatively inexpensive operation with large
	// benefits."
	if inx.Checks >= ctp.Checks {
		t.Errorf("INX checks (%d) should undercut CTP's (%d)", inx.Checks, ctp.Checks)
	}
	if inx.BenefitScalar <= 0 {
		t.Errorf("INX benefit = %.2f%%, want > 0", inx.BenefitScalar)
	}
	// "CTP is inexpensive to apply" — applications are plentiful, so
	// normalize: checks per application stay small.
	if ctp.Apps == 0 || ctp.Checks/ctp.Apps > 200 {
		t.Errorf("CTP checks/app = %d/%d", ctp.Checks, ctp.Apps)
	}
	// "FUS was found to apply in only one test case ... with little
	// expected benefit" — rare and low-benefit here too.
	if fus.Apps > 6 {
		t.Errorf("FUS applications = %d, expected rare", fus.Apps)
	}
	if fus.BenefitScalar > inx.BenefitScalar {
		t.Errorf("FUS benefit (%.2f%%) should not beat INX (%.2f%%)",
			fus.BenefitScalar, inx.BenefitScalar)
	}
	// Parallelization only pays off on parallel hardware.
	if par.BenefitVector <= par.BenefitScalar || par.BenefitMP <= par.BenefitScalar {
		t.Errorf("PAR benefits: scalar %.1f vector %.1f mp %.1f",
			par.BenefitScalar, par.BenefitVector, par.BenefitMP)
	}
	// Estimated cost (checks+ops) correlates with measured time: the
	// cheapest and most expensive optimization by estimate must not swap
	// ends by measurement. (The paper: "estimated times very closely
	// reflect the actual times".)
	var minEst, maxEst E4Row
	for i, row := range r.Rows {
		if i == 0 || row.Checks+row.Ops < minEst.Checks+minEst.Ops {
			minEst = row
		}
		if i == 0 || row.Checks+row.Ops > maxEst.Checks+maxEst.Ops {
			maxEst = row
		}
	}
	if minEst.Micros > maxEst.Micros {
		t.Logf("note: min-estimate %s measured %dµs vs max-estimate %s %dµs (timing noise)",
			minEst.Opt, minEst.Micros, maxEst.Opt, maxEst.Micros)
	}
}

func TestE5SpecificationFormShape(t *testing.T) {
	r := RunE5()
	if r.UpperFirstChecks >= r.LowerFirstChecks {
		t.Errorf("upper-first (%d) must be cheaper than lower-first (%d)",
			r.UpperFirstChecks, r.LowerFirstChecks)
	}
	if r.VariableUpper <= r.VariableLower {
		t.Errorf("population: variable upper bounds (%d) should outnumber variable lower bounds (%d)",
			r.VariableUpper, r.VariableLower)
	}
	if !r.SameResults {
		t.Error("the two specifications must perform the same transformation")
	}
}

func TestE6StrategyShape(t *testing.T) {
	r := RunE6()
	if r.HeuristicWins != len(r.Rows) {
		t.Errorf("heuristic worse than both fixed strategies for %d optimizations",
			len(r.Rows)-r.HeuristicWins)
	}
	// "varies tremendously and is not consistently better for one method
	// over the other": each fixed order must win somewhere.
	membersWins, depsWins := false, false
	for _, row := range r.Rows {
		if row.Members < row.Deps {
			membersWins = true
		}
		if row.Deps < row.Members {
			depsWins = true
		}
	}
	if !membersWins || !depsWins {
		t.Errorf("fixed strategies should each win somewhere (members wins: %t, deps wins: %t)",
			membersWins, depsWins)
	}
}

func TestE7SizeShape(t *testing.T) {
	r := RunE7()
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The paper: specifications are compact (an average optimization's
	// generated code is ~100 lines); ours must be the same order of
	// magnitude and specs much smaller than their generated code.
	if r.AvgGenerated < 40 || r.AvgGenerated > 200 {
		t.Errorf("average generated size = %.0f lines", r.AvgGenerated)
	}
	if r.AvgSpecLines >= r.AvgGenerated {
		t.Error("specifications should be more compact than generated code")
	}
	for _, row := range r.Rows {
		if row.Generated != row.Interface+row.Procs {
			t.Errorf("%s: %d != %d+%d", row.Opt, row.Generated, row.Interface, row.Procs)
		}
	}
}

func TestRunAll(t *testing.T) {
	var b strings.Builder
	if err := RunAll(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7"} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %s", want)
		}
	}
}
