package experiments

import (
	"fmt"

	"repro/dep"
	"repro/internal/engine"
	"repro/internal/par"
	"repro/internal/specs"
	"repro/internal/workloads"
	"repro/ir"
)

// E6Row profiles the membership-check strategies for one optimization.
type E6Row struct {
	Opt       string
	Members   int // precondition checks, members-first
	Deps      int // precondition checks, deps-first
	Heuristic int // precondition checks, per-clause heuristic
}

// E6Result reproduces the membership-strategy experiment: "the cost of
// implementing the optimizations using these approaches varies tremendously
// and is not consistently better for one method over the other. Using
// heuristics, GENesis was changed to select the least expensive method on a
// case by case basis. In the tests performed, we found that the heuristic
// correctly selected the best implementation."
type E6Result struct {
	Rows []E6Row
	// HeuristicWins counts optimizations where the heuristic's cost is no
	// worse than both fixed strategies.
	HeuristicWins int
}

// membershipOpts are the optimizations whose Depend sections carry
// membership qualifications.
var membershipOpts = []string{"ICM", "INX", "CRC", "PAR", "FUS"}

// RunE6 measures precondition-search cost per strategy. The searches are
// run without applying (Preconditions), so all three strategies examine the
// identical program. Each optimization's profile is independent (its own
// compiled optimizers, cost counters and programs), so the five profiles run
// on the worker pool and come back in membershipOpts order.
func RunE6() E6Result {
	rows := par.Map(len(membershipOpts), 0, func(i int) E6Row {
		name := membershipOpts[i]
		row := E6Row{Opt: name}
		for _, strat := range []engine.Strategy{
			engine.StrategyMembers, engine.StrategyDeps, engine.StrategyHeuristic,
		} {
			o := specs.MustCompile(name, engine.WithStrategy(strat))
			for _, w := range workloads.All {
				p := w.Program()
				g := dep.Compute(p)
				o.Preconditions(p, g)
				_ = ir.Loops(p)
			}
			checks := o.Cost().Checks()
			switch strat {
			case engine.StrategyMembers:
				row.Members = checks
			case engine.StrategyDeps:
				row.Deps = checks
			case engine.StrategyHeuristic:
				row.Heuristic = checks
			}
		}
		return row
	})
	res := E6Result{Rows: rows}
	for _, row := range rows {
		if row.Heuristic <= row.Members || row.Heuristic <= row.Deps {
			res.HeuristicWins++
		}
	}
	return res
}

// Table renders the strategy comparison.
func (r E6Result) Table() string {
	t := &table{header: []string{"opt", "members-first", "deps-first", "heuristic"}}
	for _, row := range r.Rows {
		t.add(row.Opt,
			fmt.Sprintf("%d", row.Members),
			fmt.Sprintf("%d", row.Deps),
			fmt.Sprintf("%d", row.Heuristic))
	}
	t.add("heuristic no worse than a fixed order",
		fmt.Sprintf("%d/%d", r.HeuristicWins, len(r.Rows)), "", "")
	return t.String()
}
