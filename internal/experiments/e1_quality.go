package experiments

import (
	"fmt"

	"repro/internal/handopt"
	"repro/internal/par"
	"repro/internal/specs"
	"repro/internal/workloads"
)

// E1Row compares one optimization on one workload between the generated
// optimizer (the GOSpeL engine) and the hand-coded implementation.
type E1Row struct {
	Workload      string
	Opt           string
	GeneratedApps int
	HandApps      int
	SameProgram   bool
}

// E1Result is the quality experiment: the paper reports that the generated
// optimizers "found the same application points and the resulting code was
// comparable to that produced by the hand-crafted optimizers" with "no
// extraneous statements".
type E1Result struct {
	Rows      []E1Row
	Agreement int // rows with identical resulting programs
}

// RunE1 runs both optimizer suites on every workload. Each
// (workload, optimization) cell is independent — its programs, compiled
// optimizers and dependence graphs are all private — so the matrix fans out
// across a bounded worker pool; rows come back in the sequential order.
func RunE1() E1Result {
	type cell struct {
		w    workloads.Workload
		name string
	}
	var cells []cell
	for _, w := range workloads.All {
		for _, name := range specs.Ten {
			cells = append(cells, cell{w, name})
		}
	}
	rows := par.Map(len(cells), 0, func(i int) E1Row {
		c := cells[i]
		gp := c.w.Program()
		o := specs.MustCompile(c.name)
		apps, err := o.ApplyAll(gp)
		if err != nil {
			panic(err)
		}
		hp := c.w.Program()
		hf, _ := handopt.Get(c.name)
		hApps := hf(hp)
		return E1Row{
			Workload:      c.w.Name,
			Opt:           c.name,
			GeneratedApps: len(apps),
			HandApps:      hApps,
			SameProgram:   gp.Equal(hp),
		}
	})
	res := E1Result{Rows: rows}
	for _, row := range rows {
		if row.SameProgram {
			res.Agreement++
		}
	}
	return res
}

// Table renders the comparison.
func (r E1Result) Table() string {
	t := &table{header: []string{"workload", "opt", "generated", "hand-coded", "same code"}}
	for _, row := range r.Rows {
		t.add(row.Workload, row.Opt,
			fmt.Sprintf("%d", row.GeneratedApps),
			fmt.Sprintf("%d", row.HandApps),
			fmt.Sprintf("%t", row.SameProgram))
	}
	t.add("", "", "", "agreement", fmt.Sprintf("%d/%d", r.Agreement, len(r.Rows)))
	return t.String()
}
