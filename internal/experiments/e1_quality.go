package experiments

import (
	"fmt"

	"repro/internal/handopt"
	"repro/internal/specs"
	"repro/internal/workloads"
)

// E1Row compares one optimization on one workload between the generated
// optimizer (the GOSpeL engine) and the hand-coded implementation.
type E1Row struct {
	Workload      string
	Opt           string
	GeneratedApps int
	HandApps      int
	SameProgram   bool
}

// E1Result is the quality experiment: the paper reports that the generated
// optimizers "found the same application points and the resulting code was
// comparable to that produced by the hand-crafted optimizers" with "no
// extraneous statements".
type E1Result struct {
	Rows      []E1Row
	Agreement int // rows with identical resulting programs
}

// RunE1 runs both optimizer suites on every workload.
func RunE1() E1Result {
	var res E1Result
	for _, w := range workloads.All {
		for _, name := range specs.Ten {
			gp := w.Program()
			o := specs.MustCompile(name)
			apps, err := o.ApplyAll(gp)
			if err != nil {
				panic(err)
			}
			hp := w.Program()
			hf, _ := handopt.Get(name)
			hApps := hf(hp)

			row := E1Row{
				Workload:      w.Name,
				Opt:           name,
				GeneratedApps: len(apps),
				HandApps:      hApps,
				SameProgram:   gp.Equal(hp),
			}
			if row.SameProgram {
				res.Agreement++
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// Table renders the comparison.
func (r E1Result) Table() string {
	t := &table{header: []string{"workload", "opt", "generated", "hand-coded", "same code"}}
	for _, row := range r.Rows {
		t.add(row.Workload, row.Opt,
			fmt.Sprintf("%d", row.GeneratedApps),
			fmt.Sprintf("%d", row.HandApps),
			fmt.Sprintf("%t", row.SameProgram))
	}
	t.add("", "", "", "agreement", fmt.Sprintf("%d/%d", r.Agreement, len(r.Rows)))
	return t.String()
}
