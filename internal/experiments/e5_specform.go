package experiments

import (
	"fmt"

	"repro/internal/specs"
	"repro/internal/workloads"
)

// E5Result reproduces the specification-form experiment: "if the
// specification of LUR requires that both the upper and lower limits are
// constant, LUR is less costly to apply if the upper limit is checked
// before the lower bound ... it is more likely for the upper limit to be
// variable than the lower limit, thus discarding a non-application point
// earlier."
type E5Result struct {
	// Checks per variant (pattern checks only — the bound tests live in
	// the Code_Pattern section).
	UpperFirstChecks int
	LowerFirstChecks int
	// Loops with variable upper / lower bounds across the suite, the
	// population statistic behind the finding.
	VariableUpper int
	VariableLower int
	TotalLoops    int
	SameResults   bool
}

// RunE5 profiles both LUR specifications over all workloads.
func RunE5() E5Result {
	var res E5Result
	res.SameResults = true
	for _, w := range workloads.All {
		pUpper := w.Program()
		upper := specs.MustCompile("LUR")
		if _, err := upper.ApplyAll(pUpper); err != nil {
			panic(err)
		}
		res.UpperFirstChecks += upper.Cost().PatternChecks

		pLower := w.Program()
		lower := specs.MustCompile("LUR_LOWERFIRST")
		if _, err := lower.ApplyAll(pLower); err != nil {
			panic(err)
		}
		res.LowerFirstChecks += lower.Cost().PatternChecks

		if !pUpper.Equal(pLower) {
			res.SameResults = false
		}

		p := w.Program()
		for _, l := range loopsOf(p) {
			res.TotalLoops++
			if !l.Head.Final.IsConst() {
				res.VariableUpper++
			}
			if !l.Head.Init.IsConst() {
				res.VariableLower++
			}
		}
	}
	return res
}

// Table renders the variant comparison.
func (r E5Result) Table() string {
	t := &table{header: []string{"measure", "value"}}
	t.add("LUR upper-bound-first pattern checks", fmt.Sprintf("%d", r.UpperFirstChecks))
	t.add("LUR lower-bound-first pattern checks", fmt.Sprintf("%d", r.LowerFirstChecks))
	t.add("loops with variable upper bound", fmt.Sprintf("%d/%d", r.VariableUpper, r.TotalLoops))
	t.add("loops with variable lower bound", fmt.Sprintf("%d/%d", r.VariableLower, r.TotalLoops))
	t.add("variants produce identical code", fmt.Sprintf("%t", r.SameResults))
	return t.String()
}
