package experiments

import (
	"fmt"
	"strings"

	"repro/internal/codegen"
	"repro/internal/gospel"
	"repro/internal/specs"
	"repro/ir"
)

// E7Result reproduces the implementation-size statistics of Section 3.1:
// "The generator consists of 1,735 lines of code (including LEX and YACC
// specifications). An optimization consists of 99 lines on the average,
// where the call interface consists of 29 lines of code, and the four
// generated procedures consist of 70 lines on the average. The
// non-optimization specific code in library is 1,873 lines."
//
// Here the corresponding numbers are measured over the emitted Go: lines of
// generated code per optimization, split into the interface part (header,
// element table, driver hook) and the procedures (apply + act), plus the
// size of each GOSpeL specification itself.
type E7Result struct {
	Rows []E7SizeRow
	// Averages over the ten optimizations.
	AvgGenerated float64
	AvgInterface float64
	AvgProcs     float64
	AvgSpecLines float64
}

// E7SizeRow is the size profile of one optimization.
type E7SizeRow struct {
	Opt       string
	SpecLines int // GOSpeL specification lines (non-blank)
	Generated int // emitted Go lines
	Interface int // header + imports + setUp + main hook
	Procs     int // apply + act procedures
}

func loopsOf(p *ir.Program) []ir.Loop { return ir.Loops(p) }

// RunE7 generates code for the ten optimizations and measures it.
func RunE7() E7Result {
	var res E7Result
	for _, name := range specs.Ten {
		spec, err := gospel.ParseAndCheck(name, specs.Sources[name])
		if err != nil {
			panic(err)
		}
		src, err := codegen.Generate(spec, codegen.Options{Package: "main", EmitMain: true})
		if err != nil {
			panic(err)
		}
		row := E7SizeRow{Opt: name}
		for _, line := range strings.Split(specs.Sources[name], "\n") {
			if strings.TrimSpace(line) != "" {
				row.SpecLines++
			}
		}
		inProc := false
		for _, line := range strings.Split(src, "\n") {
			if strings.TrimSpace(line) == "" {
				continue
			}
			row.Generated++
			if strings.HasPrefix(line, "func apply") || strings.HasPrefix(line, "func act") {
				inProc = true
			}
			if inProc {
				row.Procs++
				if line == "}" {
					inProc = false
				}
			} else {
				row.Interface++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	n := float64(len(res.Rows))
	for _, row := range res.Rows {
		res.AvgGenerated += float64(row.Generated) / n
		res.AvgInterface += float64(row.Interface) / n
		res.AvgProcs += float64(row.Procs) / n
		res.AvgSpecLines += float64(row.SpecLines) / n
	}
	return res
}

// Table renders the size statistics next to the paper's.
func (r E7Result) Table() string {
	t := &table{header: []string{"opt", "spec lines", "generated", "interface", "procedures"}}
	for _, row := range r.Rows {
		t.add(row.Opt,
			fmt.Sprintf("%d", row.SpecLines),
			fmt.Sprintf("%d", row.Generated),
			fmt.Sprintf("%d", row.Interface),
			fmt.Sprintf("%d", row.Procs))
	}
	t.add("average",
		fmt.Sprintf("%.0f", r.AvgSpecLines),
		fmt.Sprintf("%.0f", r.AvgGenerated),
		fmt.Sprintf("%.0f", r.AvgInterface),
		fmt.Sprintf("%.0f", r.AvgProcs))
	t.add("paper", "-", "99", "29", "70")
	return t.String()
}
