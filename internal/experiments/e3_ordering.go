package experiments

import (
	"fmt"
	"strings"

	"repro/internal/interp"
	"repro/internal/par"
	"repro/internal/specs"
	"repro/internal/workloads"
	"repro/ir"
)

// E3Row is one application order of {FUS, INX, LUR} on the interaction
// workload.
type E3Row struct {
	Order      []string
	Apps       map[string]int
	FinalStmts int
	EstTime    float64
	Program    string
}

// E3Result reproduces the ordering experiment: "In one program, FUS, INX,
// and LUR were all applicable and heavily interacted with one another ...
// applying FUS disabled INX and applying LUR disabled FUS. Different
// orderings produced different optimized programs ... when LUR was applied
// before FUS and INX, INX was not disabled."
type E3Result struct {
	Rows []E3Row
	// DistinctPrograms counts how many different final programs the six
	// orderings produce.
	DistinctPrograms int
	// The paper's qualitative interaction findings, checked on the counts:
	// "applying FUS disabled INX and applying LUR disabled FUS", "in one
	// segment of the program INX disabled FUS", and "when LUR was applied
	// before FUS and INX, INX was not disabled".
	FUSDisablesINX bool
	LURDisablesFUS bool
	INXDisablesFUS bool
	LURKeepsINX    bool
}

var e3Orders = [][]string{
	{"FUS", "INX", "LUR"},
	{"FUS", "LUR", "INX"},
	{"INX", "FUS", "LUR"},
	{"INX", "LUR", "FUS"},
	{"LUR", "FUS", "INX"},
	{"LUR", "INX", "FUS"},
}

// RunE3 applies all six orderings to the interaction workload. Each ordering
// optimizes its own fresh copy of the workload, so the six runs fan out
// across the worker pool; rows and the derived interaction findings are
// aggregated in the fixed ordering-table order.
func RunE3() E3Result {
	w, err := workloads.Get("interact")
	if err != nil {
		panic(err)
	}
	rows := par.Map(len(e3Orders), 0, func(i int) E3Row {
		order := e3Orders[i]
		p := w.Program()
		row := E3Row{Order: order, Apps: map[string]int{}}
		for _, name := range order {
			a, err := specs.MustCompile(name).ApplyAll(p)
			if err != nil {
				panic(err)
			}
			row.Apps[name] = len(a)
		}
		row.FinalStmts = p.Len()
		r, err := interp.Run(p, w.Input, interp.Config{})
		if err != nil {
			panic(fmt.Sprintf("order %v broke the program: %v\n%s", order, err, p))
		}
		row.EstTime = interp.EstimatedTime(r.Counts, interp.Scalar, interp.DefaultModel)
		row.Program = p.String()
		_ = ir.Loops(p)
		return row
	})
	res := E3Result{Rows: rows}
	programs := map[string]bool{}
	apps := map[string]map[string]int{}
	for _, row := range rows {
		programs[row.Program] = true
		apps[strings.Join(row.Order, ",")] = row.Apps
	}
	res.DistinctPrograms = len(programs)
	inxFirst := apps["INX,FUS,LUR"]["INX"]
	fusFirst := apps["FUS,INX,LUR"]["FUS"]
	res.FUSDisablesINX = apps["FUS,INX,LUR"]["INX"] < inxFirst
	res.LURDisablesFUS = apps["LUR,FUS,INX"]["FUS"] < fusFirst
	res.INXDisablesFUS = apps["INX,FUS,LUR"]["FUS"] < fusFirst
	res.LURKeepsINX = apps["LUR,INX,FUS"]["INX"] == inxFirst && inxFirst > 0
	return res
}

// Table renders the six orderings.
func (r E3Result) Table() string {
	t := &table{header: []string{"order", "FUS", "INX", "LUR", "stmts", "est time"}}
	for _, row := range r.Rows {
		t.add(strings.Join(row.Order, "→"),
			fmt.Sprintf("%d", row.Apps["FUS"]),
			fmt.Sprintf("%d", row.Apps["INX"]),
			fmt.Sprintf("%d", row.Apps["LUR"]),
			fmt.Sprintf("%d", row.FinalStmts),
			fmt.Sprintf("%.0f", row.EstTime))
	}
	t.add("distinct final programs", fmt.Sprintf("%d", r.DistinctPrograms), "", "", "", "")
	t.add("FUS disables INX", fmt.Sprintf("%t", r.FUSDisablesINX), "", "", "", "")
	t.add("LUR disables FUS", fmt.Sprintf("%t", r.LURDisablesFUS), "", "", "", "")
	t.add("INX disables FUS", fmt.Sprintf("%t", r.INXDisablesFUS), "", "", "", "")
	t.add("LUR first keeps INX", fmt.Sprintf("%t", r.LURKeepsINX), "", "", "", "")
	return t.String()
}
