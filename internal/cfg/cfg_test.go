package cfg

import (
	"testing"

	"repro/internal/frontend"
	"repro/ir"
)

func has(edges []int, t int) bool {
	for _, e := range edges {
		if e == t {
			return true
		}
	}
	return false
}

func TestStraightLine(t *testing.T) {
	p := frontend.MustParse("PROGRAM p\nINTEGER x, y\nx = 1\ny = 2\nPRINT y\nEND")
	g := Build(p)
	if !has(g.Succ[0], 1) || !has(g.Succ[1], 2) {
		t.Fatalf("fallthrough edges missing:\n%s", g)
	}
	if len(g.Succ[2]) != 0 {
		t.Fatalf("last statement must have no successors")
	}
	if !has(g.Pred[1], 0) {
		t.Fatal("pred edges missing")
	}
}

func TestLoopEdges(t *testing.T) {
	src := `
PROGRAM p
INTEGER i, s
s = 0
DO i = 1, 10
  s = s + i
ENDDO
PRINT s
END
`
	p := frontend.MustParse(src)
	g := Build(p)
	// 0: s=0, 1: do, 2: s=s+i, 3: enddo, 4: print
	if !has(g.Succ[1], 2) {
		t.Error("DO → body missing")
	}
	if !has(g.Succ[1], 4) {
		t.Error("DO → zero-trip exit missing")
	}
	if !has(g.Succ[3], 1) {
		t.Error("ENDDO → DO back edge missing")
	}
	if has(g.Succ[3], 4) {
		t.Error("ENDDO should not fall through; exit is modeled at the head")
	}
}

func TestEmptyLoopBody(t *testing.T) {
	p := frontend.MustParse("PROGRAM p\nINTEGER i\nDO i = 1, 3\nENDDO\nEND")
	g := Build(p)
	if !has(g.Succ[0], 1) {
		t.Error("DO → ENDDO missing for empty body")
	}
	if !has(g.Succ[1], 0) {
		t.Error("back edge missing")
	}
}

func TestIfElseEdges(t *testing.T) {
	src := `
PROGRAM p
INTEGER x, y
READ x
IF (x > 0) THEN
  y = 1
ELSE
  y = 2
ENDIF
PRINT y
END
`
	p := frontend.MustParse(src)
	g := Build(p)
	// 0: read, 1: if, 2: y=1, 3: else, 4: y=2, 5: endif, 6: print
	if !has(g.Succ[1], 2) || !has(g.Succ[1], 4) {
		t.Fatalf("IF must branch to both arms:\n%s", g)
	}
	if !has(g.Succ[3], 5) {
		t.Error("ELSE must jump to ENDIF")
	}
	if has(g.Succ[3], 4) {
		t.Error("THEN branch must not fall into ELSE branch")
	}
	if !has(g.Succ[2], 3) {
		t.Error("then-body falls through to the ELSE marker (which jumps)")
	}
	if !has(g.Succ[5], 6) {
		t.Error("ENDIF falls through")
	}
}

func TestIfWithoutElse(t *testing.T) {
	src := `
PROGRAM p
INTEGER x
READ x
IF (x > 0) THEN
  x = 0
ENDIF
PRINT x
END
`
	p := frontend.MustParse(src)
	g := Build(p)
	// 0: read, 1: if, 2: x=0, 3: endif, 4: print
	if !has(g.Succ[1], 2) || !has(g.Succ[1], 3) {
		t.Fatalf("IF without ELSE must branch to body and ENDIF:\n%s", g)
	}
}

func TestReachable(t *testing.T) {
	p := frontend.MustParse("PROGRAM p\nINTEGER x\nx = 1\nPRINT x\nEND")
	g := Build(p)
	r := g.Reachable()
	for i, ok := range r {
		if !ok {
			t.Errorf("stmt %d unreachable", i)
		}
	}
}

func TestBlocks(t *testing.T) {
	src := `
PROGRAM p
INTEGER x, y
x = 1
y = 2
IF (x > 0) THEN
  y = 3
ENDIF
PRINT y
END
`
	p := frontend.MustParse(src)
	g := Build(p)
	blocks := g.Blocks()
	if len(blocks) < 3 {
		t.Fatalf("expected ≥3 blocks, got %d: %v", len(blocks), blocks)
	}
	// First block must contain the two straight-line assignments + if.
	if blocks[0].Start != 0 {
		t.Errorf("first block starts at %d", blocks[0].Start)
	}
	// Every statement must be covered exactly once.
	covered := make([]bool, p.Len())
	for _, b := range blocks {
		for i := b.Start; i <= b.End; i++ {
			if covered[i] {
				t.Fatalf("stmt %d in two blocks", i)
			}
			covered[i] = true
		}
	}
	for i, c := range covered {
		if !c {
			t.Errorf("stmt %d not in any block", i)
		}
	}
}

func TestNestedLoopGraph(t *testing.T) {
	src := `
PROGRAM p
INTEGER i, j
REAL a(10,10)
DO i = 1, 10
  DO j = 1, 10
    a(i,j) = 0.0
  ENDDO
ENDDO
END
`
	p := frontend.MustParse(src)
	g := Build(p)
	// 0: do i, 1: do j, 2: assign, 3: enddo j, 4: enddo i
	if !has(g.Succ[3], 1) {
		t.Error("inner back edge missing")
	}
	if !has(g.Succ[4], 0) {
		t.Error("outer back edge missing")
	}
	if !has(g.Succ[1], 4) {
		t.Error("inner zero-trip exit should reach outer ENDDO")
	}
	_ = ir.Loops(p)
}
