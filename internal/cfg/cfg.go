// Package cfg builds a control-flow graph over the structured IR. Nodes are
// individual statements (programs in this system are small source routines,
// so statement-granularity keeps the dataflow clients simple); a basic-block
// view is derived on top for clients that want one.
//
// Edge model for the structured statements:
//
//   - DO head → first body statement (loop entered) and → statement after
//     the matching ENDDO (zero-trip exit).
//   - ENDDO → its DO head (back edge).
//   - IF → first THEN statement and → first ELSE statement (or the ENDIF
//     when there is no ELSE).
//   - A statement whose successor would be an ELSE falls through to the
//     matching ENDIF instead (end of the THEN branch).
package cfg

import (
	"fmt"
	"strings"

	"repro/ir"
)

// Graph is a statement-level control-flow graph. Indices are positions in
// the program's statement list at build time; the graph is a snapshot and
// must be rebuilt after the program is transformed.
type Graph struct {
	Prog *ir.Program
	Succ [][]int
	Pred [][]int
}

// Build constructs the CFG for p.
func Build(p *ir.Program) *Graph { return build(p, true) }

// BuildForward constructs the CFG without loop back edges (ENDDO → DO).
// The resulting graph is acyclic; dataflow facts computed on it describe a
// single iteration, which the dependence analyzer uses to separate
// loop-independent from loop-carried dependences.
func BuildForward(p *ir.Program) *Graph { return build(p, false) }

func build(p *ir.Program, withBackEdges bool) *Graph {
	n := p.Len()
	g := &Graph{Prog: p, Succ: make([][]int, n), Pred: make([][]int, n)}
	add := func(from, to int) {
		if to < 0 || to >= n {
			return
		}
		g.Succ[from] = append(g.Succ[from], to)
		g.Pred[to] = append(g.Pred[to], from)
	}
	for i := 0; i < n; i++ {
		s := p.At(i)
		switch s.Kind {
		case ir.SDoHead:
			end := ir.MatchingEnd(p, s)
			add(i, i+1) // into the body (or directly to the ENDDO if empty)
			if end != nil {
				add(i, p.Index(end)+1) // zero-trip exit
			}
		case ir.SDoEnd:
			if withBackEdges {
				if head := ir.MatchingHead(p, s); head != nil {
					add(i, p.Index(head)) // back edge
				}
			} else {
				// Forward-only view: the ENDDO falls through to the loop
				// exit so one-iteration facts still flow past the loop.
				add(i, i+1)
			}
		case ir.SIf:
			els, endif := ir.MatchingEndIf(p, s)
			add(i, i+1) // THEN branch (or ELSE/ENDIF when empty)
			switch {
			case els != nil:
				add(i, p.Index(els)+1)
			case endif != nil:
				add(i, p.Index(endif))
			}
		case ir.SElse:
			// Reaching the ELSE marker means the THEN branch finished;
			// control jumps over the ELSE branch to the matching ENDIF.
			if endif := matchingEndIfOfElse(p, s); endif != nil {
				add(i, p.Index(endif))
			}
		default:
			add(i, i+1)
		}
	}
	// Deduplicate edges (empty-body loops can produce duplicates).
	for i := range g.Succ {
		g.Succ[i] = dedup(g.Succ[i])
		g.Pred[i] = dedup(g.Pred[i])
	}
	return g
}

func dedup(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func matchingEndIfOfElse(p *ir.Program, els *ir.Stmt) *ir.Stmt {
	depth := 0
	for i := p.Index(els) + 1; i < p.Len(); i++ {
		s := p.At(i)
		switch s.Kind {
		case ir.SIf:
			depth++
		case ir.SEndIf:
			if depth == 0 {
				return s
			}
			depth--
		}
	}
	return nil
}

// Reachable returns the set of statement indices reachable from entry
// (index 0). Statements can become unreachable after transformations.
func (g *Graph) Reachable() []bool {
	n := len(g.Succ)
	seen := make([]bool, n)
	if n == 0 {
		return seen
	}
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Succ[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// ReachableFrom returns the statements reachable from index i by following
// successor edges (i itself included).
func (g *Graph) ReachableFrom(i int) []bool {
	return g.flood(i, g.Succ)
}

// Reaches returns the statements from which index i is reachable
// (i itself included).
func (g *Graph) Reaches(i int) []bool {
	return g.flood(i, g.Pred)
}

func (g *Graph) flood(start int, edges [][]int) []bool {
	seen := make([]bool, len(edges))
	if start < 0 || start >= len(edges) {
		return seen
	}
	stack := []int{start}
	seen[start] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range edges[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// Block is a maximal straight-line run of statements: a basic block of the
// statement-level graph.
type Block struct {
	Start, End int // statement index range [Start, End]
}

// Blocks partitions the graph into basic blocks using the classic leader
// algorithm: the entry, every branch target, and every statement following a
// multi-successor statement begin a block.
func (g *Graph) Blocks() []Block {
	n := len(g.Succ)
	if n == 0 {
		return nil
	}
	leader := make([]bool, n)
	leader[0] = true
	for i := 0; i < n; i++ {
		if len(g.Succ[i]) > 1 {
			for _, t := range g.Succ[i] {
				leader[t] = true
			}
			if i+1 < n {
				leader[i+1] = true
			}
		}
		for _, t := range g.Succ[i] {
			if t != i+1 {
				leader[t] = true
				if i+1 < n {
					leader[i+1] = true
				}
			}
		}
	}
	var blocks []Block
	start := 0
	for i := 1; i < n; i++ {
		if leader[i] {
			blocks = append(blocks, Block{Start: start, End: i - 1})
			start = i
		}
	}
	blocks = append(blocks, Block{Start: start, End: n - 1})
	return blocks
}

// String renders the graph in a compact adjacency form for debugging.
func (g *Graph) String() string {
	var b strings.Builder
	for i, succ := range g.Succ {
		fmt.Fprintf(&b, "%3d %-30s ->", i, ir.FormatStmt(g.Prog.At(i)))
		for _, t := range succ {
			fmt.Fprintf(&b, " %d", t)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
