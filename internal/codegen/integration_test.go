package codegen_test

import (
	"context"
	"os"
	"os/exec"
	"testing"
	"time"

	"repro/internal/nativecache"
	"repro/internal/specs"
	"repro/internal/workloads"
)

// TestGeneratedOptimizersCompileAndMatchEngine is the end-to-end check of
// the generator: every specification is emitted as Go, compiled with the
// real Go toolchain, run over every workload, and the resulting programs
// compared against the GOSpeL engine's ApplyAll. This is the reproduction
// of the paper's claim that the generated optimizers produce the same code
// as the (engine-)applied optimizations.
//
// The build goes through the content-addressed artifact cache rather than
// an ad-hoc testdata module: repeated runs (and CI jobs restoring the cache
// directory) reuse the compiled artifact instead of paying the toolchain
// again, and the test doubles as coverage for the exact spec-set key the
// server and CLI serve from. Subprocess mode keeps it runnable under -race,
// where plugin loading is impossible.
func TestGeneratedOptimizersCompileAndMatchEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping toolchain integration")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}

	dir := os.Getenv("REPRO_NATIVE_DIR")
	if dir == "" {
		d, err := nativecache.DefaultDir()
		if err != nil {
			t.Fatal(err)
		}
		dir = d
	}
	cache, err := nativecache.New(nativecache.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	art, err := cache.Ensure(ctx, nativecache.NewSpecSet(specs.Sources), nativecache.ModeSubprocess)
	if err != nil {
		t.Fatal(err)
	}

	// Run each generated optimizer over each workload and compare with the
	// engine.
	for _, w := range workloads.All {
		for _, name := range specs.Names() {
			res, err := art.RunPipeline(ctx, w.Source, []string{name}, 0)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, w.Name, err)
			}
			if perr := res.PipelineError(); perr != nil {
				t.Fatalf("%s on %s: %v", name, w.Name, perr)
			}

			p := w.Program()
			o := specs.MustCompile(name)
			apps, err := o.ApplyAll(p)
			if err != nil {
				t.Fatalf("engine %s on %s: %v", name, w.Name, err)
			}
			if res.IR != p.String() {
				t.Errorf("%s on %s: generated optimizer and engine disagree\n--- generated ---\n%s--- engine ---\n%s",
					name, w.Name, res.IR, p.String())
			}
			if len(res.Passes) != 1 {
				t.Fatalf("%s on %s: %d pass results, want 1", name, w.Name, len(res.Passes))
			}
			if res.Passes[0].Applications != len(apps) {
				t.Errorf("%s on %s: generated optimizer made %d application(s), engine %d",
					name, w.Name, res.Passes[0].Applications, len(apps))
			}
		}
	}
}
