package codegen

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gospel"
	"repro/internal/specs"
	"repro/internal/workloads"
)

// TestGeneratedOptimizersCompileAndMatchEngine is the end-to-end check of
// the generator: every specification is emitted as Go, compiled with the
// real Go toolchain into one binary, run over every workload, and the
// resulting programs compared against the GOSpeL engine's ApplyAll. This is
// the reproduction of the paper's claim that the generated optimizers
// produce the same code as the (engine-)applied optimizations.
func TestGeneratedOptimizersCompileAndMatchEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping toolchain integration")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}

	// The generated code imports repro/..., so it must live inside this
	// module. testdata/ is invisible to ./... wildcards but buildable by
	// explicit path.
	root := repoRoot(t)
	genDir := filepath.Join(root, "internal", "codegen", "testdata", "genbuild")
	if err := os.RemoveAll(genDir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(genDir, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(genDir) })

	names := specs.Names()
	var registry strings.Builder
	registry.WriteString("package main\n\nimport (\n\t\"fmt\"\n\t\"os\"\n\n\t\"repro/dep\"\n\t\"repro/ir\"\n\t\"repro/internal/frontend\"\n\t\"repro/optlib\"\n)\n\n")
	registry.WriteString("var registry = map[string]optlib.ApplyFunc{\n")
	for _, name := range names {
		spec, err := gospel.ParseAndCheck(name, specs.Sources[name])
		if err != nil {
			t.Fatal(err)
		}
		src, err := Generate(spec, Options{Package: "main"})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		file := filepath.Join(genDir, "gen_"+strings.ToLower(name)+".go")
		if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&registry, "\t%q: apply%s,\n", name, name)
	}
	registry.WriteString("}\n\n")
	registry.WriteString(`func main() {
	apply, ok := registry[os.Args[1]]
	if !ok {
		fmt.Fprintln(os.Stderr, "unknown optimization", os.Args[1])
		os.Exit(2)
	}
	src, err := os.ReadFile(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	p, err := frontend.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	n := optlib.Driver(p, apply)
	fmt.Printf("applications=%d\n", n)
	fmt.Print(p.String())
	_ = dep.Compute
	_ = ir.Loops
}
`)
	if err := os.WriteFile(filepath.Join(genDir, "main.go"), []byte(registry.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	bin := filepath.Join(t.TempDir(), "genopt")
	build := exec.Command(goBin, "build", "-o", bin, "./internal/codegen/testdata/genbuild")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("generated code failed to build: %v\n%s", err, out)
	}

	// Run each generated optimizer over each workload and compare with the
	// engine.
	srcDir := t.TempDir()
	for _, w := range workloads.All {
		srcFile := filepath.Join(srcDir, w.Name+".mf")
		if err := os.WriteFile(srcFile, []byte(w.Source), 0o644); err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			out, err := exec.Command(bin, name, srcFile).CombinedOutput()
			if err != nil {
				t.Fatalf("%s on %s: %v\n%s", name, w.Name, err, out)
			}
			text := string(out)
			nl := strings.IndexByte(text, '\n')
			genProgram := text[nl+1:]

			p := w.Program()
			o := specs.MustCompile(name)
			if _, err := o.ApplyAll(p); err != nil {
				t.Fatalf("engine %s on %s: %v", name, w.Name, err)
			}
			if genProgram != p.String() {
				t.Errorf("%s on %s: generated optimizer and engine disagree\n--- generated ---\n%s--- engine ---\n%s",
					name, w.Name, genProgram, p.String())
			}
		}
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	// internal/codegen → ../../
	return filepath.Dir(filepath.Dir(wd))
}
