package codegen

import (
	"fmt"
	"strings"

	"repro/dep"
	"repro/internal/gospel"
)

// value categories for emitted expressions.
type vcat int

const (
	cStmt vcat = iota
	cLoop
	cOperand
	cNum
	cBool
	cSet
	cOpcLit  // string literal for opc comparison
	cKindLit // string literal for kind comparison
	cTypeLit // string literal for operand-type comparison
)

// emitted is a translated expression: Go source plus its category.
type emitted struct {
	src string
	cat vcat
}

// vecLiteral renders a dep.Vector as an optlib.Vec(...) call ("nil" when
// empty).
func vecLiteral(v dep.Vector) string {
	if len(v) == 0 {
		return "nil"
	}
	parts := make([]string, len(v))
	for i, d := range v {
		parts[i] = fmt.Sprintf("%q", d.String())
	}
	return "optlib.Vec(" + strings.Join(parts, ", ") + ")"
}

func dirSetLiteral(d dep.DirSet) string {
	return fmt.Sprintf("optlib.Dir(%q)", d.String())
}

// boolExpr translates a GOSpeL boolean expression into Go source.
func (g *gen) boolExpr(e gospel.Expr) (string, error) {
	v, err := g.expr(e)
	if err != nil {
		return "", err
	}
	if v.cat != cBool {
		return "", g.errf("expected boolean expression, got %s", v.src)
	}
	return v.src, nil
}

// setExpr translates a set expression (loop body, path, inter, union, or an
// all-bound set variable).
func (g *gen) setExpr(e gospel.Expr) (string, error) {
	switch e := e.(type) {
	case gospel.Ident:
		s, ok := g.syms[e.Name]
		if !ok {
			return "", g.errf("unbound set name %s", e.Name)
		}
		switch s.kind {
		case symLoop:
			return s.expr + ".Body(p)", nil
		case symSet:
			return s.expr, nil
		}
		return "", g.errf("%s is not a set", e.Name)
	case gospel.Attr:
		if e.Name == "body" {
			base, err := g.expr(e.Base)
			if err != nil {
				return "", err
			}
			if base.cat != cLoop {
				return "", g.errf("body of non-loop")
			}
			return base.src + ".Body(p)", nil
		}
		return "", g.errf("attribute %q is not a set", e.Name)
	case gospel.Call:
		switch e.Fn {
		case "path":
			a, err := g.expr(e.Args[0])
			if err != nil {
				return "", err
			}
			b, err := g.expr(e.Args[1])
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("optlib.Path(p, %s, %s)", a.src, b.src), nil
		case "inter", "union":
			a, err := g.setExpr(e.Args[0])
			if err != nil {
				return "", err
			}
			b, err := g.setExpr(e.Args[1])
			if err != nil {
				return "", err
			}
			fn := "Inter"
			if e.Fn == "union" {
				fn = "Union"
			}
			return fmt.Sprintf("optlib.%s(%s, %s)", fn, a, b), nil
		}
	}
	return "", g.errf("unsupported set expression")
}

var literalCats = map[string]vcat{
	"const": cTypeLit, "var": cTypeLit, "array": cTypeLit,
	"assign": cOpcLit, "add": cOpcLit, "sub": cOpcLit, "mul": cOpcLit,
	"div": cOpcLit, "mod": cOpcLit,
	"do": cKindLit, "doall": cKindLit, "enddo": cKindLit, "if": cKindLit,
	"else": cKindLit, "endif": cKindLit, "print": cKindLit, "read": cKindLit,
}

// expr translates a general GOSpeL expression.
func (g *gen) expr(e gospel.Expr) (emitted, error) {
	switch e := e.(type) {
	case gospel.Num:
		return emitted{e.Text, cNum}, nil
	case gospel.Lit:
		cat, ok := literalCats[e.Name]
		if !ok {
			return emitted{}, g.errf("unknown literal %q", e.Name)
		}
		return emitted{fmt.Sprintf("%q", e.Name), cat}, nil
	case gospel.Ident:
		if s, ok := g.syms[e.Name]; ok {
			switch s.kind {
			case symStmt:
				return emitted{s.expr, cStmt}, nil
			case symLoop:
				return emitted{s.expr, cLoop}, nil
			case symPos:
				return emitted{s.expr, cNum}, nil
			case symSet:
				return emitted{s.expr, cSet}, nil
			}
		}
		if cat, ok := literalCats[e.Name]; ok {
			return emitted{fmt.Sprintf("%q", e.Name), cat}, nil
		}
		return emitted{}, g.errf("unbound name %s", e.Name)
	case gospel.Attr:
		return g.attrExpr(e)
	case gospel.Call:
		return g.callExpr(e)
	case gospel.Not:
		inner, err := g.boolExpr(e.E)
		if err != nil {
			return emitted{}, err
		}
		return emitted{"!(" + inner + ")", cBool}, nil
	case gospel.Binary:
		return g.binaryExpr(e)
	}
	return emitted{}, g.errf("unsupported expression form")
}

func (g *gen) attrExpr(e gospel.Attr) (emitted, error) {
	base, err := g.expr(e.Base)
	if err != nil {
		return emitted{}, err
	}
	switch base.cat {
	case cStmt:
		switch e.Name {
		case "opr_1", "opr_2", "opr_3":
			slot := e.Name[len(e.Name)-1] - '0'
			return emitted{fmt.Sprintf("optlib.Opr(%s, %c)", base.src, '0'+slot), cOperand}, nil
		case "next":
			return emitted{fmt.Sprintf("p.Next(%s)", base.src), cStmt}, nil
		case "prev":
			return emitted{fmt.Sprintf("p.Prev(%s)", base.src), cStmt}, nil
		case "opc", "kind":
			// Comparisons special-case these; standalone use is an error.
			return emitted{base.src, vcat(-1)}, g.errf("%s is only usable in comparisons", e.Name)
		}
		return emitted{}, g.errf("statement attribute %q", e.Name)
	case cLoop:
		switch e.Name {
		case "head":
			return emitted{base.src + ".Head", cStmt}, nil
		case "end":
			return emitted{base.src + ".End", cStmt}, nil
		case "body":
			return emitted{base.src + ".Body(p)", cSet}, nil
		case "lcv":
			return emitted{fmt.Sprintf("ir.VarOp(%s.LCV())", base.src), cOperand}, nil
		case "init":
			return emitted{base.src + ".Head.Init", cOperand}, nil
		case "final":
			return emitted{base.src + ".Head.Final", cOperand}, nil
		case "step":
			return emitted{base.src + ".Head.Step", cOperand}, nil
		}
		return emitted{}, g.errf("loop attribute %q", e.Name)
	}
	return emitted{}, g.errf("attributes need a statement or loop base")
}

func (g *gen) callExpr(e gospel.Call) (emitted, error) {
	if kind, ok := depPredKind(e.Fn); ok {
		src, err := g.expr(e.Args[0])
		if err != nil {
			return emitted{}, err
		}
		dst, err := g.expr(e.Args[1])
		if err != nil {
			return emitted{}, err
		}
		if e.CarriedBy != "" {
			l, ok := g.syms[e.CarriedBy]
			if !ok {
				return emitted{}, g.errf("carried(%s): unbound", e.CarriedBy)
			}
			return emitted{fmt.Sprintf("optlib.CarriedBy(p, g, %s, %s, %s, %s)",
				kind, src.src, dst.src, l.expr), cBool}, nil
		}
		if e.Independent {
			return emitted{fmt.Sprintf("optlib.IndependentDep(g, %s, %s, %s)",
				kind, src.src, dst.src), cBool}, nil
		}
		return emitted{fmt.Sprintf("g.Exists(%s, %s, %s, %s)",
			kind, src.src, dst.src, vecLiteral(e.Dir)), cBool}, nil
	}
	switch e.Fn {
	case "fused_dep":
		sm, err := g.expr(e.Args[0])
		if err != nil {
			return emitted{}, err
		}
		sn, err := g.expr(e.Args[1])
		if err != nil {
			return emitted{}, err
		}
		l1, err := g.expr(e.Args[2])
		if err != nil {
			return emitted{}, err
		}
		l2, err := g.expr(e.Args[3])
		if err != nil {
			return emitted{}, err
		}
		want := dep.DirAny
		if len(e.Dir) > 0 {
			want = e.Dir[0]
		}
		return emitted{fmt.Sprintf("optlib.FusedDepDir(p, %s, %s, %s, %s, %s)",
			sm.src, sn.src, l1.src, l2.src, dirSetLiteral(want)), cBool}, nil
	case "mem", "nmem":
		sv, err := g.expr(e.Args[0])
		if err != nil {
			return emitted{}, err
		}
		set, err := g.setExpr(e.Args[1])
		if err != nil {
			return emitted{}, err
		}
		call := fmt.Sprintf("optlib.Member(%s, %s)", set, sv.src)
		if e.Fn == "nmem" {
			call = "!" + call
		}
		return emitted{call, cBool}, nil
	case "operand":
		sv, err := g.expr(e.Args[0])
		if err != nil {
			return emitted{}, err
		}
		pv, err := g.expr(e.Args[1])
		if err != nil {
			return emitted{}, err
		}
		return emitted{fmt.Sprintf("optlib.Opr(%s, %s)", sv.src, pv.src), cOperand}, nil
	case "type":
		ov, err := g.expr(e.Args[0])
		if err != nil {
			return emitted{}, err
		}
		return emitted{fmt.Sprintf("optlib.OperandType(%s)", ov.src), cTypeLit}, nil
	case "itype":
		ov, err := g.expr(e.Args[0])
		if err != nil {
			return emitted{}, err
		}
		return emitted{fmt.Sprintf("optlib.IntTyped(p, %s)", ov.src), cBool}, nil
	case "trip":
		lv, err := g.expr(e.Args[0])
		if err != nil {
			return emitted{}, err
		}
		// Hoist trip into a prelude variable so the (value, ok) pair can
		// gate the condition.
		name := g.fresh("trip")
		g.line("%s, %sOK := optlib.Trip(%s)", name, name, lv.src)
		g.line("_ = %s", name)
		g.guards = append(g.guards, name+"OK")
		return emitted{name, cNum}, nil
	}
	return emitted{}, g.errf("function %q not supported in preconditions", e.Fn)
}

func (g *gen) binaryExpr(e gospel.Binary) (emitted, error) {
	switch e.Op {
	case "and", "or":
		l, err := g.boolExpr(e.L)
		if err != nil {
			return emitted{}, err
		}
		r, err := g.boolExpr(e.R)
		if err != nil {
			return emitted{}, err
		}
		op := "&&"
		if e.Op == "or" {
			op = "||"
		}
		return emitted{"(" + l + " " + op + " " + r + ")", cBool}, nil
	case "+", "-", "*", "/", "mod":
		l, err := g.expr(e.L)
		if err != nil {
			return emitted{}, err
		}
		r, err := g.expr(e.R)
		if err != nil {
			return emitted{}, err
		}
		if l.cat != cNum || r.cat != cNum {
			return emitted{}, g.errf("precondition arithmetic needs numeric operands")
		}
		op := e.Op
		if op == "mod" {
			op = "%"
		}
		return emitted{"(" + l.src + " " + op + " " + r.src + ")", cNum}, nil
	}
	// Relational comparison: dispatch on the operand categories.
	return g.compareExpr(e)
}

func (g *gen) compareExpr(e gospel.Binary) (emitted, error) {
	// opc/kind attribute against a literal or another opc/kind attribute.
	if attr, ok := e.L.(gospel.Attr); ok && (attr.Name == "opc" || attr.Name == "kind") {
		stmtSrc, err := g.opcBase(attr)
		if err != nil {
			return emitted{}, err
		}
		if e.Op != "==" && e.Op != "!=" {
			return emitted{}, g.errf("%s only compares with == or !=", attr.Name)
		}
		// Attribute-vs-attribute comparison (RAE's Sj.opc == Si.opc).
		if rattr, ok := e.R.(gospel.Attr); ok && (rattr.Name == "opc" || rattr.Name == "kind") {
			rSrc, err := g.opcBase(rattr)
			if err != nil {
				return emitted{}, err
			}
			lName, rName := accessorFor(attr.Name), accessorFor(rattr.Name)
			return emitted{fmt.Sprintf("(optlib.%s(%s) %s optlib.%s(%s))",
				lName, stmtSrc, e.Op, rName, rSrc), cBool}, nil
		}
		r, err := g.expr(e.R)
		if err != nil {
			return emitted{}, err
		}
		if r.cat != cOpcLit && r.cat != cKindLit {
			return emitted{}, g.errf("%s compares against a literal", attr.Name)
		}
		fn := "OpcIs"
		if attr.Name == "kind" {
			fn = "KindIs"
		}
		call := fmt.Sprintf("optlib.%s(%s, %s)", fn, stmtSrc, r.src)
		if e.Op == "!=" {
			call = "!" + call
		}
		return emitted{call, cBool}, nil
	}

	l, err := g.expr(e.L)
	if err != nil {
		return emitted{}, err
	}
	r, err := g.expr(e.R)
	if err != nil {
		return emitted{}, err
	}
	switch {
	case l.cat == cStmt && r.cat == cStmt:
		if e.Op == "==" || e.Op == "!=" {
			return emitted{"(" + l.src + " " + e.Op + " " + r.src + ")", cBool}, nil
		}
		// Program-order comparison.
		return emitted{fmt.Sprintf("(p.Index(%s) %s p.Index(%s))", l.src, e.Op, r.src), cBool}, nil
	case l.cat == cTypeLit || r.cat == cTypeLit:
		if e.Op != "==" && e.Op != "!=" {
			return emitted{}, g.errf("type literals only compare with == or !=")
		}
		return emitted{"(" + l.src + " " + e.Op + " " + r.src + ")", cBool}, nil
	case l.cat == cOperand && r.cat == cOperand:
		call := fmt.Sprintf("optlib.OperandEq(%s, %s)", l.src, r.src)
		switch e.Op {
		case "==":
			return emitted{call, cBool}, nil
		case "!=":
			return emitted{"!" + call, cBool}, nil
		}
		return emitted{}, g.errf("operands only compare with == or !=")
	case l.cat == cNum && r.cat == cNum:
		op := e.Op
		return emitted{"(" + l.src + " " + op + " " + r.src + ")", cBool}, nil
	case l.cat == cNum && r.cat == cOperand, l.cat == cOperand && r.cat == cNum:
		// Compare a position/number against a constant operand.
		opSrc, numSrc := l.src, r.src
		if l.cat == cNum {
			opSrc, numSrc = r.src, l.src
		}
		c := g.fresh("c")
		g.line("%s, %sOK := optlib.ConstInt(%s)", c, c, opSrc)
		g.guards = append(g.guards, c+"OK")
		return emitted{fmt.Sprintf("(%s %s int64(%s))", c, e.Op, numSrc), cBool}, nil
	}
	return emitted{}, g.errf("cannot compare these operands (%s %s)", e.L, e.R)
}

// opcBase resolves the statement expression an opc/kind attribute applies
// to (loops answer through their header).
func (g *gen) opcBase(attr gospel.Attr) (string, error) {
	base, err := g.expr(attr.Base)
	if err != nil {
		return "", err
	}
	switch base.cat {
	case cStmt:
		return base.src, nil
	case cLoop:
		return base.src + ".Head", nil
	}
	return "", g.errf("%s attribute of non-statement", attr.Name)
}

func accessorFor(attrName string) string {
	if attrName == "kind" {
		return "KindName"
	}
	return "OpcName"
}
