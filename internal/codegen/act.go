package codegen

import (
	"strings"

	"repro/internal/gospel"
)

// emitAct emits the actXXX function: the ACTION section translated into
// calls on the transformation primitives, taking the bound elements as
// parameters. Any primitive failure returns an error; the apply site rolls
// the program back.
func (g *gen) emitAct() error {
	name := g.spec.Name
	var params []string
	actSyms := map[string]sym{}
	for _, b := range g.bound {
		switch b.kind {
		case symStmt:
			params = append(params, ident(b.name)+" *ir.Stmt")
		case symLoop:
			params = append(params, ident(b.name)+" ir.Loop")
		case symPos:
			params = append(params, ident(b.name)+" int")
		case symSet:
			params = append(params, ident(b.name)+" []*ir.Stmt")
		}
		actSyms[b.name] = sym{b.kind, ident(b.name)}
	}
	g.syms = actSyms

	g.line("// act%s performs the ACTION section at one application point.", name)
	g.line("func act%s(p *ir.Program, %s) error {", name, strings.Join(params, ", "))
	g.indent++
	// Silence any parameters a particular action list does not touch.
	for _, b := range g.bound {
		g.line("_ = %s", ident(b.name))
	}
	if err := g.emitActions(g.spec.Actions); err != nil {
		return err
	}
	g.line("return nil")
	g.indent--
	g.line("}")
	return nil
}

func (g *gen) emitActions(actions []gospel.Action) error {
	for _, a := range actions {
		if err := g.emitAction(a); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) emitAction(a gospel.Action) error {
	switch a := a.(type) {
	case gospel.DeleteAction:
		t, err := g.expr(a.Target)
		if err != nil {
			return err
		}
		if t.cat != cStmt {
			return g.errf("delete target must be a statement")
		}
		g.line("// delete(%s)", a.Target)
		g.line("if p.Index(%s) < 0 {", t.src)
		g.line("\treturn optlib.ErrGone")
		g.line("}")
		g.line("p.Delete(%s)", t.src)
		return nil

	case gospel.MoveAction:
		src, err := g.expr(a.Src)
		if err != nil {
			return err
		}
		anchor, err := g.expr(a.After)
		if err != nil {
			return err
		}
		g.line("// move(%s, %s)", a.Src, a.After)
		g.line("if p.Index(%s) < 0 {", src.src)
		g.line("\treturn optlib.ErrGone")
		g.line("}")
		g.line("p.Move(%s, %s)", src.src, anchor.src)
		return nil

	case gospel.CopyAction:
		src, err := g.expr(a.Src)
		if err != nil {
			return err
		}
		anchor, err := g.expr(a.After)
		if err != nil {
			return err
		}
		g.line("// copy(%s, %s, %s)", a.Src, a.After, a.Name)
		g.line("%s := p.Copy(%s, %s)", ident(a.Name), src.src, anchor.src)
		g.syms[a.Name] = sym{symStmt, ident(a.Name)}
		return nil

	case gospel.AddAction:
		anchor, err := g.expr(a.After)
		if err != nil {
			return err
		}
		desc, err := g.expr(a.Desc)
		if err != nil {
			return err
		}
		if desc.cat != cStmt {
			return g.errf("add description must evaluate to a statement template")
		}
		g.line("// add(%s, %s, %s)", a.After, a.Desc, a.Name)
		g.line("%s := p.InsertAfter(%s, ir.CloneStmt(%s))", ident(a.Name), anchor.src, desc.src)
		g.syms[a.Name] = sym{symStmt, ident(a.Name)}
		return nil

	case gospel.ModifyAction:
		return g.emitModify(a)

	case gospel.ForallAction:
		set, err := g.setExpr(a.Set)
		if err != nil {
			return err
		}
		snap := g.fresh("set")
		g.line("// forall %s in %s", a.Var, a.Set)
		g.line("%s := append([]*ir.Stmt{}, %s...)", snap, set)
		g.line("for _, %s := range %s {", ident(a.Var), snap)
		g.indent++
		g.line("if p.Index(%s) < 0 {", ident(a.Var))
		g.line("\tcontinue")
		g.line("}")
		g.syms[a.Var] = sym{symStmt, ident(a.Var)}
		if err := g.emitActions(a.Body); err != nil {
			return err
		}
		g.indent--
		g.line("}")
		delete(g.syms, a.Var)
		return nil
	}
	return g.errf("unsupported action")
}

// emitModify translates the overloaded Modify primitive.
func (g *gen) emitModify(a gospel.ModifyAction) error {
	g.line("// modify(%s, %s)", a.Target, a.Value)

	// Whole-statement substitution: modify(S, subst(v, expr)).
	if call, ok := a.Value.(gospel.Call); ok && call.Fn == "subst" {
		t, err := g.expr(a.Target)
		if err != nil {
			return err
		}
		if t.cat != cStmt {
			return g.errf("subst target must be a statement")
		}
		varSrc, err := g.lcvName(call.Args[0])
		if err != nil {
			return err
		}
		replSrc, err := g.linearize(call.Args[1])
		if err != nil {
			return err
		}
		g.line("if err := optlib.SubstStmt(%s, %s, %s); err != nil {", t.src, varSrc, replSrc)
		g.line("\treturn err")
		g.line("}")
		return nil
	}

	// Opcode / loop-kind modification: the value is a literal.
	if tgt, ok := a.Target.(gospel.Attr); ok && (tgt.Name == "opc" || tgt.Name == "kind") {
		base, err := g.expr(tgt.Base)
		if err != nil {
			return err
		}
		stmtSrc := base.src
		if base.cat == cLoop {
			stmtSrc += ".Head"
		}
		lit, err := litName(a.Value)
		if err != nil {
			return g.errf("opcode modification needs a literal value: %v", err)
		}
		g.line("if err := optlib.ModifyOpc(%s, %q); err != nil {", stmtSrc, lit)
		g.line("\treturn err")
		g.line("}")
		return nil
	}

	// Operand modification.
	stmtSrc, slot, err := g.operandLvalue(a.Target)
	if err != nil {
		return err
	}
	valSrc, err := g.operandValue(a.Value)
	if err != nil {
		return err
	}
	g.line("if err := optlib.ModifyOperand(%s, %s, %s); err != nil {", stmtSrc, slot, valSrc)
	g.line("\treturn err")
	g.line("}")
	return nil
}

// operandLvalue resolves a modify target to (statement expression, slot).
func (g *gen) operandLvalue(target gospel.Expr) (string, string, error) {
	switch t := target.(type) {
	case gospel.Call:
		if t.Fn != "operand" || len(t.Args) != 2 {
			return "", "", g.errf("modify target call must be operand(S, pos)")
		}
		sv, err := g.expr(t.Args[0])
		if err != nil {
			return "", "", err
		}
		pv, err := g.expr(t.Args[1])
		if err != nil {
			return "", "", err
		}
		return sv.src, pv.src, nil
	case gospel.Attr:
		base, err := g.expr(t.Base)
		if err != nil {
			return "", "", err
		}
		stmtSrc := base.src
		if base.cat == cLoop {
			stmtSrc += ".Head"
		} else if base.cat != cStmt {
			return "", "", g.errf("modify target base must be a statement or loop")
		}
		switch t.Name {
		case "opr_1", "init":
			return stmtSrc, "1", nil
		case "opr_2", "final":
			return stmtSrc, "2", nil
		case "opr_3", "step":
			return stmtSrc, "3", nil
		}
		return "", "", g.errf("cannot assign attribute %q", t.Name)
	}
	return "", "", g.errf("unsupported modify target")
}

// operandValue translates a modify value into an ir.Operand expression,
// hoisting eval(...) computations with error checks.
func (g *gen) operandValue(value gospel.Expr) (string, error) {
	if call, ok := value.(gospel.Call); ok && call.Fn == "eval" {
		return g.emitEval(call.Args[0])
	}
	v, err := g.expr(value)
	if err != nil {
		return "", err
	}
	switch v.cat {
	case cOperand:
		return v.src, nil
	case cNum:
		return "ir.IntOp(int64(" + v.src + "))", nil
	}
	return "", g.errf("modify value must be an operand or number")
}

// emitEval hoists an eval(...) computation: eval(S) folds a statement,
// eval(a op b) folds constant operands. Nested arithmetic hoists each
// sub-expression.
func (g *gen) emitEval(arg gospel.Expr) (string, error) {
	name := g.fresh("ev")
	if bin, ok := arg.(gospel.Binary); ok {
		l, err := g.emitEvalArg(bin.L)
		if err != nil {
			return "", err
		}
		r, err := g.emitEvalArg(bin.R)
		if err != nil {
			return "", err
		}
		g.line("%s, %sOK := optlib.EvalArith(%q, %s, %s)", name, name, bin.Op, l, r)
	} else {
		v, err := g.expr(arg)
		if err != nil {
			return "", err
		}
		switch v.cat {
		case cStmt:
			g.line("%s, %sOK := optlib.EvalStmt(%s)", name, name, v.src)
		case cOperand:
			return v.src, nil
		default:
			return "", g.errf("eval() argument must be a statement or arithmetic expression")
		}
	}
	g.line("if !%sOK {", name)
	g.line("\treturn optlib.ErrNotConst")
	g.line("}")
	return name, nil
}

// emitEvalArg resolves one operand of an eval arithmetic expression,
// recursing into nested arithmetic.
func (g *gen) emitEvalArg(e gospel.Expr) (string, error) {
	if _, ok := e.(gospel.Binary); ok {
		return g.emitEval(e)
	}
	return g.operandValue(e)
}

// lcvName extracts the substituted variable's name expression from the
// first subst argument (an L.lcv attribute or a bound operand).
func (g *gen) lcvName(arg gospel.Expr) (string, error) {
	if attr, ok := arg.(gospel.Attr); ok && attr.Name == "lcv" {
		base, err := g.expr(attr.Base)
		if err != nil {
			return "", err
		}
		if base.cat != cLoop {
			return "", g.errf("lcv of non-loop")
		}
		return base.src + ".LCV()", nil
	}
	return "", g.errf("subst variable must be a loop's lcv")
}

// linearize emits an ir.LinExpr expression for a subst replacement,
// hoisting constant extractions.
func (g *gen) linearize(e gospel.Expr) (string, error) {
	switch e := e.(type) {
	case gospel.Num:
		return "optlib.LinConst(" + e.Text + ")", nil
	case gospel.Binary:
		l, err := g.linearize(e.L)
		if err != nil {
			return "", err
		}
		r, err := g.linearize(e.R)
		if err != nil {
			return "", err
		}
		switch e.Op {
		case "+":
			return "optlib.LinAdd(" + l + ", " + r + ")", nil
		case "-":
			return "optlib.LinSub(" + l + ", " + r + ")", nil
		case "*":
			name := g.fresh("lm")
			g.line("%s, %sOK := optlib.LinMul(%s, %s)", name, name, l, r)
			g.line("if !%sOK {", name)
			g.line("	return optlib.ErrNotConst")
			g.line("}")
			return name, nil
		}
		return "", g.errf("substitution expressions support +, - and constant *")
	case gospel.Attr:
		if e.Name == "lcv" {
			base, err := g.expr(e.Base)
			if err != nil {
				return "", err
			}
			return "optlib.LinVar(" + base.src + ".LCV())", nil
		}
		// Operand-valued attribute: must be constant at apply time.
		v, err := g.expr(e)
		if err != nil {
			return "", err
		}
		if v.cat != cOperand {
			return "", g.errf("cannot linearize %s", e)
		}
		name := g.fresh("k")
		g.line("%s, %sOK := optlib.ConstInt(%s)", name, name, v.src)
		g.line("if !%sOK {", name)
		g.line("\treturn optlib.ErrNotConst")
		g.line("}")
		return "optlib.LinConst(" + name + ")", nil
	case gospel.Call:
		if e.Fn == "eval" {
			opSrc, err := g.emitEval(e.Args[0])
			if err != nil {
				return "", err
			}
			name := g.fresh("k")
			g.line("%s, %sOK := optlib.ConstInt(%s)", name, name, opSrc)
			g.line("if !%sOK {", name)
			g.line("\treturn optlib.ErrNotConst")
			g.line("}")
			return "optlib.LinConst(" + name + ")", nil
		}
	}
	return "", g.errf("unsupported substitution expression")
}

// litName extracts a literal name from a value expression.
func litName(e gospel.Expr) (string, error) {
	switch e := e.(type) {
	case gospel.Lit:
		return e.Name, nil
	case gospel.Ident:
		if _, ok := literalCats[e.Name]; ok {
			return e.Name, nil
		}
	}
	return "", &gospel.Error{Msg: "not a literal"}
}
