package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/par"
)

// Runner executes one job attempt. It must honour ctx — cancellation is how
// both job cancel and graceful drain interrupt a running job. A nil error
// completes the job with result; an error marked Permanent fails it
// immediately; any other error consumes a retry.
type Runner func(ctx context.Context, j *Job) (json.RawMessage, error)

// Obs is the manager's observability surface: optional callbacks invoked
// under the manager lock (keep them cheap — counter bumps, histogram
// observes). from is "" for a freshly submitted job.
type Obs struct {
	StateChange func(from, to State)
	Submitted   func(deduped bool)
	Retried     func()
	// Finished fires once per job reaching a terminal state, with the
	// enqueue→terminal latency.
	Finished func(final State, latency time.Duration)
	// Completed fires once per job reaching StateDone, with the job
	// snapshot (Payload and Result populated). Like every Obs callback it
	// runs under the manager lock: consumers must only enqueue — the
	// advisor harvest hands the snapshot to a worker goroutine.
	Completed func(j *Job)
}

// Config tunes a Manager. The zero value selects an in-memory (non-durable)
// queue with production defaults.
type Config struct {
	// Dir holds the write-ahead log; empty selects a memory-only queue
	// (state does not survive restart — tests and ephemeral servers).
	Dir string
	// Workers bounds concurrently running jobs; <1 selects GOMAXPROCS.
	Workers int
	// MaxRetries is the default re-run budget after a job's first attempt;
	// negative selects 2. Per-job values override it.
	MaxRetries int
	// RetryBase and RetryCap shape the exponential backoff (defaults
	// 250ms and 30s).
	RetryBase time.Duration
	RetryCap  time.Duration
	// Timeout bounds each attempt; 0 means only per-job deadlines apply.
	Timeout time.Duration
	// KeepTerminal bounds retained finished jobs (results live there);
	// <1 selects 1024. The oldest terminal jobs are evicted first.
	KeepTerminal int
	// NoSync skips the per-append fsync (benchmarks only).
	NoSync bool
	// Obs receives lifecycle callbacks.
	Obs Obs
}

func (c Config) withDefaults() Config {
	if c.MaxRetries < 0 {
		c.MaxRetries = 2
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 250 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 30 * time.Second
	}
	if c.KeepTerminal < 1 {
		c.KeepTerminal = 1024
	}
	return c
}

// Manager owns the job table, the WAL and the worker pool. All mutation
// goes through its lock; the WAL is appended to under that lock so the log
// order equals the state-transition order.
type Manager struct {
	cfg     Config
	runner  Runner
	limiter *par.Limiter

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu        sync.Mutex
	wal       *WAL
	jobs      map[string]*Job
	byKey     map[string]string // idempotency key → job ID
	doneCh    map[string]chan struct{}
	cancelReq map[string]bool
	running   map[string]context.CancelFunc
	nextSeq   uint64
	closed    bool

	wake           chan struct{}
	dispatcherDone chan struct{}
	wg             sync.WaitGroup // running job goroutines
}

// New opens (and replays) the WAL under cfg.Dir, requeues jobs that were
// running at crash time, and starts the dispatcher.
func New(runner Runner, cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:            cfg,
		runner:         runner,
		limiter:        par.NewLimiter(cfg.Workers),
		jobs:           map[string]*Job{},
		byKey:          map[string]string{},
		doneCh:         map[string]chan struct{}{},
		cancelReq:      map[string]bool{},
		running:        map[string]context.CancelFunc{},
		wake:           make(chan struct{}, 1),
		dispatcherDone: make(chan struct{}),
	}
	m.baseCtx, m.baseCancel = context.WithCancel(context.Background())
	if cfg.Dir != "" {
		wal, records, err := OpenWAL(filepath.Join(cfg.Dir, "jobs.wal"), cfg.NoSync)
		if err != nil {
			return nil, err
		}
		m.wal = wal
		for _, j := range records { // latest record per job wins
			m.jobs[j.ID] = j
		}
		for _, j := range m.jobs {
			if j.Seq >= m.nextSeq {
				m.nextSeq = j.Seq + 1
			}
			// A job caught mid-run by the crash goes back to queued; its
			// attempt counter stays, so the re-run is a fresh attempt
			// number and no attempt's action phase ever executes twice.
			if j.State == StateRunning {
				j.State = StateQueued
				j.NextRunAt = time.Time{}
			}
			if !j.Terminal() {
				m.doneCh[j.ID] = make(chan struct{})
			}
			if prev, ok := m.byKey[j.Key]; !ok || m.jobs[prev].Seq < j.Seq {
				m.byKey[j.Key] = j.ID
			}
		}
		// Startup compaction: the replayed log may carry one record per
		// historical transition; rewrite it as one per live job.
		if err := m.compactLocked(); err != nil {
			wal.Close()
			return nil, err
		}
	}
	go m.dispatch()
	return m, nil
}

// compactLocked rewrites the WAL from the in-memory table (mu held or
// manager not yet shared).
func (m *Manager) compactLocked() error {
	if m.wal == nil {
		return nil
	}
	live := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		live = append(live, j)
	}
	sort.Slice(live, func(a, b int) bool { return live[a].Seq < live[b].Seq })
	return m.wal.Compact(live)
}

// appendLocked journals j's current state (mu held). Append failures are
// surfaced to submitters but tolerated on internal transitions: the
// in-memory state machine keeps going and the next successful append or
// compaction re-establishes durability.
func (m *Manager) appendLocked(j *Job) error {
	if m.wal == nil {
		return nil
	}
	if err := m.wal.Append(j); err != nil {
		return err
	}
	if m.wal.Appends() > 64+4*len(m.jobs) {
		return m.compactLocked()
	}
	return nil
}

// transitionLocked moves j to state, journals it, and fires observability
// callbacks (mu held).
func (m *Manager) transitionLocked(j *Job, to State) {
	from := j.State
	j.State = to
	_ = m.appendLocked(j)
	if m.cfg.Obs.StateChange != nil {
		m.cfg.Obs.StateChange(from, to)
	}
	if to.Terminal() {
		j.FinishedAt = time.Now()
		if ch, ok := m.doneCh[j.ID]; ok {
			close(ch)
			delete(m.doneCh, j.ID)
		}
		delete(m.cancelReq, j.ID)
		if m.cfg.Obs.Finished != nil {
			m.cfg.Obs.Finished(to, j.FinishedAt.Sub(j.SubmittedAt))
		}
		if to == StateDone && m.cfg.Obs.Completed != nil {
			m.cfg.Obs.Completed(j.clone())
		}
		m.evictTerminalLocked()
	}
}

// evictTerminalLocked enforces the terminal-job retention bound (mu held).
func (m *Manager) evictTerminalLocked() {
	var term []*Job
	for _, j := range m.jobs {
		if j.Terminal() {
			term = append(term, j)
		}
	}
	if len(term) <= m.cfg.KeepTerminal {
		return
	}
	sort.Slice(term, func(a, b int) bool { return term[a].Seq < term[b].Seq })
	for _, j := range term[:len(term)-m.cfg.KeepTerminal] {
		delete(m.jobs, j.ID)
		if m.byKey[j.Key] == j.ID {
			delete(m.byKey, j.Key)
		}
	}
}

func newJobID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: id entropy unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// SubmitRequest describes one job submission.
type SubmitRequest struct {
	// ID, when non-empty, fixes the new job's identity; "" selects a
	// random one. Owner-aware submission derives the ID from the content
	// key, so every node of a sharded deployment maps the ID to the same
	// owner. An ID held by a live (non-terminal) job under a different key
	// rejects the submission with ErrIDInUse; a cancelled holder is
	// superseded in place.
	ID string
	// Key is the idempotency key; "" disables deduplication.
	Key      string
	Payload  json.RawMessage
	Priority Priority
	// MaxRetries overrides the manager default when >= 0.
	MaxRetries int
	// Deadline, when non-zero, fails the job once passed.
	Deadline time.Time
	// TraceID and TraceParent are the submitter's distributed-trace context
	// (see Job); empty on untraced submissions.
	TraceID     string
	TraceParent string
}

// Submit enqueues a job (or returns the existing one for a known key;
// existing is true in that case). Cancelled jobs do not block
// resubmission: a new job is queued and takes over the key.
func (m *Manager) Submit(req SubmitRequest) (j *Job, existing bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, ErrClosed
	}
	if req.Key != "" {
		if id, ok := m.byKey[req.Key]; ok {
			if prior := m.jobs[id]; prior != nil && prior.State != StateCancelled {
				if m.cfg.Obs.Submitted != nil {
					m.cfg.Obs.Submitted(true)
				}
				return prior.clone(), true, nil
			}
		}
	}
	id := req.ID
	if id == "" {
		id = newJobID()
	}
	if prior := m.jobs[id]; prior != nil {
		// A deterministic (content-derived) ID can legitimately collide
		// with a terminal holder: a cancelled job does not dedup by key
		// (resubmission is allowed to take the key over), and done/failed
		// holders were already returned by the key check above. The new
		// record supersedes the old one in place — the WAL's full-record
		// upsert makes replay agree.
		if !prior.Terminal() {
			return nil, false, fmt.Errorf("%w: job %s is %s", ErrIDInUse, id, prior.State)
		}
		if m.byKey[prior.Key] == prior.ID {
			delete(m.byKey, prior.Key)
		}
	}
	retries := m.cfg.MaxRetries
	if req.MaxRetries >= 0 {
		retries = req.MaxRetries
	}
	nj := &Job{
		ID:          id,
		Seq:         m.nextSeq,
		Key:         req.Key,
		Payload:     req.Payload,
		Priority:    req.Priority,
		State:       StateQueued,
		MaxRetries:  retries,
		SubmittedAt: time.Now(),
		Deadline:    req.Deadline,
		TraceID:     req.TraceID,
		TraceParent: req.TraceParent,
	}
	m.nextSeq++
	m.jobs[nj.ID] = nj
	if nj.Key != "" {
		m.byKey[nj.Key] = nj.ID
	}
	m.doneCh[nj.ID] = make(chan struct{})
	if err := m.appendLocked(nj); err != nil {
		// Could not make the accepted job durable: refuse it.
		delete(m.jobs, nj.ID)
		if nj.Key != "" {
			delete(m.byKey, nj.Key)
		}
		delete(m.doneCh, nj.ID)
		return nil, false, err
	}
	if m.cfg.Obs.Submitted != nil {
		m.cfg.Obs.Submitted(false)
	}
	if m.cfg.Obs.StateChange != nil {
		m.cfg.Obs.StateChange("", StateQueued)
	}
	m.signal()
	return nj.clone(), false, nil
}

// Get returns a snapshot of the job.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, false
	}
	return j.clone(), true
}

// List returns up to limit jobs newest-first, optionally filtered by
// state, starting strictly below beforeSeq (0 means from the newest). The
// returned next cursor is non-zero when more jobs remain.
func (m *Manager) List(state State, limit int, beforeSeq uint64) (page []*Job, next uint64) {
	if limit < 1 {
		limit = 50
	}
	m.mu.Lock()
	all := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		if state != "" && j.State != state {
			continue
		}
		if beforeSeq != 0 && j.Seq >= beforeSeq {
			continue
		}
		all = append(all, j.clone())
	}
	m.mu.Unlock()
	sort.Slice(all, func(a, b int) bool { return all[a].Seq > all[b].Seq })
	if len(all) > limit {
		// Cursor is the last returned job's Seq; the next page continues
		// strictly below it.
		return all[:limit], all[limit-1].Seq
	}
	return all, 0
}

// Cancel requests cancellation: a queued job becomes cancelled
// immediately; a running job has its context cancelled and reaches
// cancelled when its runner returns. The snapshot reflects the state at
// return time.
func (m *Manager) Cancel(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	if j.Terminal() {
		return j.clone(), ErrTerminal
	}
	if j.State == StateQueued {
		j.LastError = "cancelled"
		m.transitionLocked(j, StateCancelled)
		return j.clone(), nil
	}
	// Running: flag it and interrupt the attempt.
	m.cancelReq[id] = true
	if cancel, ok := m.running[id]; ok {
		cancel()
	}
	return j.clone(), nil
}

// Wait blocks until the job reaches a terminal state (or ctx ends) and
// returns its final snapshot.
func (m *Manager) Wait(ctx context.Context, id string) (*Job, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	if j.Terminal() {
		c := j.clone()
		m.mu.Unlock()
		return c, nil
	}
	ch := m.doneCh[id]
	m.mu.Unlock()
	select {
	case <-ch:
		return m.mustGet(id), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (m *Manager) mustGet(id string) *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		return j.clone()
	}
	// Evicted between close(ch) and the read: report a minimal tombstone.
	return &Job{ID: id, State: StateDone}
}

// Depths reports the queued and running job counts (live gauges).
func (m *Manager) Depths() (queued, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		switch j.State {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
	}
	return queued, running
}

// signal nudges the dispatcher without blocking.
func (m *Manager) signal() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// dispatch is the scheduler loop: pick the best eligible queued job
// (priority class, then backoff gate, then submission order), bound
// concurrency with the limiter, and hand the job to a worker goroutine.
func (m *Manager) dispatch() {
	defer close(m.dispatcherDone)
	for {
		// Hold a worker slot before scanning, so a picked job starts
		// immediately; give it back when nothing is ready.
		if err := m.limiter.Acquire(m.baseCtx); err != nil {
			return
		}
		j, wait := m.pick()
		if j == nil {
			m.limiter.Release()
			var timer <-chan time.Time
			if wait > 0 {
				t := time.NewTimer(wait)
				timer = t.C
				select {
				case <-m.baseCtx.Done():
					t.Stop()
					return
				case <-m.wake:
					t.Stop()
				case <-timer:
				}
				continue
			}
			select {
			case <-m.baseCtx.Done():
				return
			case <-m.wake:
			}
			continue
		}
		m.wg.Add(1)
		go m.run(j)
	}
}

// pick selects and claims the next runnable job, or returns how long until
// one could become runnable (0 = indefinitely). Jobs whose deadline passed
// while queued are failed here.
func (m *Manager) pick() (*Job, time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	var best *Job
	var nearest time.Duration
	for _, j := range m.jobs {
		if j.State != StateQueued {
			continue
		}
		if !j.Deadline.IsZero() && now.After(j.Deadline) {
			j.LastError = "job deadline exceeded while queued"
			m.transitionLocked(j, StateFailed)
			continue
		}
		if j.NextRunAt.After(now) {
			if d := j.NextRunAt.Sub(now); nearest == 0 || d < nearest {
				nearest = d
			}
			continue
		}
		if best == nil || j.Priority < best.Priority ||
			(j.Priority == best.Priority && j.Seq < best.Seq) {
			best = j
		}
	}
	if best == nil {
		return nil, nearest
	}
	best.Attempts++
	best.StartedAt = now
	best.NextRunAt = time.Time{}
	ctx, cancel := context.WithCancel(m.baseCtx)
	m.running[best.ID] = cancel
	m.transitionLocked(best, StateRunning)
	// The worker needs the attempt context; stash it via closure instead
	// of the job (which is WAL-serialized).
	best = best.clone()
	best.runCtx = ctx
	return best, 0
}

// run executes one attempt and applies the resulting transition.
func (m *Manager) run(snapshot *Job) {
	defer m.wg.Done()
	defer m.limiter.Release()
	ctx := snapshot.runCtx
	cancelFns := []context.CancelFunc{}
	if m.cfg.Timeout > 0 {
		var c context.CancelFunc
		ctx, c = context.WithTimeout(ctx, m.cfg.Timeout)
		cancelFns = append(cancelFns, c)
	}
	if !snapshot.Deadline.IsZero() {
		var c context.CancelFunc
		ctx, c = context.WithDeadline(ctx, snapshot.Deadline)
		cancelFns = append(cancelFns, c)
	}
	result, err := m.runner(ctx, snapshot)
	for _, c := range cancelFns {
		c()
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if cancel, ok := m.running[snapshot.ID]; ok {
		cancel()
		delete(m.running, snapshot.ID)
	}
	j, ok := m.jobs[snapshot.ID]
	if !ok || j.State != StateRunning {
		return // cancelled-and-evicted race; nothing to record
	}
	wasCancelled := m.cancelReq[j.ID]
	now := time.Now()
	switch {
	case err == nil:
		j.Result = result
		j.LastError = ""
		m.transitionLocked(j, StateDone)
	case wasCancelled:
		j.LastError = "cancelled"
		m.transitionLocked(j, StateCancelled)
	case m.closed && ctx.Err() != nil && (j.Deadline.IsZero() || now.Before(j.Deadline)):
		// Graceful drain interrupted the attempt: checkpoint the job back
		// to queued so a restart re-runs it (as a fresh attempt). The
		// interruption does not consume a retry.
		j.LastError = ""
		j.NextRunAt = time.Time{}
		m.transitionLocked(j, StateQueued)
	case !j.Deadline.IsZero() && !now.Before(j.Deadline):
		j.LastError = fmt.Sprintf("job deadline exceeded: %v", err)
		m.transitionLocked(j, StateFailed)
	case IsPermanent(err):
		j.LastError = err.Error()
		m.transitionLocked(j, StateFailed)
	case j.Attempts <= j.MaxRetries:
		j.LastError = err.Error()
		j.NextRunAt = now.Add(backoff(m.cfg.RetryBase, m.cfg.RetryCap, j.Attempts))
		if m.cfg.Obs.Retried != nil {
			m.cfg.Obs.Retried()
		}
		m.transitionLocked(j, StateQueued)
		m.signal()
	default:
		j.LastError = fmt.Sprintf("%v (after %d attempts)", err, j.Attempts)
		m.transitionLocked(j, StateFailed)
	}
}

// Close drains the manager: submissions are refused, the dispatcher stops,
// running jobs are interrupted and checkpointed back to queued (the WAL
// re-runs them on restart), and the WAL is closed. Close returns ctx.Err()
// if workers did not settle in time.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()

	m.baseCancel() // stops dispatcher, interrupts every running attempt
	<-m.dispatcherDone
	settled := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(settled)
	}()
	var err error
	select {
	case <-settled:
	case <-ctx.Done():
		err = ctx.Err()
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.wal != nil {
		_ = m.compactLocked()
		_ = m.wal.Close()
		m.wal = nil
	}
	return err
}
