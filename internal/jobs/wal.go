package jobs

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// The write-ahead log is a flat file of self-delimiting frames:
//
//	| length uint32 LE | crc32(payload) uint32 LE | payload (JSON Job) |
//
// Every record is a full upsert of one job's state, so replay is
// latest-record-wins per job ID and needs no cross-record reasoning. A
// record is durable once Append returns (the file is fsynced unless the
// WAL was opened with nosync). Replay stops at the first frame that does
// not check out — short header, short payload, CRC mismatch, absurd
// length — which is exactly the shape a kill -9 mid-write leaves behind;
// OpenWAL then truncates the file to the last good frame so subsequent
// appends extend a clean log.
//
// Compaction rewrites the log as one record per live job into a temp file
// and atomically renames it over the log, bounding file growth to
// O(live jobs) instead of O(total transitions).

const (
	// FrameHeader is the size of the length+CRC preamble of every frame.
	FrameHeader = 8
	// MaxFrame rejects absurd lengths during replay so a corrupt
	// header cannot trigger a giant allocation.
	MaxFrame = 64 << 20
)

// EncodeFrame wraps payload in the WAL's self-delimiting frame:
// length-prefixed, CRC-checked, ready to append to a record log. The
// framing is payload-agnostic so other append-only stores (the advisor's
// outcome log) share the exact torn-tail semantics the jobs WAL is
// torture-tested for.
func EncodeFrame(payload []byte) []byte {
	frame := make([]byte, FrameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[FrameHeader:], payload)
	return frame
}

// ReplayFrames decodes frames from r until EOF or the first bad frame,
// calling fn with each whole payload. It returns the byte offset of the end
// of the last good frame — the truncation point that leaves only whole
// records. A torn or corrupt tail is not an error (it is the expected
// residue of a crash); err is non-nil only for real I/O failures. fn may
// return false to treat the record as corrupt and stop (an undecodable
// payload is equivalent to a torn one).
func ReplayFrames(r io.Reader, fn func(payload []byte) bool) (good int64, err error) {
	var hdr [FrameHeader]byte
	for {
		if _, rerr := io.ReadFull(r, hdr[:]); rerr != nil {
			if errors.Is(rerr, io.EOF) || errors.Is(rerr, io.ErrUnexpectedEOF) {
				return good, nil // clean end or torn header
			}
			return good, fmt.Errorf("jobs: wal read: %w", rerr)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > MaxFrame {
			return good, nil // corrupt length: treat as tail
		}
		payload := make([]byte, length)
		if _, rerr := io.ReadFull(r, payload); rerr != nil {
			if errors.Is(rerr, io.EOF) || errors.Is(rerr, io.ErrUnexpectedEOF) {
				return good, nil // torn payload
			}
			return good, fmt.Errorf("jobs: wal read: %w", rerr)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return good, nil // bit rot or torn write: stop here
		}
		if !fn(payload) {
			return good, nil // CRC passed but shape didn't: stop
		}
		good += int64(FrameHeader) + int64(length)
	}
}

// WAL is the append-only job log. Methods are not safe for concurrent use;
// the Manager serializes access under its own lock.
type WAL struct {
	f       *os.File
	path    string
	size    int64
	appends int // records appended since open/compact
	nosync  bool
}

// OpenWAL opens (creating if absent) the log at path, replays it, and
// truncates any bad tail. It returns the replayed records in append order
// (latest record per job last). nosync skips the per-append fsync —
// benchmarks only; durability requires the default.
func OpenWAL(path string, nosync bool) (*WAL, []*Job, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("jobs: wal dir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: wal open: %w", err)
	}
	records, good, err := Replay(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Drop the torn tail (if any) so appends extend a clean log.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("jobs: wal truncate: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("jobs: wal seek: %w", err)
	}
	return &WAL{f: f, path: path, size: good, nosync: nosync}, records, nil
}

// Replay decodes frames from r until EOF or the first bad frame, returning
// the decoded jobs in order and the byte offset of the end of the last
// good frame. A bad tail is not an error — it is the expected residue of a
// crash — so err is non-nil only for real I/O failures.
func Replay(r io.Reader) (records []*Job, good int64, err error) {
	good, err = ReplayFrames(r, func(payload []byte) bool {
		var j Job
		if jerr := json.Unmarshal(payload, &j); jerr != nil {
			return false
		}
		records = append(records, &j)
		return true
	})
	return records, good, err
}

// Append writes one job-state record and (by default) fsyncs.
func (w *WAL) Append(j *Job) error {
	payload, err := json.Marshal(j)
	if err != nil {
		return fmt.Errorf("jobs: wal marshal: %w", err)
	}
	frame := EncodeFrame(payload)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("jobs: wal append: %w", err)
	}
	if !w.nosync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("jobs: wal sync: %w", err)
		}
	}
	w.size += int64(len(frame))
	w.appends++
	return nil
}

// Appends reports records appended since open or the last compaction.
func (w *WAL) Appends() int { return w.appends }

// Size reports the current log size in bytes.
func (w *WAL) Size() int64 { return w.size }

// Compact atomically replaces the log with one record per job in live
// (callers pass jobs in Seq order so replay reproduces submission order).
func (w *WAL) Compact(live []*Job) error {
	tmp := w.path + ".compact"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: wal compact: %w", err)
	}
	nw := &WAL{f: nf, path: tmp, nosync: true}
	for _, j := range live {
		if err := nw.Append(j); err != nil {
			nf.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("jobs: wal compact sync: %w", err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("jobs: wal compact rename: %w", err)
	}
	// Make the rename durable before abandoning the old inode.
	if dir, derr := os.Open(filepath.Dir(w.path)); derr == nil {
		_ = dir.Sync()
		dir.Close()
	}
	old := w.f
	w.f = nf
	w.size = nw.size
	w.appends = 0
	old.Close()
	return nil
}

// Close releases the log file.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
