package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testRunner scripts attempt outcomes by idempotency key (so tests can
// install the script before submitting) and records every (job, attempt)
// pair it executes.
type testRunner struct {
	mu       sync.Mutex
	attempts []string // "id/attempt" in execution order
	fail     map[string]int
	perm     map[string]bool
	block    map[string]chan struct{} // runner waits here until closed
	started  chan string              // receives job ID at attempt start
}

func newTestRunner() *testRunner {
	return &testRunner{
		fail:    map[string]int{},
		perm:    map[string]bool{},
		block:   map[string]chan struct{}{},
		started: make(chan string, 64),
	}
}

func (r *testRunner) run(ctx context.Context, j *Job) (json.RawMessage, error) {
	r.mu.Lock()
	r.attempts = append(r.attempts, fmt.Sprintf("%s/%d", j.ID, j.Attempts))
	failures := r.fail[j.Key]
	if failures > 0 {
		r.fail[j.Key] = failures - 1
	}
	perm := r.perm[j.Key]
	blocker := r.block[j.Key]
	r.mu.Unlock()
	select {
	case r.started <- j.ID:
	default:
	}
	if blocker != nil {
		select {
		case <-blocker:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if perm {
		return nil, Permanent(errors.New("unfixable"))
	}
	if failures > 0 {
		return nil, errors.New("transient")
	}
	return json.RawMessage(fmt.Sprintf(`{"echo":%q}`, j.ID)), nil
}

func (r *testRunner) attemptList() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.attempts...)
}

func fastCfg(dir string) Config {
	return Config{
		Dir:        dir,
		Workers:    2,
		MaxRetries: 2,
		RetryBase:  2 * time.Millisecond,
		RetryCap:   10 * time.Millisecond,
	}
}

func waitState(t *testing.T, m *Manager, id string, want State) *Job {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if want.Terminal() {
		j, err := m.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if j.State != want {
			t.Fatalf("job %s finished %s (last error %q), want %s", id, j.State, j.LastError, want)
		}
		return j
	}
	for {
		j, ok := m.Get(id)
		if ok && j.State == want {
			return j
		}
		select {
		case <-ctx.Done():
			t.Fatalf("job %s never reached %s", id, want)
		case <-time.After(time.Millisecond):
		}
	}
}

func TestSubmitRunsToDone(t *testing.T) {
	r := newTestRunner()
	m, err := New(r.run, fastCfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	j, existing, err := m.Submit(SubmitRequest{Key: "k1", Payload: []byte(`{}`), MaxRetries: -1})
	if err != nil || existing {
		t.Fatalf("submit: %v existing=%v", err, existing)
	}
	fin := waitState(t, m, j.ID, StateDone)
	if fin.Attempts != 1 || len(fin.Result) == 0 {
		t.Fatalf("done job: attempts=%d result=%s", fin.Attempts, fin.Result)
	}
	if fin.FinishedAt.Before(fin.SubmittedAt) {
		t.Fatalf("bad timestamps: %v vs %v", fin.SubmittedAt, fin.FinishedAt)
	}
}

func TestRetryBackoffThenSuccess(t *testing.T) {
	r := newTestRunner()
	r.fail["k"] = 2 // first two attempts fail, third succeeds
	var retried atomic.Int64
	cfg := fastCfg(t.TempDir())
	cfg.Obs.Retried = func() { retried.Add(1) }
	m, err := New(r.run, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	j, _, err := m.Submit(SubmitRequest{Key: "k", Payload: []byte(`{}`), MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, m, j.ID, StateDone)
	if fin.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", fin.Attempts)
	}
	if got := retried.Load(); got != 2 {
		t.Fatalf("retried callback = %d, want 2", got)
	}
	// Attempt numbers must be unique and ordered: no attempt re-executed.
	want := []string{j.ID + "/1", j.ID + "/2", j.ID + "/3"}
	got := r.attemptList()
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("attempts = %v, want %v", got, want)
	}
}

func TestRetriesExhausted(t *testing.T) {
	r := newTestRunner()
	r.fail["k"] = 99
	m, err := New(r.run, fastCfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	j, _, err := m.Submit(SubmitRequest{Key: "k", Payload: []byte(`{}`), MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, m, j.ID, StateFailed)
	if fin.Attempts != 2 { // 1 initial + 1 retry
		t.Fatalf("attempts = %d, want 2", fin.Attempts)
	}
	if fin.LastError == "" {
		t.Fatal("failed job carries no error")
	}
}

func TestPermanentErrorSkipsRetries(t *testing.T) {
	r := newTestRunner()
	r.perm["k"] = true
	m, err := New(r.run, fastCfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	j, _, err := m.Submit(SubmitRequest{Key: "k", Payload: []byte(`{}`), MaxRetries: 5})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, m, j.ID, StateFailed)
	if fin.Attempts != 1 {
		t.Fatalf("permanent error retried: attempts = %d", fin.Attempts)
	}
}

func TestIdempotentResubmission(t *testing.T) {
	r := newTestRunner()
	m, err := New(r.run, fastCfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	j1, existing, err := m.Submit(SubmitRequest{Key: "same", Payload: []byte(`{}`), MaxRetries: -1})
	if err != nil || existing {
		t.Fatalf("first submit: %v existing=%v", err, existing)
	}
	j2, existing, err := m.Submit(SubmitRequest{Key: "same", Payload: []byte(`{}`), MaxRetries: -1})
	if err != nil || !existing {
		t.Fatalf("resubmit: %v existing=%v", err, existing)
	}
	if j2.ID != j1.ID {
		t.Fatalf("resubmit created new job %s != %s", j2.ID, j1.ID)
	}
	waitState(t, m, j1.ID, StateDone)
	// Resubmitting after completion returns the finished job with result.
	j3, existing, err := m.Submit(SubmitRequest{Key: "same", Payload: []byte(`{}`), MaxRetries: -1})
	if err != nil || !existing || j3.ID != j1.ID || j3.State != StateDone || len(j3.Result) == 0 {
		t.Fatalf("post-done resubmit: %v existing=%v state=%s", err, existing, j3.State)
	}
	// Only one attempt ever ran.
	if got := r.attemptList(); len(got) != 1 {
		t.Fatalf("dedup ran %d attempts: %v", len(got), got)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	r := newTestRunner()
	blocker := make(chan struct{})
	r.block["first"] = blocker
	cfg := fastCfg(t.TempDir())
	cfg.Workers = 1
	m, err := New(r.run, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	// Block the single worker with the first job.
	first, _, err := m.Submit(SubmitRequest{Key: "first", Payload: []byte(`{}`), MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	<-r.started // first job is now running
	second, _, err := m.Submit(SubmitRequest{Key: "second", Payload: []byte(`{}`), MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Cancel(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("queued cancel = %s, want cancelled immediately", got.State)
	}
	close(blocker)
	waitState(t, m, first.ID, StateDone)
	// The cancelled job never ran.
	for _, a := range r.attemptList() {
		if a == second.ID+"/1" {
			t.Fatal("cancelled queued job was executed")
		}
	}
	// Cancelling a terminal job reports ErrTerminal.
	if _, err := m.Cancel(second.ID); !errors.Is(err, ErrTerminal) {
		t.Fatalf("re-cancel = %v, want ErrTerminal", err)
	}
}

func TestCancelRunningJob(t *testing.T) {
	r := newTestRunner()
	blocker := make(chan struct{})
	defer close(blocker)
	r.block["block"] = blocker
	m, err := New(r.run, fastCfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	j, _, err := m.Submit(SubmitRequest{Key: "block", Payload: []byte(`{}`), MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	<-r.started
	snap, err := m.Cancel(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateRunning {
		t.Fatalf("running cancel snapshot = %s", snap.State)
	}
	fin := waitState(t, m, j.ID, StateCancelled)
	if fin.Attempts != 1 {
		t.Fatalf("cancelled job attempts = %d", fin.Attempts)
	}
}

func TestPriorityOrdering(t *testing.T) {
	r := newTestRunner()
	blocker := make(chan struct{})
	r.block["gate"] = blocker
	cfg := fastCfg(t.TempDir())
	cfg.Workers = 1
	m, err := New(r.run, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	gate, _, err := m.Submit(SubmitRequest{Key: "gate", Payload: []byte(`{}`), MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	<-r.started
	low, _, _ := m.Submit(SubmitRequest{Key: "low", Payload: []byte(`{}`), Priority: PriorityLow, MaxRetries: -1})
	norm, _, _ := m.Submit(SubmitRequest{Key: "norm", Payload: []byte(`{}`), Priority: PriorityNormal, MaxRetries: -1})
	high, _, _ := m.Submit(SubmitRequest{Key: "high", Payload: []byte(`{}`), Priority: PriorityHigh, MaxRetries: -1})
	close(blocker)
	waitState(t, m, low.ID, StateDone)
	waitState(t, m, norm.ID, StateDone)
	waitState(t, m, high.ID, StateDone)
	got := r.attemptList()
	want := []string{gate.ID + "/1", high.ID + "/1", norm.ID + "/1", low.ID + "/1"}
	if len(got) != len(want) {
		t.Fatalf("attempts = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", got, want)
		}
	}
}

func TestJobDeadline(t *testing.T) {
	r := newTestRunner()
	blocker := make(chan struct{})
	defer close(blocker)
	r.block["dl"] = blocker
	m, err := New(r.run, fastCfg(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	j, _, err := m.Submit(SubmitRequest{
		Key: "dl", Payload: []byte(`{}`), MaxRetries: -1,
		Deadline: time.Now().Add(30 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, m, j.ID, StateFailed)
	if fin.LastError == "" {
		t.Fatal("deadline failure carries no error")
	}
}

func TestDrainRequeuesAndRestartCompletes(t *testing.T) {
	dir := t.TempDir()
	r := newTestRunner()
	blocker := make(chan struct{}) // never closed: drain interrupts it
	r.block["first"] = blocker
	cfg := fastCfg(dir)
	cfg.Workers = 1
	m, err := New(r.run, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, _, err := m.Submit(SubmitRequest{Key: "first", Payload: []byte(`{}`), MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	<-r.started
	second, _, err := m.Submit(SubmitRequest{Key: "second", Payload: []byte(`{}`), MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := m.Close(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	cancel()
	// After drain, submissions are refused.
	if _, _, err := m.Submit(SubmitRequest{Payload: []byte(`{}`), MaxRetries: -1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit = %v, want ErrClosed", err)
	}

	// Restart over the same WAL: both jobs must complete; the interrupted
	// job re-runs under a fresh attempt number.
	r2 := newTestRunner()
	m2, err := New(r2.run, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())
	f1 := waitState(t, m2, first.ID, StateDone)
	f2 := waitState(t, m2, second.ID, StateDone)
	if f1.Attempts != 2 {
		t.Fatalf("interrupted job attempts = %d, want 2 (1 pre-drain + 1 re-run)", f1.Attempts)
	}
	if f2.Attempts != 1 {
		t.Fatalf("queued job attempts = %d, want 1", f2.Attempts)
	}
	// No (job, attempt) pair executed twice across both processes.
	seen := map[string]bool{}
	for _, a := range append(r.attemptList(), r2.attemptList()...) {
		if seen[a] {
			t.Fatalf("attempt %s executed twice", a)
		}
		seen[a] = true
	}
}

func TestCrashRecoveryFromRunningState(t *testing.T) {
	// Simulate a kill -9: hand-craft a WAL whose last record says
	// "running" (the crash cut the process before any terminal record).
	dir := t.TempDir()
	w, _, err := OpenWAL(dir+"/jobs.wal", false)
	if err != nil {
		t.Fatal(err)
	}
	j := walJob("crashed", 5, StateQueued)
	j.Key = "crash-key"
	if err := w.Append(j); err != nil {
		t.Fatal(err)
	}
	j.State = StateRunning
	j.Attempts = 1
	j.StartedAt = time.Now()
	if err := w.Append(j); err != nil {
		t.Fatal(err)
	}
	w.Close()

	r := newTestRunner()
	m, err := New(r.run, fastCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	fin := waitState(t, m, "crashed", StateDone)
	if fin.Attempts != 2 {
		t.Fatalf("recovered job attempts = %d, want 2", fin.Attempts)
	}
	if got := r.attemptList(); len(got) != 1 || got[0] != "crashed/2" {
		t.Fatalf("recovery ran %v, want [crashed/2]", got)
	}
}

func TestListPagination(t *testing.T) {
	r := newTestRunner()
	m, err := New(r.run, Config{Workers: 4, MaxRetries: -1, RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	var ids []string
	for i := 0; i < 7; i++ {
		j, _, err := m.Submit(SubmitRequest{Key: fmt.Sprintf("k%d", i), Payload: []byte(`{}`), MaxRetries: -1})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	for _, id := range ids {
		waitState(t, m, id, StateDone)
	}
	page1, next := m.List("", 3, 0)
	if len(page1) != 3 || next == 0 {
		t.Fatalf("page1 = %d jobs next=%d", len(page1), next)
	}
	page2, next2 := m.List("", 3, next)
	if len(page2) != 3 || next2 == 0 {
		t.Fatalf("page2 = %d jobs next=%d", len(page2), next2)
	}
	page3, next3 := m.List("", 3, next2)
	if len(page3) != 1 || next3 != 0 {
		t.Fatalf("page3 = %d jobs next=%d", len(page3), next3)
	}
	seen := map[string]bool{}
	for _, j := range append(append(page1, page2...), page3...) {
		if seen[j.ID] {
			t.Fatalf("job %s appears twice across pages", j.ID)
		}
		seen[j.ID] = true
	}
	if len(seen) != 7 {
		t.Fatalf("pagination covered %d of 7 jobs", len(seen))
	}
	done, _ := m.List(StateDone, 50, 0)
	if len(done) != 7 {
		t.Fatalf("state filter: %d done jobs", len(done))
	}
	none, _ := m.List(StateFailed, 50, 0)
	if len(none) != 0 {
		t.Fatalf("state filter: %d failed jobs", len(none))
	}
}

func TestTerminalRetention(t *testing.T) {
	r := newTestRunner()
	cfg := Config{Workers: 2, MaxRetries: -1, KeepTerminal: 3, RetryBase: time.Millisecond}
	m, err := New(r.run, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	var ids []string
	for i := 0; i < 8; i++ {
		j, _, err := m.Submit(SubmitRequest{Key: fmt.Sprintf("r%d", i), Payload: []byte(`{}`), MaxRetries: -1})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
		waitState(t, m, j.ID, StateDone)
	}
	all, _ := m.List("", 50, 0)
	if len(all) > 3 {
		t.Fatalf("retention kept %d terminal jobs, cap 3", len(all))
	}
	// The newest jobs survive.
	if _, ok := m.Get(ids[len(ids)-1]); !ok {
		t.Fatal("newest job evicted")
	}
}

func TestMemoryModeNoDir(t *testing.T) {
	r := newTestRunner()
	m, err := New(r.run, Config{Workers: 1, MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	j, _, err := m.Submit(SubmitRequest{Payload: []byte(`{}`), MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, StateDone)
}

func TestObsCallbacks(t *testing.T) {
	r := newTestRunner()
	r.fail["k"] = 1
	var submitted, deduped, finished atomic.Int64
	var transitions atomic.Int64
	cfg := fastCfg(t.TempDir())
	cfg.Obs = Obs{
		Submitted: func(d bool) {
			if d {
				deduped.Add(1)
			} else {
				submitted.Add(1)
			}
		},
		StateChange: func(from, to State) { transitions.Add(1) },
		Finished: func(final State, latency time.Duration) {
			if final == StateDone && latency >= 0 {
				finished.Add(1)
			}
		},
	}
	m, err := New(r.run, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	j, _, err := m.Submit(SubmitRequest{Key: "k", Payload: []byte(`{}`), MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, StateDone)
	if _, _, err := m.Submit(SubmitRequest{Key: "k", Payload: []byte(`{}`), MaxRetries: -1}); err != nil {
		t.Fatal(err)
	}
	if submitted.Load() != 1 || deduped.Load() != 1 || finished.Load() != 1 {
		t.Fatalf("obs: submitted=%d deduped=%d finished=%d",
			submitted.Load(), deduped.Load(), finished.Load())
	}
	// "" -> queued, queued -> running, running -> queued (retry),
	// queued -> running, running -> done.
	if transitions.Load() != 5 {
		t.Fatalf("transitions = %d, want 5", transitions.Load())
	}
}

// TestExplicitIDSubmission covers owner-aware submission: the caller fixes
// the job ID (derived from the content key in the sharded server), a live
// holder under another key rejects, and a cancelled holder is superseded in
// place — including across a WAL restart.
func TestExplicitIDSubmission(t *testing.T) {
	dir := t.TempDir()
	r := newTestRunner()
	r.block["k1"] = make(chan struct{})
	m, err := New(r.run, fastCfg(dir))
	if err != nil {
		t.Fatal(err)
	}

	j, existing, err := m.Submit(SubmitRequest{ID: "deadbeefdeadbeefdeadbeef", Key: "k1", MaxRetries: -1})
	if err != nil || existing {
		t.Fatalf("submit = %v existing=%v", err, existing)
	}
	if j.ID != "deadbeefdeadbeefdeadbeef" {
		t.Fatalf("ID = %s, want the explicit one", j.ID)
	}

	// Same key dedups (and keeps the ID) regardless of the requested ID.
	j2, existing, err := m.Submit(SubmitRequest{ID: "deadbeefdeadbeefdeadbeef", Key: "k1", MaxRetries: -1})
	if err != nil || !existing || j2.ID != j.ID {
		t.Fatalf("resubmit = %v existing=%v id=%s", err, existing, j2.ID)
	}

	// A different key claiming a live job's ID is a collision.
	if _, _, err := m.Submit(SubmitRequest{ID: j.ID, Key: "k2", MaxRetries: -1}); !errors.Is(err, ErrIDInUse) {
		t.Fatalf("collision err = %v, want ErrIDInUse", err)
	}

	// Cancel, then resubmit under the same key and ID: the cancelled
	// holder is superseded, not an error and not a dedup hit.
	close(r.block["k1"])
	if _, err := m.Cancel(j.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if w, err := m.Wait(ctx, j.ID); err == nil && !w.State.Terminal() {
		t.Fatalf("job not terminal after cancel: %s", w.State)
	}
	delete(r.block, "k1")
	j3, existing, err := m.Submit(SubmitRequest{ID: j.ID, Key: "k1", MaxRetries: -1})
	if err != nil || existing {
		t.Fatalf("takeover submit = %v existing=%v", err, existing)
	}
	if j3.ID != j.ID || j3.Seq == j.Seq {
		t.Fatalf("takeover job = id %s seq %d, want same id, fresh seq (was %d)", j3.ID, j3.Seq, j.Seq)
	}
	waitState(t, m, j3.ID, StateDone)
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Restart over the same WAL: the takeover record must have superseded
	// the cancelled one.
	m2, err := New(r.run, fastCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())
	got, ok := m2.Get(j.ID)
	if !ok || got.State != StateDone || got.Seq != j3.Seq {
		t.Fatalf("after replay: job %s = %+v, want done at seq %d", j.ID, got, j3.Seq)
	}
}
