// Package jobs is the durable asynchronous job queue behind optd's batch
// API: the submit → poll → fetch decoupling the paper's constructor needs
// to run many optimizations over many programs in one sitting without
// holding a connection per program (Section 4 batches ten optimizers over
// ten HOMPACK routines).
//
// Durability comes from a write-ahead log (wal.go): every job state
// transition appends one CRC-framed record carrying the job's full state,
// and startup replays the log so submitted-but-unfinished jobs survive a
// crash. Replay tolerates a truncated tail record (the frame a kill -9 cut
// short) by stopping at the first bad frame and truncating the file there.
//
// Scheduling (manager.go) offers priority classes, per-job deadlines,
// bounded retries with exponential backoff + jitter, and idempotent
// submission: a job resubmitted under the same content-addressed key
// returns the prior job instead of queueing duplicate work. Workers are
// bounded by an internal/par limiter; graceful drain checkpoints running
// jobs back to the queued state so a restart re-runs them — an accepted
// job is never lost, and no job runs its action phase twice under the same
// attempt number.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"
)

// State is a job's position in the lifecycle state machine:
//
//	queued → running → done
//	                 → failed     (retries exhausted, permanent error, deadline)
//	                 → queued     (retryable failure, or drain checkpoint)
//	queued  → cancelled
//	running → cancelled
//
// done, failed and cancelled are terminal.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Priority orders ready jobs: lower values dispatch first.
type Priority int

const (
	PriorityHigh   Priority = 0
	PriorityNormal Priority = 1
	PriorityLow    Priority = 2
)

// ParsePriority maps the wire names to priority classes; "" is normal.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "", "normal":
		return PriorityNormal, nil
	case "high":
		return PriorityHigh, nil
	case "low":
		return PriorityLow, nil
	}
	return 0, fmt.Errorf("jobs: unknown priority %q (have high, normal, low)", s)
}

func (p Priority) String() string {
	switch p {
	case PriorityHigh:
		return "high"
	case PriorityLow:
		return "low"
	}
	return "normal"
}

// Job is one unit of asynchronous work plus its full lifecycle state. The
// same struct is the WAL record payload and the basis of the HTTP status
// body, so everything needed to resume after a crash rides in it.
type Job struct {
	// ID is the server-assigned identity; Seq orders jobs by submission.
	ID  string `json:"id"`
	Seq uint64 `json:"seq"`
	// Key is the content-addressed idempotency key (SHA-256 of the request
	// material). Resubmitting an identical payload returns the prior job.
	Key string `json:"key"`
	// Payload is the opaque work description the Runner interprets.
	Payload json.RawMessage `json:"payload"`

	Priority Priority `json:"priority"`
	State    State    `json:"state"`
	// Attempts counts started attempts; the run in progress (or the next
	// one) is attempt Attempts. A crash or drain requeue never reuses an
	// attempt number: restarting increments it again.
	Attempts int `json:"attempts"`
	// MaxRetries bounds re-runs after the first attempt.
	MaxRetries int `json:"max_retries"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
	// NextRunAt is the backoff gate: a queued job is not dispatched before
	// it. Zero means immediately eligible.
	NextRunAt time.Time `json:"next_run_at,omitzero"`
	// Deadline, when set, fails the job outright once passed — queued or
	// running.
	Deadline time.Time `json:"deadline,omitzero"`

	// TraceID and TraceParent carry the submitter's distributed-trace
	// context (trace identity and parent span, W3C traceparent form) through
	// the WAL, so the spans of a job attempt — possibly after a crash and
	// restart — join the trace of the request that submitted it.
	TraceID     string `json:"trace_id,omitempty"`
	TraceParent string `json:"trace_parent,omitempty"`

	// LastError is the most recent attempt's failure (also the terminal
	// error of a failed job).
	LastError string `json:"last_error,omitempty"`
	// Result is the Runner's output, present once done.
	Result json.RawMessage `json:"result,omitempty"`

	// runCtx carries the attempt context from the dispatcher to the
	// worker goroutine; never serialized.
	runCtx context.Context
}

// Terminal reports whether the job reached a final state.
func (j *Job) Terminal() bool { return j.State.Terminal() }

// clone returns a copy safe to hand outside the manager's lock.
func (j *Job) clone() *Job {
	c := *j
	return &c
}

// Exported error values of the manager API.
var (
	ErrNotFound = errors.New("jobs: no such job")
	ErrTerminal = errors.New("jobs: job already finished")
	ErrClosed   = errors.New("jobs: manager closed")
	ErrIDInUse  = errors.New("jobs: id held by a live job")
)

// permanentError marks a failure that retrying cannot fix (bad input,
// deterministic optimizer error); the scheduler fails the job immediately
// instead of burning retries.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so the scheduler skips retries for it.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// backoff computes the delay before retry `attempt` (1-based: the delay
// after the attempt-th failure): base·2^(attempt-1) capped at max, with
// ±50% jitter so a batch of jobs failing together does not retry in
// lockstep.
func backoff(base, max time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	if max <= 0 {
		max = 30 * time.Second
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + rand.N(half+1)
}
