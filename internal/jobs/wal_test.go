package jobs

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func walJob(id string, seq uint64, state State) *Job {
	return &Job{
		ID: id, Seq: seq, Key: "key-" + id, State: state,
		Payload:     []byte(fmt.Sprintf(`{"n":%d}`, seq)),
		SubmittedAt: time.Unix(int64(1700000000+seq), 0).UTC(),
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	w, records, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 {
		t.Fatalf("fresh log replayed %d records", len(records))
	}
	for i := 0; i < 10; i++ {
		if err := w.Append(walJob(fmt.Sprint(i), uint64(i), StateQueued)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, records, err = OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 10 {
		t.Fatalf("replayed %d records, want 10", len(records))
	}
	for i, j := range records {
		if j.ID != fmt.Sprint(i) || j.Seq != uint64(i) {
			t.Fatalf("record %d = %s/%d", i, j.ID, j.Seq)
		}
	}
}

func TestWALCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	w, _, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	// Many transitions of the same two jobs...
	for i := 0; i < 50; i++ {
		if err := w.Append(walJob("a", 1, StateQueued)); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(walJob("b", 2, StateRunning)); err != nil {
			t.Fatal(err)
		}
	}
	big := w.Size()
	// ...compact down to their final states.
	if err := w.Compact([]*Job{walJob("a", 1, StateDone), walJob("b", 2, StateQueued)}); err != nil {
		t.Fatal(err)
	}
	if w.Size() >= big {
		t.Fatalf("compact did not shrink: %d -> %d", big, w.Size())
	}
	// The compacted log must still append and replay.
	if err := w.Append(walJob("c", 3, StateQueued)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, records, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("replayed %d records, want 3", len(records))
	}
	if records[0].State != StateDone || records[1].State != StateQueued || records[2].ID != "c" {
		t.Fatalf("unexpected replay: %+v", records)
	}
}

// TestWALTortureTruncation is the crash-torture property test: a log cut
// at ANY byte offset must replay exactly the records whose frames lie
// wholly before the cut — no record duplicated, none lost, and the torn
// tail tolerated. It also checks that reopening after the cut truncates
// cleanly and accepts new appends.
func TestWALTortureTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.wal")
	w, _, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	// boundaries[i] is the end offset of record i.
	var boundaries []int64
	for i := 0; i < n; i++ {
		if err := w.Append(walJob(fmt.Sprint(i), uint64(i), StateQueued)); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, w.Size())
	}
	w.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	expectUpTo := func(cut int64) int {
		k := 0
		for k < n && boundaries[k] <= cut {
			k++
		}
		return k
	}

	check := func(t *testing.T, cut int64) {
		t.Helper()
		want := expectUpTo(cut)
		records, good, err := Replay(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut=%d: replay error: %v", cut, err)
		}
		if len(records) != want {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, len(records), want)
		}
		if want > 0 && good != boundaries[want-1] {
			t.Fatalf("cut=%d: good offset %d, want %d", cut, good, boundaries[want-1])
		}
		seen := map[string]bool{}
		for i, j := range records {
			if j.ID != fmt.Sprint(i) {
				t.Fatalf("cut=%d: record %d has ID %s (lost or reordered)", cut, i, j.ID)
			}
			if seen[j.ID] {
				t.Fatalf("cut=%d: job %s duplicated", cut, j.ID)
			}
			seen[j.ID] = true
		}
	}

	// Every frame boundary and its neighbourhood, plus random interior cuts.
	cuts := map[int64]bool{0: true, int64(len(full)): true}
	for _, b := range boundaries {
		for _, d := range []int64{-3, -1, 0, 1, 5} {
			if c := b + d; c >= 0 && c <= int64(len(full)) {
				cuts[c] = true
			}
		}
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		cuts[rng.Int63n(int64(len(full))+1)] = true
	}
	for cut := range cuts {
		check(t, cut)
	}

	// Crash-then-restart: a truncated file must reopen, truncate the torn
	// tail, and keep accepting appends that replay afterwards.
	cut := boundaries[7] + 3 // mid-frame of record 8
	trunc := filepath.Join(dir, "trunc.wal")
	if err := os.WriteFile(trunc, full[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	w2, records, err := OpenWAL(trunc, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 8 {
		t.Fatalf("reopen replayed %d records, want 8", len(records))
	}
	if err := w2.Append(walJob("fresh", 99, StateQueued)); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, records, err = OpenWAL(trunc, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 9 || records[8].ID != "fresh" {
		t.Fatalf("post-crash append lost: %d records", len(records))
	}
}

// TestWALTortureCorruption flips single bytes anywhere in the log: replay
// must never error, never duplicate a job, and must return a clean prefix
// (corruption in record i hides records >= i but never fabricates one).
func TestWALTortureCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	w, _, err := OpenWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	var boundaries []int64
	for i := 0; i < n; i++ {
		if err := w.Append(walJob(fmt.Sprint(i), uint64(i), StateDone)); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, w.Size())
	}
	w.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recordOf := func(off int64) int {
		for i, b := range boundaries {
			if off < b {
				return i
			}
		}
		return n
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		pos := rng.Int63n(int64(len(full)))
		mut := append([]byte(nil), full...)
		mut[pos] ^= 1 << uint(rng.Intn(8))
		records, _, err := Replay(bytes.NewReader(mut))
		if err != nil {
			t.Fatalf("flip@%d: replay error: %v", pos, err)
		}
		// The corrupted record and everything after it must be gone; all
		// records strictly before it must survive intact, in order.
		maxSurvivable := recordOf(pos)
		if len(records) > n {
			t.Fatalf("flip@%d: fabricated records (%d > %d)", pos, len(records), n)
		}
		if len(records) > maxSurvivable {
			t.Fatalf("flip@%d: replayed %d records past corruption in record %d",
				pos, len(records), maxSurvivable)
		}
		for i, j := range records {
			if j.ID != fmt.Sprint(i) {
				t.Fatalf("flip@%d: record %d became %q", pos, i, j.ID)
			}
		}
	}
}
