package specs

import (
	"testing"

	"repro/internal/frontend"
	"repro/internal/interp"
	"repro/ir"
)

func frontendParse(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := frontend.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func run(t *testing.T, p *ir.Program) *interp.Result {
	t.Helper()
	r, err := interp.Run(p, nil, interp.Config{})
	if err != nil {
		t.Fatalf("%v\n%s", err, p)
	}
	return r
}
