package specs

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/proggen"
	"repro/ir"
)

func TestSRD(t *testing.T) {
	p, n := apply(t, "SRD", `
PROGRAM p
INTEGER x, y
READ y
x = y * 2
END`)
	if n != 1 {
		t.Fatalf("applications = %d", n)
	}
	if got := ir.FormatStmt(p.At(1)); got != "x := y + y" {
		t.Errorf("reduced = %q", got)
	}
}

func TestSRDNotOnConstOrOtherFactor(t *testing.T) {
	_, n := apply(t, "SRD", `
PROGRAM p
INTEGER x, y
READ y
x = y * 3
y = 4 * 2
END`)
	if n != 0 {
		t.Fatal("SRD must only reduce scalar*2")
	}
}

func TestIDE(t *testing.T) {
	p, n := apply(t, "IDE", `
PROGRAM p
REAL a, b, c, d, e
READ a
b = a + 0
c = a - 0
d = a * 1
e = a / 1
PRINT b, c, d, e
END`)
	if n != 4 {
		t.Fatalf("applications = %d\n%s", n, p)
	}
	for i := 1; i <= 4; i++ {
		if p.At(i).Op != ir.OpCopy {
			t.Errorf("stmt %d not collapsed: %s", i, ir.FormatStmt(p.At(i)))
		}
	}
}

func TestIDEPreservesNonIdentities(t *testing.T) {
	_, n := apply(t, "IDE", `
PROGRAM p
REAL a, b
READ a
b = a + 1
b = a * 0
END`)
	if n != 0 {
		t.Fatal("a+1 and a*0 are not identities")
	}
}

func TestRAE(t *testing.T) {
	p, n := apply(t, "RAE", `
PROGRAM p
REAL a, b, x, y
READ a
READ b
x = a + b
y = a + b
PRINT x, y
END`)
	if n != 1 {
		t.Fatalf("applications = %d\n%s", n, p)
	}
	if got := ir.FormatStmt(p.At(3)); got != "y := x" {
		t.Errorf("eliminated = %q", got)
	}
}

func TestRAEBlockedByInterveningChange(t *testing.T) {
	_, n := apply(t, "RAE", `
PROGRAM p
REAL a, b, x, y
READ a
READ b
x = a + b
a = 0.0
y = a + b
PRINT x, y
END`)
	if n != 0 {
		t.Fatal("redefined operand must block")
	}
}

func TestRAEBlockedByTargetChange(t *testing.T) {
	_, n := apply(t, "RAE", `
PROGRAM p
REAL a, b, x, y
READ a
READ b
x = a + b
x = 0.0
y = a + b
PRINT x, y
END`)
	if n != 0 {
		t.Fatal("redefined target must block")
	}
}

func TestRAEBlockedByBranch(t *testing.T) {
	// The recomputation is only reached through an IF: Si does not
	// dominate Sj in a way the straight-line check accepts.
	_, n := apply(t, "RAE", `
PROGRAM p
REAL a, b, x, y
INTEGER c
READ a
READ b
READ c
IF (c > 0) THEN
  x = a + b
ENDIF
y = a + b
PRINT x, y
END`)
	if n != 0 {
		t.Fatal("conditional computation must block")
	}
}

func TestLRV(t *testing.T) {
	p, n := apply(t, "LRV", `
PROGRAM p
INTEGER i
REAL a(10), b(10)
DO i = 1, 10
  a(i) = b(i) * 2.0
ENDDO
PRINT a(1), a(10)
END`)
	if n != 1 {
		t.Fatalf("applications = %d\n%s", n, p)
	}
	h := ir.Loops(p)[0].Head
	if h.Init.Val.AsInt() != 10 || h.Final.Val.AsInt() != 1 || h.Step.Val.AsInt() != -1 {
		t.Fatalf("bounds not reversed: %s", ir.FormatStmt(h))
	}
}

func TestLRVBlockedByRecurrence(t *testing.T) {
	_, n := apply(t, "LRV", `
PROGRAM p
INTEGER i
REAL a(10)
DO i = 2, 10
  a(i) = a(i-1)
ENDDO
END`)
	if n != 0 {
		t.Fatal("carried dependence must block reversal")
	}
}

func TestLRVBlockedByLCVUseAfterLoop(t *testing.T) {
	_, n := apply(t, "LRV", `
PROGRAM p
INTEGER i, k
REAL a(10)
DO i = 1, 10
  a(i) = 1.0
ENDDO
k = i + 1
PRINT k
END`)
	if n != 0 {
		t.Fatal("observed final LCV value must block reversal")
	}
}

func TestNRM(t *testing.T) {
	p, n := apply(t, "NRM", `
PROGRAM p
INTEGER i
REAL a(20)
DO i = 2, 10, 2
  a(i) = 1.0
ENDDO
PRINT a(2), a(10)
END`)
	if n != 1 {
		t.Fatalf("applications = %d\n%s", n, p)
	}
	h := ir.Loops(p)[0].Head
	if h.Init.Val.AsInt() != 1 || h.Final.Val.AsInt() != 5 || h.Step.Val.AsInt() != 1 {
		t.Fatalf("bounds not normalized: %s", ir.FormatStmt(h))
	}
	body := ir.Loops(p)[0].Body(p)[0]
	if got := body.Dst.Subs[0].String(); got != "2*i" {
		t.Errorf("subscript = %q, want 2*i", got)
	}
}

func TestNRMThenLURCompose(t *testing.T) {
	// Normalization enables trip-count reasoning; unrolling still works on
	// the normalized loop (an enablement chain beyond the paper's three).
	p := frontendParse(t, `
PROGRAM p
INTEGER i
REAL a(20)
DO i = 2, 17, 3
  a(i) = 1.0
ENDDO
PRINT a(2), a(17)
END`)
	ref := run(t, p.Clone())
	if _, err := MustCompile("NRM").ApplyAll(p); err != nil {
		t.Fatal(err)
	}
	if _, err := MustCompile("LUR").ApplyAll(p); err != nil {
		t.Fatal(err)
	}
	got := run(t, p)
	if !interp.SameOutput(ref, got) {
		t.Fatalf("NRM∘LUR changed output\n%s", p)
	}
}

// TestExtendedPreservation runs the literature set over the workloads and
// random programs.
func TestExtendedPreservation(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		ref, err := interp.Run(proggen.Generate(seed, proggen.Config{}), nil, interp.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range Extended {
			p := proggen.Generate(seed, proggen.Config{})
			o := MustCompile(name)
			if _, err := o.ApplyAll(p); err != nil {
				t.Fatalf("seed %d, %s: %v", seed, name, err)
			}
			got, err := interp.Run(p, nil, interp.Config{})
			if err != nil {
				t.Errorf("seed %d, %s: %v\n%s", seed, name, err, p)
				continue
			}
			if !interp.SameOutput(ref, got) {
				t.Errorf("seed %d, %s: output changed\nwant %v\ngot  %v\n%s",
					seed, name, ref.Output, got.Output, p)
			}
		}
	}
}
