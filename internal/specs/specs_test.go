package specs

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/frontend"
	"repro/internal/gospel"
	"repro/internal/workloads"
	"repro/ir"
)

func TestAllSpecsParseCheckCompile(t *testing.T) {
	for _, name := range Names() {
		if _, err := Compile(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if len(Ten) != 10 {
		t.Errorf("the paper generated ten optimizers; Ten has %d", len(Ten))
	}
	for _, n := range Ten {
		if _, ok := Sources[n]; !ok {
			t.Errorf("Ten lists unknown spec %s", n)
		}
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("NOPE"); err == nil {
		t.Error("unknown spec must error")
	}
	if _, err := Compile("NOPE"); err == nil {
		t.Error("unknown spec must error")
	}
}

func apply(t *testing.T, name, src string) (*ir.Program, int) {
	t.Helper()
	p := frontend.MustParse(src)
	o := MustCompile(name)
	apps, err := o.ApplyAll(p)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("%s broke structure: %v\n%s", name, err, p)
	}
	return p, len(apps)
}

func TestCTP(t *testing.T) {
	p, n := apply(t, "CTP", `
PROGRAM p
INTEGER x, y, z
x = 5
y = x + 2
z = y
END`)
	if n != 1 {
		t.Fatalf("applications = %d", n)
	}
	if got := ir.FormatStmt(p.At(1)); got != "y := 5 + 2" {
		t.Errorf("propagated = %q", got)
	}
}

func TestCTPBlockedByCarriedRedefinition(t *testing.T) {
	// x redefined inside the loop: the outside constant must not propagate
	// into the loop's use (this is the safety deviation from Figure 1).
	p, n := apply(t, "CTP", `
PROGRAM p
INTEGER i, x, y
x = 5
DO i = 1, 3
  y = x
  x = 2
ENDDO
PRINT y
END`)
	if n != 0 {
		t.Fatalf("CTP must not apply, applied %d:\n%s", n, p)
	}
}

func TestCPP(t *testing.T) {
	p, n := apply(t, "CPP", `
PROGRAM p
INTEGER x, y, z
READ y
x = y
z = x + 1
END`)
	if n != 1 {
		t.Fatalf("applications = %d\n%s", n, p)
	}
	if got := ir.FormatStmt(p.At(2)); got != "z := y + 1" {
		t.Errorf("propagated = %q", got)
	}
}

func TestCPPBlockedByRedefinitionOnPath(t *testing.T) {
	p, n := apply(t, "CPP", `
PROGRAM p
INTEGER x, y, z
READ y
x = y
y = 0
z = x + 1
END`)
	_ = p
	if n != 0 {
		t.Fatalf("CPP must be blocked by the redefinition of y, applied %d", n)
	}
}

func TestCFO(t *testing.T) {
	p, n := apply(t, "CFO", `
PROGRAM p
INTEGER x, y
x = 3 * 4
y = 10 - 4
END`)
	if n != 2 {
		t.Fatalf("applications = %d", n)
	}
	if got := ir.FormatStmt(p.At(0)); got != "x := 12" {
		t.Errorf("folded = %q", got)
	}
	if got := ir.FormatStmt(p.At(1)); got != "y := 6" {
		t.Errorf("folded = %q", got)
	}
}

func TestCTPEnablesCFO(t *testing.T) {
	// The paper's enablement observation: propagate then fold.
	p := frontend.MustParse(`
PROGRAM p
INTEGER n, m
n = 4
m = n * 2
END`)
	ctp := MustCompile("CTP")
	cfo := MustCompile("CFO")
	if _, err := ctp.ApplyAll(p); err != nil {
		t.Fatal(err)
	}
	apps, err := cfo.ApplyAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 1 {
		t.Fatalf("CFO after CTP = %d applications\n%s", len(apps), p)
	}
	if got := ir.FormatStmt(p.At(1)); got != "m := 8" {
		t.Errorf("result = %q", got)
	}
}

func TestDCE(t *testing.T) {
	p, n := apply(t, "DCE", `
PROGRAM p
INTEGER x, y, z
x = 1
y = 2
z = y
PRINT z
END`)
	// x is dead. (z feeds the print; y feeds z.)
	if n != 1 {
		t.Fatalf("applications = %d\n%s", n, p)
	}
	if p.Len() != 3 {
		t.Fatalf("length = %d\n%s", p.Len(), p)
	}
}

func TestDCECascades(t *testing.T) {
	// Deleting the last use of y makes y's definition dead in turn.
	p, n := apply(t, "DCE", `
PROGRAM p
INTEGER x, y
y = 2
x = y
PRINT 1
END`)
	if n != 2 {
		t.Fatalf("cascaded applications = %d\n%s", n, p)
	}
	if p.Len() != 1 {
		t.Fatalf("only the print should remain:\n%s", p)
	}
}

func TestICMHoistsInvariant(t *testing.T) {
	p, n := apply(t, "ICM", `
PROGRAM p
INTEGER i, c
REAL a(10)
DO i = 1, 10
  c = 7
  a(i) = c
ENDDO
END`)
	// c = 7 is invariant but c is used inside the loop (flow dep to
	// a(i) = c stays inside). Moving c=7 out keeps that dependence:
	// the spec forbids uses after the loop, in-loop uses are fine.
	if n != 1 {
		t.Fatalf("applications = %d\n%s", n, p)
	}
	if p.At(0).Kind != ir.SAssign || p.At(0).Dst.Name != "c" {
		t.Fatalf("not hoisted:\n%s", p)
	}
}

func TestICMBlockedByLoopVariantOperand(t *testing.T) {
	_, n := apply(t, "ICM", `
PROGRAM p
INTEGER i, c
REAL a(10)
DO i = 1, 10
  c = i + 1
  a(i) = c
ENDDO
END`)
	if n != 0 {
		t.Fatal("ICM must not hoist a statement using the LCV")
	}
}

func TestICMBlockedByConditional(t *testing.T) {
	_, n := apply(t, "ICM", `
PROGRAM p
INTEGER i, c, k
REAL a(10)
READ k
DO i = 1, 10
  IF (k > 0) THEN
    c = 7
  ENDIF
  a(i) = c
ENDDO
END`)
	if n != 0 {
		t.Fatal("ICM must not hoist a conditionally executed statement")
	}
}

func TestICMBlockedByUseAfterLoop(t *testing.T) {
	_, n := apply(t, "ICM", `
PROGRAM p
INTEGER i, c
DO i = 1, 10
  c = 7
ENDDO
PRINT c
END`)
	if n != 0 {
		t.Fatal("ICM must not hoist when the value is observed after the loop (zero-trip safety)")
	}
}

func TestINX(t *testing.T) {
	p, n := apply(t, "INX", `
PROGRAM p
INTEGER i, j
REAL a(20,20)
DO i = 1, 10
  DO j = 1, 10
    a(i,j) = a(i,j) * 2.0
  ENDDO
ENDDO
END`)
	if n != 1 {
		t.Fatalf("applications = %d", n)
	}
	loops := ir.Loops(p)
	if loops[0].LCV() != "j" || loops[1].LCV() != "i" {
		t.Fatalf("not interchanged:\n%s", p)
	}
}

func TestINXBlockedByAntiDep(t *testing.T) {
	// a(i,j) = a(i+1,j-1): anti dependence with direction (<,>).
	_, n := apply(t, "INX", `
PROGRAM p
INTEGER i, j
REAL a(20,20)
DO i = 1, 9
  DO j = 2, 10
    a(i,j) = a(i+1,j-1)
  ENDDO
ENDDO
END`)
	if n != 0 {
		t.Fatal("INX must be blocked by a (<,>) anti dependence")
	}
}

func TestCRCRotatesTripleNest(t *testing.T) {
	p, n := apply(t, "CRC", `
PROGRAM p
INTEGER i, j, k
REAL a(10,10,10)
DO i = 1, 10
  DO j = 1, 10
    DO k = 1, 10
      a(i,j,k) = a(i,j,k) + 1.0
    ENDDO
  ENDDO
ENDDO
END`)
	if n != 1 {
		t.Fatalf("applications = %d\n%s", n, p)
	}
	loops := ir.Loops(p)
	if loops[0].LCV() != "j" || loops[1].LCV() != "k" || loops[2].LCV() != "i" {
		t.Fatalf("rotation wrong: %s %s %s\n%s",
			loops[0].LCV(), loops[1].LCV(), loops[2].LCV(), p)
	}
}

func TestCRCBlockedByBackwardRotation(t *testing.T) {
	// (<,>,=) dependence: rotating makes it (>,=,<) — illegal.
	_, n := apply(t, "CRC", `
PROGRAM p
INTEGER i, j, k
REAL a(12,12,12)
DO i = 2, 10
  DO j = 1, 9
    DO k = 1, 10
      a(i,j,k) = a(i-1,j+1,k)
    ENDDO
  ENDDO
ENDDO
END`)
	if n != 0 {
		t.Fatal("CRC must be blocked by a (<,>,*) dependence")
	}
}

func TestBMPAlignsLoops(t *testing.T) {
	p, n := apply(t, "BMP", `
PROGRAM p
INTEGER i
REAL a(20), b(20)
DO i = 1, 10
  a(i) = 1.0
ENDDO
DO i = 3, 12
  b(i) = 2.0
ENDDO
END`)
	if n != 1 {
		t.Fatalf("applications = %d\n%s", n, p)
	}
	loops := ir.Loops(p)
	l2 := loops[1]
	if l2.Head.Init.Val.AsInt() != 1 || l2.Head.Final.Val.AsInt() != 10 {
		t.Fatalf("bounds not aligned: %s", ir.FormatStmt(l2.Head))
	}
	body := l2.Body(p)[0]
	if got := body.Dst.Subs[0].String(); got != "i+2" {
		t.Errorf("subscript = %q, want i+2", got)
	}
}

func TestBMPEnablesFUS(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(20), b(20)
DO i = 1, 10
  a(i) = 1.0
ENDDO
DO i = 3, 12
  b(i) = 2.0
ENDDO
END`)
	fus := MustCompile("FUS")
	apps, _ := fus.ApplyAll(p)
	if len(apps) != 0 {
		t.Fatal("FUS must not apply before bumping")
	}
	bmp := MustCompile("BMP")
	if _, err := bmp.ApplyAll(p); err != nil {
		t.Fatal(err)
	}
	apps, err := fus.ApplyAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 1 {
		t.Fatalf("FUS after BMP = %d\n%s", len(apps), p)
	}
	if len(ir.Loops(p)) != 1 {
		t.Fatalf("not fused:\n%s", p)
	}
}

func TestPAR(t *testing.T) {
	p, n := apply(t, "PAR", `
PROGRAM p
INTEGER i
REAL a(10), b(10)
DO i = 1, 10
  a(i) = b(i) * 2.0
ENDDO
END`)
	if n != 1 || !p.At(0).Parallel {
		t.Fatalf("loop not parallelized (n=%d):\n%s", n, p)
	}
}

func TestPARBlockedByRecurrence(t *testing.T) {
	_, n := apply(t, "PAR", `
PROGRAM p
INTEGER i
REAL a(10)
DO i = 2, 10
  a(i) = a(i-1) + 1.0
ENDDO
END`)
	if n != 0 {
		t.Fatal("recurrence must not parallelize")
	}
}

func TestPARBlockedByReduction(t *testing.T) {
	_, n := apply(t, "PAR", `
PROGRAM p
INTEGER i
REAL a(10), s
s = 0.0
DO i = 1, 10
  s = s + a(i)
ENDDO
PRINT s
END`)
	if n != 0 {
		t.Fatal("scalar reduction must not parallelize")
	}
}

func TestPARNestedParallelizesInner(t *testing.T) {
	p, n := apply(t, "PAR", `
PROGRAM p
INTEGER i, j
REAL a(12,12)
DO i = 2, 10
  DO j = 1, 10
    a(i,j) = a(i-1,j) + 1.0
  ENDDO
ENDDO
END`)
	// Dependence (<,=) is carried by the outer loop only: the inner loop
	// parallelizes, the outer does not.
	loops := ir.Loops(p)
	if n != 1 {
		t.Fatalf("applications = %d\n%s", n, p)
	}
	if loops[0].Head.Parallel || !loops[1].Head.Parallel {
		t.Fatalf("wrong loop parallelized:\n%s", p)
	}
}

func TestLUR(t *testing.T) {
	p, n := apply(t, "LUR", `
PROGRAM p
INTEGER i
REAL a(20), b(20)
DO i = 1, 10
  a(i) = b(i) + 1.0
ENDDO
END`)
	if n != 1 {
		t.Fatalf("applications = %d", n)
	}
	l := ir.Loops(p)[0]
	if l.Head.Step.Val.AsInt() != 2 {
		t.Errorf("step = %v", l.Head.Step)
	}
	body := l.Body(p)
	if len(body) != 2 {
		t.Fatalf("body = %d\n%s", len(body), p)
	}
	if got := ir.FormatStmt(body[1]); got != "a(i+1) := b(i+1) + 1" {
		t.Errorf("replica = %q", got)
	}
}

func TestLURBlockedByVariableBound(t *testing.T) {
	_, n := apply(t, "LUR", `
PROGRAM p
INTEGER i, n
REAL a(20)
READ n
DO i = 1, n
  a(i) = 0.0
ENDDO
END`)
	if n != 0 {
		t.Fatal("variable upper bound must block LUR")
	}
}

func TestLURVariantsSameTransformation(t *testing.T) {
	src := `
PROGRAM p
INTEGER i
REAL a(20)
DO i = 1, 10
  a(i) = 1.0
ENDDO
END`
	p1 := frontend.MustParse(src)
	p2 := frontend.MustParse(src)
	if _, err := MustCompile("LUR").ApplyAll(p1); err != nil {
		t.Fatal(err)
	}
	if _, err := MustCompile("LUR_LOWERFIRST").ApplyAll(p2); err != nil {
		t.Fatal(err)
	}
	if !p1.Equal(p2) {
		t.Fatal("LUR variants must produce the same program")
	}
}

func TestFUS(t *testing.T) {
	p, n := apply(t, "FUS", `
PROGRAM p
INTEGER i
REAL a(10), b(10), c(10)
DO i = 1, 10
  a(i) = 1.0
ENDDO
DO i = 1, 10
  b(i) = a(i) + c(i)
ENDDO
END`)
	if n != 1 {
		t.Fatalf("applications = %d\n%s", n, p)
	}
	loops := ir.Loops(p)
	if len(loops) != 1 || len(loops[0].Body(p)) != 2 {
		t.Fatalf("not fused:\n%s", p)
	}
}

func TestFUSBlockedByBackwardDep(t *testing.T) {
	_, n := apply(t, "FUS", `
PROGRAM p
INTEGER i
REAL a(12), b(10)
DO i = 1, 10
  a(i) = 1.0
ENDDO
DO i = 1, 10
  b(i) = a(i+1)
ENDDO
END`)
	if n != 0 {
		t.Fatal("fusion must be blocked by a backward fused dependence")
	}
}

func TestFUSBlockedByDifferentBounds(t *testing.T) {
	_, n := apply(t, "FUS", `
PROGRAM p
INTEGER i
REAL a(10), b(12)
DO i = 1, 10
  a(i) = 1.0
ENDDO
DO i = 1, 12
  b(i) = 2.0
ENDDO
END`)
	if n != 0 {
		t.Fatal("different bounds must block fusion")
	}
}

func TestCTPEnablesLUR(t *testing.T) {
	// The paper: 41 of CTP's application points enabled LUR by making loop
	// bounds constant.
	p := frontend.MustParse(`
PROGRAM p
INTEGER i, n
REAL a(20)
n = 10
DO i = 1, n
  a(i) = 1.0
ENDDO
END`)
	lur := MustCompile("LUR")
	apps, _ := lur.ApplyAll(p)
	if len(apps) != 0 {
		t.Fatal("LUR must not apply before CTP")
	}
	ctp := MustCompile("CTP")
	if _, err := ctp.ApplyAll(p); err != nil {
		t.Fatal(err)
	}
	apps, err := lur.ApplyAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 1 {
		t.Fatalf("LUR after CTP = %d\n%s", len(apps), p)
	}
}

func TestCTPEnablesDCE(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER x, y
x = 5
y = x
PRINT y
END`)
	ctp := MustCompile("CTP")
	dce := MustCompile("DCE")
	if _, err := ctp.ApplyAll(p); err != nil {
		t.Fatal(err)
	}
	apps, err := dce.ApplyAll(p)
	if err != nil {
		t.Fatal(err)
	}
	// CTP cascades: x=5 → y=5 → print 5, leaving both definitions dead.
	if len(apps) != 2 {
		t.Fatalf("DCE after CTP = %d\n%s", len(apps), p)
	}
	if p.Len() != 1 || p.At(0).Kind != ir.SPrint {
		t.Fatalf("only the print should remain:\n%s", p)
	}
}

// TestAllSpecsFormatRoundTrip: the canonical formatter is a fixed point on
// every shipped specification, and the re-parsed specification compiles to
// an optimizer with identical behaviour.
func TestAllSpecsFormatRoundTrip(t *testing.T) {
	for _, name := range Names() {
		s1, err := Load(name)
		if err != nil {
			t.Fatal(err)
		}
		text1 := gospel.Format(s1)
		s2, err := gospel.ParseAndCheck(name, text1)
		if err != nil {
			t.Errorf("%s: formatted spec fails: %v\n%s", name, err, text1)
			continue
		}
		if text2 := gospel.Format(s2); text1 != text2 {
			t.Errorf("%s: Format is not a fixed point", name)
		}
		o2, err := engine.Compile(s2)
		if err != nil {
			t.Errorf("%s: formatted spec does not compile: %v", name, err)
			continue
		}
		for _, w := range workloads.All {
			pa := w.Program()
			if _, err := MustCompile(name).ApplyAll(pa); err != nil {
				t.Fatal(err)
			}
			pb := w.Program()
			if _, err := o2.ApplyAll(pb); err != nil {
				t.Fatal(err)
			}
			if !pa.Equal(pb) {
				t.Errorf("%s on %s: formatted spec transforms differently", name, w.Name)
			}
		}
	}
}
