// Package specs contains the GOSpeL specifications of the optimizations the
// paper generates optimizers for (Section 4): Copy Propagation (CPP),
// Constant Propagation (CTP), Dead Code Elimination (DCE), Invariant Code
// Motion (ICM), Loop Interchanging (INX), Loop Circulation (CRC), Bumping
// (BMP), Parallelization (PAR), Loop Unrolling (LUR) and Loop Fusion (FUS) —
// plus Constant Folding (CFO), which the paper's enablement counts refer to.
//
// CTP and INX follow the paper's Figures 1 and 2. The paper does not show
// the other specifications; they are written here from the optimizations'
// standard definitions, using the same language. Where a specification
// deviates from a figure for safety (e.g. CTP's "no other definition"
// clause matching loop-carried definitions too), the deviation is noted on
// the constant.
package specs

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/gospel"
	"repro/internal/region"
)

// CTP is Constant Propagation, after Figure 1 of the paper. Deviations:
// the "no other definitions" clause omits the (=) direction so that
// loop-carried redefinitions also block propagation (the figure's version
// would propagate across them), and the position-match condition is spelled
// with an explicit position variable comparison.
const CTP = `
TYPE
  Stmt: Si, Sj, Sl;
PRECOND
  Code_Pattern
    /* Find a constant definition of a scalar */
    any Si: Si.opc == assign AND type(Si.opr_1) == var AND type(Si.opr_2) == const;
  Depend
    /* A use of Si's target, loop independent */
    any (Sj, pos): flow_dep(Si, Sj, (=));
    /* ... with no other definition reaching the same operand */
    no (Sl, pos2): flow_dep(Sl, Sj) AND (Si != Sl) AND (pos2 == pos);
ACTION
  /* Change the use in Sj to the constant */
  modify(operand(Sj, pos), Si.opr_2);
`

// CTPFig1 is the verbatim Figure 1 form (loop-independent '=' direction on
// the blocking clause as printed in the paper); kept for the fidelity tests
// and the generated-code golden files.
const CTPFig1 = `
TYPE
  Stmt: Si, Sj, Sl;
PRECOND
  Code_Pattern
    any Si: Si.opc == assign AND type(Si.opr_2) == const;
  Depend
    any (Sj, pos): flow_dep(Si, Sj, (=));
    no (Sl, pos2): flow_dep(Sl, Sj, (=)) AND (Si != Sl) AND (pos2 == pos);
ACTION
  modify(operand(Sj, pos), Si.opr_2);
`

// CPP is Copy Propagation: x := y, replace a use of x with y provided the
// copy is the only reaching definition and y is not redefined on any path
// from the copy to the use (the path() qualification).
const CPP = `
TYPE
  Stmt: Si, Sj, Sl, Sm;
PRECOND
  Code_Pattern
    /* Find a copy statement x := y between scalars */
    any Si: Si.opc == assign AND type(Si.opr_1) == var AND type(Si.opr_2) == var;
  Depend
    any (Sj, pos): flow_dep(Si, Sj, (=));
    no (Sl, pos2): flow_dep(Sl, Sj) AND (Si != Sl) AND (pos2 == pos);
    /* y unchanged between the copy and the use */
    no Sm: mem(Sm, path(Si, Sj)), anti_dep(Si, Sm);
ACTION
  modify(operand(Sj, pos), Si.opr_2);
`

// CFO is Constant Folding: evaluate an arithmetic statement whose source
// operands are both constants. The paper names CFO among the optimizations
// CTP enables but does not show its specification; eval() is this
// implementation's action-level extension for computing the folded value.
const CFO = `
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    any Si: Si.kind == assign AND Si.opc != assign
      AND type(Si.opr_2) == const AND type(Si.opr_3) == const;
  Depend
ACTION
  modify(Si.opr_2, eval(Si));
  modify(Si.opc, assign);
`

// DCE is Dead Code Elimination: a scalar assignment no use ever receives a
// value from is deleted.
const DCE = `
TYPE
  Stmt: Si, Sj;
PRECOND
  Code_Pattern
    any Si: Si.kind == assign AND type(Si.opr_1) == var;
  Depend
    no Sj: flow_dep(Si, Sj);
ACTION
  delete(Si);
`

// ICM is Invariant Code Motion: hoist a scalar assignment out of a loop
// when its operands are loop invariant, it is the loop's only definition of
// its target, nothing in the loop reads the target before it, it is not
// conditionally executed, and the target is not used after the loop (which
// also makes hoisting safe for zero-trip loops).
const ICM = `
TYPE
  Stmt: Si, Sm, Sk;
  Loop: L1;
PRECOND
  Code_Pattern
    any L1;
    any Si: Si.kind == assign AND type(Si.opr_1) == var;
  Depend
    any Si: mem(Si, L1);
    /* operands computed outside the loop */
    no Sm: mem(Sm, L1), flow_dep(Sm, Si);
    no Si: flow_dep(L1.head, Si);
    /* sole, unconditioned definition with no prior uses in the loop:
       the statement's own iteration-to-iteration output dependence is
       exempt (overwriting itself is what hoisting removes), and only a
       loop-independent anti dependence — a use upward-exposed before the
       definition — blocks hoisting */
    no Sm: mem(Sm, L1),
      (out_dep(Si, Sm) OR out_dep(Sm, Si) OR anti_dep(Sm, Si, independent)) AND (Sm != Si);
    no Sm: mem(Sm, L1), ctrl_dep(Sm, Si);
    /* value not observed after the loop */
    no Sk: nmem(Sk, L1), flow_dep(Si, Sk);
ACTION
  move(Si, L1.head.prev);
`

// INX is Loop Interchanging, after Figure 2 of the paper. Deviation: the
// figure only forbids (<,>) flow dependences; interchange legality equally
// requires the absence of (<,>) anti and output dependences, so all three
// are checked.
const INX = `
TYPE
  Stmt: Sn, Sm;
  Tight Loops: (L1, L2);
PRECOND
  Code_Pattern
    /* Find two tightly nested loops */
    any (L1, L2);
  Depend
    /* Ensure invariant loop headers */
    no L1.head: flow_dep(L1.head, L2.head);
    /* No dependence with direction (<,>) */
    no (Sm, Sn): mem(Sm, L2) AND mem(Sn, L2),
      flow_dep(Sn, Sm, (<,>)) OR anti_dep(Sn, Sm, (<,>)) OR out_dep(Sn, Sm, (<,>));
ACTION
  /* Interchange heads and tails */
  move(L1.head, L2.head);
  move(L1.end, L2.end.prev);
`

// CRC is Loop Circulation: rotate a depth-3 tightly nested loop so the
// outermost loop becomes innermost ((1,2,3) → (2,3,1)). The rotation is
// illegal exactly when some dependence has a direction vector that becomes
// lexicographically negative, i.e. (<,>,*) or (<,=,>). The paper names CRC
// but shows no specification.
const CRC = `
TYPE
  Stmt: Sn, Sm;
  Tight Loops: (L1, L2), (L2, L3);
PRECOND
  Code_Pattern
    any (L1, L2);
    any (L2, L3);
  Depend
    no L1.head: flow_dep(L1.head, L2.head) OR flow_dep(L1.head, L3.head)
      OR flow_dep(L2.head, L3.head);
    no (Sm, Sn): mem(Sm, L3) AND mem(Sn, L3),
      flow_dep(Sn, Sm, (<,>,*)) OR anti_dep(Sn, Sm, (<,>,*)) OR out_dep(Sn, Sm, (<,>,*))
      OR flow_dep(Sn, Sm, (<,=,>)) OR anti_dep(Sn, Sm, (<,=,>)) OR out_dep(Sn, Sm, (<,=,>));
ACTION
  move(L1.head, L3.head);
  move(L1.end, L3.end.prev);
`

// BMP is Bumping: shift an adjacent loop's iteration range by a constant to
// align it with its predecessor (an enabler for fusion). The paper names
// BMP but shows no specification.
const BMP = `
TYPE
  Adjacent Loops: (L1, L2);
PRECOND
  Code_Pattern
    any (L1, L2): type(L1.init) == const AND type(L2.init) == const
      AND type(L1.final) == const AND type(L2.final) == const
      AND L1.step == L2.step AND L1.lcv == L2.lcv
      AND (L2.init != L1.init) AND (trip(L1) == trip(L2));
  Depend
ACTION
  forall S in L2.body do
    modify(S, subst(L2.lcv, L2.lcv + eval(L2.init - L1.init)));
  end
  modify(L2.init, L1.init);
  modify(L2.final, L1.final);
`

// PAR is Parallelization: mark a loop DOALL when it carries no flow, anti
// or output dependence at its own level. The carried(L1) qualifier is this
// implementation's extension for "dependence carried by this loop" at any
// nesting depth.
const PAR = `
TYPE
  Stmt: Sm, Sn;
  Loop: L1;
PRECOND
  Code_Pattern
    any L1: L1.kind == do;
  Depend
    no (Sm, Sn): mem(Sm, L1) AND mem(Sn, L1),
      flow_dep(Sm, Sn, carried(L1)) OR anti_dep(Sm, Sn, carried(L1))
      OR out_dep(Sm, Sn, carried(L1));
ACTION
  modify(L1.opc, doall);
`

// LUR is Loop Unrolling by two: replicate the body with the index bumped by
// one step and double the step. Constant bounds are required ("assuming
// that constant bounds are needed to unroll the loop", Section 4) and the
// trip count must be even. This is the upper-bound-first variant, which the
// paper's cost experiment found cheaper because upper bounds are more often
// variable; LURLowerFirst checks in the opposite order.
const LUR = `
TYPE
  Loop: L1;
PRECOND
  Code_Pattern
    any L1: L1.kind == do
      AND type(L1.final) == const AND type(L1.init) == const
      AND type(L1.step) == const
      AND (trip(L1) > 0) AND (trip(L1) mod 2 == 0);
  Depend
ACTION
  forall S in L1.body do
    copy(S, L1.end.prev, Sc);
    modify(Sc, subst(L1.lcv, L1.lcv + L1.step));
  end
  modify(L1.step, eval(L1.step * 2));
`

// LURLowerFirst is LUR with the bound checks in lower-bound-first order —
// the costlier specification form of the paper's E5 experiment.
const LURLowerFirst = `
TYPE
  Loop: L1;
PRECOND
  Code_Pattern
    any L1: L1.kind == do
      AND type(L1.init) == const AND type(L1.final) == const
      AND type(L1.step) == const
      AND (trip(L1) > 0) AND (trip(L1) mod 2 == 0);
  Depend
ACTION
  forall S in L1.body do
    copy(S, L1.end.prev, Sc);
    modify(Sc, subst(L1.lcv, L1.lcv + L1.step));
  end
  modify(L1.step, eval(L1.step * 2));
`

// FUS is Loop Fusion: merge two adjacent loops with identical headers when
// no dependence between the bodies would run backwards in the fused
// iteration space (the fused_dep(...) > test). The paper names FUS but
// shows no specification.
const FUS = `
TYPE
  Stmt: Sm, Sn;
  Adjacent Loops: (L1, L2);
PRECOND
  Code_Pattern
    any (L1, L2): L1.init == L2.init AND L1.final == L2.final
      AND L1.step == L2.step AND L1.lcv == L2.lcv;
  Depend
    no (Sm, Sn): mem(Sm, L1) AND mem(Sn, L2), fused_dep(Sm, Sn, L1, L2, (>));
ACTION
  forall S in L2.body do
    move(S, L1.end.prev);
  end
  delete(L2.head);
  delete(L2.end);
`

// --- the literature set ---
//
// The paper reports that "approximately twenty optimizations found in the
// literature" were specified in GOSpeL (ten of which were generated for the
// experiments). The following further specifications extend this suite the
// same way.

// SRD is strength reduction: a multiplication of a scalar by the constant 2
// becomes an addition.
const SRD = `
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    any Si: Si.opc == mul AND type(Si.opr_2) == var AND (Si.opr_3 == 2);
  Depend
ACTION
  modify(Si.opc, add);
  modify(Si.opr_3, Si.opr_2);
`

// IDE is identity elimination: additions of 0, subtractions of 0 and
// multiplications/divisions by 1 collapse to copies.
const IDE = `
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    any Si: (Si.opc == add AND (Si.opr_3 == 0))
      OR (Si.opc == sub AND (Si.opr_3 == 0))
      OR (Si.opc == mul AND (Si.opr_3 == 1))
      OR (Si.opc == div AND (Si.opr_3 == 1));
  Depend
ACTION
  modify(Si.opc, assign);
`

// RAE is redundant assignment elimination: a statement recomputing exactly
// an earlier statement's right-hand side, on a straight-line path with no
// intervening change to the shared operands or the earlier target, becomes
// a copy of that target. The program-order comparison (Si < Sj) is the
// appendix BNF's StmtId relop StmtId form.
const RAE = `
TYPE
  Stmt: Si, Sj, Sm;
PRECOND
  Code_Pattern
    any Si: Si.kind == assign AND Si.opc != assign AND type(Si.opr_1) == var;
  Depend
    /* a later statement with the identical right-hand side, reachable
       through straight-line code */
    any Sj: (Sj != Si) AND (Si < Sj) AND (Sj.kind == assign)
      AND (Sj.opc == Si.opc) AND (Sj.opr_2 == Si.opr_2) AND (Sj.opr_3 == Si.opr_3)
      AND ((Sj == Si.next) OR mem(Sj.prev, path(Si, Sj)));
    /* nothing between redefines the shared operands or Si's target, and no
       control structure intervenes (so Si dominates Sj) */
    no Sm: mem(Sm, path(Si, Sj)),
      anti_dep(Si, Sm) OR out_dep(Si, Sm)
      OR (Sm.kind == if) OR (Sm.kind == else) OR (Sm.kind == endif)
      OR (Sm.kind == do) OR (Sm.kind == enddo);
ACTION
  modify(Sj.opr_2, Si.opr_1);
  modify(Sj.opc, assign);
`

// LRV is loop reversal: a constant-bound, step-1 loop carrying no
// dependence runs equally well backwards. The bound swap is performed with
// the classic add/subtract exchange, since actions have no temporaries.
const LRV = `
TYPE
  Stmt: Sm, Sn;
  Loop: L1;
PRECOND
  Code_Pattern
    any L1: L1.kind == do AND type(L1.init) == const
      AND type(L1.final) == const AND (L1.step == 1);
  Depend
    no (Sm, Sn): mem(Sm, L1) AND mem(Sn, L1),
      flow_dep(Sm, Sn, carried(L1)) OR anti_dep(Sm, Sn, carried(L1))
      OR out_dep(Sm, Sn, carried(L1));
    /* the control variable's final value must not be observed afterwards
       (reversal changes it) */
    no Sm: flow_dep(L1.head, Sm) AND nmem(Sm, L1);
ACTION
  modify(L1.step, eval(0 - 1));
  modify(L1.init, eval(L1.init + L1.final));
  modify(L1.final, eval(L1.init - L1.final));
  modify(L1.init, eval(L1.init - L1.final));
`

// NRM is loop normalization: a constant-bound loop with step k > 1 is
// rewritten to run 1..trip with step 1, substituting k*i + (init − k) for
// the control variable in the body. Always legal (a bijective reindexing).
const NRM = `
TYPE
  Loop: L1;
PRECOND
  Code_Pattern
    any L1: L1.kind == do AND type(L1.init) == const
      AND type(L1.final) == const AND type(L1.step) == const
      AND (L1.step > 1);
  Depend
ACTION
  forall S in L1.body do
    modify(S, subst(L1.lcv, L1.lcv * L1.step + L1.init - L1.step));
  end
  modify(L1.final, eval((L1.final - L1.init) / L1.step + 1));
  modify(L1.init, 1);
  modify(L1.step, 1);
`

// AGG is additive aggregation, the first member of the post-paper
// straight-line aggregation family (after Gossen et al., arXiv 1912.11281):
// two adjacent updates of the same accumulator by the same additive opcode
// collapse into one, "m := m + c1; m := m + c2" becoming "m := m + (c1+c2)"
// (and likewise for sub, since x-c1-c2 = x-(c1+c2)). The itype() guard
// restricts the family to integer operands: integer addition is associative
// (including on wraparound), float addition is not, and the farm's
// differential oracle compares outputs bit-for-bit. The depend clause makes
// the intermediate value unobservable — Si's definition flows only into Sj.
const AGG = `
TYPE
  Stmt: Si, Sj, Sm;
PRECOND
  Code_Pattern
    any Si: Si.kind == assign AND ((Si.opc == add) OR (Si.opc == sub))
      AND type(Si.opr_1) == var AND itype(Si.opr_1)
      AND (Si.opr_2 == Si.opr_1)
      AND type(Si.opr_3) == const AND itype(Si.opr_3);
  Depend
    /* the immediately following statement applies the same update to the
       same accumulator */
    any Sj: (Sj == Si.next) AND (Sj.kind == assign) AND (Sj.opc == Si.opc)
      AND (Sj.opr_1 == Si.opr_1) AND (Sj.opr_2 == Si.opr_1)
      AND type(Sj.opr_3) == const AND itype(Sj.opr_3);
    /* the intermediate value is unobservable */
    no Sm: flow_dep(Si, Sm) AND (Sm != Sj);
ACTION
  modify(Sj.opr_3, eval(Si.opr_3 + Sj.opr_3));
  delete(Si);
`

// AGM is multiplicative aggregation: AGG's shape over mul, collapsing
// "m := m * c1; m := m * c2" into "m := m * (c1*c2)". Integer
// multiplication is associative even under wraparound; division is
// deliberately excluded from the family (truncation and division-by-zero
// folding break the algebra).
const AGM = `
TYPE
  Stmt: Si, Sj, Sm;
PRECOND
  Code_Pattern
    any Si: Si.kind == assign AND (Si.opc == mul)
      AND type(Si.opr_1) == var AND itype(Si.opr_1)
      AND (Si.opr_2 == Si.opr_1)
      AND type(Si.opr_3) == const AND itype(Si.opr_3);
  Depend
    any Sj: (Sj == Si.next) AND (Sj.kind == assign) AND (Sj.opc == mul)
      AND (Sj.opr_1 == Si.opr_1) AND (Sj.opr_2 == Si.opr_1)
      AND type(Sj.opr_3) == const AND itype(Sj.opr_3);
    no Sm: flow_dep(Si, Sm) AND (Sm != Sj);
ACTION
  modify(Sj.opr_3, eval(Si.opr_3 * Sj.opr_3));
  delete(Si);
`

// AGS is aggressive (straight-line) aggregation: the AGG collapse across a
// gap of unrelated statements. The partner update is reachable through
// straight-line code (the RAE path idiom), nothing on the path touches the
// accumulator, no control structure intervenes (so Si dominates Sj and both
// run under the same conditions), and the intermediate value is otherwise
// unobservable. Subsumes AGG's adjacent case; kept separate so campaigns
// can run the cheap always-on member without the path search.
const AGS = `
TYPE
  Stmt: Si, Sj, Sm;
PRECOND
  Code_Pattern
    any Si: Si.kind == assign AND ((Si.opc == add) OR (Si.opc == sub))
      AND type(Si.opr_1) == var AND itype(Si.opr_1)
      AND (Si.opr_2 == Si.opr_1)
      AND type(Si.opr_3) == const AND itype(Si.opr_3);
  Depend
    /* a later same-op update of the same accumulator, reachable through
       straight-line code */
    any Sj: (Sj != Si) AND (Si < Sj) AND (Sj.kind == assign)
      AND (Sj.opc == Si.opc)
      AND (Sj.opr_1 == Si.opr_1) AND (Sj.opr_2 == Si.opr_1)
      AND type(Sj.opr_3) == const AND itype(Sj.opr_3)
      AND ((Sj == Si.next) OR mem(Sj.prev, path(Si, Sj)));
    /* nothing between touches the accumulator and no control structure
       intervenes */
    no Sm: mem(Sm, path(Si, Sj)),
      anti_dep(Si, Sm) OR out_dep(Si, Sm)
      OR (Sm.kind == if) OR (Sm.kind == else) OR (Sm.kind == endif)
      OR (Sm.kind == do) OR (Sm.kind == enddo);
    no Sm: flow_dep(Si, Sm) AND (Sm != Sj);
ACTION
  modify(Sj.opr_3, eval(Si.opr_3 + Sj.opr_3));
  delete(Si);
`

// Sources maps optimization names to their GOSpeL text. Names follow the
// paper's abbreviations.
var Sources = map[string]string{
	"CTP":            CTP,
	"CTP_FIG1":       CTPFig1,
	"CPP":            CPP,
	"CFO":            CFO,
	"DCE":            DCE,
	"ICM":            ICM,
	"INX":            INX,
	"CRC":            CRC,
	"BMP":            BMP,
	"PAR":            PAR,
	"LUR":            LUR,
	"LUR_LOWERFIRST": LURLowerFirst,
	"FUS":            FUS,
	"SRD":            SRD,
	"IDE":            IDE,
	"RAE":            RAE,
	"LRV":            LRV,
	"NRM":            NRM,
	"AGG":            AGG,
	"AGM":            AGM,
	"AGS":            AGS,
}

// Extended lists the literature optimizations beyond the paper's ten.
var Extended = []string{"CFO", "SRD", "IDE", "RAE", "LRV", "NRM", "AGG", "AGM", "AGS"}

// Aggregation lists the post-paper straight-line aggregation family
// (Gossen et al., arXiv 1912.11281) in cheap-to-aggressive order.
var Aggregation = []string{"AGG", "AGM", "AGS"}

// Ten lists the paper's ten optimizations in the order of Section 4.
var Ten = []string{"CPP", "CTP", "DCE", "ICM", "INX", "CRC", "BMP", "PAR", "LUR", "FUS"}

// Names returns all registered specification names, sorted.
func Names() []string {
	out := make([]string, 0, len(Sources))
	for n := range Sources {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Load parses and checks the named specification.
func Load(name string) (*gospel.Spec, error) {
	src, ok := Sources[name]
	if !ok {
		return nil, fmt.Errorf("specs: unknown optimization %q", name)
	}
	return gospel.ParseAndCheck(name, src)
}

// Compile loads the named specification and compiles it into an optimizer.
func Compile(name string, opts ...engine.Option) (*engine.Optimizer, error) {
	spec, err := Load(name)
	if err != nil {
		return nil, err
	}
	return engine.Compile(spec, opts...)
}

// MustCompile is Compile, panicking on error; for tests, examples and the
// experiment harness, where the specifications are the package's own.
func MustCompile(name string, opts ...engine.Option) *engine.Optimizer {
	o, err := Compile(name, opts...)
	if err != nil {
		panic(err)
	}
	return o
}

// RegionSafe reports whether the named builtin specification is
// region-eligible (region.EligibleSpec): running it one
// dependence-disjoint region at a time reproduces the whole-program
// fixpoint exactly. Unknown names are not safe.
func RegionSafe(name string) bool {
	s, err := Load(name)
	return err == nil && region.EligibleSpec(s)
}
