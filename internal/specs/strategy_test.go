package specs

import "repro/internal/engine"

func withMembers() []engine.Option {
	return []engine.Option{engine.WithStrategy(engine.StrategyMembers)}
}

func withDeps() []engine.Option {
	return []engine.Option{engine.WithStrategy(engine.StrategyDeps)}
}
