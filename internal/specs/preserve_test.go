package specs

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/workloads"
)

// TestSemanticPreservation is the correctness property behind the paper's
// quality experiment: applying any generated optimizer anywhere it claims
// applicability must not change the program's observable output. Every
// optimization is run to fixpoint on every workload and the outputs
// compared against the unoptimized run.
func TestSemanticPreservation(t *testing.T) {
	for _, w := range workloads.All {
		orig := w.Program()
		ref, err := interp.Run(orig, w.Input, interp.Config{})
		if err != nil {
			t.Fatalf("%s: baseline run: %v", w.Name, err)
		}
		for _, name := range append(append([]string{}, Ten...), "CFO") {
			p := w.Program()
			o := MustCompile(name)
			apps, err := o.ApplyAll(p)
			if err != nil {
				t.Errorf("%s on %s: %v", name, w.Name, err)
				continue
			}
			got, err := interp.Run(p, w.Input, interp.Config{})
			if err != nil {
				t.Errorf("%s on %s: optimized program fails: %v\n%s", name, w.Name, err, p)
				continue
			}
			if !interp.SameOutput(ref, got) {
				t.Errorf("%s on %s: output changed after %d applications\nwant %v\ngot  %v\n%s",
					name, w.Name, len(apps), ref.Output, got.Output, p)
			}
		}
	}
}

// TestSemanticPreservationUnderPipelines runs sequences of optimizations
// (the orderings the interaction experiment explores) and checks outputs.
func TestSemanticPreservationUnderPipelines(t *testing.T) {
	pipelines := [][]string{
		{"CTP", "CFO", "DCE"},
		{"CTP", "LUR", "FUS", "INX"},
		{"FUS", "INX", "LUR"},
		{"LUR", "FUS", "INX"},
		{"INX", "FUS", "LUR"},
		{"BMP", "FUS", "PAR"},
		{"CPP", "CTP", "CFO", "DCE", "ICM", "INX", "CRC", "BMP", "PAR", "LUR", "FUS"},
	}
	for _, w := range workloads.All {
		ref, err := interp.Run(w.Program(), w.Input, interp.Config{})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		for _, pipe := range pipelines {
			p := w.Program()
			for _, name := range pipe {
				if _, err := MustCompile(name).ApplyAll(p); err != nil {
					t.Errorf("%v on %s: %v", pipe, w.Name, err)
				}
			}
			got, err := interp.Run(p, w.Input, interp.Config{})
			if err != nil {
				t.Errorf("%v on %s: run: %v\n%s", pipe, w.Name, err, p)
				continue
			}
			if !interp.SameOutput(ref, got) {
				t.Errorf("%v on %s: output changed\nwant %v\ngot  %v\n%s",
					pipe, w.Name, ref.Output, got.Output, p)
			}
		}
	}
}

// TestStrategyInvariance: the membership evaluation strategy must never
// change which transformations are performed, only their cost.
func TestStrategyInvariance(t *testing.T) {
	for _, w := range workloads.All {
		for _, name := range Ten {
			var programs []string
			for _, s := range []string{"members", "deps", "heuristic"} {
				p := w.Program()
				var o = MustCompile(name)
				switch s {
				case "members":
					o = MustCompile(name, withMembers()...)
				case "deps":
					o = MustCompile(name, withDeps()...)
				}
				if _, err := o.ApplyAll(p); err != nil {
					t.Fatalf("%s/%s/%s: %v", name, w.Name, s, err)
				}
				programs = append(programs, p.String())
			}
			if programs[0] != programs[1] || programs[0] != programs[2] {
				t.Errorf("%s on %s: strategies disagree", name, w.Name)
			}
		}
	}
}
