package specs

import (
	"testing"

	"repro/internal/handopt"
	"repro/internal/interp"
	"repro/internal/proggen"
)

// fuzzSeeds is the number of random programs each fuzz property runs over.
const fuzzSeeds = 60

// TestFuzzSemanticPreservation applies every optimization to fixpoint on
// randomly generated programs and demands unchanged output — the strongest
// correctness property in the suite, over programs nobody hand-crafted.
func TestFuzzSemanticPreservation(t *testing.T) {
	names := append(append([]string{}, Ten...), "CFO")
	for seed := int64(0); seed < fuzzSeeds; seed++ {
		p0 := proggen.Generate(seed, proggen.Config{})
		ref, err := interp.Run(p0, nil, interp.Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, name := range names {
			p := proggen.Generate(seed, proggen.Config{})
			o := MustCompile(name)
			apps, err := o.ApplyAll(p)
			if err != nil {
				t.Errorf("seed %d, %s: %v", seed, name, err)
				continue
			}
			if err := p.Validate(); err != nil {
				t.Errorf("seed %d, %s: broke structure: %v", seed, name, err)
				continue
			}
			got, err := interp.Run(p, nil, interp.Config{})
			if err != nil {
				t.Errorf("seed %d, %s (%d apps): optimized program fails: %v\n%s",
					seed, name, len(apps), err, p)
				continue
			}
			if !interp.SameOutput(ref, got) {
				t.Errorf("seed %d, %s (%d apps): output changed\nwant %v\ngot  %v\n%s",
					seed, name, len(apps), ref.Output, got.Output, p)
			}
		}
	}
}

// TestFuzzPipelinePreservation runs a full optimization pipeline over random
// programs.
func TestFuzzPipelinePreservation(t *testing.T) {
	pipeline := []string{"CTP", "CFO", "CPP", "DCE", "ICM", "FUS", "INX", "CRC", "BMP", "LUR", "PAR"}
	for seed := int64(0); seed < fuzzSeeds; seed++ {
		p0 := proggen.Generate(seed, proggen.Config{})
		ref, err := interp.Run(p0, nil, interp.Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p := proggen.Generate(seed, proggen.Config{})
		for _, name := range pipeline {
			if _, err := MustCompile(name).ApplyAll(p); err != nil {
				t.Fatalf("seed %d, %s: %v", seed, name, err)
			}
		}
		got, err := interp.Run(p, nil, interp.Config{})
		if err != nil {
			t.Errorf("seed %d: pipeline output fails: %v\n%s", seed, err, p)
			continue
		}
		if !interp.SameOutput(ref, got) {
			t.Errorf("seed %d: pipeline changed output\nwant %v\ngot  %v\n%s",
				seed, ref.Output, got.Output, p)
		}
	}
}

// TestFuzzHandOptsPreserve mirrors the fuzz property for the hand-coded
// suite.
func TestFuzzHandOptsPreserve(t *testing.T) {
	for seed := int64(0); seed < fuzzSeeds/2; seed++ {
		ref, err := interp.Run(proggen.Generate(seed, proggen.Config{}), nil, interp.Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for name, f := range handopt.All {
			p := proggen.Generate(seed, proggen.Config{})
			f(p)
			got, err := interp.Run(p, nil, interp.Config{})
			if err != nil {
				t.Errorf("seed %d, hand %s: %v\n%s", seed, name, err, p)
				continue
			}
			if !interp.SameOutput(ref, got) {
				t.Errorf("seed %d, hand %s: output changed\n%s", seed, name, p)
			}
		}
	}
}
