package specs

import (
	"testing"

	"repro/internal/proggen"
	"repro/ir"
)

// The aggregation family (AGG/AGM/AGS) is the first post-paper spec set;
// these tests pin its algebra: integer chains collapse, float chains are
// refused (bit-exact soundness), and the straight-line member respects
// intervening readers, writers and control structure.

func TestAGGCollapsesAdjacentAddChain(t *testing.T) {
	p, n := apply(t, "AGG", `
PROGRAM p
INTEGER m
m = 1
m = m + 2
m = m + 3
m = m + 4
PRINT m
END`)
	if n != 2 {
		t.Fatalf("applications = %d, want 2\n%s", n, p)
	}
	if got := ir.FormatStmt(p.At(1)); got != "m := m + 9" {
		t.Errorf("collapsed = %q, want \"m := m + 9\"", got)
	}
	if out := run(t, p).Output; len(out) != 1 || out[0].AsInt() != 10 {
		t.Errorf("output = %v, want [10]", out)
	}
}

func TestAGGCollapsesSubChain(t *testing.T) {
	p, n := apply(t, "AGG", `
PROGRAM p
INTEGER m
m = 20
m = m - 3
m = m - 4
PRINT m
END`)
	if n != 1 {
		t.Fatalf("applications = %d, want 1", n)
	}
	if out := run(t, p).Output; len(out) != 1 || out[0].AsInt() != 13 {
		t.Errorf("output = %v, want [13]", out)
	}
}

func TestAGGRefusesFloatChain(t *testing.T) {
	// (x+0.5)+0.5 != x+1.0 at large magnitudes: float addition is not
	// associative, so the itype() guard must keep AGG off REAL chains.
	_, n := apply(t, "AGG", `
PROGRAM p
REAL x
x = 1.5
x = x + 0.5
x = x + 0.5
PRINT x
END`)
	if n != 0 {
		t.Fatalf("AGG collapsed a float chain (%d applications)", n)
	}
}

func TestAGGRefusesMixedOps(t *testing.T) {
	_, n := apply(t, "AGG", `
PROGRAM p
INTEGER m
m = 1
m = m + 2
m = m - 3
PRINT m
END`)
	if n != 0 {
		t.Fatalf("AGG mixed add into sub (%d applications)", n)
	}
}

func TestAGGRespectsInterveningReader(t *testing.T) {
	// p observes the intermediate value, so the chain must survive.
	prog, n := apply(t, "AGG", `
PROGRAM p
INTEGER m, q
m = 1
m = m + 2
q = m
m = m + 3
PRINT m, q
END`)
	if n != 0 {
		t.Fatalf("AGG erased an observed intermediate (%d applications)\n%s", n, prog)
	}
}

func TestAGMCollapsesMulChain(t *testing.T) {
	p, n := apply(t, "AGM", `
PROGRAM p
INTEGER m
m = 2
m = m * 3
m = m * 5
PRINT m
END`)
	if n != 1 {
		t.Fatalf("applications = %d, want 1", n)
	}
	if out := run(t, p).Output; len(out) != 1 || out[0].AsInt() != 30 {
		t.Errorf("output = %v, want [30]", out)
	}
}

func TestAGSCollapsesAcrossGap(t *testing.T) {
	p, n := apply(t, "AGS", `
PROGRAM p
INTEGER m
REAL x
m = 1
m = m + 2
x = 1.5
m = m + 3
PRINT m, x
END`)
	if n != 1 {
		t.Fatalf("applications = %d, want 1\n%s", n, p)
	}
	out := run(t, p).Output
	if len(out) != 2 || out[0].AsInt() != 6 {
		t.Errorf("output = %v, want m=6", out)
	}
}

func TestAGSBlockedByControlStructure(t *testing.T) {
	// The second update runs conditionally; collapsing would change the
	// else path. The path's control-kind witness must block it.
	_, n := apply(t, "AGS", `
PROGRAM p
INTEGER m, q
q = 1
m = 1
m = m + 2
IF (q < 3) THEN
m = m + 3
ENDIF
PRINT m
END`)
	if n != 0 {
		t.Fatalf("AGS collapsed across control structure (%d applications)", n)
	}
}

func TestAGSBlockedByInterveningWriter(t *testing.T) {
	_, n := apply(t, "AGS", `
PROGRAM p
INTEGER m
m = 1
m = m + 2
m = 7
m = m + 3
PRINT m
END`)
	if n != 0 {
		t.Fatalf("AGS collapsed across a redefinition (%d applications)", n)
	}
}

// TestAggregationPreservesSemanticsOnCorpus runs the whole family over an
// accumulator-heavy proggen corpus and checks outputs are bit-identical
// before and after — the same invariant the farm's oracle enforces at
// scale.
func TestAggregationPreservesSemanticsOnCorpus(t *testing.T) {
	profile := &proggen.Profile{Loop: 10, If: 6, ScalarAssign: 12, ConstDef: 12, ArrayAssign: 20, AccumRun: 40}
	for seed := int64(0); seed < 40; seed++ {
		p := proggen.Generate(seed, proggen.Config{Profile: profile})
		want := run(t, p).Output
		for _, name := range Aggregation {
			o := MustCompile(name)
			if _, err := o.ApplyAll(p); err != nil {
				t.Fatalf("seed %d: %s: %v", seed, name, err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("seed %d: %s broke structure: %v", seed, name, err)
			}
		}
		got := run(t, p).Output
		if len(got) != len(want) {
			t.Fatalf("seed %d: output length %d != %d", seed, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("seed %d: output[%d] = %v, want %v", seed, i, got[i], want[i])
			}
		}
	}
}
