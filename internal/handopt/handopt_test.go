package handopt

import (
	"testing"

	"repro/internal/frontend"
	"repro/internal/interp"
	"repro/internal/workloads"
	"repro/ir"
)

func TestGet(t *testing.T) {
	if _, err := Get("CTP"); err != nil {
		t.Fatal(err)
	}
	if _, err := Get("NOPE"); err == nil {
		t.Fatal("unknown name must error")
	}
	if len(All) != 11 {
		t.Errorf("hand-coded suite has %d optimizations, want 11", len(All))
	}
}

func TestHandCTP(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER x, y, z
x = 5
y = x + 2
z = y
END`)
	if n := ConstantPropagation(p); n != 1 {
		t.Fatalf("applications = %d\n%s", n, p)
	}
	if got := ir.FormatStmt(p.At(1)); got != "y := 5 + 2" {
		t.Errorf("propagated = %q", got)
	}
}

func TestHandCPPBlockedByRedefinition(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER x, y, z
READ y
x = y
y = 0
z = x + 1
END`)
	if n := CopyPropagation(p); n != 0 {
		t.Fatalf("must be blocked, applied %d", n)
	}
}

func TestHandCFOAndDCE(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER x, y
x = 3 * 4
y = 99
PRINT x
END`)
	if n := ConstantFolding(p); n != 1 {
		t.Fatalf("CFO = %d", n)
	}
	if n := DeadCodeElimination(p); n != 1 {
		t.Fatalf("DCE = %d\n%s", n, p)
	}
	if p.Len() != 2 {
		t.Fatalf("program:\n%s", p)
	}
}

func TestHandICM(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER i, c
REAL a(10)
DO i = 1, 10
  c = 7
  a(i) = c
ENDDO
END`)
	if n := InvariantCodeMotion(p); n != 1 {
		t.Fatalf("ICM = %d\n%s", n, p)
	}
	if p.At(0).Kind != ir.SAssign {
		t.Fatalf("not hoisted:\n%s", p)
	}
}

func TestHandINX(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER i, j
REAL a(20,20)
DO i = 1, 10
  DO j = 1, 10
    a(i,j) = a(i,j) + 1.0
  ENDDO
ENDDO
END`)
	if n := LoopInterchange(p); n != 1 {
		t.Fatalf("INX = %d", n)
	}
	if ir.Loops(p)[0].LCV() != "j" {
		t.Fatalf("not interchanged:\n%s", p)
	}
}

func TestHandCRC(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER i, j, k
REAL a(10,10,10)
DO i = 1, 10
  DO j = 1, 10
    DO k = 1, 10
      a(i,j,k) = 1.0
    ENDDO
  ENDDO
ENDDO
END`)
	if n := LoopCirculation(p); n != 1 {
		t.Fatalf("CRC = %d", n)
	}
	loops := ir.Loops(p)
	if loops[0].LCV() != "j" || loops[2].LCV() != "i" {
		t.Fatalf("rotation wrong:\n%s", p)
	}
}

func TestHandPAR(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(10), b(10)
DO i = 1, 10
  a(i) = b(i)
ENDDO
DO i = 2, 10
  a(i) = a(i-1)
ENDDO
END`)
	if n := Parallelization(p); n != 1 {
		t.Fatalf("PAR = %d\n%s", n, p)
	}
	loops := ir.Loops(p)
	if !loops[0].Head.Parallel || loops[1].Head.Parallel {
		t.Fatalf("wrong loop parallelized:\n%s", p)
	}
}

func TestHandLUR(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(20)
DO i = 1, 10
  a(i) = 1.0
ENDDO
END`)
	if n := LoopUnrolling(p); n != 1 {
		t.Fatalf("LUR = %d", n)
	}
	l := ir.Loops(p)[0]
	if l.Head.Step.Val.AsInt() != 2 || len(l.Body(p)) != 2 {
		t.Fatalf("unroll wrong:\n%s", p)
	}
}

func TestHandBMPAndFUS(t *testing.T) {
	p := frontend.MustParse(`
PROGRAM p
INTEGER i
REAL a(20), b(20)
DO i = 1, 10
  a(i) = 1.0
ENDDO
DO i = 3, 12
  b(i) = 2.0
ENDDO
END`)
	if n := LoopFusion(p); n != 0 {
		t.Fatal("FUS before BMP must not apply")
	}
	if n := Bumping(p); n != 1 {
		t.Fatalf("BMP = %d", n)
	}
	if n := LoopFusion(p); n != 1 {
		t.Fatalf("FUS after BMP = %d\n%s", n, p)
	}
	if len(ir.Loops(p)) != 1 {
		t.Fatalf("not fused:\n%s", p)
	}
}

func TestSubstVarStmt(t *testing.T) {
	s := &ir.Stmt{Kind: ir.SAssign,
		Dst: ir.ArrayOp("a", ir.VarExpr("i")),
		Op:  ir.OpAdd, A: ir.ArrayOp("b", ir.VarExpr("i")), B: ir.IntOp(1)}
	repl := ir.VarExpr("i").Add(ir.ConstExpr(1))
	if !Substitutable(s, "i", repl) {
		t.Fatal("subscript substitution must be possible")
	}
	if err := SubstVarStmt(s, "i", repl); err != nil {
		t.Fatal(err)
	}
	if got := ir.FormatStmt(s); got != "a(i+1) := b(i+1) + 1" {
		t.Errorf("result = %q", got)
	}

	// Direct operand with affine replacement in a binary op: impossible.
	s2 := &ir.Stmt{Kind: ir.SAssign, Dst: ir.VarOp("x"),
		Op: ir.OpMul, A: ir.VarOp("i"), B: ir.VarOp("y")}
	if Substitutable(s2, "i", repl) {
		t.Error("i*y with i := i+1 must be unsubstitutable")
	}
	// But a plain copy absorbs it as an add.
	s3 := &ir.Stmt{Kind: ir.SAssign, Dst: ir.VarOp("x"), Op: ir.OpCopy, A: ir.VarOp("i")}
	if err := SubstVarStmt(s3, "i", repl); err != nil {
		t.Fatal(err)
	}
	if got := ir.FormatStmt(s3); got != "x := i + 1" {
		t.Errorf("copy absorption = %q", got)
	}
	// Pure renaming always works.
	s4 := &ir.Stmt{Kind: ir.SAssign, Dst: ir.VarOp("x"), Op: ir.OpMul, A: ir.VarOp("i"), B: ir.VarOp("y")}
	if err := SubstVarStmt(s4, "i", ir.VarExpr("j")); err != nil {
		t.Fatal(err)
	}
	if s4.A.Name != "j" {
		t.Error("rename failed")
	}
}

// TestHandOptsPreserveSemantics mirrors the generated-optimizer
// preservation property for the hand-coded suite.
func TestHandOptsPreserveSemantics(t *testing.T) {
	for _, w := range workloads.All {
		ref, err := interp.Run(w.Program(), w.Input, interp.Config{})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		for name, f := range All {
			p := w.Program()
			f(p)
			if err := p.Validate(); err != nil {
				t.Errorf("%s on %s: %v", name, w.Name, err)
				continue
			}
			got, err := interp.Run(p, w.Input, interp.Config{})
			if err != nil {
				t.Errorf("%s on %s: %v\n%s", name, w.Name, err, p)
				continue
			}
			if !interp.SameOutput(ref, got) {
				t.Errorf("%s on %s changed output\nwant %v\ngot  %v\n%s",
					name, w.Name, ref.Output, got.Output, p)
			}
		}
	}
}
