// Package handopt contains hand-coded implementations of the same
// optimizations the specs package expresses in GOSpeL. They are the
// reproduction's analog of the paper's "hand-crafted optimizers": written
// directly against the IR and dependence analyses, independently of the
// GOSpeL engine, so the quality experiment (E1) can compare application
// points and resulting code between the generated and the hand-written
// versions.
package handopt

import (
	"fmt"

	"repro/dep"
	"repro/ir"
)

// Func is a hand-coded optimizer: it transforms p in place and returns the
// number of applications performed. Like the generated optimizers' ApplyAll,
// every Func runs to fixpoint with dependences recomputed between
// applications.
type Func func(p *ir.Program) int

// All maps optimization names (the paper's abbreviations) to their
// hand-coded implementations.
var All = map[string]Func{
	"CTP": ConstantPropagation,
	"CPP": CopyPropagation,
	"CFO": ConstantFolding,
	"DCE": DeadCodeElimination,
	"ICM": InvariantCodeMotion,
	"INX": LoopInterchange,
	"CRC": LoopCirculation,
	"BMP": Bumping,
	"PAR": Parallelization,
	"LUR": LoopUnrolling,
	"FUS": LoopFusion,
}

// Get returns the named optimizer.
func Get(name string) (Func, error) {
	f, ok := All[name]
	if !ok {
		return nil, fmt.Errorf("handopt: unknown optimization %q", name)
	}
	return f, nil
}

const maxPasses = 1000

// eqPattern matches loop-independent dependences only.
var eqPattern = dep.Vector{dep.DirEQ}

// ConstantPropagation replaces a use of a variable by a constant when the
// only definition reaching that use assigns the constant.
func ConstantPropagation(p *ir.Program) int {
	total := 0
	for pass := 0; pass < maxPasses; pass++ {
		g := dep.Compute(p)
		applied := false
		for _, si := range p.Stmts() {
			if si.Kind != ir.SAssign || si.Op != ir.OpCopy || !si.Dst.IsVar() || !si.A.IsConst() {
				continue
			}
			for _, d := range g.From(si) {
				if d.Kind != dep.Flow || !d.Vec.Matches(eqPattern) || d.DstPos == 0 {
					continue
				}
				if otherDefReaches(g, si, d.Dst, d.DstPos) {
					continue
				}
				slot := d.Dst.OperandSlot(d.DstPos)
				if slot == nil || !slot.IsVar() {
					continue
				}
				*slot = si.A.Clone()
				total++
				applied = true
				break // dependences are stale; recompute
			}
			if applied {
				break
			}
		}
		if !applied {
			return total
		}
	}
	return total
}

// otherDefReaches reports whether a flow dependence from a different
// definition reaches the same operand of dst.
func otherDefReaches(g *dep.Graph, si, dst *ir.Stmt, pos int) bool {
	for _, e := range g.To(dst) {
		if e.Kind == dep.Flow && e.Src != si && e.DstPos == pos {
			return true
		}
	}
	return false
}

// CopyPropagation replaces a use of x by y for a copy x := y, when the copy
// is the sole reaching definition and y is not redefined on any path from
// the copy to the use.
func CopyPropagation(p *ir.Program) int {
	total := 0
	for pass := 0; pass < maxPasses; pass++ {
		g := dep.Compute(p)
		applied := false
		for _, si := range p.Stmts() {
			if si.Kind != ir.SAssign || si.Op != ir.OpCopy || !si.Dst.IsVar() || !si.A.IsVar() {
				continue
			}
			for _, d := range g.From(si) {
				if d.Kind != dep.Flow || !d.Vec.Matches(eqPattern) || d.DstPos == 0 {
					continue
				}
				if otherDefReaches(g, si, d.Dst, d.DstPos) {
					continue
				}
				if sourceRedefinedOnPath(p, g, si, d.Dst) {
					continue
				}
				slot := d.Dst.OperandSlot(d.DstPos)
				if slot == nil || !slot.IsVar() {
					continue
				}
				*slot = si.A.Clone()
				total++
				applied = true
				break
			}
			if applied {
				break
			}
		}
		if !applied {
			return total
		}
	}
	return total
}

// sourceRedefinedOnPath reports whether the copy's source variable is
// redefined by a statement on some control-flow path strictly between si
// and sj.
func sourceRedefinedOnPath(p *ir.Program, g *dep.Graph, si, sj *ir.Stmt) bool {
	between := pathSet(p, si, sj)
	for _, d := range g.From(si) {
		if d.Kind == dep.Anti && between[d.Dst] {
			return true
		}
	}
	return false
}

// ConstantFolding evaluates arithmetic statements with constant operands.
func ConstantFolding(p *ir.Program) int {
	total := 0
	for pass := 0; pass < maxPasses; pass++ {
		applied := false
		for _, s := range p.Stmts() {
			if s.Kind != ir.SAssign || s.Op == ir.OpCopy || !s.A.IsConst() || !s.B.IsConst() {
				continue
			}
			s.A = ir.ConstOp(ir.Arith(s.Op, s.A.Val, s.B.Val))
			s.Op = ir.OpCopy
			s.B = ir.None()
			total++
			applied = true
		}
		if !applied {
			return total
		}
	}
	return total
}

// DeadCodeElimination deletes scalar assignments whose value no statement
// receives.
func DeadCodeElimination(p *ir.Program) int {
	total := 0
	for pass := 0; pass < maxPasses; pass++ {
		g := dep.Compute(p)
		applied := false
		for _, s := range p.Stmts() {
			if s.Kind != ir.SAssign || !s.Dst.IsVar() {
				continue
			}
			dead := true
			for _, d := range g.From(s) {
				if d.Kind == dep.Flow {
					dead = false
					break
				}
			}
			if dead {
				p.Delete(s)
				total++
				applied = true
				break
			}
		}
		if !applied {
			return total
		}
	}
	return total
}

// InvariantCodeMotion hoists loop-invariant scalar assignments (sole
// unconditioned definition, operands invariant, no upward-exposed prior
// use, value unobserved after the loop) to before the loop.
func InvariantCodeMotion(p *ir.Program) int {
	total := 0
	for pass := 0; pass < maxPasses; pass++ {
		g := dep.Compute(p)
		applied := false
	search:
		for _, l := range ir.Loops(p) {
			for _, si := range l.Body(p) {
				if si.Kind != ir.SAssign || !si.Dst.IsVar() {
					continue
				}
				if !icmSafe(p, g, l, si) {
					continue
				}
				p.Move(si, p.Prev(l.Head))
				total++
				applied = true
				break search
			}
		}
		if !applied {
			return total
		}
	}
	return total
}

func icmSafe(p *ir.Program, g *dep.Graph, l ir.Loop, si *ir.Stmt) bool {
	// Operands computed outside the loop.
	for _, d := range g.To(si) {
		switch d.Kind {
		case dep.Flow:
			if l.Contains(p, d.Src) || d.Src == l.Head {
				return false
			}
		case dep.Control:
			if l.Contains(p, d.Src) {
				return false
			}
		}
	}
	for _, d := range g.From(si) {
		switch d.Kind {
		case dep.Output:
			if d.Dst != si && l.Contains(p, d.Dst) {
				return false
			}
		case dep.Flow:
			if !l.Contains(p, d.Dst) && d.Dst != si {
				return false // observed after the loop
			}
			if d.Dst == si {
				return false // depends on itself
			}
		}
	}
	for _, d := range g.To(si) {
		switch d.Kind {
		case dep.Output:
			if d.Src != si && l.Contains(p, d.Src) {
				return false
			}
		case dep.Anti:
			if d.Src != si && l.Contains(p, d.Src) && !d.Carried {
				return false // upward-exposed prior use
			}
		}
	}
	return true
}

// interchangeBlocked reports a (<,>) flow/anti/output dependence between
// statements of the inner loop.
func interchangeBlocked(p *ir.Program, g *dep.Graph, inner ir.Loop) bool {
	pattern := dep.Vector{dep.DirLT, dep.DirGT}
	for _, sn := range inner.Body(p) {
		for _, d := range g.From(sn) {
			if d.Kind == dep.Control {
				continue
			}
			if inner.Contains(p, d.Dst) && d.Vec.Matches(pattern) {
				return true
			}
		}
	}
	return false
}

// LoopInterchange swaps tightly nested loop pairs when legal. Each pair is
// interchanged at most once (the transformation is self-inverse).
func LoopInterchange(p *ir.Program) int {
	total := 0
	done := map[[2]int]bool{}
	for pass := 0; pass < maxPasses; pass++ {
		g := dep.Compute(p)
		applied := false
		for _, pair := range ir.TightPairs(p) {
			outer, inner := pair[0], pair[1]
			key := [2]int{outer.Head.ID, inner.Head.ID}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			if done[key] {
				continue
			}
			if g.Exists(dep.Flow, outer.Head, inner.Head, nil) {
				continue
			}
			if interchangeBlocked(p, g, inner) {
				continue
			}
			p.Move(outer.Head, inner.Head)
			p.Move(outer.End, p.Prev(inner.End))
			done[key] = true
			total++
			applied = true
			break
		}
		if !applied {
			return total
		}
	}
	return total
}

// LoopCirculation rotates a depth-3 tight nest (1,2,3) → (2,3,1) when no
// dependence direction vector becomes lexicographically negative.
func LoopCirculation(p *ir.Program) int {
	total := 0
	done := map[[3]int]bool{}
	blocked1 := dep.Vector{dep.DirLT, dep.DirGT, dep.DirAny}
	blocked2 := dep.Vector{dep.DirLT, dep.DirEQ, dep.DirGT}
	for pass := 0; pass < maxPasses; pass++ {
		g := dep.Compute(p)
		applied := false
	search:
		for _, p12 := range ir.TightPairs(p) {
			for _, p23 := range ir.TightPairs(p) {
				if p23[0].Head != p12[1].Head {
					continue
				}
				l1, l2, l3 := p12[0], p12[1], p23[1]
				// Key on the unordered loop set: rotating is cyclic, and
				// one application per nest matches the generated optimizer.
				key := [3]int{l1.Head.ID, l2.Head.ID, l3.Head.ID}
				sortKey(&key)
				if done[key] {
					continue
				}
				if g.Exists(dep.Flow, l1.Head, l2.Head, nil) ||
					g.Exists(dep.Flow, l1.Head, l3.Head, nil) ||
					g.Exists(dep.Flow, l2.Head, l3.Head, nil) {
					continue
				}
				bad := false
				for _, sn := range l3.Body(p) {
					for _, d := range g.From(sn) {
						if d.Kind == dep.Control || !l3.Contains(p, d.Dst) {
							continue
						}
						if d.Vec.Matches(blocked1) || d.Vec.Matches(blocked2) {
							bad = true
							break
						}
					}
					if bad {
						break
					}
				}
				if bad {
					continue
				}
				p.Move(l1.Head, l3.Head)
				p.Move(l1.End, p.Prev(l3.End))
				done[key] = true
				total++
				applied = true
				break search
			}
		}
		if !applied {
			return total
		}
	}
	return total
}

func sortKey(k *[3]int) {
	if k[0] > k[1] {
		k[0], k[1] = k[1], k[0]
	}
	if k[1] > k[2] {
		k[1], k[2] = k[2], k[1]
	}
	if k[0] > k[1] {
		k[0], k[1] = k[1], k[0]
	}
}

// Parallelization marks loops carrying no flow/anti/output dependence at
// their own level as DOALL.
func Parallelization(p *ir.Program) int {
	g := dep.Compute(p)
	total := 0
	for _, l := range ir.Loops(p) {
		if l.Head.Parallel {
			continue
		}
		if loopCarries(p, g, l) {
			continue
		}
		l.Head.Parallel = true
		total++
	}
	return total
}

func loopCarries(p *ir.Program, g *dep.Graph, l ir.Loop) bool {
	for _, sm := range l.Body(p) {
		for _, d := range g.From(sm) {
			if d.Kind == dep.Control || !d.Carried {
				continue
			}
			if !l.Contains(p, d.Dst) {
				continue
			}
			level := 0
			for i, cl := range ir.CommonLoops(p, d.Src, d.Dst) {
				if cl.Head == l.Head {
					level = i + 1
				}
			}
			if level != 0 && d.Level == level {
				return true
			}
		}
	}
	return false
}

// LoopUnrolling unrolls constant-bound even-trip loops by two.
func LoopUnrolling(p *ir.Program) int {
	total := 0
	done := map[int]bool{}
	for pass := 0; pass < maxPasses; pass++ {
		applied := false
		for _, l := range ir.Loops(p) {
			h := l.Head
			if done[h.ID] || h.Parallel {
				continue
			}
			if !h.Final.IsConst() || !h.Init.IsConst() || !h.Step.IsConst() {
				continue
			}
			step := h.Step.Val.AsInt()
			if step == 0 {
				continue
			}
			trip := (h.Final.Val.AsInt()-h.Init.Val.AsInt())/step + 1
			if trip <= 0 || trip%2 != 0 {
				continue
			}
			body := l.Body(p)
			repl := ir.VarExpr(h.LCV).Add(ir.ConstExpr(step))
			ok := true
			for _, s := range body {
				if !Substitutable(s, h.LCV, repl) {
					ok = false
					break
				}
			}
			if !ok {
				done[h.ID] = true
				continue
			}
			for _, s := range body {
				c := p.Copy(s, p.Prev(l.End))
				if err := SubstVarStmt(c, h.LCV, repl); err != nil {
					panic("handopt: unroll subst failed after check: " + err.Error())
				}
			}
			h.Step = ir.IntOp(step * 2)
			done[h.ID] = true
			total++
			applied = true
			break
		}
		if !applied {
			return total
		}
	}
	return total
}

// Bumping aligns an adjacent constant-bound loop pair by shifting the
// second loop's range onto the first's.
func Bumping(p *ir.Program) int {
	total := 0
	for pass := 0; pass < maxPasses; pass++ {
		applied := false
	search:
		for _, pair := range ir.AdjacentPairs(p) {
			l1, l2 := pair[0], pair[1]
			h1, h2 := l1.Head, l2.Head
			if h1.LCV != h2.LCV || !h1.Step.Equal(h2.Step) {
				continue
			}
			if !h1.Init.IsConst() || !h2.Init.IsConst() || !h1.Final.IsConst() || !h2.Final.IsConst() {
				continue
			}
			if h1.Init.Equal(h2.Init) {
				continue
			}
			step := h1.Step.Val.AsInt()
			if step == 0 {
				continue
			}
			trip1 := (h1.Final.Val.AsInt()-h1.Init.Val.AsInt())/step + 1
			trip2 := (h2.Final.Val.AsInt()-h2.Init.Val.AsInt())/step + 1
			if trip1 != trip2 {
				continue
			}
			k := h2.Init.Val.AsInt() - h1.Init.Val.AsInt()
			repl := ir.VarExpr(h2.LCV).Add(ir.ConstExpr(k))
			for _, s := range l2.Body(p) {
				if !Substitutable(s, h2.LCV, repl) {
					continue search
				}
			}
			for _, s := range l2.Body(p) {
				if err := SubstVarStmt(s, h2.LCV, repl); err != nil {
					panic("handopt: bump subst failed after check: " + err.Error())
				}
			}
			h2.Init = h1.Init.Clone()
			h2.Final = h1.Final.Clone()
			total++
			applied = true
			break
		}
		if !applied {
			return total
		}
	}
	return total
}

// LoopFusion merges adjacent loops with identical headers when no
// dependence would run backwards in the fused iteration space.
func LoopFusion(p *ir.Program) int {
	total := 0
	for pass := 0; pass < maxPasses; pass++ {
		applied := false
	search:
		for _, pair := range ir.AdjacentPairs(p) {
			l1, l2 := pair[0], pair[1]
			h1, h2 := l1.Head, l2.Head
			if h1.LCV != h2.LCV || !h1.Init.Equal(h2.Init) ||
				!h1.Final.Equal(h2.Final) || !h1.Step.Equal(h2.Step) {
				continue
			}
			for _, sm := range l1.Body(p) {
				for _, sn := range l2.Body(p) {
					if dep.FusedDirections(p, sm, sn, l1, l2).Has(dep.DirGT) {
						continue search
					}
				}
			}
			for _, s := range l2.Body(p) {
				p.Move(s, p.Prev(l1.End))
			}
			p.Delete(l2.Head)
			p.Delete(l2.End)
			total++
			applied = true
			break
		}
		if !applied {
			return total
		}
	}
	return total
}

// pathSet returns the statements strictly between a and b on some
// control-flow path.
func pathSet(p *ir.Program, a, b *ir.Stmt) map[*ir.Stmt]bool {
	g := buildCFG(p)
	ai, bi := p.Index(a), p.Index(b)
	fromA := g.ReachableFrom(ai)
	toB := g.Reaches(bi)
	out := map[*ir.Stmt]bool{}
	for i := 0; i < p.Len(); i++ {
		if i == ai || i == bi {
			continue
		}
		if fromA[i] && toB[i] {
			out[p.At(i)] = true
		}
	}
	return out
}
