package handopt

import (
	"fmt"

	"repro/internal/cfg"
	"repro/ir"
)

func buildCFG(p *ir.Program) *cfg.Graph { return cfg.Build(p) }

// Substitutable reports whether SubstVarStmt can rewrite every occurrence
// of v in s with repl.
func Substitutable(s *ir.Stmt, v string, repl ir.LinExpr) bool {
	c := ir.CloneStmt(s)
	return SubstVarStmt(c, v, repl) == nil
}

// SubstVarStmt rewrites occurrences of scalar variable v in every operand
// of s by the affine expression repl: array subscripts substitute directly;
// a direct Var operand is replaced when repl is a plain variable or
// constant, or — for the sole source of a copy — expanded to an add.
// It mirrors the GOSpeL engine's subst action so hand-coded and generated
// unrolling/bumping behave identically.
func SubstVarStmt(s *ir.Stmt, v string, repl ir.LinExpr) error {
	repl = repl.Normalize()
	var direct *ir.Operand
	switch {
	case repl.IsConst():
		op := ir.IntOp(repl.Const)
		direct = &op
	case len(repl.Terms) == 1 && repl.Terms[0].Coef == 1 && repl.Const == 0:
		op := ir.VarOp(repl.Terms[0].Var)
		direct = &op
	}

	if s.Kind == ir.SAssign && s.Op == ir.OpCopy && s.A.IsVar() && s.A.Name == v && direct == nil {
		if len(repl.Terms) == 1 && repl.Terms[0].Coef == 1 {
			s.Op = ir.OpAdd
			s.A = ir.VarOp(repl.Terms[0].Var)
			s.B = ir.IntOp(repl.Const)
			if s.Dst.IsArray() {
				s.Dst = s.Dst.SubstVar(v, repl)
			}
			return nil
		}
	}

	substOp := func(op *ir.Operand) error {
		switch op.Kind {
		case ir.ArrayRef:
			*op = op.SubstVar(v, repl)
		case ir.Var:
			if op.Name != v {
				return nil
			}
			if direct == nil {
				return fmt.Errorf("handopt: %s := %s not expressible in operand", v, repl)
			}
			*op = direct.Clone()
		}
		return nil
	}
	for _, op := range []*ir.Operand{&s.Dst, &s.A, &s.B, &s.Init, &s.Final, &s.Step} {
		if err := substOp(op); err != nil {
			return err
		}
	}
	for i := range s.Args {
		if err := substOp(&s.Args[i]); err != nil {
			return err
		}
	}
	return nil
}
