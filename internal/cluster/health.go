package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// PeerStatus is one peer's health as the prober last saw it.
type PeerStatus struct {
	Addr string `json:"addr"`
	Up   bool   `json:"up"`
	// Fails counts consecutive failed probes; it resets on the first
	// success and drives the probe backoff.
	Fails       int       `json:"fails,omitempty"`
	LastErr     string    `json:"last_error,omitempty"`
	LastChecked time.Time `json:"last_checked,omitzero"`
}

// peerState is the mutable probe record behind one PeerStatus.
type peerState struct {
	addr  string
	up    bool
	fails int
	err   string
	at    time.Time
}

// Prober watches a fixed peer set by polling each peer's /healthz. Peers
// start optimistically up — a fresh cluster must not refuse to forward
// before its first probe round — and healthy peers are re-checked every
// interval. A failing peer backs off exponentially (interval doubling per
// consecutive failure, capped) so a long-dead peer costs a connect attempt
// every backoffCap rather than every tick, while the forwarding layer's
// MarkDown feedback keeps detection latency at one failed request, not one
// probe cycle.
type Prober struct {
	client     *http.Client
	interval   time.Duration
	timeout    time.Duration // per-probe deadline
	backoffCap time.Duration
	onChange   func(addr string, up bool)

	mu    sync.RWMutex
	peers map[string]*peerState

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewProber builds a prober over the peer addresses. onChange, when
// non-nil, fires on every up↔down transition (not on each probe).
func NewProber(peers []string, client *http.Client, interval, backoffCap time.Duration, onChange func(addr string, up bool)) *Prober {
	if interval <= 0 {
		interval = time.Second
	}
	if backoffCap < interval {
		backoffCap = 15 * time.Second
	}
	// Each probe gets its own deadline — the shared client is also the
	// forwarding client and deliberately carries no client-wide timeout —
	// clamped so a huge interval cannot leave a probe goroutine pinned to
	// a black-holed peer.
	timeout := interval
	if timeout < 500*time.Millisecond {
		timeout = 500 * time.Millisecond
	}
	if timeout > 5*time.Second {
		timeout = 5 * time.Second
	}
	p := &Prober{
		client:     client,
		interval:   interval,
		timeout:    timeout,
		backoffCap: backoffCap,
		onChange:   onChange,
		peers:      map[string]*peerState{},
		stop:       make(chan struct{}),
	}
	for _, addr := range peers {
		p.peers[addr] = &peerState{addr: addr, up: true}
	}
	return p
}

// Start launches one probe loop per peer.
func (p *Prober) Start() {
	for addr := range p.peers {
		p.wg.Add(1)
		go p.loop(addr)
	}
}

// Close stops the probe loops and waits for them.
func (p *Prober) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// delay returns how long to sleep before re-probing a peer that has failed
// fails consecutive times: interval << fails, capped.
func (p *Prober) delay(fails int) time.Duration {
	d := p.interval
	for i := 0; i < fails && d < p.backoffCap; i++ {
		d *= 2
	}
	if d > p.backoffCap {
		d = p.backoffCap
	}
	return d
}

func (p *Prober) loop(addr string) {
	defer p.wg.Done()
	// The first probe waits a full interval rather than firing at once:
	// peers start optimistically up precisely so that a cluster whose
	// nodes boot simultaneously does not mark everyone down in the race
	// between probe zero and the peers' listeners coming up.
	timer := time.NewTimer(p.interval)
	defer timer.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-timer.C:
		}
		err := p.check(addr)
		p.mu.Lock()
		st := p.peers[addr]
		st.at = time.Now()
		was := st.up
		if err != nil {
			st.fails++
			st.err = err.Error()
			st.up = false
		} else {
			st.fails = 0
			st.err = ""
			st.up = true
		}
		now, fails := st.up, st.fails
		p.mu.Unlock()
		if was != now && p.onChange != nil {
			p.onChange(addr, now)
		}
		timer.Reset(p.delay(fails))
	}
}

// check performs one /healthz round-trip under the per-probe deadline.
func (p *Prober) check(addr string) error {
	ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	return nil
}

// Up reports whether addr is believed healthy. Unknown addresses (the
// local node, which is never probed) count as up.
func (p *Prober) Up(addr string) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	st, ok := p.peers[addr]
	return !ok || st.up
}

// MarkDown records out-of-band failure evidence — a forward that could not
// reach the peer — so routing stops picking it before the next probe tick.
// The probe loop remains the sole recovery path.
func (p *Prober) MarkDown(addr string, err error) {
	p.mu.Lock()
	st, ok := p.peers[addr]
	var was bool
	if ok {
		was = st.up
		st.up = false
		st.fails++
		if err != nil {
			st.err = err.Error()
		}
		st.at = time.Now()
	}
	p.mu.Unlock()
	if ok && was && p.onChange != nil {
		p.onChange(addr, false)
	}
}

// Status snapshots every probed peer, sorted by address.
func (p *Prober) Status() []PeerStatus {
	p.mu.RLock()
	out := make([]PeerStatus, 0, len(p.peers))
	for _, st := range p.peers {
		out = append(out, PeerStatus{
			Addr: st.addr, Up: st.up, Fails: st.fails,
			LastErr: st.err, LastChecked: st.at,
		})
	}
	p.mu.RUnlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Addr < out[b].Addr })
	return out
}
