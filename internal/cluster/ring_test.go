package cluster

import (
	"fmt"
	"testing"
	"time"
)

func testNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:8724", i+1)
	}
	return out
}

func testKeys(k int) []string {
	out := make([]string, k)
	for i := range out {
		// Shaped like the server's routing keys: hex content addresses.
		out[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return out
}

func owners(r *Ring, keys []string) map[string]string {
	m := make(map[string]string, len(keys))
	for _, k := range keys {
		m[k] = r.Owner(k)
	}
	return m
}

// TestRingRemoveRemapBound is the consistency property: removing one of n
// nodes remaps exactly the keys that node owned — around K/n of K keys, and
// never a key owned by a surviving node.
func TestRingRemoveRemapBound(t *testing.T) {
	const K = 20000
	nodes := testNodes(8)
	keys := testKeys(K)
	r := NewRing(0)
	for _, n := range nodes {
		r.Add(n)
	}
	before := owners(r, keys)

	victim := nodes[3]
	r.Remove(victim)
	after := owners(r, keys)

	moved := 0
	for _, k := range keys {
		if before[k] != after[k] {
			moved++
			if before[k] != victim {
				t.Fatalf("key %s moved %s -> %s although %s was removed",
					k[:12], before[k], after[k], victim)
			}
		} else if before[k] == victim {
			t.Fatalf("key %s still owned by removed node %s", k[:12], victim)
		}
	}
	// Expect ~K/n moved; allow 2x slack for vnode placement variance.
	bound := 2 * K / len(nodes)
	if moved > bound {
		t.Fatalf("removal remapped %d of %d keys, want <= ~K/n = %d (2x slack %d)",
			moved, K, K/len(nodes), bound)
	}
	if moved == 0 {
		t.Fatal("removal remapped no keys; victim owned nothing")
	}
}

// TestRingAddRemapBound: adding an (n+1)'th node steals around K/(n+1) keys
// for the new node and moves nothing between pre-existing nodes.
func TestRingAddRemapBound(t *testing.T) {
	const K = 20000
	nodes := testNodes(8)
	keys := testKeys(K)
	r := NewRing(0)
	for _, n := range nodes {
		r.Add(n)
	}
	before := owners(r, keys)

	newcomer := "10.0.1.1:8724"
	r.Add(newcomer)
	after := owners(r, keys)

	moved := 0
	for _, k := range keys {
		if before[k] != after[k] {
			moved++
			if after[k] != newcomer {
				t.Fatalf("key %s moved %s -> %s although only %s was added",
					k[:12], before[k], after[k], newcomer)
			}
		}
	}
	bound := 2 * K / (len(nodes) + 1)
	if moved > bound {
		t.Fatalf("addition remapped %d of %d keys, want <= ~K/(n+1) = %d (2x slack %d)",
			moved, K, K/(len(nodes)+1), bound)
	}
	if moved == 0 {
		t.Fatal("addition remapped no keys; newcomer owns nothing")
	}
}

// TestRingRemoveAddRoundTrip: membership edits are position-stable — putting
// a removed node back restores the exact original assignment.
func TestRingRemoveAddRoundTrip(t *testing.T) {
	nodes := testNodes(5)
	keys := testKeys(5000)
	r := NewRing(64)
	for _, n := range nodes {
		r.Add(n)
	}
	before := owners(r, keys)
	r.Remove(nodes[2])
	r.Add(nodes[2])
	for _, k := range keys {
		if got := r.Owner(k); got != before[k] {
			t.Fatalf("owner of %s changed across remove/re-add: %s -> %s", k[:12], before[k], got)
		}
	}
}

// TestRingAgreement: two rings built from the same membership in different
// insertion orders assign every key identically — the property that lets
// each node route without coordination.
func TestRingAgreement(t *testing.T) {
	nodes := testNodes(6)
	a := NewRing(0)
	b := NewRing(0)
	for _, n := range nodes {
		a.Add(n)
	}
	for i := len(nodes) - 1; i >= 0; i-- {
		b.Add(nodes[i])
	}
	for _, k := range testKeys(2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("rings disagree on %s: %s vs %s", k[:12], a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingBalance: with DefaultVNodes the per-node load stays within 2x of
// the mean.
func TestRingBalance(t *testing.T) {
	const K = 30000
	nodes := testNodes(10)
	r := NewRing(0)
	for _, n := range nodes {
		r.Add(n)
	}
	load := map[string]int{}
	for _, k := range testKeys(K) {
		load[r.Owner(k)]++
	}
	mean := K / len(nodes)
	for _, n := range nodes {
		if load[n] > 2*mean {
			t.Fatalf("node %s owns %d keys, more than 2x the mean %d", n, load[n], mean)
		}
		if load[n] == 0 {
			t.Fatalf("node %s owns no keys", n)
		}
	}
}

func TestRingSuccessors(t *testing.T) {
	nodes := testNodes(4)
	r := NewRing(0)
	for _, n := range nodes {
		r.Add(n)
	}
	for _, k := range testKeys(200) {
		succ := r.Successors(k, 3)
		if len(succ) != 3 {
			t.Fatalf("Successors(%s, 3) = %v", k[:12], succ)
		}
		if succ[0] != r.Owner(k) {
			t.Fatalf("Successors[0] = %s, Owner = %s", succ[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("Successors(%s) repeats %s: %v", k[:12], s, succ)
			}
			seen[s] = true
		}
	}
	// The failover target is where the key would land if the owner left.
	for _, k := range testKeys(500) {
		succ := r.Successors(k, 2)
		r2 := NewRing(0)
		for _, n := range nodes {
			r2.Add(n)
		}
		r2.Remove(succ[0])
		if got := r2.Owner(k); got != succ[1] {
			t.Fatalf("successor of %s is %s, but removal reassigns to %s", k[:12], succ[1], got)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	r := NewRing(0)
	if got := r.Owner("k"); got != "" {
		t.Fatalf("empty ring Owner = %q", got)
	}
	if got := r.Successors("k", 2); got != nil {
		t.Fatalf("empty ring Successors = %v", got)
	}
	r.Add("a:1")
	r.Add("a:1") // idempotent
	if r.Len() != 1 {
		t.Fatalf("Len = %d after double Add", r.Len())
	}
	if got := r.Owner("k"); got != "a:1" {
		t.Fatalf("single-node Owner = %q", got)
	}
	if got := r.Successors("k", 5); len(got) != 1 || got[0] != "a:1" {
		t.Fatalf("single-node Successors = %v", got)
	}
	r.Remove("b:2") // unknown: no-op
	r.Remove("a:1")
	if r.Len() != 0 || len(r.points) != 0 {
		t.Fatalf("ring not empty after Remove: len=%d points=%d", r.Len(), len(r.points))
	}
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := New(Config{Self: "a:1", Peers: nil}); err == nil {
		t.Fatal("empty peer list accepted")
	}
	if _, err := New(Config{Self: "", Peers: []string{"a:1"}}); err == nil {
		t.Fatal("empty advertise accepted")
	}
	if _, err := New(Config{Self: "c:3", Peers: []string{"a:1", "b:2"}}); err == nil {
		t.Fatal("advertise outside peer list accepted")
	}
	if _, err := New(Config{Self: "a:1", Peers: []string{"a:1", "nohostport"}}); err == nil {
		t.Fatal("non-host:port peer accepted")
	}
	c, err := New(Config{Self: "a:1", Peers: []string{" a:1 ", "b:2", "b:2", ""}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 2 {
		t.Fatalf("Size = %d, want 2 after dedup", c.Size())
	}
	rt := c.Route("somekey")
	if rt.Owner == "" || rt.Fallback == "" || rt.Owner == rt.Fallback {
		t.Fatalf("Route = %+v", rt)
	}
	if rt.Local != (rt.Owner == "a:1") {
		t.Fatalf("Route.Local inconsistent: %+v", rt)
	}
}

func TestProberDelayBackoff(t *testing.T) {
	p := NewProber(nil, nil, time.Second, 15*time.Second, nil)
	if d := p.delay(0); d != time.Second {
		t.Fatalf("delay(0) = %v", d)
	}
	if d := p.delay(2); d != 4*time.Second {
		t.Fatalf("delay(2) = %v", d)
	}
	if d := p.delay(10); d != 15*time.Second {
		t.Fatalf("delay(10) = %v, want the 15s cap", d)
	}
}
