package cluster

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestProberDetectsDownAndUp(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			t.Errorf("probe hit %s, want /healthz", r.URL.Path)
		}
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	addr := strings.TrimPrefix(ts.URL, "http://")

	var transitions atomic.Int64
	p := NewProber([]string{addr}, ts.Client(), 20*time.Millisecond, 200*time.Millisecond,
		func(a string, up bool) {
			if a != addr {
				t.Errorf("transition for %q, want %q", a, addr)
			}
			transitions.Add(1)
		})
	p.Start()
	defer p.Close()

	waitFor(t, "initial up probe", func() bool {
		st := p.Status()
		return len(st) == 1 && st[0].Up && !st[0].LastChecked.IsZero()
	})

	healthy.Store(false)
	waitFor(t, "down detection", func() bool { return !p.Up(addr) })
	st := p.Status()[0]
	if st.Fails == 0 || st.LastErr == "" {
		t.Fatalf("down status lacks failure detail: %+v", st)
	}

	healthy.Store(true)
	waitFor(t, "recovery detection", func() bool { return p.Up(addr) })
	if transitions.Load() < 2 {
		t.Fatalf("transitions = %d, want >= 2 (down, up)", transitions.Load())
	}
}

func TestProberMarkDownIsImmediate(t *testing.T) {
	// No probe loop started: MarkDown alone must flip the state.
	p := NewProber([]string{"198.51.100.1:1"}, &http.Client{}, time.Hour, time.Hour, nil)
	if !p.Up("198.51.100.1:1") {
		t.Fatal("peer should start optimistically up")
	}
	p.MarkDown("198.51.100.1:1", errors.New("connection refused"))
	if p.Up("198.51.100.1:1") {
		t.Fatal("peer still up after MarkDown")
	}
	if st := p.Status()[0]; st.LastErr != "connection refused" || st.Fails != 1 {
		t.Fatalf("MarkDown status = %+v", st)
	}
	// Unknown addresses (the local node) are always up; marking them down
	// is a no-op rather than a panic.
	p.MarkDown("unknown:1", nil)
	if !p.Up("unknown:1") {
		t.Fatal("unknown address should report up")
	}
}
