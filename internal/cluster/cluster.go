package cluster

import (
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Config describes one node's view of the cluster. The peer list is static
// and must be identical (up to order) on every node — the ring derives the
// key→owner mapping from it, and agreement on ownership is what lets each
// node route without coordination.
type Config struct {
	// Self is this node's advertise address; it must appear in Peers.
	Self string
	// Peers lists every cluster member as a dialable host:port.
	Peers []string
	// VNodes is the virtual-node count per peer; <1 selects DefaultVNodes.
	VNodes int
	// ProbeInterval is the healthy-peer re-check period (default 1s);
	// ProbeBackoffCap bounds the exponential backoff applied to down peers
	// (default 15s).
	ProbeInterval   time.Duration
	ProbeBackoffCap time.Duration
	// Client is used for probes and shared with forwarding; nil selects a
	// transport tuned for many small same-host requests.
	Client *http.Client
	// Logger receives peer up/down transitions; nil selects slog.Default().
	Logger *slog.Logger
	// OnPeerChange, when non-nil, additionally fires on every up↔down
	// transition (the server wires metrics here).
	OnPeerChange func(addr string, up bool)
}

// Route is the ring's decision for one content key.
type Route struct {
	// Owner is the node the key belongs to.
	Owner string
	// Local reports that the owner is this node.
	Local bool
	// Fallback is the ring successor after Owner — the single-retry
	// failover target — or "" in a one-node cluster.
	Fallback string
}

// Cluster ties the ring and the prober together behind the queries the
// server's forwarding layer needs. All methods are safe for concurrent use;
// the ring is immutable after New.
type Cluster struct {
	self   string
	ring   *Ring
	prober *Prober
	client *http.Client
	logger *slog.Logger
}

// normalize trims, drops empties, dedups and sorts a peer list.
func normalize(peers []string) []string {
	seen := map[string]bool{}
	out := make([]string, 0, len(peers))
	for _, p := range peers {
		p = strings.TrimSpace(p)
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// New validates the membership and builds the ring and prober. Call Start
// to begin probing and Close to stop.
func New(cfg Config) (*Cluster, error) {
	peers := normalize(cfg.Peers)
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: peer list is empty")
	}
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: advertise address is empty")
	}
	self := false
	for _, p := range peers {
		if _, _, err := net.SplitHostPort(p); err != nil {
			return nil, fmt.Errorf("cluster: peer %q is not host:port: %v", p, err)
		}
		self = self || p == cfg.Self
	}
	if !self {
		return nil, fmt.Errorf("cluster: advertise address %q is not in the peer list %v", cfg.Self, peers)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	ring := NewRing(cfg.VNodes)
	var probed []string
	for _, p := range peers {
		ring.Add(p)
		if p != cfg.Self {
			probed = append(probed, p)
		}
	}
	onChange := func(addr string, up bool) {
		logger.Info("cluster peer health changed", slog.String("peer", addr), slog.Bool("up", up))
		if cfg.OnPeerChange != nil {
			cfg.OnPeerChange(addr, up)
		}
	}
	c := &Cluster{
		self:   cfg.Self,
		ring:   ring,
		client: client,
		logger: logger,
		prober: NewProber(probed, client, cfg.ProbeInterval, cfg.ProbeBackoffCap, onChange),
	}
	return c, nil
}

// Start begins health probing.
func (c *Cluster) Start() { c.prober.Start() }

// Close stops health probing.
func (c *Cluster) Close() { c.prober.Close() }

// Self returns this node's advertise address.
func (c *Cluster) Self() string { return c.self }

// Size returns the number of cluster members.
func (c *Cluster) Size() int { return c.ring.Len() }

// Peers returns every member address in sorted order.
func (c *Cluster) Peers() []string { return c.ring.Nodes() }

// Client returns the shared intra-cluster HTTP client.
func (c *Cluster) Client() *http.Client { return c.client }

// Route maps a content key to its owner and failover target.
func (c *Cluster) Route(key string) Route {
	succ := c.ring.Successors(key, 2)
	rt := Route{}
	if len(succ) > 0 {
		rt.Owner = succ[0]
		rt.Local = succ[0] == c.self
	}
	if len(succ) > 1 {
		rt.Fallback = succ[1]
	}
	return rt
}

// Up reports whether addr is believed healthy (the local node always is).
func (c *Cluster) Up(addr string) bool { return c.prober.Up(addr) }

// MarkDown feeds a forwarding failure back into health state.
func (c *Cluster) MarkDown(addr string, err error) { c.prober.MarkDown(addr, err) }

// Status snapshots peer health (the local node is not probed and is not
// listed).
func (c *Cluster) Status() []PeerStatus { return c.prober.Status() }
