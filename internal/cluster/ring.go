// Package cluster is optd's horizontal-sharding substrate: a consistent-hash
// ring with virtual nodes over a static peer list, plus per-peer health
// probing. The server's forwarding layer asks the ring who owns a
// content-addressed request key and proxies the request to that node, so the
// content-addressed result cache and the idempotent job table scale with
// node count instead of fragmenting — every replica of the same request
// lands on the same owner.
//
// Membership is static (the -peers flag); failure handling is routing-time
// failover to the ring successor, not membership change. That keeps the
// ring's key→owner mapping identical on every node without a consensus
// protocol: nodes may disagree about who is *up*, but never about who
// *owns* a key.
package cluster

import (
	"sort"
)

// DefaultVNodes is the virtual-node count per physical node. 128 points per
// node keeps the per-node share of the keyspace within a few percent of
// 1/n while the ring stays small enough to rebuild on every membership
// edit (membership is static in practice).
const DefaultVNodes = 128

// hash64 is an xxhash-style 64-bit string hash: an FNV-1a core run through
// a splitmix64 avalanche finalizer. The finalizer matters — vnode labels
// ("addr#0", "addr#1", …) differ only in their tail, and raw FNV leaves
// such near-identical inputs clustered on the ring.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// point is one virtual node: a position on the ring and the physical node
// it maps back to, packed flat (like dep's query index) so lookups are a
// binary search over one contiguous slice.
type point struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring. It is not safe for concurrent mutation;
// build it up front (membership is static) and share it read-only, or wrap
// it as Cluster does.
type Ring struct {
	vnodes int
	points []point // sorted by hash
	nodes  map[string]bool
}

// NewRing returns an empty ring placing vnodes virtual nodes per physical
// node; vnodes < 1 selects DefaultVNodes.
func NewRing(vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, nodes: map[string]bool{}}
}

// vnodeLabel renders the i'th virtual node of a physical node. The '#'
// separator cannot appear in a host:port address, so distinct nodes can
// never collide on a label.
func vnodeLabel(node string, i int) string {
	// Hand-rolled itoa keeps Add allocation-light; i is always >= 0.
	var buf [20]byte
	p := len(buf)
	for {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
		if i == 0 {
			break
		}
	}
	return node + "#" + string(buf[p:])
}

// Add inserts a physical node (idempotent).
func (r *Ring) Add(node string) {
	if node == "" || r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: hash64(vnodeLabel(node, i)), node: node})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Tie-break on the owner so hash collisions between vnodes of
		// different nodes still order identically on every replica.
		return r.points[a].node < r.points[b].node
	})
}

// Remove deletes a physical node (idempotent). Only keys owned by the
// removed node change owner — the consistency property the property test
// pins down.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len returns the number of physical nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the physical nodes in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// search returns the index of the first ring point at or clockwise of the
// key's hash (wrapping past the top back to index 0).
func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the physical node owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].node
}

// Successors returns up to n distinct physical nodes in ring order starting
// at the key's owner. Successors(key, 2)[1] is the failover target when the
// owner is down: the node that would own the key if the owner left the
// ring, so retried work lands where a real membership change would put it.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := r.search(key), 0; start < len(r.points) && len(out) < n; start++ {
		p := r.points[(i+start)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
