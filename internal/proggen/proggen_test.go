package proggen

import (
	"testing"

	"repro/dep"
	"repro/internal/dataflow"
	"repro/internal/interp"
	"repro/ir"
)

func TestGeneratedProgramsAreValidAndRun(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		p := Generate(seed, Config{})
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, p)
		}
		r, err := interp.Run(p, nil, interp.Config{})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, p)
		}
		if len(r.Output) == 0 {
			t.Fatalf("seed %d: no output", seed)
		}
	}
}

func TestDeterministicInSeed(t *testing.T) {
	a := Generate(42, Config{})
	b := Generate(42, Config{})
	if !a.Equal(b) {
		t.Fatal("same seed must generate the same program")
	}
	c := Generate(43, Config{})
	if a.Equal(c) {
		t.Fatal("different seeds should (practically always) differ")
	}
}

// TestAnalysesNeverPanic runs the full analysis stack over many random
// programs and checks basic well-formedness of the results.
func TestAnalysesNeverPanic(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		p := Generate(seed, Config{})
		a := dataflow.Analyze(p)
		if len(a.ReachIn) != p.Len() {
			t.Fatalf("seed %d: dataflow size mismatch", seed)
		}
		g := dep.Compute(p)
		for _, d := range g.Deps {
			if d.Src != g.Entry && p.Index(d.Src) < 0 || p.Index(d.Dst) < 0 {
				t.Fatalf("seed %d: dependence references a foreign statement", seed)
			}
			if d.Src == g.Entry && (d.Kind != dep.Flow || d.Carried) {
				t.Fatalf("seed %d: malformed entry dependence %v", seed, d)
			}
			if d.Level > len(d.Vec) {
				t.Fatalf("seed %d: level %d beyond vector %v", seed, d.Level, d.Vec)
			}
			if d.Carried && d.Level == 0 {
				t.Fatalf("seed %d: carried dependence without a level", seed)
			}
			common := len(ir.CommonLoops(p, d.Src, d.Dst))
			if d.Kind != dep.Control && len(d.Vec) != common {
				t.Fatalf("seed %d: vector length %d vs %d common loops (%v)",
					seed, len(d.Vec), common, d)
			}
		}
	}
}

func TestBudgetsRespected(t *testing.T) {
	p := Generate(7, Config{MaxStmts: 10, MaxDepth: 1})
	loops := ir.Loops(p)
	for _, l := range loops {
		if len(ir.EnclosingLoops(p, l.Head)) > 0 {
			t.Fatal("MaxDepth 1 must not nest loops")
		}
	}
}
