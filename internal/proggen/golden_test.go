package proggen

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"repro/ir"
)

// minifHash fingerprints a generated program's rendered MiniF text.
func minifHash(seed int64, cfg Config) string {
	sum := sha256.Sum256([]byte(ir.ToMiniF(Generate(seed, cfg))))
	return hex.EncodeToString(sum[:])[:16]
}

// TestGoldenSeedDeterminism pins generator output across runs, processes
// and releases: a farm finding is reported as a (profile, seed) pair, so
// reproducing it depends on Generate being a pure function of that pair
// forever. The default-config hashes additionally pin the legacy random
// stream — a nil Profile must keep generating byte-for-byte the programs
// it always has, or recorded corpora and advisor history go stale.
func TestGoldenSeedDeterminism(t *testing.T) {
	farm := &Profile{Loop: 10, If: 6, ScalarAssign: 12, ConstDef: 12, ArrayAssign: 20, AccumRun: 40}
	cases := []struct {
		name string
		seed int64
		cfg  Config
		want string
	}{
		{"default-seed1", 1, Config{}, "b5d1cb0a98cbe567"},
		{"default-seed42", 42, Config{}, "cbc56ea53ded0ff0"},
		{"default-seed7-64stmts", 7, Config{MaxStmts: 64}, "44c086c9e5b19907"},
		{"accum-profile-seed1", 1, Config{Profile: farm}, "b58f8680fbf47757"},
		{"accum-profile-seed42", 42, Config{Profile: farm}, "46d205e6053e00fd"},
		{"default-profile-seed3", 3, Config{Profile: DefaultProfile()}, "da10b3d619e1c775"},
	}
	for _, c := range cases {
		if got := minifHash(c.seed, c.cfg); got != c.want {
			t.Errorf("%s: hash %s, want %s — generator output drifted; recorded (profile, seed) findings no longer reproduce", c.name, got, c.want)
		}
		// Same-process re-generation must agree too (no hidden state).
		if minifHash(c.seed, c.cfg) != minifHash(c.seed, c.cfg) {
			t.Errorf("%s: generation is not deterministic in-process", c.name)
		}
	}
}

// TestProfileKeepsGuarantees re-checks the package guarantees under a
// profile that exercises every statement kind including accumulator runs.
func TestProfileKeepsGuarantees(t *testing.T) {
	profile := &Profile{Loop: 20, If: 10, ScalarAssign: 10, ConstDef: 10, ArrayAssign: 20, AccumRun: 30}
	for seed := int64(0); seed < 100; seed++ {
		p := Generate(seed, Config{Profile: profile})
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, p)
		}
	}
}
