// Package proggen generates random — but always valid and always
// terminating — IR programs for property-based testing. The generator is
// deterministic in its seed, so failures reproduce.
//
// Guarantees of every generated program:
//
//   - structurally valid (Validate passes) with loops nested at most three
//     deep and IFs properly bracketed;
//   - array subscripts are affine in enclosing loop variables or constants
//     and provably in bounds (loop ranges and offsets are chosen inside the
//     declared extents);
//   - no READ statements (execution needs no input) and a final PRINT of
//     every scalar plus array probes, so behaviour is fully observable;
//   - terminating: loop bounds are constants or loop-invariant scalars with
//     small known ranges.
package proggen

import (
	"fmt"
	"math/rand"

	"repro/ir"
)

// Config bounds the generated programs.
type Config struct {
	// MaxStmts bounds the top-level statement budget (default 24).
	MaxStmts int
	// MaxDepth bounds loop nesting (default 3).
	MaxDepth int
	// Profile, when non-nil, selects a weighted statement mix instead of
	// the built-in one. nil preserves the exact legacy random stream: a
	// given seed generates byte-for-byte the same program it always has,
	// which existing corpora and golden tests rely on.
	Profile *Profile
}

// Profile weights the statement mix so a caller can tilt generated
// programs toward particular optimization opportunities (the farm's
// opportunity-mix campaigns). Weights are relative and non-negative;
// negative weights are treated as zero, and an all-zero profile falls
// back to the built-in mix. Every structural guarantee of the package
// (validity, bounded nesting, in-bounds subscripts, termination) holds
// for every profile.
type Profile struct {
	// Loop and If weight control structure; they only apply above the
	// nesting floor, where their weight is folded into ScalarAssign —
	// mirroring the built-in mix at MaxDepth.
	Loop int
	If   int
	// ScalarAssign weights "x := a op b" over scalars/constants.
	ScalarAssign int
	// ConstDef weights "scalar := constant" (CTP/CFO fodder).
	ConstDef int
	// ArrayAssign weights array stores with safe subscripts.
	ArrayAssign int
	// AccumRun weights short chains of "m := m op c" updates on one
	// integer scalar — the straight-line aggregation (AGG/AGM/AGS)
	// opportunity shape. One run emits 2–4 statements.
	AccumRun int
}

// DefaultProfile mirrors the built-in statement mix (it does not
// reproduce the legacy random stream — only a nil Profile does that).
func DefaultProfile() *Profile {
	return &Profile{Loop: 14, If: 8, ScalarAssign: 18, ConstDef: 15, ArrayAssign: 45}
}

func (p *Profile) clamped(atDepth bool) (loop, ifw, scalar, constw, array, accum int) {
	pos := func(w int) int {
		if w < 0 {
			return 0
		}
		return w
	}
	loop, ifw = pos(p.Loop), pos(p.If)
	scalar, constw, array, accum = pos(p.ScalarAssign), pos(p.ConstDef), pos(p.ArrayAssign), pos(p.AccumRun)
	if atDepth {
		scalar += loop + ifw
		loop, ifw = 0, 0
	}
	if loop+ifw+scalar+constw+array+accum == 0 {
		scalar = 1
	}
	return
}

func (c Config) withDefaults() Config {
	if c.MaxStmts == 0 {
		c.MaxStmts = 24
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 3
	}
	return c
}

const (
	arrayExtent = 12 // every array dimension
	loopLo      = 2  // loop ranges stay in [2, 7]
	loopHi      = 7  // ... so ±1 offsets stay within [1, 8] ⊆ [1, 12]
)

// lcvNames are the loop control variables by depth.
var lcvNames = [...]string{"i", "j", "k"}

type gen struct {
	r      *rand.Rand
	b      *ir.Builder
	cfg    Config
	budget int
	// scalars and arrays in scope.
	intScalars  []string
	realScalars []string
	arrays1     []string
	arrays2     []string
	// lcvs currently in scope (innermost last).
	lcvs []string
}

// Generate builds a random program from the seed.
func Generate(seed int64, cfg Config) *ir.Program {
	cfg = cfg.withDefaults()
	g := &gen{
		r:           rand.New(rand.NewSource(seed)),
		b:           ir.NewBuilder(fmt.Sprintf("rand%d", seed)),
		cfg:         cfg,
		budget:      cfg.MaxStmts,
		intScalars:  []string{"n", "m", "p"},
		realScalars: []string{"x", "y", "z", "w"},
		arrays1:     []string{"a", "b"},
		arrays2:     []string{"c"},
	}
	for _, s := range g.intScalars {
		g.b.Declare(s, false)
	}
	for _, s := range g.realScalars {
		g.b.Declare(s, true)
	}
	for _, a := range g.arrays1 {
		g.b.Declare(a, true, arrayExtent)
	}
	for _, a := range g.arrays2 {
		g.b.Declare(a, true, arrayExtent, arrayExtent)
	}

	// Seed some values so dataflow has definitions to track.
	g.b.Copy(ir.VarOp("n"), ir.IntOp(int64(g.r.Intn(6)+loopLo)))
	g.b.Copy(ir.VarOp("x"), ir.ConstOp(ir.FloatVal(float64(g.r.Intn(9))+0.5)))

	// Emit top-level runs until the statement budget is spent, so generated
	// programs actually scale with MaxStmts (each run is 1–4 statements,
	// loops and conditionals recurse with the shared budget).
	for g.budget > 0 {
		g.stmts(0)
	}

	// Observability: print every scalar and probe the arrays.
	args := []ir.Operand{}
	for _, s := range append(append([]string{}, g.intScalars...), g.realScalars...) {
		args = append(args, ir.VarOp(s))
	}
	for _, a := range g.arrays1 {
		args = append(args, ir.ArrayOp(a, ir.ConstExpr(1)), ir.ArrayOp(a, ir.ConstExpr(arrayExtent/2)))
	}
	for _, a := range g.arrays2 {
		args = append(args, ir.ArrayOp(a, ir.ConstExpr(2), ir.ConstExpr(3)))
	}
	g.b.Print(args...)
	return g.b.P
}

// stmts emits a run of statements at the given loop depth.
func (g *gen) stmts(depth int) {
	n := 1 + g.r.Intn(4)
	for s := 0; s < n && g.budget > 0; s++ {
		g.stmt(depth)
	}
}

func (g *gen) stmt(depth int) {
	if g.cfg.Profile != nil {
		g.profiledStmt(depth)
		return
	}
	g.budget--
	roll := g.r.Intn(100)
	switch {
	case roll < 14 && depth < g.cfg.MaxDepth:
		g.loop(depth)
	case roll < 22 && depth < g.cfg.MaxDepth:
		g.ifStmt(depth)
	case roll < 40:
		g.scalarAssign()
	case roll < 55:
		g.constDef()
	default:
		g.arrayAssign(depth)
	}
}

// profiledStmt is stmt under a caller-supplied weighted mix. It consumes
// the random stream differently from the legacy path by construction, so
// it is only reachable when Config.Profile is set.
func (g *gen) profiledStmt(depth int) {
	loop, ifw, scalar, constw, array, accum := g.cfg.Profile.clamped(depth >= g.cfg.MaxDepth)
	roll := g.r.Intn(loop + ifw + scalar + constw + array + accum)
	switch {
	case roll < loop:
		g.budget--
		g.loop(depth)
	case roll < loop+ifw:
		g.budget--
		g.ifStmt(depth)
	case roll < loop+ifw+scalar:
		g.budget--
		g.scalarAssign()
	case roll < loop+ifw+scalar+constw:
		g.budget--
		g.constDef()
	case roll < loop+ifw+scalar+constw+array:
		g.budget--
		g.arrayAssign(depth)
	default:
		g.accumRun()
	}
}

// accumRun emits a short chain of "s := s op c" updates on one integer
// scalar: adjacent same-op updates of the same accumulator, the shape the
// straight-line aggregation specs collapse. "n" is a live loop bound
// elsewhere, so runs only touch the free integer scalars; integer
// arithmetic keeps the chain exactly associative (floats are not), so a
// differential oracle comparing outputs byte-for-byte stays sound.
func (g *gen) accumRun() {
	s := []string{"m", "p"}[g.r.Intn(2)]
	op := []ir.Opcode{ir.OpAdd, ir.OpAdd, ir.OpSub, ir.OpMul}[g.r.Intn(4)]
	k := 2 + g.r.Intn(3)
	for i := 0; i < k; i++ {
		g.budget--
		var c int64
		if op == ir.OpMul {
			c = int64(g.r.Intn(3) + 2)
		} else {
			c = int64(g.r.Intn(9) + 1)
		}
		g.b.Assign(ir.VarOp(s), ir.VarOp(s), op, ir.IntOp(c))
	}
}

// loop emits DO lcv = lo, hi with a body.
func (g *gen) loop(depth int) {
	lcv := lcvNames[depth]
	lo := int64(g.r.Intn(3) + loopLo) // 2..4
	hi := lo + int64(g.r.Intn(3)+1)   // lo+1 .. lo+3 ≤ 7
	switch {
	case g.r.Intn(4) == 0 && depth == 0:
		// Occasionally a downward loop.
		g.b.DoStep(lcv, ir.IntOp(hi), ir.IntOp(lo), ir.IntOp(-1))
	case g.r.Intn(4) == 0:
		// Occasionally bound by n (always in [loopLo, loopHi], so the
		// subscript safety argument still holds) — this is what lets
		// constant propagation enable unrolling on random programs too.
		g.b.Do(lcv, ir.IntOp(loopLo), ir.VarOp("n"))
	default:
		g.b.Do(lcv, ir.IntOp(lo), ir.IntOp(hi))
	}
	g.lcvs = append(g.lcvs, lcv)
	g.stmts(depth + 1)
	g.lcvs = g.lcvs[:len(g.lcvs)-1]
	g.b.EndDo()
}

func (g *gen) ifStmt(depth int) {
	a := g.scalarUse()
	rel := []ir.Relop{ir.RelLT, ir.RelLE, ir.RelGT, ir.RelGE, ir.RelEQ, ir.RelNE}[g.r.Intn(6)]
	g.b.If(a, rel, ir.IntOp(int64(g.r.Intn(7))))
	g.stmts(depth + 1)
	if g.r.Intn(2) == 0 {
		g.b.Else()
		g.stmts(depth + 1)
	}
	g.b.EndIf()
}

// constDef emits "scalar := constant" — CTP/CFO fodder.
func (g *gen) constDef() {
	if g.r.Intn(2) == 0 {
		s := g.intScalars[g.r.Intn(len(g.intScalars))]
		if s == "n" {
			// n is a live loop bound elsewhere; keep its range.
			g.b.Copy(ir.VarOp(s), ir.IntOp(int64(g.r.Intn(6)+loopLo)))
			return
		}
		g.b.Copy(ir.VarOp(s), ir.IntOp(int64(g.r.Intn(20))))
		return
	}
	s := g.realScalars[g.r.Intn(len(g.realScalars))]
	g.b.Copy(ir.VarOp(s), ir.ConstOp(ir.FloatVal(float64(g.r.Intn(16))/2)))
}

// scalarAssign emits "scalar := a op b" over scalars/constants.
func (g *gen) scalarAssign() {
	dst := g.realScalars[g.r.Intn(len(g.realScalars))]
	a := g.operand()
	if g.r.Intn(4) == 0 {
		g.b.Copy(ir.VarOp(dst), a)
		return
	}
	b := g.operand()
	op := []ir.Opcode{ir.OpAdd, ir.OpSub, ir.OpMul}[g.r.Intn(3)]
	g.b.Assign(ir.VarOp(dst), a, op, b)
}

// arrayAssign emits an array store with safe subscripts.
func (g *gen) arrayAssign(depth int) {
	if g.r.Intn(3) == 0 && len(g.arrays2) > 0 {
		dst := ir.ArrayOp(g.arrays2[0], g.subscript(), g.subscript())
		g.b.Assign(dst, g.arrayUse(), ir.OpAdd, g.operand())
		return
	}
	name := g.arrays1[g.r.Intn(len(g.arrays1))]
	dst := ir.ArrayOp(name, g.subscript())
	switch g.r.Intn(3) {
	case 0:
		g.b.Copy(dst, g.operand())
	case 1:
		g.b.Assign(dst, g.arrayUse(), ir.OpMul, g.operand())
	default:
		g.b.Assign(dst, g.arrayUse(), ir.OpAdd, g.arrayUse())
	}
}

// subscript builds a safe affine subscript: an enclosing LCV with a ±1
// offset, or a constant inside the extent.
func (g *gen) subscript() ir.LinExpr {
	if len(g.lcvs) > 0 && g.r.Intn(4) != 0 {
		lcv := g.lcvs[g.r.Intn(len(g.lcvs))]
		off := int64(g.r.Intn(3) - 1) // -1, 0, +1; lcv ∈ [2,7] keeps [1,8]
		return ir.VarExpr(lcv).Add(ir.ConstExpr(off))
	}
	return ir.ConstExpr(int64(g.r.Intn(arrayExtent) + 1))
}

// operand is a constant or scalar read.
func (g *gen) operand() ir.Operand {
	switch g.r.Intn(3) {
	case 0:
		return ir.ConstOp(ir.FloatVal(float64(g.r.Intn(10)) / 2))
	case 1:
		return ir.IntOp(int64(g.r.Intn(10)))
	default:
		return g.scalarUse()
	}
}

func (g *gen) scalarUse() ir.Operand {
	if g.r.Intn(2) == 0 {
		return ir.VarOp(g.realScalars[g.r.Intn(len(g.realScalars))])
	}
	return ir.VarOp(g.intScalars[g.r.Intn(len(g.intScalars))])
}

// arrayUse is a safe array read.
func (g *gen) arrayUse() ir.Operand {
	if g.r.Intn(4) == 0 && len(g.arrays2) > 0 {
		return ir.ArrayOp(g.arrays2[0], g.subscript(), g.subscript())
	}
	return ir.ArrayOp(g.arrays1[g.r.Intn(len(g.arrays1))], g.subscript())
}
