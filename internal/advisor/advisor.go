// Package advisor closes the loop from production history to scheduling
// decisions. The paper's E3 experiment found that no single application
// order of the generated optimizers wins across programs; ordering is an
// empirical, per-program question. The advisor answers it empirically:
// every completed optimization run is harvested into an append-only
// outcome store as (feature vector, pass order, applied actions, wall
// time), and an order=auto request retrieves the k nearest historical
// programs by feature geometry and replays the ordering that served them
// best. With no comparable history it falls back to the default order —
// the advisor can recommend, never degrade.
package advisor

import (
	"fmt"
	"sync"
	"time"
)

// Config parameterizes an Advisor.
type Config struct {
	// Dir is the persistence directory for the outcome store. Empty keeps
	// the store memory-only (lost on restart).
	Dir string
	// K is the neighbor count consulted per decision (default 8).
	K int
	// MinNeighbors is the evidence floor: fewer comparable neighbors than
	// this and the decision is a fallback to the default order (default 3).
	MinNeighbors int
	// MaxRecords bounds the store window; older records compact away
	// (default 4096).
	MaxRecords int
	// NoSync skips per-append fsync on the outcome log (benchmarks only).
	NoSync bool
	// FeatureCacheEntries bounds the per-source feature vector cache
	// (default 256).
	FeatureCacheEntries int
	// Obs receives advisor observability events; any field may be nil.
	Obs Obs
}

// Obs carries the advisor's observability callbacks. They fire outside the
// advisor lock except StoreSize, which reports under it (a bare gauge
// store on the consumer side, no re-entrancy).
type Obs struct {
	// Harvested fires after an outcome lands in the store.
	Harvested func()
	// Dropped fires when the harvest queue is full and an outcome is shed.
	Dropped func()
	// StoreSize reports the record count after each store mutation.
	StoreSize func(n int)
}

// Outcome is one completed optimization run, as observed by the serving
// layer. Source is re-featurized by the advisor (the harvest path is
// asynchronous, so the parse cost never lands on a request).
type Outcome struct {
	Source  string
	Opts    []string // the optimization set (any order)
	Order   []string // the order actually executed
	Applied int
	WallUS  int64
	Engine  string
}

// Advisor owns the feature extractor, the outcome store, and a harvest
// worker. Choose is synchronous (it is on the request path); Harvest is a
// non-blocking enqueue serviced by one background goroutine.
type Advisor struct {
	cfg       Config
	extractor *Extractor

	mu    sync.Mutex
	store *Store

	harvestCh chan Outcome
	wg        sync.WaitGroup
	quit      chan struct{}

	pendMu  sync.Mutex
	pending int
	pendCV  *sync.Cond
}

// Open builds the advisor: compiles the feature matchers and opens (or
// creates) the outcome store under cfg.Dir.
func Open(cfg Config) (*Advisor, error) {
	if cfg.K < 1 {
		cfg.K = 8
	}
	if cfg.MinNeighbors < 1 {
		cfg.MinNeighbors = 3
	}
	if cfg.MaxRecords < 1 {
		cfg.MaxRecords = 4096
	}
	ex, err := NewExtractor(cfg.FeatureCacheEntries)
	if err != nil {
		return nil, err
	}
	path := ""
	if cfg.Dir != "" {
		path = cfg.Dir + "/outcomes.log"
	}
	store, err := OpenStore(path, cfg.MaxRecords, cfg.NoSync)
	if err != nil {
		return nil, err
	}
	a := &Advisor{
		cfg:       cfg,
		extractor: ex,
		store:     store,
		harvestCh: make(chan Outcome, 256),
		quit:      make(chan struct{}),
	}
	a.pendCV = sync.NewCond(&a.pendMu)
	if cfg.Obs.StoreSize != nil {
		cfg.Obs.StoreSize(store.Len())
	}
	a.wg.Add(1)
	go a.harvestLoop()
	return a, nil
}

// Close stops the harvest worker (draining queued outcomes) and closes the
// store.
func (a *Advisor) Close() error {
	close(a.quit)
	a.wg.Wait()
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.store.Close()
}

// Size reports the live record count.
func (a *Advisor) Size() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.store.Len()
}

// Harvest enqueues one outcome for asynchronous ingestion. It never blocks:
// when the queue is full the outcome is shed (and counted via Obs.Dropped).
// Returns whether the outcome was accepted.
func (a *Advisor) Harvest(o Outcome) bool {
	if len(o.Order) == 0 || o.Source == "" {
		return false
	}
	a.pendMu.Lock()
	a.pending++
	a.pendMu.Unlock()
	select {
	case a.harvestCh <- o:
		return true
	default:
		a.done()
		if a.cfg.Obs.Dropped != nil {
			a.cfg.Obs.Dropped()
		}
		return false
	}
}

// Flush blocks until every previously accepted outcome has been ingested —
// a test barrier over the asynchronous harvest path.
func (a *Advisor) Flush() {
	a.pendMu.Lock()
	for a.pending > 0 {
		a.pendCV.Wait()
	}
	a.pendMu.Unlock()
}

func (a *Advisor) done() {
	a.pendMu.Lock()
	a.pending--
	if a.pending == 0 {
		a.pendCV.Broadcast()
	}
	a.pendMu.Unlock()
}

func (a *Advisor) harvestLoop() {
	defer a.wg.Done()
	for {
		select {
		case o := <-a.harvestCh:
			a.ingest(o)
		case <-a.quit:
			// Drain what was accepted before shutdown.
			for {
				select {
				case o := <-a.harvestCh:
					a.ingest(o)
				default:
					return
				}
			}
		}
	}
}

func (a *Advisor) ingest(o Outcome) {
	defer a.done()
	vec, err := a.extractor.Vector(o.Source)
	if err != nil {
		return // unparseable source cannot be featurized; drop silently
	}
	rec := &Record{
		Schema:  SchemaVersion,
		Vec:     vec,
		Opts:    o.Opts,
		Order:   o.Order,
		Applied: o.Applied,
		WallUS:  o.WallUS,
		Engine:  o.Engine,
	}
	if len(rec.Opts) == 0 {
		rec.Opts = o.Order
	}
	a.mu.Lock()
	addErr := a.store.Add(rec)
	n := a.store.Len()
	a.mu.Unlock()
	if addErr != nil {
		return
	}
	if a.cfg.Obs.Harvested != nil {
		a.cfg.Obs.Harvested()
	}
	if a.cfg.Obs.StoreSize != nil {
		a.cfg.Obs.StoreSize(n)
	}
}

// Choose recommends a pass order for source over the optimization set opts.
// It featurizes the source (cached by content hash), votes over the k
// nearest comparable records, and returns the decision together with the
// retrieval latency for the caller's histogram. A cold or thin store
// returns Fallback=true, never an error; a parse failure is a real error
// (the caller's own parse would fail identically moments later).
func (a *Advisor) Choose(source string, opts []string) (Decision, time.Duration, error) {
	t0 := time.Now()
	vec, err := a.extractor.Vector(source)
	if err != nil {
		return Decision{}, time.Since(t0), fmt.Errorf("advisor: featurize: %w", err)
	}
	a.mu.Lock()
	recs := a.store.Records()
	a.mu.Unlock()
	d := choose(recs, vec, opts, a.cfg.K, a.cfg.MinNeighbors)
	return d, time.Since(t0), nil
}
