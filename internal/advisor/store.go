package advisor

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/jobs"
)

// Record is one harvested optimization outcome: what the program looked
// like (Vec under Schema), what order the passes ran in, and how that went.
// Records are append-only facts; the store never rewrites history, only
// truncates torn tails and compacts old age.
type Record struct {
	// Schema is the feature-vector layout version (SchemaVersion at write
	// time). Retrieval ignores records from other schemas.
	Schema int `json:"schema"`
	// Seq is assigned on insert (monotonic within one store lifetime,
	// reassigned densely on replay). It is the deterministic tie-breaker for
	// equal distances and is not persisted.
	Seq int64 `json:"-"`
	// Vec is the unit-L2 feature vector of the source program.
	Vec []float32 `json:"vec"`
	// Opts is the *set* of optimizations the run used, sorted — retrieval
	// only consults records whose set matches the request's, so an ordering
	// learned over {DCE,ICM} is never recommended for {DCE,ICM,FUS}.
	Opts []string `json:"opts"`
	// Order is the pass order actually executed.
	Order []string `json:"order"`
	// Applied is the total number of applied actions across the run.
	Applied int `json:"applied"`
	// WallUS is the optimization wall time in microseconds.
	WallUS int64 `json:"wall_us"`
	// Engine records which execution engine produced the outcome
	// ("interp" or "native") — diagnostic only, retrieval is engine-blind.
	Engine string `json:"engine,omitempty"`
}

// valid rejects records that could poison retrieval arithmetic.
func (r *Record) valid() bool {
	return r.Schema > 0 && len(r.Vec) > 0 && len(r.Order) > 0 &&
		r.Applied >= 0 && r.WallUS >= 0
}

// Store is the outcome log: an in-memory slice of records mirrored to an
// append-only file using the jobs WAL frame format (length + CRC32 +
// JSON payload), with the same torn-tail truncation on open and the same
// tmp+rename+dir-sync compaction discipline. A store opened with path ""
// is memory-only (tests, and servers run without -advisor-dir persistence).
// Methods are not safe for concurrent use; the Advisor serializes access.
type Store struct {
	path    string
	f       *os.File
	size    int64
	appends int
	nosync  bool

	recs    []*Record
	nextSeq int64
	max     int
}

// OpenStore opens (creating if absent) the outcome log at path, replays
// whole records, truncates any torn tail, and compacts immediately if the
// replayed history exceeds max records (keeping the newest). max < 1
// selects 4096. path "" yields a memory-only store.
func OpenStore(path string, max int, nosync bool) (*Store, error) {
	if max < 1 {
		max = 4096
	}
	s := &Store{path: path, nosync: nosync, max: max}
	if path == "" {
		return s, nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("advisor: store dir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("advisor: store open: %w", err)
	}
	good, err := jobs.ReplayFrames(f, func(payload []byte) bool {
		var r Record
		if json.Unmarshal(payload, &r) != nil || !r.valid() {
			return false // undecodable payload: treat as torn tail
		}
		r.Seq = s.nextSeq
		s.nextSeq++
		sort.Strings(r.Opts)
		s.recs = append(s.recs, &r)
		return true
	})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("advisor: store replay: %w", err)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("advisor: store truncate: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("advisor: store seek: %w", err)
	}
	s.f = f
	s.size = good
	if len(s.recs) > s.max {
		s.recs = s.recs[len(s.recs)-s.max:]
		if err := s.compact(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

// Add appends one outcome record, assigning its Seq, persisting it (when
// the store is file-backed), and compacting when the in-memory window
// overflows max.
func (s *Store) Add(r *Record) error {
	if !r.valid() {
		return fmt.Errorf("advisor: invalid record")
	}
	cp := *r
	cp.Opts = append([]string(nil), r.Opts...)
	sort.Strings(cp.Opts)
	cp.Order = append([]string(nil), r.Order...)
	cp.Vec = append([]float32(nil), r.Vec...)
	cp.Seq = s.nextSeq
	s.nextSeq++
	s.recs = append(s.recs, &cp)
	if s.f != nil {
		payload, err := json.Marshal(&cp)
		if err != nil {
			return fmt.Errorf("advisor: store marshal: %w", err)
		}
		frame := jobs.EncodeFrame(payload)
		if _, err := s.f.Write(frame); err != nil {
			return fmt.Errorf("advisor: store append: %w", err)
		}
		if !s.nosync {
			if err := s.f.Sync(); err != nil {
				return fmt.Errorf("advisor: store sync: %w", err)
			}
		}
		s.size += int64(len(frame))
		s.appends++
	}
	if len(s.recs) > s.max {
		s.recs = s.recs[len(s.recs)-s.max:]
		if s.f != nil {
			return s.compact()
		}
	}
	return nil
}

// compact atomically rewrites the log to exactly the in-memory window.
func (s *Store) compact() error {
	tmp := s.path + ".compact"
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("advisor: store compact: %w", err)
	}
	var size int64
	for _, r := range s.recs {
		payload, merr := json.Marshal(r)
		if merr != nil {
			nf.Close()
			os.Remove(tmp)
			return fmt.Errorf("advisor: store compact marshal: %w", merr)
		}
		frame := jobs.EncodeFrame(payload)
		if _, werr := nf.Write(frame); werr != nil {
			nf.Close()
			os.Remove(tmp)
			return fmt.Errorf("advisor: store compact write: %w", werr)
		}
		size += int64(len(frame))
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("advisor: store compact sync: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		nf.Close()
		os.Remove(tmp)
		return fmt.Errorf("advisor: store compact rename: %w", err)
	}
	if dir, derr := os.Open(filepath.Dir(s.path)); derr == nil {
		_ = dir.Sync()
		dir.Close()
	}
	old := s.f
	s.f = nf
	s.size = size
	s.appends = 0
	old.Close()
	return nil
}

// Records returns the live window. Callers must not mutate it; the Advisor
// copies the slice header under its lock before releasing it to retrieval.
func (s *Store) Records() []*Record { return s.recs }

// Len reports the number of live records.
func (s *Store) Len() int { return len(s.recs) }

// Size reports the log size in bytes (0 for memory-only stores).
func (s *Store) Size() int64 { return s.size }

// Close releases the log file. Memory-only stores are a no-op.
func (s *Store) Close() error {
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
