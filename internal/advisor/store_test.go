package advisor

import (
	"os"
	"path/filepath"
	"testing"
)

func testRecord(seq int, order []string, applied int) *Record {
	vec := make([]float32, Dims())
	vec[0] = 1
	return &Record{
		Schema:  SchemaVersion,
		Vec:     vec,
		Opts:    append([]string(nil), order...),
		Order:   order,
		Applied: applied,
		WallUS:  int64(100 + seq),
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "outcomes.log")
	s, err := OpenStore(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Add(testRecord(i, []string{"DCE", "CPP"}, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 5 {
		t.Fatalf("replayed %d records, want 5", s2.Len())
	}
	for i, r := range s2.Records() {
		if r.Applied != i {
			t.Fatalf("record %d: applied=%d, want %d", i, r.Applied, i)
		}
		if r.Seq != int64(i) {
			t.Fatalf("record %d: seq=%d, want %d", i, r.Seq, i)
		}
		// Opts must come back sorted regardless of write order.
		if r.Opts[0] != "CPP" || r.Opts[1] != "DCE" {
			t.Fatalf("record %d: opts not sorted: %v", i, r.Opts)
		}
	}
}

// TestStoreTortureTruncation truncates the log at every byte offset inside
// the tail record and asserts the store reopens with only whole records —
// the same crash-shape guarantee the jobs WAL is torture-tested for.
func TestStoreTortureTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "outcomes.log")
	s, err := OpenStore(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Add(testRecord(i, []string{"DCE"}, i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Find the byte offset where the last record begins by replaying the
	// first two records' worth of a fresh store.
	probe, err := OpenStore(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	probe.Close()
	// The three records are identically sized (same order, same vec; only
	// small integers differ), so the tail starts at 2/3 of the file.
	tailStart := int64(len(full)) / 3 * 2

	for cut := tailStart; cut <= int64(len(full)); cut++ {
		p := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		ts, err := OpenStore(p, 0, false)
		if err != nil {
			t.Fatalf("cut %d: reopen failed: %v", cut, err)
		}
		wantRecs := 2
		if cut == int64(len(full)) {
			wantRecs = 3
		}
		if ts.Len() != wantRecs {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, ts.Len(), wantRecs)
		}
		for i, r := range ts.Records() {
			if r.Applied != i {
				t.Fatalf("cut %d: record %d applied=%d, want %d", cut, i, r.Applied, i)
			}
		}
		// The torn tail must have been truncated: appending now must
		// survive another reopen.
		if err := ts.Add(testRecord(99, []string{"DCE"}, 99)); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		ts.Close()
		rs, err := OpenStore(p, 0, false)
		if err != nil {
			t.Fatalf("cut %d: reopen after append: %v", cut, err)
		}
		if rs.Len() != wantRecs+1 {
			t.Fatalf("cut %d: after append replayed %d, want %d", cut, rs.Len(), wantRecs+1)
		}
		last := rs.Records()[rs.Len()-1]
		if last.Applied != 99 {
			t.Fatalf("cut %d: appended record lost, tail applied=%d", cut, last.Applied)
		}
		rs.Close()
	}
}

// TestStoreCorruptTail flips a payload bit in the final record: CRC must
// reject it and replay must stop at the previous record.
func TestStoreCorruptTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "outcomes.log")
	s, err := OpenStore(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Add(testRecord(i, []string{"ICM"}, i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tailStart := int64(len(full)) / 3 * 2
	full[tailStart+10] ^= 0xFF // inside the tail record's payload
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("replayed %d records past a corrupt tail, want 2", s2.Len())
	}
}

// TestStoreCompaction verifies the window bound survives both live appends
// and replay of an over-long historical log.
func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "outcomes.log")
	s, err := OpenStore(path, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Add(testRecord(i, []string{"DCE"}, i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("live window %d, want 4", s.Len())
	}
	if got := s.Records()[0].Applied; got != 6 {
		t.Fatalf("oldest surviving applied=%d, want 6", got)
	}
	s.Close()

	// Reopen with a smaller window: replay must keep only the newest.
	s2, err := OpenStore(path, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("reopened window %d, want 2", s2.Len())
	}
	if got := s2.Records()[1].Applied; got != 9 {
		t.Fatalf("newest applied=%d, want 9", got)
	}
}

func TestStoreMemoryOnly(t *testing.T) {
	s, err := OpenStore("", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(testRecord(0, []string{"DCE"}, 1)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || s.Size() != 0 {
		t.Fatalf("memory store len=%d size=%d", s.Len(), s.Size())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
