package advisor

import (
	"path/filepath"
	"strings"
	"testing"
)

const srcLoopy = `PROGRAM loopy
INTEGER n, i
REAL a(16), s
n = 16
s = 0.0
DO i = 1, n
  a(i) = i * 2.0
ENDDO
DO i = 1, 16
  s = s + a(i)
ENDDO
PRINT s
END
`

const srcNest = `PROGRAM nest
INTEGER i, j
REAL u(8,8)
DO i = 1, 8
  DO j = 1, 8
    u(i,j) = i + j
  ENDDO
ENDDO
PRINT u(1,1)
END
`

const srcStraight = `PROGRAM straight
INTEGER x, y
x = 1
y = x + 2
PRINT y
END
`

func TestExtractorVector(t *testing.T) {
	ex, err := NewExtractor(0)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ex.Vector(srcLoopy)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != Dims() {
		t.Fatalf("vector dims %d, want %d", len(v), Dims())
	}
	var norm float64
	for _, x := range v {
		norm += float64(x) * float64(x)
	}
	if norm < 0.999 || norm > 1.001 {
		t.Fatalf("vector not unit-normalized: |v|^2 = %v", norm)
	}
	// Memoization must return the identical slice.
	v2, err := ex.Vector(srcLoopy)
	if err != nil {
		t.Fatal(err)
	}
	if &v[0] != &v2[0] {
		t.Fatal("feature cache miss on identical source")
	}
	// A structurally different program must featurize differently.
	v3, err := ex.Vector(srcNest)
	if err != nil {
		t.Fatal(err)
	}
	if l2(v, v3) == 0 {
		t.Fatal("distinct programs produced identical vectors")
	}
	if _, err := ex.Vector("THIS IS NOT MINIF"); err == nil {
		t.Fatal("expected parse error for junk source")
	}
}

func TestChooseFallbackWhenThin(t *testing.T) {
	a, err := Open(Config{MinNeighbors: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	d, _, err := a.Choose(srcLoopy, []string{"DCE", "CPP"})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Fallback || len(d.Order) != 0 {
		t.Fatalf("cold store: want fallback, got %+v", d)
	}
}

func seedAdvisor(t *testing.T, a *Advisor) {
	t.Helper()
	// History: on loop-shaped programs, order CPP,DCE applied 9 actions;
	// order DCE,CPP applied 4. The advisor must prefer the former.
	for i := 0; i < 4; i++ {
		if !a.Harvest(Outcome{
			Source: srcLoopy, Opts: []string{"CPP", "DCE"},
			Order: []string{"CPP", "DCE"}, Applied: 9, WallUS: 500,
		}) {
			t.Fatal("harvest rejected")
		}
		if !a.Harvest(Outcome{
			Source: srcLoopy, Opts: []string{"CPP", "DCE"},
			Order: []string{"DCE", "CPP"}, Applied: 4, WallUS: 100,
		}) {
			t.Fatal("harvest rejected")
		}
	}
	a.Flush()
}

func TestChoosePrefersMoreApplied(t *testing.T) {
	a, err := Open(Config{MinNeighbors: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	seedAdvisor(t, a)
	if a.Size() != 8 {
		t.Fatalf("store size %d, want 8", a.Size())
	}
	d, _, err := a.Choose(srcLoopy, []string{"DCE", "CPP"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Fallback {
		t.Fatal("unexpected fallback with warm store")
	}
	// DCE,CPP is faster (4 applied / 100us) but CPP,DCE applied more
	// actions: applied wins, rate only breaks ties.
	if got := strings.Join(d.Order, ","); got != "CPP,DCE" {
		t.Fatalf("chose %q, want CPP,DCE", got)
	}
}

func TestChooseOptSetMismatchFallsBack(t *testing.T) {
	a, err := Open(Config{MinNeighbors: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	seedAdvisor(t, a)
	// History exists only for {CPP,DCE}; asking about {CPP,DCE,ICM} must
	// not borrow it.
	d, _, err := a.Choose(srcLoopy, []string{"CPP", "DCE", "ICM"})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Fallback {
		t.Fatalf("want fallback for unseen opt set, got order %v", d.Order)
	}
}

// TestChooseDeterministicAcrossNodes: two advisors built from the same
// persisted store must make byte-identical decisions, run after run.
func TestChooseDeterministicAcrossNodes(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(Config{Dir: dir, MinNeighbors: 2})
	if err != nil {
		t.Fatal(err)
	}
	seedAdvisor(t, a)
	// Add same-distance ties: two orders with identical applied and wall
	// harvested from an identical program — only the lexicographic
	// tie-break separates them.
	for _, order := range [][]string{{"ICM", "FUS"}, {"FUS", "ICM"}} {
		for i := 0; i < 2; i++ {
			a.Harvest(Outcome{
				Source: srcNest, Opts: []string{"FUS", "ICM"},
				Order: append([]string(nil), order...), Applied: 5, WallUS: 300,
			})
		}
	}
	a.Flush()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	var got []string
	for node := 0; node < 3; node++ {
		b, err := Open(Config{Dir: dir, MinNeighbors: 2})
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 5; run++ {
			d1, _, err := b.Choose(srcLoopy, []string{"DCE", "CPP"})
			if err != nil {
				t.Fatal(err)
			}
			d2, _, err := b.Choose(srcNest, []string{"ICM", "FUS"})
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, strings.Join(d1.Order, ",")+"|"+strings.Join(d2.Order, ","))
		}
		b.Close()
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[0] {
			t.Fatalf("nondeterministic decision: run 0 %q vs run %d %q", got[0], i, got[i])
		}
	}
	// The tied orders must resolve to the lexicographically smallest.
	if !strings.HasSuffix(got[0], "|FUS,ICM") {
		t.Fatalf("tie not broken lexicographically: %q", got[0])
	}
}

func TestHarvestPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(Config{Dir: dir, MinNeighbors: 1})
	if err != nil {
		t.Fatal(err)
	}
	a.Harvest(Outcome{
		Source: srcStraight, Opts: []string{"CPP"},
		Order: []string{"CPP"}, Applied: 2, WallUS: 50, Engine: "interp",
	})
	a.Flush()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := filepath.Glob(filepath.Join(dir, "outcomes.log")); err != nil {
		t.Fatal(err)
	}
	b, err := Open(Config{Dir: dir, MinNeighbors: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Size() != 1 {
		t.Fatalf("reopened store size %d, want 1", b.Size())
	}
	d, _, err := b.Choose(srcStraight, []string{"CPP"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Fallback || strings.Join(d.Order, ",") != "CPP" {
		t.Fatalf("decision after reopen: %+v", d)
	}
}

func TestHarvestRejectsJunk(t *testing.T) {
	a, err := Open(Config{MinNeighbors: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Harvest(Outcome{Source: "", Order: []string{"DCE"}}) {
		t.Fatal("accepted empty source")
	}
	if a.Harvest(Outcome{Source: srcStraight}) {
		t.Fatal("accepted empty order")
	}
	// Unparseable source is accepted (the queue is decoupled) but must not
	// land in the store.
	a.Harvest(Outcome{Source: "NOT MINIF", Opts: []string{"DCE"},
		Order: []string{"DCE"}, Applied: 1, WallUS: 1})
	a.Flush()
	if a.Size() != 0 {
		t.Fatalf("junk source ingested: store size %d", a.Size())
	}
}

func TestObsCallbacks(t *testing.T) {
	harvested, sizes := 0, []int{}
	a, err := Open(Config{
		MinNeighbors: 1,
		Obs: Obs{
			Harvested: func() { harvested++ },
			StoreSize: func(n int) { sizes = append(sizes, n) },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Harvest(Outcome{Source: srcStraight, Opts: []string{"CPP"},
		Order: []string{"CPP"}, Applied: 1, WallUS: 10})
	a.Flush()
	a.Close()
	if harvested != 1 {
		t.Fatalf("harvested callbacks %d, want 1", harvested)
	}
	if len(sizes) == 0 || sizes[len(sizes)-1] != 1 {
		t.Fatalf("store size reports %v, want final 1", sizes)
	}
}
