package advisor

import (
	"crypto/sha256"
	"fmt"
	"math"
	"sync"

	"repro/dep"
	"repro/internal/engine"
	"repro/internal/frontend"
	"repro/internal/specs"
	"repro/ir"
)

// SchemaVersion identifies the feature-vector layout. Retrieval only
// compares vectors of the same schema, so changing the layout (adding a
// dimension, reordering the census) bumps this and quietly retires old
// records instead of mixing incomparable geometries.
const SchemaVersion = 1

// censusDims is the structural prefix of the vector; the per-optimization
// opportunity counts for specs.Ten follow it.
const censusDims = 11

// Dims is the feature-vector length under SchemaVersion.
func Dims() int { return censusDims + len(specs.Ten) }

// Extractor computes the per-program feature vector: a structural census
// (statement kinds, loop depth histogram, array-reference and constant
// operand counts) followed by one pattern-only opportunity count per
// paper optimization. Pattern-only matching skips every Depend clause, so
// the census costs a parse plus a linear pattern sweep — no dependence
// graph is ever computed.
//
// Vectors are unit-L2 normalized: retrieval distance then measures the
// *shape* of a program (what kinds of opportunity it offers, how its loops
// nest) rather than its size, which is what makes a 40-statement training
// program a useful neighbor for a 400-statement request.
type Extractor struct {
	matchers []*engine.Optimizer // pattern-only matchers, specs.Ten order

	mu      sync.Mutex
	cache   map[[sha256.Size]byte][]float32
	fifo    [][sha256.Size]byte // eviction order for cache
	maxKeep int
}

// NewExtractor compiles the pattern-only matchers. cacheEntries bounds the
// per-source vector cache (vectors are ~120 bytes; the cache exists so the
// request path never re-parses a corpus program it just featurized);
// values < 1 select 256.
func NewExtractor(cacheEntries int) (*Extractor, error) {
	if cacheEntries < 1 {
		cacheEntries = 256
	}
	e := &Extractor{
		cache:   map[[sha256.Size]byte][]float32{},
		maxKeep: cacheEntries,
	}
	for _, name := range specs.Ten {
		o, err := specs.Compile(name)
		if err != nil {
			return nil, fmt.Errorf("advisor: compiling %s matcher: %w", name, err)
		}
		e.matchers = append(e.matchers, o)
	}
	return e, nil
}

// Vector featurizes MiniF source, memoizing by content hash.
func (e *Extractor) Vector(source string) ([]float32, error) {
	key := sha256.Sum256([]byte(source))
	e.mu.Lock()
	if v, ok := e.cache[key]; ok {
		e.mu.Unlock()
		return v, nil
	}
	e.mu.Unlock()
	p, err := frontend.Parse(source)
	if err != nil {
		return nil, err
	}
	v := e.VectorOf(p)
	e.mu.Lock()
	if _, ok := e.cache[key]; !ok {
		e.cache[key] = v
		e.fifo = append(e.fifo, key)
		if len(e.fifo) > e.maxKeep {
			delete(e.cache, e.fifo[0])
			e.fifo = e.fifo[1:]
		}
	}
	e.mu.Unlock()
	return v, nil
}

// VectorOf featurizes an already-parsed program. The returned vector is
// unit-L2 normalized (or all zero for an empty program).
func (e *Extractor) VectorOf(p *ir.Program) []float32 {
	raw := make([]float64, Dims())
	countOperand := func(op ir.Operand) {
		switch op.Kind {
		case ir.ArrayRef:
			raw[5]++
		case ir.Const:
			raw[6]++
		}
	}
	for _, s := range p.Stmts() {
		raw[0]++
		switch s.Kind {
		case ir.SAssign:
			raw[1]++
		case ir.SDoHead:
			raw[2]++
		case ir.SIf:
			raw[3]++
		case ir.SPrint, ir.SRead:
			raw[4]++
		}
		for _, op := range s.Uses() {
			countOperand(op)
		}
		if d, ok := s.Defs(); ok {
			countOperand(d)
		}
	}
	maxDepth := 0
	for _, l := range ir.Loops(p) {
		depth := ir.NestDepth(p, l.Head) + 1
		switch {
		case depth == 1:
			raw[7]++
		case depth == 2:
			raw[8]++
		default:
			raw[9]++
		}
		if depth > maxDepth {
			maxDepth = depth
		}
	}
	raw[10] = float64(maxDepth)
	// Opportunity census: how many times each optimization's code pattern
	// matches, ignoring dependence restrictions. The stub graph is never
	// consulted in pattern-only mode.
	g := &dep.Graph{Prog: p}
	for i, o := range e.matchers {
		raw[censusDims+i] = float64(o.CountPatternOnly(p, g))
	}
	return normalize(raw)
}

// normalize projects onto the unit sphere (float32 storage keeps records
// compact; the precision loss is far below retrieval's distance scale).
func normalize(raw []float64) []float32 {
	var sum float64
	for _, v := range raw {
		sum += v * v
	}
	out := make([]float32, len(raw))
	if sum == 0 {
		return out
	}
	inv := 1 / math.Sqrt(sum)
	for i, v := range raw {
		out[i] = float32(v * inv)
	}
	return out
}
