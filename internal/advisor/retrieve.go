package advisor

import (
	"math"
	"sort"
	"strings"
)

// Decision is the outcome of one retrieval: the chosen order plus the
// evidence behind it, for response stamping, metrics and trace spans.
type Decision struct {
	// Order is the recommended pass order. Empty when Fallback is true.
	Order []string
	// Neighbors is how many comparable records voted.
	Neighbors int
	// Fallback is true when history was too thin (fewer than MinNeighbors
	// comparable records) and the caller should use the default order.
	Fallback bool
	// Score is the winning order's weighted mean applied-action count.
	Score float64
}

// choose runs the k-nearest-neighbor vote. It is deterministic for a given
// record list: neighbors sort by (distance, Seq), candidate orders score by
// weighted mean applied actions with applied-per-microsecond as tie-break,
// and remaining ties fall to the lexicographically smallest order string —
// so two nodes with byte-identical stores always agree.
//
// The primary criterion is applied actions (not rate): the advisor's
// contract is "auto never applies fewer actions than the history says the
// best order achieves on programs shaped like this one"; speed only
// arbitrates between equally productive orders.
func choose(recs []*Record, vec []float32, opts []string, k, minNeighbors int) Decision {
	if k < 1 {
		k = 1
	}
	if minNeighbors < 1 {
		minNeighbors = 1
	}
	want := append([]string(nil), opts...)
	sort.Strings(want)

	type cand struct {
		rec  *Record
		dist float64
	}
	var cands []cand
	for _, r := range recs {
		if r.Schema != SchemaVersion || len(r.Vec) != len(vec) {
			continue
		}
		if !sameSet(r.Opts, want) {
			continue
		}
		cands = append(cands, cand{rec: r, dist: l2(r.Vec, vec)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].rec.Seq < cands[j].rec.Seq
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	if len(cands) < minNeighbors {
		return Decision{Neighbors: len(cands), Fallback: true}
	}

	// Weighted vote per distinct order among the neighbors.
	type tally struct {
		order   []string
		w       float64 // Σ 1/(dist+ε)
		applied float64 // Σ w·applied
		wall    float64 // Σ w·wallUS
	}
	byOrder := map[string]*tally{}
	var keys []string
	for _, c := range cands {
		key := strings.Join(c.rec.Order, ",")
		t := byOrder[key]
		if t == nil {
			t = &tally{order: c.rec.Order}
			byOrder[key] = t
			keys = append(keys, key)
		}
		w := 1 / (c.dist + 1e-6)
		t.w += w
		t.applied += w * float64(c.rec.Applied)
		t.wall += w * float64(c.rec.WallUS)
	}
	sort.Strings(keys) // lexicographic final tie-break

	best := ""
	var bestApplied, bestRate float64
	for _, key := range keys {
		t := byOrder[key]
		meanApplied := t.applied / t.w
		// applied per microsecond; +1 guards the zero-wall degenerate case.
		rate := t.applied / (t.wall + 1)
		if best == "" || meanApplied > bestApplied ||
			(meanApplied == bestApplied && rate > bestRate) {
			best, bestApplied, bestRate = key, meanApplied, rate
		}
	}
	return Decision{
		Order:     append([]string(nil), byOrder[best].order...),
		Neighbors: len(cands),
		Score:     bestApplied,
	}
}

func sameSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func l2(a, b []float32) float64 {
	var sum float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		sum += d * d
	}
	return math.Sqrt(sum)
}
