package gospel

// This file documents where this implementation's GOSpeL dialect extends or
// deviates from the paper's presentation (Section 2, Figures 1–2 and the
// appendix BNF). Every extension exists because one of the ten
// optimizations the paper *names* needs a construct its figures never show.
//
// # Faithful core
//
//   - TYPE section with Stmt, Loop, Nested Loops, Tight Loops, Adjacent
//     Loops; pair types declare parenthesized identifier pairs, and a loop
//     name may recur across pairs of one declaration to chain a nest
//     (Tight Loops: (L1, L2), (L2, L3); — used by loop circulation).
//   - PRECOND with Code_Pattern (quantifier, elements, format expression)
//     and Depend (quantifier, elements, sets_of_elements "," conditions) —
//     ordering of sets before conditions as the BNF prescribes.
//   - Quantifiers any / all / no with the paper's semantics ('no' in
//     Code_Pattern is rejected outright — the paper merely warns).
//   - Dependence predicates flow_dep / anti_dep / out_dep / ctrl_dep with
//     optional direction vectors over <, >, =, * (also <=, >=, != sets and
//     the keyword any).
//   - Membership mem/nmem over loops (their bodies), path(A, B), inter,
//     union; pre-defined attributes opr_1..opr_3, opc, next, prev on
//     statements and head, end, body, lcv, init, final on loops.
//   - ACTION with the five primitives delete, copy, move, add, modify and
//     the forall iterator; flow of control is otherwise implicit.
//   - Comments /* ... */ as in the figures (plus -- line comments).
//
// # Direction-vector matching
//
// The paper ties vector length to the nesting level of the related
// statements. This implementation pads on comparison: a dependence vector
// extends with '=' (it is loop-independent with respect to loops that do
// not carry it) and a pattern extends with '*'. That is what lets Fig. 1's
// flow_dep(Si, Sj, (=)) apply to statements at any depth. Two consequences,
// both deliberate:
//
//   - (=) means "equal at the levels written, unconstrained below", NOT
//     "loop-independent"; use the `independent` form (below) for the
//     latter.
//   - a pattern longer than the vector constrains the missing levels to
//     '='.
//
// # Extensions
//
//   - `kind` attribute: Si.kind == assign/do/doall/enddo/if/else/endif/
//     print/read classifies the statement form; the paper's opc covers
//     only assignment opcodes. (Needed by DCE, CFO, PAR.)
//   - `step` loop attribute, alongside init/final. (Needed by LUR, BMP.)
//   - position variables may be compared: (pos2 == pos). Figure 1 writes
//     the same constraint through an operand() equality; the generated C
//     (Fig. 6) compares dep_opr results, which is exactly this.
//   - `carried(L)` as the direction argument: the dependence is carried by
//     loop L's level, whatever the statements' common nesting depth.
//     (Needed by PAR, whose specification the paper omits.)
//   - `independent` as the direction argument: the dependence is
//     loop-independent (not carried at any level). (Needed by ICM.)
//   - `fused_dep(Sm, Sn, L1, L2, (dir))`: the direction a dependence
//     between Sm ∈ L1 and Sn ∈ L2 would have if the adjacent loops were
//     fused. (Needed by FUS.)
//   - `trip(L)`: the constant trip count, usable in arithmetic
//     comparisons: (trip(L1) mod 2 == 0). (Needed by LUR, BMP.)
//   - `eval(x)`: action-level constant evaluation — eval(Si) folds a
//     statement's right-hand side, eval(a op b) folds operands. (Needed by
//     CFO, LUR, BMP.)
//   - `subst(v, e)` as a modify value: rewrite occurrences of variable v
//     by the affine expression e in the target statement — subscripts
//     substitute directly; a direct operand only when representable in a
//     quadruple, otherwise the application aborts and rolls back. (Needed
//     by LUR, BMP.)
//   - modify(X.opc, literal) retargets opcodes and loop kinds (doall);
//     setting opc to assign clears the third operand.
//
// # Omissions
//
//   - The paper's LABEL/LCV/BODY StmtId suffixes beyond those above, and
//     expression code elements inside forall, are unimplemented — matching
//     the prototype's own restrictions ("no expressions are included as
//     code elements in the forall construct").
