package gospel

import (
	"fmt"
	"strings"

	"repro/dep"
)

// ElemKind is a GOSpeL code-element type from the TYPE section.
type ElemKind int

const (
	KStmt ElemKind = iota
	KLoop
	KNestedLoops
	KTightLoops
	KAdjacentLoops
)

func (k ElemKind) String() string {
	switch k {
	case KStmt:
		return "Stmt"
	case KLoop:
		return "Loop"
	case KNestedLoops:
		return "Nested Loops"
	case KTightLoops:
		return "Tight Loops"
	case KAdjacentLoops:
		return "Adjacent Loops"
	}
	return fmt.Sprintf("ElemKind(%d)", int(k))
}

// Pairwise reports whether the type declares parenthesized identifier pairs.
func (k ElemKind) Pairwise() bool {
	return k == KNestedLoops || k == KTightLoops || k == KAdjacentLoops
}

// TypeItem is one declared item: a single name or a (first, second) pair.
type TypeItem struct {
	Names []string
	Line  int
}

// TypeDecl declares items of one element type.
type TypeDecl struct {
	Kind  ElemKind
	Items []TypeItem
}

// Quant is a GOSpeL quantifier.
type Quant int

const (
	QAny Quant = iota
	QAll
	QNo
)

func (q Quant) String() string {
	switch q {
	case QAny:
		return "any"
	case QAll:
		return "all"
	case QNo:
		return "no"
	}
	return "?"
}

// Expr is a GOSpeL expression node.
type Expr interface {
	expr()
	String() string
}

// Ident references a declared element variable or position variable.
type Ident struct {
	Name string
	Line int
}

// Attr is an attribute access X.attr (chains nest: (X.end).prev).
type Attr struct {
	Base Expr
	Name string // opr_1..opr_3, opc, kind, next, prev, head, end, body, lcv, init, final
	Line int
}

// Call is a function-form term: dependence predicates (flow_dep, anti_dep,
// out_dep, ctrl_dep, fused_dep), set predicates (mem, nmem), set builders
// (path, inter, union), and the operand/type/eval/subst/trip helpers.
type Call struct {
	Fn   string
	Args []Expr
	Dir  dep.Vector // direction vector literal for dependence predicates
	// CarriedBy, when set on a dependence predicate, names the loop
	// variable whose level must carry the dependence (the carried(L) form).
	CarriedBy string
	// Independent, when set on a dependence predicate, restricts the match
	// to loop-independent dependences (not carried by any loop) — the
	// `independent` direction form.
	Independent bool
	Line        int
}

// Binary is a binary operation: logical (and/or), relational
// (== != < <= > >=), or arithmetic (+ - * / mod) inside eval/comparisons.
type Binary struct {
	Op   string
	L, R Expr
	Line int
}

// Not is logical negation NOT(...).
type Not struct {
	E    Expr
	Line int
}

// Num is a numeric literal.
type Num struct {
	Text string
	Line int
}

// Lit is a symbolic literal: an opcode name (assign, add, sub, mul, div,
// mod), an operand-type name (const, var, array), a statement-kind name
// (do, enddo, if, else, endif, print, read) or `doall`.
type Lit struct {
	Name string
	Line int
}

func (Ident) expr()  {}
func (Attr) expr()   {}
func (Call) expr()   {}
func (Binary) expr() {}
func (Not) expr()    {}
func (Num) expr()    {}
func (Lit) expr()    {}

func (e Ident) String() string { return e.Name }
func (e Attr) String() string  { return e.Base.String() + "." + e.Name }
func (e Call) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	if len(e.Dir) > 0 {
		parts = append(parts, e.Dir.String())
	}
	if e.CarriedBy != "" {
		parts = append(parts, "carried("+e.CarriedBy+")")
	}
	if e.Independent {
		parts = append(parts, "independent")
	}
	return e.Fn + "(" + strings.Join(parts, ", ") + ")"
}
func (e Binary) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}
func (e Not) String() string { return "NOT(" + e.E.String() + ")" }
func (e Num) String() string { return e.Text }
func (e Lit) String() string { return e.Name }

// PatternClause is one Code_Pattern line:
//
//	quant elems [ : format ] ;
type PatternClause struct {
	Quant  Quant
	Elems  []string
	Format Expr // nil when no format restriction
	Line   int
}

// DependClause is one Depend line:
//
//	quant elems : [ sets , ] conds ;
//
// Elems may be empty when the clause only re-checks already-bound elements
// (the paper's "no L1.head flow_dep(L1.head, L2.head)" form).
type DependClause struct {
	Quant Quant
	Elems []string
	Sets  Expr // membership qualification; nil when absent
	Conds Expr
	Line  int
}

// Action nodes.
type Action interface {
	action()
	String() string
}

// DeleteAction is Delete(a).
type DeleteAction struct {
	Target Expr
	Line   int
}

// CopyAction is Copy(a, b, c): copy a, place after b, bind to name c.
type CopyAction struct {
	Src   Expr
	After Expr
	Name  string
	Line  int
}

// MoveAction is Move(a, b): move a to follow b.
type MoveAction struct {
	Src   Expr
	After Expr
	Line  int
}

// AddAction is Add(a, desc, b): add a statement described by desc after a,
// binding the new statement to name b. The description is an expression
// evaluating to a statement template (in this implementation, a copy-like
// description built from eval/operand forms).
type AddAction struct {
	After Expr
	Desc  Expr
	Name  string
	Line  int
}

// ModifyAction is Modify(target, value).
type ModifyAction struct {
	Target Expr
	Value  Expr
	Line   int
}

// ForallAction applies Body to every element of Set, binding Var.
type ForallAction struct {
	Var  string
	Set  Expr
	Body []Action
	Line int
}

func (DeleteAction) action() {}
func (CopyAction) action()   {}
func (MoveAction) action()   {}
func (AddAction) action()    {}
func (ModifyAction) action() {}
func (ForallAction) action() {}

func (a DeleteAction) String() string { return "delete(" + a.Target.String() + ")" }
func (a CopyAction) String() string {
	return "copy(" + a.Src.String() + ", " + a.After.String() + ", " + a.Name + ")"
}
func (a MoveAction) String() string {
	return "move(" + a.Src.String() + ", " + a.After.String() + ")"
}
func (a AddAction) String() string {
	return "add(" + a.After.String() + ", " + a.Desc.String() + ", " + a.Name + ")"
}
func (a ModifyAction) String() string {
	return "modify(" + a.Target.String() + ", " + a.Value.String() + ")"
}
func (a ForallAction) String() string {
	parts := make([]string, len(a.Body))
	for i, b := range a.Body {
		parts[i] = b.String()
	}
	return "forall " + a.Var + " in " + a.Set.String() + " do " + strings.Join(parts, "; ") + " end"
}

// Spec is a complete GOSpeL specification.
type Spec struct {
	Name     string // assigned by the caller/registry, not part of the text
	Types    []TypeDecl
	Patterns []PatternClause
	Depends  []DependClause
	Actions  []Action
}

// DeclKind returns the declared element kind of name.
func (s *Spec) DeclKind(name string) (ElemKind, bool) {
	for _, td := range s.Types {
		for _, it := range td.Items {
			for _, n := range it.Names {
				if n == name {
					return td.Kind, true
				}
			}
		}
	}
	return 0, false
}

// PairOf returns the declared pair containing name, if any.
func (s *Spec) PairOf(name string) (TypeItem, ElemKind, bool) {
	for _, td := range s.Types {
		if !td.Kind.Pairwise() {
			continue
		}
		for _, it := range td.Items {
			for _, n := range it.Names {
				if n == name {
					return it, td.Kind, true
				}
			}
		}
	}
	return TypeItem{}, 0, false
}
