// Package gospel implements GOSpeL, the General Optimization Specification
// Language of Whitfield & Soffa (PLDI 1991): lexer, parser, AST and semantic
// checker. A specification has three sections —
//
//	TYPE            declares code-element variables
//	PRECOND         Code_Pattern (syntactic format) and Depend (dependences)
//	ACTION          the transformation, in five primitive operations
//
// The concrete grammar follows the paper's appendix BNF for the Depend
// section and the prose plus Figures 1–2 for the rest. Extensions beyond
// the paper (each marked in doc.go): position-variable comparisons, the
// `kind` attribute, `eval`/`subst`/`trip` action helpers, and the
// `fused_dep`/`carried` dependence forms needed by optimizations whose
// specifications the paper names but does not show.
package gospel

import "fmt"

// TokKind classifies tokens.
type TokKind int

const (
	TEOF TokKind = iota
	TIdent
	TNum
	TKeyword
	TPunct // ( ) , ; : .
	TOp    // == != < <= > >= = * + - /
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string // keywords normalized to lower case
	Line int
}

func (t Token) String() string {
	if t.Kind == TEOF {
		return "end of specification"
	}
	return fmt.Sprintf("%q", t.Text)
}

// keywords of the language, stored lower-case; matching is case-insensitive
// (the paper itself mixes TYPE, Code_Pattern, any, AND).
var keywords = map[string]bool{
	"type": true, "precond": true, "code_pattern": true, "depend": true,
	"action": true,
	"stmt":   true, "loop": true, "nested_loops": true, "tight_loops": true,
	"adjacent_loops": true, "nested": true, "tight": true, "adjacent": true,
	"loops": true,
	"any":   true, "all": true, "no": true,
	"and": true, "or": true, "not": true,
	"mem": true, "nmem": true, "path": true, "inter": true, "union": true,
	"flow_dep": true, "anti_dep": true, "out_dep": true, "ctrl_dep": true,
	"fused_dep": true, "carried": true, "independent": true,
	"delete": true, "copy": true, "move": true, "add": true, "modify": true,
	"forall": true, "in": true, "do": true, "end": true,
	"operand": true, "eval": true, "subst": true, "trip": true, "mod": true,
}

// Error is a positioned GOSpeL front-end error.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("gospel:%d: %s", e.Line, e.Msg) }
