package gospel

import (
	"strings"
	"testing"
)

func TestFormatRoundTripOnFigures(t *testing.T) {
	for name, src := range map[string]string{"CTP": ctpSpec, "INX": inxSpec} {
		s1, err := ParseAndCheck(name, src)
		if err != nil {
			t.Fatal(err)
		}
		text1 := Format(s1)
		s2, err := Parse(text1)
		if err != nil {
			t.Fatalf("%s: formatted text does not re-parse: %v\n%s", name, err, text1)
		}
		s2.Name = name
		if err := Check(s2); err != nil {
			t.Fatalf("%s: formatted text does not re-check: %v\n%s", name, err, text1)
		}
		text2 := Format(s2)
		if text1 != text2 {
			t.Fatalf("%s: Format is not a fixed point\nfirst:\n%s\nsecond:\n%s", name, text1, text2)
		}
	}
}

func TestFormatCoversConstructs(t *testing.T) {
	src := `
TYPE
  Stmt: Si, Sj;
  Loop: L1;
  Adjacent Loops: (A1, A2);
PRECOND
  Code_Pattern
    any L1: L1.kind == do AND (trip(L1) mod 2 == 0);
    any (A1, A2);
    any Si: NOT(Si.opc == mul) OR type(Si.opr_2) == const;
  Depend
    no Sj: mem(Sj, union(L1.body, A1.body)),
      flow_dep(Si, Sj, (<, >=, !=, *)) OR anti_dep(Si, Sj, carried(L1))
      OR out_dep(Si, Sj, independent) OR fused_dep(Si, Sj, A1, A2, (>));
ACTION
  forall S in L1.body do
    copy(S, L1.end.prev, Sc);
    modify(Sc, subst(L1.lcv, L1.lcv + L1.step));
  end
  add(Si, Si, Sn);
  move(Sn, L1.head.prev);
  modify(operand(Sj, 2), eval(Si.opr_2 + 1));
  delete(Si);
`
	s1, err := ParseAndCheck("ALL", src)
	if err != nil {
		t.Fatal(err)
	}
	text1 := Format(s1)
	s2, err := Parse(text1)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text1)
	}
	text2 := Format(s2)
	if text1 != text2 {
		t.Fatalf("not a fixed point:\n%s\nvs:\n%s", text1, text2)
	}
	for _, want := range []string{
		"Adjacent Loops: (A1, A2);",
		"carried(L1)",
		"independent",
		"(<, >=, !=, *)",
		"forall S in L1.body do",
		"subst(L1.lcv, (L1.lcv + L1.step))",
	} {
		if !strings.Contains(text1, want) {
			t.Errorf("formatted text missing %q:\n%s", want, text1)
		}
	}
}

func TestFormatElementlessClause(t *testing.T) {
	// Fig. 2's "no L1.head: flow_dep(L1.head, L2.head)" clause binds no
	// elements; Format must emit an anchor that re-parses element-less.
	s1, err := ParseAndCheck("INX", inxSpec)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(s1)
	s2, err := Parse(text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if len(s2.Depends[0].Elems) != 0 {
		t.Fatalf("anchored clause must stay element-less, got %v\n%s",
			s2.Depends[0].Elems, text)
	}
}
