package gospel

import (
	"fmt"
	"strings"

	"repro/dep"
)

// Format renders a specification back into GOSpeL concrete syntax. The
// output re-parses to an equivalent specification (Format ∘ Parse is a
// fixed point — see the round-trip tests), which makes it useful for
// canonicalizing user specifications and for tooling.
func Format(s *Spec) string {
	var b strings.Builder
	b.WriteString("TYPE\n")
	for _, td := range s.Types {
		items := make([]string, len(td.Items))
		for i, it := range td.Items {
			if len(it.Names) == 2 {
				items[i] = "(" + it.Names[0] + ", " + it.Names[1] + ")"
			} else {
				items[i] = it.Names[0]
			}
		}
		fmt.Fprintf(&b, "  %s: %s;\n", typeKeyword(td.Kind), strings.Join(items, ", "))
	}
	b.WriteString("PRECOND\n  Code_Pattern\n")
	for _, pc := range s.Patterns {
		b.WriteString("    " + formatQuantClause(pc.Quant, pc.Elems, nil, pc.Format) + "\n")
	}
	b.WriteString("  Depend\n")
	for _, dc := range s.Depends {
		b.WriteString("    " + formatDependClause(dc) + "\n")
	}
	b.WriteString("ACTION\n")
	for _, a := range s.Actions {
		formatAction(&b, a, "  ")
	}
	return b.String()
}

func typeKeyword(k ElemKind) string {
	switch k {
	case KStmt:
		return "Stmt"
	case KLoop:
		return "Loop"
	case KNestedLoops:
		return "Nested Loops"
	case KTightLoops:
		return "Tight Loops"
	case KAdjacentLoops:
		return "Adjacent Loops"
	}
	return "?"
}

func formatQuantClause(q Quant, elems []string, sets, conds Expr) string {
	var b strings.Builder
	b.WriteString(q.String())
	if len(elems) == 1 {
		b.WriteString(" " + elems[0])
	} else if len(elems) > 1 {
		b.WriteString(" (" + strings.Join(elems, ", ") + ")")
	}
	var parts []string
	if sets != nil {
		parts = append(parts, FormatExpr(sets))
	}
	if conds != nil {
		parts = append(parts, FormatExpr(conds))
	}
	if len(parts) > 0 {
		b.WriteString(": " + strings.Join(parts, ", "))
	}
	b.WriteString(";")
	return b.String()
}

func formatDependClause(dc DependClause) string {
	if len(dc.Elems) == 0 {
		// Element-less clauses re-reference a bound element; emit a
		// harmless attribute anchor as the paper's Fig. 2 does. Using the
		// first identifier mentioned in the conditions keeps it readable.
		anchor := firstIdent(dc.Conds)
		if anchor == "" {
			anchor = firstIdent(dc.Sets)
		}
		var b strings.Builder
		b.WriteString(dc.Quant.String() + " " + anchor + ".next")
		var parts []string
		if dc.Sets != nil {
			parts = append(parts, FormatExpr(dc.Sets))
		}
		if dc.Conds != nil {
			parts = append(parts, FormatExpr(dc.Conds))
		}
		b.WriteString(": " + strings.Join(parts, ", ") + ";")
		return b.String()
	}
	return formatQuantClause(dc.Quant, dc.Elems, dc.Sets, dc.Conds)
}

func firstIdent(e Expr) string {
	switch e := e.(type) {
	case Ident:
		return e.Name
	case Attr:
		return firstIdent(e.Base)
	case Call:
		for _, a := range e.Args {
			if n := firstIdent(a); n != "" {
				return n
			}
		}
	case Binary:
		if n := firstIdent(e.L); n != "" {
			return n
		}
		return firstIdent(e.R)
	case Not:
		return firstIdent(e.E)
	}
	return ""
}

func formatAction(b *strings.Builder, a Action, indent string) {
	switch a := a.(type) {
	case ForallAction:
		fmt.Fprintf(b, "%sforall %s in %s do\n", indent, a.Var, FormatExpr(a.Set))
		for _, inner := range a.Body {
			formatAction(b, inner, indent+"  ")
		}
		fmt.Fprintf(b, "%send\n", indent)
	case DeleteAction:
		fmt.Fprintf(b, "%sdelete(%s);\n", indent, FormatExpr(a.Target))
	case MoveAction:
		fmt.Fprintf(b, "%smove(%s, %s);\n", indent, FormatExpr(a.Src), FormatExpr(a.After))
	case CopyAction:
		fmt.Fprintf(b, "%scopy(%s, %s, %s);\n", indent, FormatExpr(a.Src), FormatExpr(a.After), a.Name)
	case AddAction:
		fmt.Fprintf(b, "%sadd(%s, %s, %s);\n", indent, FormatExpr(a.After), FormatExpr(a.Desc), a.Name)
	case ModifyAction:
		fmt.Fprintf(b, "%smodify(%s, %s);\n", indent, FormatExpr(a.Target), FormatExpr(a.Value))
	}
}

// FormatExpr renders an expression in re-parsable concrete syntax (unlike
// the debug String methods, whose direction-set forms are not all part of
// the grammar).
func FormatExpr(e Expr) string {
	switch e := e.(type) {
	case Ident:
		return e.Name
	case Num:
		return e.Text
	case Lit:
		return e.Name
	case Attr:
		return FormatExpr(e.Base) + "." + e.Name
	case Not:
		return "NOT(" + FormatExpr(e.E) + ")"
	case Binary:
		op := e.Op
		switch op {
		case "and":
			op = "AND"
		case "or":
			op = "OR"
		case "mod":
			op = "mod"
		}
		return "(" + FormatExpr(e.L) + " " + op + " " + FormatExpr(e.R) + ")"
	case Call:
		parts := make([]string, 0, len(e.Args)+1)
		for _, a := range e.Args {
			parts = append(parts, FormatExpr(a))
		}
		if len(e.Dir) > 0 {
			parts = append(parts, formatVector(e.Dir))
		}
		if e.CarriedBy != "" {
			parts = append(parts, "carried("+e.CarriedBy+")")
		}
		if e.Independent {
			parts = append(parts, "independent")
		}
		return e.Fn + "(" + strings.Join(parts, ", ") + ")"
	}
	return "?"
}

// formatVector renders a direction vector in grammar form.
func formatVector(v dep.Vector) string {
	parts := make([]string, len(v))
	for i, d := range v {
		parts[i] = formatDir(d)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func formatDir(d dep.DirSet) string {
	switch d {
	case dep.DirLT:
		return "<"
	case dep.DirGT:
		return ">"
	case dep.DirEQ:
		return "="
	case dep.DirLT | dep.DirEQ:
		return "<="
	case dep.DirGT | dep.DirEQ:
		return ">="
	case dep.DirLT | dep.DirGT:
		return "!="
	default:
		return "*"
	}
}
