package gospel

import (
	"strings"
	"unicode"
)

// Lex tokenizes a GOSpeL specification. Comments run from "/*" to "*/"
// (as in the paper's figures) or from "--" to end of line.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line := 1
	i := 0
	emit := func(kind TokKind, text string) {
		toks = append(toks, Token{Kind: kind, Text: text, Line: line})
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, &Error{line, "unterminated comment"}
			}
			line += strings.Count(src[i:i+2+end+2], "\n")
			i += 2 + end + 2
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsDigit(rune(c)):
			start := i
			for i < len(src) && (unicode.IsDigit(rune(src[i])) || src[i] == '.') {
				// Stop a trailing '.' that belongs to an attribute access.
				if src[i] == '.' && i+1 < len(src) && unicode.IsLetter(rune(src[i+1])) {
					break
				}
				i++
			}
			emit(TNum, src[start:i])
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			word := src[start:i]
			lower := strings.ToLower(word)
			if keywords[lower] {
				emit(TKeyword, lower)
			} else {
				emit(TIdent, word)
			}
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=":
				emit(TOp, two)
				i += 2
				continue
			}
			switch c {
			case '(', ')', ',', ';', ':', '.':
				emit(TPunct, string(c))
			case '<', '>', '=', '*', '+', '-', '/':
				emit(TOp, string(c))
			default:
				return nil, &Error{line, "unexpected character " + string(c)}
			}
			i++
		}
	}
	toks = append(toks, Token{Kind: TEOF, Line: line})
	return toks, nil
}
