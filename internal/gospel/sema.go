package gospel

import (
	"fmt"
)

// SymType is the semantic type of a name or expression in a specification.
type SymType int

const (
	TyUnknown SymType = iota
	TyStmt
	TyLoop
	TyPos     // operand-position variable bound by (S, pos)
	TyOperand // an operand slot / value
	TyOpc     // an opcode literal or the .opc attribute
	TyKindLit // a statement-kind literal or the .kind attribute
	TyTypeLit // an operand-type literal (const/var/array) or type(...)
	TySet     // a statement set (loop body, path(...), unions)
	TyBool
	TyNum
	TySubst // the subst(...) value form, only legal in modify
)

func (t SymType) String() string {
	switch t {
	case TyStmt:
		return "statement"
	case TyLoop:
		return "loop"
	case TyPos:
		return "position"
	case TyOperand:
		return "operand"
	case TyOpc:
		return "opcode"
	case TyKindLit:
		return "statement-kind"
	case TyTypeLit:
		return "operand-type"
	case TySet:
		return "set"
	case TyBool:
		return "boolean"
	case TyNum:
		return "number"
	case TySubst:
		return "substitution"
	}
	return "unknown"
}

var opcLits = map[string]bool{
	"assign": true, "add": true, "sub": true, "mul": true, "div": true, "mod": true,
}

var kindLits = map[string]bool{
	"assign": true, "do": true, "enddo": true, "if": true, "else": true,
	"endif": true, "print": true, "read": true, "doall": true,
}

var typeLits = map[string]bool{"const": true, "var": true, "array": true}

// checker carries the binding environment through a specification.
type checker struct {
	spec *Spec
	env  map[string]SymType
	errs []error
}

// Check semantically validates a parsed specification: every referenced name
// must be declared or bound by an earlier clause, attributes must exist on
// the type they are applied to, and predicates must receive arguments of the
// right types.
func Check(s *Spec) error {
	c := &checker{spec: s, env: map[string]SymType{}}

	// TYPE section: declare element variables. A loop name may recur across
	// pair items of the same declaration — that is how chained nests are
	// written (Tight Loops: (L1, L2), (L2, L3); shares L2) — but a name may
	// not be declared with two different types.
	for _, td := range s.Types {
		want := TyStmt
		if td.Kind != KStmt {
			want = TyLoop
		}
		for _, it := range td.Items {
			for _, n := range it.Names {
				if prev, dup := c.env[n]; dup {
					if prev != want || !td.Kind.Pairwise() {
						c.errorf(it.Line, "duplicate declaration of %s", n)
					}
					continue
				}
				c.env[n] = want
			}
		}
	}

	// Code_Pattern clauses: elements must be declared; pairs must be
	// declared pairs.
	for _, pc := range s.Patterns {
		for _, n := range pc.Elems {
			if _, ok := c.env[n]; !ok {
				c.errorf(pc.Line, "pattern element %s not declared in TYPE", n)
			}
		}
		if len(pc.Elems) == 2 && !declaredPair(s, pc.Elems[0], pc.Elems[1]) {
			c.errorf(pc.Line, "(%s, %s) is not a declared loop pair", pc.Elems[0], pc.Elems[1])
		}
		if pc.Format != nil {
			c.wantType(pc.Format, TyBool)
		}
		if pc.Quant == QNo {
			// The paper: the no operator in Code_Pattern returns null and
			// warns the user. We make it a hard error: it can never match.
			c.errorf(pc.Line, "quantifier 'no' selects nothing in Code_Pattern")
		}
	}

	// Depend clauses: new names are position variables when they appear in
	// a parenthesized pair after a statement, otherwise they must be
	// declared element variables being bound here.
	for _, dc := range s.Depends {
		for i, n := range dc.Elems {
			if _, ok := c.env[n]; ok {
				continue
			}
			if _, declared := s.DeclKind(n); declared {
				continue
			}
			// Unknown name: position variable, legal only after a leading
			// statement variable in the same clause.
			if i == 0 {
				c.errorf(dc.Line, "%s is not declared and cannot be a position variable in first place", n)
				continue
			}
			c.env[n] = TyPos
		}
		if dc.Sets != nil {
			c.wantType(dc.Sets, TyBool)
		}
		if dc.Conds != nil {
			c.wantType(dc.Conds, TyBool)
		}
		if dc.Sets == nil && dc.Conds == nil {
			c.errorf(dc.Line, "dependence clause has no conditions")
		}
		// An `all` clause rebinds its collected element as a set for the
		// rest of the specification (typically consumed by forall).
		if dc.Quant == QAll {
			for _, n := range dc.Elems {
				if c.env[n] == TyStmt {
					c.env[n] = TySet
				}
			}
		}
	}

	// ACTION section.
	if len(s.Actions) == 0 {
		c.errs = append(c.errs, &Error{0, "specification has no actions"})
	}
	c.checkActions(s.Actions)

	if len(c.errs) > 0 {
		return c.errs[0]
	}
	return nil
}

func (c *checker) checkActions(actions []Action) {
	for _, a := range actions {
		switch a := a.(type) {
		case DeleteAction:
			c.wantType(a.Target, TyStmt)
		case MoveAction:
			c.wantType(a.Src, TyStmt)
			c.wantType(a.After, TyStmt)
		case CopyAction:
			c.wantType(a.Src, TyStmt)
			c.wantType(a.After, TyStmt)
			if _, dup := c.env[a.Name]; dup {
				c.errorf(a.Line, "copy target name %s already bound", a.Name)
			}
			c.env[a.Name] = TyStmt
		case AddAction:
			c.wantType(a.After, TyStmt)
			if _, dup := c.env[a.Name]; dup {
				c.errorf(a.Line, "add target name %s already bound", a.Name)
			}
			c.env[a.Name] = TyStmt
		case ModifyAction:
			tt := c.typeOf(a.Target)
			if tt != TyOperand && tt != TyOpc && tt != TyStmt && tt != TyKindLit {
				c.errorf(a.Line, "modify target must be an operand, opcode or statement, not %s", tt)
			}
			vt := c.typeOf(a.Value)
			if tt == TyStmt && vt != TySubst {
				c.errorf(a.Line, "modifying a whole statement requires a subst(...) value")
			}
			if tt == TyOperand && !(vt == TyOperand || vt == TyNum) {
				c.errorf(a.Line, "operand modification needs an operand or numeric value, not %s", vt)
			}
		case ForallAction:
			c.wantType(a.Set, TySet)
			if _, dup := c.env[a.Var]; dup {
				c.errorf(a.Line, "forall variable %s already bound", a.Var)
			}
			c.env[a.Var] = TyStmt
			c.checkActions(a.Body)
			delete(c.env, a.Var)
		}
	}
}

// declaredPair reports whether (a, b) appears as a pair item of some
// pairwise type declaration.
func declaredPair(s *Spec, a, b string) bool {
	for _, td := range s.Types {
		if !td.Kind.Pairwise() {
			continue
		}
		for _, it := range td.Items {
			if len(it.Names) == 2 && it.Names[0] == a && it.Names[1] == b {
				return true
			}
		}
	}
	return false
}

func (c *checker) errorf(line int, format string, args ...interface{}) {
	c.errs = append(c.errs, &Error{line, fmt.Sprintf(format, args...)})
}

func (c *checker) wantType(e Expr, want SymType) {
	got := c.typeOf(e)
	if got != want && got != TyUnknown {
		c.errorf(lineOf(e), "expected %s expression, found %s (%s)", want, got, e)
	}
}

func lineOf(e Expr) int {
	switch e := e.(type) {
	case Ident:
		return e.Line
	case Attr:
		return e.Line
	case Call:
		return e.Line
	case Binary:
		return e.Line
	case Not:
		return e.Line
	case Num:
		return e.Line
	case Lit:
		return e.Line
	}
	return 0
}

// stmtAttrs / loopAttrs map attributes to result types.
var stmtAttrs = map[string]SymType{
	"opr_1": TyOperand, "opr_2": TyOperand, "opr_3": TyOperand,
	"opc": TyOpc, "kind": TyKindLit,
	"next": TyStmt, "prev": TyStmt,
}

var loopAttrs = map[string]SymType{
	"head": TyStmt, "end": TyStmt, "body": TySet,
	"lcv": TyOperand, "init": TyOperand, "final": TyOperand, "step": TyOperand,
	"next": TyLoop, "prev": TyLoop,
	"opc": TyKindLit, "kind": TyKindLit,
}

func (c *checker) typeOf(e Expr) SymType {
	switch e := e.(type) {
	case Num:
		return TyNum
	case Lit:
		// Disambiguated by the comparison partner; classify lazily.
		switch {
		case opcLits[e.Name] && kindLits[e.Name]:
			return TyUnknown // "assign", "mod": context decides
		case opcLits[e.Name]:
			return TyOpc
		case kindLits[e.Name]:
			return TyKindLit
		case typeLits[e.Name]:
			return TyTypeLit
		}
		c.errorf(e.Line, "unknown literal %q", e.Name)
		return TyUnknown
	case Ident:
		if t, ok := c.env[e.Name]; ok {
			return t
		}
		if typeLits[e.Name] {
			return TyTypeLit
		}
		if opcLits[e.Name] {
			return TyOpc
		}
		if kindLits[e.Name] {
			return TyKindLit
		}
		c.errorf(e.Line, "unbound name %s", e.Name)
		return TyUnknown
	case Attr:
		bt := c.typeOf(e.Base)
		switch bt {
		case TyStmt:
			if t, ok := stmtAttrs[e.Name]; ok {
				return t
			}
			c.errorf(e.Line, "statements have no attribute %q", e.Name)
		case TyLoop:
			if t, ok := loopAttrs[e.Name]; ok {
				return t
			}
			c.errorf(e.Line, "loops have no attribute %q", e.Name)
		case TyUnknown:
			return TyUnknown
		default:
			c.errorf(e.Line, "%s values have no attributes", bt)
		}
		return TyUnknown
	case Not:
		c.wantType(e.E, TyBool)
		return TyBool
	case Binary:
		switch e.Op {
		case "and", "or":
			c.wantType(e.L, TyBool)
			c.wantType(e.R, TyBool)
			return TyBool
		case "==", "!=", "<", "<=", ">", ">=":
			lt, rt := c.typeOf(e.L), c.typeOf(e.R)
			if !comparable(lt, rt) {
				c.errorf(e.Line, "cannot compare %s with %s (%s)", lt, rt, e)
			}
			return TyBool
		case "+", "-", "*", "/", "mod":
			lt, rt := c.typeOf(e.L), c.typeOf(e.R)
			if !numeric(lt) || !numeric(rt) {
				c.errorf(e.Line, "arithmetic needs numeric or operand values (%s)", e)
			}
			return TyNum
		}
		c.errorf(e.Line, "unknown operator %q", e.Op)
		return TyUnknown
	case Call:
		return c.typeOfCall(e)
	}
	return TyUnknown
}

func numeric(t SymType) bool {
	return t == TyNum || t == TyOperand || t == TyPos || t == TyUnknown
}

func comparable(a, b SymType) bool {
	if a == TyUnknown || b == TyUnknown {
		return true
	}
	if a == b {
		return true // includes statement program-order comparisons
	}
	pairs := [][2]SymType{
		{TyOperand, TyNum}, {TyOperand, TyTypeLit},
		{TyOpc, TyKindLit}, // "assign"-style ambiguous literals
		{TyPos, TyNum}, {TyPos, TyPos},
		{TyNum, TyNum},
	}
	for _, p := range pairs {
		if (a == p[0] && b == p[1]) || (a == p[1] && b == p[0]) {
			return true
		}
	}
	return false
}

func (c *checker) typeOfCall(e Call) SymType {
	argc := len(e.Args)
	switch e.Fn {
	case "flow_dep", "anti_dep", "out_dep", "ctrl_dep":
		if argc != 2 {
			c.errorf(e.Line, "%s takes two statements (plus optional direction)", e.Fn)
		}
		for _, a := range e.Args {
			c.wantType(a, TyStmt)
		}
		if e.CarriedBy != "" {
			if t := c.env[e.CarriedBy]; t != TyLoop {
				c.errorf(e.Line, "carried(%s): %s is not a loop", e.CarriedBy, e.CarriedBy)
			}
		}
		return TyBool
	case "fused_dep":
		if argc != 4 {
			c.errorf(e.Line, "fused_dep takes (Stmt, Stmt, Loop, Loop) plus a direction")
			return TyBool
		}
		c.wantType(e.Args[0], TyStmt)
		c.wantType(e.Args[1], TyStmt)
		c.wantType(e.Args[2], TyLoop)
		c.wantType(e.Args[3], TyLoop)
		return TyBool
	case "mem", "nmem":
		if argc != 2 {
			c.errorf(e.Line, "%s takes (element, set)", e.Fn)
			return TyBool
		}
		c.wantType(e.Args[0], TyStmt)
		// A loop used as a set denotes its body (the paper writes
		// mem(Si, L1) for membership in the loop body).
		if st := c.typeOf(e.Args[1]); st != TySet && st != TyLoop && st != TyUnknown {
			c.errorf(e.Line, "%s needs a set or loop, found %s", e.Fn, st)
		}
		return TyBool
	case "path":
		if argc != 2 {
			c.errorf(e.Line, "path takes two statements")
			return TySet
		}
		c.wantType(e.Args[0], TyStmt)
		c.wantType(e.Args[1], TyStmt)
		return TySet
	case "inter", "union":
		if argc != 2 {
			c.errorf(e.Line, "%s takes two sets", e.Fn)
			return TySet
		}
		c.wantType(e.Args[0], TySet)
		c.wantType(e.Args[1], TySet)
		return TySet
	case "operand":
		if argc != 2 {
			c.errorf(e.Line, "operand takes (statement, position)")
			return TyOperand
		}
		c.wantType(e.Args[0], TyStmt)
		pt := c.typeOf(e.Args[1])
		if pt != TyPos && pt != TyNum && pt != TyUnknown {
			c.errorf(e.Line, "operand position must be a position variable or number")
		}
		return TyOperand
	case "type":
		if argc != 1 {
			c.errorf(e.Line, "type takes one operand")
			return TyTypeLit
		}
		c.wantType(e.Args[0], TyOperand)
		return TyTypeLit
	case "itype":
		// itype(op) — true when op is integer-typed: an integer constant,
		// or a scalar/array declared INTEGER. Implementation extension in
		// the carried()/eval()/trip() tradition: the aggregation family
		// needs it because float arithmetic is not associative, so only
		// integer chains may be collapsed under a bit-exact oracle.
		if argc != 1 {
			c.errorf(e.Line, "itype takes one operand")
			return TyBool
		}
		c.wantType(e.Args[0], TyOperand)
		return TyBool
	case "eval":
		if argc != 1 {
			c.errorf(e.Line, "eval takes one expression")
			return TyOperand
		}
		t := c.typeOf(e.Args[0])
		if t != TyNum && t != TyOperand && t != TyStmt && t != TyUnknown {
			c.errorf(e.Line, "eval needs an arithmetic expression or a statement")
		}
		return TyOperand
	case "trip":
		if argc != 1 {
			c.errorf(e.Line, "trip takes one loop")
			return TyNum
		}
		c.wantType(e.Args[0], TyLoop)
		return TyNum
	case "subst":
		if argc != 2 {
			c.errorf(e.Line, "subst takes (variable operand, replacement expression)")
			return TySubst
		}
		c.wantType(e.Args[0], TyOperand)
		t := c.typeOf(e.Args[1])
		if !numeric(t) {
			c.errorf(e.Line, "subst replacement must be an arithmetic expression")
		}
		return TySubst
	}
	c.errorf(e.Line, "unknown function %q", e.Fn)
	return TyUnknown
}
