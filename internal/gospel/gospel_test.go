package gospel

import (
	"strings"
	"testing"

	"repro/dep"
)

// ctpSpec is the paper's Figure 1 (Constant Propagation) in this
// implementation's concrete syntax.
const ctpSpec = `
TYPE
  Stmt: Si, Sj, Sl;
PRECOND
  Code_Pattern
    /* Find a constant definition */
    any Si: Si.opc == assign AND type(Si.opr_2) == const;
  Depend
    /* Use of Si with no other definitions */
    any (Sj, pos): flow_dep(Si, Sj, (=));
    no (Sl, pos2): flow_dep(Sl, Sj, (=)) AND (Si != Sl) AND (pos2 == pos);
ACTION
  /* Change use of Si in Sj to be constant */
  modify(operand(Sj, pos), Si.opr_2);
`

// inxSpec is the paper's Figure 2 (Loop Interchange).
const inxSpec = `
TYPE
  Stmt: Sn, Sm;
  Tight Loops: (L1, L2);
PRECOND
  Code_Pattern
    /* Find two nested loops */
    any (L1, L2);
  Depend
    /* Ensure invariant loop headers */
    no L1.head: flow_dep(L1.head, L2.head);
    /* No flow_dep statement pair with direction (<,>) */
    no (Sm, Sn): mem(Sm, L2) AND mem(Sn, L2), flow_dep(Sn, Sm, (<,>));
ACTION
  /* Interchange heads and tails */
  move(L1.head, L2.head);
  move(L1.end, L2.end.prev);
`

func TestLexBasics(t *testing.T) {
	toks, err := Lex("TYPE Stmt: Si; -- comment\n/* block\ncomment */ any (=) <= 12 3.5")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	want := []string{"type", "stmt", ":", "Si", ";", "any", "(", "=", ")", "<=", "12", "3.5", ""}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[0] != TKeyword || kinds[3] != TIdent || kinds[10] != TNum {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("a /* unterminated"); err == nil {
		t.Error("unterminated comment must fail")
	}
	if _, err := Lex("a @ b"); err == nil {
		t.Error("bad character must fail")
	}
}

func TestParseCTP(t *testing.T) {
	s, err := ParseAndCheck("CTP", ctpSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Types) != 1 || s.Types[0].Kind != KStmt || len(s.Types[0].Items) != 3 {
		t.Fatalf("types = %+v", s.Types)
	}
	if len(s.Patterns) != 1 {
		t.Fatalf("patterns = %d", len(s.Patterns))
	}
	pc := s.Patterns[0]
	if pc.Quant != QAny || len(pc.Elems) != 1 || pc.Elems[0] != "Si" {
		t.Errorf("pattern clause = %+v", pc)
	}
	if pc.Format == nil || !strings.Contains(pc.Format.String(), "type(Si.opr_2)") {
		t.Errorf("format = %v", pc.Format)
	}
	if len(s.Depends) != 2 {
		t.Fatalf("depends = %d", len(s.Depends))
	}
	d0 := s.Depends[0]
	if d0.Quant != QAny || len(d0.Elems) != 2 || d0.Elems[0] != "Sj" || d0.Elems[1] != "pos" {
		t.Errorf("depend 0 = %+v", d0)
	}
	call, ok := d0.Conds.(Call)
	if !ok || call.Fn != "flow_dep" || len(call.Dir) != 1 || call.Dir[0] != dep.DirEQ {
		t.Errorf("depend 0 conds = %v", d0.Conds)
	}
	d1 := s.Depends[1]
	if d1.Quant != QNo || len(d1.Elems) != 2 {
		t.Errorf("depend 1 = %+v", d1)
	}
	if len(s.Actions) != 1 {
		t.Fatalf("actions = %d", len(s.Actions))
	}
	mod, ok := s.Actions[0].(ModifyAction)
	if !ok {
		t.Fatalf("action = %T", s.Actions[0])
	}
	if got := mod.String(); got != "modify(operand(Sj, pos), Si.opr_2)" {
		t.Errorf("action string = %q", got)
	}
}

func TestParseINX(t *testing.T) {
	s, err := ParseAndCheck("INX", inxSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Types) != 2 || s.Types[1].Kind != KTightLoops {
		t.Fatalf("types = %+v", s.Types)
	}
	pair := s.Types[1].Items[0]
	if len(pair.Names) != 2 || pair.Names[0] != "L1" || pair.Names[1] != "L2" {
		t.Errorf("pair = %+v", pair)
	}
	// First depend clause binds nothing (attribute expression element).
	if len(s.Depends[0].Elems) != 0 {
		t.Errorf("depend 0 elems = %v", s.Depends[0].Elems)
	}
	// Second has a membership part and a condition part.
	d1 := s.Depends[1]
	if d1.Sets == nil || d1.Conds == nil {
		t.Fatalf("depend 1 must have sets and conds: %+v", d1)
	}
	call := d1.Conds.(Call)
	wantVec := dep.Vector{dep.DirLT, dep.DirGT}
	if len(call.Dir) != 2 || call.Dir[0] != wantVec[0] || call.Dir[1] != wantVec[1] {
		t.Errorf("direction = %v", call.Dir)
	}
	// Actions: two moves, the second anchored at L2.end.prev.
	mv2 := s.Actions[1].(MoveAction)
	if mv2.After.String() != "L2.end.prev" {
		t.Errorf("second move anchor = %s", mv2.After)
	}
}

func TestParseForallAndCopy(t *testing.T) {
	src := `
TYPE
  Loop: L1;
PRECOND
  Code_Pattern
    any L1: type(L1.init) == const;
  Depend
ACTION
  forall Sm in L1.body do
    copy(Sm, L1.end.prev, Sc);
    modify(Sc, subst(L1.lcv, L1.lcv + L1.step));
  end
  modify(L1.step, eval(L1.step * 2));
`
	s, err := ParseAndCheck("LUR", src)
	if err != nil {
		t.Fatal(err)
	}
	fa, ok := s.Actions[0].(ForallAction)
	if !ok || fa.Var != "Sm" || len(fa.Body) != 2 {
		t.Fatalf("forall = %+v", s.Actions[0])
	}
	cp := fa.Body[0].(CopyAction)
	if cp.Name != "Sc" {
		t.Errorf("copy binds %q", cp.Name)
	}
	mo := fa.Body[1].(ModifyAction)
	if _, ok := mo.Value.(Call); !ok {
		t.Errorf("modify value = %T", mo.Value)
	}
}

func TestParseCarriedAndFused(t *testing.T) {
	src := `
TYPE
  Stmt: Sm, Sn;
  Loop: L1;
  Adjacent Loops: (A1, A2);
PRECOND
  Code_Pattern
    any L1;
    any (A1, A2);
  Depend
    no (Sm, Sn): mem(Sm, L1) AND mem(Sn, L1),
      flow_dep(Sm, Sn, carried(L1)) OR anti_dep(Sm, Sn, carried(L1));
    no Sm: mem(Sm, A1), fused_dep(Sm, Sn, A1, A2, (>));
ACTION
  modify(L1.opc, doall);
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	b := s.Depends[0].Conds.(Binary)
	l := b.L.(Call)
	if l.CarriedBy != "L1" {
		t.Errorf("carried = %q", l.CarriedBy)
	}
	f := s.Depends[1].Conds.(Call)
	if f.Fn != "fused_dep" || len(f.Args) != 4 || len(f.Dir) != 1 || f.Dir[0] != dep.DirGT {
		t.Errorf("fused_dep = %+v", f)
	}
}

func TestDirVectorForms(t *testing.T) {
	src := `
TYPE
  Stmt: Sa, Sb;
PRECOND
  Code_Pattern
    any Sa;
  Depend
    any Sb: flow_dep(Sa, Sb, (*, <=, any, !=));
ACTION
  delete(Sb);
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	call := s.Depends[0].Conds.(Call)
	want := dep.Vector{dep.DirAny, dep.DirLT | dep.DirEQ, dep.DirAny, dep.DirLT | dep.DirGT}
	if len(call.Dir) != 4 {
		t.Fatalf("dir = %v", call.Dir)
	}
	for i := range want {
		if call.Dir[i] != want[i] {
			t.Errorf("dir[%d] = %v, want %v", i, call.Dir[i], want[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"missing type", "PRECOND Code_Pattern any Si; ACTION delete(Si);"},
		{"bad quant", "TYPE Stmt: S; PRECOND Code_Pattern some S; ACTION delete(S);"},
		{"pair for stmt", "TYPE Stmt: (A, B); PRECOND Code_Pattern any A; ACTION delete(A);"},
		{"single for pair", "TYPE Tight Loops: L; PRECOND Code_Pattern any L; ACTION delete(L);"},
		{"bad dir", "TYPE Stmt: A, B; PRECOND Code_Pattern any A; Depend any B: flow_dep(A, B, (#)); ACTION delete(A);"},
		{"bad action", "TYPE Stmt: A; PRECOND Code_Pattern any A; ACTION explode(A);"},
		{"unterminated forall", "TYPE Loop: L; PRECOND Code_Pattern any L; ACTION forall S in L.body do delete(S);"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"undeclared pattern elem",
			"TYPE Stmt: A; PRECOND Code_Pattern any B; ACTION delete(A);"},
		{"no in pattern",
			"TYPE Stmt: A; PRECOND Code_Pattern no A; ACTION delete(A);"},
		{"unbound in action",
			"TYPE Stmt: A; PRECOND Code_Pattern any A; ACTION delete(Z);"},
		{"bad attribute",
			"TYPE Stmt: A; PRECOND Code_Pattern any A: A.body == 1; ACTION delete(A);"},
		{"loop attr on stmt",
			"TYPE Stmt: A; PRECOND Code_Pattern any A: type(A.lcv) == var; ACTION delete(A);"},
		{"stmt attr on loop",
			"TYPE Loop: L; PRECOND Code_Pattern any L: type(L.opr_2) == const; ACTION delete(L.head);"},
		{"dup decl",
			"TYPE Stmt: A, A; PRECOND Code_Pattern any A; ACTION delete(A);"},
		{"no actions",
			"TYPE Stmt: A; PRECOND Code_Pattern any A; ACTION"},
		{"pos var leading",
			"TYPE Stmt: A; PRECOND Code_Pattern any A; Depend any (pos, B): flow_dep(A, A); ACTION delete(A);"},
		{"dup copy name",
			"TYPE Stmt: A; PRECOND Code_Pattern any A; ACTION copy(A, A, A);"},
		{"mem on non-set",
			"TYPE Stmt: A, B; PRECOND Code_Pattern any A; Depend any B: mem(B, A), flow_dep(A, B); ACTION delete(A);"},
		{"carried non-loop",
			"TYPE Stmt: A, B; PRECOND Code_Pattern any A; Depend any B: flow_dep(A, B, carried(A)); ACTION delete(A);"},
		{"unknown function",
			"TYPE Stmt: A; PRECOND Code_Pattern any A: frobnicate(A) == 1; ACTION delete(A);"},
		{"compare stmt with num",
			"TYPE Stmt: A; PRECOND Code_Pattern any A: A == 3; ACTION delete(A);"},
		{"clause without conditions is caught at parse or check",
			"TYPE Stmt: A, B; PRECOND Code_Pattern any A; Depend any B: ; ACTION delete(A);"},
	}
	for _, c := range cases {
		s, err := Parse(c.src)
		if err != nil {
			continue // parse error also acceptable for malformed inputs
		}
		if err := Check(s); err == nil {
			t.Errorf("%s: expected check error", c.name)
		}
	}
}

func TestCheckAcceptsAllQuantifierAndSets(t *testing.T) {
	src := `
TYPE
  Stmt: Si, Sj;
  Loop: L1;
PRECOND
  Code_Pattern
    any L1;
    any Si: Si.kind == assign;
  Depend
    all Sj: mem(Sj, L1), flow_dep(Si, Sj);
ACTION
  forall S in L1.body do
    delete(S);
  end
`
	if _, err := ParseAndCheck("T", src); err != nil {
		t.Fatal(err)
	}
}

func TestCheckPathInterUnion(t *testing.T) {
	src := `
TYPE
  Stmt: Si, Sj, Sk;
  Loop: L1, L2;
PRECOND
  Code_Pattern
    any L1;
    any L2;
    any Si;
    any Sj;
  Depend
    no Sk: mem(Sk, path(Si, Sj)) AND mem(Sk, inter(L1.body, L2.body)), anti_dep(Si, Sk);
ACTION
  delete(Si);
`
	if _, err := ParseAndCheck("T", src); err != nil {
		t.Fatal(err)
	}
}

func TestSpecHelpers(t *testing.T) {
	s, err := ParseAndCheck("INX", inxSpec)
	if err != nil {
		t.Fatal(err)
	}
	if k, ok := s.DeclKind("L1"); !ok || k != KTightLoops {
		t.Errorf("DeclKind(L1) = %v, %v", k, ok)
	}
	if _, ok := s.DeclKind("zzz"); ok {
		t.Error("DeclKind on unknown must fail")
	}
	pair, kind, ok := s.PairOf("L2")
	if !ok || kind != KTightLoops || pair.Names[0] != "L1" {
		t.Errorf("PairOf(L2) = %v %v %v", pair, kind, ok)
	}
	if _, _, ok := s.PairOf("Sm"); ok {
		t.Error("PairOf on a statement must fail")
	}
}

func TestExprStrings(t *testing.T) {
	s, err := Parse(ctpSpec)
	if err != nil {
		t.Fatal(err)
	}
	str := s.Depends[1].Conds.String()
	for _, want := range []string{"flow_dep", "Si != Sl", "pos2 == pos"} {
		if !strings.Contains(str, want) {
			t.Errorf("conds string %q missing %q", str, want)
		}
	}
	if (Not{E: Ident{Name: "x"}}).String() != "NOT(x)" {
		t.Error("Not string")
	}
}

func TestQuantAndKindStrings(t *testing.T) {
	if QAny.String() != "any" || QAll.String() != "all" || QNo.String() != "no" {
		t.Error("Quant strings")
	}
	if KTightLoops.String() != "Tight Loops" || KStmt.String() != "Stmt" {
		t.Error("ElemKind strings")
	}
	if !KAdjacentLoops.Pairwise() || KLoop.Pairwise() {
		t.Error("Pairwise")
	}
}
