package gospel

import (
	"fmt"

	"repro/dep"
)

// Parse parses a GOSpeL specification text into an AST. The result is not
// yet semantically checked; call Check.
func Parse(src string) (*Spec, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &specParser{toks: toks}
	return p.spec()
}

// ParseAndCheck parses and semantically checks a specification.
func ParseAndCheck(name, src string) (*Spec, error) {
	s, err := Parse(src)
	if err != nil {
		return nil, err
	}
	s.Name = name
	if err := Check(s); err != nil {
		return nil, err
	}
	return s, nil
}

type specParser struct {
	toks []Token
	pos  int
}

func (p *specParser) cur() Token  { return p.toks[p.pos] }
func (p *specParser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *specParser) errf(format string, args ...interface{}) error {
	return &Error{p.cur().Line, fmt.Sprintf(format, args...)}
}

func (p *specParser) atKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == TKeyword && t.Text == kw
}

func (p *specParser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errf("expected %s, found %s", kw, p.cur())
	}
	p.pos++
	return nil
}

func (p *specParser) atPunct(s string) bool {
	t := p.cur()
	return t.Kind == TPunct && t.Text == s
}

func (p *specParser) expectPunct(s string) error {
	if !p.atPunct(s) {
		return p.errf("expected %q, found %s", s, p.cur())
	}
	p.pos++
	return nil
}

func (p *specParser) atOp(s string) bool {
	t := p.cur()
	return t.Kind == TOp && t.Text == s
}

func (p *specParser) ident() (string, error) {
	t := p.cur()
	if t.Kind != TIdent {
		return "", p.errf("expected identifier, found %s", t)
	}
	p.pos++
	return t.Text, nil
}

func (p *specParser) spec() (*Spec, error) {
	s := &Spec{}
	if err := p.expectKeyword("type"); err != nil {
		return nil, err
	}
	for !p.atKeyword("precond") {
		td, err := p.typeDecl()
		if err != nil {
			return nil, err
		}
		s.Types = append(s.Types, td)
	}
	p.pos++ // PRECOND
	if err := p.expectKeyword("code_pattern"); err != nil {
		return nil, err
	}
	for !p.atKeyword("depend") && !p.atKeyword("action") {
		pc, err := p.patternClause()
		if err != nil {
			return nil, err
		}
		s.Patterns = append(s.Patterns, pc)
	}
	if p.atKeyword("depend") {
		p.pos++
		for !p.atKeyword("action") {
			dc, err := p.dependClause()
			if err != nil {
				return nil, err
			}
			s.Depends = append(s.Depends, dc)
		}
	}
	if err := p.expectKeyword("action"); err != nil {
		return nil, err
	}
	for p.cur().Kind != TEOF {
		a, err := p.parseAction()
		if err != nil {
			return nil, err
		}
		s.Actions = append(s.Actions, a)
	}
	return s, nil
}

func (p *specParser) typeDecl() (TypeDecl, error) {
	var td TypeDecl
	t := p.cur()
	if t.Kind != TKeyword {
		return td, p.errf("expected element type, found %s", t)
	}
	switch t.Text {
	case "stmt":
		td.Kind = KStmt
		p.pos++
	case "loop":
		td.Kind = KLoop
		p.pos++
	case "nested_loops":
		td.Kind = KNestedLoops
		p.pos++
	case "tight_loops":
		td.Kind = KTightLoops
		p.pos++
	case "adjacent_loops":
		td.Kind = KAdjacentLoops
		p.pos++
	case "nested", "tight", "adjacent":
		word := t.Text
		p.pos++
		if err := p.expectKeyword("loops"); err != nil {
			return td, err
		}
		switch word {
		case "nested":
			td.Kind = KNestedLoops
		case "tight":
			td.Kind = KTightLoops
		default:
			td.Kind = KAdjacentLoops
		}
	default:
		return td, p.errf("expected element type, found %s", t)
	}
	if err := p.expectPunct(":"); err != nil {
		return td, err
	}
	for {
		line := p.cur().Line
		var item TypeItem
		item.Line = line
		if p.atPunct("(") {
			if !td.Kind.Pairwise() {
				return td, p.errf("%s items are single identifiers", td.Kind)
			}
			p.pos++
			a, err := p.ident()
			if err != nil {
				return td, err
			}
			if err := p.expectPunct(","); err != nil {
				return td, err
			}
			b, err := p.ident()
			if err != nil {
				return td, err
			}
			if err := p.expectPunct(")"); err != nil {
				return td, err
			}
			item.Names = []string{a, b}
		} else {
			if td.Kind.Pairwise() {
				return td, p.errf("%s items must be (first, second) pairs", td.Kind)
			}
			name, err := p.ident()
			if err != nil {
				return td, err
			}
			item.Names = []string{name}
		}
		td.Items = append(td.Items, item)
		if p.atPunct(",") {
			p.pos++
			continue
		}
		break
	}
	return td, p.expectPunct(";")
}

func (p *specParser) quant() (Quant, error) {
	t := p.cur()
	if t.Kind == TKeyword {
		switch t.Text {
		case "any":
			p.pos++
			return QAny, nil
		case "all":
			p.pos++
			return QAll, nil
		case "no":
			p.pos++
			return QNo, nil
		}
	}
	return 0, p.errf("expected quantifier (any/all/no), found %s", t)
}

// elemList parses the element part of a pattern/depend clause:
// "Si", "(Sj, pos)", "Sm, Sn", or an attribute expression such as "L1.head"
// (which binds nothing). Returns the newly bound names.
func (p *specParser) elemList() ([]string, error) {
	var names []string
	parseOne := func() error {
		name, err := p.ident()
		if err != nil {
			return err
		}
		// An attribute chain (L1.head) re-references an existing binding
		// and introduces no name; skip the chain.
		if p.atPunct(".") {
			for p.atPunct(".") {
				p.pos++
				t := p.cur()
				if t.Kind != TIdent && t.Kind != TKeyword {
					return p.errf("expected attribute name after '.'")
				}
				p.pos++
			}
			return nil
		}
		names = append(names, name)
		return nil
	}
	if p.atPunct("(") {
		p.pos++
		for {
			if err := parseOne(); err != nil {
				return nil, err
			}
			if p.atPunct(",") {
				p.pos++
				continue
			}
			break
		}
		return names, p.expectPunct(")")
	}
	for {
		if err := parseOne(); err != nil {
			return nil, err
		}
		if p.atPunct(",") {
			p.pos++
			continue
		}
		break
	}
	return names, nil
}

func (p *specParser) patternClause() (PatternClause, error) {
	var pc PatternClause
	pc.Line = p.cur().Line
	q, err := p.quant()
	if err != nil {
		return pc, err
	}
	pc.Quant = q
	pc.Elems, err = p.elemList()
	if err != nil {
		return pc, err
	}
	if p.atPunct(":") {
		p.pos++
		pc.Format, err = p.orExpr()
		if err != nil {
			return pc, err
		}
	}
	return pc, p.expectPunct(";")
}

func (p *specParser) dependClause() (DependClause, error) {
	var dc DependClause
	dc.Line = p.cur().Line
	q, err := p.quant()
	if err != nil {
		return dc, err
	}
	dc.Quant = q
	dc.Elems, err = p.elemList()
	if err != nil {
		return dc, err
	}
	if err := p.expectPunct(":"); err != nil {
		return dc, err
	}
	first, err := p.orExpr()
	if err != nil {
		return dc, err
	}
	if p.atPunct(",") {
		p.pos++
		dc.Sets = first
		dc.Conds, err = p.orExpr()
		if err != nil {
			return dc, err
		}
	} else if isMembershipExpr(first) {
		dc.Sets = first
	} else {
		dc.Conds = first
	}
	return dc, p.expectPunct(";")
}

// isMembershipExpr reports whether e consists solely of mem/nmem predicates
// combined with and/or (the sets_of_elements part of the BNF).
func isMembershipExpr(e Expr) bool {
	switch e := e.(type) {
	case Call:
		return e.Fn == "mem" || e.Fn == "nmem"
	case Binary:
		if e.Op == "and" || e.Op == "or" {
			return isMembershipExpr(e.L) && isMembershipExpr(e.R)
		}
	}
	return false
}

func (p *specParser) parseAction() (Action, error) {
	t := p.cur()
	if t.Kind != TKeyword {
		return nil, p.errf("expected action, found %s", t)
	}
	switch t.Text {
	case "delete":
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		target, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return DeleteAction{Target: target, Line: t.Line}, p.expectPunct(";")
	case "move":
		p.pos++
		args, err := p.actionArgs(2)
		if err != nil {
			return nil, err
		}
		return MoveAction{Src: args[0], After: args[1], Line: t.Line}, p.expectPunct(";")
	case "copy":
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		src, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		after, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return CopyAction{Src: src, After: after, Name: name, Line: t.Line}, p.expectPunct(";")
	case "add":
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		after, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		desc, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return AddAction{After: after, Desc: desc, Name: name, Line: t.Line}, p.expectPunct(";")
	case "modify":
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		target, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		val, err := p.valueExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return ModifyAction{Target: target, Value: val, Line: t.Line}, p.expectPunct(";")
	case "forall":
		p.pos++
		v, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("in"); err != nil {
			return nil, err
		}
		set, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("do"); err != nil {
			return nil, err
		}
		var body []Action
		for !p.atKeyword("end") {
			a, err := p.parseAction()
			if err != nil {
				return nil, err
			}
			body = append(body, a)
		}
		p.pos++ // end
		if p.atPunct(";") {
			p.pos++
		}
		return ForallAction{Var: v, Set: set, Body: body, Line: t.Line}, nil
	}
	return nil, p.errf("unknown action %s", t)
}

func (p *specParser) actionArgs(n int) ([]Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []Expr
	for i := 0; i < n; i++ {
		if i > 0 {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
	}
	return args, p.expectPunct(")")
}

// --- expression grammar ---

func (p *specParser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("or") {
		line := p.next().Line
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "or", L: l, R: r, Line: line}
	}
	return l, nil
}

func (p *specParser) andExpr() (Expr, error) {
	l, err := p.relExpr()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("and") {
		line := p.next().Line
		r, err := p.relExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "and", L: l, R: r, Line: line}
	}
	return l, nil
}

var relops = map[string]bool{"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *specParser) relExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TOp && relops[t.Text] {
		p.pos++
		r, err := p.valueAddExpr()
		if err != nil {
			return nil, err
		}
		return Binary{Op: t.Text, L: l, R: r, Line: t.Line}, nil
	}
	return l, nil
}

// valueAddExpr is addExpr but permitting a bare keyword literal (assign,
// add, do, end, mod, ...) as a value — the right-hand side of comparisons
// like "Si.opc == add" or "Si.kind == do".
func (p *specParser) valueAddExpr() (Expr, error) {
	t := p.cur()
	if t.Kind == TKeyword && !isExprKeyword(t.Text) {
		p.pos++
		return Lit{Name: t.Text, Line: t.Line}, nil
	}
	return p.addExpr()
}

// valueExpr is the value argument of modify: an expression or a keyword
// literal.
func (p *specParser) valueExpr() (Expr, error) {
	t := p.cur()
	if t.Kind == TKeyword && !isExprKeyword(t.Text) {
		p.pos++
		return Lit{Name: t.Text, Line: t.Line}, nil
	}
	return p.orExpr()
}

// isExprKeyword lists keywords that begin expressions and therefore cannot
// be taken as bare literals in value position.
func isExprKeyword(kw string) bool {
	switch kw {
	case "mem", "nmem", "path", "inter", "union", "operand", "eval",
		"subst", "trip", "not",
		"flow_dep", "anti_dep", "out_dep", "ctrl_dep", "fused_dep":
		return true
	}
	return false
}

func (p *specParser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.atOp("+") || p.atOp("-") {
		t := p.next()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: t.Text, L: l, R: r, Line: t.Line}
	}
	return l, nil
}

func (p *specParser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.atOp("*") || p.atOp("/") || p.atKeyword("mod") {
		t := p.next()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: t.Text, L: l, R: r, Line: t.Line}
	}
	return l, nil
}

func (p *specParser) unary() (Expr, error) {
	if p.atOp("-") {
		t := p.next()
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Binary{Op: "-", L: Num{Text: "0", Line: t.Line}, R: e, Line: t.Line}, nil
	}
	if p.atKeyword("not") {
		t := p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return Not{E: e, Line: t.Line}, nil
	}
	return p.primary()
}

var depPreds = map[string]bool{
	"flow_dep": true, "anti_dep": true, "out_dep": true, "ctrl_dep": true,
	"fused_dep": true,
}

var callKeywords = map[string]bool{
	"mem": true, "nmem": true, "path": true, "inter": true, "union": true,
	"operand": true, "eval": true, "subst": true, "trip": true,
}

func (p *specParser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TNum:
		p.pos++
		return Num{Text: t.Text, Line: t.Line}, nil
	case t.Kind == TPunct && t.Text == "(":
		p.pos++
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return p.postfix(e)
	case t.Kind == TKeyword && depPreds[t.Text]:
		return p.depPred()
	case t.Kind == TKeyword && callKeywords[t.Text]:
		p.pos++
		args, err := p.callArgs()
		if err != nil {
			return nil, err
		}
		return Call{Fn: t.Text, Args: args, Line: t.Line}, nil
	case t.Kind == TIdent:
		p.pos++
		// "type(...)": type is a section keyword but also the operand-type
		// function; the lexer classifies it as a keyword, so it is handled
		// below. A plain identifier may be a call-less name or a call to a
		// user-visible helper.
		if p.atPunct("(") {
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			return p.postfix(Call{Fn: t.Text, Args: args, Line: t.Line})
		}
		return p.postfix(Ident{Name: t.Text, Line: t.Line})
	case t.Kind == TKeyword && t.Text == "type":
		p.pos++
		args, err := p.callArgs()
		if err != nil {
			return nil, err
		}
		return Call{Fn: "type", Args: args, Line: t.Line}, nil
	}
	return nil, p.errf("unexpected token %s in expression", t)
}

func (p *specParser) postfix(e Expr) (Expr, error) {
	for p.atPunct(".") {
		p.pos++
		t := p.cur()
		if t.Kind != TIdent && t.Kind != TKeyword {
			return nil, p.errf("expected attribute name after '.', found %s", t)
		}
		p.pos++
		e = Attr{Base: e, Name: t.Text, Line: t.Line}
	}
	return e, nil
}

func (p *specParser) callArgs() ([]Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []Expr
	if !p.atPunct(")") {
		for {
			e, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, e)
			if p.atPunct(",") {
				p.pos++
				continue
			}
			break
		}
	}
	return args, p.expectPunct(")")
}

// depPred parses a dependence predicate with an optional direction vector
// or carried(L) qualifier as its final argument.
func (p *specParser) depPred() (Expr, error) {
	t := p.next() // the predicate keyword
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []Expr
	var dir dep.Vector
	carriedBy := ""
	independent := false
	for {
		if p.atPunct("(") {
			// A parenthesized argument in a dependence predicate is a
			// direction vector literal.
			v, err := p.dirVector()
			if err != nil {
				return nil, err
			}
			dir = v
			break
		}
		if p.atKeyword("independent") {
			p.pos++
			independent = true
			break
		}
		if p.atKeyword("carried") {
			p.pos++
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			carriedBy = name
			break
		}
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if p.atPunct(",") {
			p.pos++
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return Call{Fn: t.Text, Args: args, Dir: dir, CarriedBy: carriedBy,
		Independent: independent, Line: t.Line}, nil
}

func (p *specParser) dirVector() (dep.Vector, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var v dep.Vector
	for {
		t := p.cur()
		var d dep.DirSet
		switch {
		case t.Kind == TOp && t.Text == "<":
			d = dep.DirLT
		case t.Kind == TOp && t.Text == ">":
			d = dep.DirGT
		case t.Kind == TOp && t.Text == "=":
			d = dep.DirEQ
		case t.Kind == TOp && t.Text == "<=":
			d = dep.DirLT | dep.DirEQ
		case t.Kind == TOp && t.Text == ">=":
			d = dep.DirGT | dep.DirEQ
		case t.Kind == TOp && t.Text == "*":
			d = dep.DirAny
		case t.Kind == TOp && t.Text == "!=":
			d = dep.DirLT | dep.DirGT
		case t.Kind == TKeyword && t.Text == "any":
			d = dep.DirAny
		default:
			return nil, p.errf("expected direction (<, >, =, *, any), found %s", t)
		}
		p.pos++
		v = append(v, d)
		if p.atPunct(",") {
			p.pos++
			continue
		}
		break
	}
	return v, p.expectPunct(")")
}
