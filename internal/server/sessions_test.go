package server

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestSessionLifecycle walks the constructor workflow end to end: create,
// census points, skip one, apply one, applyall the rest, toggle
// recomputation, fetch the result, delete.
func TestSessionLifecycle(t *testing.T) {
	s := newTestServer(t, Config{})

	// Create.
	rec := doJSON(t, s, "POST", "/v1/session", SessionCreateRequest{Source: deadSrc})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create = %d: %s", rec.Code, rec.Body.String())
	}
	info := decodeAs[SessionInfo](t, rec)
	if info.ID == "" || info.Statements == 0 || !info.Recompute {
		t.Fatalf("bad session info: %+v", info)
	}
	base := "/v1/session/" + info.ID

	// Candidate points for DCE: the three dead assignments.
	pts := decodeAs[SessionPointsResponse](t, doJSON(t, s, "GET", base+"/points?opt=dce", nil))
	if len(pts.Points) != 3 {
		t.Fatalf("DCE points = %d, want 3: %+v", len(pts.Points), pts)
	}
	if pts.Opt != "DCE" {
		t.Errorf("opt echoed as %q, want DCE", pts.Opt)
	}

	// Skip the first point (the a = 1 assignment).
	skipped := decodeAs[SessionApplyResponse](t, doJSON(t, s, "POST", base+"/skip",
		SessionApplyRequest{Opt: "DCE", Point: 1}))
	if !skipped.Skipped || skipped.Signature != pts.Points[0].Signature {
		t.Fatalf("skip = %+v", skipped)
	}
	pts = decodeAs[SessionPointsResponse](t, doJSON(t, s, "GET", base+"/points?opt=DCE", nil))
	if !pts.Points[0].Skipped {
		t.Error("points listing does not show the skip")
	}

	// Apply the first eligible (non-skipped) point.
	applied := decodeAs[SessionApplyResponse](t, doJSON(t, s, "POST", base+"/apply",
		SessionApplyRequest{Opt: "DCE"}))
	if !applied.Applied || applied.Signature == skipped.Signature {
		t.Fatalf("apply = %+v", applied)
	}

	// Toggle recomputation off and back on (the paper's constructor choice).
	tog := decodeAs[map[string]bool](t, doJSON(t, s, "POST", base+"/recompute",
		SessionRecomputeRequest{Enabled: false}))
	if tog["recompute"] {
		t.Error("recompute did not toggle off")
	}
	doJSON(t, s, "POST", base+"/recompute", SessionRecomputeRequest{Enabled: true})

	// Fixpoint over the remaining points honours the skip.
	all := decodeAs[SessionApplyAllResponse](t, doJSON(t, s, "POST", base+"/applyall",
		SessionApplyRequest{Opt: "DCE"}))
	if all.Applications != 1 {
		t.Fatalf("applyall = %d applications, want 1 (one applied, one skipped)", all.Applications)
	}

	// Result: the skipped assignment survives, the other two are gone.
	res := decodeAs[SessionResultResponse](t, doJSON(t, s, "GET", base+"/result", nil))
	if !strings.Contains(res.MiniF, "a = 1") {
		t.Errorf("skipped statement was deleted:\n%s", res.MiniF)
	}
	if strings.Contains(res.MiniF, "b = 2") || strings.Contains(res.MiniF, "c = 3") {
		t.Errorf("dead statements survived applyall:\n%s", res.MiniF)
	}
	if len(res.Applications) != 2 {
		t.Errorf("result lists %d applications, want 2", len(res.Applications))
	}

	// Session info reflects the work; delete ends it.
	got := decodeAs[SessionInfo](t, doJSON(t, s, "GET", base, nil))
	if len(got.Applications) != 2 {
		t.Errorf("info lists %d applications, want 2", len(got.Applications))
	}
	if rec := doJSON(t, s, "DELETE", base, nil); rec.Code != http.StatusNoContent {
		t.Fatalf("delete = %d, want 204", rec.Code)
	}
	if rec := doJSON(t, s, "GET", base, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("get after delete = %d, want 404", rec.Code)
	}
	if active := s.Metrics().SessionsActive.Load(); active != 0 {
		t.Errorf("SessionsActive = %d, want 0", active)
	}
}

// TestSessionOverride: pattern-only points ignore Depend clauses, letting
// the user apply where dependences forbid — CTP's pattern matches any
// constant scalar definition, with or without a reachable use.
func TestSessionOverride(t *testing.T) {
	s := newTestServer(t, Config{})
	info := decodeAs[SessionInfo](t, doJSON(t, s, "POST", "/v1/session",
		SessionCreateRequest{Source: deadSrc}))
	base := "/v1/session/" + info.ID

	full := decodeAs[SessionPointsResponse](t, doJSON(t, s, "GET", base+"/points?opt=CTP", nil))
	over := decodeAs[SessionPointsResponse](t, doJSON(t, s, "GET", base+"/points?opt=CTP&override=1", nil))
	if !over.Override {
		t.Error("override flag not echoed")
	}
	if len(over.Points) <= len(full.Points) {
		t.Errorf("pattern-only points = %d, full = %d; want strictly more here (a,b,c have no uses)",
			len(over.Points), len(full.Points))
	}
}

func TestSessionValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	if rec := doJSON(t, s, "POST", "/v1/session", SessionCreateRequest{}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty create = %d, want 400", rec.Code)
	}
	if rec := doJSON(t, s, "GET", "/v1/session/nope", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown session = %d, want 404", rec.Code)
	}
	info := decodeAs[SessionInfo](t, doJSON(t, s, "POST", "/v1/session",
		SessionCreateRequest{Source: deadSrc}))
	base := "/v1/session/" + info.ID
	if rec := doJSON(t, s, "GET", base+"/points", nil); rec.Code != http.StatusBadRequest {
		t.Errorf("points without opt = %d, want 400", rec.Code)
	}
	if rec := doJSON(t, s, "POST", base+"/apply",
		SessionApplyRequest{Opt: "DCE", Point: 9}); rec.Code != http.StatusConflict {
		t.Errorf("apply at missing point = %d, want 409", rec.Code)
	}
	if rec := doJSON(t, s, "POST", base+"/apply",
		SessionApplyRequest{Opt: "NOPE"}); rec.Code != http.StatusBadRequest {
		t.Errorf("apply unknown opt = %d, want 400", rec.Code)
	}
}

// TestSessionTTLAndLimit: idle sessions expire; the store bounds its count.
func TestSessionTTLAndLimit(t *testing.T) {
	s := newTestServer(t, Config{MaxSessions: 2, SessionTTL: 30 * time.Millisecond})
	a := decodeAs[SessionInfo](t, doJSON(t, s, "POST", "/v1/session", SessionCreateRequest{Source: deadSrc}))
	decodeAs[SessionInfo](t, doJSON(t, s, "POST", "/v1/session", SessionCreateRequest{Source: deadSrc}))
	if rec := doJSON(t, s, "POST", "/v1/session", SessionCreateRequest{Source: deadSrc}); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("create over limit = %d, want 503", rec.Code)
	}
	time.Sleep(50 * time.Millisecond)
	// Creation evicts the expired pair, making room again.
	if rec := doJSON(t, s, "POST", "/v1/session", SessionCreateRequest{Source: deadSrc}); rec.Code != http.StatusCreated {
		t.Fatalf("create after TTL = %d, want 201", rec.Code)
	}
	if rec := doJSON(t, s, "GET", "/v1/session/"+a.ID, nil); rec.Code != http.StatusNotFound {
		t.Errorf("expired session still served: %d", rec.Code)
	}
	if evicted := s.Metrics().SessionsEvicted.Load(); evicted < 2 {
		t.Errorf("SessionsEvicted = %d, want >= 2", evicted)
	}
}
