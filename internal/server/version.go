package server

import (
	"net/http"
	"runtime"
	"runtime/debug"

	"repro/internal/cluster"
	"repro/internal/codegen"
)

// VersionResponse is the GET /v1/version body: enough identity to tell
// which build and configuration answered — the same facts the
// optd_build_info gauge exposes, in queryable form.
type VersionResponse struct {
	Service string `json:"service"`
	// Module is the main module's version as stamped by the Go toolchain
	// ("(devel)" for a plain source build).
	Module string `json:"module"`
	// Go is the toolchain that built the binary.
	Go string `json:"go"`
	// CodegenVersion is the compiled-optimizer ABI version baked into native
	// artifact cache keys.
	CodegenVersion string `json:"codegen_version"`
	// VNodes is the consistent-hash ring's virtual-node count per member.
	VNodes int `json:"vnodes"`
	// Engine is the configured execution engine (interp, auto, compiled).
	Engine string `json:"engine"`
	// Node is the cluster advertise address; empty on a single node.
	Node string `json:"node,omitempty"`
}

func moduleVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "(devel)"
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) error {
	engine := s.cfg.Engine
	if engine == "" {
		engine = EngineInterp
	}
	v := VersionResponse{
		Service:        "optd",
		Module:         moduleVersion(),
		Go:             runtime.Version(),
		CodegenVersion: codegen.Version,
		VNodes:         cluster.DefaultVNodes,
		Engine:         engine,
	}
	if s.cluster != nil {
		v.Node = s.cluster.Self()
	}
	writeJSON(w, http.StatusOK, v)
	return nil
}
