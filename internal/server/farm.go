package server

// The fuzzing-farm surface: POST /v1/farm starts a differential-testing
// campaign whose corpus seeds run as low-priority idempotent batch jobs on
// this node's job queue. A campaign is content-addressed — profile, count,
// base seed, pass order and inline specs hash to its ID — so resubmitting
// the same campaign anywhere in a cluster routes to one owner (the same
// consistent-hash routing POST /v1/jobs uses) and dedups onto the jobs
// already queued there. Findings persist in a CRC-framed log under
// Config.FarmDir and survive restarts alongside the job WAL: a crashed
// campaign's unprocessed seeds are requeued by WAL replay, and the first
// recovered job re-registers the campaign from its payload.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/farm"
	"repro/internal/frontend"
	"repro/internal/jobs"
	"repro/internal/specs"
	"repro/internal/trace"
	"repro/ir"
	"repro/optlib"
)

// maxFarmCount bounds one campaign's corpus; larger sweeps are expected to
// be submitted as several campaigns with consecutive base seeds.
const maxFarmCount = 100000

// farmState is the server's farm subsystem: the durable finding store, the
// campaign table, and the per-campaign memoized checkers (rebuilt lazily
// from job payloads after a restart).
type farmState struct {
	store *farm.Store
	mgr   *farm.Manager

	mu       sync.Mutex
	checkers map[string]*farm.Checker
}

func newFarmState(dir string) (*farmState, error) {
	st, err := farm.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	return &farmState{store: st, mgr: farm.NewManager(), checkers: map[string]*farm.Checker{}}, nil
}

func (f *farmState) close() error {
	if f == nil {
		return nil
	}
	return f.store.Close()
}

// FarmStartRequest is the body of POST /v1/farm.
type FarmStartRequest struct {
	// Profile selects the corpus statement mix; empty selects "default".
	Profile string `json:"profile,omitempty"`
	// Count is the number of corpus programs to sweep (1..100000).
	Count int `json:"count"`
	// Seed is the base seed; program i is generated from Seed+i.
	Seed int64 `json:"seed,omitempty"`
	// MaxStmts caps generated program size; 0 selects the proggen default.
	MaxStmts int `json:"max_stmts,omitempty"`
	// Opts names built-in passes forming the pipeline under test. Empty
	// with no Specs selects the farm default order (every built-in pass).
	Opts []string `json:"opts,omitempty"`
	// Specs are inline GOSpeL specifications appended to the pipeline —
	// the seeded-miscompile path: inject a spec and check the farm catches
	// it. With empty Opts the pipeline is exactly the inline specs.
	Specs []SpecText `json:"specs,omitempty"`
}

// FarmStartResponse is the body of a 202 from POST /v1/farm.
type FarmStartResponse struct {
	farm.CampaignStatus
	// Order is the effective pass order under differential test.
	Order []string `json:"order"`
	// Variants names the engine×order configurations in the matrix.
	Variants []string `json:"variants"`
	// Jobs is the number of seed jobs newly queued (0 on resubmission).
	Jobs int `json:"jobs"`
}

// farmJobSpec is the farm job payload: everything needed to re-register
// the campaign and rebuild its checker after a crash, plus this job's
// seed. The top-level "farm" key is the payload discriminator that routes
// a job attempt to the farm runner instead of the optimize pipeline.
type farmJobSpec struct {
	Campaign string     `json:"campaign"`
	Profile  string     `json:"profile"`
	Seed     int64      `json:"seed"`
	BaseSeed int64      `json:"base_seed"`
	Count    int        `json:"count"`
	MaxStmts int        `json:"max_stmts,omitempty"`
	Order    []string   `json:"order"`
	Specs    []SpecText `json:"specs,omitempty"`
	// Auto adds an advisor-ordered variant; Compiled adds the
	// native-artifact engine variant. Both are resolved at submission so
	// every job of a campaign runs the same matrix.
	Auto     bool `json:"auto,omitempty"`
	Compiled bool `json:"compiled,omitempty"`
}

// farmPlan validates a start request and resolves everything that shapes
// the campaign: canonical pass order, campaign ID and the job spec
// template. Both the handler and the cluster route key derive from it, so
// submission and routing always agree on the owner.
func (s *Server) farmPlan(req *FarmStartRequest) (*farmJobSpec, error) {
	if req.Profile == "" {
		req.Profile = "default"
	}
	if _, ok := farm.Profiles[req.Profile]; !ok {
		return nil, failf(http.StatusBadRequest, "bad_request",
			"unknown profile %q (have %s)", req.Profile, strings.Join(farm.ProfileNames(), ", "))
	}
	if req.Count < 1 || req.Count > maxFarmCount {
		return nil, failf(http.StatusBadRequest, "bad_request",
			"count must be in 1..%d", maxFarmCount)
	}
	names, err := canonOpts(req.Opts)
	if err != nil {
		return nil, err
	}
	order := names
	if len(order) == 0 && len(req.Specs) == 0 {
		order = farm.DefaultOrder()
	}
	specList := make([]SpecText, 0, len(req.Specs))
	for _, st := range req.Specs {
		name := strings.ToUpper(strings.TrimSpace(st.Name))
		if name == "" {
			return nil, failf(http.StatusBadRequest, "spec_error", "inline spec needs a name")
		}
		specList = append(specList, SpecText{Name: name, Text: st.Text})
		order = append(order, name)
	}
	spec := &farmJobSpec{
		Profile:  req.Profile,
		BaseSeed: req.Seed,
		Count:    req.Count,
		MaxStmts: req.MaxStmts,
		Order:    order,
		Specs:    specList,
		// The advisor variant only makes sense against built-in history;
		// the compiled variant only when an artifact covering the order is
		// already loaded (campaigns never wait for a toolchain build).
		Auto: len(specList) == 0,
	}
	if s.native != nil && len(specList) == 0 {
		if art, loaded := s.native.cache.Lookup(s.native.builtin); loaded && art.Covers(order) {
			spec.Compiled = true
		}
	}
	parts := []string{"farm/v1", spec.Profile,
		fmt.Sprint(spec.Count), fmt.Sprint(spec.BaseSeed), fmt.Sprint(spec.MaxStmts),
		strings.Join(spec.Order, ","), fmt.Sprint(spec.Auto), fmt.Sprint(spec.Compiled)}
	for _, st := range specList {
		parts = append(parts, st.Name, st.Text)
	}
	spec.Campaign = "f" + jobIDForKey(CacheKey(parts...))
	return spec, nil
}

// farmRouteKey routes POST /v1/farm by the campaign's content address, so
// a campaign (and the seed jobs it spawns) lives on exactly one node.
func (s *Server) farmRouteKey(raw []byte) (string, bool) {
	var req FarmStartRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return "", false
	}
	spec, err := s.farmPlan(&req)
	if err != nil {
		return "", false
	}
	return spec.Campaign, true
}

// campaignConfig derives the farm-package campaign config from a job spec.
func (spec *farmJobSpec) campaignConfig() farm.CampaignConfig {
	return farm.CampaignConfig{
		Profile: spec.Profile, Count: spec.Count,
		Seed: spec.BaseSeed, MaxStmts: spec.MaxStmts,
	}
}

// farmChecker returns the campaign's differential checker, building (and
// memoizing) it from the job spec when this node has not seen the campaign
// yet — fresh submission and post-crash WAL replay share this path.
func (s *Server) farmChecker(spec *farmJobSpec) (*farm.Checker, error) {
	s.farm.mu.Lock()
	if ch, ok := s.farm.checkers[spec.Campaign]; ok {
		s.farm.mu.Unlock()
		return ch, nil
	}
	s.farm.mu.Unlock()

	sources := make(map[string]string, len(specs.Sources)+len(spec.Specs))
	for n, src := range specs.Sources {
		sources[n] = src
	}
	for _, st := range spec.Specs {
		if prev, exists := sources[st.Name]; exists && prev != st.Text {
			return nil, fmt.Errorf("spec %s collides with an existing spec of the same name", st.Name)
		}
		sources[st.Name] = st.Text
	}
	variants := farm.DefaultVariants()
	var pipelines map[string]farm.PipelineFunc
	var autoOrder func(string) []string
	if spec.Auto {
		variants = append(variants, farm.Variant{Name: "interp:auto", Engine: farm.EngineInterp, Auto: true})
		order := spec.Order
		autoOrder = func(source string) []string {
			d, dur, err := s.advisor.Choose(source, order)
			s.metrics.AdvisorRetrieval.Observe(dur)
			if err != nil || d.Fallback {
				return nil // abstain: the variant runs the default order
			}
			return d.Order
		}
	}
	if spec.Compiled && s.native != nil {
		variants = append(variants, farm.Variant{Name: "compiled:default", Engine: "compiled"})
		pipelines = map[string]farm.PipelineFunc{"compiled": s.farmCompiledPipeline}
	}
	ch, err := farm.NewChecker(farm.Config{
		Sources:       sources,
		Order:         spec.Order,
		Variants:      variants,
		MaxIterations: s.cfg.MaxIterations,
		AutoOrder:     autoOrder,
		Pipelines:     pipelines,
	})
	if err != nil {
		return nil, err
	}
	s.farm.mu.Lock()
	if prev, ok := s.farm.checkers[spec.Campaign]; ok {
		ch = prev // a concurrent job won the build race; keep one
	} else {
		s.farm.checkers[spec.Campaign] = ch
	}
	s.farm.mu.Unlock()
	return ch, nil
}

// farmCompiledPipeline is the compiled-engine leg of the differential
// matrix: the same native-artifact path /v1/optimize serves from, exposed
// as a farm PipelineFunc. Census semantics match the interpreted leg
// exactly — each pass runs once to fixpoint, in order — so the two engines
// must agree application-for-application.
func (s *Server) farmCompiledPipeline(ctx context.Context, source string, order []string, maxIter int) (*ir.Program, map[string]int, error) {
	art, loaded := s.native.cache.Lookup(s.native.builtin)
	if !loaded || !art.Covers(order) {
		return nil, nil, errors.New("no loaded native artifact covers the campaign order")
	}
	if maxIter <= 0 {
		maxIter = s.cfg.MaxIterations
	}
	census := make(map[string]int, len(order))
	if art.InProcess() {
		prog, err := frontend.Parse(source)
		if err != nil {
			return nil, nil, err
		}
		passes := make([]optlib.NamedApply, len(order))
		for i, name := range order {
			fn, _ := art.Func(name) // Covers checked above
			passes[i] = optlib.NamedApply{Name: name, Apply: fn}
		}
		counts, err := optlib.PipelineCtx(ctx, prog, passes, optlib.Limits{MaxIterations: maxIter})
		for _, ct := range counts {
			census[ct.Name] += ct.Applications
		}
		if err != nil {
			return nil, nil, err
		}
		return prog, census, nil
	}
	res, err := art.RunPipeline(ctx, source, order, maxIter)
	if err != nil {
		return nil, nil, err
	}
	if perr := res.PipelineError(); perr != nil {
		return nil, nil, perr
	}
	for _, ct := range res.Passes {
		census[ct.Name] += ct.Applications
	}
	prog, err := frontend.Parse(res.MiniF)
	if err != nil {
		return nil, nil, fmt.Errorf("reparsing compiled output: %w", err)
	}
	return prog, census, nil
}

// farmHooks wires campaign execution into the metric set.
func (s *Server) farmHooks() farm.Hooks {
	return farm.Hooks{
		Program:   func() { s.metrics.FarmPrograms.Add(1) },
		Divergent: func() { s.metrics.FarmDivergent.Add(1) },
		Errored:   func() { s.metrics.FarmErrored.Add(1) },
		Finding:   func(farm.Finding) { s.metrics.FarmFindings.Add(1) },
		Minimized: func(d time.Duration) { s.metrics.FarmMinimizeSeconds.Observe(d) },
	}
}

// variantNames renders the checker's matrix for status responses.
func variantNames(ch *farm.Checker) []string {
	vs := ch.Variants()
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = v.Name
	}
	return names
}

func (s *Server) handleFarmStart(w http.ResponseWriter, r *http.Request) error {
	var req FarmStartRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	spec, err := s.farmPlan(&req)
	if err != nil {
		return err
	}
	// Build the checker before any job is queued: a bad inline spec fails
	// synchronously here (422), never as a mid-campaign error storm.
	ch, err := s.farmChecker(spec)
	if err != nil {
		return failf(http.StatusUnprocessableEntity, "spec_error", "%v", err)
	}
	camp, err := s.farm.mgr.Ensure(spec.Campaign, spec.campaignConfig())
	if err != nil {
		return failf(http.StatusBadRequest, "bad_request", "%v", err)
	}
	s.metrics.farmOn.Store(true)

	// One low-priority job per seed, content-addressed on (campaign, seed)
	// so a resubmitted campaign dedups onto the queue it already has. The
	// request's trace context rides in every job, so each seed's job.run
	// fragment joins this campaign-start trace.
	traceID := trace.FragmentFrom(r.Context()).TraceID()
	traceParent := trace.Traceparent(r.Context())
	queued := 0
	for i := 0; i < spec.Count; i++ {
		js := *spec
		js.Seed = spec.BaseSeed + int64(i)
		payload, merr := json.Marshal(struct {
			Farm *farmJobSpec `json:"farm"`
		}{&js})
		if merr != nil {
			return failf(http.StatusInternalServerError, "internal", "unencodable farm payload: %v", merr)
		}
		key := CacheKey("farmjob/v1", spec.Campaign, fmt.Sprint(js.Seed))
		_, existing, serr := s.jobs.Submit(jobs.SubmitRequest{
			ID:          jobIDForKey(key),
			Key:         key,
			Payload:     payload,
			Priority:    jobs.PriorityLow,
			TraceID:     traceID,
			TraceParent: traceParent,
		})
		switch {
		case errors.Is(serr, jobs.ErrClosed):
			w.Header().Set("Retry-After", "5")
			return failf(http.StatusServiceUnavailable, "draining", "job queue is shutting down")
		case serr != nil:
			// Resubmitting the identical campaign re-queues whatever is
			// missing — submission is idempotent end to end.
			return failf(http.StatusInternalServerError, "jobs_wal",
				"queued %d/%d seed jobs: %v", queued, spec.Count, serr)
		case !existing:
			queued++
		}
	}
	resp := FarmStartResponse{
		CampaignStatus: camp.Status(),
		Order:          spec.Order,
		Variants:       variantNames(ch),
		Jobs:           queued,
	}
	w.Header().Set("Location", "/v1/farm/"+spec.Campaign)
	writeJSON(w, http.StatusAccepted, resp)
	return nil
}

// FarmListResponse is the body of GET /v1/farm.
type FarmListResponse struct {
	Campaigns []farm.CampaignStatus `json:"campaigns"`
	// Findings is the total finding count across all campaigns on this node.
	Findings int `json:"findings"`
}

func (s *Server) handleFarmList(w http.ResponseWriter, r *http.Request) error {
	writeJSON(w, http.StatusOK, FarmListResponse{
		Campaigns: s.farm.mgr.List(),
		Findings:  s.farm.store.Len(),
	})
	return nil
}

func (s *Server) handleFarmGet(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	if s.redirectFarm(w, r, id) {
		return nil
	}
	camp, ok := s.farm.mgr.Get(id)
	if !ok {
		return failf(http.StatusNotFound, "no_campaign", "no campaign %q", id)
	}
	// ?wait=1 long-polls until the campaign finishes or the request
	// deadline hits, then reports whatever state it is in.
	if r.URL.Query().Get("wait") == "1" {
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for !camp.Done() {
			select {
			case <-r.Context().Done():
				writeJSON(w, http.StatusOK, camp.Status())
				return nil
			case <-tick.C:
			}
		}
	}
	writeJSON(w, http.StatusOK, camp.Status())
	return nil
}

// FarmFindingsResponse is the body of GET /v1/farm/{id}/findings.
type FarmFindingsResponse struct {
	Findings []farm.Finding `json:"findings"`
}

func (s *Server) handleFarmFindings(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	if s.redirectFarm(w, r, id) {
		return nil
	}
	if _, ok := s.farm.mgr.Get(id); !ok {
		// Findings outlive the in-memory campaign table (they replay from
		// the log on restart); serve them if any exist under this ID.
		if got := s.farm.store.List(id); len(got) > 0 {
			writeJSON(w, http.StatusOK, FarmFindingsResponse{Findings: got})
			return nil
		}
		return failf(http.StatusNotFound, "no_campaign", "no campaign %q", id)
	}
	got := s.farm.store.List(id)
	if got == nil {
		got = []farm.Finding{}
	}
	writeJSON(w, http.StatusOK, FarmFindingsResponse{Findings: got})
	return nil
}

// redirectFarm answers a campaign-status route with a one-hop 307 to the
// campaign's owner when it lives elsewhere — the farm analogue of
// redirectJob: campaigns present locally are served locally, whatever the
// ring says.
func (s *Server) redirectFarm(w http.ResponseWriter, r *http.Request, id string) bool {
	if s.cluster == nil {
		return false
	}
	if _, ok := s.farm.mgr.Get(id); ok {
		return false
	}
	if r.Header.Get(ForwardedByHeader) != "" || r.URL.Query().Get(redirectedParam) == "1" {
		return false
	}
	rt := s.cluster.Route(id)
	if rt.Local || !s.cluster.Up(rt.Owner) {
		return false
	}
	q := r.URL.Query()
	q.Set(redirectedParam, "1")
	loc := url.URL{Scheme: "http", Host: rt.Owner, Path: r.URL.Path, RawQuery: q.Encode()}
	s.metrics.ClusterRedirects.Add(1)
	http.Redirect(w, r, loc.String(), http.StatusTemporaryRedirect)
	return true
}

// farmJobResult is the per-seed job result body.
type farmJobResult struct {
	Campaign string `json:"campaign"`
	Seed     int64  `json:"seed"`
	Diverged bool   `json:"diverged"`
}

// runFarmJob executes one campaign seed inside a job attempt: ensure the
// campaign exists (WAL replay re-registers it from the payload), rebuild
// the checker if needed, and process the seed. Infrastructure errors
// (cancellation, finding-store I/O) bubble up so the scheduler retries the
// seed; a spec that no longer compiles is Permanent.
func (s *Server) runFarmJob(ctx context.Context, spec *farmJobSpec) (json.RawMessage, error) {
	ch, err := s.farmChecker(spec)
	if err != nil {
		return nil, jobs.Permanent(fmt.Errorf("farm checker: %w", err))
	}
	camp, err := s.farm.mgr.Ensure(spec.Campaign, spec.campaignConfig())
	if err != nil {
		return nil, jobs.Permanent(fmt.Errorf("farm campaign: %w", err))
	}
	s.metrics.farmOn.Store(true)
	sp, ctx := trace.Start(ctx, "farm.seed")
	sp.Set("campaign", spec.Campaign)
	sp.Set("seed", fmt.Sprint(spec.Seed))
	diverged, err := farm.ProcessSeed(ctx, ch, s.farm.store, camp, s.farmHooks(), spec.Seed)
	if err != nil {
		sp.SetError(err.Error())
		sp.End()
		return nil, err
	}
	sp.Set("diverged", fmt.Sprint(diverged))
	sp.End()
	return json.Marshal(farmJobResult{Campaign: spec.Campaign, Seed: spec.Seed, Diverged: diverged})
}

// Farm exposes the campaign manager (primarily for tests).
func (s *Server) Farm() *farm.Manager { return s.farm.mgr }

// FarmStore exposes the finding store (primarily for tests).
func (s *Server) FarmStore() *farm.Store { return s.farm.store }
