package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Cluster routing. When Config.Peers is set, the heavy content-addressed
// routes — POST /v1/optimize and POST /v1/jobs — are owned by exactly one
// node: the consistent-hash owner of the request's SHA-256 content address.
// A request arriving anywhere else is proxied to its owner, so every
// replica of the same request shares one node's result cache and job table
// instead of fragmenting across the fleet.
//
// Invariants:
//
//   - One hop, ever. A proxied request carries ForwardedByHeader, and a
//     node never re-forwards a request bearing it — even if its ring
//     disagrees about ownership. Transient membership disagreement degrades
//     cache locality, never availability, and can never loop.
//   - Deadline propagation. The proxied request runs under the original
//     request's context, so the upstream deadline bounds the hop.
//   - Single-retry failover. When the owner is down (prober state or a
//     failed dial), the request is retried once on the ring successor —
//     the node that would own the key if the owner left the ring. A
//     successor that is this node is served locally.

const (
	// ForwardedByHeader carries the proxying node's advertise address; its
	// presence is the loop protection (see above).
	ForwardedByHeader = "X-Optd-Forwarded-By"
	// ServedByHeader names the node that actually executed the request, so
	// clients and smoke tests can observe routing decisions.
	ServedByHeader = "X-Optd-Served-By"
	// redirectedParam marks a job-status 307 already followed once, so two
	// nodes disagreeing about a job's owner bounce a client at most one hop.
	redirectedParam = "_redirected"
)

// routeKeyFunc extracts a routing key from a request body; ok=false means
// the body is unroutable (malformed) and the local handler should produce
// its usual 4xx.
type routeKeyFunc func(raw []byte) (key string, ok bool)

// optimizeRouteKey routes POST /v1/optimize by the same content address the
// result cache is keyed on.
func optimizeRouteKey(raw []byte) (string, bool) {
	var req OptimizeRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return "", false
	}
	return req.cacheKey(), true
}

// jobRouteKey routes POST /v1/jobs by the job ID derived from the
// idempotency key, the same string job-status routes hash — so a job's
// submission, dedup table and status lookups all agree on one owner.
func jobRouteKey(raw []byte) (string, bool) {
	var req JobSubmitRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return "", false
	}
	if names, err := canonOpts(req.Opts); err == nil {
		// Mirror submission's canonicalization so "dce" and "DCE" route to
		// the same owner they dedup on.
		req.Opts = names
	}
	return jobIDForKey(req.jobKey()), true
}

// jobIDForKey derives the job ID from the idempotency key's content
// address. Deterministic IDs make job placement computable from the ID
// alone: any node can route GET /v1/jobs/{id} to the owner by hashing the
// ID, without a lookup table.
func jobIDForKey(key string) string {
	if len(key) > 24 {
		return key[:24]
	}
	return key
}

// sharded wraps a body-keyed handler with cluster routing; without a
// cluster it is the identity.
func (s *Server) sharded(keyFn routeKeyFunc, h func(http.ResponseWriter, *http.Request) error) func(http.ResponseWriter, *http.Request) error {
	if s.cluster == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) error {
		raw, err := io.ReadAll(r.Body)
		if err != nil {
			// MaxBytesReader fires here instead of inside the handler's
			// decoder; same client error either way.
			return failf(http.StatusBadRequest, "bad_json", "reading request body: %v", err)
		}
		r.Body = io.NopCloser(bytes.NewReader(raw))
		key, ok := keyFn(raw)
		if !ok {
			return h(w, r) // let the handler produce its usual 400
		}
		rt := s.cluster.Route(key)
		if rt.Local || r.Header.Get(ForwardedByHeader) != "" {
			s.metrics.ClusterLocal.Add(1)
			return h(w, r)
		}
		return s.forward(w, r, raw, rt, h)
	}
}

// forward proxies the request to its owner, with single-retry failover to
// the ring successor. Peers believed down are skipped outright; a candidate
// resolving to this node runs the local handler.
func (s *Server) forward(w http.ResponseWriter, r *http.Request, raw []byte, rt cluster.Route, h func(http.ResponseWriter, *http.Request) error) error {
	candidates := []string{rt.Owner}
	if rt.Fallback != "" {
		candidates = append(candidates, rt.Fallback)
	}
	for i, target := range candidates {
		if i > 0 {
			s.metrics.ClusterFailovers.Add(1)
		}
		if target == s.cluster.Self() {
			s.metrics.ClusterLocal.Add(1)
			return h(w, r)
		}
		if !s.cluster.Up(target) {
			continue
		}
		resp, err := s.forwardTo(r, target, raw)
		if err != nil {
			// Dial/transport failure: feed it back to the prober so later
			// requests skip the peer without paying a dial timeout, then
			// fail over. A context error is ours, not the peer's — bubble
			// it up as the usual timeout response without smearing the
			// peer's health.
			if r.Context().Err() != nil {
				return s.classify(r.Context().Err(), "forward", 0)
			}
			s.cluster.MarkDown(target, err)
			obs.LoggerFrom(r.Context()).Warn("cluster forward failed",
				"peer", target, "err", err)
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// The owner is up but refusing work (draining or saturated);
			// the successor may still have capacity.
			resp.Body.Close()
			continue
		}
		defer resp.Body.Close()
		s.metrics.ClusterForwarded.Add(1)
		for k, vv := range resp.Header {
			w.Header()[k] = vv
		}
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
		return nil
	}
	// Owner and successor both unreachable: last resort is serving locally.
	// The result will be correct, merely cached on the wrong node until the
	// owners come back.
	s.metrics.ClusterLocal.Add(1)
	return h(w, r)
}

// forwardTo performs one proxied round-trip under the original request's
// context (deadline propagation), measuring forward latency. The hop
// carries this node's trace context and request ID, so the peer's span
// fragment joins the same trace instead of rooting a fresh one and both
// nodes log the same req_id.
func (s *Server) forwardTo(r *http.Request, target string, raw []byte) (*http.Response, error) {
	u := "http://" + target + r.URL.RequestURI()
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	req.Header = r.Header.Clone()
	req.Header.Set(ForwardedByHeader, s.cluster.Self())
	if id := trace.RequestIDFrom(r.Context()); id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	sp, spCtx := trace.Start(r.Context(), "forward")
	sp.Set("peer", target)
	// The hop's parent is the forward span itself, so the peer's fragment
	// hangs under it in the assembled forest.
	if tp := trace.Traceparent(spCtx); tp != "" {
		req.Header.Set(trace.TraceparentHeader, tp)
	}
	t0 := time.Now()
	resp, err := s.cluster.Client().Do(req)
	s.metrics.ForwardLatency.Observe(time.Since(t0))
	if err != nil {
		sp.SetError(err.Error())
	} else {
		sp.SetStatus(resp.StatusCode)
	}
	sp.End()
	return resp, err
}

// redirectJob answers a job-status route (GET/DELETE /v1/jobs/{id}...) with
// a one-hop 307 to the job's owner when the job lives elsewhere. It returns
// true when the response has been written. Jobs present locally are always
// served locally, whatever the ring says — data beats topology.
func (s *Server) redirectJob(w http.ResponseWriter, r *http.Request, id string) bool {
	if s.cluster == nil {
		return false
	}
	if _, ok := s.jobs.Get(id); ok {
		return false
	}
	if r.Header.Get(ForwardedByHeader) != "" || r.URL.Query().Get(redirectedParam) == "1" {
		return false
	}
	rt := s.cluster.Route(id)
	if rt.Local || !s.cluster.Up(rt.Owner) {
		// Owner down: a redirect would strand the client against a dead
		// node; the honest local answer is 404 (the job state lives in the
		// owner's WAL and will resurface when it restarts).
		return false
	}
	q := r.URL.Query()
	q.Set(redirectedParam, "1")
	loc := url.URL{Scheme: "http", Host: rt.Owner, Path: r.URL.Path, RawQuery: q.Encode()}
	s.metrics.ClusterRedirects.Add(1)
	http.Redirect(w, r, loc.String(), http.StatusTemporaryRedirect)
	return true
}
