package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
)

// CacheKey content-addresses an optimization request: SHA-256 over the
// length-prefixed parts (source text, opt sequence, spec texts, limits).
// Length prefixes keep distinct part lists from colliding under
// concatenation ("ab","c" vs "a","bc").
func CacheKey(parts ...string) string {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Cache is a bounded LRU mapping content-addressed keys to marshaled
// responses. A zero-capacity cache stores nothing.
type Cache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache returns an LRU holding at most capacity entries.
func NewCache(capacity int) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached value and marks it most recently used.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores a value, evicting the least recently used entry when full.
func (c *Cache) Put(key string, val []byte) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
