// Package server implements optd, the long-running optimization service:
// the paper's constructor-built optimizer interface exposed as an HTTP/JSON
// API instead of a one-shot CLI. The full parse → dependence-compute →
// optimize → MiniF pipeline is available both statelessly (POST
// /v1/optimize, POST /v1/points) and through a stateful session API
// mirroring the interactive constructor (create a session, list candidate
// application points, apply or skip points, override dependence
// restrictions, toggle recomputation, fetch the result).
//
// Robustness is first-class: a content-addressed LRU result cache keyed by
// SHA-256 of the request material, admission control over a bounded
// concurrency limiter (internal/par), per-request timeouts via context,
// panic recovery that converts optimizer panics into 500s without killing
// the daemon, optlib.ErrIterationLimit surfaced as a structured 422, and
// graceful shutdown that drains in-flight requests while refusing new ones.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/trace"
)

// Config tunes the server. The zero value selects production defaults.
type Config struct {
	// MaxConcurrent bounds the number of optimization requests running at
	// once (admission control); values < 1 select GOMAXPROCS.
	MaxConcurrent int
	// CacheEntries bounds the result cache; 0 selects 256, negative
	// disables caching.
	CacheEntries int
	// RequestTimeout bounds each optimization request; 0 selects 30s.
	RequestTimeout time.Duration
	// MaxIterations is the per-pass application cap used when a request
	// does not set its own; 0 selects the optlib default (1000).
	MaxIterations int
	// RegionWorkers is the default region-parallel worker count for
	// optimization requests that do not choose their own (request body
	// field parallel / query ?parallel=): values above 1 run each pass's
	// fixpoint region-parallel with that many workers, 0 and 1 keep
	// requests sequential. The optimized output is byte-identical at every
	// setting; only latency varies.
	RegionWorkers int
	// MaxBodyBytes bounds request bodies; 0 selects 1 MiB.
	MaxBodyBytes int64
	// MaxSessions bounds live constructor sessions; 0 selects 64.
	MaxSessions int
	// SessionTTL evicts sessions idle longer than this; 0 selects 30m.
	SessionTTL time.Duration
	// Logger receives structured request and pass logs; nil selects
	// slog.Default(). Handlers derive a request-scoped logger from it
	// carrying the request ID and route.
	Logger *slog.Logger

	// JobsDir holds the batch-job write-ahead log; empty selects an
	// in-memory (non-durable) queue.
	JobsDir string
	// JobsWorkers bounds concurrently running batch jobs; values < 1
	// select GOMAXPROCS.
	JobsWorkers int
	// JobsRetries is the default re-run budget after a job's first
	// attempt; negative selects 2.
	JobsRetries int
	// JobsRetryBase shapes the retry backoff; 0 selects 250ms.
	JobsRetryBase time.Duration
	// JobsKeepTerminal bounds retained finished jobs; 0 selects 1024.
	JobsKeepTerminal int
	// JobsNoSync skips the WAL's per-append fsync (benchmarks only).
	JobsNoSync bool

	// Peers lists every cluster member's advertise address (host:port);
	// empty runs a single node with no routing layer at all. The list must
	// be identical (up to order) on every member.
	Peers []string
	// Advertise is this node's own entry in Peers; required when Peers is
	// set.
	Advertise string
	// ProbeInterval and ProbeBackoffCap tune peer health probing; zero
	// selects the cluster package defaults (1s, 15s).
	ProbeInterval   time.Duration
	ProbeBackoffCap time.Duration

	// Engine selects the optimizer execution engine for /v1/optimize and
	// /v1/jobs: EngineInterp (or empty) runs the interpreted closure
	// engine; EngineAuto serves from compiled artifacts whenever one is
	// loaded, falling back to the interpreter transparently; EngineCompiled
	// additionally builds (or loads) the built-in artifact before New
	// returns and fails construction if it cannot.
	Engine string
	// NativeDir is the compiled-artifact cache directory; empty selects
	// nativecache.DefaultDir(). Only used when Engine is auto or compiled.
	NativeDir string

	// AdvisorDir holds the pass-ordering advisor's outcome store; empty
	// keeps the harvested history in memory only (lost on restart). The
	// advisor itself is always on — order=auto against an empty store falls
	// back to the default order.
	AdvisorDir string
	// AdvisorK is the neighbor count per order=auto decision; values < 1
	// select 8.
	AdvisorK int
	// AdvisorMinNeighbors is the evidence floor below which order=auto
	// falls back to the default order; values < 1 select 3.
	AdvisorMinNeighbors int
	// AdvisorMaxRecords bounds the outcome-store window; values < 1 select
	// 4096.
	AdvisorMaxRecords int
	// AdvisorNoSync skips the outcome store's per-append fsync (benchmarks
	// only).
	AdvisorNoSync bool

	// TraceStore bounds the distributed-trace store's retained fragments on
	// this node; 0 selects 1024, negative disables distributed tracing
	// entirely (no store, no X-Optd-Trace-Id, no /v1/traces data).
	TraceStore int
	// TraceSampleN keeps 1 in N unremarkable traces; error and
	// slow-percentile traces are always kept regardless. 0 selects 16, 1
	// keeps everything (tests and smokes).
	TraceSampleN int
	// TraceDir spills kept trace fragments to a CRC-framed log under this
	// directory, replayed on restart; empty keeps the trace window in
	// memory only.
	TraceDir string

	// FarmDir holds the fuzzing farm's durable finding log; empty keeps
	// findings in memory only (lost on restart). The farm itself is always
	// mounted: campaigns run as low-priority jobs on the shared job queue.
	FarmDir string

	// testHook, when non-nil, runs inside the optimize handler after
	// admission and before the pipeline — a seam for shutdown/timeout
	// tests. It receives the request context.
	testHook func(ctx context.Context) error
}

func (c Config) withDefaults() Config {
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 0
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 30 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is one optd instance: handlers plus the shared cache, metrics,
// session store and admission limiter. Create with New, mount Handler into
// an http.Server, and call Shutdown to drain.
type Server struct {
	cfg      Config
	limiter  *par.Limiter
	cache    *Cache
	metrics  *Metrics
	sessions *sessionStore
	jobs     *jobs.Manager
	cluster  *cluster.Cluster // nil on a single node
	native   *native          // nil when serving interpreted only
	advisor  *advisor.Advisor
	traces   *trace.Store // nil when Config.TraceStore < 0
	farm     *farmState
	mux      *http.ServeMux

	mu       sync.RWMutex // guards draining against in-flight accounting
	draining bool
	inflight sync.WaitGroup

	reqSeq atomic.Int64 // request ID sequence
}

// New builds a server from the configuration. It can fail: a durable jobs
// directory (Config.JobsDir) is opened — and its write-ahead log replayed —
// before the server accepts traffic, so jobs interrupted by a crash are
// requeued up front.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		limiter: par.NewLimiter(cfg.MaxConcurrent),
		cache:   NewCache(cfg.CacheEntries),
		metrics: newMetrics(),
	}
	s.sessions = newSessionStore(cfg.MaxSessions, cfg.SessionTTL, s.metrics)
	if cfg.TraceStore >= 0 {
		ts, err := trace.Open(trace.Config{
			Capacity: cfg.TraceStore,
			SampleN:  cfg.TraceSampleN,
			Dir:      cfg.TraceDir,
		})
		if err != nil {
			s.sessions.close()
			return nil, fmt.Errorf("server: opening trace dir %q: %w", cfg.TraceDir, err)
		}
		s.traces = ts
		s.metrics.setTraceStats(ts.Stats)
	}
	switch cfg.Engine {
	case "", EngineInterp:
	case EngineAuto, EngineCompiled:
		n, err := newNative(cfg, s.metrics)
		if err != nil {
			if cfg.Engine == EngineCompiled {
				s.sessions.close()
				_ = s.traces.Close()
				return nil, fmt.Errorf("server: compiled engine unavailable: %w", err)
			}
			// auto degrades: serve interpreted, leave the cache off so every
			// request skips straight to the engine.
			cfg.Logger.Warn("server: native engine unavailable, serving interpreted", slog.Any("err", err))
		} else {
			s.native = n
			s.metrics.nativeOn.Store(true)
		}
	default:
		s.sessions.close()
		_ = s.traces.Close()
		return nil, fmt.Errorf("server: unknown engine %q (have %s, %s, %s)",
			cfg.Engine, EngineInterp, EngineAuto, EngineCompiled)
	}
	adv, err := advisor.Open(advisor.Config{
		Dir:          cfg.AdvisorDir,
		K:            cfg.AdvisorK,
		MinNeighbors: cfg.AdvisorMinNeighbors,
		MaxRecords:   cfg.AdvisorMaxRecords,
		NoSync:       cfg.AdvisorNoSync,
		Obs:          s.metrics.advisorObs(),
	})
	if err != nil {
		s.sessions.close()
		_ = s.traces.Close()
		s.native.close()
		return nil, fmt.Errorf("server: opening advisor dir %q: %w", cfg.AdvisorDir, err)
	}
	s.advisor = adv
	s.metrics.advisorOn.Store(true)
	fs, err := newFarmState(cfg.FarmDir)
	if err != nil {
		s.sessions.close()
		_ = s.traces.Close()
		s.native.close()
		_ = s.advisor.Close()
		return nil, fmt.Errorf("server: opening farm dir %q: %w", cfg.FarmDir, err)
	}
	s.farm = fs
	s.metrics.setFarmCampaigns(fs.mgr.List)
	if len(cfg.Peers) > 0 {
		cl, err := cluster.New(cluster.Config{
			Self:            cfg.Advertise,
			Peers:           cfg.Peers,
			ProbeInterval:   cfg.ProbeInterval,
			ProbeBackoffCap: cfg.ProbeBackoffCap,
			Logger:          cfg.Logger,
			OnPeerChange:    func(string, bool) { s.metrics.ClusterPeerTransitions.Add(1) },
		})
		if err != nil {
			s.sessions.close()
			_ = s.traces.Close()
			s.native.close()
			_ = s.advisor.Close()
			_ = s.farm.close()
			return nil, err
		}
		s.cluster = cl
		s.metrics.setClusterStatus(cl.Self(), cl.Peers(), cl.Status)
		cl.Start()
	}
	jobsObs := s.metrics.jobsObs()
	// Completed jobs feed the pass-ordering advisor the same way inline
	// optimize runs do.
	jobsObs.Completed = s.jobCompleted
	mgr, err := jobs.New(s.runJob, jobs.Config{
		Dir:          cfg.JobsDir,
		Workers:      cfg.JobsWorkers,
		MaxRetries:   cfg.JobsRetries,
		RetryBase:    cfg.JobsRetryBase,
		Timeout:      cfg.RequestTimeout,
		KeepTerminal: cfg.JobsKeepTerminal,
		NoSync:       cfg.JobsNoSync,
		Obs:          jobsObs,
	})
	if err != nil {
		s.sessions.close()
		_ = s.traces.Close()
		s.native.close()
		_ = s.advisor.Close()
		_ = s.farm.close()
		if s.cluster != nil {
			s.cluster.Close()
		}
		return nil, fmt.Errorf("server: opening jobs dir %q: %w", cfg.JobsDir, err)
	}
	s.jobs = mgr
	// WAL replay re-creates jobs without firing the lifecycle callbacks;
	// seed the gauges from the recovered table.
	q, r := mgr.Depths()
	s.metrics.JobsQueued.Store(int64(q))
	s.metrics.JobsRunning.Store(int64(r))
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// Metrics exposes the server's counters (primarily for tests and benches).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Jobs exposes the job manager (primarily for tests and benches).
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// Cluster exposes the routing layer; nil on a single node.
func (s *Server) Cluster() *cluster.Cluster { return s.cluster }

// Advisor exposes the pass-ordering advisor (primarily for tests and
// benches — e.g. Flush barriers over the asynchronous harvest path).
func (s *Server) Advisor() *advisor.Advisor { return s.advisor }

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.wrap("healthz", false, s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.wrap("metrics", false, s.handleMetrics))
	s.mux.HandleFunc("GET /v1/version", s.wrap("version", false, s.handleVersion))
	// Trace queries. Neither admits: both only read the in-memory window.
	s.mux.HandleFunc("GET /v1/traces", s.wrap("traces.list", false, s.handleTraceList))
	s.mux.HandleFunc("GET /v1/traces/{id}", s.wrap("traces.get", false, s.handleTraceGet))
	s.mux.HandleFunc("POST /v1/optimize", s.wrap("optimize", true, s.sharded(optimizeRouteKey, s.handleOptimize)))
	s.mux.HandleFunc("POST /v1/points", s.wrap("points", true, s.handlePoints))
	s.mux.HandleFunc("POST /v1/session", s.wrap("session.create", true, s.handleSessionCreate))
	s.mux.HandleFunc("GET /v1/session/{id}", s.wrap("session.get", false, s.handleSessionGet))
	s.mux.HandleFunc("DELETE /v1/session/{id}", s.wrap("session.delete", false, s.handleSessionDelete))
	s.mux.HandleFunc("GET /v1/session/{id}/points", s.wrap("session.points", true, s.handleSessionPoints))
	s.mux.HandleFunc("POST /v1/session/{id}/apply", s.wrap("session.apply", true, s.handleSessionApply))
	s.mux.HandleFunc("POST /v1/session/{id}/skip", s.wrap("session.skip", true, s.handleSessionSkip))
	s.mux.HandleFunc("POST /v1/session/{id}/applyall", s.wrap("session.applyall", true, s.handleSessionApplyAll))
	s.mux.HandleFunc("POST /v1/session/{id}/recompute", s.wrap("session.recompute", false, s.handleSessionRecompute))
	s.mux.HandleFunc("GET /v1/session/{id}/result", s.wrap("session.result", false, s.handleSessionResult))
	// Batch jobs. None of these admit through the request limiter: the
	// handlers only touch the job table, and execution is bounded by the
	// job manager's own worker pool.
	// Submission is proxied to the content address's owner; the status
	// routes answer with a one-hop 307 to the owner instead (the job ID is
	// derived from the content address, so any node can compute it).
	s.mux.HandleFunc("POST /v1/jobs", s.wrap("jobs.submit", false, s.sharded(jobRouteKey, s.handleJobSubmit)))
	s.mux.HandleFunc("GET /v1/jobs", s.wrap("jobs.list", false, s.handleJobList))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.wrap("jobs.get", false, s.handleJobGet))
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.wrap("jobs.result", false, s.handleJobResult))
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.wrap("jobs.cancel", false, s.handleJobCancel))
	// Fuzzing farm. Campaign starts route to the campaign's
	// content-address owner like job submission; status and findings
	// answer with a one-hop 307. Execution is bounded by the job manager's
	// worker pool, so none of these admit through the request limiter.
	s.mux.HandleFunc("POST /v1/farm", s.wrap("farm.start", false, s.sharded(s.farmRouteKey, s.handleFarmStart)))
	s.mux.HandleFunc("GET /v1/farm", s.wrap("farm.list", false, s.handleFarmList))
	s.mux.HandleFunc("GET /v1/farm/{id}", s.wrap("farm.get", false, s.handleFarmGet))
	s.mux.HandleFunc("GET /v1/farm/{id}/findings", s.wrap("farm.findings", false, s.handleFarmFindings))
}

// begin registers a request for draining accounting, refusing it when the
// server is shutting down. The WaitGroup Add happens under the read lock so
// Shutdown's Wait can never start between the draining check and the Add.
func (s *Server) begin() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// Shutdown is the two-phase drain: refuse new requests, wait for in-flight
// ones (or ctx), then drain the job workers — interrupted attempts are
// checkpointed back to queued in the WAL so a restart re-runs them. The
// session store is closed either way.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	defer s.sessions.close()
	defer func() { _ = s.traces.Close() }()
	// Waits for any background artifact build so temp dirs and cache files
	// are quiescent when the caller tears the directory down.
	defer s.native.close()
	if s.cluster != nil {
		defer s.cluster.Close()
	}
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	if jerr := s.jobs.Close(ctx); err == nil {
		err = jerr
	}
	// After the job workers drain: no attempt can append a finding, so the
	// farm's log closes cleanly.
	if ferr := s.farm.close(); err == nil {
		err = ferr
	}
	// After the job workers drain: the advisor stops its harvest worker
	// (ingesting what was already queued) and closes the outcome log.
	if aerr := s.advisor.Close(); err == nil {
		err = aerr
	}
	return err
}

// statusRecorder captures the response status for route metrics and logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// TraceIDHeader echoes the request's trace identity back to the client, so
// a caller (or a smoke test) can immediately query /v1/traces/{id}.
const TraceIDHeader = "X-Optd-Trace-Id"

// RegionsHeader reports the largest dependence partition seen across the
// passes of a region-parallel optimize request.
const RegionsHeader = "X-Optd-Regions"

// tracedRoute excludes the observability plumbing itself from the trace
// store: scrapes and trace queries would otherwise crowd the sample with
// spans about reading spans.
func tracedRoute(route string) bool {
	switch route {
	case "healthz", "metrics", "version", "traces.list", "traces.get":
		return false
	}
	return true
}

// wrap is the common middleware: draining gate, in-flight accounting,
// per-route metrics and latency histograms, request IDs, distributed-trace
// ingress, a request-scoped structured logger, panic recovery, optional
// admission control and the per-request timeout for heavy (admit=true)
// routes.
func (s *Server) wrap(route string, admit bool, h func(w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	return func(rw http.ResponseWriter, r *http.Request) {
		if !s.begin() {
			s.metrics.RejectedDraining.Add(1)
			// This instance is going away; tell well-behaved clients when a
			// replacement is likely to be answering.
			rw.Header().Set("Retry-After", "5")
			writeError(rw, http.StatusServiceUnavailable, "draining", "server is shutting down")
			return
		}
		defer s.inflight.Done()
		s.metrics.CountRoute(route)
		s.metrics.InFlight.Add(1)
		defer s.metrics.InFlight.Add(-1)

		// Honor a propagated request ID (one-hop forwards, replay sweeps) so
		// every node a request touches logs the same identity; mint only at
		// the true ingress. The length cap keeps hostile values out of logs.
		reqID := strings.TrimSpace(r.Header.Get("X-Request-ID"))
		if reqID == "" || len(reqID) > 64 {
			reqID = fmt.Sprintf("%08x", s.reqSeq.Add(1))
		}
		rw.Header().Set("X-Request-ID", reqID)
		if s.cluster != nil {
			// Forwarded responses overwrite this with the executing node's
			// value when copying headers back, so the client always sees
			// where the work actually ran.
			rw.Header().Set(ServedByHeader, s.cluster.Self())
		}
		logger := s.cfg.Logger.With(slog.String("req_id", reqID), slog.String("route", route))

		// Trace ingress: join the caller's trace when a valid traceparent
		// arrived (a forwarded hop, a replay sweep), mint a fresh trace ID
		// otherwise. The keep decision happens at completion, in the tail
		// sampler — every request is traced while in flight.
		var frag *trace.Fragment
		if s.traces != nil && tracedRoute(route) {
			parent, _ := trace.ParseTraceparent(r.Header.Get(trace.TraceparentHeader))
			node := ""
			if s.cluster != nil {
				node = s.cluster.Self()
			}
			frag = trace.NewFragment(parent, "server."+route, node)
			rw.Header().Set(TraceIDHeader, frag.TraceID())
			logger = logger.With(slog.String("trace_id", frag.TraceID()))
		}

		w := &statusRecorder{ResponseWriter: rw}
		t0 := time.Now()
		defer func() {
			d := time.Since(t0)
			status := w.status
			if status == 0 {
				status = http.StatusOK
			}
			// Completed fragment → tail sampler. The latency exemplar is
			// attached only when the trace was kept: an exemplar pointing at
			// a dropped trace would be a dead link.
			exemplar := ""
			if frag != nil {
				frag.Root().SetStatus(status)
				if s.traces.Record(route, frag.Spans()) != trace.DecisionDropped {
					exemplar = frag.TraceID()
				}
			}
			s.metrics.RouteDone(route, d, exemplar)
			logger.Info("request", slog.Int("status", status), slog.Int64("duration_us", d.Microseconds()))
		}()

		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.PanicsRecovered.Add(1)
				logger.Error("panic recovered", slog.Any("panic", rec))
				debug.PrintStack()
				writeError(w, http.StatusInternalServerError, "panic", "internal error: optimizer panicked")
			}
		}()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		ctx = obs.ContextWithLogger(ctx, logger)
		ctx = trace.ContextWithRequestID(ctx, reqID)
		if frag != nil {
			ctx = trace.ContextWithFragment(ctx, frag, frag.Root())
		}
		r = r.WithContext(ctx)
		if admit {
			if err := s.limiter.Acquire(r.Context()); err != nil {
				s.metrics.RejectedOverload.Add(1)
				// Capacity frees as in-flight optimizations finish; a short
				// backoff is enough.
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable, "overloaded", "no capacity within the request deadline")
				return
			}
			defer s.limiter.Release()
		}
		if err := h(w, r); err != nil {
			var he *httpErr
			if errors.As(err, &he) {
				writeJSON(w, he.status, he.body)
				return
			}
			writeError(w, http.StatusInternalServerError, "internal", err.Error())
		}
	}
}

// apiError is the structured error body every non-200 response carries.
type apiError struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
	// Pass and Applications qualify iteration_limit errors: which pass hit
	// the cap and how many applications it had performed.
	Pass         string `json:"pass,omitempty"`
	Applications int    `json:"applications,omitempty"`
}

func writeError(w http.ResponseWriter, status int, kind, msg string) {
	writeJSON(w, status, apiError{Error: msg, Kind: kind})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	return nil
}

// handleMetrics serves the counter set. The default (and "application/json")
// representation is the JSON snapshot, kept shape-stable for existing
// scrapers; an Accept header naming text/plain or openmetrics selects the
// Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	accept := r.Header.Get("Accept")
	if strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics") {
		w.Header().Set("Content-Type", obs.ContentType)
		w.WriteHeader(http.StatusOK)
		// A write error here means the scraper hung up; the status line is
		// already out, so there is nothing useful to report back.
		_ = s.metrics.WriteProm(w)
		return nil
	}
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
	return nil
}
