package server

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"time"

	"repro/internal/frontend"
	"repro/internal/nativecache"
	"repro/internal/specs"
	"repro/internal/trace"
	"repro/ir"
	"repro/optlib"
)

// Engine values for Config.Engine (and the -engine flag).
const (
	// EngineInterp runs every pipeline on the interpreted closure engine
	// (the seed behavior; also selected by an empty Config.Engine).
	EngineInterp = "interp"
	// EngineAuto serves from compiled artifacts whenever one is loaded and
	// falls back to the interpreter transparently otherwise.
	EngineAuto = "auto"
	// EngineCompiled is EngineAuto plus a startup guarantee: the artifact
	// covering every built-in optimization is built (or loaded) before the
	// server accepts traffic, and New fails if it cannot be.
	EngineCompiled = "compiled"
)

// ValidEngine reports whether s names an engine mode.
func ValidEngine(s string) bool {
	switch s {
	case "", EngineInterp, EngineAuto, EngineCompiled:
		return true
	}
	return false
}

// EngineHeader is the response header naming the engine that produced the
// response body: "interp", "compiled-plugin" or "compiled-subprocess".
const EngineHeader = "X-Optd-Engine"

// native is the server's compiled-optimizer selection layer. nil when the
// engine is interp (or the artifact cache could not be opened under auto).
type native struct {
	cache   *nativecache.Cache
	builtin nativecache.SpecSet // all built-in specs; one artifact serves every opts-only request
}

// newNative opens the artifact cache and schedules (auto) or completes
// (compiled) the built-in artifact's build.
func newNative(cfg Config, m *Metrics) (*native, error) {
	dir := cfg.NativeDir
	if dir == "" {
		d, err := nativecache.DefaultDir()
		if err != nil {
			return nil, err
		}
		dir = d
	}
	nc, err := nativecache.New(nativecache.Config{
		Dir:    dir,
		Logger: cfg.Logger,
		Obs:    m.nativeObs(),
	})
	if err != nil {
		return nil, err
	}
	n := &native{cache: nc, builtin: nativecache.NewSpecSet(specs.Sources)}
	if cfg.Engine == EngineCompiled {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		defer cancel()
		if _, err := nc.Ensure(ctx, n.builtin, nativecache.ModeAuto); err != nil {
			nc.Close()
			return nil, err
		}
	} else {
		nc.EnsureAsync(n.builtin, nativecache.ModeAuto, nil)
	}
	return n, nil
}

func (n *native) close() {
	if n != nil {
		n.cache.Close()
	}
}

// nativeError carries a compiled-pipeline failure with enough context for
// both handler classification and job retry semantics. The wrapped err
// preserves errors.Is identity for optlib.ErrIterationLimit and context
// errors; parse marks MiniF parse failures (a client error, never the
// engine's fault).
type nativeError struct {
	err   error
	pass  string
	apps  int
	parse bool
}

// nativeSet maps a request onto the spec set its artifact must cover and
// the pass names to run in order. ok is false when the request cannot be
// expressed as one compiled artifact (an inline spec shadowing a different
// source under the same name).
func (s *Server) nativeSet(req *OptimizeRequest) (set nativecache.SpecSet, passNames []string, ok bool) {
	names, err := canonOpts(req.Opts)
	if err != nil {
		return set, nil, false // interp path reports the error
	}
	passNames = names
	if len(req.Specs) == 0 {
		if len(passNames) == 0 {
			return set, nil, false
		}
		return s.native.builtin, passNames, true
	}
	sources := make(map[string]string, len(specs.Sources)+len(req.Specs))
	for n, src := range specs.Sources {
		sources[n] = src
	}
	for _, st := range req.Specs {
		name := strings.ToUpper(strings.TrimSpace(st.Name))
		if name == "" {
			return set, nil, false
		}
		if prev, exists := sources[name]; exists && prev != st.Text {
			// A name collision (with a built-in or another inline spec)
			// cannot live in one registry; let the interpreter handle it.
			return set, nil, false
		}
		sources[name] = st.Text
		passNames = append(passNames, name)
	}
	return nativecache.NewSpecSet(sources), passNames, true
}

// tryNative serves one optimize request from a compiled artifact. ok=false
// means "serve interpreted" — the engine is off, the request is ineligible
// (tracing, recompute toggles), or no artifact is loaded yet (its build is
// scheduled in the background and counted as a fallback). When ok is true
// the request was definitively handled: either resp or nerr is set.
func (s *Server) tryNative(ctx context.Context, req *OptimizeRequest, wantTrace bool) (*OptimizeResponse, *nativeError, bool) {
	if s.native == nil || wantTrace || (req.Recompute != nil && !*req.Recompute) {
		return nil, nil, false
	}
	set, passNames, ok := s.nativeSet(req)
	if !ok {
		return nil, nil, false
	}
	art, loaded := s.native.cache.Lookup(set)
	if !loaded || !art.Covers(passNames) {
		s.metrics.NativeFallbacks.Add(1)
		s.native.cache.EnsureAsync(set, nativecache.ModeAuto, nil)
		return nil, nil, false
	}
	maxIter := req.MaxIterations
	if maxIter <= 0 {
		maxIter = s.cfg.MaxIterations
	}
	if art.InProcess() {
		sp, ctx := trace.Start(ctx, "native.plugin")
		resp, nerr := s.runNativePlugin(ctx, art, req.Source, passNames, maxIter, req.Parallel)
		if nerr != nil {
			sp.SetError(nerr.err.Error())
		}
		sp.End()
		return resp, nerr, true
	}
	// The subprocess hop carries the trace context in TRACEPARENT (set by
	// RunPipeline from this span's context).
	sp, ctx := trace.Start(ctx, "native.subprocess")
	resp, nerr := s.runNativeSubprocess(ctx, art, req.Source, passNames, maxIter)
	if nerr != nil {
		sp.SetError(nerr.err.Error())
	}
	sp.End()
	return resp, nerr, true
}

func (s *Server) runNativePlugin(ctx context.Context, art *nativecache.Artifact, source string, passNames []string, maxIter, parallel int) (*OptimizeResponse, *nativeError) {
	t0 := time.Now()
	prog, err := frontend.Parse(source)
	if err != nil {
		return nil, &nativeError{err: err, parse: true}
	}
	parseUS := time.Since(t0).Microseconds()
	passes := make([]optlib.NamedApply, len(passNames))
	for i, name := range passNames {
		fn, _ := art.Func(name) // Covers checked by the caller
		// Built-in passes get the region fast path when their spec proves
		// region-eligible; inline specs compiled into an artifact keep the
		// sequential loop (RegionSafe only knows the built-ins).
		passes[i] = optlib.NamedApply{Name: name, Apply: fn, ParallelSafe: specs.RegionSafe(name)}
	}
	counts, err := optlib.PipelineCtx(ctx, prog, passes, optlib.Limits{MaxIterations: maxIter, Parallel: parallel})
	results := make([]PassResult, len(counts))
	for i, ct := range counts {
		results[i] = PassResult{Name: ct.Name, Applications: ct.Applications, DurationUS: ct.Duration.Microseconds()}
		s.metrics.PassDone(ct.Name, ct.Applications, ct.Duration)
	}
	if err != nil {
		last := counts[len(counts)-1] // PipelineCtx appends the failing pass
		return nil, &nativeError{err: err, pass: last.Name, apps: last.Applications}
	}
	s.metrics.NativeServedPlugin.Add(1)
	return &OptimizeResponse{
		MiniF:        ir.ToMiniF(prog),
		IR:           prog.String(),
		Applications: results,
		ParseUS:      parseUS,
		TotalUS:      time.Since(t0).Microseconds(),
		Engine:       "compiled-plugin",
	}, nil
}

// runNativeSubprocess always runs the pipeline sequentially: the runner
// binary predates the parallel knob, and shipping a worker count across
// the process boundary buys nothing until the runner protocol grows one —
// the result is byte-identical either way.
func (s *Server) runNativeSubprocess(ctx context.Context, art *nativecache.Artifact, source string, passNames []string, maxIter int) (*OptimizeResponse, *nativeError) {
	t0 := time.Now()
	res, err := art.RunPipeline(ctx, source, passNames, maxIter)
	if err != nil {
		// Context errors keep their identity for classification/retry; an
		// unrunnable artifact is an internal pipeline error.
		return nil, &nativeError{err: err, pass: firstName(passNames)}
	}
	results := make([]PassResult, len(res.Passes))
	for i, ct := range res.Passes {
		results[i] = PassResult{Name: ct.Name, Applications: ct.Applications, DurationUS: ct.DurationUS}
		s.metrics.PassDone(ct.Name, ct.Applications, time.Duration(ct.DurationUS)*time.Microsecond)
	}
	if perr := res.PipelineError(); perr != nil {
		if res.ErrKind == "parse" {
			return nil, &nativeError{err: errors.New(res.Err), parse: true}
		}
		nerr := &nativeError{err: perr, pass: firstName(passNames)}
		if len(res.Passes) > 0 {
			last := res.Passes[len(res.Passes)-1]
			nerr.pass, nerr.apps = last.Name, last.Applications
		}
		return nil, nerr
	}
	s.metrics.NativeServedSubprocess.Add(1)
	return &OptimizeResponse{
		MiniF:        res.MiniF,
		IR:           res.IR,
		Applications: results,
		ParseUS:      res.ParseUS,
		TotalUS:      time.Since(t0).Microseconds(),
		Engine:       "compiled-subprocess",
	}, nil
}

func firstName(names []string) string {
	if len(names) == 0 {
		return "?"
	}
	return names[0]
}

// setEngineHeader stamps the engine that produced the response body.
func setEngineHeader(w http.ResponseWriter, engine string) {
	if engine == "" {
		engine = EngineInterp
	}
	w.Header().Set(EngineHeader, engine)
}
