package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs"
)

// submitJob posts one job and returns the decoded view.
func submitJob(t *testing.T, s *Server, body any) JobView {
	t.Helper()
	rec := doJSON(t, s, "POST", "/v1/jobs", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202: %s", rec.Code, rec.Body.String())
	}
	v := decodeAs[JobView](t, rec)
	if v.ID == "" {
		t.Fatal("submit returned no job ID")
	}
	if loc := rec.Header().Get("Location"); loc != "/v1/jobs/"+v.ID {
		t.Fatalf("Location = %q", loc)
	}
	return v
}

// waitJob long-polls the status endpoint until the job is terminal.
func waitJob(t *testing.T, s *Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec := doJSON(t, s, "GET", "/v1/jobs/"+id+"?wait=1", nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("get job = %d: %s", rec.Code, rec.Body.String())
		}
		v := decodeAs[JobView](t, rec)
		switch v.State {
		case "done", "failed", "cancelled":
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, v.State)
		}
	}
}

// TestJobSubmitToResult drives the happy path over HTTP: 202 on submit, a
// terminal status via ?wait=1, and the optimize result from /result.
func TestJobSubmitToResult(t *testing.T) {
	s := newTestServer(t, Config{})
	v := submitJob(t, s, map[string]any{"source": deadSrc, "opts": []string{"DCE"}})
	if v.State != "queued" && v.State != "running" && v.State != "done" {
		t.Fatalf("fresh job state = %q", v.State)
	}
	fin := waitJob(t, s, v.ID)
	if fin.State != "done" {
		t.Fatalf("job = %s (%s), want done", fin.State, fin.LastError)
	}
	if fin.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", fin.Attempts)
	}
	rec := doJSON(t, s, "GET", "/v1/jobs/"+v.ID+"/result", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("result = %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeAs[OptimizeResponse](t, rec)
	if len(resp.Applications) == 0 || resp.Applications[0].Applications != 3 {
		t.Fatalf("applications = %+v, want DCE x3", resp.Applications)
	}
	// The batch path shares the stateless result cache: the same request
	// through /v1/optimize must now hit.
	rec = doJSON(t, s, "POST", "/v1/optimize", map[string]any{"source": deadSrc, "opts": []string{"DCE"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("optimize = %d", rec.Code)
	}
	if opt := decodeAs[OptimizeResponse](t, rec); !opt.Cached {
		t.Error("job result did not warm the optimize cache")
	}
}

// TestJobResultPending: the result of an unfinished job is a 409 carrying a
// Retry-After hint. Uses a deliberately missing-but-queued window by asking
// for the result of a job that retries with backoff.
func TestJobResultPending(t *testing.T) {
	s := newTestServer(t, Config{})
	// A queued job that has not run yet is hard to catch reliably; instead
	// check the pending branch directly against a job parked in backoff.
	j, _, err := s.jobs.Submit(jobs.SubmitRequest{
		Key:      "pending-test",
		Payload:  []byte(`{invalid json`), // never dispatched: deadline far future, but payload corrupt would fail...
		Priority: jobs.PriorityLow,
		Deadline: time.Now().Add(time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Race: the job may already be running or failed. Accept either the
	// pending 409 or a terminal answer; when pending, the hint must ride.
	rec := doJSON(t, s, "GET", "/v1/jobs/"+j.ID+"/result", nil)
	if rec.Code == http.StatusConflict {
		if ra := rec.Header().Get("Retry-After"); ra != "1" {
			t.Fatalf("pending Retry-After = %q, want 1", ra)
		}
		e := decodeAs[apiError](t, rec)
		if e.Kind != "job_pending" {
			t.Fatalf("kind = %q", e.Kind)
		}
	}
}

// TestJobPermanentFailure: a deterministic error (parse failure) fails the
// job on the first attempt — no retries burned — and /result reports it.
func TestJobPermanentFailure(t *testing.T) {
	s := newTestServer(t, Config{})
	v := submitJob(t, s, map[string]any{"source": "PROGRAM nope\nTHIS IS NOT MINIF\nEND", "opts": []string{"DCE"}})
	fin := waitJob(t, s, v.ID)
	if fin.State != "failed" {
		t.Fatalf("job = %s, want failed", fin.State)
	}
	if fin.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (parse errors must not retry)", fin.Attempts)
	}
	rec := doJSON(t, s, "GET", "/v1/jobs/"+v.ID+"/result", nil)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("result of failed job = %d, want 422", rec.Code)
	}
	if e := decodeAs[apiError](t, rec); e.Kind != "job_failed" {
		t.Fatalf("kind = %q", e.Kind)
	}
}

// TestJobIdempotentResubmission: the same body resubmitted returns the same
// job with existing=true, over HTTP.
func TestJobIdempotentResubmission(t *testing.T) {
	s := newTestServer(t, Config{})
	body := map[string]any{"source": deadSrc, "opts": []string{"dce"}} // lower case: canonicalization must not fork the key
	first := submitJob(t, s, body)
	waitJob(t, s, first.ID)
	again := submitJob(t, s, map[string]any{"source": deadSrc, "opts": []string{"DCE"}})
	if again.ID != first.ID {
		t.Fatalf("resubmission created job %s, want %s", again.ID, first.ID)
	}
	if !again.Existing {
		t.Error("resubmission not flagged existing")
	}
	if got := s.Metrics().JobsDeduped.Load(); got != 1 {
		t.Errorf("JobsDeduped = %d, want 1", got)
	}
	if got := s.Metrics().JobsSubmitted.Load(); got != 1 {
		t.Errorf("JobsSubmitted = %d, want 1", got)
	}
}

// TestJobCancelAndConflicts: cancelling a terminal job is a 409, a missing
// one a 404, and DELETE on a queued job lands it in cancelled.
func TestJobCancelAndConflicts(t *testing.T) {
	s := newTestServer(t, Config{})
	v := submitJob(t, s, map[string]any{"source": deadSrc, "opts": []string{"DCE"}})
	waitJob(t, s, v.ID)
	rec := doJSON(t, s, "DELETE", "/v1/jobs/"+v.ID, nil)
	if rec.Code != http.StatusConflict {
		t.Fatalf("cancel done job = %d, want 409", rec.Code)
	}
	rec = doJSON(t, s, "DELETE", "/v1/jobs/nope", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("cancel missing job = %d, want 404", rec.Code)
	}
	rec = doJSON(t, s, "GET", "/v1/jobs/nope", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("get missing job = %d, want 404", rec.Code)
	}
}

// TestJobValidation: bad submissions fail synchronously as 400s, never
// entering the queue.
func TestJobValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, body := range []any{
		map[string]any{"opts": []string{"DCE"}},                                          // no source
		map[string]any{"source": deadSrc, "opts": []string{"BOGUS"}},                     // unknown opt
		map[string]any{"source": deadSrc, "opts": []string{"DCE"}, "priority": "urgent"}, // bad priority
		map[string]any{"source": deadSrc, "opts": []string{"DCE"}, "max_retries": -3},    // negative retries
		`{"source": `, // bad JSON
	} {
		if rec := doJSON(t, s, "POST", "/v1/jobs", body); rec.Code != http.StatusBadRequest {
			t.Errorf("submit %v = %d, want 400", body, rec.Code)
		}
	}
	if got := s.Metrics().JobsSubmitted.Load(); got != 0 {
		t.Errorf("JobsSubmitted = %d after rejections, want 0", got)
	}
}

// TestJobListPaginationHTTP pages through jobs with the seq cursor and the
// state filter.
func TestJobListPaginationHTTP(t *testing.T) {
	s := newTestServer(t, Config{})
	var ids []string
	for i := 0; i < 5; i++ {
		src := fmt.Sprintf("PROGRAM p%d\nINTEGER a, x\nx = %d\na = 1\nPRINT x\nEND\n", i, i)
		ids = append(ids, submitJob(t, s, map[string]any{"source": src, "opts": []string{"DCE"}}).ID)
	}
	for _, id := range ids {
		waitJob(t, s, id)
	}
	seen := map[string]bool{}
	cursor := ""
	pages := 0
	for {
		path := "/v1/jobs?state=done&limit=2" + cursor
		rec := doJSON(t, s, "GET", path, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("list = %d: %s", rec.Code, rec.Body.String())
		}
		page := decodeAs[JobListResponse](t, rec)
		pages++
		for _, v := range page.Jobs {
			if seen[v.ID] {
				t.Fatalf("job %s appeared on two pages", v.ID)
			}
			seen[v.ID] = true
		}
		if page.Next == 0 {
			break
		}
		cursor = fmt.Sprintf("&before=%d", page.Next)
		if pages > 10 {
			t.Fatal("pagination did not terminate")
		}
	}
	if len(seen) != 5 || pages != 3 {
		t.Fatalf("saw %d jobs over %d pages, want 5 over 3", len(seen), pages)
	}
	if rec := doJSON(t, s, "GET", "/v1/jobs?state=bogus", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad state filter = %d, want 400", rec.Code)
	}
}

// TestJobTraceJoined: a traced job's result carries the span forest under a
// synthetic job root naming the job ID and attempt.
func TestJobTraceJoined(t *testing.T) {
	s := newTestServer(t, Config{})
	v := submitJob(t, s, map[string]any{"source": deadSrc, "opts": []string{"DCE"}, "trace": true})
	if fin := waitJob(t, s, v.ID); fin.State != "done" {
		t.Fatalf("job = %s (%s)", fin.State, fin.LastError)
	}
	rec := doJSON(t, s, "GET", "/v1/jobs/"+v.ID+"/result", nil)
	resp := decodeAs[OptimizeResponse](t, rec)
	if len(resp.Trace) != 1 || resp.Trace[0].Name != "job" {
		t.Fatalf("trace roots = %+v, want one job root", resp.Trace)
	}
	root := resp.Trace[0]
	if len(root.Children) == 0 {
		t.Fatal("job root has no engine spans")
	}
	found := false
	for _, f := range root.Attrs {
		if f.Key == "id" && f.Value == v.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("job root attrs %+v missing job ID", root.Attrs)
	}
}

// TestJobsDurableAcrossRestart: jobs accepted by one server instance are
// completed and their results servable by the next instance over the same
// jobs directory — drain, then restart, nothing lost.
func TestJobsDurableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Config{JobsDir: dir})
	var ids []string
	for i := 0; i < 4; i++ {
		src := fmt.Sprintf("PROGRAM r%d\nINTEGER a, x\nx = %d\na = 1\nPRINT x\nEND\n", i, i)
		ids = append(ids, submitJob(t, s1, map[string]any{"source": src, "opts": []string{"DCE"}, "no_cache": true}).ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	s2 := newTestServer(t, Config{JobsDir: dir})
	for _, id := range ids {
		fin := waitJob(t, s2, id)
		if fin.State != "done" {
			t.Fatalf("job %s after restart = %s (%s), want done", id, fin.State, fin.LastError)
		}
		rec := doJSON(t, s2, "GET", "/v1/jobs/"+id+"/result", nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("result after restart = %d: %s", rec.Code, rec.Body.String())
		}
	}
	if err := s2.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestRetryAfterOnDraining: the draining 503 (both the middleware gate and
// job submission) advertises Retry-After.
func TestRetryAfterOnDraining(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	rec := doJSON(t, s, "GET", "/healthz", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "5" {
		t.Fatalf("draining Retry-After = %q, want 5", ra)
	}
}

// TestRetryAfterOnOverload: a request refused for lack of capacity gets a
// Retry-After hint alongside the 503.
func TestRetryAfterOnOverload(t *testing.T) {
	entered := make(chan struct{}, 1)
	hold := make(chan struct{})
	s := newTestServer(t, Config{
		MaxConcurrent:  1,
		RequestTimeout: 200 * time.Millisecond,
		testHook: func(ctx context.Context) error {
			entered <- struct{}{}
			// Hold the slot until the test releases it. Waiting on ctx.Done
			// here would free the slot at this request's deadline, racing the
			// second request's (slightly later) deadline — it could then
			// acquire the slot with almost no budget left and time out with a
			// 504 instead of being refused with a 503.
			<-hold
			return nil
		},
	})
	body := map[string]any{"source": deadSrc, "opts": []string{"DCE"}, "no_cache": true}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		doJSON(t, s, "POST", "/v1/optimize", body)
	}()
	<-entered // the single slot is now held
	rec := doJSON(t, s, "POST", "/v1/optimize", body)
	close(hold)
	wg.Wait()
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("second request = %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if e := decodeAs[apiError](t, rec); e.Kind != "overloaded" {
		t.Fatalf("kind = %q, want overloaded", e.Kind)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("overload Retry-After = %q, want 1", ra)
	}
}

// TestSessionSweeper: an abandoned session is evicted by the background
// sweep without any request touching the store.
func TestSessionSweeper(t *testing.T) {
	s := newTestServer(t, Config{SessionTTL: 40 * time.Millisecond})
	rec := doJSON(t, s, "POST", "/v1/session", map[string]any{"source": deadSrc})
	if rec.Code != http.StatusCreated {
		t.Fatalf("session create = %d: %s", rec.Code, rec.Body.String())
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().SessionsEvicted.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweeper never evicted the idle session")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.Metrics().SessionsActive.Load(); got != 0 {
		t.Fatalf("SessionsActive = %d after sweep, want 0", got)
	}
}

// TestJobMetricsExposed: the jobs counters ride in both the JSON snapshot
// and the Prometheus rendering.
func TestJobMetricsExposed(t *testing.T) {
	s := newTestServer(t, Config{})
	v := submitJob(t, s, map[string]any{"source": deadSrc, "opts": []string{"DCE"}})
	waitJob(t, s, v.ID)
	snap := s.Metrics().Snapshot()
	jm, ok := snap["jobs"].(map[string]any)
	if !ok {
		t.Fatalf("snapshot has no jobs section: %v", snap)
	}
	if jm["submitted"].(int64) != 1 || jm["done"].(int64) != 1 {
		t.Fatalf("jobs section = %v", jm)
	}
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		`optd_jobs_submitted_total{dedup="new"} 1`,
		`optd_jobs_finished_total{state="done"} 1`,
		`optd_jobs_duration_seconds_count 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}
