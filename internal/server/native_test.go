package server

import (
	"context"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func requireToolchain(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode: skipping toolchain integration")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
}

// TestNativeEngineServesCompiled boots an auto-engine server, waits for the
// background built-in artifact build, and asserts requests flip from the
// interpreter to a compiled matcher — with byte-identical output, the
// engine named in both the response and the X-Optd-Engine header, and the
// telemetry counters moving.
func TestNativeEngineServesCompiled(t *testing.T) {
	requireToolchain(t)
	s := newTestServer(t, Config{Engine: EngineAuto, NativeDir: t.TempDir()})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	// Interpreted reference output for the same pipeline.
	ref := doJSON(t, s, "POST", "/v1/optimize",
		OptimizeRequest{Source: sampleSrc, Opts: []string{"CTP", "DCE"}, NoCache: true})
	if ref.Code != http.StatusOK {
		t.Fatalf("reference optimize = %d: %s", ref.Code, ref.Body.String())
	}
	refResp := decodeAs[OptimizeResponse](t, ref)

	deadline := time.Now().Add(2 * time.Minute)
	var resp OptimizeResponse
	for {
		rec := doJSON(t, s, "POST", "/v1/optimize",
			OptimizeRequest{Source: sampleSrc, Opts: []string{"CTP", "DCE"}, NoCache: true})
		if rec.Code != http.StatusOK {
			t.Fatalf("optimize = %d: %s", rec.Code, rec.Body.String())
		}
		resp = decodeAs[OptimizeResponse](t, rec)
		if resp.Engine != EngineInterp {
			if got := rec.Header().Get(EngineHeader); got != resp.Engine {
				t.Errorf("%s header = %q, body engine = %q", EngineHeader, got, resp.Engine)
			}
			break
		}
		if rec.Header().Get(EngineHeader) != EngineInterp {
			t.Errorf("interpreted response carries %s = %q", EngineHeader, rec.Header().Get(EngineHeader))
		}
		if time.Now().After(deadline) {
			t.Fatal("native artifact never became servable")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if resp.Engine != "compiled-plugin" && resp.Engine != "compiled-subprocess" {
		t.Fatalf("engine = %q, want compiled-*", resp.Engine)
	}
	if resp.MiniF != refResp.MiniF || resp.IR != refResp.IR {
		t.Errorf("compiled and interpreted outputs differ\n--- compiled ---\n%s--- interp ---\n%s", resp.IR, refResp.IR)
	}
	if len(resp.Applications) != len(refResp.Applications) {
		t.Fatalf("pass results: compiled %d, interp %d", len(resp.Applications), len(refResp.Applications))
	}
	for i := range resp.Applications {
		if resp.Applications[i].Name != refResp.Applications[i].Name ||
			resp.Applications[i].Applications != refResp.Applications[i].Applications {
			t.Errorf("pass %d: compiled %+v, interp %+v", i, resp.Applications[i], refResp.Applications[i])
		}
	}

	// The jobs path rides the same selection layer: a batch job submitted
	// now must be served by a compiled matcher too.
	sub := doJSON(t, s, "POST", "/v1/jobs",
		JobSubmitRequest{OptimizeRequest: OptimizeRequest{Source: deadSrc, Opts: []string{"DCE"}, NoCache: true}})
	if sub.Code != http.StatusAccepted {
		t.Fatalf("job submit = %d: %s", sub.Code, sub.Body.String())
	}
	jv := decodeAs[JobView](t, sub)
	_ = doJSON(t, s, "GET", "/v1/jobs/"+jv.ID+"?wait=1", nil) // long-poll to terminal
	res := doJSON(t, s, "GET", "/v1/jobs/"+jv.ID+"/result", nil)
	if res.Code != http.StatusOK {
		t.Fatalf("job result = %d: %s", res.Code, res.Body.String())
	}
	jobResp := decodeAs[OptimizeResponse](t, res)
	if jobResp.Engine != resp.Engine {
		t.Errorf("job engine = %q, optimize engine = %q", jobResp.Engine, resp.Engine)
	}

	m := s.Metrics()
	if m.NativeServedPlugin.Load()+m.NativeServedSubprocess.Load() == 0 {
		t.Error("no native serve counted")
	}
	if m.NativeFallbacks.Load() == 0 {
		t.Error("pre-artifact requests were not counted as fallbacks")
	}
	snap := m.Snapshot()
	if _, ok := snap["native"]; !ok {
		t.Error("metrics snapshot has no native section")
	}
	if _, ok := snap["native"].(map[string]any)["loaded"].(map[string]string); !ok {
		t.Error("native snapshot has no loaded gauge")
	}
}

// TestNativeFallbackWhenCacheUnavailable points the auto engine at an
// uncreatable cache dir: the server must come up and serve interpreted.
func TestNativeFallbackWhenCacheUnavailable(t *testing.T) {
	parent := t.TempDir()
	if err := os.Chmod(parent, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = os.Chmod(parent, 0o755) })
	dir := filepath.Join(parent, "cache")
	if _, err := os.Stat(dir); err == nil {
		t.Skip("running as a user that ignores directory permissions")
	}
	if err := os.Mkdir(dir, 0o755); err == nil {
		t.Skip("running as a user that ignores directory permissions")
	}

	s := newTestServer(t, Config{Engine: EngineAuto, NativeDir: dir})
	defer func() { _ = s.Shutdown(context.Background()) }()
	rec := doJSON(t, s, "POST", "/v1/optimize",
		OptimizeRequest{Source: sampleSrc, Opts: []string{"CTP"}, NoCache: true})
	if rec.Code != http.StatusOK {
		t.Fatalf("optimize = %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(EngineHeader); got != EngineInterp {
		t.Errorf("%s = %q, want %q", EngineHeader, got, EngineInterp)
	}
	if s.native != nil {
		t.Error("native layer active despite unusable cache dir")
	}
}

// TestEngineCompiledRequiresArtifact asserts the strict mode fails
// construction when the artifact cache cannot exist, instead of silently
// serving interpreted.
func TestEngineCompiledRequiresArtifact(t *testing.T) {
	parent := t.TempDir()
	if err := os.Chmod(parent, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = os.Chmod(parent, 0o755) })
	dir := filepath.Join(parent, "cache")
	if err := os.Mkdir(dir, 0o755); err == nil {
		t.Skip("running as a user that ignores directory permissions")
	}
	if _, err := New(Config{Engine: EngineCompiled, NativeDir: dir}); err == nil {
		t.Fatal("New accepted engine=compiled with an unusable cache dir")
	}
}

// TestEngineConfigValidation rejects unknown engine names at construction.
func TestEngineConfigValidation(t *testing.T) {
	if _, err := New(Config{Engine: "turbo"}); err == nil {
		t.Fatal("New accepted engine=turbo")
	}
	for _, ok := range []string{"", EngineInterp, EngineAuto} {
		if !ValidEngine(ok) {
			t.Errorf("ValidEngine(%q) = false", ok)
		}
	}
	if ValidEngine("turbo") {
		t.Error("ValidEngine(turbo) = true")
	}
}
