package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/dep"
	"repro/internal/engine"
	"repro/internal/frontend"
	"repro/internal/gospel"
	"repro/internal/obs"
	"repro/internal/specs"
	"repro/ir"
	"repro/optlib"
)

// session is one interactive constructor session: the paper's Step 3.b.iii
// interface (select optimizations, application points and orderings,
// override dependence restrictions, choose whether dependences are
// recomputed) held server-side across requests. The session owns its
// program's change journal and keeps the dependence graph synchronized
// incrementally, exactly as the interactive CLI does.
type session struct {
	mu        sync.Mutex
	id        string
	prog      *ir.Program
	graph     *dep.Graph
	log       *ir.ChangeLog
	recompute bool
	maxIter   int
	// skipped maps optimization name → the point signatures the user asked
	// to pass over; applyall honours them.
	skipped map[string]map[string]bool
	applied []engine.Application
	created time.Time
	lastUse time.Time
	// optimizers caches compiled specs per session (cost counters and the
	// recompute toggle are per-session state, so no cross-session sharing).
	optimizers map[string]*engine.Optimizer
	// stats receives per-pass observability counters from every optimizer
	// this session compiles (wired to the store's process-wide Metrics).
	stats func(obs.PassStats)
}

// sync consumes the change journal into the dependence graph.
func (sn *session) sync() {
	if cs := sn.log.Changes(); len(cs) > 0 {
		sn.graph.Update(cs)
	}
	sn.log.Reset()
}

// optimizer compiles (or returns the cached) engine for a built-in name
// under the session's current toggles.
func (sn *session) optimizer(name string) (*engine.Optimizer, error) {
	name = strings.ToUpper(strings.TrimSpace(name))
	src, ok := specs.Sources[name]
	if !ok {
		return nil, failf(http.StatusBadRequest, "unknown_optimization",
			"unknown optimization %q (have %s)", name, strings.Join(specs.Names(), ", "))
	}
	if o, ok := sn.optimizers[name]; ok {
		return o, nil
	}
	spec, err := gospel.ParseAndCheck(name, src)
	if err != nil {
		return nil, failf(http.StatusInternalServerError, "internal", "built-in %s failed to parse: %v", name, err)
	}
	opts := []engine.Option{}
	if sn.stats != nil {
		opts = append(opts, engine.WithPassStats(sn.stats))
	}
	if sn.maxIter > 0 {
		opts = append(opts, engine.WithMaxApplications(sn.maxIter))
	}
	o, err := engine.Compile(spec, opts...)
	if err != nil {
		return nil, failf(http.StatusInternalServerError, "internal", "built-in %s failed to compile: %v", name, err)
	}
	sn.optimizers[name] = o
	return o, nil
}

// points lists the session's candidate application points for an
// optimization, pattern-only when override is set.
func (sn *session) points(name string, override bool) (string, []engine.Env, error) {
	o, err := sn.optimizer(name)
	if err != nil {
		return "", nil, err
	}
	sn.sync()
	if override {
		return o.Name(), o.PreconditionsPatternOnly(sn.prog, sn.graph), nil
	}
	return o.Name(), o.Preconditions(sn.prog, sn.graph), nil
}

// sessionStore holds live sessions with a count bound and idle TTL.
// Eviction happens on access and from a periodic background sweep, so
// sessions abandoned by clients that never come back are still collected
// (and their programs freed) on an idle daemon.
type sessionStore struct {
	mu      sync.Mutex
	max     int
	ttl     time.Duration
	m       map[string]*session
	metrics *Metrics

	stopOnce  sync.Once
	stop      chan struct{}
	sweepDone chan struct{}
}

func newSessionStore(max int, ttl time.Duration, m *Metrics) *sessionStore {
	st := &sessionStore{
		max: max, ttl: ttl, m: map[string]*session{}, metrics: m,
		stop: make(chan struct{}), sweepDone: make(chan struct{}),
	}
	go st.sweep()
	return st
}

// sweep evicts idle sessions on a timer until close. The interval tracks
// the TTL (so an expired session lingers at most ~25% past it) with floors
// and ceilings keeping test-scale TTLs responsive and production TTLs from
// sweeping too rarely.
func (st *sessionStore) sweep() {
	defer close(st.sweepDone)
	interval := st.ttl / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > 5*time.Minute {
		interval = 5 * time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-st.stop:
			return
		case <-t.C:
			st.mu.Lock()
			st.evictLocked(time.Now())
			st.mu.Unlock()
		}
	}
}

func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: session id entropy unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// evictLocked drops sessions idle past the TTL; called with st.mu held.
func (st *sessionStore) evictLocked(now time.Time) {
	for id, sn := range st.m {
		if now.Sub(sn.lastUse) > st.ttl {
			delete(st.m, id)
			st.metrics.SessionsEvicted.Add(1)
			st.metrics.SessionsActive.Add(-1)
		}
	}
}

// create parses the source and registers a new session.
func (st *sessionStore) create(source string, maxIter int) (*session, error) {
	prog, err := frontend.Parse(source)
	if err != nil {
		return nil, failf(http.StatusUnprocessableEntity, "parse_error", "%v", err)
	}
	log, _ := prog.EnsureLog()
	now := time.Now()
	sn := &session{
		id:         newSessionID(),
		prog:       prog,
		graph:      dep.Compute(prog),
		log:        log,
		recompute:  true,
		maxIter:    maxIter,
		skipped:    map[string]map[string]bool{},
		created:    now,
		lastUse:    now,
		optimizers: map[string]*engine.Optimizer{},
		stats:      st.metrics.PassObserved,
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.evictLocked(now)
	if len(st.m) >= st.max {
		return nil, failf(http.StatusServiceUnavailable, "session_limit",
			"session limit (%d) reached; delete a session or retry later", st.max)
	}
	st.m[sn.id] = sn
	st.metrics.SessionsCreated.Add(1)
	st.metrics.SessionsActive.Add(1)
	return sn, nil
}

// get returns a live session, refreshing its idle clock.
func (st *sessionStore) get(id string) (*session, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := time.Now()
	st.evictLocked(now)
	sn, ok := st.m[id]
	if !ok {
		return nil, failf(http.StatusNotFound, "no_session", "no session %q (expired or never created)", id)
	}
	sn.lastUse = now
	return sn, nil
}

// delete removes a session, reporting whether it existed.
func (st *sessionStore) delete(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.m[id]; !ok {
		return false
	}
	delete(st.m, id)
	st.metrics.SessionsActive.Add(-1)
	return true
}

// close stops the sweeper and drops every session (graceful shutdown).
// Safe to call more than once.
func (st *sessionStore) close() {
	st.stopOnce.Do(func() { close(st.stop) })
	<-st.sweepDone
	st.mu.Lock()
	defer st.mu.Unlock()
	st.metrics.SessionsActive.Add(-int64(len(st.m)))
	st.m = map[string]*session{}
}

// --- session handlers ---

// SessionCreateRequest is the body of POST /v1/session.
type SessionCreateRequest struct {
	Source string `json:"source"`
	// MaxIterations caps applyall per pass; 0 selects the server default.
	MaxIterations int `json:"max_iterations,omitempty"`
}

// SessionInfo describes a session's current state.
type SessionInfo struct {
	ID           string   `json:"id"`
	Statements   int      `json:"statements"`
	Recompute    bool     `json:"recompute"`
	Applications []string `json:"applications"`
	Opts         []string `json:"opts"`
}

func (sn *session) info() SessionInfo {
	apps := make([]string, len(sn.applied))
	for i, a := range sn.applied {
		apps[i] = fmt.Sprintf("%s@%s", a.Spec, a.Signature)
	}
	return SessionInfo{
		ID:           sn.id,
		Statements:   sn.prog.Len(),
		Recompute:    sn.recompute,
		Applications: apps,
		Opts:         specs.Names(),
	}
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) error {
	var req SessionCreateRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	if strings.TrimSpace(req.Source) == "" {
		return failf(http.StatusBadRequest, "bad_request", "request needs a MiniF program in source")
	}
	maxIter := req.MaxIterations
	if maxIter <= 0 {
		maxIter = s.cfg.MaxIterations
	}
	sn, err := s.sessions.create(req.Source, maxIter)
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusCreated, sn.info())
	return nil
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) error {
	sn, err := s.sessions.get(r.PathValue("id"))
	if err != nil {
		return err
	}
	sn.mu.Lock()
	defer sn.mu.Unlock()
	writeJSON(w, http.StatusOK, sn.info())
	return nil
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) error {
	if !s.sessions.delete(r.PathValue("id")) {
		return failf(http.StatusNotFound, "no_session", "no session %q", r.PathValue("id"))
	}
	w.WriteHeader(http.StatusNoContent)
	return nil
}

// SessionPoint is one candidate application point.
type SessionPoint struct {
	// Index is the 1-based position used by apply/skip.
	Index int `json:"index"`
	// Bindings maps element variables to their bound values (S3, L7, ...).
	Bindings map[string]string `json:"bindings"`
	// Signature is the point's stable identity.
	Signature string `json:"signature"`
	// Skipped reports whether the user asked applyall to pass this over.
	Skipped bool `json:"skipped"`
}

// SessionPointsResponse is the body of GET /v1/session/{id}/points.
type SessionPointsResponse struct {
	Opt    string         `json:"opt"`
	Points []SessionPoint `json:"points"`
	// Override reports pattern-only matching (dependence checks skipped).
	Override bool `json:"override"`
}

func renderEnv(env engine.Env) map[string]string {
	out := make(map[string]string, len(env))
	keys := make([]string, 0, len(env))
	for k := range env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out[k] = env[k].String()
	}
	return out
}

func (s *Server) handleSessionPoints(w http.ResponseWriter, r *http.Request) error {
	sn, err := s.sessions.get(r.PathValue("id"))
	if err != nil {
		return err
	}
	optName := r.URL.Query().Get("opt")
	if optName == "" {
		return failf(http.StatusBadRequest, "bad_request", "points needs ?opt=NAME")
	}
	override := r.URL.Query().Get("override") != ""
	sn.mu.Lock()
	defer sn.mu.Unlock()
	name, pts, err := sn.points(optName, override)
	if err != nil {
		return err
	}
	resp := SessionPointsResponse{Opt: name, Override: override, Points: make([]SessionPoint, len(pts))}
	for i, env := range pts {
		sig := engine.Signature(env)
		resp.Points[i] = SessionPoint{
			Index:     i + 1,
			Bindings:  renderEnv(env),
			Signature: sig,
			Skipped:   sn.skipped[name][sig],
		}
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// SessionApplyRequest is the body of apply and skip.
type SessionApplyRequest struct {
	Opt string `json:"opt"`
	// Point is the 1-based index from the points listing; 0 means the first
	// eligible (non-skipped) point.
	Point int `json:"point,omitempty"`
	// Override applies at a pattern-only point, skipping dependence
	// restrictions (the paper's per-point override).
	Override bool `json:"override,omitempty"`
}

// SessionApplyResponse reports one apply or skip.
type SessionApplyResponse struct {
	Opt       string `json:"opt"`
	Signature string `json:"signature"`
	Applied   bool   `json:"applied"`
	Skipped   bool   `json:"skipped"`
}

// pickPoint resolves a 1-based index (or first-eligible for 0) against the
// current candidate list.
func (sn *session) pickPoint(name string, pts []engine.Env, idx int) (engine.Env, error) {
	if idx == 0 {
		for _, env := range pts {
			if !sn.skipped[name][engine.Signature(env)] {
				return env, nil
			}
		}
		return nil, failf(http.StatusConflict, "no_point", "no eligible application point for %s", name)
	}
	if idx < 1 || idx > len(pts) {
		return nil, failf(http.StatusConflict, "no_point", "point %d of %d not available for %s", idx, len(pts), name)
	}
	return pts[idx-1], nil
}

func (s *Server) handleSessionApply(w http.ResponseWriter, r *http.Request) error {
	sn, err := s.sessions.get(r.PathValue("id"))
	if err != nil {
		return err
	}
	var req SessionApplyRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	sn.mu.Lock()
	defer sn.mu.Unlock()
	name, pts, err := sn.points(req.Opt, req.Override)
	if err != nil {
		return err
	}
	o := sn.optimizers[name]
	env, err := sn.pickPoint(name, pts, req.Point)
	if err != nil {
		return err
	}
	sig := engine.Signature(env)
	if err := o.ApplyAt(sn.prog, sn.graph, env); err != nil {
		return failf(http.StatusConflict, "apply_failed", "%s at %s: %v", name, sig, err)
	}
	sn.sync()
	sn.applied = append(sn.applied, engine.Application{Spec: name, Signature: sig})
	writeJSON(w, http.StatusOK, SessionApplyResponse{Opt: name, Signature: sig, Applied: true})
	return nil
}

func (s *Server) handleSessionSkip(w http.ResponseWriter, r *http.Request) error {
	sn, err := s.sessions.get(r.PathValue("id"))
	if err != nil {
		return err
	}
	var req SessionApplyRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	sn.mu.Lock()
	defer sn.mu.Unlock()
	name, pts, err := sn.points(req.Opt, req.Override)
	if err != nil {
		return err
	}
	env, err := sn.pickPoint(name, pts, req.Point)
	if err != nil {
		return err
	}
	sig := engine.Signature(env)
	if sn.skipped[name] == nil {
		sn.skipped[name] = map[string]bool{}
	}
	sn.skipped[name][sig] = true
	writeJSON(w, http.StatusOK, SessionApplyResponse{Opt: name, Signature: sig, Skipped: true})
	return nil
}

// SessionApplyAllResponse reports a fixpoint run inside a session.
type SessionApplyAllResponse struct {
	Opt          string `json:"opt"`
	Applications int    `json:"applications"`
}

func (s *Server) handleSessionApplyAll(w http.ResponseWriter, r *http.Request) error {
	sn, err := s.sessions.get(r.PathValue("id"))
	if err != nil {
		return err
	}
	var req SessionApplyRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	sn.mu.Lock()
	defer sn.mu.Unlock()
	o, err := sn.optimizer(req.Opt)
	if err != nil {
		return err
	}
	name := o.Name()
	// The session's own fixpoint loop: engine.ApplyAll cannot honour the
	// user's skipped points, so drive Preconditions + ApplyAt directly,
	// respecting the recompute toggle between applications.
	seen := map[string]bool{}
	for sig := range sn.skipped[name] {
		seen[sig] = true
	}
	max := sn.maxIter
	if max <= 0 {
		max = optlib.DefaultMaxIterations
	}
	applied := 0
	sn.sync()
	for {
		if err := r.Context().Err(); err != nil {
			return s.classify(err, name, applied)
		}
		if sn.recompute {
			sn.sync()
		}
		var chosen engine.Env
		found := false
		for _, env := range o.Preconditions(sn.prog, sn.graph) {
			if sig := engine.Signature(env); !seen[sig] {
				chosen, found = env, true
				break
			}
		}
		if !found {
			break
		}
		if applied >= max {
			return s.classify(optlib.ErrIterationLimit, name, applied)
		}
		sig := engine.Signature(chosen)
		seen[sig] = true
		if err := o.ApplyAt(sn.prog, sn.graph, chosen); err != nil {
			continue // rolled back in place; try the next point
		}
		if sn.recompute {
			sn.sync()
		}
		applied++
		sn.applied = append(sn.applied, engine.Application{Spec: name, Signature: sig})
	}
	sn.sync()
	writeJSON(w, http.StatusOK, SessionApplyAllResponse{Opt: name, Applications: applied})
	return nil
}

// SessionRecomputeRequest toggles dependence recomputation.
type SessionRecomputeRequest struct {
	Enabled bool `json:"enabled"`
}

func (s *Server) handleSessionRecompute(w http.ResponseWriter, r *http.Request) error {
	sn, err := s.sessions.get(r.PathValue("id"))
	if err != nil {
		return err
	}
	var req SessionRecomputeRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	sn.mu.Lock()
	defer sn.mu.Unlock()
	sn.recompute = req.Enabled
	writeJSON(w, http.StatusOK, map[string]bool{"recompute": sn.recompute})
	return nil
}

// SessionResultResponse is the session's current program.
type SessionResultResponse struct {
	MiniF        string   `json:"minif"`
	IR           string   `json:"ir"`
	Applications []string `json:"applications"`
}

func (s *Server) handleSessionResult(w http.ResponseWriter, r *http.Request) error {
	sn, err := s.sessions.get(r.PathValue("id"))
	if err != nil {
		return err
	}
	sn.mu.Lock()
	defer sn.mu.Unlock()
	apps := make([]string, len(sn.applied))
	for i, a := range sn.applied {
		apps[i] = fmt.Sprintf("%s@%s", a.Spec, a.Signature)
	}
	writeJSON(w, http.StatusOK, SessionResultResponse{
		MiniF:        ir.ToMiniF(sn.prog),
		IR:           sn.prog.String(),
		Applications: apps,
	})
	return nil
}
