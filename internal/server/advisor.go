package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/advisor"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Order directive values for OptimizeRequest.Order (and ?order=). Anything
// else is treated as an explicit comma-separated pass order.
const (
	// OrderDefault runs the opts in the order the request lists them — the
	// behavior of requests that carry no directive at all, but stamped into
	// the response so callers comparing against auto see both decisions.
	OrderDefault = "default"
	// OrderAuto asks the pass-ordering advisor: retrieve the k nearest
	// historical programs by feature geometry and run the order that served
	// them best, falling back to the default order when history is thin.
	OrderAuto = "auto"
)

// OrderHeader is the response header naming the effective pass order
// (comma-separated) whenever the request carried an order directive. It
// mirrors X-Optd-Engine: the decision is visible without parsing the body,
// including on cached replays.
const OrderHeader = "X-Optd-Order"

// setOrderHeader stamps the effective pass order; no directive, no header.
func setOrderHeader(w http.ResponseWriter, order []string) {
	if len(order) > 0 {
		w.Header().Set(OrderHeader, strings.Join(order, ","))
	}
}

// samePermutation reports whether a and b contain the same names (as sets
// with multiplicity).
func samePermutation(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	count := make(map[string]int, len(a))
	for _, n := range a {
		count[n]++
	}
	for _, n := range b {
		count[n]--
		if count[n] < 0 {
			return false
		}
	}
	return true
}

// resolveOrder applies the request's order directive before any other work:
// it canonicalizes req.Opts, rewrites it to the effective pass order, and
// normalizes req.Order — both feed the content-address cache key, which is
// how auto- and default-ordered requests for the same program stay distinct
// cache entries. The returned slice is the order to stamp into the response
// (nil when the request carried no directive). A non-nil tracer gets one
// "advisor" span per auto decision; a traced ctx additionally gets an
// "advisor.choose" span in the distributed trace.
func (s *Server) resolveOrder(ctx context.Context, req *OptimizeRequest, tracer *obs.Tracer) ([]string, error) {
	directive := strings.TrimSpace(req.Order)
	if directive == "" {
		req.Order = ""
		return nil, nil
	}
	names, err := canonOpts(req.Opts)
	if err != nil {
		return nil, err
	}
	req.Opts = names
	switch strings.ToLower(directive) {
	case OrderDefault:
		req.Order = OrderDefault
		if len(req.Opts) == 0 {
			return nil, failf(http.StatusBadRequest, "bad_request",
				"order=default needs at least one optimization in opts")
		}
		s.metrics.AdvisorDefault.Add(1)
		return append([]string(nil), req.Opts...), nil
	case OrderAuto:
		req.Order = OrderAuto
		if len(req.Opts) == 0 {
			return nil, failf(http.StatusBadRequest, "bad_request",
				"order=auto needs at least one optimization in opts")
		}
		if len(req.Specs) > 0 {
			// History is keyed by the built-in optimization set; a run mixing
			// in inline specs is not comparable to anything stored.
			return nil, failf(http.StatusBadRequest, "bad_request",
				"order=auto cannot be combined with inline specs")
		}
		span := tracer.Start("advisor", obs.String("directive", OrderAuto))
		dsp, _ := trace.Start(ctx, "advisor.choose")
		d, dur, cerr := s.advisor.Choose(req.Source, req.Opts)
		s.metrics.AdvisorRetrieval.Observe(dur)
		dsp.Set("neighbors", strconv.Itoa(d.Neighbors))
		if cerr != nil || d.Fallback {
			// Thin history (or a source the featurizer cannot parse — the
			// pipeline will report that identically in a moment): run the
			// default order rather than fail. The advisor recommends, never
			// degrades.
			s.metrics.AdvisorFallback.Add(1)
			span.Set("decision", "fallback")
			span.Set("neighbors", int64(d.Neighbors))
			span.End()
			dsp.Set("decision", "fallback")
			dsp.End()
			return append([]string(nil), req.Opts...), nil
		}
		s.metrics.AdvisorAuto.Add(1)
		req.Opts = append([]string(nil), d.Order...)
		span.Set("decision", "retrieved")
		span.Set("neighbors", int64(d.Neighbors))
		span.Set("order", strings.Join(d.Order, ","))
		span.End()
		dsp.Set("decision", "retrieved")
		dsp.Set("order", strings.Join(d.Order, ","))
		dsp.End()
		return append([]string(nil), d.Order...), nil
	default:
		order, err := canonOpts(strings.Split(directive, ","))
		if err != nil {
			return nil, err
		}
		if len(order) == 0 {
			return nil, failf(http.StatusBadRequest, "bad_request",
				"order %q names no optimizations", directive)
		}
		if len(req.Opts) > 0 && !samePermutation(order, req.Opts) {
			return nil, failf(http.StatusBadRequest, "bad_request",
				"order %s must be a permutation of opts %s",
				strings.Join(order, ","), strings.Join(req.Opts, ","))
		}
		req.Opts = order
		req.Order = strings.Join(order, ",")
		s.metrics.AdvisorExplicit.Add(1)
		return append([]string(nil), order...), nil
	}
}

// harvestOptimize feeds one successful, freshly computed optimize run into
// the advisor's outcome store. Cached replays carry no new evidence; runs
// with inline specs are not comparable to the built-in-opts history; both
// are skipped. The enqueue never blocks the request path.
func (s *Server) harvestOptimize(req *OptimizeRequest, resp *OptimizeResponse) {
	if s.advisor == nil || resp.Cached || len(req.Opts) == 0 || len(req.Specs) > 0 {
		return
	}
	applied := 0
	for _, pr := range resp.Applications {
		applied += pr.Applications
	}
	s.advisor.Harvest(advisor.Outcome{
		Source:  req.Source,
		Opts:    req.Opts,
		Order:   req.Opts,
		Applied: applied,
		WallUS:  resp.TotalUS,
		Engine:  resp.Engine,
	})
}

// jobCompleted is the jobs.Obs.Completed hook. It runs under the manager
// lock, so it only hands the snapshot to a goroutine; the decode and the
// advisor enqueue happen off the lock.
func (s *Server) jobCompleted(j *jobs.Job) {
	go s.harvestJob(j)
}

func (s *Server) harvestJob(j *jobs.Job) {
	var req JobSubmitRequest
	if json.Unmarshal(j.Payload, &req) != nil {
		return
	}
	var resp OptimizeResponse
	if json.Unmarshal(j.Result, &resp) != nil {
		return
	}
	s.harvestOptimize(&req.OptimizeRequest, &resp)
}

// advisorObs adapts the counter set to the advisor's telemetry hooks.
func (m *Metrics) advisorObs() advisor.Obs {
	return advisor.Obs{
		Harvested: func() { m.AdvisorHarvested.Add(1) },
		Dropped:   func() { m.AdvisorDropped.Add(1) },
		StoreSize: func(n int) { m.AdvisorStoreRecords.Store(int64(n)) },
	}
}
