package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Trace query API.
//
//	GET /v1/traces               — list locally retained fragments, filtered
//	GET /v1/traces/{id}          — one trace's span forest, merged cluster-wide
//	GET /v1/traces/{id}?local=1  — this node's spans only (the fan-out leg)
//
// Listing is local by design: each node's tail sampler keeps its own window
// and the deterministic 1-in-N hash means a sampled trace is retained on
// every node it touched, so any node's listing is a faithful sample. Fetch
// by ID is where cross-node assembly matters — a forwarded request or a job
// leaves fragments on several nodes — so the get handler fans out to every
// up peer and merges the spans into one forest.

// TraceResponse is the GET /v1/traces/{id} body: the flat span list,
// reassembled into a forest by the client through parent links.
type TraceResponse struct {
	TraceID string        `json:"trace_id"`
	Spans   []*trace.Span `json:"spans"`
}

// TraceListResponse is the GET /v1/traces body.
type TraceListResponse struct {
	Traces []trace.Summary `json:"traces"`
}

func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) error {
	if s.traces == nil {
		return failf(http.StatusNotFound, "tracing_disabled", "trace store is disabled (-trace-store < 0)")
	}
	q := r.URL.Query()
	query := trace.Query{
		Route:      q.Get("route"),
		Engine:     q.Get("engine"),
		Order:      q.Get("order"),
		ErrorsOnly: q.Get("error") == "1",
	}
	if v := q.Get("status"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return failf(http.StatusBadRequest, "bad_param", "status: %v", err)
		}
		query.Status = n
	}
	if v := q.Get("min_duration_ms"); v != "" {
		n, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return failf(http.StatusBadRequest, "bad_param", "min_duration_ms: %v", err)
		}
		query.MinDur = time.Duration(n * float64(time.Millisecond))
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return failf(http.StatusBadRequest, "bad_param", "limit must be a positive integer")
		}
		query.Limit = n
	}
	list := s.traces.List(query)
	if list == nil {
		list = []trace.Summary{}
	}
	writeJSON(w, http.StatusOK, TraceListResponse{Traces: list})
	return nil
}

func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) error {
	if s.traces == nil {
		return failf(http.StatusNotFound, "tracing_disabled", "trace store is disabled (-trace-store < 0)")
	}
	id := r.PathValue("id")
	spans := s.traces.Get(id)
	if r.URL.Query().Get("local") != "1" {
		spans = s.mergePeerSpans(r, id, spans)
	}
	if len(spans) == 0 {
		return failf(http.StatusNotFound, "not_found", "no such trace %q on any reachable node", id)
	}
	writeJSON(w, http.StatusOK, TraceResponse{TraceID: id, Spans: spans})
	return nil
}

// mergePeerSpans fans the trace fetch out to every up peer (local=1 stops
// the recursion) and merges their fragments with ours, deduplicating by
// span ID — the submitter and the owner may both hold a copy of a sticky
// fragment. Peer errors degrade to a partial trace, never a failed request:
// a trace query during a partition should show what this side knows.
func (s *Server) mergePeerSpans(r *http.Request, id string, local []*trace.Span) []*trace.Span {
	if s.cluster == nil {
		return local
	}
	seen := make(map[string]bool, len(local))
	for _, sp := range local {
		seen[sp.SpanID] = true
	}
	out := local
	for _, peer := range s.cluster.Peers() {
		if peer == s.cluster.Self() || !s.cluster.Up(peer) {
			continue
		}
		u := "http://" + peer + "/v1/traces/" + id + "?local=1"
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, u, nil)
		if err != nil {
			continue
		}
		resp, err := s.cluster.Client().Do(req)
		if err != nil {
			obs.LoggerFrom(r.Context()).Warn("trace fan-out failed", "peer", peer, "err", err)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			continue
		}
		var tr TraceResponse
		err = json.NewDecoder(resp.Body).Decode(&tr)
		resp.Body.Close()
		if err != nil {
			obs.LoggerFrom(r.Context()).Warn("trace fan-out decode failed", "peer", peer, "err", err)
			continue
		}
		for _, sp := range tr.Spans {
			if sp == nil || seen[sp.SpanID] {
				continue
			}
			seen[sp.SpanID] = true
			out = append(out, sp)
		}
	}
	trace.SortSpans(out)
	return out
}
