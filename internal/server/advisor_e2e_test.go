package server

import (
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/advisor"
	"repro/internal/frontend"
	"repro/internal/interp"
	"repro/internal/proggen"
	"repro/ir"
)

func TestOptimizeOrderAutoColdFallback(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := doJSON(t, s, "POST", "/v1/optimize",
		OptimizeRequest{Source: sampleSrc, Opts: []string{"CTP", "DCE"}, Order: "auto"})
	if rec.Code != http.StatusOK {
		t.Fatalf("order=auto on a cold store = %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeAs[OptimizeResponse](t, rec)
	if !reflect.DeepEqual(resp.Order, []string{"CTP", "DCE"}) {
		t.Fatalf("cold fallback order = %v, want the default [CTP DCE]", resp.Order)
	}
	if got := rec.Header().Get(OrderHeader); got != "CTP,DCE" {
		t.Fatalf("%s = %q, want CTP,DCE", OrderHeader, got)
	}
	if s.Metrics().AdvisorFallback.Load() != 1 {
		t.Fatalf("fallback counter = %d, want 1", s.Metrics().AdvisorFallback.Load())
	}
	if s.Metrics().AdvisorAuto.Load() != 0 {
		t.Fatalf("auto counter = %d, want 0", s.Metrics().AdvisorAuto.Load())
	}
}

func TestOptimizeOrderValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  OptimizeRequest
	}{
		{"auto without opts", OptimizeRequest{Source: sampleSrc, Order: "auto"}},
		{"auto with inline specs", OptimizeRequest{Source: sampleSrc, Opts: []string{"DCE"},
			Specs: []SpecText{{Name: "X", Text: "bogus"}}, Order: "auto"}},
		{"unknown pass name", OptimizeRequest{Source: sampleSrc, Opts: []string{"DCE"}, Order: "DCE,NOPE"}},
		{"not a permutation", OptimizeRequest{Source: sampleSrc, Opts: []string{"CTP", "DCE"}, Order: "DCE,ICM"}},
		{"default without opts", OptimizeRequest{Source: sampleSrc, Order: "default"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := doJSON(t, s, "POST", "/v1/optimize", tc.req)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("code = %d, want 400: %s", rec.Code, rec.Body.String())
			}
		})
	}
}

func TestOptimizeOrderExplicit(t *testing.T) {
	s := newTestServer(t, Config{})
	// Explicit order permutes opts; lowercase and whitespace are forgiven.
	rec := doJSON(t, s, "POST", "/v1/optimize",
		OptimizeRequest{Source: sampleSrc, Opts: []string{"CTP", "DCE"}, Order: " dce, ctp "})
	if rec.Code != http.StatusOK {
		t.Fatalf("explicit order = %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeAs[OptimizeResponse](t, rec)
	if !reflect.DeepEqual(resp.Order, []string{"DCE", "CTP"}) {
		t.Fatalf("order = %v, want [DCE CTP]", resp.Order)
	}
	if len(resp.Applications) != 2 || resp.Applications[0].Name != "DCE" || resp.Applications[1].Name != "CTP" {
		t.Fatalf("passes did not run in the explicit order: %+v", resp.Applications)
	}
	// An order with no opts at all defines the opts list.
	rec = doJSON(t, s, "POST", "/v1/optimize",
		OptimizeRequest{Source: sampleSrc, Order: "CTP,DCE"})
	if rec.Code != http.StatusOK {
		t.Fatalf("order-defines-opts = %d: %s", rec.Code, rec.Body.String())
	}
	// The ?order= query parameter overrides the body field.
	rec = doJSON(t, s, "POST", "/v1/optimize?order=default",
		OptimizeRequest{Source: sampleSrc, Opts: []string{"CTP", "DCE"}, Order: "auto"})
	if rec.Code != http.StatusOK {
		t.Fatalf("query override = %d: %s", rec.Code, rec.Body.String())
	}
	if s.Metrics().AdvisorDefault.Load() != 1 {
		t.Fatal("query ?order=default did not override the body directive")
	}
}

// TestOptimizeOrderCacheKey is the satellite fix: requests differing only in
// their order directive must not collide in the result cache, and cached
// replays must reproduce the original order stamp (header and body).
func TestOptimizeOrderCacheKey(t *testing.T) {
	s := newTestServer(t, Config{})
	plain := OptimizeRequest{Source: sampleSrc, Opts: []string{"CTP", "DCE"}}
	stamped := OptimizeRequest{Source: sampleSrc, Opts: []string{"CTP", "DCE"}, Order: "default"}

	rec := doJSON(t, s, "POST", "/v1/optimize", plain)
	if rec.Code != http.StatusOK || decodeAs[OptimizeResponse](t, rec).Cached {
		t.Fatalf("priming request failed or was cached: %d", rec.Code)
	}
	// Same program, same opts, now with a directive: must MISS (the plain
	// entry has no order stamp) and come back stamped.
	rec = doJSON(t, s, "POST", "/v1/optimize", stamped)
	resp := decodeAs[OptimizeResponse](t, rec)
	if resp.Cached {
		t.Fatal("directive request collided with the directive-free cache entry")
	}
	if !reflect.DeepEqual(resp.Order, []string{"CTP", "DCE"}) {
		t.Fatalf("stamped order = %v", resp.Order)
	}
	// Replay of the stamped request: HIT, and the stamp survives — body and
	// header both.
	rec = doJSON(t, s, "POST", "/v1/optimize", stamped)
	resp = decodeAs[OptimizeResponse](t, rec)
	if !resp.Cached {
		t.Fatal("identical stamped request did not hit the cache")
	}
	if !reflect.DeepEqual(resp.Order, []string{"CTP", "DCE"}) {
		t.Fatalf("cached replay lost the order stamp: %v", resp.Order)
	}
	if got := rec.Header().Get(OrderHeader); got != "CTP,DCE" {
		t.Fatalf("cached replay %s = %q, want CTP,DCE", OrderHeader, got)
	}
	// Different effective order, same opt set: also a distinct entry.
	rec = doJSON(t, s, "POST", "/v1/optimize",
		OptimizeRequest{Source: sampleSrc, Opts: []string{"CTP", "DCE"}, Order: "DCE,CTP"})
	if decodeAs[OptimizeResponse](t, rec).Cached {
		t.Fatal("permuted order collided with the default order's cache entry")
	}
}

// seedHistory plants synthetic outcomes so retrieval has something to vote
// on: order DCE,CTP historically applied more actions than CTP,DCE on
// programs shaped like sampleSrc.
func seedHistory(t *testing.T, s *Server) {
	t.Helper()
	for i := 0; i < 4; i++ {
		if !s.Advisor().Harvest(advisor.Outcome{
			Source: sampleSrc, Opts: []string{"CTP", "DCE"},
			Order: []string{"DCE", "CTP"}, Applied: 9, WallUS: 400,
		}) {
			t.Fatal("harvest rejected")
		}
		if !s.Advisor().Harvest(advisor.Outcome{
			Source: sampleSrc, Opts: []string{"CTP", "DCE"},
			Order: []string{"CTP", "DCE"}, Applied: 3, WallUS: 200,
		}) {
			t.Fatal("harvest rejected")
		}
	}
	s.Advisor().Flush()
}

func TestOptimizeOrderAutoRetrieves(t *testing.T) {
	s := newTestServer(t, Config{})
	seedHistory(t, s)
	rec := doJSON(t, s, "POST", "/v1/optimize",
		OptimizeRequest{Source: sampleSrc, Opts: []string{"CTP", "DCE"}, Order: "auto"})
	if rec.Code != http.StatusOK {
		t.Fatalf("order=auto = %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeAs[OptimizeResponse](t, rec)
	if !reflect.DeepEqual(resp.Order, []string{"DCE", "CTP"}) {
		t.Fatalf("advisor chose %v, history says [DCE CTP]", resp.Order)
	}
	if got := rec.Header().Get(OrderHeader); got != "DCE,CTP" {
		t.Fatalf("%s = %q, want DCE,CTP", OrderHeader, got)
	}
	if s.Metrics().AdvisorAuto.Load() != 1 {
		t.Fatalf("auto counter = %d, want 1", s.Metrics().AdvisorAuto.Load())
	}
	// The auto decision must also be deterministic across repeat requests
	// (NoCache so each run resolves afresh).
	for i := 0; i < 3; i++ {
		rec := doJSON(t, s, "POST", "/v1/optimize",
			OptimizeRequest{Source: sampleSrc, Opts: []string{"CTP", "DCE"}, Order: "auto", NoCache: true})
		if got := rec.Header().Get(OrderHeader); got != "DCE,CTP" {
			t.Fatalf("repeat %d: %s = %q, want DCE,CTP", i, OrderHeader, got)
		}
	}
}

func TestOptimizeOrderAutoTraceSpan(t *testing.T) {
	s := newTestServer(t, Config{})
	seedHistory(t, s)
	rec := doJSON(t, s, "POST", "/v1/optimize?trace=1",
		OptimizeRequest{Source: sampleSrc, Opts: []string{"CTP", "DCE"}, Order: "auto"})
	if rec.Code != http.StatusOK {
		t.Fatalf("traced auto = %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeAs[OptimizeResponse](t, rec)
	found := false
	for _, n := range resp.Trace {
		if n.Name == "advisor" {
			found = true
			attrs := map[string]any{}
			for _, a := range n.Attrs {
				attrs[a.Key] = a.Value
			}
			if attrs["decision"] != "retrieved" {
				t.Fatalf("advisor span decision = %v, want retrieved (attrs %v)", attrs["decision"], attrs)
			}
		}
	}
	if !found {
		t.Fatalf("no advisor span in trace forest: %+v", resp.Trace)
	}
}

// TestAdvisorHarvestFromOptimize: a successful, uncached /v1/optimize run
// lands in the outcome store, and the advisor metrics sections appear.
func TestAdvisorHarvestFromOptimize(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := doJSON(t, s, "POST", "/v1/optimize",
		OptimizeRequest{Source: sampleSrc, Opts: []string{"CTP", "DCE"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("optimize = %d", rec.Code)
	}
	s.Advisor().Flush()
	if n := s.Advisor().Size(); n != 1 {
		t.Fatalf("store size after one run = %d, want 1", n)
	}
	// A cached replay must not harvest again.
	doJSON(t, s, "POST", "/v1/optimize",
		OptimizeRequest{Source: sampleSrc, Opts: []string{"CTP", "DCE"}})
	s.Advisor().Flush()
	if n := s.Advisor().Size(); n != 1 {
		t.Fatalf("store size after cached replay = %d, want 1 (no re-harvest)", n)
	}
	snap := s.Metrics().Snapshot()
	adv, ok := snap["advisor"].(map[string]any)
	if !ok {
		t.Fatalf("no advisor section in metrics snapshot: %v", snap)
	}
	if adv["harvested"].(int64) != 1 {
		t.Fatalf("advisor.harvested = %v, want 1", adv["harvested"])
	}
	// Prometheus exposition carries the optd_advisor_* families.
	mrec := doJSON(t, s, "GET", "/metrics", nil)
	t.Cleanup(func() {})
	if body := mrec.Body.String(); !strings.Contains(body, "\"advisor\"") {
		t.Fatalf("JSON metrics missing advisor section")
	}
}

// TestAdvisorHarvestFromJobs: a completed batch job feeds the store through
// the jobs.Obs.Completed hook.
func TestAdvisorHarvestFromJobs(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := doJSON(t, s, "POST", "/v1/jobs",
		JobSubmitRequest{OptimizeRequest: OptimizeRequest{
			Source: sampleSrc, Opts: []string{"CTP", "DCE"}, NoCache: true, Order: "default"}})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", rec.Code, rec.Body.String())
	}
	v := decodeAs[JobView](t, rec)
	rec = doJSON(t, s, "GET", "/v1/jobs/"+v.ID+"?wait=1", nil)
	jv := decodeAs[JobView](t, rec)
	if jv.State != "done" {
		t.Fatalf("job state = %s, want done", jv.State)
	}
	// The result carries the order stamp.
	rec = doJSON(t, s, "GET", "/v1/jobs/"+v.ID+"/result", nil)
	resp := decodeAs[OptimizeResponse](t, rec)
	if !reflect.DeepEqual(resp.Order, []string{"CTP", "DCE"}) {
		t.Fatalf("job result order = %v, want [CTP DCE]", resp.Order)
	}
	// Completion hands the outcome to the advisor via a goroutine; poll
	// briefly for the ingest (Flush only covers already-accepted outcomes).
	deadline := time.Now().Add(5 * time.Second)
	for s.Advisor().Size() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	s.Advisor().Flush()
	if n := s.Advisor().Size(); n != 1 {
		t.Fatalf("store size after job completion = %d, want 1", n)
	}
}

// TestAdvisorAutoBeatsOrMatchesDefault is the acceptance gate in miniature:
// over a mixed proggen corpus with history seeded from real runs of several
// candidate orders, order=auto must apply at least as many actions in total
// as the default order, with byte-identical interpreter output.
func TestAdvisorAutoBeatsOrMatchesDefault(t *testing.T) {
	s := newTestServer(t, Config{})
	opts := []string{"CPP", "CTP", "DCE", "ICM"}
	orders := [][]string{
		{"CPP", "CTP", "DCE", "ICM"},
		{"CTP", "CPP", "ICM", "DCE"},
		{"DCE", "ICM", "CPP", "CTP"},
		{"ICM", "DCE", "CTP", "CPP"},
	}
	var corpus []string
	for seed := int64(1); seed <= 6; seed++ {
		p := proggen.Generate(seed, proggen.Config{MaxStmts: 30, MaxDepth: 2})
		corpus = append(corpus, ir.ToMiniF(p))
	}
	// Replay phase: run every candidate order over the corpus so the store
	// holds real outcomes (NoCache so each run computes and harvests).
	for _, src := range corpus {
		for _, order := range orders {
			rec := doJSON(t, s, "POST", "/v1/optimize",
				OptimizeRequest{Source: src, Opts: order, NoCache: true, Order: strings.Join(order, ",")})
			if rec.Code != http.StatusOK {
				t.Fatalf("replay run failed (%d): %s", rec.Code, rec.Body.String())
			}
		}
	}
	s.Advisor().Flush()
	if n := s.Advisor().Size(); n < len(corpus)*len(orders) {
		t.Fatalf("store size = %d after %d replay runs", n, len(corpus)*len(orders))
	}

	applied := func(resp OptimizeResponse) int {
		total := 0
		for _, pr := range resp.Applications {
			total += pr.Applications
		}
		return total
	}
	autoTotal, defTotal := 0, 0
	for i, src := range corpus {
		recAuto := doJSON(t, s, "POST", "/v1/optimize",
			OptimizeRequest{Source: src, Opts: opts, NoCache: true, Order: "auto"})
		recDef := doJSON(t, s, "POST", "/v1/optimize",
			OptimizeRequest{Source: src, Opts: opts, NoCache: true})
		if recAuto.Code != http.StatusOK || recDef.Code != http.StatusOK {
			t.Fatalf("corpus %d: auto=%d default=%d", i, recAuto.Code, recDef.Code)
		}
		autoResp := decodeAs[OptimizeResponse](t, recAuto)
		defResp := decodeAs[OptimizeResponse](t, recDef)
		autoTotal += applied(autoResp)
		defTotal += applied(defResp)
		// Correctness differential: both optimized programs must print the
		// same values as each other under the reference interpreter. The
		// proggen corpus reads no input.
		diff := func(minif string) string {
			p, err := frontend.Parse(minif)
			if err != nil {
				t.Fatalf("corpus %d: optimized MiniF does not reparse: %v", i, err)
			}
			r, err := interp.Run(p, nil, interp.Config{})
			if err != nil {
				t.Fatalf("corpus %d: interpreter: %v", i, err)
			}
			return fmt.Sprint(r.Output)
		}
		if a, d := diff(autoResp.MiniF), diff(defResp.MiniF); a != d {
			t.Fatalf("corpus %d: output divergence\nauto  (%v): %s\ndefault: %s", i, autoResp.Order, a, d)
		}
	}
	if autoTotal < defTotal {
		t.Fatalf("auto applied %d total actions, default applied %d — advisor made things worse", autoTotal, defTotal)
	}
	if s.Metrics().AdvisorAuto.Load() == 0 {
		t.Fatal("no retrieved decisions recorded during the auto sweep")
	}
	t.Logf("auto=%d default=%d applied actions over %d programs", autoTotal, defTotal, len(corpus))
}

// TestAdvisorPersistsAcrossRestart: with -advisor-dir set, harvested history
// survives a server restart and keeps informing decisions.
func TestAdvisorPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{AdvisorDir: dir, AdvisorMinNeighbors: 2})
	seedHistory(t, s)
	if err := s.Shutdown(t.Context()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	s2 := newTestServer(t, Config{AdvisorDir: dir, AdvisorMinNeighbors: 2})
	defer s2.Shutdown(t.Context())
	if n := s2.Advisor().Size(); n != 8 {
		t.Fatalf("store size after restart = %d, want 8", n)
	}
	rec := doJSON(t, s2, "POST", "/v1/optimize",
		OptimizeRequest{Source: sampleSrc, Opts: []string{"CTP", "DCE"}, Order: "auto"})
	if got := rec.Header().Get(OrderHeader); got != "DCE,CTP" {
		t.Fatalf("post-restart auto order = %q, want DCE,CTP", got)
	}
}
