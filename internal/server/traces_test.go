package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/trace"
)

// getTrace fetches one assembled trace through a node's HTTP API.
func getTrace(t *testing.T, base, id string) TraceResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/traces/%s = %d: %s", id, resp.StatusCode, raw)
	}
	var tr TraceResponse
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatal(err)
	}
	return tr
}

// spanNamed returns the first span with the given name, nil if absent.
func spanNamed(spans []*trace.Span, name string) *trace.Span {
	for _, sp := range spans {
		if sp.Name == name {
			return sp
		}
	}
	return nil
}

// TestTraceForwardedOptimize: a request proxied from the non-owner to the
// owner yields ONE trace whose span forest, fetched from either node, holds
// spans from both — the ingress root and forward span on A, the serving
// root (parented under A's forward span) and its children on B.
func TestTraceForwardedOptimize(t *testing.T) {
	addrA, addrB, _, srvB := twoNodeCluster(t)
	body := optimizeBodyOwnedBy(t, []string{addrA, addrB}, addrB)

	resp, err := http.Post("http://"+addrA+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize = %d", resp.StatusCode)
	}
	traceID := resp.Header.Get(TraceIDHeader)
	if traceID == "" {
		t.Fatalf("response missing %s", TraceIDHeader)
	}

	// Fetching through A fans out to B and merges; through B, vice versa.
	for _, base := range []string{"http://" + addrA, "http://" + addrB} {
		tr := getTrace(t, base, traceID)
		nodes := map[string]bool{}
		for _, sp := range tr.Spans {
			if sp.TraceID != traceID {
				t.Fatalf("span %s carries trace %s, want %s", sp.Name, sp.TraceID, traceID)
			}
			nodes[sp.Node] = true
		}
		if !nodes[addrA] || !nodes[addrB] {
			t.Fatalf("via %s: merged trace spans cover nodes %v, want both %s and %s",
				base, nodes, addrA, addrB)
		}
		fwd := spanNamed(tr.Spans, "forward")
		if fwd == nil || fwd.Node != addrA {
			t.Fatalf("via %s: no forward span from A: %+v", base, fwd)
		}
		// B's serving root hangs under A's forward span: one connected tree.
		var rootB *trace.Span
		for _, sp := range tr.Spans {
			if sp.Name == "server.optimize" && sp.Node == addrB {
				rootB = sp
			}
		}
		if rootB == nil {
			t.Fatalf("via %s: owner produced no server.optimize root", base)
		}
		if rootB.ParentID != fwd.SpanID {
			t.Fatalf("via %s: owner root parent = %s, want forward span %s", base, rootB.ParentID, fwd.SpanID)
		}
	}

	// The same request ID was used on both nodes (propagated, not re-minted):
	// B's trace store is reachable locally and the fragment roots agree.
	if got := srvB.traces.Get(traceID); len(got) == 0 {
		t.Fatal("owner retained no fragment for the forwarded trace")
	}
}

// TestTraceJobLifecycle: a submitted job's attempt joins the submitter's
// trace through the WAL-carried context — submit root, queue wait, run root
// and per-pass spans all under one trace ID.
func TestTraceJobLifecycle(t *testing.T) {
	s := newTestServer(t, Config{TraceSampleN: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(JobSubmitRequest{
		OptimizeRequest: OptimizeRequest{Source: deadSrc, Opts: []string{"DCE"}},
	})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, raw)
	}
	traceID := resp.Header.Get(TraceIDHeader)
	if traceID == "" {
		t.Fatalf("submit response missing %s", TraceIDHeader)
	}
	var jv JobView
	if err := json.Unmarshal(raw, &jv); err != nil {
		t.Fatal(err)
	}

	wresp, err := http.Get(ts.URL + "/v1/jobs/" + jv.ID + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, wresp.Body)
	wresp.Body.Close()

	tr := getTrace(t, ts.URL, traceID)
	submit := spanNamed(tr.Spans, "server.jobs.submit")
	run := spanNamed(tr.Spans, "job.run")
	queue := spanNamed(tr.Spans, "job.queue")
	pass := spanNamed(tr.Spans, "pass.DCE")
	if submit == nil || run == nil || queue == nil || pass == nil {
		names := make([]string, len(tr.Spans))
		for i, sp := range tr.Spans {
			names[i] = sp.Name
		}
		t.Fatalf("trace %s spans = %v, want submit+run+queue+pass", traceID, names)
	}
	// The attempt root is parented under the submit root: the job's whole
	// life is one connected story even though it ran on another goroutine
	// from a WAL record.
	if run.ParentID != submit.SpanID {
		t.Fatalf("job.run parent = %s, want submit root %s", run.ParentID, submit.SpanID)
	}
	if run.Attrs["id"] != jv.ID || run.Attrs["attempt"] != "1" {
		t.Fatalf("job.run attrs = %v", run.Attrs)
	}
	if queue.DurationUS < 0 {
		t.Fatalf("job.queue duration = %d", queue.DurationUS)
	}
}

// TestTraceExemplarExposed: once a kept trace observed a latency, the
// Prometheus exposition carries an OpenMetrics exemplar pointing at it.
func TestTraceExemplarExposed(t *testing.T) {
	s := newTestServer(t, Config{TraceSampleN: 1})
	rec := doJSON(t, s, "POST", "/v1/optimize", OptimizeRequest{Source: deadSrc, Opts: []string{"DCE"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("optimize = %d: %s", rec.Code, rec.Body.String())
	}
	traceID := rec.Header().Get(TraceIDHeader)

	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	mrec := httptest.NewRecorder()
	s.Handler().ServeHTTP(mrec, req)
	want := fmt.Sprintf("# {trace_id=%q}", traceID)
	if !strings.Contains(mrec.Body.String(), want) {
		t.Fatalf("prom exposition lacks exemplar %s", want)
	}
	// And the exemplar resolves: the trace is queryable.
	lrec := doJSON(t, s, "GET", "/v1/traces/"+traceID, nil)
	if lrec.Code != http.StatusOK {
		t.Fatalf("exemplar trace not resolvable: %d", lrec.Code)
	}
}

// TestTraceListFiltersHTTP drives the listing filters through the API.
func TestTraceListFiltersHTTP(t *testing.T) {
	s := newTestServer(t, Config{TraceSampleN: 1})
	ok := doJSON(t, s, "POST", "/v1/optimize", OptimizeRequest{Source: deadSrc, Opts: []string{"DCE"}})
	if ok.Code != http.StatusOK {
		t.Fatalf("optimize = %d", ok.Code)
	}
	bad := doJSON(t, s, "POST", "/v1/optimize", OptimizeRequest{Source: "PROGRAM broken"})
	if bad.Code == http.StatusOK {
		t.Fatalf("broken request = %d, want error", bad.Code)
	}

	all := decodeAs[TraceListResponse](t, doJSON(t, s, "GET", "/v1/traces", nil))
	if len(all.Traces) != 2 {
		t.Fatalf("unfiltered = %d traces, want 2", len(all.Traces))
	}
	errs := decodeAs[TraceListResponse](t, doJSON(t, s, "GET", "/v1/traces?error=1", nil))
	if len(errs.Traces) != 1 || errs.Traces[0].Status < 400 {
		t.Fatalf("error filter = %+v", errs.Traces)
	}
	byRoute := decodeAs[TraceListResponse](t, doJSON(t, s, "GET", "/v1/traces?route=optimize&status=200", nil))
	if len(byRoute.Traces) != 1 || byRoute.Traces[0].Engine != EngineInterp {
		t.Fatalf("route+status filter = %+v", byRoute.Traces)
	}
	if rec := doJSON(t, s, "GET", "/v1/traces?limit=bogus", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad limit = %d", rec.Code)
	}
}

// TestTraceDisabled: TraceStore < 0 turns the subsystem off — no header, no
// store, 404s from the query API, no trace section in metrics.
func TestTraceDisabled(t *testing.T) {
	s := newTestServer(t, Config{TraceStore: -1})
	rec := doJSON(t, s, "POST", "/v1/optimize", OptimizeRequest{Source: deadSrc, Opts: []string{"DCE"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("optimize = %d", rec.Code)
	}
	if got := rec.Header().Get(TraceIDHeader); got != "" {
		t.Fatalf("%s = %q with tracing disabled", TraceIDHeader, got)
	}
	if lrec := doJSON(t, s, "GET", "/v1/traces", nil); lrec.Code != http.StatusNotFound {
		t.Fatalf("traces list = %d, want 404", lrec.Code)
	}
	snap := decodeAs[map[string]any](t, doJSON(t, s, "GET", "/metrics", nil))
	if _, ok := snap["trace"]; ok {
		t.Fatal("metrics snapshot has a trace section with tracing disabled")
	}
}

// TestVersionEndpoint pins the /v1/version shape.
func TestVersionEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	v := decodeAs[VersionResponse](t, doJSON(t, s, "GET", "/v1/version", nil))
	if v.Service != "optd" || v.Go == "" || v.Module == "" || v.CodegenVersion == "" {
		t.Fatalf("version = %+v", v)
	}
	if v.VNodes != cluster.DefaultVNodes {
		t.Fatalf("vnodes = %d, want %d", v.VNodes, cluster.DefaultVNodes)
	}
	if v.Engine != EngineInterp {
		t.Fatalf("engine = %q", v.Engine)
	}
}

// TestConcurrentScrapeAndTraceWrites: Prometheus scrapes (which read every
// histogram, exemplars included) racing optimize traffic (which records
// fragments and exemplars) and trace queries. Run under -race in CI.
func TestConcurrentScrapeAndTraceWrites(t *testing.T) {
	s := newTestServer(t, Config{TraceSampleN: 1, TraceStore: 64})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				rec := doJSON(t, s, "POST", "/v1/optimize",
					OptimizeRequest{Source: sourceFor(g*100 + i), Opts: []string{"DCE"}, NoCache: true})
				if rec.Code != http.StatusOK {
					t.Errorf("optimize = %d", rec.Code)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				req := httptest.NewRequest("GET", "/metrics", nil)
				req.Header.Set("Accept", "text/plain")
				rec := httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("scrape = %d", rec.Code)
					return
				}
				doJSON(t, s, "GET", "/v1/traces?limit=100", nil)
			}
		}()
	}
	wg.Wait()
	st := s.traces.Stats()
	if st.Fragments > 64 {
		t.Fatalf("trace store exceeded capacity: %d", st.Fragments)
	}
	if st.KeptSampled+st.KeptSticky+st.KeptSlow+st.KeptError == 0 {
		t.Fatal("no fragments kept at sample 1")
	}
}

// TestRequestIDPropagation: an incoming X-Request-ID is honored, an
// oversized one is replaced.
func TestRequestIDPropagation(t *testing.T) {
	s := newTestServer(t, Config{})
	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Request-ID", "caller-chosen-id")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-ID"); got != "caller-chosen-id" {
		t.Fatalf("X-Request-ID = %q, want caller's", got)
	}

	req = httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Request-ID", strings.Repeat("x", 65))
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-ID"); len(got) != 8 {
		t.Fatalf("oversized X-Request-ID passed through: %q", got)
	}
}
