package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/frontend"
)

// sampleSrc exercises CTP (n propagates into the first loop bound) and DCE
// (n's definition then dies).
const sampleSrc = `
PROGRAM demo
INTEGER n, i
REAL a(16), s
n = 16
s = 0.0
DO i = 1, n
  a(i) = i * 2.0
ENDDO
DO i = 1, 16
  s = s + a(i)
ENDDO
PRINT s
END
`

// deadSrc has three dead assignments: three DCE application points.
const deadSrc = `
PROGRAM dead
INTEGER a, b, c, x
x = 7
a = 1
b = 2
c = 3
PRINT x
END
`

func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// doJSON drives one request through the server's handler.
func doJSON(t testing.TB, s *Server, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	switch b := body.(type) {
	case nil:
		rd = bytes.NewReader(nil)
	case string:
		rd = bytes.NewReader([]byte(b))
	default:
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func decodeAs[T any](t testing.TB, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("decode %q: %v", rec.Body.String(), err)
	}
	return v
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := doJSON(t, s, "GET", "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", rec.Code)
	}
}

func TestOptimizeBasic(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := doJSON(t, s, "POST", "/v1/optimize",
		OptimizeRequest{Source: sampleSrc, Opts: []string{"CTP", "DCE"}})
	if rec.Code != http.StatusOK {
		t.Fatalf("optimize = %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeAs[OptimizeResponse](t, rec)
	if resp.Cached {
		t.Error("first request reported cached")
	}
	total := 0
	for _, p := range resp.Applications {
		total += p.Applications
	}
	if total == 0 {
		t.Errorf("no applications performed: %+v", resp.Applications)
	}
	if len(resp.Applications) != 2 {
		t.Errorf("got %d pass results, want 2", len(resp.Applications))
	}
	// The MiniF output must reparse (printer/parser agreement).
	if _, err := frontend.Parse(resp.MiniF); err != nil {
		t.Errorf("optimized MiniF does not reparse: %v\n%s", err, resp.MiniF)
	}
	// CTP should have propagated the constant loop bound.
	if strings.Contains(resp.MiniF, "DO i = 1, n") {
		t.Errorf("CTP did not propagate the loop bound:\n%s", resp.MiniF)
	}
}

func TestOptimizeValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name string
		body any
		code int
		kind string
	}{
		{"bad json", "{not json", http.StatusBadRequest, "bad_json"},
		{"no source", OptimizeRequest{Opts: []string{"CTP"}}, http.StatusBadRequest, "bad_request"},
		{"no opts", OptimizeRequest{Source: sampleSrc}, http.StatusBadRequest, "bad_request"},
		{"unknown opt", OptimizeRequest{Source: sampleSrc, Opts: []string{"NOPE"}}, http.StatusBadRequest, "unknown_optimization"},
		{"parse error", OptimizeRequest{Source: "PROGRAM p\nbogus!!\nEND", Opts: []string{"CTP"}}, http.StatusUnprocessableEntity, "parse_error"},
		{"bad spec", OptimizeRequest{Source: sampleSrc, Specs: []SpecText{{Name: "X", Text: "TYPE garbage"}}}, http.StatusUnprocessableEntity, "spec_error"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := doJSON(t, s, "POST", "/v1/optimize", tc.body)
			if rec.Code != tc.code {
				t.Fatalf("code = %d, want %d: %s", rec.Code, tc.code, rec.Body.String())
			}
			if e := decodeAs[apiError](t, rec); e.Kind != tc.kind {
				t.Errorf("kind = %q, want %q", e.Kind, tc.kind)
			}
		})
	}
}

func TestOptimizeInlineSpec(t *testing.T) {
	s := newTestServer(t, Config{})
	// DCE restated as an inline user spec.
	spec := `
TYPE
  Stmt: Si, Sj;
PRECOND
  Code_Pattern
    any Si: Si.kind == assign AND type(Si.opr_1) == var;
  Depend
    no Sj: flow_dep(Si, Sj);
ACTION
  delete(Si);
`
	rec := doJSON(t, s, "POST", "/v1/optimize",
		OptimizeRequest{Source: deadSrc, Specs: []SpecText{{Name: "mydce", Text: spec}}})
	if rec.Code != http.StatusOK {
		t.Fatalf("optimize = %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeAs[OptimizeResponse](t, rec)
	if len(resp.Applications) != 1 || resp.Applications[0].Name != "MYDCE" || resp.Applications[0].Applications != 3 {
		t.Fatalf("applications = %+v, want MYDCE x3", resp.Applications)
	}
}

func TestOptimizeIterationLimit(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := doJSON(t, s, "POST", "/v1/optimize",
		OptimizeRequest{Source: deadSrc, Opts: []string{"DCE"}, MaxIterations: 1})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("code = %d, want 422: %s", rec.Code, rec.Body.String())
	}
	e := decodeAs[apiError](t, rec)
	if e.Kind != "iteration_limit" || e.Pass != "DCE" || e.Applications != 1 {
		t.Errorf("error = %+v, want iteration_limit on DCE after 1 application", e)
	}
	if got := s.Metrics().IterationLimitAborts.Load(); got != 1 {
		t.Errorf("IterationLimitAborts = %d, want 1", got)
	}
}

func TestOptimizeCacheHit(t *testing.T) {
	s := newTestServer(t, Config{})
	req := OptimizeRequest{Source: sampleSrc, Opts: []string{"CTP", "DCE"}}
	first := decodeAs[OptimizeResponse](t, doJSON(t, s, "POST", "/v1/optimize", req))
	rec := doJSON(t, s, "POST", "/v1/optimize", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("second optimize = %d", rec.Code)
	}
	second := decodeAs[OptimizeResponse](t, rec)
	if !second.Cached {
		t.Error("second identical request was not served from cache")
	}
	if second.MiniF != first.MiniF {
		t.Error("cached MiniF differs from cold MiniF")
	}
	if hits := s.Metrics().CacheHits.Load(); hits != 1 {
		t.Errorf("CacheHits = %d, want 1", hits)
	}
	// A different opt sequence is a different content address.
	third := decodeAs[OptimizeResponse](t, doJSON(t, s, "POST", "/v1/optimize",
		OptimizeRequest{Source: sampleSrc, Opts: []string{"DCE", "CTP"}}))
	if third.Cached {
		t.Error("different opt order must not share a cache entry")
	}
}

func TestPointsCensus(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := doJSON(t, s, "POST", "/v1/points", PointsRequest{Source: deadSrc})
	if rec.Code != http.StatusOK {
		t.Fatalf("points = %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeAs[PointsResponse](t, rec)
	if resp.Points["DCE"] != 3 {
		t.Errorf("DCE points = %d, want 3", resp.Points["DCE"])
	}
	if len(resp.Points) != 10 {
		t.Errorf("census covers %d opts, want the paper's ten", len(resp.Points))
	}
	// Pattern-only census sees at least as many points.
	po := decodeAs[PointsResponse](t, doJSON(t, s, "POST", "/v1/points",
		PointsRequest{Source: deadSrc, Opts: []string{"CTP"}, PatternOnly: true}))
	full := decodeAs[PointsResponse](t, doJSON(t, s, "POST", "/v1/points",
		PointsRequest{Source: deadSrc, Opts: []string{"CTP"}}))
	if po.Points["CTP"] < full.Points["CTP"] {
		t.Errorf("pattern-only CTP points %d < full %d", po.Points["CTP"], full.Points["CTP"])
	}
}

// TestConcurrentOptimize drives 32 concurrent /v1/optimize requests with
// distinct sources (every one takes the cold path) through the full
// middleware stack; run under -race this exercises admission control, the
// cache, metrics and the engine across goroutines.
func TestConcurrentOptimize(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 4})
	const n = 32
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := fmt.Sprintf(`
PROGRAM p%d
INTEGER n, i
REAL a(16), s
n = %d
s = 0.0
DO i = 1, n
  a(i) = i * 2.0
ENDDO
PRINT s
END
`, i, i+2)
			rec := doJSON(t, s, "POST", "/v1/optimize",
				OptimizeRequest{Source: src, Opts: []string{"CTP", "DCE"}})
			codes[i] = rec.Code
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("request %d: code %d", i, c)
		}
	}
	if got := s.Metrics().RequestsTotal.Load(); got != n {
		t.Errorf("RequestsTotal = %d, want %d", got, n)
	}
	if inflight := s.Metrics().InFlight.Load(); inflight != 0 {
		t.Errorf("InFlight = %d after drain, want 0", inflight)
	}
}

// TestGracefulShutdown: an in-flight request completes during Shutdown
// while new requests are refused with 503 draining.
func TestGracefulShutdown(t *testing.T) {
	entered := make(chan struct{}, 1)
	hold := make(chan struct{})
	s := newTestServer(t, Config{
		testHook: func(ctx context.Context) error {
			entered <- struct{}{}
			<-hold
			return nil
		},
	})

	inflightDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		inflightDone <- doJSON(t, s, "POST", "/v1/optimize",
			OptimizeRequest{Source: sampleSrc, Opts: []string{"CTP"}})
	}()
	<-entered // the request is inside the pipeline

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Draining flips synchronously at the start of Shutdown; poll until new
	// requests are refused.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec := doJSON(t, s, "GET", "/healthz", nil)
		if rec.Code == http.StatusServiceUnavailable {
			if e := decodeAs[apiError](t, rec); e.Kind != "draining" {
				t.Fatalf("refusal kind = %q, want draining", e.Kind)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never started refusing requests")
		}
		time.Sleep(time.Millisecond)
	}
	rec := doJSON(t, s, "POST", "/v1/optimize",
		OptimizeRequest{Source: sampleSrc, Opts: []string{"CTP"}})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("new optimize during drain = %d, want 503", rec.Code)
	}

	close(hold) // let the in-flight request finish
	if rec := <-inflightDone; rec.Code != http.StatusOK {
		t.Errorf("in-flight request = %d, want 200: %s", rec.Code, rec.Body.String())
	}
	if err := <-shutdownErr; err != nil {
		t.Errorf("Shutdown = %v, want nil", err)
	}
	if got := s.Metrics().RejectedDraining.Load(); got < 2 {
		t.Errorf("RejectedDraining = %d, want >= 2", got)
	}
}

// TestPanicRecovery: an optimizer panic becomes a 500 and the daemon keeps
// serving.
func TestPanicRecovery(t *testing.T) {
	s := newTestServer(t, Config{
		testHook: func(ctx context.Context) error { panic("boom") },
	})
	rec := doJSON(t, s, "POST", "/v1/optimize",
		OptimizeRequest{Source: sampleSrc, Opts: []string{"CTP"}})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("code = %d, want 500", rec.Code)
	}
	if e := decodeAs[apiError](t, rec); e.Kind != "panic" {
		t.Errorf("kind = %q, want panic", e.Kind)
	}
	if got := s.Metrics().PanicsRecovered.Load(); got != 1 {
		t.Errorf("PanicsRecovered = %d, want 1", got)
	}
	if rec := doJSON(t, s, "GET", "/healthz", nil); rec.Code != http.StatusOK {
		t.Errorf("healthz after panic = %d, want 200", rec.Code)
	}
}

// TestRequestTimeout: a request that outlives its deadline comes back as a
// structured 504.
func TestRequestTimeout(t *testing.T) {
	s := newTestServer(t, Config{
		RequestTimeout: 20 * time.Millisecond,
		testHook: func(ctx context.Context) error {
			<-ctx.Done()
			return ctx.Err()
		},
	})
	rec := doJSON(t, s, "POST", "/v1/optimize",
		OptimizeRequest{Source: sampleSrc, Opts: []string{"CTP"}})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("code = %d, want 504: %s", rec.Code, rec.Body.String())
	}
	if e := decodeAs[apiError](t, rec); e.Kind != "timeout" {
		t.Errorf("kind = %q, want timeout", e.Kind)
	}
	if got := s.Metrics().Timeouts.Load(); got != 1 {
		t.Errorf("Timeouts = %d, want 1", got)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	doJSON(t, s, "POST", "/v1/optimize", OptimizeRequest{Source: sampleSrc, Opts: []string{"CTP"}})
	rec := doJSON(t, s, "GET", "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	snap := decodeAs[map[string]any](t, rec)
	for _, key := range []string{"requests", "cache", "pass_latency", "sessions", "panics_recovered"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("metrics snapshot missing %q", key)
		}
	}
	pl, _ := snap["pass_latency"].(map[string]any)
	if _, ok := pl["CTP"]; !ok {
		t.Errorf("pass_latency missing CTP after an optimize: %v", pl)
	}
}
