package server

import (
	"fmt"
	"testing"
)

func TestCacheKeyFraming(t *testing.T) {
	// Length prefixes keep concatenation-ambiguous part lists apart.
	if CacheKey("ab", "c") == CacheKey("a", "bc") {
		t.Error(`CacheKey("ab","c") collides with CacheKey("a","bc")`)
	}
	if CacheKey("x") != CacheKey("x") {
		t.Error("CacheKey is not deterministic")
	}
	if CacheKey("x") == CacheKey("x", "") {
		t.Error("trailing empty part must change the key")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(3)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprint(i), []byte{byte(i)})
	}
	// Touch 0 so 1 is the least recently used.
	if _, ok := c.Get("0"); !ok {
		t.Fatal("entry 0 missing")
	}
	c.Put("3", []byte{3})
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if _, ok := c.Get("1"); ok {
		t.Error("LRU entry 1 survived eviction")
	}
	for _, k := range []string{"0", "2", "3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("entry %s evicted, want kept", k)
		}
	}
	// Overwrite refreshes, not duplicates.
	c.Put("3", []byte{9})
	if v, _ := c.Get("3"); len(v) != 1 || v[0] != 9 {
		t.Errorf("overwrite lost: %v", v)
	}
	if c.Len() != 3 {
		t.Errorf("Len after overwrite = %d, want 3", c.Len())
	}
}

func TestCacheZeroCapacity(t *testing.T) {
	c := NewCache(0)
	c.Put("k", []byte("v"))
	if _, ok := c.Get("k"); ok {
		t.Error("zero-capacity cache stored an entry")
	}
}
