package server

import (
	"encoding/json"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// promLine matches one Prometheus exposition sample:
// name{label="v",...} value  — or an unlabeled name value. Histogram
// buckets may carry an OpenMetrics exemplar suffix
// (# {trace_id="..."} value timestamp) when the bucket's trace was kept
// by the tail sampler.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9.e+-]+|\+Inf|NaN)( # \{trace_id="[0-9a-f]+"\} [0-9.e+-]+ [0-9.]+)?$`)

// TestMetricsPrometheus: Accept: text/plain negotiates the Prometheus
// exposition; every non-comment line must be a well-formed sample, and the
// pass/route histograms plus dep and rollback counters must be present
// after an optimization ran.
func TestMetricsPrometheus(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := doJSON(t, s, "POST", "/v1/optimize", map[string]any{
		"source": sampleSrc, "opts": []string{"CTP", "DCE"},
	})
	if rec.Code != 200 {
		t.Fatalf("optimize = %d: %s", rec.Code, rec.Body)
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	mrec := httptest.NewRecorder()
	s.Handler().ServeHTTP(mrec, req)
	if mrec.Code != 200 {
		t.Fatalf("/metrics = %d", mrec.Code)
	}
	if ct := mrec.Header().Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	body := mrec.Body.String()

	// Structural validity: each line is a comment or a sample.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}

	for _, want := range []string{
		`optd_requests_total{route="optimize"} 1`,
		`optd_http_request_duration_seconds_bucket{route="optimize",le="+Inf"} 1`,
		`optd_pass_latency_seconds_bucket{pass="CTP",le="+Inf"} 1`,
		`optd_pass_latency_seconds_count{pass="DCE"} 1`,
		`optd_pass_runs_total{pass="CTP"} 1`,
		`optd_dep_lookups_total{kind="scalar"}`,
		`optd_dep_lookups_total{kind="array"}`,
		`optd_dep_lookups_total{kind="control"}`,
		`optd_dep_updates_total{mode="incremental"}`,
		`optd_dep_updates_total{mode="structural"}`,
		`optd_undo_rollbacks_total`,
		`# TYPE optd_pass_latency_seconds histogram`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMetricsContentNegotiation: the default representation stays JSON (for
// existing scrapers) and includes the new dep counter block.
func TestMetricsContentNegotiation(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := doJSON(t, s, "POST", "/v1/optimize", map[string]any{
		"source": sampleSrc, "opts": []string{"CTP"},
	})
	if rec.Code != 200 {
		t.Fatalf("optimize = %d: %s", rec.Code, rec.Body)
	}
	mrec := doJSON(t, s, "GET", "/metrics", nil)
	if ct := mrec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("default Content-Type = %q, want application/json", ct)
	}
	var snap map[string]any
	if err := json.Unmarshal(mrec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("JSON snapshot: %v", err)
	}
	dep, ok := snap["dep"].(map[string]any)
	if !ok {
		t.Fatalf("snapshot missing dep block: %v", snap)
	}
	if dep["scalar_lookups"].(float64) == 0 {
		t.Errorf("dep.scalar_lookups = 0 after an optimization")
	}
	if _, ok := snap["pass_latency"].(map[string]any)["CTP"]; !ok {
		t.Errorf("pass_latency missing CTP: %v", snap["pass_latency"])
	}
}

// TestOptimizeTrace: ?trace=1 returns the span forest naming every pass and
// the match/depend/action phases, and bypasses the result cache.
func TestOptimizeTrace(t *testing.T) {
	s := newTestServer(t, Config{})
	body := map[string]any{"source": sampleSrc, "opts": []string{"CTP", "DCE"}}

	rec := doJSON(t, s, "POST", "/v1/optimize?trace=1", body)
	if rec.Code != 200 {
		t.Fatalf("optimize?trace=1 = %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Trace  []*obs.Node `json:"trace"`
		Cached bool        `json:"cached"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Trace) != 2 {
		t.Fatalf("trace has %d roots, want 2 (CTP, DCE)", len(resp.Trace))
	}
	passes := map[string]bool{}
	phases := map[string]bool{}
	var walk func(n *obs.Node)
	walk = func(n *obs.Node) {
		phases[n.Name] = true
		if n.Name == "pass" {
			for _, a := range n.Attrs {
				if a.Key == "spec" {
					passes[a.Value.(string)] = true
				}
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, n := range resp.Trace {
		walk(n)
	}
	for _, p := range []string{"CTP", "DCE"} {
		if !passes[p] {
			t.Errorf("trace missing pass %s", p)
		}
	}
	for _, ph := range []string{"match", "depend", "action"} {
		if !phases[ph] {
			t.Errorf("trace missing phase %s", ph)
		}
	}

	// A traced response is never served from (or stored into) the cache: the
	// same body without trace=1 must be a cache miss, and a repeat traced
	// request must carry a fresh trace.
	rec2 := doJSON(t, s, "POST", "/v1/optimize?trace=1", body)
	var resp2 struct {
		Trace  []*obs.Node `json:"trace"`
		Cached bool        `json:"cached"`
	}
	if err := json.Unmarshal(rec2.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.Cached || len(resp2.Trace) == 0 {
		t.Errorf("repeat traced request: cached=%v trace=%d, want fresh trace", resp2.Cached, len(resp2.Trace))
	}
	if hits := s.Metrics().CacheHits.Load(); hits != 0 {
		t.Errorf("cache hits = %d after traced-only requests, want 0", hits)
	}

	// An untraced request must not see a trace.
	rec3 := doJSON(t, s, "POST", "/v1/optimize", body)
	if strings.Contains(rec3.Body.String(), `"trace"`) {
		t.Errorf("untraced response carries a trace: %s", rec3.Body)
	}
}

// TestRequestID: every response carries an X-Request-ID.
func TestRequestID(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := doJSON(t, s, "GET", "/healthz", nil)
	if rec.Header().Get("X-Request-ID") == "" {
		t.Error("response missing X-Request-ID")
	}
	rec2 := doJSON(t, s, "GET", "/healthz", nil)
	if rec.Header().Get("X-Request-ID") == rec2.Header().Get("X-Request-ID") {
		t.Error("request IDs not unique")
	}
}

// TestMetricsScrapeContention: concurrent PassObserved/RouteDone writers
// against continuous snapshot and Prometheus scrapes. Run under -race in
// CI; the writers must never block on a scrape beyond a map read lock.
func TestMetricsScrapeContention(t *testing.T) {
	m := newMetrics()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			spec := []string{"CTP", "DCE", "ICM", "LUR"}[w]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m.PassObserved(obs.PassStats{
					Spec: spec, Applications: 1, Duration: time.Millisecond,
					PatternChecks: 3, DepChecks: 2, ScalarLookups: 5,
					IncrementalUpdates: 1,
				})
				m.RouteDone("optimize", time.Millisecond, "")
				m.CountRoute("optimize")
			}
		}(w)
	}
	deadline := time.After(200 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			_ = m.Snapshot()
			var sb strings.Builder
			if err := m.WriteProm(&sb); err != nil {
				t.Errorf("WriteProm: %v", err)
				done = true
			}
		}
	}
	close(stop)
	wg.Wait()
	// Totals must be coherent: runs equals the sum over passes.
	snap := m.Snapshot()
	passes := snap["pass_latency"].(map[string]passStatJSON)
	var runs int64
	for _, ps := range passes {
		runs += ps.Runs
	}
	if runs == 0 {
		t.Fatal("no passes recorded")
	}
}
