package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/dep"
	"repro/internal/engine"
	"repro/internal/frontend"
	"repro/internal/gospel"
	"repro/internal/obs"
	"repro/internal/specs"
	"repro/internal/trace"
	"repro/ir"
	"repro/optlib"
)

// httpErr carries a status code and structured body out of a handler.
type httpErr struct {
	status int
	body   apiError
}

func (e *httpErr) Error() string { return e.body.Error }

func failf(status int, kind, format string, args ...any) *httpErr {
	return &httpErr{status: status, body: apiError{Error: fmt.Sprintf(format, args...), Kind: kind}}
}

// SpecText is an inline GOSpeL specification shipped with a request.
type SpecText struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

// OptimizeRequest is the body of POST /v1/optimize.
type OptimizeRequest struct {
	// Source is the MiniF program text.
	Source string `json:"source"`
	// Opts names built-in optimizations, applied in order, each to fixpoint.
	Opts []string `json:"opts"`
	// Specs are inline GOSpeL specifications applied after Opts.
	Specs []SpecText `json:"specs,omitempty"`
	// MaxIterations caps each pass; 0 selects the server default.
	MaxIterations int `json:"max_iterations,omitempty"`
	// Recompute mirrors the constructor's dependence-recomputation toggle;
	// nil means true.
	Recompute *bool `json:"recompute,omitempty"`
	// NoCache bypasses the result cache (reads and writes).
	NoCache bool `json:"no_cache,omitempty"`
	// Order is the pass-order directive: "" (run opts as listed, no
	// stamping), "default" (same, stamped), "auto" (ask the advisor), or an
	// explicit comma-separated permutation of opts. The ?order= query
	// parameter overrides this field.
	Order string `json:"order,omitempty"`
	// Parallel is the region-parallel worker count: values above 1 run
	// each pass's fixpoint region-parallel with that many workers, 0
	// inherits the server default, 1 forces sequential. The optimized
	// program is byte-identical at every setting — only latency varies.
	// The ?parallel= query parameter overrides this field.
	Parallel int `json:"parallel,omitempty"`
}

// PassResult reports one optimization pass of a pipeline.
type PassResult struct {
	Name         string `json:"name"`
	Applications int    `json:"applications"`
	DurationUS   int64  `json:"duration_us"`
}

// OptimizeResponse is the body of a successful POST /v1/optimize.
type OptimizeResponse struct {
	// MiniF is the optimized program as re-parsable MiniF source.
	MiniF string `json:"minif"`
	// IR is the numbered IR dump of the optimized program.
	IR           string       `json:"ir"`
	Applications []PassResult `json:"applications"`
	ParseUS      int64        `json:"parse_us"`
	TotalUS      int64        `json:"total_us"`
	// Cached reports whether this response came from the result cache.
	Cached bool `json:"cached"`
	// Engine names the execution engine that produced the body: "interp",
	// "compiled-plugin" or "compiled-subprocess". Omitted (meaning interp)
	// on servers that never enable the native engine, keeping the wire
	// shape unchanged for existing clients.
	Engine string `json:"engine,omitempty"`
	// Order is the effective pass order, present only when the request
	// carried an order directive (also stamped in X-Optd-Order).
	Order []string `json:"order,omitempty"`
	// Trace is the span forest of the optimization run — one "pass" root per
	// pipeline stage with match/depend/action children per candidate point.
	// Present only when the request asked for it with ?trace=1.
	Trace []*obs.Node `json:"trace,omitempty"`
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		return failf(http.StatusBadRequest, "bad_json", "invalid request body: %v", err)
	}
	return nil
}

// canonOpts uppercases and trims the requested optimization names and
// verifies each one exists, before any work starts.
func canonOpts(names []string) ([]string, error) {
	out := make([]string, 0, len(names))
	for _, n := range names {
		n = strings.ToUpper(strings.TrimSpace(n))
		if n == "" {
			continue
		}
		if _, ok := specs.Sources[n]; !ok {
			return nil, failf(http.StatusBadRequest, "unknown_optimization",
				"unknown optimization %q (have %s)", n, strings.Join(specs.Names(), ", "))
		}
		out = append(out, n)
	}
	return out, nil
}

// pass is one compiled pipeline stage.
type pass struct {
	name string
	opt  *engine.Optimizer
}

// compilePasses builds the request's pipeline: built-in opts in order, then
// inline GOSpeL specs. Compilation failures are client errors. A non-nil
// tracer records one span tree per pass for the inline-trace response.
func (s *Server) compilePasses(req *OptimizeRequest, timing engine.PassTimingFunc, tracer *obs.Tracer) ([]pass, error) {
	maxIter := req.MaxIterations
	if maxIter <= 0 {
		maxIter = s.cfg.MaxIterations
	}
	eopts := []engine.Option{
		engine.WithPassTiming(timing),
		engine.WithPassStats(s.metrics.PassObserved),
	}
	if tracer != nil {
		eopts = append(eopts, engine.WithTracer(tracer))
	}
	if maxIter > 0 {
		eopts = append(eopts, engine.WithMaxApplications(maxIter))
	}
	if req.Recompute != nil && !*req.Recompute {
		eopts = append(eopts, engine.WithoutRecompute())
	}
	names, err := canonOpts(req.Opts)
	if err != nil {
		return nil, err
	}
	var passes []pass
	for _, name := range names {
		spec, err := gospel.ParseAndCheck(name, specs.Sources[name])
		if err != nil {
			return nil, failf(http.StatusInternalServerError, "internal", "built-in %s failed to parse: %v", name, err)
		}
		o, err := engine.Compile(spec, eopts...)
		if err != nil {
			return nil, failf(http.StatusInternalServerError, "internal", "built-in %s failed to compile: %v", name, err)
		}
		passes = append(passes, pass{name: name, opt: o})
	}
	for _, st := range req.Specs {
		name := strings.ToUpper(strings.TrimSpace(st.Name))
		if name == "" {
			return nil, failf(http.StatusBadRequest, "spec_error", "inline spec needs a name")
		}
		spec, err := gospel.ParseAndCheck(name, st.Text)
		if err != nil {
			return nil, failf(http.StatusUnprocessableEntity, "spec_error", "spec %s: %v", name, err)
		}
		o, err := engine.Compile(spec, eopts...)
		if err != nil {
			return nil, failf(http.StatusUnprocessableEntity, "spec_error", "spec %s: %v", name, err)
		}
		passes = append(passes, pass{name: name, opt: o})
	}
	if len(passes) == 0 {
		return nil, failf(http.StatusBadRequest, "bad_request", "request needs at least one optimization in opts or specs")
	}
	return passes, nil
}

// cacheKey renders the content address of an optimize request. It must run
// after resolveOrder: req.Opts then holds the *effective* pass order (so an
// advisor-chosen order and the default order for the same program are
// distinct entries) and req.Order the normalized directive (so a stamped
// body is never replayed to a directive-free request, and vice versa).
func (req *OptimizeRequest) cacheKey() string {
	parts := []string{"optimize/v1", req.Source, strings.Join(req.Opts, ",")}
	for _, st := range req.Specs {
		parts = append(parts, st.Name, st.Text)
	}
	parts = append(parts, fmt.Sprint(req.MaxIterations))
	parts = append(parts, fmt.Sprint(req.Recompute == nil || *req.Recompute))
	parts = append(parts, req.Order)
	parts = append(parts, fmt.Sprint(req.Parallel))
	return CacheKey(parts...)
}

// classify maps pipeline errors to structured API errors.
func (s *Server) classify(err error, passName string, apps int) *httpErr {
	switch {
	case errors.Is(err, optlib.ErrIterationLimit):
		s.metrics.IterationLimitAborts.Add(1)
		return &httpErr{status: http.StatusUnprocessableEntity, body: apiError{
			Error: fmt.Sprintf("pass %s hit its iteration limit after %d application(s)", passName, apps),
			Kind:  "iteration_limit", Pass: passName, Applications: apps,
		}}
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.Timeouts.Add(1)
		return failf(http.StatusGatewayTimeout, "timeout", "request deadline exceeded during pass %s", passName)
	case errors.Is(err, context.Canceled):
		return failf(499, "canceled", "request canceled during pass %s", passName)
	default:
		return failf(http.StatusUnprocessableEntity, "optimize_error", "pass %s: %v", passName, err)
	}
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) error {
	var req OptimizeRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	if strings.TrimSpace(req.Source) == "" {
		return failf(http.StatusBadRequest, "bad_request", "request needs a MiniF program in source")
	}

	// ?trace=1 asks for the span forest inline in the response. Tracing
	// bypasses the cache both ways: a cached body has no trace, and a traced
	// body must not be served to untraced requests.
	wantTrace := r.URL.Query().Get("trace") == "1"
	var tracer *obs.Tracer
	if wantTrace {
		tracer = obs.NewTracer(obs.Collect(), obs.WithLogger(obs.LoggerFrom(r.Context())))
	}

	// The order directive resolves before the cache key is computed: the
	// effective order is part of the content address.
	if q := r.URL.Query().Get("order"); q != "" {
		req.Order = q
	}
	order, err := s.resolveOrder(r.Context(), &req, tracer)
	if err != nil {
		return err
	}
	root := trace.SpanFrom(r.Context())
	if len(order) > 0 {
		root.Set("order", req.Order)
	}

	// The worker count also resolves before the cache key: the effective
	// value is part of the content address.
	if q := r.URL.Query().Get("parallel"); q != "" {
		v, perr := strconv.Atoi(q)
		if perr != nil || v < 0 {
			return failf(http.StatusBadRequest, "bad_request",
				"parallel must be a non-negative integer, got %q", q)
		}
		req.Parallel = v
	}
	if req.Parallel == 0 {
		req.Parallel = s.cfg.RegionWorkers
	}
	if req.Parallel > 1 {
		root.Set("parallel", strconv.Itoa(req.Parallel))
	}

	var key string
	if !req.NoCache && !wantTrace {
		key = req.cacheKey()
		if raw, ok := s.cache.Get(key); ok {
			s.metrics.CacheHits.Add(1)
			var resp OptimizeResponse
			if err := json.Unmarshal(raw, &resp); err == nil {
				resp.Cached = true
				root.Set("cache", "hit")
				setEngineHeader(w, resp.Engine)
				setOrderHeader(w, resp.Order)
				writeJSON(w, http.StatusOK, resp)
				return nil
			}
		}
		s.metrics.CacheMisses.Add(1)
	}

	// The compiled fast path: when a native artifact covering the whole
	// pipeline is loaded, serve from it and skip the interpreted engine
	// entirely. Any reason it cannot (engine off, tracing, artifact still
	// building, load failure) falls through to the interpreter below.
	if nresp, nerr, served := s.tryNative(r.Context(), &req, wantTrace); served {
		if nerr != nil {
			if nerr.parse {
				return failf(http.StatusUnprocessableEntity, "parse_error", "%v", nerr.err)
			}
			return s.classify(nerr.err, nerr.pass, nerr.apps)
		}
		root.Set("engine", nresp.Engine)
		if s.cfg.testHook != nil {
			if err := s.cfg.testHook(r.Context()); err != nil {
				return s.classify(err, "testhook", 0)
			}
		}
		nresp.Order = order
		if !req.NoCache && !wantTrace {
			if raw, err := json.Marshal(nresp); err == nil {
				s.cache.Put(key, raw)
			}
		}
		s.harvestOptimize(&req, nresp)
		setEngineHeader(w, nresp.Engine)
		setOrderHeader(w, order)
		writeJSON(w, http.StatusOK, *nresp)
		return nil
	}

	var results []PassResult
	var current string // pass currently running, for error reporting
	timing := func(spec string, apps int, d time.Duration) {
		results = append(results, PassResult{Name: spec, Applications: apps, DurationUS: d.Microseconds()})
	}
	passes, err := s.compilePasses(&req, timing, tracer)
	if err != nil {
		return err
	}

	if s.cfg.testHook != nil {
		if err := s.cfg.testHook(r.Context()); err != nil {
			return s.classify(err, "testhook", 0)
		}
	}

	root.Set("engine", EngineInterp)
	t0 := time.Now()
	psp, _ := trace.Start(r.Context(), "parse")
	prog, err := frontend.Parse(req.Source)
	psp.End()
	if err != nil {
		psp.SetError(err.Error())
		return failf(http.StatusUnprocessableEntity, "parse_error", "%v", err)
	}
	parseUS := time.Since(t0).Microseconds()

	maxRegions := 0
	for _, ps := range passes {
		current = ps.name
		sp, _ := trace.Start(r.Context(), "pass."+ps.name)
		var apps []engine.Application
		var err error
		if req.Parallel > 1 {
			var rep engine.RegionReport
			apps, rep, err = ps.opt.ApplyAllRegions(r.Context(), prog, req.Parallel)
			s.metrics.RegionObserved(rep)
			if rep.Regions > maxRegions {
				maxRegions = rep.Regions
			}
			sp.Set("regions", strconv.Itoa(rep.Regions))
		} else {
			apps, err = ps.opt.ApplyAllCtx(r.Context(), prog)
		}
		sp.Set("applications", strconv.Itoa(len(apps)))
		sp.End()
		if err != nil {
			sp.SetError(err.Error())
			return s.classify(err, current, len(apps))
		}
	}
	if req.Parallel > 1 {
		w.Header().Set(RegionsHeader, strconv.Itoa(maxRegions))
	}

	resp := OptimizeResponse{
		MiniF:        ir.ToMiniF(prog),
		IR:           prog.String(),
		Applications: results,
		ParseUS:      parseUS,
		TotalUS:      time.Since(t0).Microseconds(),
		Order:        order,
		Trace:        tracer.Trees(),
	}
	if s.native != nil {
		// Name the engine only on servers where the answer can vary.
		resp.Engine = EngineInterp
	}
	if !req.NoCache && !wantTrace {
		if raw, err := json.Marshal(resp); err == nil {
			s.cache.Put(key, raw)
		}
	}
	s.harvestOptimize(&req, &resp)
	setEngineHeader(w, resp.Engine)
	setOrderHeader(w, order)
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// PointsRequest is the body of POST /v1/points.
type PointsRequest struct {
	Source string `json:"source"`
	// Opts restricts the census; empty means the paper's ten optimizations.
	Opts []string `json:"opts,omitempty"`
	// PatternOnly counts points matching the code pattern alone, skipping
	// Depend clauses (the dependence-override view).
	PatternOnly bool `json:"pattern_only,omitempty"`
}

// PointsResponse maps optimization name to application-point count.
type PointsResponse struct {
	Points map[string]int `json:"points"`
	Cached bool           `json:"cached"`
}

func (s *Server) handlePoints(w http.ResponseWriter, r *http.Request) error {
	var req PointsRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	if strings.TrimSpace(req.Source) == "" {
		return failf(http.StatusBadRequest, "bad_request", "request needs a MiniF program in source")
	}
	names := req.Opts
	if len(names) == 0 {
		names = specs.Ten
	}
	names, err := canonOpts(names)
	if err != nil {
		return err
	}
	key := CacheKey(append([]string{"points/v1", req.Source, fmt.Sprint(req.PatternOnly)}, names...)...)
	if raw, ok := s.cache.Get(key); ok {
		s.metrics.CacheHits.Add(1)
		var resp PointsResponse
		if err := json.Unmarshal(raw, &resp); err == nil {
			resp.Cached = true
			writeJSON(w, http.StatusOK, resp)
			return nil
		}
	}
	s.metrics.CacheMisses.Add(1)
	prog, err := frontend.Parse(req.Source)
	if err != nil {
		return failf(http.StatusUnprocessableEntity, "parse_error", "%v", err)
	}
	g := dep.Compute(prog)
	resp := PointsResponse{Points: map[string]int{}}
	for _, name := range names {
		if err := r.Context().Err(); err != nil {
			return s.classify(err, name, 0)
		}
		spec, err := gospel.ParseAndCheck(name, specs.Sources[name])
		if err != nil {
			return failf(http.StatusInternalServerError, "internal", "built-in %s failed to parse: %v", name, err)
		}
		o, err := engine.Compile(spec)
		if err != nil {
			return failf(http.StatusInternalServerError, "internal", "built-in %s failed to compile: %v", name, err)
		}
		if req.PatternOnly {
			resp.Points[name] = len(o.PreconditionsPatternOnly(prog, g))
		} else {
			resp.Points[name] = len(o.Preconditions(prog, g))
		}
	}
	if raw, err := json.Marshal(resp); err == nil {
		s.cache.Put(key, raw)
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}
