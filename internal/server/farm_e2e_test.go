package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/farm"
)

// farmWrongSpec is the seeded miscompile for the HTTP-level e2e: it
// deletes every constant definition of a scalar, unconditionally, so
// nearly every generated program changes behavior.
const farmWrongSpec = `
TYPE
  Stmt: Si;
PRECOND
  Code_Pattern
    any Si: Si.kind == assign AND Si.opc == assign AND type(Si.opr_1) == var AND type(Si.opr_2) == const;
ACTION
  delete(Si);
`

// TestFarmSeededMiscompileHTTP is the farm's acceptance loop through the
// public API: inject a deliberately wrong spec via POST /v1/farm, let the
// job queue sweep the campaign, and verify the farm catches it, persists
// minimized findings, dedups a resubmission, and serves the findings again
// after a restart from the durable store alone.
func TestFarmSeededMiscompileHTTP(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{FarmDir: dir, JobsWorkers: 4, TraceSampleN: 1})

	start := FarmStartRequest{
		Profile: "aggregation",
		Count:   6,
		Specs:   []SpecText{{Name: "KIL", Text: farmWrongSpec}},
	}
	rec := doJSON(t, s, "POST", "/v1/farm", start)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("farm start = %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeAs[FarmStartResponse](t, rec)
	if resp.ID == "" || resp.Jobs != 6 {
		t.Fatalf("start response = %+v, want an ID and 6 queued jobs", resp)
	}
	// Inline specs with no opts: the pipeline is exactly the inline spec.
	if len(resp.Order) != 1 || resp.Order[0] != "KIL" {
		t.Fatalf("order = %v, want [KIL]", resp.Order)
	}
	if len(resp.Variants) < 2 {
		t.Fatalf("variants = %v, want at least two configurations", resp.Variants)
	}

	rec = doJSON(t, s, "GET", "/v1/farm/"+resp.ID+"?wait=1", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("farm get = %d: %s", rec.Code, rec.Body.String())
	}
	status := decodeAs[farm.CampaignStatus](t, rec)
	if status.State != "done" || status.Checked != 6 {
		t.Fatalf("campaign = %+v, want done with 6 checked", status)
	}
	if status.Findings == 0 {
		t.Fatal("seeded miscompile produced no findings")
	}

	rec = doJSON(t, s, "GET", "/v1/farm/"+resp.ID+"/findings", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("findings = %d: %s", rec.Code, rec.Body.String())
	}
	found := decodeAs[FarmFindingsResponse](t, rec)
	if len(found.Findings) != status.Findings {
		t.Fatalf("served %d findings, campaign counted %d", len(found.Findings), status.Findings)
	}
	f := found.Findings[0]
	if f.Campaign != resp.ID || f.Minimized == "" {
		t.Fatalf("finding = %+v, want campaign ID and a minimized reproducer", f)
	}
	if 4*f.MinStmts > f.OrigStmts {
		t.Errorf("minimized to %d/%d statements, want <= 25%%", f.MinStmts, f.OrigStmts)
	}

	// Resubmitting the identical campaign dedups onto the finished jobs.
	rec = doJSON(t, s, "POST", "/v1/farm", start)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("farm resubmit = %d: %s", rec.Code, rec.Body.String())
	}
	again := decodeAs[FarmStartResponse](t, rec)
	if again.ID != resp.ID || again.Jobs != 0 {
		t.Fatalf("resubmission = %+v, want same campaign with 0 new jobs", again)
	}

	// The campaign shows up in the listing and the farm metric sections.
	list := decodeAs[FarmListResponse](t, doJSON(t, s, "GET", "/v1/farm", nil))
	if len(list.Campaigns) != 1 || list.Campaigns[0].ID != resp.ID || list.Findings == 0 {
		t.Fatalf("farm list = %+v", list)
	}
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	mrec := httptest.NewRecorder()
	s.Handler().ServeHTTP(mrec, req)
	prom := mrec.Body.String()
	for _, want := range []string{"optd_farm_programs_total 6", "optd_farm_findings_total", "optd_farm_campaigns 1"} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Findings outlive the process: a fresh server over the same FarmDir
	// serves them from the replayed store, no campaign table needed.
	s2 := newTestServer(t, Config{FarmDir: dir})
	defer func() { _ = s2.Shutdown(context.Background()) }()
	rec = doJSON(t, s2, "GET", "/v1/farm/"+resp.ID+"/findings", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("findings after restart = %d: %s", rec.Code, rec.Body.String())
	}
	replayed := decodeAs[FarmFindingsResponse](t, rec)
	if len(replayed.Findings) != len(found.Findings) {
		t.Fatalf("replayed %d findings, want %d", len(replayed.Findings), len(found.Findings))
	}
}

// TestFarmCleanCampaign sweeps the default pipeline over a small corpus
// and expects zero findings — the CI smoke's contract, at test scale.
func TestFarmCleanCampaign(t *testing.T) {
	s := newTestServer(t, Config{JobsWorkers: 4})
	defer func() { _ = s.Shutdown(context.Background()) }()

	rec := doJSON(t, s, "POST", "/v1/farm", FarmStartRequest{Profile: "aggregation", Count: 4})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("farm start = %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeAs[FarmStartResponse](t, rec)
	if len(resp.Order) != len(farm.DefaultOrder()) {
		t.Fatalf("order = %v, want the full default pipeline", resp.Order)
	}
	rec = doJSON(t, s, "GET", "/v1/farm/"+resp.ID+"?wait=1", nil)
	status := decodeAs[farm.CampaignStatus](t, rec)
	if status.State != "done" || status.Checked != 4 {
		t.Fatalf("campaign = %+v, want done with 4 checked", status)
	}
	if status.Findings != 0 || status.Divergent != 0 || status.Errored != 0 {
		findings := decodeAs[FarmFindingsResponse](t, doJSON(t, s, "GET", "/v1/farm/"+resp.ID+"/findings", nil))
		t.Fatalf("clean sweep produced findings: %+v\n%+v", status, findings)
	}
}

func TestFarmStartValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	defer func() { _ = s.Shutdown(context.Background()) }()

	cases := []struct {
		name string
		body any
		code int
	}{
		{"unknown profile", FarmStartRequest{Profile: "nope", Count: 1}, http.StatusBadRequest},
		{"zero count", FarmStartRequest{Count: 0}, http.StatusBadRequest},
		{"oversized count", FarmStartRequest{Count: maxFarmCount + 1}, http.StatusBadRequest},
		{"unknown opt", FarmStartRequest{Count: 1, Opts: []string{"NOPE"}}, http.StatusBadRequest},
		{"nameless spec", FarmStartRequest{Count: 1, Specs: []SpecText{{Text: farmWrongSpec}}}, http.StatusBadRequest},
		{"unparseable spec", FarmStartRequest{Count: 1,
			Specs: []SpecText{{Name: "BAD", Text: "TYPE\n  Stmt: Si;\nPRECOND\n  Code_Pattern\n    any Si: Si.nonsense == 1;\nACTION\n  delete(Si);\n"}}},
			http.StatusUnprocessableEntity},
		{"bad json", `{"count":`, http.StatusBadRequest},
	}
	for _, c := range cases {
		rec := doJSON(t, s, "POST", "/v1/farm", c.body)
		if rec.Code != c.code {
			t.Errorf("%s: status = %d, want %d: %s", c.name, rec.Code, c.code, rec.Body.String())
		}
	}
	if rec := doJSON(t, s, "GET", "/v1/farm/nosuch", nil); rec.Code != http.StatusNotFound {
		t.Errorf("missing campaign = %d, want 404", rec.Code)
	}
	if rec := doJSON(t, s, "GET", "/v1/farm/nosuch/findings", nil); rec.Code != http.StatusNotFound {
		t.Errorf("missing campaign findings = %d, want 404", rec.Code)
	}
}
