package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
)

// sourceFor renders a distinct valid MiniF program per seed.
func sourceFor(seed int) string {
	return fmt.Sprintf("PROGRAM f%d\nINTEGER x\nx = %d\nPRINT x\nEND\n", seed, seed)
}

// optimizeBodyOwnedBy searches for an optimize request whose routing key is
// owned by the wanted node in a ring over peers.
func optimizeBodyOwnedBy(t *testing.T, peers []string, want string) []byte {
	t.Helper()
	ring := cluster.NewRing(0)
	for _, p := range peers {
		ring.Add(p)
	}
	for seed := 0; seed < 10000; seed++ {
		req := OptimizeRequest{Source: sourceFor(seed), Opts: []string{"CTP", "DCE"}}
		if ring.Owner(req.cacheKey()) == want {
			raw, err := json.Marshal(&req)
			if err != nil {
				t.Fatal(err)
			}
			return raw
		}
	}
	t.Fatalf("no source routed to %s in 10000 tries", want)
	return nil
}

// newClusterServer builds a Server that believes it is self within peers.
func newClusterServer(t *testing.T, self string, peers []string) *Server {
	t.Helper()
	srv, err := New(Config{
		Logger:    slog.New(slog.DiscardHandler),
		Peers:     peers,
		Advertise: self,
		// Slow probing: these tests exercise the forwarding path's own
		// failure handling, not the prober.
		ProbeInterval: time.Hour,
		// Keep every trace so trace assertions never depend on the sampler's
		// hash landing favorably.
		TraceSampleN: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv
}

// TestForwardLoopProtection: a request that already carries the forwarded
// header is served locally even when the ring assigns it to a peer — the
// invariant that makes cross-node loops impossible.
func TestForwardLoopProtection(t *testing.T) {
	self := "127.0.0.1:8724"
	// TEST-NET-1 address: any forward attempt would fail, loudly bumping
	// the failover counter — which this test asserts stays at zero.
	peer := "192.0.2.1:1"
	srv := newClusterServer(t, self, []string{self, peer})
	body := optimizeBodyOwnedBy(t, []string{self, peer}, peer)

	req := httptest.NewRequest("POST", "/v1/optimize", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedByHeader, peer)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("forwarded request = %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(ServedByHeader); got != self {
		t.Fatalf("%s = %q, want %q", ServedByHeader, got, self)
	}
	m := srv.Metrics()
	if m.ClusterLocal.Load() != 1 || m.ClusterForwarded.Load() != 0 || m.ClusterFailovers.Load() != 0 {
		t.Fatalf("counters local=%d forwarded=%d failover=%d, want 1/0/0",
			m.ClusterLocal.Load(), m.ClusterForwarded.Load(), m.ClusterFailovers.Load())
	}
}

// TestForwardFailoverToSelf: with the owner unreachable, the single retry
// goes to the ring successor — in a two-node cluster, this node — and the
// request still succeeds.
func TestForwardFailoverToSelf(t *testing.T) {
	self := "127.0.0.1:8724"
	peer := "127.0.0.1:1" // closed port: dial fails immediately
	srv := newClusterServer(t, self, []string{self, peer})
	body := optimizeBodyOwnedBy(t, []string{self, peer}, peer)

	req := httptest.NewRequest("POST", "/v1/optimize", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("failover request = %d: %s", rec.Code, rec.Body.String())
	}
	m := srv.Metrics()
	if m.ClusterFailovers.Load() != 1 {
		t.Fatalf("failovers = %d, want 1", m.ClusterFailovers.Load())
	}
	if !strings.Contains(rec.Body.String(), `"minif"`) {
		t.Fatalf("failover response lacks minif: %s", rec.Body.String())
	}
	// The dial failure is health feedback: the peer is now marked down,
	// so the next mis-routed request skips the dial entirely.
	if srv.Cluster().Up(peer) {
		t.Fatal("peer still believed up after a failed forward")
	}
	rec2 := httptest.NewRecorder()
	req2 := httptest.NewRequest("POST", "/v1/optimize", bytes.NewReader(body))
	req2.Header.Set("Content-Type", "application/json")
	srv.Handler().ServeHTTP(rec2, req2)
	if rec2.Code != http.StatusOK {
		t.Fatalf("second failover request = %d", rec2.Code)
	}
}

// twoNodeCluster starts two fully wired servers on real listeners and
// returns their advertise addresses.
func twoNodeCluster(t *testing.T) (addrA, addrB string, srvA, srvB *Server) {
	t.Helper()
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrA, addrB = lnA.Addr().String(), lnB.Addr().String()
	peers := []string{addrA, addrB}
	srvA = newClusterServer(t, addrA, peers)
	srvB = newClusterServer(t, addrB, peers)
	for _, pair := range []struct {
		ln  net.Listener
		srv *Server
	}{{lnA, srvA}, {lnB, srvB}} {
		hs := &http.Server{Handler: pair.srv.Handler()}
		go func() { _ = hs.Serve(pair.ln) }()
		t.Cleanup(func() { _ = hs.Close() })
	}
	return addrA, addrB, srvA, srvB
}

// TestForwardTwoNodes: a request posted to the non-owner is proxied to the
// owner, lands in the owner's cache, and a repeat through the non-owner is
// an owner-side cache hit — cache-aware routing end to end.
func TestForwardTwoNodes(t *testing.T) {
	addrA, addrB, srvA, srvB := twoNodeCluster(t)
	body := optimizeBodyOwnedBy(t, []string{addrA, addrB}, addrB)

	post := func(addr string) (*http.Response, OptimizeResponse) {
		t.Helper()
		resp, err := http.Post("http://"+addr+"/v1/optimize", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("optimize via %s = %d: %s", addr, resp.StatusCode, raw)
		}
		var or OptimizeResponse
		if err := json.Unmarshal(raw, &or); err != nil {
			t.Fatal(err)
		}
		return resp, or
	}

	resp, or := post(addrA) // A does not own the key: proxied to B
	if got := resp.Header.Get(ServedByHeader); got != addrB {
		t.Fatalf("%s = %q, want owner %q", ServedByHeader, got, addrB)
	}
	if or.Cached {
		t.Fatal("first request reported cached")
	}
	if srvA.Metrics().ClusterForwarded.Load() != 1 {
		t.Fatalf("A forwarded = %d, want 1", srvA.Metrics().ClusterForwarded.Load())
	}
	if srvB.cache.Len() != 1 {
		t.Fatalf("owner cache len = %d, want 1", srvB.cache.Len())
	}

	resp, or = post(addrA) // repeat through the non-owner: owner cache hit
	if !or.Cached || resp.Header.Get(ServedByHeader) != addrB {
		t.Fatalf("repeat: cached=%v served-by=%q, want true/%q", or.Cached, resp.Header.Get(ServedByHeader), addrB)
	}
	if hits := srvB.Metrics().CacheHits.Load(); hits != 1 {
		t.Fatalf("owner cache hits = %d, want 1", hits)
	}
	if srvA.cache.Len() != 0 {
		t.Fatalf("non-owner cached a forwarded result: len = %d", srvA.cache.Len())
	}

	_, or = post(addrB) // straight to the owner: local hit, no forwarding
	if !or.Cached || srvB.Metrics().ClusterForwarded.Load() != 0 {
		t.Fatalf("owner-direct: cached=%v, B forwarded=%d", or.Cached, srvB.Metrics().ClusterForwarded.Load())
	}
}

// TestJobForwardAndRedirect: job submission is proxied to the owner of the
// content-derived job ID, and job-status lookups anywhere else answer with
// a one-hop 307 to that owner.
func TestJobForwardAndRedirect(t *testing.T) {
	addrA, addrB, srvA, srvB := twoNodeCluster(t)

	// Find a job payload owned by B.
	ring := cluster.NewRing(0)
	ring.Add(addrA)
	ring.Add(addrB)
	var body []byte
	for seed := 0; ; seed++ {
		if seed == 10000 {
			t.Fatal("no job routed to B in 10000 tries")
		}
		req := JobSubmitRequest{OptimizeRequest: OptimizeRequest{Source: sourceFor(seed), Opts: []string{"DCE"}}}
		if ring.Owner(jobIDForKey(req.jobKey())) == addrB {
			var err error
			if body, err = json.Marshal(&req); err != nil {
				t.Fatal(err)
			}
			break
		}
	}

	resp, err := http.Post("http://"+addrA+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit via A = %d: %s", resp.StatusCode, raw)
	}
	var jv JobView
	if err := json.Unmarshal(raw, &jv); err != nil {
		t.Fatal(err)
	}
	if _, ok := srvB.Jobs().Get(jv.ID); !ok {
		t.Fatalf("job %s not on owner B", jv.ID)
	}
	if _, ok := srvA.Jobs().Get(jv.ID); ok {
		t.Fatalf("job %s duplicated on non-owner A", jv.ID)
	}

	// Status on the non-owner: a single 307 to the owner, marked so the
	// owner never bounces it back.
	nofollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	sresp, err := nofollow.Get("http://" + addrA + "/v1/jobs/" + jv.ID)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, sresp.Body)
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("status via A = %d, want 307", sresp.StatusCode)
	}
	loc := sresp.Header.Get("Location")
	if !strings.Contains(loc, addrB) || !strings.Contains(loc, redirectedParam+"=1") {
		t.Fatalf("Location = %q, want owner %s with %s=1", loc, addrB, redirectedParam)
	}
	if srvA.Metrics().ClusterRedirects.Load() != 1 {
		t.Fatalf("A redirects = %d, want 1", srvA.Metrics().ClusterRedirects.Load())
	}

	// A default client (like opt -submit) follows the hop and long-polls
	// the job to completion on the owner.
	wresp, err := http.Get("http://" + addrA + "/v1/jobs/" + jv.ID + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	wraw, _ := io.ReadAll(wresp.Body)
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusOK {
		t.Fatalf("wait = %d: %s", wresp.StatusCode, wraw)
	}
	var done JobView
	if err := json.Unmarshal(wraw, &done); err != nil {
		t.Fatal(err)
	}
	if done.State != "done" {
		t.Fatalf("job state = %s: %s", done.State, wraw)
	}

	// Resubmitting the identical payload through the other node dedups
	// onto the owner's existing job: cluster-wide idempotency.
	resp2, err := http.Post("http://"+addrB+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	var jv2 JobView
	if err := json.Unmarshal(raw2, &jv2); err != nil {
		t.Fatal(err)
	}
	if jv2.ID != jv.ID || !jv2.Existing {
		t.Fatalf("resubmission = id %s existing %v, want %s/true", jv2.ID, jv2.Existing, jv.ID)
	}
}
