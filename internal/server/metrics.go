package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the daemon's expvar-style counter set, exposed as JSON on
// GET /metrics. All counters are monotonic except InFlight and
// SessionsActive, which are gauges. Everything is safe for concurrent use.
type Metrics struct {
	RequestsTotal        atomic.Int64
	InFlight             atomic.Int64
	CacheHits            atomic.Int64
	CacheMisses          atomic.Int64
	IterationLimitAborts atomic.Int64
	Timeouts             atomic.Int64
	PanicsRecovered      atomic.Int64
	RejectedOverload     atomic.Int64
	RejectedDraining     atomic.Int64
	SessionsCreated      atomic.Int64
	SessionsActive       atomic.Int64
	SessionsEvicted      atomic.Int64

	mu       sync.Mutex
	byRoute  map[string]int64
	passTime map[string]*passStat
}

// passStat accumulates per-optimization pass latency.
type passStat struct {
	Runs         int64 `json:"runs"`
	Applications int64 `json:"applications"`
	TotalNS      int64 `json:"total_ns"`
	MaxNS        int64 `json:"max_ns"`
}

func newMetrics() *Metrics {
	return &Metrics{
		byRoute:  map[string]int64{},
		passTime: map[string]*passStat{},
	}
}

// CountRoute tallies one request against its route.
func (m *Metrics) CountRoute(route string) {
	m.RequestsTotal.Add(1)
	m.mu.Lock()
	m.byRoute[route]++
	m.mu.Unlock()
}

// PassDone records one completed optimization pass; it has the shape of
// engine.PassTimingFunc so it can be installed directly as the hook.
func (m *Metrics) PassDone(spec string, applications int, d time.Duration) {
	m.mu.Lock()
	st := m.passTime[spec]
	if st == nil {
		st = &passStat{}
		m.passTime[spec] = st
	}
	st.Runs++
	st.Applications += int64(applications)
	st.TotalNS += int64(d)
	if int64(d) > st.MaxNS {
		st.MaxNS = int64(d)
	}
	m.mu.Unlock()
}

// Snapshot renders the counters as a JSON-marshalable tree.
func (m *Metrics) Snapshot() map[string]any {
	m.mu.Lock()
	routes := make(map[string]int64, len(m.byRoute))
	for k, v := range m.byRoute {
		routes[k] = v
	}
	passes := make(map[string]passStat, len(m.passTime))
	names := make([]string, 0, len(m.passTime))
	for k := range m.passTime {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		passes[k] = *m.passTime[k]
	}
	m.mu.Unlock()
	return map[string]any{
		"requests": map[string]any{
			"total":     m.RequestsTotal.Load(),
			"by_route":  routes,
			"in_flight": m.InFlight.Load(),
		},
		"cache": map[string]any{
			"hits":   m.CacheHits.Load(),
			"misses": m.CacheMisses.Load(),
		},
		"rejected": map[string]any{
			"overload": m.RejectedOverload.Load(),
			"draining": m.RejectedDraining.Load(),
		},
		"sessions": map[string]any{
			"created": m.SessionsCreated.Load(),
			"active":  m.SessionsActive.Load(),
			"evicted": m.SessionsEvicted.Load(),
		},
		"iteration_limit_aborts": m.IterationLimitAborts.Load(),
		"timeouts":               m.Timeouts.Load(),
		"panics_recovered":       m.PanicsRecovered.Load(),
		"pass_latency":           passes,
	}
}
