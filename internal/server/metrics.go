package server

import (
	"io"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/codegen"
	"repro/internal/engine"
	"repro/internal/farm"
	"repro/internal/jobs"
	"repro/internal/nativecache"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Metrics is the daemon's counter set, exposed on GET /metrics as JSON
// (default) or Prometheus text exposition format (Accept: text/plain).
// Scalar counters are lock-free atomics; the per-route and per-pass maps are
// guarded by RWMutexes held in read mode on the hot paths — a write lock is
// taken only the first time a new route or pass name appears, so recording a
// pass never contends with a concurrent /metrics scrape. All counters are
// monotonic except InFlight and SessionsActive, which are gauges.
type Metrics struct {
	RequestsTotal        atomic.Int64
	InFlight             atomic.Int64
	CacheHits            atomic.Int64
	CacheMisses          atomic.Int64
	IterationLimitAborts atomic.Int64
	Timeouts             atomic.Int64
	PanicsRecovered      atomic.Int64
	RejectedOverload     atomic.Int64
	RejectedDraining     atomic.Int64
	SessionsCreated      atomic.Int64
	SessionsActive       atomic.Int64
	SessionsEvicted      atomic.Int64

	// Batch-job lifecycle counters. JobsQueued and JobsRunning are gauges
	// tracking the manager's queue depth and in-flight count; the rest are
	// monotonic. JobLatency observes enqueue→terminal latency.
	JobsSubmitted atomic.Int64
	JobsDeduped   atomic.Int64
	JobsRetried   atomic.Int64
	JobsQueued    atomic.Int64
	JobsRunning   atomic.Int64
	JobsDone      atomic.Int64
	JobsFailed    atomic.Int64
	JobsCancelled atomic.Int64
	JobLatency    *obs.Histogram

	// Cluster routing counters. Local counts content-addressed requests
	// served on this node (owner here, loop-protected, or failover landing
	// back home); Forwarded counts requests proxied to a peer; Failovers
	// counts owner-unreachable retries against the ring successor;
	// Redirects counts job-status 307s; PeerTransitions counts peer
	// up↔down flips. ForwardLatency observes the proxied round-trip.
	ClusterLocal           atomic.Int64
	ClusterForwarded       atomic.Int64
	ClusterFailovers       atomic.Int64
	ClusterRedirects       atomic.Int64
	ClusterPeerTransitions atomic.Int64
	ForwardLatency         *obs.Histogram

	// Cluster identity and live peer health, installed by the server when
	// clustering is enabled; nil otherwise (single-node /metrics output is
	// unchanged).
	clusterSelf   string
	clusterPeers  []string
	clusterStatus func() []cluster.PeerStatus

	// Trace-store counter source, installed by the server when tracing is
	// enabled; nil otherwise (trace sections are omitted entirely).
	traceStats func() trace.Stats

	// Dependence-store and undo-log totals, aggregated across every pass run
	// through PassObserved.
	DepScalarLookups      atomic.Int64
	DepArrayLookups       atomic.Int64
	DepControlLookups     atomic.Int64
	DepIncrementalUpdates atomic.Int64
	DepStructuralRebuilds atomic.Int64
	UndoRollbacks         atomic.Int64
	PatternChecks         atomic.Int64
	DepChecks             atomic.Int64

	// Native (compiled-optimizer) engine telemetry. nativeOn gates the
	// JSON/Prometheus sections so interp-only servers keep their exact
	// pre-native output. Hits/Misses/Corrupt count artifact-cache outcomes,
	// Fallbacks counts native-eligible requests served interpreted because
	// no artifact was loaded yet, and NativeCompileSeconds observes
	// toolchain builds (source emission through install).
	NativeHits             atomic.Int64
	NativeMisses           atomic.Int64
	NativeCorrupt          atomic.Int64
	NativeFallbacks        atomic.Int64
	NativeCompiles         atomic.Int64
	NativeCompileFailures  atomic.Int64
	NativeServedPlugin     atomic.Int64
	NativeServedSubprocess atomic.Int64
	NativeCompileSeconds   *obs.Histogram
	nativeOn               atomic.Bool

	// Region-parallel execution telemetry. regionOn gates the
	// JSON/Prometheus sections (set on the first pass that runs with
	// workers > 1, so sequential-only servers keep their exact output).
	// RegionRuns counts passes that executed region-at-a-time (Tier A) and
	// RegionRegions the regions they ran; RegionSharded counts passes that
	// ran whole-program with a sharded candidate search instead;
	// RegionFallbacks counts partitioned attempts abandoned to the
	// sequential rerun (a region hit the application cap).
	RegionRuns      atomic.Int64
	RegionRegions   atomic.Int64
	RegionSharded   atomic.Int64
	RegionFallbacks atomic.Int64
	regionOn        atomic.Bool

	// Pass-ordering advisor telemetry. advisorOn gates the JSON/Prometheus
	// sections (set when the server constructs the advisor). The decision
	// counters split requests by order directive: Auto counts order=auto
	// requests served a retrieved order, Fallback counts order=auto requests
	// that ran the default order for lack of history, Default and Explicit
	// count the other stamped directives. AdvisorStoreRecords is the live
	// outcome-store size; AdvisorRetrieval observes the featurize+retrieve
	// latency on the request path.
	AdvisorAuto         atomic.Int64
	AdvisorFallback     atomic.Int64
	AdvisorDefault      atomic.Int64
	AdvisorExplicit     atomic.Int64
	AdvisorHarvested    atomic.Int64
	AdvisorDropped      atomic.Int64
	AdvisorStoreRecords atomic.Int64
	AdvisorRetrieval    *obs.Histogram
	advisorOn           atomic.Bool

	// Fuzzing-farm telemetry. farmOn gates the JSON/Prometheus sections
	// (set when the first campaign registers, so servers that never fuzz
	// keep their exact pre-farm output). FarmPrograms counts checked corpus
	// programs, FarmDivergent programs with at least one divergence,
	// FarmErrored programs the oracle could not judge, FarmFindings
	// persisted findings; FarmMinimizeSeconds observes reproducer
	// minimization. The campaign gauges come from the live campaign table
	// at scrape time.
	FarmPrograms        atomic.Int64
	FarmDivergent       atomic.Int64
	FarmErrored         atomic.Int64
	FarmFindings        atomic.Int64
	FarmMinimizeSeconds *obs.Histogram
	farmOn              atomic.Bool
	farmCampaigns       func() []farm.CampaignStatus

	nativeMu     sync.RWMutex
	nativeLoaded map[string]string // spec → artifact mode, the per-spec loaded gauge

	routeMu sync.RWMutex
	routes  map[string]*routeStat

	passMu sync.RWMutex
	passes map[string]*passStat
}

// passStat accumulates per-optimization pass counters. All fields are
// atomics so concurrent passes (parallel sweeps) and scrapes never block
// each other once the entry exists.
type passStat struct {
	runs         atomic.Int64
	applications atomic.Int64
	totalNS      atomic.Int64
	maxNS        atomic.Int64
	hist         *obs.Histogram
}

// routeStat accumulates per-route request counts and latencies.
type routeStat struct {
	count atomic.Int64
	hist  *obs.Histogram
}

// passStatJSON is the wire shape of one pass entry in the JSON snapshot —
// the pre-histogram shape, kept stable for existing scrapers, plus bucket
// data.
type passStatJSON struct {
	Runs         int64 `json:"runs"`
	Applications int64 `json:"applications"`
	TotalNS      int64 `json:"total_ns"`
	MaxNS        int64 `json:"max_ns"`
}

func newMetrics() *Metrics {
	return &Metrics{
		routes:         map[string]*routeStat{},
		passes:         map[string]*passStat{},
		nativeLoaded:   map[string]string{},
		JobLatency:     obs.NewHistogram(obs.JobLatencyBuckets...),
		ForwardLatency: obs.NewHistogram(),
		// Toolchain builds run from ~250ms (warm build cache) to tens of
		// seconds (cold); the default latency buckets top out far too low.
		NativeCompileSeconds: obs.NewHistogram(0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60),
		// Retrieval is a parse plus a linear scan of a few thousand small
		// vectors: sub-millisecond typically, single-digit ms worst case.
		AdvisorRetrieval: obs.NewHistogram(0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1),
		// Minimization re-checks the oracle per shrink step: tens of ms on
		// small reproducers, seconds on large divergent programs.
		FarmMinimizeSeconds: obs.NewHistogram(0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10),
	}
}

// setFarmCampaigns installs the campaign-table snapshot source. Called
// once at server construction, before any scrape can run.
func (m *Metrics) setFarmCampaigns(list func() []farm.CampaignStatus) {
	m.farmCampaigns = list
}

// farmCampaignCounts snapshots the campaign table as (total, running).
func (m *Metrics) farmCampaignCounts() (total, running int64) {
	if m.farmCampaigns == nil {
		return 0, 0
	}
	for _, st := range m.farmCampaigns() {
		total++
		if st.State == "running" {
			running++
		}
	}
	return total, running
}

// nativeObs adapts the counter set to the artifact cache's telemetry hooks.
func (m *Metrics) nativeObs() nativecache.Obs {
	return nativecache.Obs{
		Compile: func(d time.Duration, ok bool) {
			if ok {
				m.NativeCompiles.Add(1)
			} else {
				m.NativeCompileFailures.Add(1)
			}
			m.NativeCompileSeconds.Observe(d)
		},
		Event: func(kind string) {
			switch kind {
			case "hit":
				m.NativeHits.Add(1)
			case "miss":
				m.NativeMisses.Add(1)
			case "corrupt":
				m.NativeCorrupt.Add(1)
			}
		},
		Loaded: func(spec, mode string) {
			m.nativeMu.Lock()
			// A plugin load never downgrades the gauge to subprocess; both
			// being loaded means in-process serving is available.
			if prev, ok := m.nativeLoaded[spec]; !ok || prev != "plugin" {
				m.nativeLoaded[spec] = mode
			}
			m.nativeMu.Unlock()
		},
	}
}

// nativeLoadedSnapshot returns the per-spec loaded gauge, sorted by spec.
func (m *Metrics) nativeLoadedSnapshot() (specsSorted []string, modes map[string]string) {
	m.nativeMu.RLock()
	modes = make(map[string]string, len(m.nativeLoaded))
	for k, v := range m.nativeLoaded {
		modes[k] = v
		specsSorted = append(specsSorted, k)
	}
	m.nativeMu.RUnlock()
	sort.Strings(specsSorted)
	return specsSorted, modes
}

// setClusterStatus installs the cluster identity and health snapshot
// source. Called once at server construction, before any scrape can run.
func (m *Metrics) setClusterStatus(self string, peers []string, status func() []cluster.PeerStatus) {
	m.clusterSelf = self
	m.clusterPeers = peers
	m.clusterStatus = status
}

// setTraceStats installs the trace-store counter source. Called once at
// server construction, before any scrape can run.
func (m *Metrics) setTraceStats(stats func() trace.Stats) {
	m.traceStats = stats
}

// jobsObs adapts the counter set to the job manager's lifecycle callbacks.
// The callbacks run under the manager lock, so everything here is a bare
// atomic bump.
func (m *Metrics) jobsObs() jobs.Obs {
	gauge := func(s jobs.State) *atomic.Int64 {
		switch s {
		case jobs.StateQueued:
			return &m.JobsQueued
		case jobs.StateRunning:
			return &m.JobsRunning
		}
		return nil
	}
	return jobs.Obs{
		Submitted: func(deduped bool) {
			if deduped {
				m.JobsDeduped.Add(1)
			} else {
				m.JobsSubmitted.Add(1)
			}
		},
		StateChange: func(from, to jobs.State) {
			if g := gauge(from); g != nil {
				g.Add(-1)
			}
			if g := gauge(to); g != nil {
				g.Add(1)
			}
		},
		Retried: func() { m.JobsRetried.Add(1) },
		Finished: func(final jobs.State, latency time.Duration) {
			switch final {
			case jobs.StateDone:
				m.JobsDone.Add(1)
			case jobs.StateFailed:
				m.JobsFailed.Add(1)
			case jobs.StateCancelled:
				m.JobsCancelled.Add(1)
			}
			m.JobLatency.Observe(latency)
		},
	}
}

// routeStatFor returns the stat record for route, creating it on first use.
func (m *Metrics) routeStatFor(route string) *routeStat {
	m.routeMu.RLock()
	st := m.routes[route]
	m.routeMu.RUnlock()
	if st != nil {
		return st
	}
	m.routeMu.Lock()
	st = m.routes[route]
	if st == nil {
		st = &routeStat{hist: obs.NewHistogram()}
		m.routes[route] = st
	}
	m.routeMu.Unlock()
	return st
}

// passStatFor returns the stat record for spec, creating it on first use.
func (m *Metrics) passStatFor(spec string) *passStat {
	m.passMu.RLock()
	st := m.passes[spec]
	m.passMu.RUnlock()
	if st != nil {
		return st
	}
	m.passMu.Lock()
	st = m.passes[spec]
	if st == nil {
		st = &passStat{hist: obs.NewHistogram()}
		m.passes[spec] = st
	}
	m.passMu.Unlock()
	return st
}

// CountRoute tallies one request against its route.
func (m *Metrics) CountRoute(route string) {
	m.RequestsTotal.Add(1)
	m.routeStatFor(route).count.Add(1)
}

// RouteDone records one completed request's latency against its route.
// A non-empty traceID attaches an exemplar to the latency bucket — callers
// pass one only for traces the tail sampler kept, so every exposed exemplar
// is resolvable through /v1/traces.
func (m *Metrics) RouteDone(route string, d time.Duration, traceID string) {
	m.routeStatFor(route).hist.ObserveWithExemplar(d, traceID)
}

// PassDone records one completed optimization pass; it has the shape of
// engine.PassTimingFunc so it can be installed directly as the hook.
func (m *Metrics) PassDone(spec string, applications int, d time.Duration) {
	st := m.passStatFor(spec)
	st.runs.Add(1)
	st.applications.Add(int64(applications))
	st.totalNS.Add(int64(d))
	for {
		old := st.maxNS.Load()
		if int64(d) <= old || st.maxNS.CompareAndSwap(old, int64(d)) {
			break
		}
	}
	st.hist.Observe(d)
}

// PassObserved folds one pass's full observability counters into the
// process-wide totals and the per-pass latency histogram. It has the shape
// of the engine's OnPassStats hook.
// RegionObserved folds one region-parallel pass report into the counters.
func (m *Metrics) RegionObserved(rep engine.RegionReport) {
	m.regionOn.Store(true)
	if rep.Sharded {
		m.RegionSharded.Add(1)
	} else {
		m.RegionRuns.Add(1)
		m.RegionRegions.Add(int64(rep.Regions))
	}
	if rep.Fallback {
		m.RegionFallbacks.Add(1)
	}
}

func (m *Metrics) PassObserved(ps obs.PassStats) {
	m.PassDone(ps.Spec, ps.Applications, ps.Duration)
	m.PatternChecks.Add(ps.PatternChecks)
	m.DepChecks.Add(ps.DepChecks)
	m.DepScalarLookups.Add(ps.ScalarLookups)
	m.DepArrayLookups.Add(ps.ArrayLookups)
	m.DepControlLookups.Add(ps.ControlLookups)
	m.DepIncrementalUpdates.Add(ps.IncrementalUpdates)
	m.DepStructuralRebuilds.Add(ps.StructuralRebuilds)
	m.UndoRollbacks.Add(ps.Rollbacks)
}

// sortedRouteNames returns the route names under a read lock.
func (m *Metrics) sortedRouteNames() []string {
	m.routeMu.RLock()
	names := make([]string, 0, len(m.routes))
	for k := range m.routes {
		names = append(names, k)
	}
	m.routeMu.RUnlock()
	sort.Strings(names)
	return names
}

// sortedPassNames returns the pass names under a read lock.
func (m *Metrics) sortedPassNames() []string {
	m.passMu.RLock()
	names := make([]string, 0, len(m.passes))
	for k := range m.passes {
		names = append(names, k)
	}
	m.passMu.RUnlock()
	sort.Strings(names)
	return names
}

// Snapshot renders the counters as a JSON-marshalable tree. The shape is
// backward compatible with the pre-histogram snapshot; dependence-store and
// undo-log counters appear under "dep".
func (m *Metrics) Snapshot() map[string]any {
	routes := make(map[string]int64)
	for _, k := range m.sortedRouteNames() {
		m.routeMu.RLock()
		st := m.routes[k]
		m.routeMu.RUnlock()
		routes[k] = st.count.Load()
	}
	passes := make(map[string]passStatJSON)
	for _, k := range m.sortedPassNames() {
		m.passMu.RLock()
		st := m.passes[k]
		m.passMu.RUnlock()
		passes[k] = passStatJSON{
			Runs:         st.runs.Load(),
			Applications: st.applications.Load(),
			TotalNS:      st.totalNS.Load(),
			MaxNS:        st.maxNS.Load(),
		}
	}
	snap := map[string]any{
		"requests": map[string]any{
			"total":     m.RequestsTotal.Load(),
			"by_route":  routes,
			"in_flight": m.InFlight.Load(),
		},
		"cache": map[string]any{
			"hits":   m.CacheHits.Load(),
			"misses": m.CacheMisses.Load(),
		},
		"rejected": map[string]any{
			"overload": m.RejectedOverload.Load(),
			"draining": m.RejectedDraining.Load(),
		},
		"sessions": map[string]any{
			"created": m.SessionsCreated.Load(),
			"active":  m.SessionsActive.Load(),
			"evicted": m.SessionsEvicted.Load(),
		},
		"dep": map[string]any{
			"pattern_checks":      m.PatternChecks.Load(),
			"dep_checks":          m.DepChecks.Load(),
			"scalar_lookups":      m.DepScalarLookups.Load(),
			"array_lookups":       m.DepArrayLookups.Load(),
			"control_lookups":     m.DepControlLookups.Load(),
			"incremental_updates": m.DepIncrementalUpdates.Load(),
			"structural_rebuilds": m.DepStructuralRebuilds.Load(),
			"undo_rollbacks":      m.UndoRollbacks.Load(),
		},
		"jobs": map[string]any{
			"submitted": m.JobsSubmitted.Load(),
			"deduped":   m.JobsDeduped.Load(),
			"retried":   m.JobsRetried.Load(),
			"queued":    m.JobsQueued.Load(),
			"running":   m.JobsRunning.Load(),
			"done":      m.JobsDone.Load(),
			"failed":    m.JobsFailed.Load(),
			"cancelled": m.JobsCancelled.Load(),
		},
		"iteration_limit_aborts": m.IterationLimitAborts.Load(),
		"timeouts":               m.Timeouts.Load(),
		"panics_recovered":       m.PanicsRecovered.Load(),
		"pass_latency":           passes,
	}
	if m.nativeOn.Load() {
		_, loaded := m.nativeLoadedSnapshot()
		snap["native"] = map[string]any{
			"artifact_hits":    m.NativeHits.Load(),
			"artifact_misses":  m.NativeMisses.Load(),
			"artifact_corrupt": m.NativeCorrupt.Load(),
			"fallbacks":        m.NativeFallbacks.Load(),
			"compiles":         m.NativeCompiles.Load(),
			"compile_failures": m.NativeCompileFailures.Load(),
			"served": map[string]any{
				"plugin":     m.NativeServedPlugin.Load(),
				"subprocess": m.NativeServedSubprocess.Load(),
			},
			"loaded": loaded,
		}
	}
	if m.regionOn.Load() {
		snap["region"] = map[string]any{
			"parallel_passes": m.RegionRuns.Load(),
			"regions":         m.RegionRegions.Load(),
			"sharded_passes":  m.RegionSharded.Load(),
			"fallbacks":       m.RegionFallbacks.Load(),
		}
	}
	if m.advisorOn.Load() {
		snap["advisor"] = map[string]any{
			"store_records": m.AdvisorStoreRecords.Load(),
			"harvested":     m.AdvisorHarvested.Load(),
			"dropped":       m.AdvisorDropped.Load(),
			"decisions": map[string]any{
				"auto":     m.AdvisorAuto.Load(),
				"fallback": m.AdvisorFallback.Load(),
				"default":  m.AdvisorDefault.Load(),
				"explicit": m.AdvisorExplicit.Load(),
			},
		}
	}
	if m.farmOn.Load() {
		total, running := m.farmCampaignCounts()
		snap["farm"] = map[string]any{
			"campaigns": total,
			"active":    running,
			"programs":  m.FarmPrograms.Load(),
			"divergent": m.FarmDivergent.Load(),
			"errors":    m.FarmErrored.Load(),
			"findings":  m.FarmFindings.Load(),
		}
	}
	if m.traceStats != nil {
		st := m.traceStats()
		snap["trace"] = map[string]any{
			"kept": map[string]any{
				"error":   st.KeptError,
				"slow":    st.KeptSlow,
				"sticky":  st.KeptSticky,
				"sampled": st.KeptSampled,
			},
			"dropped":     st.Dropped,
			"evicted":     st.Evicted,
			"fragments":   st.Fragments,
			"spans":       st.Spans,
			"spill_bytes": st.SpillBytes,
		}
	}
	if m.clusterStatus != nil {
		snap["cluster"] = map[string]any{
			"self":  m.clusterSelf,
			"size":  len(m.clusterPeers),
			"peers": m.clusterStatus(),
			"routed": map[string]any{
				"local":     m.ClusterLocal.Load(),
				"forwarded": m.ClusterForwarded.Load(),
				"failover":  m.ClusterFailovers.Load(),
				"redirect":  m.ClusterRedirects.Load(),
			},
			"peer_transitions": m.ClusterPeerTransitions.Load(),
		}
	}
	return snap
}

// WriteProm renders every counter in Prometheus text exposition format
// (version 0.0.4). It never blocks a concurrent PassDone/RouteDone beyond a
// map read lock.
func (m *Metrics) WriteProm(w io.Writer) error {
	pw := obs.NewPromWriter(w)

	pw.Header("optd_requests_total", "Total HTTP requests by route.", "counter")
	for _, k := range m.sortedRouteNames() {
		m.routeMu.RLock()
		st := m.routes[k]
		m.routeMu.RUnlock()
		pw.IntSample("optd_requests_total", []obs.Label{obs.L("route", k)}, st.count.Load())
	}
	pw.Header("optd_in_flight_requests", "Requests currently being served.", "gauge")
	pw.IntSample("optd_in_flight_requests", nil, m.InFlight.Load())

	pw.Header("optd_http_request_duration_seconds", "HTTP request latency by route.", "histogram")
	for _, k := range m.sortedRouteNames() {
		m.routeMu.RLock()
		st := m.routes[k]
		m.routeMu.RUnlock()
		pw.Histogram("optd_http_request_duration_seconds", []obs.Label{obs.L("route", k)}, st.hist.Snapshot())
	}

	pw.Header("optd_pass_runs_total", "Optimization pass executions by pass.", "counter")
	for _, k := range m.sortedPassNames() {
		m.passMu.RLock()
		st := m.passes[k]
		m.passMu.RUnlock()
		pw.IntSample("optd_pass_runs_total", []obs.Label{obs.L("pass", k)}, st.runs.Load())
	}
	pw.Header("optd_pass_applications_total", "Transformation applications performed by pass.", "counter")
	for _, k := range m.sortedPassNames() {
		m.passMu.RLock()
		st := m.passes[k]
		m.passMu.RUnlock()
		pw.IntSample("optd_pass_applications_total", []obs.Label{obs.L("pass", k)}, st.applications.Load())
	}
	pw.Header("optd_pass_latency_seconds", "Optimization pass latency by pass.", "histogram")
	for _, k := range m.sortedPassNames() {
		m.passMu.RLock()
		st := m.passes[k]
		m.passMu.RUnlock()
		pw.Histogram("optd_pass_latency_seconds", []obs.Label{obs.L("pass", k)}, st.hist.Snapshot())
	}

	pw.Header("optd_cache_hits_total", "Optimization cache hits.", "counter")
	pw.IntSample("optd_cache_hits_total", nil, m.CacheHits.Load())
	pw.Header("optd_cache_misses_total", "Optimization cache misses.", "counter")
	pw.IntSample("optd_cache_misses_total", nil, m.CacheMisses.Load())

	pw.Header("optd_pattern_checks_total", "Pattern-format precondition evaluations.", "counter")
	pw.IntSample("optd_pattern_checks_total", nil, m.PatternChecks.Load())
	pw.Header("optd_dep_checks_total", "Depend-clause predicate evaluations.", "counter")
	pw.IntSample("optd_dep_checks_total", nil, m.DepChecks.Load())

	pw.Header("optd_dep_lookups_total", "Dependence-store edge lookups by kind.", "counter")
	pw.IntSample("optd_dep_lookups_total", []obs.Label{obs.L("kind", "scalar")}, m.DepScalarLookups.Load())
	pw.IntSample("optd_dep_lookups_total", []obs.Label{obs.L("kind", "array")}, m.DepArrayLookups.Load())
	pw.IntSample("optd_dep_lookups_total", []obs.Label{obs.L("kind", "control")}, m.DepControlLookups.Load())

	pw.Header("optd_dep_updates_total", "Dependence-graph maintenance operations by mode.", "counter")
	pw.IntSample("optd_dep_updates_total", []obs.Label{obs.L("mode", "incremental")}, m.DepIncrementalUpdates.Load())
	pw.IntSample("optd_dep_updates_total", []obs.Label{obs.L("mode", "structural")}, m.DepStructuralRebuilds.Load())

	pw.Header("optd_undo_rollbacks_total", "Failed action applications rolled back through the undo log.", "counter")
	pw.IntSample("optd_undo_rollbacks_total", nil, m.UndoRollbacks.Load())

	pw.Header("optd_iteration_limit_aborts_total", "Optimizations aborted at the iteration limit.", "counter")
	pw.IntSample("optd_iteration_limit_aborts_total", nil, m.IterationLimitAborts.Load())
	pw.Header("optd_timeouts_total", "Requests that exceeded their deadline.", "counter")
	pw.IntSample("optd_timeouts_total", nil, m.Timeouts.Load())
	pw.Header("optd_panics_recovered_total", "Handler panics recovered.", "counter")
	pw.IntSample("optd_panics_recovered_total", nil, m.PanicsRecovered.Load())
	pw.Header("optd_rejected_total", "Requests rejected before handling, by reason.", "counter")
	pw.IntSample("optd_rejected_total", []obs.Label{obs.L("reason", "overload")}, m.RejectedOverload.Load())
	pw.IntSample("optd_rejected_total", []obs.Label{obs.L("reason", "draining")}, m.RejectedDraining.Load())

	pw.Header("optd_sessions_created_total", "Interactive sessions created.", "counter")
	pw.IntSample("optd_sessions_created_total", nil, m.SessionsCreated.Load())
	pw.Header("optd_sessions_active", "Interactive sessions currently live.", "gauge")
	pw.IntSample("optd_sessions_active", nil, m.SessionsActive.Load())
	pw.Header("optd_sessions_evicted_total", "Interactive sessions evicted.", "counter")
	pw.IntSample("optd_sessions_evicted_total", nil, m.SessionsEvicted.Load())

	pw.Header("optd_jobs_submitted_total", "Batch jobs accepted, by dedup outcome.", "counter")
	pw.IntSample("optd_jobs_submitted_total", []obs.Label{obs.L("dedup", "new")}, m.JobsSubmitted.Load())
	pw.IntSample("optd_jobs_submitted_total", []obs.Label{obs.L("dedup", "existing")}, m.JobsDeduped.Load())
	pw.Header("optd_jobs_retries_total", "Batch job attempts re-queued after a retryable failure.", "counter")
	pw.IntSample("optd_jobs_retries_total", nil, m.JobsRetried.Load())
	pw.Header("optd_jobs_queued", "Batch jobs waiting to run.", "gauge")
	pw.IntSample("optd_jobs_queued", nil, m.JobsQueued.Load())
	pw.Header("optd_jobs_running", "Batch jobs currently executing.", "gauge")
	pw.IntSample("optd_jobs_running", nil, m.JobsRunning.Load())
	pw.Header("optd_jobs_finished_total", "Batch jobs reaching a terminal state, by state.", "counter")
	pw.IntSample("optd_jobs_finished_total", []obs.Label{obs.L("state", "done")}, m.JobsDone.Load())
	pw.IntSample("optd_jobs_finished_total", []obs.Label{obs.L("state", "failed")}, m.JobsFailed.Load())
	pw.IntSample("optd_jobs_finished_total", []obs.Label{obs.L("state", "cancelled")}, m.JobsCancelled.Load())
	pw.Header("optd_jobs_duration_seconds", "Batch job enqueue-to-terminal latency.", "histogram")
	pw.Histogram("optd_jobs_duration_seconds", nil, m.JobLatency.Snapshot())

	if m.nativeOn.Load() {
		pw.Header("optd_native_compile_seconds", "Native artifact toolchain build latency.", "histogram")
		pw.Histogram("optd_native_compile_seconds", nil, m.NativeCompileSeconds.Snapshot())
		pw.Header("optd_native_compiles_total", "Native artifact toolchain builds by result.", "counter")
		pw.IntSample("optd_native_compiles_total", []obs.Label{obs.L("result", "ok")}, m.NativeCompiles.Load())
		pw.IntSample("optd_native_compiles_total", []obs.Label{obs.L("result", "error")}, m.NativeCompileFailures.Load())
		pw.Header("optd_native_artifacts_total", "Native artifact cache outcomes by event.", "counter")
		pw.IntSample("optd_native_artifacts_total", []obs.Label{obs.L("event", "hit")}, m.NativeHits.Load())
		pw.IntSample("optd_native_artifacts_total", []obs.Label{obs.L("event", "miss")}, m.NativeMisses.Load())
		pw.IntSample("optd_native_artifacts_total", []obs.Label{obs.L("event", "corrupt")}, m.NativeCorrupt.Load())
		pw.IntSample("optd_native_artifacts_total", []obs.Label{obs.L("event", "fallback")}, m.NativeFallbacks.Load())
		pw.Header("optd_native_served_total", "Requests served by compiled optimizers, by execution mode.", "counter")
		pw.IntSample("optd_native_served_total", []obs.Label{obs.L("mode", "plugin")}, m.NativeServedPlugin.Load())
		pw.IntSample("optd_native_served_total", []obs.Label{obs.L("mode", "subprocess")}, m.NativeServedSubprocess.Load())
		pw.Header("optd_native_spec_loaded", "Whether a compiled optimizer is loaded for the spec (1 when loaded).", "gauge")
		specsSorted, loaded := m.nativeLoadedSnapshot()
		for _, spec := range specsSorted {
			pw.IntSample("optd_native_spec_loaded", []obs.Label{obs.L("spec", spec), obs.L("mode", loaded[spec])}, 1)
		}
	}

	if m.regionOn.Load() {
		pw.Header("optd_region_passes_total", "Region-parallel pass executions by path.", "counter")
		pw.IntSample("optd_region_passes_total", []obs.Label{obs.L("path", "regions")}, m.RegionRuns.Load())
		pw.IntSample("optd_region_passes_total", []obs.Label{obs.L("path", "sharded")}, m.RegionSharded.Load())
		pw.Header("optd_region_regions_total", "Regions executed across region-parallel passes.", "counter")
		pw.IntSample("optd_region_regions_total", nil, m.RegionRegions.Load())
		pw.Header("optd_region_fallbacks_total", "Partitioned attempts abandoned to the sequential rerun.", "counter")
		pw.IntSample("optd_region_fallbacks_total", nil, m.RegionFallbacks.Load())
	}

	if m.advisorOn.Load() {
		pw.Header("optd_advisor_store_records", "Outcome records live in the advisor store.", "gauge")
		pw.IntSample("optd_advisor_store_records", nil, m.AdvisorStoreRecords.Load())
		pw.Header("optd_advisor_harvested_total", "Optimization outcomes ingested into the advisor store.", "counter")
		pw.IntSample("optd_advisor_harvested_total", nil, m.AdvisorHarvested.Load())
		pw.Header("optd_advisor_dropped_total", "Outcomes shed because the harvest queue was full.", "counter")
		pw.IntSample("optd_advisor_dropped_total", nil, m.AdvisorDropped.Load())
		pw.Header("optd_advisor_decisions_total", "Order-directive resolutions by decision.", "counter")
		pw.IntSample("optd_advisor_decisions_total", []obs.Label{obs.L("decision", "auto")}, m.AdvisorAuto.Load())
		pw.IntSample("optd_advisor_decisions_total", []obs.Label{obs.L("decision", "fallback")}, m.AdvisorFallback.Load())
		pw.IntSample("optd_advisor_decisions_total", []obs.Label{obs.L("decision", "default")}, m.AdvisorDefault.Load())
		pw.IntSample("optd_advisor_decisions_total", []obs.Label{obs.L("decision", "explicit")}, m.AdvisorExplicit.Load())
		pw.Header("optd_advisor_retrieval_seconds", "Advisor featurize-and-retrieve latency.", "histogram")
		pw.Histogram("optd_advisor_retrieval_seconds", nil, m.AdvisorRetrieval.Snapshot())
	}

	if m.farmOn.Load() {
		total, running := m.farmCampaignCounts()
		pw.Header("optd_farm_campaigns", "Fuzzing campaigns registered on this node.", "gauge")
		pw.IntSample("optd_farm_campaigns", nil, total)
		pw.Header("optd_farm_campaigns_active", "Fuzzing campaigns still sweeping.", "gauge")
		pw.IntSample("optd_farm_campaigns_active", nil, running)
		pw.Header("optd_farm_programs_total", "Corpus programs checked by the differential oracle.", "counter")
		pw.IntSample("optd_farm_programs_total", nil, m.FarmPrograms.Load())
		pw.Header("optd_farm_divergent_total", "Corpus programs with at least one divergence.", "counter")
		pw.IntSample("optd_farm_divergent_total", nil, m.FarmDivergent.Load())
		pw.Header("optd_farm_errors_total", "Corpus programs the oracle could not judge.", "counter")
		pw.IntSample("optd_farm_errors_total", nil, m.FarmErrored.Load())
		pw.Header("optd_farm_findings_total", "Findings persisted to the farm store.", "counter")
		pw.IntSample("optd_farm_findings_total", nil, m.FarmFindings.Load())
		pw.Header("optd_farm_minimize_seconds", "Reproducer minimization latency.", "histogram")
		pw.Histogram("optd_farm_minimize_seconds", nil, m.FarmMinimizeSeconds.Snapshot())
	}

	if m.traceStats != nil {
		st := m.traceStats()
		pw.Header("optd_trace_fragments_total", "Trace fragments by tail-sampling decision.", "counter")
		pw.IntSample("optd_trace_fragments_total", []obs.Label{obs.L("decision", "error")}, st.KeptError)
		pw.IntSample("optd_trace_fragments_total", []obs.Label{obs.L("decision", "slow")}, st.KeptSlow)
		pw.IntSample("optd_trace_fragments_total", []obs.Label{obs.L("decision", "sticky")}, st.KeptSticky)
		pw.IntSample("optd_trace_fragments_total", []obs.Label{obs.L("decision", "sampled")}, st.KeptSampled)
		pw.IntSample("optd_trace_fragments_total", []obs.Label{obs.L("decision", "dropped")}, st.Dropped)
		pw.Header("optd_trace_evicted_total", "Trace fragments evicted from the ring.", "counter")
		pw.IntSample("optd_trace_evicted_total", nil, st.Evicted)
		pw.Header("optd_trace_fragments_stored", "Trace fragments currently retained.", "gauge")
		pw.IntSample("optd_trace_fragments_stored", nil, st.Fragments)
		pw.Header("optd_trace_spans_stored", "Spans currently retained across fragments.", "gauge")
		pw.IntSample("optd_trace_spans_stored", nil, st.Spans)
		pw.Header("optd_trace_spill_bytes", "Trace spill-log size on disk.", "gauge")
		pw.IntSample("optd_trace_spill_bytes", nil, st.SpillBytes)
	}

	pw.Header("optd_build_info", "Build and configuration identity (value is always 1).", "gauge")
	pw.IntSample("optd_build_info", []obs.Label{
		obs.L("go_version", runtime.Version()),
		obs.L("codegen_version", codegen.Version),
		obs.L("vnodes", strconv.Itoa(cluster.DefaultVNodes)),
	}, 1)

	if m.clusterStatus != nil {
		pw.Header("optd_cluster_peers", "Cluster membership size (including this node).", "gauge")
		pw.IntSample("optd_cluster_peers", nil, int64(len(m.clusterPeers)))
		pw.Header("optd_cluster_peer_up", "Peer health as last probed (1 up, 0 down).", "gauge")
		for _, st := range m.clusterStatus() {
			up := int64(0)
			if st.Up {
				up = 1
			}
			pw.IntSample("optd_cluster_peer_up", []obs.Label{obs.L("peer", st.Addr)}, up)
		}
		pw.Header("optd_cluster_routed_total", "Content-addressed requests by routing decision.", "counter")
		pw.IntSample("optd_cluster_routed_total", []obs.Label{obs.L("decision", "local")}, m.ClusterLocal.Load())
		pw.IntSample("optd_cluster_routed_total", []obs.Label{obs.L("decision", "forwarded")}, m.ClusterForwarded.Load())
		pw.IntSample("optd_cluster_routed_total", []obs.Label{obs.L("decision", "failover")}, m.ClusterFailovers.Load())
		pw.IntSample("optd_cluster_routed_total", []obs.Label{obs.L("decision", "redirect")}, m.ClusterRedirects.Load())
		pw.Header("optd_cluster_peer_transitions_total", "Peer up/down health transitions observed.", "counter")
		pw.IntSample("optd_cluster_peer_transitions_total", nil, m.ClusterPeerTransitions.Load())
		pw.Header("optd_cluster_forward_seconds", "Proxied request round-trip latency.", "histogram")
		pw.Histogram("optd_cluster_forward_seconds", nil, m.ForwardLatency.Snapshot())
	}

	return pw.Err()
}
