package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/frontend"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/ir"
	"repro/optlib"
)

// JobSubmitRequest is the body of POST /v1/jobs: an optimize request plus
// scheduling knobs. The embedded OptimizeRequest fields appear inline.
type JobSubmitRequest struct {
	OptimizeRequest
	// Priority is "high", "normal" (default) or "low".
	Priority string `json:"priority,omitempty"`
	// MaxRetries overrides the server's retry budget for this job; nil
	// selects the server default.
	MaxRetries *int `json:"max_retries,omitempty"`
	// DeadlineMS, when > 0, fails the job once this many milliseconds have
	// passed since submission — queued or running.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Trace asks for the span forest in the job result (bypasses the result
	// cache, like ?trace=1 on /v1/optimize).
	Trace bool `json:"trace,omitempty"`
}

// jobKey is the idempotency key: a content address over everything that
// shapes the result. Scheduling knobs (priority, retries, deadline) are
// deliberately excluded — resubmitting the same work at a different
// priority still dedups onto the in-flight job.
func (req *JobSubmitRequest) jobKey() string {
	parts := []string{"jobs/v1", req.Source, strings.Join(req.Opts, ",")}
	for _, st := range req.Specs {
		parts = append(parts, st.Name, st.Text)
	}
	parts = append(parts,
		fmt.Sprint(req.MaxIterations),
		fmt.Sprint(req.Recompute == nil || *req.Recompute),
		fmt.Sprint(req.Trace),
		req.Order)
	return CacheKey(parts...)
}

// JobView is the wire shape of a job in every /v1/jobs response.
type JobView struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Priority string `json:"priority"`
	// Attempts counts started attempts; with NextRunAt it is the backoff
	// state a poller sees between retries.
	Attempts    int       `json:"attempts"`
	MaxRetries  int       `json:"max_retries"`
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
	NextRunAt   time.Time `json:"next_run_at,omitzero"`
	Deadline    time.Time `json:"deadline,omitzero"`
	LastError   string    `json:"last_error,omitempty"`
	// Existing reports that submission dedup'd onto a prior job.
	Existing bool `json:"existing,omitempty"`
}

func jobView(j *jobs.Job) JobView {
	return JobView{
		ID:          j.ID,
		State:       string(j.State),
		Priority:    j.Priority.String(),
		Attempts:    j.Attempts,
		MaxRetries:  j.MaxRetries,
		SubmittedAt: j.SubmittedAt,
		StartedAt:   j.StartedAt,
		FinishedAt:  j.FinishedAt,
		NextRunAt:   j.NextRunAt,
		Deadline:    j.Deadline,
		LastError:   j.LastError,
	}
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) error {
	var req JobSubmitRequest
	if err := decodeBody(r, &req); err != nil {
		return err
	}
	if strings.TrimSpace(req.Source) == "" {
		return failf(http.StatusBadRequest, "bad_request", "request needs a MiniF program in source")
	}
	// Validate and canonicalize up front so bad requests fail at submission
	// (synchronously, as a 400) instead of as a failed job, and so "cse"
	// and "CSE" dedup onto the same key.
	names, err := canonOpts(req.Opts)
	if err != nil {
		return err
	}
	req.Opts = names
	// The order directive resolves at submission time (an auto decision is
	// made against the store as it stands now, and the resolved order rides
	// in the payload), so it shapes the idempotency key like any other
	// result-affecting field.
	if q := r.URL.Query().Get("order"); q != "" {
		req.Order = q
	}
	if _, err := s.resolveOrder(r.Context(), &req.OptimizeRequest, nil); err != nil {
		return err
	}
	prio, perr := jobs.ParsePriority(req.Priority)
	if perr != nil {
		return failf(http.StatusBadRequest, "bad_request", "%v", perr)
	}
	retries := -1 // manager default
	if req.MaxRetries != nil {
		if *req.MaxRetries < 0 {
			return failf(http.StatusBadRequest, "bad_request", "max_retries must be >= 0")
		}
		retries = *req.MaxRetries
	}
	var deadline time.Time
	if req.DeadlineMS > 0 {
		deadline = time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}
	payload, err := json.Marshal(&req)
	if err != nil {
		return failf(http.StatusBadRequest, "bad_request", "unencodable job payload: %v", err)
	}
	// The job ID is derived from the idempotency key's content address
	// rather than random: every cluster node can then compute a job's
	// owning shard from the ID alone, and status routes redirect without a
	// lookup table. Owner-aware submission rides on the same property — a
	// resubmission anywhere in the cluster routes to the same owner and
	// dedups there.
	key := req.jobKey()
	// The submitter's trace context rides in the job record (through the
	// WAL), so the attempt's spans — possibly on another day, after a crash —
	// join the trace of the request that queued the work.
	j, existing, err := s.jobs.Submit(jobs.SubmitRequest{
		ID:          jobIDForKey(key),
		Key:         key,
		Payload:     payload,
		Priority:    prio,
		MaxRetries:  retries,
		Deadline:    deadline,
		TraceID:     trace.FragmentFrom(r.Context()).TraceID(),
		TraceParent: trace.Traceparent(r.Context()),
	})
	switch {
	case errors.Is(err, jobs.ErrClosed):
		w.Header().Set("Retry-After", "5")
		return failf(http.StatusServiceUnavailable, "draining", "job queue is shutting down")
	case errors.Is(err, jobs.ErrIDInUse):
		return failf(http.StatusConflict, "id_conflict", "%v", err)
	case err != nil:
		return failf(http.StatusInternalServerError, "jobs_wal", "could not persist job: %v", err)
	}
	v := jobView(j)
	v.Existing = existing
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, v)
	return nil
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	if s.redirectJob(w, r, id) {
		return nil
	}
	// ?wait=1 long-polls until the job is terminal or the request deadline
	// hits, then reports whatever state the job is in.
	if r.URL.Query().Get("wait") == "1" {
		if j, err := s.jobs.Wait(r.Context(), id); err == nil {
			writeJSON(w, http.StatusOK, jobView(j))
			return nil
		} else if errors.Is(err, jobs.ErrNotFound) {
			return failf(http.StatusNotFound, "no_job", "no job %q", id)
		}
	}
	j, ok := s.jobs.Get(id)
	if !ok {
		return failf(http.StatusNotFound, "no_job", "no job %q", id)
	}
	writeJSON(w, http.StatusOK, jobView(j))
	return nil
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	if s.redirectJob(w, r, id) {
		return nil
	}
	j, ok := s.jobs.Get(id)
	if !ok {
		return failf(http.StatusNotFound, "no_job", "no job %q", id)
	}
	switch j.State {
	case jobs.StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(j.Result)
		if len(j.Result) == 0 || j.Result[len(j.Result)-1] != '\n' {
			_, _ = w.Write([]byte("\n"))
		}
		return nil
	case jobs.StateFailed:
		return failf(http.StatusUnprocessableEntity, "job_failed", "%s", j.LastError)
	case jobs.StateCancelled:
		return failf(http.StatusGone, "job_cancelled", "job %s was cancelled", id)
	default:
		w.Header().Set("Retry-After", "1")
		return failf(http.StatusConflict, "job_pending",
			"job %s is %s (attempt %d); result not ready", id, j.State, j.Attempts)
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	if s.redirectJob(w, r, id) {
		return nil
	}
	j, err := s.jobs.Cancel(id)
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		return failf(http.StatusNotFound, "no_job", "no job %q", id)
	case errors.Is(err, jobs.ErrTerminal):
		return failf(http.StatusConflict, "job_finished", "job %s already %s", id, j.State)
	case err != nil:
		return failf(http.StatusInternalServerError, "internal", "%v", err)
	}
	// A running job cancels asynchronously (its context is cancelled and it
	// reaches cancelled when the attempt returns), hence 202 not 200.
	writeJSON(w, http.StatusAccepted, jobView(j))
	return nil
}

// JobListResponse is the body of GET /v1/jobs.
type JobListResponse struct {
	Jobs []JobView `json:"jobs"`
	// Next, when non-zero, is the ?before= cursor for the following page.
	Next uint64 `json:"next,omitempty"`
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) error {
	q := r.URL.Query()
	state := jobs.State(q.Get("state"))
	switch state {
	case "", jobs.StateQueued, jobs.StateRunning, jobs.StateDone, jobs.StateFailed, jobs.StateCancelled:
	default:
		return failf(http.StatusBadRequest, "bad_request",
			"unknown state %q (have queued, running, done, failed, cancelled)", state)
	}
	limit := 50
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 1000 {
			return failf(http.StatusBadRequest, "bad_request", "limit must be in 1..1000")
		}
		limit = n
	}
	var before uint64
	if v := q.Get("before"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return failf(http.StatusBadRequest, "bad_request", "before must be a cursor from a prior page")
		}
		before = n
	}
	page, next := s.jobs.List(state, limit, before)
	resp := JobListResponse{Jobs: make([]JobView, len(page)), Next: next}
	for i, j := range page {
		resp.Jobs[i] = jobView(j)
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// runJob executes one job attempt under its own trace fragment: the root
// "job.run" span joins the submitter's trace through the context recorded
// in the job's WAL record, a synthetic "job.queue" span reconstructs the
// queue wait from the submit/start timestamps, and the attempt's outcome
// feeds the tail sampler under the "jobs.run" route.
func (s *Server) runJob(ctx context.Context, j *jobs.Job) (json.RawMessage, error) {
	var frag *trace.Fragment
	if s.traces != nil && j.TraceID != "" {
		parent, _ := trace.ParseTraceparent(j.TraceParent)
		node := ""
		if s.cluster != nil {
			node = s.cluster.Self()
		}
		frag = trace.NewFragment(parent, "job.run", node)
		root := frag.Root()
		root.Set("id", j.ID)
		root.Set("attempt", strconv.Itoa(j.Attempts))
		if !j.StartedAt.IsZero() && j.StartedAt.After(j.SubmittedAt) {
			frag.AddSpan(root, "job.queue", j.SubmittedAt, j.StartedAt.Sub(j.SubmittedAt))
		}
		ctx = trace.ContextWithFragment(ctx, frag, root)
	}
	raw, err := s.runJobAttempt(ctx, j)
	if frag != nil {
		root := frag.Root()
		switch {
		case err == nil:
			root.SetStatus(http.StatusOK)
		case jobs.IsPermanent(err):
			root.SetStatus(http.StatusUnprocessableEntity)
			root.SetError(err.Error())
		default:
			root.SetStatus(http.StatusInternalServerError)
			root.SetError(err.Error())
		}
		s.traces.Record("jobs.run", frag.Spans())
	}
	return raw, err
}

// runJobAttempt is the attempt body: the same parse → optimize pipeline as
// POST /v1/optimize, sharing its content-addressed result cache, but driven
// by the job manager's worker pool under the attempt context. Deterministic
// failures (bad payload, parse errors, spec errors, iteration limit) are
// marked Permanent so the scheduler fails them without burning retries;
// context errors (attempt timeout, drain, cancel) bubble up untouched so
// the manager can requeue or cancel.
func (s *Server) runJobAttempt(ctx context.Context, j *jobs.Job) (json.RawMessage, error) {
	// A top-level "farm" key marks a fuzzing-campaign seed job; everything
	// else is an optimize payload.
	var probe struct {
		Farm *farmJobSpec `json:"farm"`
	}
	if err := json.Unmarshal(j.Payload, &probe); err == nil && probe.Farm != nil {
		return s.runFarmJob(ctx, probe.Farm)
	}
	var req JobSubmitRequest
	if err := json.Unmarshal(j.Payload, &req); err != nil {
		return nil, jobs.Permanent(fmt.Errorf("corrupt job payload: %w", err))
	}
	// The order directive was resolved at submission; req.Opts is already
	// the effective order, so stamping is all that is left to do here.
	var order []string
	if strings.TrimSpace(req.Order) != "" {
		order = append([]string(nil), req.Opts...)
	}

	var key string
	if !req.NoCache && !req.Trace {
		key = req.OptimizeRequest.cacheKey()
		if raw, ok := s.cache.Get(key); ok {
			s.metrics.CacheHits.Add(1)
			var resp OptimizeResponse
			if err := json.Unmarshal(raw, &resp); err == nil {
				resp.Cached = true
				return json.Marshal(resp)
			}
		}
		s.metrics.CacheMisses.Add(1)
	}

	// The compiled fast path, mirroring /v1/optimize: serve from a loaded
	// native artifact when one covers the pipeline, interpret otherwise.
	if nresp, nerr, served := s.tryNative(ctx, &req.OptimizeRequest, req.Trace); served {
		if nerr != nil {
			switch {
			case nerr.parse:
				return nil, jobs.Permanent(fmt.Errorf("parse error: %w", nerr.err))
			case errors.Is(nerr.err, optlib.ErrIterationLimit):
				s.metrics.IterationLimitAborts.Add(1)
				return nil, jobs.Permanent(fmt.Errorf(
					"pass %s hit its iteration limit after %d application(s)", nerr.pass, nerr.apps))
			case ctx.Err() != nil:
				if errors.Is(ctx.Err(), context.DeadlineExceeded) {
					s.metrics.Timeouts.Add(1)
				}
				return nil, ctx.Err()
			default:
				return nil, jobs.Permanent(fmt.Errorf("pass %s: %w", nerr.pass, nerr.err))
			}
		}
		nresp.Order = order
		raw, err := json.Marshal(nresp)
		if err != nil {
			return nil, jobs.Permanent(fmt.Errorf("unencodable job result: %w", err))
		}
		if key != "" {
			s.cache.Put(key, raw)
		}
		return raw, nil
	}

	var results []PassResult
	timing := func(spec string, apps int, d time.Duration) {
		results = append(results, PassResult{Name: spec, Applications: apps, DurationUS: d.Microseconds()})
	}
	var tracer *obs.Tracer
	if req.Trace {
		tracer = obs.NewTracer(obs.Collect(), obs.WithLogger(s.cfg.Logger.With("job_id", j.ID)))
	}
	passes, err := s.compilePasses(&req.OptimizeRequest, timing, tracer)
	if err != nil {
		return nil, jobs.Permanent(err)
	}

	t0 := time.Now()
	psp, _ := trace.Start(ctx, "parse")
	prog, err := frontend.Parse(req.Source)
	psp.End()
	if err != nil {
		psp.SetError(err.Error())
		return nil, jobs.Permanent(fmt.Errorf("parse error: %w", err))
	}
	parseUS := time.Since(t0).Microseconds()

	for _, ps := range passes {
		sp, _ := trace.Start(ctx, "pass."+ps.name)
		apps, err := ps.opt.ApplyAllCtx(ctx, prog)
		sp.Set("applications", strconv.Itoa(len(apps)))
		sp.End()
		if err != nil {
			sp.SetError(err.Error())
			switch {
			case errors.Is(err, optlib.ErrIterationLimit):
				s.metrics.IterationLimitAborts.Add(1)
				return nil, jobs.Permanent(fmt.Errorf(
					"pass %s hit its iteration limit after %d application(s)", ps.name, len(apps)))
			case ctx.Err() != nil:
				if errors.Is(ctx.Err(), context.DeadlineExceeded) {
					s.metrics.Timeouts.Add(1)
				}
				return nil, ctx.Err()
			default:
				return nil, jobs.Permanent(fmt.Errorf("pass %s: %w", ps.name, err))
			}
		}
	}

	resp := OptimizeResponse{
		MiniF:        ir.ToMiniF(prog),
		IR:           prog.String(),
		Applications: results,
		ParseUS:      parseUS,
		TotalUS:      time.Since(t0).Microseconds(),
		Order:        order,
	}
	if s.native != nil {
		resp.Engine = EngineInterp
	}
	if req.Trace {
		// Join the engine's per-pass span trees under one job root so the
		// stored trace carries the job identity and attempt number.
		resp.Trace = []*obs.Node{{
			Name: "job",
			Attrs: []obs.Field{
				{Key: "id", Value: j.ID},
				{Key: "attempt", Value: j.Attempts},
			},
			DurationUS: resp.TotalUS,
			Children:   tracer.Trees(),
		}}
	}
	raw, err := json.Marshal(resp)
	if err != nil {
		return nil, jobs.Permanent(fmt.Errorf("unencodable job result: %w", err))
	}
	if key != "" {
		s.cache.Put(key, raw)
	}
	return raw, nil
}
