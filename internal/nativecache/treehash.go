package nativecache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// libraryDirs are the packages a generated optimizer links against — the
// transitive closure of repro/optlib, repro/ir and repro/dep (the only
// imports codegen emits) plus go.mod. Their tree hash is part of every
// artifact key: an edit to any linked library moves the key, so an on-disk
// artifact can never silently serve stale library code. The closure is
// asserted against `go list -deps` by TestLibraryClosureCurrent.
var libraryDirs = []string{
	"dep",
	"internal/cfg",
	"internal/dataflow",
	"internal/frontend",
	"internal/gospel",
	"internal/handopt",
	"internal/par",
	"internal/region",
	"ir",
	"optlib",
}

// treeHash digests the module's go.mod and every non-test Go file under the
// library closure, by sorted relative path.
func treeHash(moduleRoot string) (string, error) {
	h := sha256.New()
	files := []string{"go.mod"}
	for _, dir := range libraryDirs {
		err := filepath.WalkDir(filepath.Join(moduleRoot, dir), func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			rel, err := filepath.Rel(moduleRoot, path)
			if err != nil {
				return err
			}
			files = append(files, filepath.ToSlash(rel))
			return nil
		})
		if err != nil {
			return "", err
		}
	}
	sort.Strings(files)
	for _, rel := range files {
		data, err := os.ReadFile(filepath.Join(moduleRoot, rel))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s\x00%d\x00", rel, len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// FindModuleRoot locates the repro module checkout the generated code must
// link against: it walks upward from the working directory, then from the
// executable's directory, looking for a go.mod declaring module repro.
func FindModuleRoot() (string, error) {
	var tried []string
	if wd, err := os.Getwd(); err == nil {
		if root, ok := findUp(wd); ok {
			return root, nil
		}
		tried = append(tried, wd)
	}
	if exe, err := os.Executable(); err == nil {
		if root, ok := findUp(filepath.Dir(exe)); ok {
			return root, nil
		}
		tried = append(tried, filepath.Dir(exe))
	}
	return "", fmt.Errorf("nativecache: no repro module root above %s (set -native-dir alongside an explicit module root, or run inside the checkout)", strings.Join(tried, ", "))
}

func findUp(dir string) (string, bool) {
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if strings.TrimSpace(line) == "module repro" {
					return dir, true
				}
				if strings.HasPrefix(strings.TrimSpace(line), "module ") {
					break
				}
			}
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", false
		}
		dir = parent
	}
}
