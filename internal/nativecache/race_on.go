//go:build race

package nativecache

// raceEnabled reports whether this binary carries race instrumentation, in
// which case the Go plugin runtime refuses to load the (uninstrumented)
// artifacts and every load falls back to the subprocess runner.
const raceEnabled = true
