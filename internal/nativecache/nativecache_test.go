package nativecache

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/specs"
	"repro/internal/workloads"
	"repro/optlib"
)

// counters instruments a Config with atomic telemetry counters.
type counters struct {
	compiles, hits, misses, corrupt atomic.Int64
}

func (c *counters) obs() Obs {
	return Obs{
		Compile: func(time.Duration, bool) { c.compiles.Add(1) },
		Event: func(kind string) {
			switch kind {
			case "hit":
				c.hits.Add(1)
			case "miss":
				c.misses.Add(1)
			case "corrupt":
				c.corrupt.Add(1)
			}
		},
	}
}

func testConfig(t *testing.T, dir string, ct *counters) Config {
	t.Helper()
	root, err := FindModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Dir: dir, ModuleRoot: root}
	if ct != nil {
		cfg.Obs = ct.obs()
	}
	return cfg
}

func requireToolchain(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode: skipping toolchain integration")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
}

func smallSet() SpecSet {
	return NewSpecSet(map[string]string{"CTP": specs.Sources["CTP"]})
}

// TestSubprocessRoundTripAndDiskReuse builds a runner artifact, checks its
// output against the interpreted engine, then reloads through a fresh Cache
// (a simulated process restart) and asserts the artifact was reused from
// disk without another toolchain run.
func TestSubprocessRoundTripAndDiskReuse(t *testing.T) {
	requireToolchain(t)
	dir := t.TempDir()
	var ct counters
	c, err := New(testConfig(t, dir, &ct))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	art, err := c.Ensure(context.Background(), smallSet(), ModeSubprocess)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ct.compiles.Load(), int64(1); got != want {
		t.Fatalf("compiles = %d, want %d", got, want)
	}
	w := workloads.All[0]
	res, err := art.RunPipeline(context.Background(), w.Source, []string{"CTP"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.PipelineError(); err != nil {
		t.Fatal(err)
	}
	p := w.Program()
	if _, err := specs.MustCompile("CTP").ApplyAll(p); err != nil {
		t.Fatal(err)
	}
	if res.IR != p.String() {
		t.Errorf("compiled and interpreted outputs differ\n--- compiled ---\n%s--- engine ---\n%s", res.IR, p.String())
	}

	// Fresh Cache over the same dir: disk hit, no rebuild.
	var ct2 counters
	c2, err := New(testConfig(t, dir, &ct2))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Ensure(context.Background(), smallSet(), ModeSubprocess); err != nil {
		t.Fatal(err)
	}
	if ct2.compiles.Load() != 0 || ct2.hits.Load() != 1 {
		t.Errorf("restart reload: compiles=%d hits=%d, want 0 compiles and 1 hit",
			ct2.compiles.Load(), ct2.hits.Load())
	}
}

// TestCorruptArtifactRebuilt truncates an installed artifact and asserts a
// fresh Cache detects the integrity failure, discards the file and
// rebuilds.
func TestCorruptArtifactRebuilt(t *testing.T) {
	requireToolchain(t)
	dir := t.TempDir()
	c, err := New(testConfig(t, dir, nil))
	if err != nil {
		t.Fatal(err)
	}
	art, err := c.Ensure(context.Background(), smallSet(), ModeSubprocess)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	bin := filepath.Join(dir, art.Key+".bin")
	if err := os.Truncate(bin, 100); err != nil {
		t.Fatal(err)
	}

	var ct counters
	c2, err := New(testConfig(t, dir, &ct))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	art2, err := c2.Ensure(context.Background(), smallSet(), ModeSubprocess)
	if err != nil {
		t.Fatal(err)
	}
	if ct.corrupt.Load() != 1 || ct.compiles.Load() != 1 {
		t.Errorf("corrupt=%d compiles=%d, want 1 and 1", ct.corrupt.Load(), ct.compiles.Load())
	}
	res, err := art2.RunPipeline(context.Background(), workloads.All[0].Source, []string{"CTP"}, 0)
	if err != nil || res.PipelineError() != nil {
		t.Fatalf("rebuilt artifact does not run: %v / %v", err, res.PipelineError())
	}
}

// TestMissingSidecarTreatedAsCorrupt removes only the integrity sidecar —
// the state a crash between the two installation renames leaves behind.
func TestMissingSidecarTreatedAsCorrupt(t *testing.T) {
	requireToolchain(t)
	dir := t.TempDir()
	c, err := New(testConfig(t, dir, nil))
	if err != nil {
		t.Fatal(err)
	}
	art, err := c.Ensure(context.Background(), smallSet(), ModeSubprocess)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := os.Remove(filepath.Join(dir, art.Key+".bin.sum")); err != nil {
		t.Fatal(err)
	}
	var ct counters
	c2, err := New(testConfig(t, dir, &ct))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Ensure(context.Background(), smallSet(), ModeSubprocess); err != nil {
		t.Fatal(err)
	}
	if ct.corrupt.Load() != 1 || ct.compiles.Load() != 1 {
		t.Errorf("corrupt=%d compiles=%d, want 1 and 1", ct.corrupt.Load(), ct.compiles.Load())
	}
}

// TestStaleSpecMovesKey asserts that editing a spec source changes the
// artifact's content address — stale artifacts are never found, let alone
// loaded.
func TestStaleSpecMovesKey(t *testing.T) {
	dir := t.TempDir()
	c, err := New(testConfig(t, dir, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	k1, err := c.Key(smallSet())
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(specs.Sources["CTP"], " ", "  ", 1) // whitespace-only edit still moves the key
	k2, err := c.Key(NewSpecSet(map[string]string{"CTP": edited}))
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatal("edited spec produced the same artifact key")
	}
	if k1 != mustKey(t, c, smallSet()) {
		t.Fatal("key computation is not deterministic")
	}
}

func mustKey(t *testing.T, c *Cache, set SpecSet) string {
	t.Helper()
	k, err := c.Key(set)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestConcurrentEnsureSingleflight fires a herd of first loads at one
// artifact and asserts exactly one toolchain build ran.
func TestConcurrentEnsureSingleflight(t *testing.T) {
	requireToolchain(t)
	var ct counters
	c, err := New(testConfig(t, t.TempDir(), &ct))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const herd = 8
	arts := make([]*Artifact, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, err := c.Ensure(context.Background(), smallSet(), ModeSubprocess)
			if err != nil {
				t.Error(err)
				return
			}
			arts[i] = a
		}(i)
	}
	wg.Wait()
	if got := ct.compiles.Load(); got != 1 {
		t.Errorf("herd of %d triggered %d compiles, want 1", herd, got)
	}
	for i := 1; i < herd; i++ {
		if arts[i] != nil && arts[0] != nil && arts[i] != arts[0] {
			t.Errorf("goroutine %d got a different artifact instance", i)
		}
	}
}

// TestAutoFallsBackWithoutPlugin covers the plugin-unavailable path
// explicitly: with the plugin runtime disabled, ModeAuto must produce a
// subprocess artifact, and ModePlugin must fail rather than lie.
func TestAutoFallsBackWithoutPlugin(t *testing.T) {
	requireToolchain(t)
	cfg := testConfig(t, t.TempDir(), nil)
	cfg.DisablePlugin = true
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	art, err := c.Ensure(context.Background(), smallSet(), ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	if art.Mode() != "subprocess" || art.InProcess() {
		t.Fatalf("auto with plugins disabled loaded mode %s", art.Mode())
	}
}

// TestAutoPrefersPlugin checks the happy path on plugin-capable hosts: auto
// yields an in-process artifact whose compiled matchers match the engine.
// Race-instrumented runs exercise the subprocess fallback instead.
func TestAutoPrefersPlugin(t *testing.T) {
	requireToolchain(t)
	c, err := New(testConfig(t, t.TempDir(), nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	art, err := c.Ensure(context.Background(), smallSet(), ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	if raceEnabled {
		if art.Mode() != "subprocess" {
			t.Fatalf("race build loaded mode %s, want subprocess", art.Mode())
		}
		return
	}
	if art.Mode() != "plugin" {
		t.Fatalf("auto loaded mode %s, want plugin", art.Mode())
	}
	fn, ok := art.Func("CTP")
	if !ok {
		t.Fatal("plugin artifact has no CTP func")
	}
	w := workloads.All[0]
	p := w.Program()
	if _, err := optlib.Fixpoint(p, fn, optlib.Limits{}); err != nil {
		t.Fatal(err)
	}
	q := w.Program()
	if _, err := specs.MustCompile("CTP").ApplyAll(q); err != nil {
		t.Fatal(err)
	}
	if p.String() != q.String() {
		t.Errorf("plugin and engine disagree\n--- plugin ---\n%s--- engine ---\n%s", p.String(), q.String())
	}
}

// TestBadModuleRoot asserts a clean constructor error instead of a build
// failure later.
func TestBadModuleRoot(t *testing.T) {
	_, err := New(Config{Dir: t.TempDir(), ModuleRoot: t.TempDir()})
	if err == nil {
		t.Fatal("New accepted a module root without go.mod")
	}
}

// TestLibraryClosureCurrent keeps libraryDirs honest: every package `go
// list` reports in the generated code's dependency closure must be hashed
// into the artifact key. A failure here means a new library import slipped
// in — add its directory to libraryDirs.
func TestLibraryClosureCurrent(t *testing.T) {
	requireToolchain(t)
	root, err := FindModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "list", "-deps", "repro/optlib", "repro/ir", "repro/dep")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		t.Fatal(err)
	}
	hashed := map[string]bool{}
	for _, d := range libraryDirs {
		hashed["repro/"+strings.ReplaceAll(d, string(filepath.Separator), "/")] = true
	}
	for _, pkg := range strings.Fields(string(out)) {
		if !strings.HasPrefix(pkg, "repro/") {
			continue
		}
		if !hashed[pkg] {
			t.Errorf("package %s is linked into generated artifacts but not part of the key's tree hash; add it to libraryDirs", pkg)
		}
	}
}
