package nativecache

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"plugin"
	"strconv"
	"strings"

	"repro/internal/trace"
	"repro/optlib"
)

// errUnloadable marks a verified on-disk plugin this host process cannot
// load (plugin runtime disabled by the platform, cgo, or race
// instrumentation). It is sticky per configuration, never per artifact, so
// callers skip rebuilds and fall back to the subprocess runner.
var errUnloadable = errors.New("nativecache: host cannot load plugins")

// Artifact is one loaded compiled optimizer set. Immutable after load.
type Artifact struct {
	Key   string
	mode  Mode
	specs []string
	funcs map[string]optlib.ApplyFunc // plugin mode
	bin   string                      // subprocess mode
}

// Mode reports how the artifact executes ("plugin" or "subprocess").
func (a *Artifact) Mode() string { return a.mode.String() }

// Specs returns the spec names the artifact was compiled from.
func (a *Artifact) Specs() []string { return append([]string(nil), a.specs...) }

// Func returns the compiled ApplyFunc for a spec (plugin mode only).
func (a *Artifact) Func(name string) (optlib.ApplyFunc, bool) {
	fn, ok := a.funcs[name]
	return fn, ok
}

// Covers reports whether every named pass is compiled into the artifact.
func (a *Artifact) Covers(names []string) bool {
	for _, n := range names {
		found := false
		for _, s := range a.specs {
			if s == n {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// InProcess reports whether the artifact's matchers run in this process
// (plugin mode).
func (a *Artifact) InProcess() bool { return a.mode == ModePlugin }

// openPlugin loads the shared object and resolves the exported Registry
// symbol, checking it against the expected spec set.
func openPlugin(path string, set SpecSet) (map[string]optlib.ApplyFunc, error) {
	pl, err := plugin.Open(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errUnloadable, err)
	}
	sym, err := pl.Lookup("Registry")
	if err != nil {
		return nil, fmt.Errorf("nativecache: artifact %s: %w", path, err)
	}
	reg, ok := sym.(*map[string]optlib.ApplyFunc)
	if !ok {
		return nil, fmt.Errorf("nativecache: artifact %s: Registry has type %T", path, sym)
	}
	for _, n := range set.names {
		if (*reg)[n] == nil {
			return nil, fmt.Errorf("nativecache: artifact %s: no compiled optimizer %s", path, n)
		}
	}
	return *reg, nil
}

// RunResult is the subprocess runner's stdout protocol (and, in plugin
// mode, the shape RunPipeline normalizes to): pass counts and the optimized
// program in both renderings. ErrKind is one of "parse", "unknown_opt",
// "iteration_limit" or "optimize"; empty means success.
type RunResult struct {
	Passes  []PassCountJSON `json:"passes"`
	MiniF   string          `json:"minif"`
	IR      string          `json:"ir"`
	ParseUS int64           `json:"parse_us"`
	ErrKind string          `json:"err_kind,omitempty"`
	Err     string          `json:"err,omitempty"`
}

// PassCountJSON is one pass of a RunResult.
type PassCountJSON struct {
	Name         string `json:"name"`
	Applications int    `json:"applications"`
	DurationUS   int64  `json:"duration_us"`
}

// PipelineError converts a RunResult's error fields back into the error the
// in-process pipeline would have returned (nil on success). Iteration-limit
// stops unwrap to optlib.ErrIterationLimit so callers classify both
// execution modes identically.
func (r *RunResult) PipelineError() error {
	switch r.ErrKind {
	case "":
		return nil
	case "iteration_limit":
		return fmt.Errorf("%s: %w", r.failingPass(), optlib.ErrIterationLimit)
	default:
		return fmt.Errorf("nativecache: runner: %s: %s", r.ErrKind, r.Err)
	}
}

func (r *RunResult) failingPass() string {
	if len(r.Passes) == 0 {
		return "?"
	}
	return r.Passes[len(r.Passes)-1].Name
}

// RunPipeline executes the artifact's subprocess runner over one MiniF
// source: opts name the passes in order, maxIter caps each pass's fixpoint
// (0 selects the optlib default). The child is killed when ctx ends.
func (a *Artifact) RunPipeline(ctx context.Context, source string, opts []string, maxIter int) (*RunResult, error) {
	if a.mode != ModeSubprocess {
		return nil, fmt.Errorf("nativecache: RunPipeline needs a subprocess artifact (have %s)", a.mode)
	}
	cmd := exec.CommandContext(ctx, a.bin, "-opts", strings.Join(opts, ","), "-maxiter", strconv.Itoa(maxIter))
	// Propagate the caller's trace context into the runner's environment.
	// The runner binary is content-addressed and shared across requests, so
	// the per-invocation identity travels out-of-band rather than baked in.
	if tp := trace.Traceparent(ctx); tp != "" {
		cmd.Env = append(os.Environ(), trace.EnvTraceparent+"="+tp)
	}
	cmd.Stdin = strings.NewReader(source)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("nativecache: runner failed: %w\n%s", err, stderr.String())
	}
	var res RunResult
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		return nil, fmt.Errorf("nativecache: undecodable runner output: %w", err)
	}
	return &res, nil
}
