package nativecache

import (
	"fmt"
	"strings"
)

// runnerSource emits the staging module's main.go: the exported Registry
// the plugin loader resolves, and a main() that drives the same module as a
// standalone runner — MiniF source on stdin, RunResult JSON on stdout. One
// source tree serves both execution modes; only the -buildmode differs.
func runnerSource(set SpecSet) string {
	var b strings.Builder
	b.WriteString(`package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/ir"
	"repro/optlib"
)

// Registry is the artifact's entry point: spec name to compiled optimizer.
// The plugin loader resolves this symbol; the subprocess main drives it.
var Registry = map[string]optlib.ApplyFunc{
`)
	for _, name := range set.names {
		fmt.Fprintf(&b, "\t%q: apply%s,\n", name, name)
	}
	b.WriteString(`}

// passJSON / resultJSON mirror repro/internal/nativecache.RunResult.
type passJSON struct {
	Name         string ` + "`json:\"name\"`" + `
	Applications int    ` + "`json:\"applications\"`" + `
	DurationUS   int64  ` + "`json:\"duration_us\"`" + `
}

type resultJSON struct {
	Passes  []passJSON ` + "`json:\"passes\"`" + `
	MiniF   string     ` + "`json:\"minif\"`" + `
	IR      string     ` + "`json:\"ir\"`" + `
	ParseUS int64      ` + "`json:\"parse_us\"`" + `
	ErrKind string     ` + "`json:\"err_kind,omitempty\"`" + `
	Err     string     ` + "`json:\"err,omitempty\"`" + `
}

func main() {
	opts := flag.String("opts", "", "comma-separated pass names, applied in order")
	maxiter := flag.Int("maxiter", 0, "per-pass fixpoint cap (0 selects the library default)")
	flag.Parse()
	src, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var names []string
	for _, n := range strings.Split(*opts, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	res := run(string(src), names, *maxiter)
	enc := json.NewEncoder(os.Stdout)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(res); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(source string, names []string, maxIter int) resultJSON {
	var res resultJSON
	t0 := time.Now()
	p, err := optlib.ParseMiniF(source)
	if err != nil {
		res.ErrKind, res.Err = "parse", err.Error()
		return res
	}
	res.ParseUS = time.Since(t0).Microseconds()
	passes := make([]optlib.NamedApply, 0, len(names))
	for _, n := range names {
		fn := Registry[n]
		if fn == nil {
			res.ErrKind, res.Err = "unknown_opt", n
			return res
		}
		passes = append(passes, optlib.NamedApply{Name: n, Apply: fn})
	}
	counts, err := optlib.Pipeline(p, passes, optlib.Limits{MaxIterations: maxIter})
	for _, ct := range counts {
		res.Passes = append(res.Passes, passJSON{Name: ct.Name, Applications: ct.Applications, DurationUS: ct.Duration.Microseconds()})
	}
	if err != nil {
		if errors.Is(err, optlib.ErrIterationLimit) {
			res.ErrKind = "iteration_limit"
		} else {
			res.ErrKind = "optimize"
		}
		res.Err = err.Error()
		return res
	}
	res.MiniF = ir.ToMiniF(p)
	res.IR = p.String()
	return res
}
`)
	return b.String()
}
